// Deterministic RNG stream quality and the statistics helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace bpim {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  Rng r(2);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform(2.0, 4.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_GE(s.min(), 2.0);
  EXPECT_LT(s.max(), 4.0);
}

TEST(Rng, BoundedIntegerIsUnbiasedEnough) {
  Rng r(3);
  std::size_t counts[5] = {};
  for (int i = 0; i < 50000; ++i) ++counts[r.uniform_u64(5)];
  for (const auto c : counts) EXPECT_NEAR(static_cast<double>(c), 10000.0, 500.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(4);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalTailFractionIsGaussian) {
  // P(|z| > 3) ~ 2.7e-3; check within a factor band over 1M samples.
  Rng r(5);
  std::size_t tails = 0;
  constexpr std::size_t kN = 1000000;
  for (std::size_t i = 0; i < kN; ++i)
    if (std::abs(r.normal()) > 3.0) ++tails;
  const double frac = static_cast<double>(tails) / kN;
  EXPECT_GT(frac, 1.8e-3);
  EXPECT_LT(frac, 3.8e-3);
}

TEST(Rng, BernoulliRate) {
  Rng r(6);
  std::size_t hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / 1e5, 0.25, 0.01);
}

TEST(RunningStats, WelfordAgainstClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, PercentilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(SampleSet, EmptySetIsWellDefined) {
  // Degenerate sets are total at the API level (matching mean()): callers
  // like the serving ledger need no ad-hoc count guards.
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, SingleSampleIsEveryPercentile) {
  SampleSet s;
  s.add(42.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 42.5);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.5);
}

TEST(SampleSet, TwoSamplesInterpolateLinearly) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 19.9);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 20.0);
}

TEST(SampleSet, GuardsBadP) {
  SampleSet s;
  EXPECT_THROW((void)s.percentile(-0.1), std::invalid_argument);
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(1.5), std::invalid_argument);
}

TEST(Histogram, BinsAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);   // underflow
  h.add(11.0);   // overflow
  EXPECT_EQ(h.total(), 12u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin_count(b), 1u);
    EXPECT_NEAR(h.bin_fraction(b), 1.0 / 12.0, 1e-12);
    EXPECT_NEAR(h.bin_center(b), b + 0.5, 1e-12);
  }
}

TEST(Histogram, RenderMentionsCountsAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(2.0);
  const std::string r = h.render(10, "ns");
  EXPECT_NE(r.find("ns"), std::string::npos);
  EXPECT_NE(r.find("above range"), std::string::npos);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bpim
