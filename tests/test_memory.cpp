// Bank / 128 KB memory aggregation.

#include <gtest/gtest.h>

#include "macro/memory.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using periph::LogicFn;

TEST(Memory, DefaultConfigIs128KB) {
  ImcMemory mem;
  EXPECT_EQ(mem.bank_count(), 4u);          // Table 3: 4 banks
  EXPECT_EQ(mem.macro_count(), 64u);        // 16 macros per bank
  EXPECT_EQ(mem.capacity_bytes(), 128u * 1024u);
}

TEST(Memory, FlatMacroIndexing) {
  ImcMemory mem;
  // Distinct objects across the flat index.
  mem.macro(0).poke_word(0, 0, 8, 1);
  mem.macro(17).poke_word(0, 0, 8, 2);
  EXPECT_EQ(mem.macro(0).peek_word(0, 0, 8), 1u);
  EXPECT_EQ(mem.macro(17).peek_word(0, 0, 8), 2u);
  EXPECT_THROW((void)mem.macro(64), std::invalid_argument);
}

TEST(Memory, EnergySumsAndCyclesMax) {
  ImcMemory mem;
  mem.macro(0).logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  mem.macro(0).logic_rows(LogicFn::Or, RowRef::main(0), RowRef::main(1));
  mem.macro(1).logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  // Lock-step model: elapsed = max(2, 1) = 2; energy = sum of three ops.
  EXPECT_EQ(mem.elapsed_cycles(), 2u);
  const double one_op = mem.macro(1).total_energy().si();
  EXPECT_NEAR(mem.total_energy().si(), 3.0 * one_op, 1e-20);
}

TEST(Memory, ResetClearsAllMacros) {
  ImcMemory mem;
  mem.macro(5).logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  mem.reset_counters();
  EXPECT_EQ(mem.elapsed_cycles(), 0u);
  EXPECT_DOUBLE_EQ(mem.total_energy().si(), 0.0);
}

TEST(Memory, BankBoundsChecked) {
  ImcMemory mem;
  EXPECT_THROW((void)mem.bank(4), std::invalid_argument);
  EXPECT_THROW((void)mem.bank(0).macro(16), std::invalid_argument);
}

TEST(Memory, ConfigValidation) {
  MemoryConfig cfg;
  cfg.banks = 0;
  EXPECT_THROW(ImcMemory{cfg}, std::invalid_argument);
  cfg.banks = 1;
  cfg.macros_per_bank = 0;
  EXPECT_THROW(ImcMemory{cfg}, std::invalid_argument);
}

TEST(Memory, SmallCustomConfig) {
  MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  ImcMemory mem(cfg);
  EXPECT_EQ(mem.macro_count(), 4u);
  EXPECT_EQ(mem.capacity_bytes(), 4u * 2048u);
}

}  // namespace
}  // namespace bpim::macro
