// Engine fusion path: run_forward / compile_forward / run_chain are
// bit-identical to op-at-a-time execution, cheaper on the cycle model, and
// recover from eviction and unfusable shapes transparently.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "macro/memory.hpp"

namespace bpim::engine {
namespace {

macro::MemoryConfig small_mem() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = 2;
  return cfg;
}

std::vector<std::uint64_t> random_codes(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.uniform_u64(1ull << bits);
  return v;
}

TEST(Fusion, ForwardBitIdenticalAcrossPrecisionsAndShapes) {
  // The sweep the tentpole promises: fused and unfused engines compute the
  // same products at every precision and shape, with fewer fused cycles.
  struct Shape {
    std::size_t ops, elements;
  };
  const Shape shapes[] = {{1, 16}, {4, 48}, {9, 96}};
  for (const unsigned bits : {2u, 4u, 8u}) {
    for (const Shape& s : shapes) {
      macro::ImcMemory fused_mem(small_mem());
      ExecutionEngine fused(fused_mem);
      macro::ImcMemory plain_mem(small_mem());
      ExecutionEngine plain(plain_mem);

      std::vector<std::vector<std::uint64_t>> w;
      std::vector<ResidentOperand> handles;
      for (std::size_t j = 0; j < s.ops; ++j) {
        w.push_back(random_codes(s.elements, bits, 100 * bits + j));
        handles.push_back(fused.pin(w.back(), bits, OperandLayout::MultUnit));
      }
      const auto x = random_codes(s.elements, bits, 7 * bits + s.ops);

      std::vector<VecOp> ops(s.ops);
      for (std::size_t j = 0; j < s.ops; ++j) {
        ops[j].kind = OpKind::Mult;
        ops[j].bits = bits;
        ops[j].a = w[j];
        ops[j].b = x;
      }
      const auto want = plain.run_batch(ops);
      const auto got = fused.run_forward(handles, x);
      ASSERT_EQ(got.size(), want.size());
      std::uint64_t fused_cycles = 0, plain_cycles = 0, saved = 0;
      for (std::size_t j = 0; j < s.ops; ++j) {
        EXPECT_EQ(got[j].values, want[j].values)
            << bits << "b, " << s.ops << "x" << s.elements << ", op " << j;
        fused_cycles += got[j].stats.elapsed_cycles;
        plain_cycles += want[j].stats.elapsed_cycles;
        saved += got[j].stats.fused_cycles_saved;
      }
      EXPECT_EQ(fused.fusion_stats().fused_runs, 1u);
      EXPECT_EQ(fused.fusion_stats().fallback_runs, 0u);
      // A single one-layer MULT has no predecessor to chain behind; every
      // other shape must bank a discount.
      if (s.ops > 1) {
        EXPECT_GT(saved, 0u);
      }
      EXPECT_EQ(fused_cycles + saved, plain_cycles);
    }
  }
}

TEST(Fusion, CompileAtPinAvoidsRecompileOnFirstRun) {
  macro::ImcMemory mem(small_mem());
  ExecutionEngine eng(mem);
  std::vector<ResidentOperand> handles;
  std::vector<std::vector<std::uint64_t>> w;
  for (std::size_t j = 0; j < 3; ++j) {
    w.push_back(random_codes(32, 8, 200 + j));
    handles.push_back(eng.pin(w.back(), 8, OperandLayout::MultUnit));
  }
  EXPECT_TRUE(eng.compile_forward(handles));
  EXPECT_EQ(eng.fusion_stats().compiles, 1u);

  const auto x = random_codes(32, 8, 300);
  const auto results = eng.run_forward(handles, x);
  EXPECT_EQ(eng.fusion_stats().compiles, 1u);  // cache hit, no rebuild
  EXPECT_EQ(eng.fusion_stats().recompiles, 0u);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(results[j].values[i], w[j][i] * x[i]);
  // The weights materialized at compile time; their deferred load cycles
  // land on this first forward.
  EXPECT_GT(eng.last_batch().load_cycles, 0u);
}

TEST(Fusion, EvictionUnderPressureRecompilesAndStaysCorrect) {
  macro::ImcMemory mem(small_mem());
  ExecutionEngine eng(mem);
  const unsigned bits = 8;
  // One MULT-unit layer across the memory's macros.
  const std::size_t per_layer = eng.mult_units_per_row(bits) * mem.macro_count();

  std::vector<std::vector<std::uint64_t>> w;
  std::vector<ResidentOperand> handles;
  for (std::size_t j = 0; j < 3; ++j) {
    w.push_back(random_codes(per_layer, bits, 400 + j));
    handles.push_back(eng.pin(w.back(), bits, OperandLayout::MultUnit));
  }
  const auto x = random_codes(per_layer, bits, 500);
  (void)eng.run_forward(handles, x);
  EXPECT_EQ(eng.fusion_stats().compiles, 1u);

  // A giant transient op sweeps the array and evicts most of the weights.
  const std::size_t cap = eng.row_pair_capacity();
  const auto big_a = random_codes((cap - 1) * per_layer, bits, 600);
  const auto big_b = random_codes((cap - 1) * per_layer, bits, 601);
  VecOp big;
  big.kind = OpKind::Mult;
  big.bits = bits;
  big.a = big_a;
  big.b = big_b;
  (void)eng.run(big);
  EXPECT_GT(eng.residency_stats().evictions, 0u);

  // Park a new handle in the freed slot so the evicted weights cannot
  // re-materialize at their compiled rows.
  const auto intruder_vals = random_codes(per_layer, bits, 650);
  const ResidentOperand intruder = eng.pin(intruder_vals, bits, OperandLayout::MultUnit);
  VecOp occupy;
  occupy.kind = OpKind::Mult;
  occupy.bits = bits;
  occupy.ra = intruder;
  occupy.b = x;
  (void)eng.run(occupy);

  // The next forward re-materializes the weights at new rows, notices the
  // residency snapshot moved, recompiles, and still computes the same
  // products.
  const auto results = eng.run_forward(handles, x);
  EXPECT_EQ(eng.fusion_stats().recompiles, 1u);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < per_layer; ++i)
      EXPECT_EQ(results[j].values[i], w[j][i] * x[i]) << "op " << j << " elem " << i;
}

TEST(Fusion, UnfusableShapeFallsBackBitIdentical) {
  macro::ImcMemory mem(small_mem());
  ExecutionEngine eng(mem);
  const unsigned bits = 8;
  const std::size_t per_layer = eng.layer_capacity(bits);
  const std::size_t cap = eng.row_pair_capacity();

  // Each weight spans half the array: weights + activation cannot co-reside,
  // so the fused layout is impossible and run_forward must fall back.
  const std::size_t elements = (cap / 2) * per_layer;
  std::vector<std::vector<std::uint64_t>> w;
  std::vector<ResidentOperand> handles;
  for (std::size_t j = 0; j < 2; ++j) {
    w.push_back(random_codes(elements, bits, 700 + j));
    handles.push_back(eng.pin(w.back(), bits, OperandLayout::MultUnit));
  }
  EXPECT_FALSE(eng.compile_forward(handles));
  const auto x = random_codes(elements, bits, 800);
  const auto results = eng.run_forward(handles, x);
  EXPECT_EQ(eng.fusion_stats().fallback_runs, 1u);
  EXPECT_EQ(eng.fusion_stats().fused_runs, 0u);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < elements; ++i) EXPECT_EQ(results[j].values[i], w[j][i] * x[i]);
}

TEST(Fusion, ChainMatchesHostReferenceAndSavesLoads) {
  macro::ImcMemory mem(small_mem());
  ExecutionEngine eng(mem);
  const unsigned bits = 4;
  const std::size_t n = 40;
  const auto a = random_codes(n, bits, 900);
  const auto b = random_codes(n, bits, 901);
  const auto c = random_codes(n, 2 * bits, 902);
  const auto d = random_codes(n, 2 * bits, 903);

  ChainRequest req;
  req.bits = bits;
  req.a = a;
  req.b = b;
  req.links = {{ChainLinkKind::Add, c}, {ChainLinkKind::Add, d}};
  const OpResult res = eng.run_chain(req);
  ASSERT_EQ(res.values.size(), n);
  const std::uint64_t mask = (1ull << (2 * bits)) - 1;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(res.values[i], (a[i] * b[i] + c[i] + d[i]) & mask) << i;
  EXPECT_EQ(eng.fusion_stats().chain_runs, 1u);
  // The in-array accumulator never spills: one saved re-stage per link row.
  EXPECT_GT(res.stats.load_cycles_saved, 0u);
}

TEST(Fusion, ChainAddShiftAccumulatesInField) {
  macro::ImcMemory mem(small_mem());
  ExecutionEngine eng(mem);
  const unsigned bits = 4;
  const std::size_t n = 12;
  const auto a = random_codes(n, bits, 910);
  const auto b = random_codes(n, bits, 911);
  const auto c = random_codes(n, bits, 912);  // small, so the shift stays in-field

  ChainRequest req;
  req.bits = bits;
  req.a = a;
  req.b = b;
  req.links = {{ChainLinkKind::AddShift, c}};
  const OpResult res = eng.run_chain(req);
  const std::uint64_t mask = (1ull << (2 * bits)) - 1;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(res.values[i], ((a[i] * b[i] + c[i]) << 1) & mask) << i;
}

TEST(Fusion, ValidatesChainRequests) {
  macro::ImcMemory mem(small_mem());
  ExecutionEngine eng(mem);
  const std::vector<std::uint64_t> a{1, 2}, b{3, 4}, short_link{5};
  ChainRequest no_links{8, a, b, {}};
  EXPECT_THROW((void)eng.run_chain(no_links), std::invalid_argument);
  ChainRequest ragged{8, a, b, {{ChainLinkKind::Add, short_link}}};
  EXPECT_THROW((void)eng.run_chain(ragged), std::invalid_argument);
  ChainRequest wide{32, a, b, {{ChainLinkKind::Add, a}}};
  EXPECT_THROW((void)eng.run_chain(wide), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::engine
