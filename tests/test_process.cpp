// Process-corner bookkeeping.

#include <gtest/gtest.h>

#include "circuit/process.hpp"

namespace bpim::circuit {
namespace {

TEST(Process, CornerNames) {
  EXPECT_STREQ(to_string(Corner::SS), "SS");
  EXPECT_STREQ(to_string(Corner::SF), "SF");
  EXPECT_STREQ(to_string(Corner::NN), "NN");
  EXPECT_STREQ(to_string(Corner::FS), "FS");
  EXPECT_STREQ(to_string(Corner::FF), "FF");
}

TEST(Process, CornerSignsNmosFirstConvention) {
  EXPECT_EQ(corner_sign(Corner::NN, DeviceKind::Nmos), 0);
  EXPECT_EQ(corner_sign(Corner::NN, DeviceKind::Pmos), 0);
  EXPECT_EQ(corner_sign(Corner::SS, DeviceKind::Nmos), +1);
  EXPECT_EQ(corner_sign(Corner::SS, DeviceKind::Pmos), +1);
  EXPECT_EQ(corner_sign(Corner::FF, DeviceKind::Nmos), -1);
  EXPECT_EQ(corner_sign(Corner::FF, DeviceKind::Pmos), -1);
  // SF = slow NMOS / fast PMOS, FS = the reverse.
  EXPECT_EQ(corner_sign(Corner::SF, DeviceKind::Nmos), +1);
  EXPECT_EQ(corner_sign(Corner::SF, DeviceKind::Pmos), -1);
  EXPECT_EQ(corner_sign(Corner::FS, DeviceKind::Nmos), -1);
  EXPECT_EQ(corner_sign(Corner::FS, DeviceKind::Pmos), +1);
}

TEST(Process, AllCornersListsFive) {
  EXPECT_EQ(kAllCorners.size(), 5u);
}

TEST(Process, ThermalVoltage) {
  EXPECT_NEAR(thermal_voltage(25.0).si(), 0.0257, 5e-4);
  EXPECT_GT(thermal_voltage(125.0).si(), thermal_voltage(25.0).si());
}

TEST(Process, DefaultsAreSane) {
  const auto& p = default_process();
  EXPECT_GT(p.vth_n.si(), 0.2);
  EXPECT_LT(p.vth_n.si(), 0.6);
  EXPECT_GT(p.kp_n_a_per_um, p.kp_p_a_per_um);  // NMOS stronger per um
  EXPECT_GT(p.alpha_n, 1.0);                    // velocity-saturated short channel
  EXPECT_LT(p.alpha_n, 2.0);
  EXPECT_GT(p.lvt_offset.si(), 0.0);
}

}  // namespace
}  // namespace bpim::circuit
