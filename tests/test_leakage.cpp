// Leakage / static-power model.

#include <gtest/gtest.h>

#include "energy/leakage.hpp"

namespace bpim::energy {
namespace {

using namespace bpim::literals;

constexpr std::size_t kMacroCells = 128 * 128;
constexpr std::size_t kMemoryCells = 64 * kMacroCells;  // the 128 KB part

TEST(Leakage, ReferenceCellCurrent) {
  const LeakageModel m;
  EXPECT_NEAR(in_uA(m.cell_current(0.9_V, 25.0)) * 1e6, 300.0, 1e-6);  // pA
}

TEST(Leakage, SupplyAndTemperatureMonotone) {
  const LeakageModel m;
  EXPECT_LT(m.cell_current(0.6_V, 25.0).si(), m.cell_current(0.9_V, 25.0).si());
  EXPECT_LT(m.cell_current(0.9_V, 25.0).si(), m.cell_current(1.1_V, 25.0).si());
  EXPECT_LT(m.cell_current(0.9_V, 25.0).si(), m.cell_current(0.9_V, 85.0).si());
}

TEST(Leakage, TemperatureDoublesEveryTenC) {
  const LeakageModel m;
  const double r = m.cell_current(0.9_V, 35.0).si() / m.cell_current(0.9_V, 25.0).si();
  EXPECT_NEAR(r, 2.0, 1e-9);
}

TEST(Leakage, MemoryPowerInRealisticBand) {
  // 1M cells at hundreds of pA and 0.9 V: a few hundred uW -- the right
  // 28 nm GP decade.
  const LeakageModel m;
  const double p = in_mW(m.array_power(kMemoryCells, 0.9_V, 25.0));
  EXPECT_GT(p, 0.05);
  EXPECT_LT(p, 2.0);
}

TEST(Leakage, EnergyPerCycleScalesInverselyWithF) {
  const LeakageModel m;
  const double e1 = m.energy_per_cycle(kMacroCells, 0.9_V, 25.0, 1.0_GHz).si();
  const double e2 = m.energy_per_cycle(kMacroCells, 0.9_V, 25.0, 2.0_GHz).si();
  EXPECT_NEAR(e1 / e2, 2.0, 1e-9);
}

TEST(Leakage, EffectiveEnergyScalesInverselyWithDuty) {
  const LeakageModel m;
  const Joule dyn(274.8e-15);  // 8-bit ADD
  const double full = m.effective_energy_per_op(dyn, kMacroCells, 0.9_V, 25.0, 1.658_GHz,
                                                16.0, 1.0).si();
  const double idle = m.effective_energy_per_op(dyn, kMacroCells, 0.9_V, 25.0, 1.658_GHz,
                                                16.0, 0.01).si();
  // At full duty the leakage adder is a small fraction of the dynamic
  // energy; at 1% duty the *leakage contribution* is exactly 100x larger.
  EXPECT_LT(full, dyn.si() * 1.05);
  EXPECT_GT(idle, full);
  EXPECT_NEAR((idle - dyn.si()) / (full - dyn.si()), 100.0, 1e-6);
}

TEST(Leakage, GuardsInputs) {
  const LeakageModel m;
  EXPECT_THROW((void)m.cell_current(Volt(0.0), 25.0), std::invalid_argument);
  EXPECT_THROW((void)m.energy_per_cycle(1, 0.9_V, 25.0, Hertz(0.0)), std::invalid_argument);
  EXPECT_THROW(
      (void)m.effective_energy_per_op(Joule(1e-15), 1, 0.9_V, 25.0, 1.0_GHz, 1.0, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace bpim::energy
