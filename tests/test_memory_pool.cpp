// serve::MemoryPool: multi-memory scale-out behind serve::Server. Placement
// policies must be deterministic, oversized dispatch groups must split
// across memories, per-memory stats must reconcile, and -- the contract
// everything rests on -- every served result must be bit-identical to
// running the op alone through a serial engine on one memory. The stress
// test here joins test_serve in the TSan CI job.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

namespace bpim::serve {
namespace {

using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

/// One NUMA node's shape: 2 macros, 64 row pairs each.
macro::MemoryConfig node_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = 2;
  return cfg;
}

MemoryPoolConfig pool_config(std::size_t memories, Placement placement) {
  MemoryPoolConfig cfg;
  cfg.memories = memories;
  cfg.memory = node_memory();
  cfg.threads_per_memory = 1;
  cfg.placement = placement;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

/// The op alone on a fresh single memory through a serial engine: the
/// reference every pooled result must match bit-for-bit.
OpResult run_serial_reference(const VecOp& op) {
  macro::ImcMemory mem(node_memory());
  ExecutionEngine eng(mem, EngineConfig{1});
  return eng.run(op);
}

void expect_identical(const OpResult& want, const OpResult& got, const std::string& what) {
  EXPECT_EQ(want.values, got.values) << what;
  EXPECT_EQ(want.stats.elements, got.stats.elements) << what;
  EXPECT_EQ(want.stats.elapsed_cycles, got.stats.elapsed_cycles) << what;
  EXPECT_EQ(want.stats.energy.si(), got.stats.energy.si()) << what;
  EXPECT_EQ(want.stats.elapsed_time.si(), got.stats.elapsed_time.si()) << what;
}

/// Pooled server kept alive with its pool.
struct Harness {
  explicit Harness(std::size_t memories, Placement placement = Placement::LeastLoaded,
                   ServerConfig cfg = {})
      : pool(pool_config(memories, placement)), server(pool, cfg) {}
  MemoryPool pool;
  Server server;
};

/// A MULT op occupying exactly `layers` row-pair layers on a node.
VecOp mult_op_of_layers(std::size_t layers, std::vector<std::uint64_t>& a,
                        std::vector<std::uint64_t>& b, std::uint64_t seed) {
  macro::ImcMemory mem(node_memory());
  ExecutionEngine probe(mem, EngineConfig{1});
  const std::size_t elements = layers * probe.mult_units_per_row(8) * mem.macro_count();
  a = random_vec(elements, 8, seed);
  b = random_vec(elements, 8, seed + 1);
  return VecOp{OpKind::Mult, 8, periph::LogicFn::And, a, b};
}

TEST(MemoryPool, PoolOfOneMatchesSerialReference) {
  Harness h(1);
  const auto a = random_vec(100, 8, 1);
  const auto b = random_vec(100, 8, 2);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};
  expect_identical(run_serial_reference(op), h.server.submit(op).get(), "pool of one");

  const ServeStats s = h.server.stats();
  ASSERT_EQ(s.per_memory.size(), 1u);
  EXPECT_EQ(s.per_memory[0].ops, 1u);
  EXPECT_EQ(s.modeled_makespan_cycles, s.modeled_pipelined_cycles);
  EXPECT_DOUBLE_EQ(s.scaleout_speedup(), 1.0);
}

TEST(MemoryPool, RoundRobinRotatesAcrossMemories) {
  Harness h(3, Placement::RoundRobin);
  h.server.pause();  // stage three incompatible ops -> three dispatch groups
  const auto a4 = random_vec(16, 4, 3), b4 = random_vec(16, 4, 4);
  const auto a8 = random_vec(16, 8, 5), b8 = random_vec(16, 8, 6);
  const auto a16 = random_vec(16, 16, 7), b16 = random_vec(16, 16, 8);
  std::vector<std::future<OpResult>> futs;
  futs.push_back(h.server.submit(VecOp{OpKind::Mult, 4, periph::LogicFn::And, a4, b4}));
  futs.push_back(h.server.submit(VecOp{OpKind::Mult, 8, periph::LogicFn::And, a8, b8}));
  futs.push_back(h.server.submit(VecOp{OpKind::Mult, 16, periph::LogicFn::And, a16, b16}));
  h.server.resume();
  for (auto& f : futs) (void)f.get();

  const ServeStats s = h.server.stats();
  ASSERT_EQ(s.recent_batches.size(), 3u);
  EXPECT_EQ(s.recent_batches[0].memory, 0u);
  EXPECT_EQ(s.recent_batches[1].memory, 1u);
  EXPECT_EQ(s.recent_batches[2].memory, 2u);
  for (std::size_t m = 0; m < 3; ++m) EXPECT_EQ(s.per_memory[m].batches, 1u);
}

TEST(MemoryPool, StickyPlacementPinsRepeatedOperands) {
  Harness h(4, Placement::StickyByOperand);
  const auto a = random_vec(32, 8, 9);
  const auto b = random_vec(32, 8, 10);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};
  for (int i = 0; i < 5; ++i)
    expect_identical(run_serial_reference(op), h.server.submit(op).get(), "sticky repeat");

  const ServeStats s = h.server.stats();
  ASSERT_EQ(s.recent_batches.size(), 5u);
  const std::size_t home = s.recent_batches[0].memory;
  for (const BatchRecord& rec : s.recent_batches)
    EXPECT_EQ(rec.memory, home) << "repeated operands must stay on one memory";
  EXPECT_EQ(s.per_memory[home].ops, 5u);
}

TEST(MemoryPool, LeastLoadedAvoidsTheBusyMemory) {
  Harness h(2, Placement::LeastLoaded);
  std::vector<std::uint64_t> a, b;
  const VecOp heavy = mult_op_of_layers(32, a, b, 11);
  (void)h.server.submit(heavy).get();  // ties break to memory 0
  const auto sa = random_vec(8, 8, 13), sb = random_vec(8, 8, 14);
  (void)h.server.submit(VecOp{OpKind::Mult, 8, periph::LogicFn::And, sa, sb}).get();

  const ServeStats s = h.server.stats();
  ASSERT_EQ(s.recent_batches.size(), 2u);
  EXPECT_EQ(s.recent_batches[0].memory, 0u);
  EXPECT_EQ(s.recent_batches[1].memory, 1u) << "second batch must dodge the loaded memory";
}

TEST(MemoryPool, OversizedGroupSplitsAcrossMemories) {
  // Four 24-layer ops coalesce into one 96-layer group: over one array's
  // 64-pair budget, within the pool's 128. The scheduler must split it into
  // two concurrent sub-batches on distinct memories -- and the results must
  // still match the serial reference exactly.
  Harness h(2, Placement::LeastLoaded);
  h.server.pause();
  std::vector<std::vector<std::uint64_t>> storage(8);
  std::vector<VecOp> ops;
  std::vector<std::future<OpResult>> futs;
  for (std::size_t i = 0; i < 4; ++i)
    ops.push_back(mult_op_of_layers(24, storage[2 * i], storage[2 * i + 1], 100 + 2 * i));
  for (const VecOp& op : ops) futs.push_back(h.server.submit(op));
  h.server.resume();
  for (std::size_t i = 0; i < futs.size(); ++i)
    expect_identical(run_serial_reference(ops[i]), futs[i].get(),
                     "split op " + std::to_string(i));

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.batches, 2u) << "96 layers must split into two sub-batches";
  ASSERT_EQ(s.recent_batches.size(), 2u);
  EXPECT_EQ(s.recent_batches[0].ops, 2u);
  EXPECT_EQ(s.recent_batches[0].layers, 48u);
  EXPECT_NE(s.recent_batches[0].memory, s.recent_batches[1].memory)
      << "a split group must spread across memories";
  // Both lanes did half the work, so the pool halves the modeled makespan.
  EXPECT_EQ(s.modeled_makespan_cycles,
            std::max(s.per_memory[0].modeled_pipelined_cycles,
                     s.per_memory[1].modeled_pipelined_cycles));
  EXPECT_GT(s.scaleout_speedup(), 1.5);
}

TEST(MemoryPool, NonOwningPoolOverCallerEngines) {
  macro::ImcMemory mem_a(node_memory()), mem_b(node_memory());
  ExecutionEngine eng_a(mem_a, EngineConfig{1}), eng_b(mem_b, EngineConfig{1});
  MemoryPool pool({&eng_a, &eng_b}, Placement::RoundRobin);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(&pool.engine(0), &eng_a);
  EXPECT_EQ(&pool.engine(1), &eng_b);

  Server server(pool, ServerConfig{});
  const auto a = random_vec(50, 8, 15);
  const auto b = random_vec(50, 8, 16);
  const VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, b};
  expect_identical(run_serial_reference(op), server.submit(op).get(), "non-owning pool");
}

TEST(MemoryPool, RejectsHeterogeneousEngines) {
  macro::ImcMemory small(node_memory());
  ExecutionEngine eng_small(small, EngineConfig{1});

  macro::MemoryConfig more_macros = node_memory();
  more_macros.macros_per_bank = 4;
  macro::ImcMemory big(more_macros);
  ExecutionEngine eng_big(big, EngineConfig{1});
  EXPECT_THROW(MemoryPool({&eng_small, &eng_big}, Placement::RoundRobin),
               std::invalid_argument);

  // Same macro count and rows but different columns: an op would map to a
  // different layer count depending on placement, so the pool must refuse.
  macro::MemoryConfig wider = node_memory();
  wider.macro.geometry.cols *= 2;
  macro::ImcMemory wide(wider);
  ExecutionEngine eng_wide(wide, EngineConfig{1});
  EXPECT_THROW(MemoryPool({&eng_small, &eng_wide}, Placement::RoundRobin),
               std::invalid_argument);
}

TEST(MemoryPool, RefusesDisturbInjectionOnlyWhenPlacementCanVary) {
  // With injection on, per-node RNG streams make results depend on
  // placement; a multi-memory pool must refuse at construction instead of
  // silently breaking the bit-identity guarantee.
  MemoryPoolConfig cfg = pool_config(2, Placement::RoundRobin);
  cfg.memory.macro.inject_disturb = true;
  EXPECT_THROW(MemoryPool pool(cfg), std::invalid_argument);

  // A pool of one has no placement choice: a single disturb-injected
  // memory stays servable, as it was before the pool existed.
  macro::MemoryConfig mcfg = node_memory();
  mcfg.macro.inject_disturb = true;
  macro::ImcMemory mem(mcfg);
  ExecutionEngine eng(mem, EngineConfig{1});
  Server server(eng);
  const auto a = random_vec(16, 8, 50);
  const auto b = random_vec(16, 8, 51);
  const auto res =
      server.submit(VecOp{OpKind::Add, 8, periph::LogicFn::And, a, b}).get();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(res.values[i], (a[i] + b[i]) & 0xFF);
}

TEST(MemoryPool, DecorrelatedNodeSeedsDoNotChangeResults) {
  // Each node gets its own disturb-RNG seed offset; with injection off
  // (enforced at construction) placement on any node is bit-identical to
  // the reference memory.
  Harness h(4, Placement::RoundRobin);
  const auto a = random_vec(64, 16, 17);
  const auto b = random_vec(64, 16, 18);
  const VecOp op{OpKind::Sub, 16, periph::LogicFn::And, a, b};
  const OpResult want = run_serial_reference(op);
  for (int i = 0; i < 4; ++i)  // round-robin lands on every node once
    expect_identical(want, h.server.submit(op).get(), "node " + std::to_string(i));
}

TEST(MemoryPool, StressMultiClientBitIdenticalWithDeadlines) {
  Harness h(3, Placement::LeastLoaded,
            ServerConfig{/*queue_capacity=*/64, /*max_batch_ops=*/8,
                         /*coalesce_window=*/std::chrono::microseconds(50)});
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kOpsPerClient = 12;

  struct ClientLog {
    std::vector<VecOp> ops;
    std::vector<std::vector<std::uint64_t>> a, b;
    std::vector<OpResult> results;  ///< one per op; empty values when expired
    std::vector<bool> expired;
  };
  std::vector<ClientLog> logs(kClients);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      bpim::Rng rng(0xD00D + c);
      ClientLog& log = logs[c];
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const unsigned bits = std::array<unsigned, 3>{4, 8, 16}[rng.next_u64() % 3];
        const OpKind kind =
            std::array<OpKind, 4>{OpKind::Add, OpKind::Sub, OpKind::Mult,
                                  OpKind::Logic}[rng.next_u64() % 4];
        const std::size_t n = 1 + rng.next_u64() % 300;
        log.a.push_back(random_vec(n, bits, rng.next_u64()));
        log.b.push_back(random_vec(n, bits, rng.next_u64()));
        VecOp op{kind, bits, periph::LogicFn::Xor, log.a.back(), log.b.back()};
        log.ops.push_back(op);
        SubmitOptions opts;
        opts.priority = static_cast<int>(rng.next_u64() % 3);
        if (rng.next_u64() % 4 == 0)  // every 4th op races a tight deadline
          opts.deadline = Clock::now() + std::chrono::microseconds(rng.next_u64() % 2000);
        try {
          log.results.push_back(h.server.submit(op, opts).get());
          log.expired.push_back(false);
        } catch (const DeadlineExceeded&) {
          log.results.emplace_back();
          log.expired.push_back(true);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Replay every completed op alone through a serial engine on a fresh
  // single memory: whatever memory served it, whatever it coalesced with.
  std::size_t completed = 0, expired = 0;
  for (std::size_t c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < logs[c].ops.size(); ++i) {
      if (logs[c].expired[i]) {
        ++expired;
        continue;
      }
      ++completed;
      expect_identical(run_serial_reference(logs[c].ops[i]), logs[c].results[i],
                       "client " + std::to_string(c) + " op " + std::to_string(i));
    }

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.submitted, kClients * kOpsPerClient);
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.expired, expired);
  EXPECT_EQ(s.completed + s.expired, s.submitted);

  // The per-memory lanes must reconcile with the aggregates exactly.
  ASSERT_EQ(s.per_memory.size(), 3u);
  std::uint64_t lane_ops = 0, lane_batches = 0, lane_cycles = 0, max_lane = 0;
  for (const MemoryLaneStats& lane : s.per_memory) {
    lane_ops += lane.ops;
    lane_batches += lane.batches;
    lane_cycles += lane.modeled_pipelined_cycles;
    max_lane = std::max(max_lane, lane.modeled_pipelined_cycles);
  }
  EXPECT_EQ(lane_ops, s.completed);
  EXPECT_EQ(lane_batches, s.batches);
  EXPECT_EQ(lane_cycles, s.modeled_pipelined_cycles);
  EXPECT_EQ(max_lane, s.modeled_makespan_cycles);
  // The pool's own dispatch account agrees with the ledger's lanes.
  const std::vector<std::uint64_t> dispatched = h.pool.dispatched_cycles();
  ASSERT_EQ(dispatched.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m)
    EXPECT_EQ(dispatched[m], s.per_memory[m].modeled_pipelined_cycles);
}

}  // namespace
}  // namespace bpim::serve
