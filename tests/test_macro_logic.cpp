// ImcMacro: storage access and single-cycle logic operations.

#include <gtest/gtest.h>

#include "macro/imc_macro.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using periph::LogicFn;

ImcMacro make_macro() { return ImcMacro(MacroConfig{}); }

TEST(MacroLogic, GeometryAndWordCounts) {
  auto m = make_macro();
  EXPECT_EQ(m.rows(), 128u);
  EXPECT_EQ(m.cols(), 128u);
  EXPECT_EQ(m.words_per_row(8), 16u);
  EXPECT_EQ(m.words_per_row(2), 64u);
  EXPECT_EQ(m.mult_units_per_row(8), 8u);
  EXPECT_EQ(m.mult_units_per_row(2), 32u);
}

TEST(MacroLogic, PokePeekRowAndWord) {
  auto m = make_macro();
  BitVector row(128);
  row.set(5, true);
  m.poke_row(3, row);
  EXPECT_EQ(m.peek_row(3), row);

  m.poke_word(4, 2, 8, 0xAB);
  EXPECT_EQ(m.peek_word(4, 2, 8), 0xABu);
  EXPECT_EQ(m.peek_word(4, 1, 8), 0u);
  EXPECT_THROW(m.poke_word(4, 16, 8, 1), std::invalid_argument);
  EXPECT_THROW(m.poke_word(4, 0, 8, 256), std::invalid_argument);
}

TEST(MacroLogic, MultOperandLayout) {
  auto m = make_macro();
  m.poke_mult_operand(0, 1, 8, 0xC3);
  // Low half of unit 1 (columns 16..23) holds the operand, high half zero.
  EXPECT_EQ(m.peek_word(0, 2, 8), 0xC3u);
  EXPECT_EQ(m.peek_word(0, 3, 8), 0u);
}

TEST(MacroLogic, AllDualWlLogicFunctions) {
  auto m = make_macro();
  const std::uint64_t a = 0xF0F0F0F0F0F0F0F0ull;
  const std::uint64_t b = 0xCCCCCCCCCCCCCCCCull;
  for (unsigned w = 0; w < 2; ++w) {
    m.poke_word(0, w, 32, (w ? a >> 32 : a) & 0xFFFFFFFFull);
    m.poke_word(1, w, 32, (w ? b >> 32 : b) & 0xFFFFFFFFull);
  }
  const auto check = [&](LogicFn fn, std::uint64_t expect) {
    const BitVector r = m.logic_rows(fn, RowRef::main(0), RowRef::main(1));
    std::uint64_t got = 0;
    for (unsigned i = 0; i < 64; ++i) got |= static_cast<std::uint64_t>(r.get(i)) << i;
    EXPECT_EQ(got, expect) << periph::to_string(fn);
    EXPECT_EQ(m.last_op().cycles, 1u);
  };
  check(LogicFn::And, a & b);
  check(LogicFn::Nand, ~(a & b));
  check(LogicFn::Or, a | b);
  check(LogicFn::Nor, ~(a | b));
  check(LogicFn::Xor, a ^ b);
  check(LogicFn::Xnor, ~(a ^ b));
}

TEST(MacroLogic, UnaryNotCopyShift) {
  auto m = make_macro();
  m.poke_word(7, 0, 8, 0b10110001);
  const RowRef dest = RowRef::dummy(ImcMacro::kDummyOperand);

  const BitVector n = m.unary_row(Op::Not, RowRef::main(7), dest, 8);
  EXPECT_EQ(n.to_u64() & 0xFF, 0b01001110u);
  EXPECT_EQ(m.last_op().cycles, 1u);
  EXPECT_EQ(m.sram().row(dest), n);  // written back

  const BitVector c = m.unary_row(Op::Copy, RowRef::main(7), dest, 8);
  EXPECT_EQ(c.to_u64() & 0xFF, 0b10110001u);

  const BitVector s = m.unary_row(Op::Shift, RowRef::main(7), dest, 8);
  EXPECT_EQ(s.to_u64() & 0xFF, 0b01100010u);  // <<1 within the 8-bit word
}

TEST(MacroLogic, ShiftRespectsPrecisionBoundaries) {
  auto m = make_macro();
  m.poke_word(0, 0, 4, 0b1001);
  m.poke_word(0, 1, 4, 0b0111);
  const BitVector s = m.unary_row(Op::Shift, RowRef::main(0), RowRef::dummy(0), 4);
  EXPECT_EQ(s.to_u64() & 0xF, 0b0010u);         // MSB dropped, not carried over
  EXPECT_EQ((s.to_u64() >> 4) & 0xF, 0b1110u);  // independent word
}

TEST(MacroLogic, UnaryRejectsArithmeticOps) {
  auto m = make_macro();
  EXPECT_THROW(m.unary_row(Op::Add, RowRef::main(0), RowRef::dummy(0), 8),
               std::invalid_argument);
}

TEST(MacroLogic, CountersAccumulateAndReset) {
  auto m = make_macro();
  m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  m.logic_rows(LogicFn::Or, RowRef::main(2), RowRef::main(3));
  EXPECT_EQ(m.total_cycles(), 2u);
  EXPECT_GT(m.total_energy().si(), 0.0);
  m.reset_counters();
  EXPECT_EQ(m.total_cycles(), 0u);
  EXPECT_DOUBLE_EQ(m.total_energy().si(), 0.0);
}

TEST(MacroLogic, NeedsThreeDummyRows) {
  MacroConfig cfg;
  cfg.geometry.dummy_rows = 2;
  EXPECT_THROW(ImcMacro{cfg}, std::invalid_argument);
}

TEST(MacroLogic, FmaxMatchesFreqModelForProposedScheme) {
  auto m = make_macro();
  EXPECT_NEAR(in_GHz(m.fmax()), 1.658, 0.02);  // 0.9 V default
}

TEST(MacroLogic, WludSchemeIsMuchSlower) {
  MacroConfig slow;
  slow.wl_scheme = WlScheme::Wlud;
  const ImcMacro m_wlud(slow);
  const ImcMacro m_prop(MacroConfig{});
  EXPECT_LT(m_wlud.fmax().si(), 0.5 * m_prop.fmax().si());
}

}  // namespace
}  // namespace bpim::macro
