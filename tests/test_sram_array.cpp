// SRAM array storage, dummy rows, BL compute semantics, separator rules.

#include <gtest/gtest.h>

#include "array/sram_array.hpp"

namespace bpim::array {
namespace {

ArrayGeometry small() { return ArrayGeometry{8, 16, 3, 4}; }

TEST(SramArray, GeometryValidated) {
  EXPECT_THROW(SramArray(ArrayGeometry{0, 16, 3, 4}), std::invalid_argument);
  EXPECT_THROW(SramArray(ArrayGeometry{8, 15, 3, 4}), std::invalid_argument);  // 15 % 4
}

TEST(SramArray, RowsStartZeroed) {
  SramArray a(small());
  EXPECT_EQ(a.row(RowRef::main(0)).popcount(), 0u);
  EXPECT_EQ(a.row(RowRef::dummy(2)).popcount(), 0u);
}

TEST(SramArray, WriteAndReadBackMainAndDummy) {
  SramArray a(small());
  BitVector d(16, 0xBEEF);
  a.write_row(RowRef::main(3), d);
  EXPECT_EQ(a.row(RowRef::main(3)), d);
  a.write_row(RowRef::dummy(1), d);
  EXPECT_EQ(a.row(RowRef::dummy(1)), d);
}

TEST(SramArray, RowBoundsChecked) {
  SramArray a(small());
  EXPECT_THROW((void)a.row(RowRef::main(8)), std::invalid_argument);
  EXPECT_THROW((void)a.row(RowRef::dummy(3)), std::invalid_argument);
  EXPECT_THROW(a.write_row(RowRef::main(0), BitVector(15)), std::invalid_argument);
}

TEST(SramArray, CellLevelSetGet) {
  SramArray a(small());
  a.set(RowRef::main(2), 7, true);
  EXPECT_TRUE(a.get(RowRef::main(2), 7));
  EXPECT_FALSE(a.get(RowRef::main(2), 6));
  EXPECT_THROW(a.set(RowRef::main(2), 16, true), std::invalid_argument);
}

TEST(SramArray, DualWlComputesAndAndNor) {
  // The core BL-compute identity: BLT -> A AND B, BLB -> NOR(A, B).
  SramArray a(small());
  a.write_row(RowRef::main(0), BitVector(16, 0b1100));
  a.write_row(RowRef::main(1), BitVector(16, 0b1010));
  const BlReadout r = a.compute_dual(RowRef::main(0), RowRef::main(1));
  EXPECT_EQ(r.bl_and.to_u64(), 0b1000u);
  // NOR over 16 columns: complement of OR.
  EXPECT_EQ(r.bl_nor.to_u64(), (~0b1110ull) & 0xFFFFull);
}

TEST(SramArray, DualWlNeedsDistinctRows) {
  SramArray a(small());
  EXPECT_THROW(a.compute_dual(RowRef::main(1), RowRef::main(1)), std::invalid_argument);
}

TEST(SramArray, SingleWlReadsRowAndComplement) {
  SramArray a(small());
  a.write_row(RowRef::main(5), BitVector(16, 0x00F0));
  const BlReadout r = a.read_single(RowRef::main(5));
  EXPECT_EQ(r.bl_and.to_u64(), 0x00F0u);
  EXPECT_EQ(r.bl_nor.to_u64(), 0xFF0Fu);
}

TEST(SramArray, MainDummyPairSharesBitlines) {
  SramArray a(small());
  a.write_row(RowRef::main(0), BitVector(16, 0b0110));
  a.write_row(RowRef::dummy(0), BitVector(16, 0b0011));
  const BlReadout r = a.compute_dual(RowRef::main(0), RowRef::dummy(0));
  EXPECT_EQ(r.bl_and.to_u64(), 0b0010u);
}

TEST(SramArray, SeparatorBlocksCrossSegmentDual) {
  SramArray a(small());
  a.set_separated(true);
  EXPECT_THROW(a.compute_dual(RowRef::main(0), RowRef::dummy(0)), std::invalid_argument);
  // Same-segment pairs remain legal.
  EXPECT_NO_THROW(a.compute_dual(RowRef::dummy(0), RowRef::dummy(1)));
  EXPECT_NO_THROW(a.compute_dual(RowRef::main(0), RowRef::main(1)));
  a.set_separated(false);
  EXPECT_NO_THROW(a.compute_dual(RowRef::main(0), RowRef::dummy(0)));
}

TEST(SramArray, ToggleCountCountsHammingDistance) {
  SramArray a(small());
  a.write_row(RowRef::dummy(2), BitVector(16, 0b1111));
  EXPECT_EQ(a.toggle_count(RowRef::dummy(2), BitVector(16, 0b1001)), 2u);
}

TEST(SramArray, DefaultGeometryMatchesPaperMacro) {
  const ArrayGeometry g;
  EXPECT_EQ(g.rows, 128u);
  EXPECT_EQ(g.cols, 128u);
  EXPECT_EQ(g.dummy_rows, 3u);   // Fig 3: "Dummy Array (3 rows)"
  EXPECT_EQ(g.interleave, 4u);   // 4:1 interleaved column periphery
}

}  // namespace
}  // namespace bpim::array
