// ServeLedger semantics: per-op attribution of a batch's modeled cost, the
// per-memory lanes and makespan behind multi-memory scale-out, and the
// recent-batch ring's wraparound.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/serve_stats.hpp"

namespace bpim::serve {
namespace {

using engine::BatchStats;
using engine::OpKind;

BatchRecord make_record(std::size_t ops, std::size_t layers, std::uint64_t pipelined,
                        std::size_t memory = 0) {
  BatchRecord rec;
  rec.kind = OpKind::Mult;
  rec.bits = 8;
  rec.ops = ops;
  rec.layers = layers;
  rec.memory = memory;
  rec.pipelined_cycles = pipelined;
  rec.serial_cycles = pipelined + 2 * layers;
  return rec;
}

BatchStats make_stats(std::size_t ops, std::uint64_t pipelined, std::uint64_t serial) {
  BatchStats bs;
  bs.ops = ops;
  bs.pipelined_cycles = pipelined;
  bs.serial_cycles = serial;
  return bs;
}

void record(ServeLedger& ledger, std::size_t ops, std::uint64_t pipelined,
            std::size_t layers = 1, std::size_t memory = 0) {
  const std::vector<double> host_us(ops, 1.0);
  ledger.on_batch(make_record(ops, layers, pipelined, memory),
                  make_stats(ops, pipelined, pipelined + 2 * layers), host_us);
}

TEST(ServeLedger, BatchCostIsAttributedOnceAcrossRiders) {
  // Four riders of a 400-cycle batch: each op's modeled latency sample is
  // its share (100), not the whole batch -- the samples sum to the batch
  // cost instead of overcounting it 4x.
  ServeLedger ledger;
  record(ledger, /*ops=*/4, /*pipelined=*/400);
  const ServeStats s = ledger.snapshot(0, 0);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.modeled_pipelined_cycles, 400u);
  EXPECT_EQ(s.modeled_cycles.count, 4u);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.mean, 100.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.p50, 100.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.p99, 100.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.max, 100.0);
}

TEST(ServeLedger, PerOpShareSeparatesSoloFromCoalesced) {
  // A solo 100-cycle op and a 4-rider 100-cycle batch: under the old
  // whole-batch attribution all five samples would be 100 and the p50
  // could not tell the coalesced riders (25 each) from the solo op.
  ServeLedger ledger;
  record(ledger, /*ops=*/1, /*pipelined=*/100);
  record(ledger, /*ops=*/4, /*pipelined=*/100);
  const ServeStats s = ledger.snapshot(0, 0);
  EXPECT_EQ(s.modeled_cycles.count, 5u);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.p50, 25.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.max, 100.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.mean, (4 * 25.0 + 100.0) / 5.0);
}

TEST(ServeLedger, MixedSizeBatchSharesAreLayerWeighted) {
  // A 3-layer op and a 1-layer op ride one 400-cycle batch: the big rider
  // carries 300 cycles, the small one 100 -- the samples still sum to the
  // batch cost, but a tiny op is no longer charged for a big neighbour.
  ServeLedger ledger;
  const std::vector<double> host_us(2, 1.0);
  ledger.on_batch(make_record(/*ops=*/2, /*layers=*/4, /*pipelined=*/400),
                  make_stats(2, 400, 408), host_us, /*op_layers=*/{3, 1});
  const ServeStats s = ledger.snapshot(0, 0);
  EXPECT_EQ(s.modeled_cycles.count, 2u);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.max, 300.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.p50, 200.0);  // midpoint of {100, 300}
  EXPECT_DOUBLE_EQ(s.modeled_cycles.mean, 200.0);
}

TEST(ServeLedger, LatencySummaryCoversTailQuantiles) {
  // Host latencies 1..1000 us: SampleSet interpolates between order
  // statistics, so the tail quantiles land at exact known points.
  ServeLedger ledger;
  for (int us = 1; us <= 1000; ++us) {
    const std::vector<double> host_us{static_cast<double>(us)};
    ledger.on_batch(make_record(1, 1, 100), make_stats(1, 100, 102), host_us);
  }
  const ServeStats s = ledger.snapshot(0, 0);
  EXPECT_EQ(s.host_us.count, 1000u);
  EXPECT_NEAR(s.host_us.p50, 500.5, 1e-9);
  EXPECT_NEAR(s.host_us.p90, 900.1, 1e-9);
  EXPECT_NEAR(s.host_us.p99, 990.01, 1e-9);
  EXPECT_NEAR(s.host_us.p999, 999.001, 1e-9);
  EXPECT_DOUBLE_EQ(s.host_us.max, 1000.0);
}

TEST(ServeLedger, EmptySnapshotHasZeroSummaries) {
  ServeLedger ledger(3);
  const ServeStats s = ledger.snapshot(0, 0);
  EXPECT_EQ(s.host_us.count, 0u);
  EXPECT_DOUBLE_EQ(s.host_us.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.p99, 0.0);
  EXPECT_EQ(s.modeled_makespan_cycles, 0u);
  ASSERT_EQ(s.per_memory.size(), 3u);
  EXPECT_DOUBLE_EQ(s.scaleout_speedup(), 1.0);
  EXPECT_DOUBLE_EQ(s.memory_occupancy(0), 0.0);
}

TEST(ServeLedger, PerMemoryLanesAndMakespan) {
  // Memories run in parallel in the cycle model: the makespan is the
  // busiest lane, and the scale-out speedup is total work over it.
  ServeLedger ledger(2);
  record(ledger, 2, /*pipelined=*/300, /*layers=*/4, /*memory=*/0);
  record(ledger, 3, /*pipelined=*/500, /*layers=*/6, /*memory=*/1);
  record(ledger, 1, /*pipelined=*/200, /*layers=*/2, /*memory=*/0);
  const ServeStats s = ledger.snapshot(0, 0);
  ASSERT_EQ(s.per_memory.size(), 2u);
  EXPECT_EQ(s.per_memory[0].batches, 2u);
  EXPECT_EQ(s.per_memory[0].ops, 3u);
  EXPECT_EQ(s.per_memory[0].layers, 6u);
  EXPECT_EQ(s.per_memory[0].modeled_pipelined_cycles, 500u);
  EXPECT_EQ(s.per_memory[1].batches, 1u);
  EXPECT_EQ(s.per_memory[1].modeled_pipelined_cycles, 500u);
  EXPECT_EQ(s.modeled_pipelined_cycles, 1000u);
  EXPECT_EQ(s.modeled_makespan_cycles, 500u);
  EXPECT_DOUBLE_EQ(s.scaleout_speedup(), 2.0);
  EXPECT_DOUBLE_EQ(s.memory_occupancy(0), 1.0);
  EXPECT_DOUBLE_EQ(s.memory_occupancy(1), 1.0);
  EXPECT_DOUBLE_EQ(s.memory_occupancy(7), 0.0);  // out of range: defined as idle
}

TEST(ServeLedger, RecentRingHoldsExactlyCapacityOldestFirst) {
  ServeLedger ledger;
  for (std::size_t i = 0; i < ServeLedger::kRecentBatches; ++i)
    record(ledger, 1, 100, /*layers=*/i + 1);
  const ServeStats s = ledger.snapshot(0, 0);
  ASSERT_EQ(s.recent_batches.size(), ServeLedger::kRecentBatches);
  for (std::size_t i = 0; i < s.recent_batches.size(); ++i)
    EXPECT_EQ(s.recent_batches[i].layers, i + 1) << "slot " << i;
}

TEST(ServeLedger, RecentRingWrapsDroppingOldest) {
  constexpr std::size_t kExtra = 7;
  ServeLedger ledger;
  for (std::size_t i = 0; i < ServeLedger::kRecentBatches + kExtra; ++i)
    record(ledger, 1, 100, /*layers=*/i + 1);
  const ServeStats s = ledger.snapshot(0, 0);
  ASSERT_EQ(s.recent_batches.size(), ServeLedger::kRecentBatches);
  // The kExtra oldest records fell out; order stays oldest-first.
  for (std::size_t i = 0; i < s.recent_batches.size(); ++i)
    EXPECT_EQ(s.recent_batches[i].layers, kExtra + i + 1) << "slot " << i;
  // Totals keep counting past the ring.
  EXPECT_EQ(s.batches, ServeLedger::kRecentBatches + kExtra);
}

}  // namespace
}  // namespace bpim::serve
