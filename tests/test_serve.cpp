// serve::Server: concurrent clients through the admission queue must get
// results bit-identical to running each op alone through a serial engine;
// coalescing, priorities, deadlines, backpressure and shutdown must behave
// as the header promises. The stress test here is the one the TSan CI job
// leans on.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "app/vector_engine.hpp"
#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "serve/server.hpp"

namespace bpim::serve {
namespace {

using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

macro::MemoryConfig tiny_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

/// The op alone on a fresh memory through a serial engine: the reference
/// every served result must match bit-for-bit.
OpResult run_serial_reference(const VecOp& op) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{1});
  return eng.run(op);
}

void expect_identical(const OpResult& want, const OpResult& got, const std::string& what) {
  EXPECT_EQ(want.values, got.values) << what;
  EXPECT_EQ(want.stats.elements, got.stats.elements) << what;
  EXPECT_EQ(want.stats.elapsed_cycles, got.stats.elapsed_cycles) << what;
  EXPECT_EQ(want.stats.energy.si(), got.stats.energy.si()) << what;
  EXPECT_EQ(want.stats.elapsed_time.si(), got.stats.elapsed_time.si()) << what;
}

/// Server over its own memory/engine, kept alive together.
struct Harness {
  explicit Harness(ServerConfig cfg = {}, std::size_t threads = 2)
      : mem(tiny_memory()), eng(mem, EngineConfig{threads}), server(eng, cfg) {}
  macro::ImcMemory mem;
  ExecutionEngine eng;
  Server server;
};

TEST(Server, SingleOpMatchesSerialEngine) {
  Harness h;
  const auto a = random_vec(200, 8, 1);
  const auto b = random_vec(200, 8, 2);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};
  OpResult got = h.server.submit(op).get();
  expect_identical(run_serial_reference(op), got, "single mult");

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.host_us.count, 1u);
  EXPECT_GE(s.host_us.p99, s.host_us.p50);
}

TEST(Server, OperandsMayBeFreedAfterSubmit) {
  Harness h;
  h.server.pause();  // hold the op in the queue while the operands die
  std::future<OpResult> fut;
  std::vector<std::uint64_t> expect;
  {
    const auto a = random_vec(40, 8, 3);
    const auto b = random_vec(40, 8, 4);
    for (std::size_t i = 0; i < a.size(); ++i) expect.push_back((a[i] + b[i]) & 0xFF);
    fut = h.server.submit(VecOp{OpKind::Add, 8, periph::LogicFn::And, a, b});
  }  // a/b destroyed before the op runs; the server owns copies
  h.server.resume();
  EXPECT_EQ(fut.get().values, expect);
}

TEST(Server, StressManyClientsBitIdenticalToSerial) {
  Harness h(ServerConfig{/*queue_capacity=*/32, /*max_batch_ops=*/8,
                         /*coalesce_window=*/std::chrono::microseconds(50)},
            /*threads=*/2);
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kOpsPerClient = 12;

  struct ClientLog {
    std::vector<VecOp> ops;
    std::vector<std::vector<std::uint64_t>> a, b;  ///< keep operands for the replay
    std::vector<OpResult> results;
  };
  std::vector<ClientLog> logs(kClients);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      bpim::Rng rng(0x5EED + c);
      ClientLog& log = logs[c];
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const unsigned bits = std::array<unsigned, 3>{4, 8, 16}[rng.next_u64() % 3];
        const OpKind kind =
            std::array<OpKind, 4>{OpKind::Add, OpKind::Sub, OpKind::Mult,
                                  OpKind::Logic}[rng.next_u64() % 4];
        const std::size_t n = 1 + rng.next_u64() % 300;
        log.a.push_back(random_vec(n, bits, rng.next_u64()));
        log.b.push_back(random_vec(n, bits, rng.next_u64()));
        VecOp op{kind, bits, periph::LogicFn::Xor, log.a.back(), log.b.back()};
        const int priority = static_cast<int>(rng.next_u64() % 3);
        log.ops.push_back(op);
        log.results.push_back(h.server.submit(op, SubmitOptions{priority, {}}).get());
      }
    });
  }
  for (auto& t : clients) t.join();

  // Replay every op alone through a serial engine on a fresh memory.
  for (std::size_t c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < logs[c].ops.size(); ++i)
      expect_identical(run_serial_reference(logs[c].ops[i]), logs[c].results[i],
                       "client " + std::to_string(c) + " op " + std::to_string(i));

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.submitted, kClients * kOpsPerClient);
  EXPECT_EQ(s.completed, kClients * kOpsPerClient);
  EXPECT_EQ(s.expired, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.host_us.count, kClients * kOpsPerClient);
  // Coalescing can only save modeled cycles, never add them.
  EXPECT_LE(s.modeled_pipelined_cycles, s.modeled_serial_cycles);
}

TEST(Server, CoalescesCompatibleOpsIntoOneBatch) {
  Harness h;
  h.server.pause();  // stage all four, then release as one decision
  const auto a = random_vec(32, 8, 5);  // one layer at 8-bit MULT on 4 macros
  const auto b = random_vec(32, 8, 6);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};
  std::vector<std::future<OpResult>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(h.server.submit(op));
  h.server.resume();
  for (auto& f : futs) expect_identical(run_serial_reference(op), f.get(), "coalesced op");

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_DOUBLE_EQ(s.mean_batch_occupancy(), 4.0);
  ASSERT_EQ(s.recent_batches.size(), 1u);
  EXPECT_EQ(s.recent_batches[0].ops, 4u);
  EXPECT_EQ(s.recent_batches[0].layers, 4u);
  // The whole point: three of the four loads hide behind compute.
  EXPECT_LT(s.modeled_pipelined_cycles, s.modeled_serial_cycles);
  EXPECT_GT(s.coalescing_speedup(), 1.0);
}

TEST(Server, IncompatibleOpsSplitIntoSeparateBatches) {
  Harness h;
  h.server.pause();
  const auto a = random_vec(16, 8, 7);
  const auto b = random_vec(16, 8, 8);
  const auto a4 = random_vec(16, 4, 9);
  const auto b4 = random_vec(16, 4, 10);
  std::vector<std::future<OpResult>> futs;
  futs.push_back(h.server.submit(VecOp{OpKind::Mult, 8, periph::LogicFn::And, a, b}));
  futs.push_back(h.server.submit(VecOp{OpKind::Add, 8, periph::LogicFn::And, a, b}));
  futs.push_back(h.server.submit(VecOp{OpKind::Mult, 4, periph::LogicFn::And, a4, b4}));
  // Same kind/bits as the first: rides its batch despite being submitted last.
  futs.push_back(h.server.submit(VecOp{OpKind::Mult, 8, periph::LogicFn::And, a, b}));
  h.server.resume();
  for (auto& f : futs) (void)f.get();

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.batches, 3u);
  ASSERT_EQ(s.recent_batches.size(), 3u);
  EXPECT_EQ(s.recent_batches[0].ops, 2u);  // the two 8-bit MULTs coalesce
  EXPECT_EQ(s.recent_batches[0].kind, OpKind::Mult);
  EXPECT_EQ(s.recent_batches[0].bits, 8u);
}

TEST(Server, HigherPriorityBatchRunsFirst) {
  Harness h;
  h.server.pause();
  const auto a = random_vec(16, 8, 11);
  const auto b = random_vec(16, 8, 12);
  const auto a4 = random_vec(16, 4, 13);
  const auto b4 = random_vec(16, 4, 14);
  auto low = h.server.submit(VecOp{OpKind::Add, 8, periph::LogicFn::And, a, b},
                             SubmitOptions{/*priority=*/0, {}});
  auto high = h.server.submit(VecOp{OpKind::Mult, 4, periph::LogicFn::And, a4, b4},
                              SubmitOptions{/*priority=*/5, {}});
  h.server.resume();
  (void)low.get();
  (void)high.get();

  const ServeStats s = h.server.stats();
  ASSERT_EQ(s.recent_batches.size(), 2u);
  // Submitted second, scheduled first.
  EXPECT_EQ(s.recent_batches[0].kind, OpKind::Mult);
  EXPECT_EQ(s.recent_batches[0].bits, 4u);
  EXPECT_EQ(s.recent_batches[1].kind, OpKind::Add);
}

TEST(Server, LapsedDeadlineFailsInsteadOfRunning) {
  Harness h;
  h.server.pause();
  const auto a = random_vec(16, 8, 15);
  const auto b = random_vec(16, 8, 16);
  const VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, b};
  auto dead = h.server.submit(
      op, SubmitOptions{0, Clock::now() - std::chrono::milliseconds(1)});
  auto live = h.server.submit(
      op, SubmitOptions{0, Clock::now() + std::chrono::hours(1)});
  h.server.resume();

  EXPECT_THROW((void)dead.get(), DeadlineExceeded);
  expect_identical(run_serial_reference(op), live.get(), "live deadline op");

  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(Server, DeadlineExpiringInsideCoalesceWindowFailsAtBatchBuild) {
  // The scheduler lingers in the coalesce window before building a batch;
  // deadlines are re-checked with a fresh clock at batch-build time, so a
  // request that expires while held in the window fails instead of running.
  Harness h(ServerConfig{/*queue_capacity=*/16, /*max_batch_ops=*/64,
                         /*coalesce_window=*/std::chrono::milliseconds(100)});
  const auto a = random_vec(16, 8, 40);
  const auto b = random_vec(16, 8, 41);
  const VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, b};
  auto fut = h.server.submit(
      op, SubmitOptions{0, Clock::now() + std::chrono::milliseconds(10)});

  EXPECT_THROW((void)fut.get(), DeadlineExceeded);
  const ServeStats s = h.server.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.batches, 0u) << "an expired request must never reach the engine";
}

TEST(Server, ModeledLatencyIsPerOpShareOfItsBatch) {
  // Four identical riders in one batch: each op's modeled latency sample is
  // the batch cost / 4, so the per-op summary does not overcount under
  // coalescing (the samples of a batch sum to its pipelined cycles).
  Harness h;
  h.server.pause();
  const auto a = random_vec(32, 8, 42);
  const auto b = random_vec(32, 8, 43);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};
  std::vector<std::future<OpResult>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(h.server.submit(op));
  h.server.resume();
  for (auto& f : futs) (void)f.get();

  const ServeStats s = h.server.stats();
  ASSERT_EQ(s.batches, 1u);
  EXPECT_EQ(s.modeled_cycles.count, 4u);
  const double share = static_cast<double>(s.modeled_pipelined_cycles) / 4.0;
  EXPECT_DOUBLE_EQ(s.modeled_cycles.p50, share);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.max, share);
  EXPECT_DOUBLE_EQ(s.modeled_cycles.mean, share);
}

TEST(Server, QueueFullBackpressure) {
  Harness h(ServerConfig{/*queue_capacity=*/2, /*max_batch_ops=*/64, {}});
  h.server.pause();  // nothing drains: the queue must fill
  const auto a = random_vec(8, 8, 17);
  const auto b = random_vec(8, 8, 18);
  const VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, b};

  std::vector<std::future<OpResult>> futs;
  futs.push_back(h.server.submit(op));
  futs.push_back(h.server.submit(op));
  EXPECT_FALSE(h.server.try_submit(op).has_value());  // full: fail fast
  EXPECT_EQ(h.server.stats().rejected, 1u);
  EXPECT_EQ(h.server.stats().queue_depth, 2u);

  // A blocking submit must park until the scheduler makes room.
  std::atomic<bool> admitted{false};
  std::future<OpResult> blocked_fut;
  std::thread blocked([&] {
    blocked_fut = h.server.submit(op);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted.load());

  h.server.resume();
  blocked.join();
  EXPECT_TRUE(admitted.load());
  futs.push_back(std::move(blocked_fut));
  for (auto& f : futs) expect_identical(run_serial_reference(op), f.get(), "backpressure op");
  EXPECT_EQ(h.server.stats().peak_queue_depth, 2u);
}

TEST(Server, StopDrainsAcceptedWorkThenRefuses) {
  auto h = std::make_unique<Harness>(ServerConfig{/*queue_capacity=*/128, 8, {}});
  const auto a = random_vec(32, 8, 19);
  const auto b = random_vec(32, 8, 20);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};

  h->server.pause();  // pile up a loaded queue before stopping
  std::vector<std::future<OpResult>> futs;
  for (int i = 0; i < 50; ++i) futs.push_back(h->server.submit(op));
  h->server.stop();  // close admission, drain all 50, join

  const OpResult want = run_serial_reference(op);
  for (auto& f : futs) expect_identical(want, f.get(), "drained op");
  EXPECT_EQ(h->server.stats().completed, 50u);
  EXPECT_TRUE(h->server.stopped());
  EXPECT_THROW((void)h->server.submit(op), ServerStopped);
  EXPECT_THROW((void)h->server.try_submit(op), ServerStopped);
  h.reset();  // double-stop via the destructor must be harmless
}

TEST(Server, StopWhileClientsAreSubmitting) {
  Harness h(ServerConfig{/*queue_capacity=*/8, 8, {}});
  const auto a = random_vec(16, 8, 21);
  const auto b = random_vec(16, 8, 22);
  const VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, b};
  const OpResult want = run_serial_reference(op);

  std::atomic<std::uint64_t> completed{0}, stopped{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        try {
          OpResult r = h.server.submit(op).get();
          EXPECT_EQ(r.values, want.values);
          ++completed;
        } catch (const ServerStopped&) {
          ++stopped;  // raced the shutdown: acceptable, but never lost work
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  h.server.stop();
  for (auto& t : clients) t.join();

  // Every accepted request completed; only post-stop submissions failed.
  EXPECT_EQ(h.server.stats().completed, completed.load());
  EXPECT_GT(completed.load(), 0u);
}

TEST(Server, MalformedOpsThrowAtSubmit) {
  Harness h;
  const auto a = random_vec(4, 8, 23);
  const auto b = random_vec(3, 8, 24);
  EXPECT_THROW((void)h.server.submit(VecOp{OpKind::Add, 8, periph::LogicFn::And, a, b}),
               std::invalid_argument);
  EXPECT_THROW((void)h.server.submit(VecOp{OpKind::Add, 3, periph::LogicFn::And, a, a}),
               std::invalid_argument);
  const auto big = random_vec(5000, 8, 25);  // 4 macros x 64 pairs x 16 words = 4096 max
  EXPECT_THROW((void)h.server.submit(VecOp{OpKind::Add, 8, periph::LogicFn::And, big, big}),
               std::invalid_argument);
  EXPECT_EQ(h.server.stats().submitted, 0u);
}

TEST(Server, VectorEngineRoutesThroughServer) {
  Harness h;
  app::VectorEngine ve(h.server, 8);
  EXPECT_EQ(&ve.engine(), &h.eng);

  const auto a = random_vec(200, 8, 26);
  const auto b = random_vec(200, 8, 27);
  const auto sum = ve.add(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(sum[i], (a[i] + b[i]) & 0xFF);
  // Serial seed semantics survive the queue: 200 adds on 64 words/layer.
  EXPECT_EQ(ve.last_run().elapsed_cycles, 4u);

  std::vector<std::pair<std::span<const std::uint64_t>, std::span<const std::uint64_t>>>
      pairs = {{a, b}, {a, b}, {a, b}};
  const auto results = ve.mult_batch(pairs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results)
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(r.values[i], a[i] * b[i]);
  EXPECT_EQ(ve.last_run().elements, 600u);
}

}  // namespace
}  // namespace bpim::serve
