// Physical scaling checks that cut across modules: bit-line length vs
// delay, macro decorrelation, and static-vs-dynamic cycle agreement.

#include <gtest/gtest.h>

#include "app/vector_engine.hpp"
#include "common/rng.hpp"
#include "macro/memory.hpp"
#include "macro/program.hpp"
#include "timing/bl_compute.hpp"

namespace bpim {
namespace {

using namespace bpim::literals;

TEST(BlScaling, LongerBitlinesAreSlowerBothSchemes) {
  // The timing face of Fig 9's "BL size": more cells per BL = more
  // capacitance = slower evaluation, for both WL schemes.
  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  for (const auto scheme : {timing::BlScheme::Wlud, timing::BlScheme::ShortWlBoost}) {
    double prev = 0.0;
    for (const std::size_t rows : {64u, 128u, 256u, 512u}) {
      timing::BlComputeConfig cfg;
      cfg.rows = rows;
      cfg.t_end = Second(30e-9);
      const double d = timing::BlComputeModel(scheme, cfg, op).nominal_delay().si();
      EXPECT_GT(d, prev) << timing::to_string(scheme) << " rows=" << rows;
      prev = d;
    }
  }
}

TEST(BlScaling, BoostAdvantageHoldsAcrossBlLengths) {
  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  for (const std::size_t rows : {64u, 128u, 256u}) {
    timing::BlComputeConfig cfg;
    cfg.rows = rows;
    const double prop =
        timing::BlComputeModel(timing::BlScheme::ShortWlBoost, cfg, op).nominal_delay().si();
    const double wlud =
        timing::BlComputeModel(timing::BlScheme::Wlud, cfg, op).nominal_delay().si();
    EXPECT_LT(prop, 0.6 * wlud) << "rows=" << rows;
  }
}

TEST(BlScaling, ShortPulseDroopShrinksWithBlLength) {
  // Same pulse, bigger capacitance -> smaller initial droop -> later boost
  // trigger. The delay gap between 64- and 512-cell BLs must exceed the
  // pure-RC ratio of a WLUD-style discharge gap (regenerative lateness).
  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  timing::BlComputeConfig small;
  small.rows = 64;
  timing::BlComputeConfig large;
  large.rows = 512;
  large.t_end = Second(30e-9);
  const double d_small =
      timing::BlComputeModel(timing::BlScheme::ShortWlBoost, small, op).nominal_delay().si();
  const double d_large =
      timing::BlComputeModel(timing::BlScheme::ShortWlBoost, large, op).nominal_delay().si();
  EXPECT_GT(d_large / d_small, 2.0);
}

TEST(MemoryDisturb, MacrosFlipIndependently) {
  // Seeds are decorrelated per macro: under the unprotected scheme, two
  // macros stressing identical data must not corrupt identical cells.
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = 2;
  cfg.macro.wl_scheme = macro::WlScheme::FullSwingLong;
  cfg.macro.inject_disturb = true;
  macro::ImcMemory mem(cfg);

  BitVector ones(128);
  ones.fill(true);
  for (std::size_t m = 0; m < 2; ++m) {
    mem.macro(m).poke_row(0, ones);
    mem.macro(m).poke_row(1, BitVector(128));
    mem.macro(m).logic_rows(periph::LogicFn::And, array::RowRef::main(0),
                            array::RowRef::main(1));
  }
  EXPECT_GT(mem.macro(0).disturb_flips(), 0u);
  EXPECT_GT(mem.macro(1).disturb_flips(), 0u);
  EXPECT_FALSE(mem.macro(0).peek_row(0) == mem.macro(1).peek_row(0));
}

TEST(ProgramCycles, StaticEstimateMatchesExecution) {
  macro::ImcMacro m{macro::MacroConfig{}};
  macro::MacroController ctl(m);
  macro::Program p;
  p.add(array::RowRef::main(0), array::RowRef::main(1), 8)
      .sub(array::RowRef::main(2), array::RowRef::main(3), 16)
      .mult(array::RowRef::main(4), array::RowRef::main(5), 4)
      .unary(macro::Op::Copy, array::RowRef::main(6), array::RowRef::dummy(0), 8);
  const auto stats = ctl.run(p);
  EXPECT_EQ(stats.cycles, p.static_cycles());
}

TEST(MemoryScale, WiderMemoryHoldsLongerVectorsPerLayer) {
  macro::MemoryConfig small;
  small.banks = 1;
  small.macros_per_bank = 1;
  macro::MemoryConfig large;  // default 4x16
  macro::ImcMemory mem_s(small), mem_l(large);
  app::VectorEngine e_s(mem_s, 8), e_l(mem_l, 8);
  EXPECT_EQ(e_s.layer_capacity(), 16u);
  EXPECT_EQ(e_l.layer_capacity(), 16u * 64u);
}

}  // namespace
}  // namespace bpim
