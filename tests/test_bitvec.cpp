// BitVector: the bit-exact substrate under every row and latch.

#include <gtest/gtest.h>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace bpim {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVector, ConstructsZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ValueConstructorLittleEndian) {
  BitVector v(8, 0b1010);
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_EQ(v.to_u64(), 0b1010u);
}

TEST(BitVector, ValueMustFit) {
  EXPECT_THROW(BitVector(3, 8), std::invalid_argument);
  EXPECT_NO_THROW(BitVector(3, 7));
}

TEST(BitVector, SetGetAcrossWordBoundary) {
  BitVector v(128);
  v.set(63, true);
  v.set(64, true);
  v.set(127, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(127));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(16);
  EXPECT_THROW((void)v.get(16), std::invalid_argument);
  EXPECT_THROW(v.set(16, true), std::invalid_argument);
}

TEST(BitVector, FillAndNotRespectSizeMask) {
  BitVector v(70);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 70u);
  const BitVector inv = ~v;
  EXPECT_EQ(inv.popcount(), 0u);
}

TEST(BitVector, BitwiseOps) {
  BitVector a(8, 0b1100);
  BitVector b(8, 0b1010);
  EXPECT_EQ((a & b).to_u64(), 0b1000u);
  EXPECT_EQ((a | b).to_u64(), 0b1110u);
  EXPECT_EQ((a ^ b).to_u64(), 0b0110u);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(8);
  BitVector b(9);
  EXPECT_THROW(a &= b, std::invalid_argument);
}

TEST(BitVector, Shl1AcrossWords) {
  BitVector v(128);
  v.set(63, true);
  v.shl1();
  EXPECT_FALSE(v.get(63));
  EXPECT_TRUE(v.get(64));
  // MSB falls off the end.
  v.fill(false);
  v.set(127, true);
  v.shl1();
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SliceAndPatch) {
  BitVector v(32, 0xABCDu);
  const BitVector nib = v.slice(4, 4);
  EXPECT_EQ(nib.to_u64(), 0xCu);
  BitVector w(32);
  w.patch(8, nib);
  EXPECT_EQ(w.to_u64(), 0xC00u);
  EXPECT_THROW(v.slice(30, 4), std::invalid_argument);
  EXPECT_THROW(w.patch(30, nib), std::invalid_argument);
}

TEST(BitVector, ToStringMsbFirst) {
  BitVector v(4, 0b0110);
  EXPECT_EQ(v.to_string(), "0110");
}

TEST(BitVector, EqualityIncludesSize) {
  EXPECT_EQ(BitVector(8, 5), BitVector(8, 5));
  EXPECT_FALSE(BitVector(8, 5) == BitVector(9, 5));
  EXPECT_FALSE(BitVector(8, 5) == BitVector(8, 6));
}

TEST(BitVector, RandomizeIsDeterministicPerSeed) {
  Rng r1(7), r2(7), r3(8);
  BitVector a(200), b(200), c(200);
  a.randomize(r1);
  b.randomize(r2);
  c.randomize(r3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  // Random 200-bit vector has ~100 set bits; 5-sigma band.
  EXPECT_GT(a.popcount(), 60u);
  EXPECT_LT(a.popcount(), 140u);
}

}  // namespace
}  // namespace bpim
