// BitVector: the bit-exact substrate under every row and latch.

#include <gtest/gtest.h>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace bpim {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVector, ConstructsZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ValueConstructorLittleEndian) {
  BitVector v(8, 0b1010);
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_EQ(v.to_u64(), 0b1010u);
}

TEST(BitVector, ValueMustFit) {
  EXPECT_THROW(BitVector(3, 8), std::invalid_argument);
  EXPECT_NO_THROW(BitVector(3, 7));
}

TEST(BitVector, ValueFitCheckIsShiftSafeAtWordWidth) {
  // The check must hold at size == 64 too (any u64 fits; `1ull << 64` is UB
  // and must not be evaluated) and keep rejecting just below it.
  EXPECT_NO_THROW(BitVector(64, ~0ull));
  EXPECT_THROW(BitVector(63, ~0ull), std::invalid_argument);
  EXPECT_NO_THROW(BitVector(63, ~0ull >> 1));
  EXPECT_TRUE(BitVector::fits_u64(~0ull, 64));
  EXPECT_FALSE(BitVector::fits_u64(~0ull, 63));
}

TEST(BitVector, SetGetAcrossWordBoundary) {
  BitVector v(128);
  v.set(63, true);
  v.set(64, true);
  v.set(127, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(127));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(16);
  EXPECT_THROW((void)v.get(16), std::invalid_argument);
  EXPECT_THROW(v.set(16, true), std::invalid_argument);
}

TEST(BitVector, FillAndNotRespectSizeMask) {
  BitVector v(70);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 70u);
  const BitVector inv = ~v;
  EXPECT_EQ(inv.popcount(), 0u);
}

TEST(BitVector, BitwiseOps) {
  BitVector a(8, 0b1100);
  BitVector b(8, 0b1010);
  EXPECT_EQ((a & b).to_u64(), 0b1000u);
  EXPECT_EQ((a | b).to_u64(), 0b1110u);
  EXPECT_EQ((a ^ b).to_u64(), 0b0110u);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(8);
  BitVector b(9);
  EXPECT_THROW(a &= b, std::invalid_argument);
}

TEST(BitVector, Shl1AcrossWords) {
  BitVector v(128);
  v.set(63, true);
  v.shl1();
  EXPECT_FALSE(v.get(63));
  EXPECT_TRUE(v.get(64));
  // MSB falls off the end.
  v.fill(false);
  v.set(127, true);
  v.shl1();
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SliceAndPatch) {
  BitVector v(32, 0xABCDu);
  const BitVector nib = v.slice(4, 4);
  EXPECT_EQ(nib.to_u64(), 0xCu);
  BitVector w(32);
  w.patch(8, nib);
  EXPECT_EQ(w.to_u64(), 0xC00u);
  EXPECT_THROW(v.slice(30, 4), std::invalid_argument);
  EXPECT_THROW(w.patch(30, nib), std::invalid_argument);
}

TEST(BitVector, ToStringMsbFirst) {
  BitVector v(4, 0b0110);
  EXPECT_EQ(v.to_string(), "0110");
}

TEST(BitVector, EqualityIncludesSize) {
  EXPECT_EQ(BitVector(8, 5), BitVector(8, 5));
  EXPECT_FALSE(BitVector(8, 5) == BitVector(9, 5));
  EXPECT_FALSE(BitVector(8, 5) == BitVector(8, 6));
}

TEST(BitVector, WordAccessMasksPastSize) {
  BitVector v(70);
  EXPECT_EQ(v.word_count(), 2u);
  v.set_word(0, ~0ull);
  v.set_word(1, ~0ull);  // only bits 64..69 stick
  EXPECT_EQ(v.word(0), ~0ull);
  EXPECT_EQ(v.word(1), 0x3Full);
  EXPECT_EQ(v.popcount(), 70u);
}

TEST(BitVector, ExtractDepositRoundTripAcrossWordBoundary) {
  Rng rng(42);
  BitVector v(200);
  v.randomize(rng);
  for (const std::size_t pos : {0u, 7u, 40u, 60u, 63u, 64u, 120u, 136u}) {
    for (const std::size_t len : {1u, 8u, 17u, 33u, 64u}) {
      if (pos + len > v.size()) continue;
      // extract agrees with per-bit reads
      std::uint64_t ref = 0;
      for (std::size_t i = 0; i < len; ++i)
        ref |= static_cast<std::uint64_t>(v.get(pos + i)) << i;
      EXPECT_EQ(v.extract_bits(pos, len), ref) << pos << "," << len;
      // deposit followed by extract round-trips and touches nothing else
      BitVector w = v;
      const std::uint64_t value = rng.next_u64() & (len == 64 ? ~0ull : (1ull << len) - 1);
      w.deposit_bits(pos, len, value);
      EXPECT_EQ(w.extract_bits(pos, len), value) << pos << "," << len;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i < pos || i >= pos + len) {
          ASSERT_EQ(w.get(i), v.get(i)) << pos << "," << len;
        }
      }
    }
  }
}

TEST(BitVector, DepositIgnoresHighBitsOfValue) {
  BitVector v(32);
  v.deposit_bits(4, 4, 0xFFull);
  EXPECT_EQ(v.to_u64(), 0xF0ull);
}

TEST(BitVector, SlicePatchMatchPerBitAcrossWordBoundaries) {
  Rng rng(9);
  BitVector v(170);
  v.randomize(rng);
  const BitVector s = v.slice(59, 90);
  for (std::size_t i = 0; i < 90; ++i) ASSERT_EQ(s.get(i), v.get(59 + i));
  BitVector w(170);
  w.randomize(rng);
  BitVector patched = w;
  patched.patch(33, s);
  for (std::size_t i = 0; i < 170; ++i)
    ASSERT_EQ(patched.get(i), (i >= 33 && i < 123) ? s.get(i - 33) : w.get(i));
}

TEST(BitVector, Shl1InFieldsMatchesPerBitReference) {
  Rng rng(11);
  for (const std::size_t width : {64u, 96u, 128u, 130u}) {
    for (const std::size_t field : {1u, 2u, 8u, 16u, 64u, 5u, 13u, 65u}) {
      if (width % field != 0) continue;
      BitVector v(width);
      v.randomize(rng);
      BitVector ref(width);
      for (std::size_t p = 0; p < width; ++p)
        if (p % field != 0) ref.set(p, v.get(p - 1));
      BitVector fast = v;
      fast.shl1_in_fields(field);
      EXPECT_EQ(fast, ref) << "width=" << width << " field=" << field;
    }
  }
}

TEST(BitVector, Shl1InFieldsRejectsNonDividingField) {
  BitVector v(96);
  EXPECT_THROW(v.shl1_in_fields(7), std::invalid_argument);
}

TEST(BitVector, ForEachSetBitVisitsAscending) {
  BitVector v(140);
  for (const std::size_t i : {0u, 5u, 63u, 64u, 100u, 139u}) v.set(i, true);
  std::vector<std::size_t> seen;
  v.for_each_set_bit([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 5, 63, 64, 100, 139}));
}

TEST(BitVector, ResetReusesStorageAndZeroes) {
  BitVector v(128);
  v.fill(true);
  v.reset(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.popcount(), 0u);
  v.reset(256);
  EXPECT_EQ(v.size(), 256u);
  EXPECT_EQ(v.popcount(), 0u);
}

// Reference scans for the adaptive-path field helpers: per-bit walks with
// none of the word-parallel folding.
std::size_t ref_field_max_set_bit(const BitVector& v, std::size_t field) {
  std::size_t best = BitVector::npos;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v.get(i)) {
      const std::size_t in_field = i % field;
      if (best == BitVector::npos || in_field > best) best = in_field;
    }
  return best;
}

BitVector ref_zero_field_mask(const BitVector& v, std::size_t field) {
  BitVector out(v.size());
  for (std::size_t p = 0; p < v.size(); p += field) {
    bool zero = true;
    for (std::size_t i = 0; i < field && zero; ++i) zero = !v.get(p + i);
    if (zero) out.set(p, true);
  }
  return out;
}

TEST(BitVector, FieldMaxSetBitMatchesPerBitReference) {
  Rng rng(23);
  // Word-parallel fields are the MULT-unit widths of precisions 2..32
  // (unit = 2*bits); 5/13/65 force the straddling fallback.
  for (const std::size_t field : {4u, 8u, 16u, 32u, 64u, 5u, 13u, 65u}) {
    for (const std::size_t fields : {1u, 2u, 3u, 7u, 16u, 33u}) {
      const std::size_t width = field * fields;
      for (int trial = 0; trial < 8; ++trial) {
        BitVector v(width);
        v.randomize(rng);
        // Sparsify so npos and low-depth cases actually occur.
        if (trial % 2 == 1) {
          BitVector mask(width);
          mask.randomize(rng);
          v &= mask;
          v &= mask;  // ~25% density
        }
        EXPECT_EQ(v.field_max_set_bit(field), ref_field_max_set_bit(v, field))
            << "field=" << field << " width=" << width;
      }
    }
  }
}

TEST(BitVector, FieldMaxSetBitEdgeCases) {
  for (const std::size_t field : {1u, 4u, 8u, 16u, 64u, 13u}) {
    const std::size_t width = field * 5;
    BitVector zeros(width);
    EXPECT_EQ(zeros.field_max_set_bit(field), BitVector::npos) << field;
    BitVector ones(width);
    ones.fill(true);
    EXPECT_EQ(ones.field_max_set_bit(field), field - 1) << field;
    // A single bit at the LSB of the last field: in-field index 0.
    BitVector lsb(width);
    lsb.set(width - field, true);
    EXPECT_EQ(lsb.field_max_set_bit(field), 0u) << field;
  }
}

TEST(BitVector, FieldMaxSetBitRejectsNonDividingField) {
  BitVector v(96);
  EXPECT_THROW((void)v.field_max_set_bit(7), std::invalid_argument);
}

TEST(BitVector, ZeroFieldMaskMatchesPerBitReference) {
  Rng rng(31);
  for (const std::size_t field : {4u, 8u, 16u, 32u, 64u, 5u, 13u, 65u}) {
    for (const std::size_t fields : {1u, 2u, 3u, 7u, 16u, 33u}) {
      const std::size_t width = field * fields;
      for (int trial = 0; trial < 8; ++trial) {
        BitVector v(width);
        v.randomize(rng);
        // Sparsify hard so a good share of the fields really are zero.
        for (int s = 0; s < 2; ++s) {
          BitVector mask(width);
          mask.randomize(rng);
          v &= mask;
        }
        EXPECT_EQ(v.zero_field_mask(field), ref_zero_field_mask(v, field))
            << "field=" << field << " width=" << width;
      }
    }
  }
}

TEST(BitVector, ZeroFieldMaskEdgeCases) {
  for (const std::size_t field : {1u, 4u, 8u, 16u, 64u, 13u}) {
    const std::size_t width = field * 5;
    BitVector zeros(width);
    EXPECT_EQ(zeros.zero_field_mask(field).popcount(), 5u) << field;
    BitVector ones(width);
    ones.fill(true);
    EXPECT_EQ(ones.zero_field_mask(field).popcount(), 0u) << field;
    // Exactly one nonzero field (its MSB) clears exactly that field's flag.
    BitVector one(width);
    one.set(2 * field + (field - 1), true);
    const BitVector m = one.zero_field_mask(field);
    EXPECT_EQ(m.popcount(), 4u) << field;
    EXPECT_FALSE(m.get(2 * field)) << field;
  }
}

TEST(BitVector, ZeroFieldMaskTrimsPhantomFieldsInLastWord) {
  // width 96, field 8: the last word's upper half is past size(); its
  // phantom zero fields must not leak set bits into the mask.
  BitVector v(96);
  v.fill(true);
  EXPECT_EQ(v.zero_field_mask(8).popcount(), 0u);
  BitVector z(96);
  EXPECT_EQ(z.zero_field_mask(8).popcount(), 12u);
}

TEST(BitVector, ZeroFieldMaskRejectsNonDividingField) {
  BitVector v(96);
  EXPECT_THROW((void)v.zero_field_mask(7), std::invalid_argument);
}

TEST(BitVector, RandomizeIsDeterministicPerSeed) {
  Rng r1(7), r2(7), r3(8);
  BitVector a(200), b(200), c(200);
  a.randomize(r1);
  b.randomize(r2);
  c.randomize(r3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  // Random 200-bit vector has ~100 set bits; 5-sigma band.
  EXPECT_GT(a.popcount(), 60u);
  EXPECT_LT(a.popcount(), 140u);
}

}  // namespace
}  // namespace bpim
