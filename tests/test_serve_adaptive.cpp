// Adaptive execution behind the serving frontend: toggling the policy on a
// live server must never change a client's values -- only the cycle account
// moves -- including while adaptive and plain clients race on one pool and
// the policy flips mid-flight. This is the stress the TSan CI job runs
// against the atomic policy snapshot in ExecutionEngine.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

namespace bpim::serve {
namespace {

using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

macro::MemoryConfig tiny_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  return cfg;
}

/// ~75% zero operands: the regime the zero-skip leg of the policy targets.
std::vector<std::uint64_t> sparse_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = (rng.next_u64() % 4 == 0) ? (rng.next_u64() & mask) : 0;
  return v;
}

/// The op alone on a fresh memory, policy off: the dense reference every
/// served result must match bit-for-bit whatever the policy does.
OpResult run_dense_reference(const VecOp& op) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{1});
  return eng.run(op);
}

TEST(ServeAdaptive, PolicyRoundTripsThroughServerToEveryPoolEngine) {
  MemoryPoolConfig pc;
  pc.memories = 2;
  pc.memory = tiny_memory();
  pc.threads_per_memory = 1;
  MemoryPool pool(pc);
  Server server(pool);
  server.set_adaptive_policy(macro::AdaptivePolicy{true, true});
  for (std::size_t m = 0; m < pool.size(); ++m) {
    const macro::AdaptivePolicy p = pool.engine(m).adaptive_policy();
    EXPECT_TRUE(p.narrow_precision) << m;
    EXPECT_TRUE(p.skip_zero) << m;
  }
  server.set_adaptive_policy({});
  for (std::size_t m = 0; m < pool.size(); ++m)
    EXPECT_FALSE(pool.engine(m).adaptive_policy().enabled()) << m;
}

TEST(ServeAdaptive, SparseMultConservesCyclesExactlyPerOp) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  Server server(eng);
  server.set_adaptive_policy(macro::AdaptivePolicy{true, true});

  const auto a = sparse_vec(200, 8, 11);
  const auto b = sparse_vec(200, 8, 12);
  const VecOp op{OpKind::Mult, 8, periph::LogicFn::And, a, b};
  const OpResult want = run_dense_reference(op);
  const OpResult got = server.submit(op).get();

  EXPECT_EQ(got.values, want.values);
  // Unfused single op: the makespan split against the dense run is exact.
  EXPECT_GT(got.stats.adaptive_cycles_saved, 0u);
  EXPECT_EQ(got.stats.elapsed_cycles + got.stats.adaptive_cycles_saved,
            want.stats.elapsed_cycles);
  EXPECT_GT(server.stats().modeled_adaptive_cycles_saved, 0u);
}

TEST(ServeAdaptive, StressPolicyTogglesUnderRacingClients) {
  MemoryPoolConfig pc;
  pc.memories = 2;
  pc.memory = tiny_memory();
  pc.threads_per_memory = 1;
  MemoryPool pool(pc);
  Server server(pool, ServerConfig{/*queue_capacity=*/32, /*max_batch_ops=*/8,
                                   /*coalesce_window=*/std::chrono::microseconds(50)});

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kOpsPerClient = 10;

  struct ClientLog {
    std::vector<VecOp> ops;
    std::vector<std::vector<std::uint64_t>> a, b;
    std::vector<OpResult> results;
  };
  std::vector<ClientLog> logs(kClients);
  std::atomic<bool> done{false};

  // The antagonist: flip the policy the whole time the clients run. Client
  // values must not care which snapshot any given batch caught.
  std::thread toggler([&] {
    bool on = false;
    while (!done.load(std::memory_order_acquire)) {
      server.set_adaptive_policy(on ? macro::AdaptivePolicy{true, true}
                                    : macro::AdaptivePolicy{});
      on = !on;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      bpim::Rng rng(0xADA + c);
      ClientLog& log = logs[c];
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const unsigned bits = std::array<unsigned, 2>{4, 8}[rng.next_u64() % 2];
        const OpKind kind = std::array<OpKind, 3>{OpKind::Add, OpKind::Mult,
                                                  OpKind::Mult}[rng.next_u64() % 3];
        const std::size_t n = 1 + rng.next_u64() % 200;
        log.a.push_back(sparse_vec(n, bits, rng.next_u64()));
        log.b.push_back(sparse_vec(n, bits, rng.next_u64()));
        VecOp op{kind, bits, periph::LogicFn::And, log.a.back(), log.b.back()};
        log.ops.push_back(op);
        log.results.push_back(server.submit(op).get());
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_release);
  toggler.join();
  server.stop();

  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < logs[c].ops.size(); ++i) {
      const OpResult want = run_dense_reference(logs[c].ops[i]);
      EXPECT_EQ(logs[c].results[i].values, want.values) << "client " << c << " op " << i;
      // Whatever snapshot the batch caught, the per-op split stays exact.
      EXPECT_EQ(logs[c].results[i].stats.elapsed_cycles +
                    logs[c].results[i].stats.adaptive_cycles_saved,
                want.stats.elapsed_cycles)
          << "client " << c << " op " << i;
    }
  }
  const ServeStats s = server.stats();
  EXPECT_EQ(s.completed, kClients * kOpsPerClient);
  EXPECT_EQ(s.expired, 0u);
}

}  // namespace
}  // namespace bpim::serve
