// TraceSession: the exported Chrome trace-event JSON must stay well-formed
// and internally consistent -- balanced async pairs, matched flow arrows,
// events only on declared tracks -- including under concurrent multi-client
// serving load. The stress test here is the one the TSan CI job leans on:
// clients, the scheduler, lane workers and the exporter all touch the
// session at once.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace bpim::obs {
namespace {

using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::VecOp;

macro::MemoryConfig tiny_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

json::Value export_and_parse(TraceSession& session) {
  std::ostringstream out;
  session.export_json(out);
  return json::parse(out.str());
}

/// Drop whatever earlier tests (or earlier sections of this one) left in
/// the global session's rings, so each test asserts only on its own events.
void drain_global() {
  std::ostringstream discard;
  TraceSession::global().export_json(discard);
}

/// Structural invariants any export must satisfy; returns the events.
const std::vector<json::Value>& check_well_formed(const json::Value& doc) {
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  const std::vector<json::Value>& events = doc.at("traceEvents").as_array();

  std::set<std::uint64_t> declared_tids;
  for (const json::Value& e : events) {
    EXPECT_EQ(e.at("pid").as_u64(), 1u);
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      if (e.at("name").as_string() == "thread_name")
        declared_tids.insert(e.at("tid").as_u64());
      continue;
    }
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    if (ph == "X") {
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
    if (ph == "b" || ph == "e" || ph == "s" || ph == "f") {
      EXPECT_NE(e.find("id"), nullptr) << ph << " event without an id";
    }
  }
  // Every non-metadata event renders on a declared track.
  for (const json::Value& e : events) {
    if (e.at("ph").as_string() == "M") continue;
    EXPECT_TRUE(declared_tids.count(e.at("tid").as_u64()))
        << "event on undeclared tid " << e.at("tid").as_u64();
  }
  return events;
}

TEST(TraceSession, DisabledSessionRecordsNothing) {
  TraceSession& session = TraceSession::global();
  drain_global();
  session.disable();
  {
    BPIM_TRACE_SPAN(span, "test.disabled");
    span.arg("x", 1.0);
  }
  BPIM_TRACE_INSTANT("test.disabled.instant");
  const json::Value doc = export_and_parse(session);
  for (const json::Value& e : doc.at("traceEvents").as_array())
    EXPECT_EQ(e.at("ph").as_string(), "M");
}

TEST(TraceSession, SpansInstantsAsyncAndFlowsExport) {
  TraceSession& session = TraceSession::global();
  drain_global();
  session.enable();
  session.set_thread_name("test-main");
  const TrackId track = session.register_track("test track");
  {
    BPIM_TRACE_SPAN(span, "test.span");
    span.arg("ops", 3.0);
    BPIM_TRACE_INSTANT("test.instant", track, {{"k", 2.0}});
  }
  session.async_begin("test.request", 42, EventArgs{{"priority", 1.0}});
  session.flow_start("test.flow", 42);
  session.flow_finish("test.flow", 42, track);
  session.async_end("test.request", 42);
  session.disable();

  const json::Value doc = export_and_parse(session);
  const auto& events = check_well_formed(doc);

  std::map<std::string, int> by_ph;
  bool saw_span = false, saw_instant = false, saw_thread_name = false;
  for (const json::Value& e : events) {
    ++by_ph[e.at("ph").as_string()];
    if (e.at("ph").as_string() == "X" && e.at("name").as_string() == "test.span") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("ops").as_number(), 3.0);
    }
    if (e.at("ph").as_string() == "i" && e.at("name").as_string() == "test.instant") {
      saw_instant = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("k").as_number(), 2.0);
    }
    if (e.at("ph").as_string() == "M" && e.at("name").as_string() == "thread_name" &&
        e.at("args").at("name").as_string() == "test-main")
      saw_thread_name = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_EQ(by_ph["b"], 1);
  EXPECT_EQ(by_ph["e"], 1);
  EXPECT_EQ(by_ph["s"], 1);
  EXPECT_EQ(by_ph["f"], 1);

  // Export drains: a second export sees only re-emitted metadata.
  const json::Value again = export_and_parse(session);
  for (const json::Value& e : again.at("traceEvents").as_array())
    EXPECT_EQ(e.at("ph").as_string(), "M");
}

TEST(TraceSession, ConcurrentServeStressExportsWellNestedTrace) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kOpsPerClient = 16;
  constexpr unsigned kBits = 8;

  TraceSession& session = TraceSession::global();
  drain_global();
  session.enable();

  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  const std::size_t elements = eng.mult_units_per_row(kBits) * mem.macro_count();
  json::Value racing_doc;
  {
    serve::ServerConfig cfg;
    cfg.queue_capacity = 8;
    cfg.max_batch_ops = 8;
    cfg.coalesce_window = std::chrono::microseconds(100);
    serve::Server server(eng, cfg);

    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = 0; i < kOpsPerClient; ++i) {
          const auto a = random_vec(elements, kBits, 1000 * c + i);
          const auto b = random_vec(elements, kBits, 2000 * c + i);
          const VecOp op{OpKind::Mult, kBits, periph::LogicFn::And, a, b};
          (void)server.submit(op).get();
        }
      });
    }
    // Exporter races the writers on purpose: a partial drain must still
    // produce valid JSON and leave the rings consistent.
    std::ostringstream racing;
    session.export_json(racing);
    for (auto& t : clients) t.join();
    server.stop();
    racing_doc = json::parse(racing.str());
  }
  session.disable();

  const json::Value doc = export_and_parse(session);
  check_well_formed(racing_doc);
  const auto& events = check_well_formed(doc);

  // Across both exports, every request bar is balanced: exactly one "b"
  // and one "e" per id, and the spans of both layers showed up.
  std::map<std::uint64_t, int> bars;
  std::size_t submit_spans = 0, batch_spans = 0;
  const auto tally = [&](const std::vector<json::Value>& evs) {
    for (const json::Value& e : evs) {
      const std::string& ph = e.at("ph").as_string();
      if (ph == "b") ++bars[e.at("id").as_u64()];
      if (ph == "e") --bars[e.at("id").as_u64()];
      if (ph == "X" && e.at("name").as_string() == "serve.submit") ++submit_spans;
      if (ph == "X" && e.at("name").as_string() == "serve.batch") ++batch_spans;
    }
  };
  tally(racing_doc.at("traceEvents").as_array());
  tally(events);
  for (const auto& [id, balance] : bars)
    EXPECT_EQ(balance, 0) << "request bar " << id << " out of balance";
  EXPECT_EQ(bars.size(), kClients * kOpsPerClient);
  EXPECT_EQ(submit_spans, kClients * kOpsPerClient);
  EXPECT_GT(batch_spans, 0u);
  EXPECT_EQ(session.dropped(), 0u)
      << "ring overflow in a test this small points at a sizing regression";
}

}  // namespace
}  // namespace bpim::obs
