// The macro's cycle-by-cycle energy ledger must agree with the closed-form
// EnergyModel (same component prices, same recipes) -- Table 2 by simulation.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "energy/calibration.hpp"
#include "macro/imc_macro.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using energy::EnergyModel;
using energy::SeparatorMode;

MacroConfig config_with(SeparatorMode sep) {
  MacroConfig cfg;
  cfg.separator = sep;
  return cfg;
}

/// Energy per word of a full-row op = ledger energy / words per row.
double per_word_fj(const ImcMacro& m, unsigned bits) {
  return in_fJ(m.last_op().op_energy) / static_cast<double>(m.cols() / bits);
}

class MacroEnergy : public ::testing::TestWithParam<unsigned> {};

TEST_P(MacroEnergy, AddMatchesClosedForm) {
  const unsigned bits = GetParam();
  ImcMacro m{MacroConfig{}};
  const EnergyModel ref;
  m.add_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_NEAR(per_word_fj(m, bits), in_fJ(ref.add(bits, m.config().vdd)), 1e-6);
}

TEST_P(MacroEnergy, SubMatchesClosedFormBothSeparatorModes) {
  const unsigned bits = GetParam();
  const EnergyModel ref;
  for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
    ImcMacro m{config_with(sep)};
    m.sub_rows(RowRef::main(0), RowRef::main(1), bits);
    EXPECT_NEAR(per_word_fj(m, bits), in_fJ(ref.sub(bits, m.config().vdd, sep)), 1e-6)
        << (sep == SeparatorMode::Enabled ? "w/ sep" : "w/o sep");
  }
}

TEST_P(MacroEnergy, MultMatchesClosedFormBothSeparatorModes) {
  const unsigned bits = GetParam();
  const EnergyModel ref;
  for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
    ImcMacro m{config_with(sep)};
    m.poke_mult_operand(0, 0, bits, 1);
    m.poke_mult_operand(1, 0, bits, 1);
    m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    const double per_unit =
        in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(bits));
    EXPECT_NEAR(per_unit, in_fJ(ref.mult(bits, m.config().vdd, sep)), 1e-6)
        << (sep == SeparatorMode::Enabled ? "w/ sep" : "w/o sep");
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, MacroEnergy, ::testing::Values(2u, 4u, 8u));

TEST(MacroEnergyTable2, SimulatedMacroReproducesTable2) {
  // End-to-end: run the ops on the macro and compare the per-word energies
  // against the paper's Table 2 within the calibration tolerance.
  for (const auto& t : energy::table2_targets()) {
    ImcMacro m{config_with(t.sep)};
    double fj = 0.0;
    const std::string op(t.op);
    if (op == "ADD") {
      m.add_rows(RowRef::main(0), RowRef::main(1), t.bits);
      fj = per_word_fj(m, t.bits);
    } else if (op == "SUB") {
      m.sub_rows(RowRef::main(0), RowRef::main(1), t.bits);
      fj = per_word_fj(m, t.bits);
    } else {
      m.mult_rows(RowRef::main(0), RowRef::main(1), t.bits);
      fj = in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(t.bits));
    }
    EXPECT_NEAR(fj, t.paper_fj, 0.06 * t.paper_fj)
        << op << " " << t.bits << "b sep=" << (t.sep == SeparatorMode::Enabled);
  }
}

TEST(MacroEnergyProperties, EnergyIndependentOfDataValues) {
  // The structural ledger charges by bits touched, not data (activity
  // factors are modelled as constants) -- two different operand sets must
  // report identical op energy.
  ImcMacro m{MacroConfig{}};
  Rng rng(9);
  BitVector r0(128), r1(128);
  r0.randomize(rng);
  r1.randomize(rng);
  m.poke_row(0, r0);
  m.poke_row(1, r1);
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  const double e1 = m.last_op().op_energy.si();
  m.poke_row(0, BitVector(128));
  m.poke_row(1, BitVector(128));
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_DOUBLE_EQ(m.last_op().op_energy.si(), e1);
}

TEST(MacroEnergyProperties, LowerSupplyQuadraticallyCheaper) {
  MacroConfig lo;
  lo.vdd = Volt(0.6);
  ImcMacro m09{MacroConfig{}};
  ImcMacro m06{lo};
  m09.add_rows(RowRef::main(0), RowRef::main(1), 8);
  m06.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_NEAR(m06.last_op().op_energy.si() / m09.last_op().op_energy.si(),
              (0.6 / 0.9) * (0.6 / 0.9), 1e-9);
}

TEST(MacroEnergyProperties, SeparatorNeverCostsEnergy) {
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    ImcMacro with{config_with(SeparatorMode::Enabled)};
    ImcMacro without{config_with(SeparatorMode::Disabled)};
    with.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    without.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    EXPECT_LT(with.last_op().op_energy.si(), without.last_op().op_energy.si());
  }
}

}  // namespace
}  // namespace bpim::macro
