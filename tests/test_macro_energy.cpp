// The macro's cycle-by-cycle energy ledger must agree with the closed-form
// EnergyModel (same component prices, same recipes) -- Table 2 by simulation.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "energy/calibration.hpp"
#include "macro/cost_model.hpp"
#include "macro/imc_macro.hpp"
#include "macro/program.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using energy::EnergyModel;
using energy::SeparatorMode;

MacroConfig config_with(SeparatorMode sep) {
  MacroConfig cfg;
  cfg.separator = sep;
  return cfg;
}

/// Energy per word of a full-row op = ledger energy / words per row.
double per_word_fj(const ImcMacro& m, unsigned bits) {
  return in_fJ(m.last_op().op_energy) / static_cast<double>(m.cols() / bits);
}

class MacroEnergy : public ::testing::TestWithParam<unsigned> {};

TEST_P(MacroEnergy, AddMatchesClosedForm) {
  const unsigned bits = GetParam();
  ImcMacro m{MacroConfig{}};
  const EnergyModel ref;
  m.add_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_NEAR(per_word_fj(m, bits), in_fJ(ref.add(bits, m.config().vdd)), 1e-6);
}

TEST_P(MacroEnergy, SubMatchesClosedFormBothSeparatorModes) {
  const unsigned bits = GetParam();
  const EnergyModel ref;
  for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
    ImcMacro m{config_with(sep)};
    m.sub_rows(RowRef::main(0), RowRef::main(1), bits);
    EXPECT_NEAR(per_word_fj(m, bits), in_fJ(ref.sub(bits, m.config().vdd, sep)), 1e-6)
        << (sep == SeparatorMode::Enabled ? "w/ sep" : "w/o sep");
  }
}

TEST_P(MacroEnergy, MultMatchesClosedFormBothSeparatorModes) {
  const unsigned bits = GetParam();
  const EnergyModel ref;
  for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
    ImcMacro m{config_with(sep)};
    m.poke_mult_operand(0, 0, bits, 1);
    m.poke_mult_operand(1, 0, bits, 1);
    m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    const double per_unit =
        in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(bits));
    EXPECT_NEAR(per_unit, in_fJ(ref.mult(bits, m.config().vdd, sep)), 1e-6)
        << (sep == SeparatorMode::Enabled ? "w/ sep" : "w/o sep");
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, MacroEnergy, ::testing::Values(2u, 4u, 8u));

TEST(MacroEnergyTable2, SimulatedMacroReproducesTable2) {
  // End-to-end: run the ops on the macro and compare the per-word energies
  // against the paper's Table 2 within the calibration tolerance.
  for (const auto& t : energy::table2_targets()) {
    ImcMacro m{config_with(t.sep)};
    double fj = 0.0;
    const std::string op(t.op);
    if (op == "ADD") {
      m.add_rows(RowRef::main(0), RowRef::main(1), t.bits);
      fj = per_word_fj(m, t.bits);
    } else if (op == "SUB") {
      m.sub_rows(RowRef::main(0), RowRef::main(1), t.bits);
      fj = per_word_fj(m, t.bits);
    } else {
      m.mult_rows(RowRef::main(0), RowRef::main(1), t.bits);
      fj = in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(t.bits));
    }
    EXPECT_NEAR(fj, t.paper_fj, 0.06 * t.paper_fj)
        << op << " " << t.bits << "b sep=" << (t.sep == SeparatorMode::Enabled);
  }
}

TEST(MacroEnergyConservation, InstructionCostMatchesLedgerBitwise) {
  // The conservation law, per instruction: CostModel must replay the exact
  // charge sequence of the executing datapath -- same components, same bit
  // counts, same fold order -- so cycles match as integers and energy as
  // bitwise-identical doubles, across precisions, separator modes and
  // supply voltages.
  const RowRef d1 = RowRef::dummy(ImcMacro::kDummyOperand);
  const RowRef d2 = RowRef::dummy(ImcMacro::kDummyAccum);
  for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
    for (const double vdd : {0.9, 0.6}) {
      MacroConfig cfg;
      cfg.separator = sep;
      cfg.vdd = Volt(vdd);
      ImcMacro m{cfg};
      const CostModel cost(cfg);
      const auto expect_priced = [&](const Instruction& inst, const char* what) {
        const InstructionCost priced = cost.instruction_cost(inst);
        EXPECT_EQ(priced.cycles, m.last_op().cycles)
            << what << " bits=" << inst.bits << " vdd=" << vdd
            << " sep=" << (sep == SeparatorMode::Enabled);
        EXPECT_EQ(priced.energy.si(), m.last_op().op_energy.si())
            << what << " bits=" << inst.bits << " vdd=" << vdd
            << " sep=" << (sep == SeparatorMode::Enabled);
      };
      for (const unsigned bits : {2u, 4u, 8u, 16u}) {
        Instruction inst;
        inst.bits = bits;

        inst.op = Op::Add;
        inst.a = RowRef::main(0);
        inst.b = RowRef::main(1);
        m.add_rows(inst.a, inst.b, bits);
        expect_priced(inst, "ADD");

        inst.dest = d2;
        m.add_rows(inst.a, inst.b, bits, d2);
        expect_priced(inst, "ADD->D2");
        inst.dest.reset();

        inst.op = Op::Sub;
        m.sub_rows(inst.a, inst.b, bits);
        expect_priced(inst, "SUB");

        inst.op = Op::AddShift;
        inst.dest = d2;
        m.add_shift_rows(inst.a, inst.b, bits, d2);
        expect_priced(inst, "ADD-SHIFT");
        inst.dest.reset();

        inst.op = Op::Not;
        inst.dest = d1;
        m.unary_row(Op::Not, inst.a, d1, bits);
        expect_priced(inst, "NOT");
        inst.dest.reset();

        inst.op = Op::And;
        inst.logic_fn = periph::LogicFn::Xor;
        m.logic_rows(periph::LogicFn::Xor, inst.a, inst.b);
        expect_priced(inst, "LOGIC");

        inst.op = Op::Mult;
        m.mult_rows(inst.a, inst.b, bits);
        expect_priced(inst, "MULT");

        // Chained MULTs: pipelined, and pipelined + D1-staged.
        Instruction prev = inst;
        m.mult_rows_chained(RowRef::main(2), RowRef::main(3), bits,
                            /*d1_staged=*/false, /*pipelined=*/true);
        Instruction chained = inst;
        chained.a = RowRef::main(2);
        chained.b = RowRef::main(3);
        const InstructionCost piped = cost.instruction_cost(chained, &prev);
        EXPECT_EQ(piped.cycles, m.last_op().cycles) << "MULT piped bits=" << bits;
        EXPECT_EQ(piped.energy.si(), m.last_op().op_energy.si()) << "MULT piped bits=" << bits;

        prev = chained;
        m.mult_rows_chained(chained.a, RowRef::main(5), bits,
                            /*d1_staged=*/true, /*pipelined=*/true);
        Instruction staged = chained;
        staged.b = RowRef::main(5);
        const InstructionCost st = cost.instruction_cost(staged, &prev);
        EXPECT_EQ(st.cycles, m.last_op().cycles) << "MULT staged bits=" << bits;
        EXPECT_EQ(st.energy.si(), m.last_op().op_energy.si()) << "MULT staged bits=" << bits;
      }
    }
  }
}

TEST(MacroEnergyProperties, EnergyIndependentOfDataValues) {
  // The structural ledger charges by bits touched, not data (activity
  // factors are modelled as constants) -- two different operand sets must
  // report identical op energy.
  ImcMacro m{MacroConfig{}};
  Rng rng(9);
  BitVector r0(128), r1(128);
  r0.randomize(rng);
  r1.randomize(rng);
  m.poke_row(0, r0);
  m.poke_row(1, r1);
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  const double e1 = m.last_op().op_energy.si();
  m.poke_row(0, BitVector(128));
  m.poke_row(1, BitVector(128));
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_DOUBLE_EQ(m.last_op().op_energy.si(), e1);
}

TEST(MacroEnergyProperties, LowerSupplyQuadraticallyCheaper) {
  MacroConfig lo;
  lo.vdd = Volt(0.6);
  ImcMacro m09{MacroConfig{}};
  ImcMacro m06{lo};
  m09.add_rows(RowRef::main(0), RowRef::main(1), 8);
  m06.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_NEAR(m06.last_op().op_energy.si() / m09.last_op().op_energy.si(),
              (0.6 / 0.9) * (0.6 / 0.9), 1e-9);
}

TEST(MacroEnergyProperties, SeparatorNeverCostsEnergy) {
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    ImcMacro with{config_with(SeparatorMode::Enabled)};
    ImcMacro without{config_with(SeparatorMode::Disabled)};
    with.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    without.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    EXPECT_LT(with.last_op().op_energy.si(), without.last_op().op_energy.si());
  }
}

}  // namespace
}  // namespace bpim::macro
