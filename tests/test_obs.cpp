// Observability building blocks: the JSON reader/writer pair, the
// log-linear histogram's bucket arithmetic and quantiles, and the metrics
// registry's JSON + Prometheus exposition. The JSON snapshot must
// round-trip through the in-tree parser -- that is the contract the CI
// artifacts rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "common/json_writer.hpp"
#include "obs/metrics.hpp"

namespace bpim {
namespace {

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, EscapesControlCharactersToValidJson) {
  // Regression: the bench-era writer passed control characters through raw,
  // which is not JSON at all (a stray \n inside a string splits the token).
  std::ostringstream out;
  {
    JsonWriter w(out);
    w.begin_object();
    w.field("s", "line1\nline2\ttab\rcr\x01" "bell\x1f");
    w.field("quote\\slash", "a\"b");
    w.end_object();
  }
  const json::Value v = json::parse(out.str());
  EXPECT_EQ(v.at("s").as_string(), "line1\nline2\ttab\rcr\x01" "bell\x1f");
  EXPECT_EQ(v.at("quote\\slash").as_string(), "a\"b");
  EXPECT_NE(out.str().find("\\u0001"), std::string::npos);
  EXPECT_NE(out.str().find("\\u001f"), std::string::npos);
  EXPECT_NE(out.str().find("\\n"), std::string::npos);
}

TEST(JsonWriter, NestedContainersParseBack) {
  std::ostringstream out;
  {
    JsonWriter w(out);
    w.begin_object();
    w.field("flag", true);
    w.field("n", 42);
    w.field("x", 1.5);
    w.key("arr");
    w.begin_array();
    w.value(1);
    w.value(2);
    w.begin_object();
    w.field("k", "v");
    w.end_object();
    w.end_array();
    w.end_object();
  }
  const json::Value v = json::parse(out.str());
  EXPECT_TRUE(v.at("flag").as_bool());
  EXPECT_EQ(v.at("n").as_u64(), 42u);
  EXPECT_DOUBLE_EQ(v.at("x").as_number(), 1.5);
  ASSERT_EQ(v.at("arr").size(), 3u);
  EXPECT_EQ(v.at("arr").at(2).at("k").as_string(), "v");
}

// ---- json::parse -----------------------------------------------------------

TEST(JsonParse, ScalarsAndStructure) {
  const json::Value v = json::parse(
      R"({"null": null, "t": true, "f": false, "neg": -2.5e2, "s": "hi", "a": [0, 1]})");
  EXPECT_TRUE(v.at("null").is_null());
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_DOUBLE_EQ(v.at("neg").as_number(), -250.0);
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_EQ(v.at("a").at(1).as_u64(), 1u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapesIncludingSurrogatePairs) {
  const json::Value v = json::parse(R"({"s": "Aé€😀"})");
  EXPECT_EQ(v.at("s").as_string(), "Aé€\U0001F600");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\": 1e}"), std::runtime_error);
  EXPECT_THROW((void)json::parse("\"raw\ncontrol\""), std::runtime_error);
  EXPECT_THROW((void)json::parse(R"("\ud83d unpaired")"), std::runtime_error);
  // Depth cap: 100 nested arrays exceed the parser's 64-level limit.
  EXPECT_THROW((void)json::parse(std::string(100, '[') + std::string(100, ']')),
               std::runtime_error);
}

// ---- histogram buckets -----------------------------------------------------

TEST(HistogramBuckets, IndexAndBoundsAgree) {
  using B = obs::HistogramBuckets;
  // Exhaustive at the bottom, spot checks up the octaves: every value lands
  // in a bucket whose [lower, upper] range contains it, and indices are
  // monotone in the value.
  for (std::uint64_t v = 0; v < 1024; ++v) {
    const std::size_t idx = B::index_of(v);
    EXPECT_LE(B::lower_bound(idx), v) << v;
    EXPECT_GE(B::upper_bound(idx), v) << v;
    if (v > 0) {
      EXPECT_GE(idx, B::index_of(v - 1)) << v;
    }
  }
  for (const std::uint64_t v :
       {std::uint64_t{1} << 20, std::uint64_t{1} << 40, std::uint64_t{1} << 63,
        ~std::uint64_t{0}}) {
    const std::size_t idx = B::index_of(v);
    ASSERT_LT(idx, static_cast<std::size_t>(B::kBucketCount));
    EXPECT_LE(B::lower_bound(idx), v);
    EXPECT_GE(B::upper_bound(idx), v);
  }
  // Values 0..7 are exact (their own buckets).
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(B::lower_bound(B::index_of(v)), v);
    EXPECT_EQ(B::upper_bound(B::index_of(v)), v);
  }
}

TEST(Histogram, SnapshotCountsSumAndQuantiles) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, 500500.0);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  std::uint64_t bucket_total = 0;
  for (const auto& b : s.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, 1000u);
  // Log-linear buckets are ~9% wide: quantiles resolve to the right
  // neighbourhood, and are monotone in q.
  EXPECT_NEAR(s.quantile(0.5), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(s.quantile(0.99), 990.0, 990.0 * 0.10);
  EXPECT_LE(s.quantile(0.5), s.quantile(0.9));
  EXPECT_LE(s.quantile(0.9), s.quantile(0.99));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_LE(s.quantile(1.0), 1023.0);  // upper bound of the last bucket
}

TEST(Histogram, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  h.observe(7);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);  // 0..7 buckets are exact
}

// ---- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, LookupIsByNameWithStableAddresses) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("test.counter", "help text");
  obs::Counter& c2 = reg.counter("test.counter", "ignored second help");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  obs::Gauge& g = reg.gauge("test.gauge");
  g.set(1.25);
  EXPECT_DOUBLE_EQ(reg.gauge("test.gauge").value(), 1.25);
}

TEST(MetricsRegistry, JsonSnapshotRoundTripsThroughParser) {
  obs::MetricsRegistry reg;
  reg.counter("serve.requests", "Requests admitted").add(17);
  reg.gauge("queue.depth", "Backlog size").set(4.5);
  obs::Histogram& h = reg.histogram("latency.us", "Host latency");
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);

  std::ostringstream out;
  reg.write_json(out);
  const json::Value v = json::parse(out.str());
  EXPECT_EQ(v.at("schema").as_string(), "bpim.metrics.v1");

  ASSERT_EQ(v.at("counters").size(), 1u);
  const json::Value& c = v.at("counters").at(0);
  EXPECT_EQ(c.at("name").as_string(), "serve.requests");
  EXPECT_EQ(c.at("help").as_string(), "Requests admitted");
  EXPECT_EQ(c.at("value").as_u64(), 17u);

  ASSERT_EQ(v.at("gauges").size(), 1u);
  EXPECT_DOUBLE_EQ(v.at("gauges").at(0).at("value").as_number(), 4.5);

  ASSERT_EQ(v.at("histograms").size(), 1u);
  const json::Value& hist = v.at("histograms").at(0);
  EXPECT_EQ(hist.at("count").as_u64(), 100u);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 5050.0);
  EXPECT_GT(hist.at("p99").as_number(), hist.at("p50").as_number());
  std::uint64_t total = 0;
  for (const json::Value& b : hist.at("buckets").as_array())
    total += b.at("count").as_u64();
  EXPECT_EQ(total, 100u);
}

TEST(MetricsRegistry, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.counter("serve.requests.completed", "Completed requests").add(5);
  reg.gauge("queue.depth").set(2.0);
  obs::Histogram& h = reg.histogram("latency.us", "Host latency");
  h.observe(3);
  h.observe(100);

  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE serve_requests_completed counter"), std::string::npos);
  EXPECT_NE(text.find("serve_requests_completed 5"), std::string::npos);
  EXPECT_NE(text.find("# HELP serve_requests_completed Completed requests"),
            std::string::npos);
  EXPECT_NE(text.find("queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_us histogram"), std::string::npos);
  // Cumulative buckets end at +Inf == _count.
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_sum 103"), std::string::npos);
}

}  // namespace
}  // namespace bpim
