// Signed arithmetic layered over the unsigned in-memory datapath.

#include <gtest/gtest.h>

#include "app/signed_ops.hpp"
#include "common/rng.hpp"

namespace bpim::app {
namespace {

macro::MemoryConfig small_mem() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = 2;
  return cfg;
}

TEST(SignedCodec, EncodeDecodeRoundTrip) {
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    const std::int64_t lo = -(1ll << (bits - 1));
    const std::int64_t hi = (1ll << (bits - 1)) - 1;
    for (std::int64_t v = lo; v <= hi; v += std::max<std::int64_t>(1, (hi - lo) / 50))
      EXPECT_EQ(decode_signed(encode_signed(v, bits), bits), v) << v << " @ " << bits;
  }
}

TEST(SignedCodec, KnownEncodings) {
  EXPECT_EQ(encode_signed(-1, 8), 0xFFu);
  EXPECT_EQ(encode_signed(-128, 8), 0x80u);
  EXPECT_EQ(encode_signed(127, 8), 0x7Fu);
  EXPECT_EQ(decode_signed(0x80, 8), -128);
}

TEST(SignedCodec, RangeChecks) {
  EXPECT_TRUE(fits_signed(-8, 4));
  EXPECT_TRUE(fits_signed(7, 4));
  EXPECT_FALSE(fits_signed(8, 4));
  EXPECT_FALSE(fits_signed(-9, 4));
  EXPECT_THROW((void)encode_signed(128, 8), std::invalid_argument);
  EXPECT_THROW((void)decode_signed(256, 8), std::invalid_argument);
}

class SignedOpsP : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignedOpsP, AddSubMatchReference) {
  const unsigned bits = GetParam();
  macro::ImcMemory mem(small_mem());
  SignedVectorOps ops(mem, bits);
  Rng rng(bits * 13);
  const std::int64_t half = 1ll << (bits - 2);  // keep sums in range
  std::vector<std::int64_t> a(100), b(100);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int64_t>(rng.uniform_u64(2 * half)) - half;
    b[i] = static_cast<std::int64_t>(rng.uniform_u64(2 * half)) - half;
  }
  const auto s = ops.add(a, b);
  const auto d = ops.sub(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(s[i], a[i] + b[i]) << i;
    EXPECT_EQ(d[i], a[i] - b[i]) << i;
  }
}

TEST_P(SignedOpsP, MultMatchesReferenceAllSignCombos) {
  const unsigned bits = GetParam();
  macro::ImcMemory mem(small_mem());
  SignedVectorOps ops(mem, bits);
  const std::int64_t m = (1ll << (bits - 1)) - 1;
  const std::vector<std::int64_t> a{m, -m, m, -m, 0, -1, 1, 3};
  const std::vector<std::int64_t> b{m, m, -m, -m, -5, -1, -1, -3};
  const auto p = ops.mult(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(p[i], a[i] * b[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Precisions, SignedOpsP, ::testing::Values(4u, 8u, 16u));

TEST(SignedOps, NegationWrapsAtWordWidth) {
  // -128 - 1 wraps to +127 at 8 bits (documented two's-complement behaviour).
  macro::ImcMemory mem(small_mem());
  SignedVectorOps ops(mem, 8);
  const auto d = ops.sub({-128}, {1});
  EXPECT_EQ(d[0], 127);
}

TEST(SignedOps, RejectsOutOfRangeValues) {
  macro::ImcMemory mem(small_mem());
  SignedVectorOps ops(mem, 4);
  EXPECT_THROW((void)ops.mult({9}, {1}), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::app
