// Persistent operand residency (engine/residency.hpp): resident-handle
// execution must be bit-identical to the re-poke path -- values, RunStats,
// energy -- while spending fewer modeled load cycles; eviction under
// pressure (pinned set + transients over row_pair_capacity) must churn
// LRU-first and stay correct through re-materialization.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

namespace bpim::engine {
namespace {

macro::MemoryConfig tiny_memory(std::size_t rows = 128) {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  cfg.macro.geometry.rows = rows;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

void expect_identical(const OpResult& want, const OpResult& got, const char* what) {
  EXPECT_EQ(want.values, got.values) << what;
  EXPECT_EQ(want.stats.elements, got.stats.elements) << what;
  EXPECT_EQ(want.stats.elapsed_cycles, got.stats.elapsed_cycles) << what;
  // Bit-identical doubles, not approximately equal: the merge order is fixed.
  EXPECT_EQ(want.stats.energy.si(), got.stats.energy.si()) << what;
}

VecOp span_op(OpKind kind, unsigned bits, std::span<const std::uint64_t> a,
              std::span<const std::uint64_t> b) {
  VecOp op;
  op.kind = kind;
  op.bits = bits;
  op.a = a;
  op.b = b;
  return op;
}

TEST(Residency, HandleMatchesSpanPathExactly) {
  // Same op, three ways: both spans (fresh memory), resident a-side,
  // resident b-side. Values, compute cycles and energy must be identical;
  // only the load account may differ.
  const unsigned bits = 8;
  for (const OpKind kind : {OpKind::Add, OpKind::Sub, OpKind::Mult, OpKind::Logic}) {
    const std::size_t n = 300;
    const auto a = random_vec(n, bits, 11);
    const auto b = random_vec(n, bits, 12);

    macro::ImcMemory fresh_mem(tiny_memory());
    ExecutionEngine fresh(fresh_mem);
    const OpResult want = fresh.run(span_op(kind, bits, a, b));

    const OperandLayout layout =
        kind == OpKind::Mult ? OperandLayout::MultUnit : OperandLayout::Word;

    macro::ImcMemory mem_a(tiny_memory());
    ExecutionEngine eng_a(mem_a);
    VecOp op_a = span_op(kind, bits, {}, b);
    op_a.ra = eng_a.pin(a, bits, layout);
    expect_identical(want, eng_a.run(op_a), "resident a");

    macro::ImcMemory mem_b(tiny_memory());
    ExecutionEngine eng_b(mem_b);
    VecOp op_b = span_op(kind, bits, a, {});
    op_b.rb = eng_b.pin(b, bits, layout);
    expect_identical(want, eng_b.run(op_b), "resident b");

    macro::ImcMemory mem_ab(tiny_memory());
    ExecutionEngine eng_ab(mem_ab);
    VecOp op_ab = span_op(kind, bits, {}, {});
    op_ab.ra = eng_ab.pin(a, bits, layout);
    op_ab.rb = eng_ab.pin(b, bits, layout);
    expect_identical(want, eng_ab.run(op_ab), "both resident");
  }
}

TEST(Residency, LoadCyclesChargedOnceThenSaved) {
  const unsigned bits = 8;
  const std::size_t n = 256;  // 4 macros x 16 mult units = 64/layer -> 4 layers
  const auto w = random_vec(n, bits, 21);
  const auto x = random_vec(n, bits, 22);

  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem);
  VecOp op = span_op(OpKind::Mult, bits, {}, x);
  op.ra = eng.pin(w, bits, OperandLayout::MultUnit);
  const std::size_t layers = op.ra.layers;
  ASSERT_EQ(layers, eng.layers_for(op));
  ASSERT_GT(layers, 1u);

  // First use: the materializing write plus the activation load.
  (void)eng.run(op);
  EXPECT_EQ(eng.last_batch().load_cycles, 2 * layers);
  EXPECT_EQ(eng.last_batch().load_cycles_saved, 0u);

  // Steady state: activation only, weight side saved.
  (void)eng.run(op);
  EXPECT_EQ(eng.last_batch().load_cycles, layers);
  EXPECT_EQ(eng.last_batch().load_cycles_saved, layers);
  const RunStats& s = eng.run(op).stats;
  EXPECT_EQ(s.load_cycles, layers);
  EXPECT_EQ(s.load_cycles_saved, layers);

  const ResidencyStats rs = eng.residency_stats();
  EXPECT_EQ(rs.pinned, 1u);
  EXPECT_EQ(rs.resident_layers, layers);
  EXPECT_EQ(rs.materializations, 1u);
  EXPECT_EQ(rs.evictions, 0u);
  EXPECT_EQ(rs.load_cycles_saved, 2 * layers);
}

TEST(Residency, EvictionUnderPressureStaysCorrect) {
  // Pin more handles than row_pair_capacity() can hold and walk them
  // round-robin: the LRU churn must evict and re-materialize transparently
  // with results identical to a fresh-poke engine, and with no disturb
  // flips under the paper's safe WL scheme.
  const unsigned bits = 8;
  macro::MemoryConfig cfg = tiny_memory(32);  // 16 row pairs per macro
  macro::ImcMemory mem(cfg);
  ExecutionEngine eng(mem);
  const std::size_t capacity = eng.row_pair_capacity();
  ASSERT_EQ(capacity, 16u);

  const std::size_t per_layer = eng.mult_units_per_row(bits) * mem.macro_count();
  const std::size_t layers_per_handle = 3;
  const std::size_t n = layers_per_handle * per_layer;
  const std::size_t handles = capacity / layers_per_handle + 3;  // 8 > 5-handle capacity
  ASSERT_GT(handles * layers_per_handle, capacity);

  std::vector<std::vector<std::uint64_t>> weights;
  std::vector<ResidentOperand> pins;
  for (std::size_t h = 0; h < handles; ++h) {
    weights.push_back(random_vec(n, bits, 100 + h));
    pins.push_back(eng.pin(weights.back(), bits, OperandLayout::MultUnit));
  }

  macro::ImcMemory fresh_mem(cfg);
  ExecutionEngine fresh(fresh_mem);
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t h = 0; h < handles; ++h) {
      const auto x = random_vec(n, bits, 1000 + round * handles + h);
      VecOp op = span_op(OpKind::Mult, bits, {}, x);
      op.ra = pins[h];
      const OpResult got = eng.run(op);
      const OpResult want = fresh.run(span_op(OpKind::Mult, bits, weights[h], x));
      expect_identical(want, got, "eviction churn");
    }
  }

  const ResidencyStats rs = eng.residency_stats();
  EXPECT_EQ(rs.pinned, handles);
  EXPECT_GT(rs.evictions, 0u);
  EXPECT_GT(rs.materializations, handles);  // re-materializations happened
  EXPECT_LE(rs.resident_layers, capacity);
  // Disturb accounting: the safe WL scheme never flips cells, so the churn
  // must leave every macro's disturb counter at zero on both engines.
  for (std::size_t m = 0; m < mem.macro_count(); ++m) {
    EXPECT_EQ(mem.macro(m).disturb_flips(), 0u);
    EXPECT_EQ(fresh_mem.macro(m).disturb_flips(), 0u);
  }
}

TEST(Residency, TransientOpsEvictConflictingHandles) {
  // A full-capacity transient op must reclaim the whole array even when
  // handles are resident, and the handles must come back on next use.
  const unsigned bits = 8;
  macro::ImcMemory mem(tiny_memory(32));
  ExecutionEngine eng(mem);
  const std::size_t capacity = eng.row_pair_capacity();
  const std::size_t per_layer = eng.words_per_row(bits) * mem.macro_count();

  const auto w = random_vec(4 * per_layer, bits, 31);
  const auto x = random_vec(4 * per_layer, bits, 32);
  VecOp resident = span_op(OpKind::Add, bits, {}, x);
  resident.ra = eng.pin(w, bits, OperandLayout::Word);
  const OpResult first = eng.run(resident);

  // Full-capacity transient ADD: needs every row pair.
  const auto big_a = random_vec(capacity * per_layer, bits, 33);
  const auto big_b = random_vec(capacity * per_layer, bits, 34);
  const OpResult big = eng.run(span_op(OpKind::Add, bits, big_a, big_b));
  for (std::size_t i = 0; i < big_a.size(); ++i) {
    const std::uint64_t mask = (1ull << bits) - 1;
    ASSERT_EQ(big.values[i], (big_a[i] + big_b[i]) & mask);
  }
  EXPECT_GT(eng.residency_stats().evictions, 0u);
  EXPECT_EQ(eng.resident_layers(), 0u);

  // The handle re-materializes and the op still matches its first run.
  const OpResult again = eng.run(resident);
  EXPECT_EQ(first.values, again.values);
  EXPECT_EQ(eng.residency_stats().materializations, 2u);
}

TEST(Residency, BatchOverlapAccounting) {
  // Two ops on the same handle cannot double-buffer (the activation row is
  // the computing pair's); two ops on distinct handles can.
  const unsigned bits = 8;
  const std::size_t n = 64;
  const auto w1 = random_vec(n, bits, 41);
  const auto w2 = random_vec(n, bits, 42);
  const auto x = random_vec(n, bits, 43);

  const auto pipelined_for = [&](bool distinct) {
    macro::ImcMemory mem(tiny_memory());
    ExecutionEngine eng(mem);
    VecOp op1 = span_op(OpKind::Mult, bits, {}, x);
    op1.ra = eng.pin(w1, bits, OperandLayout::MultUnit);
    VecOp op2 = span_op(OpKind::Mult, bits, {}, x);
    op2.ra = distinct ? eng.pin(w2, bits, OperandLayout::MultUnit) : op1.ra;
    const std::vector<VecOp> warm = {op1, op2};
    (void)eng.run_batch(warm);  // materialize both
    (void)eng.run_batch(warm);  // steady-state account
    return eng.last_batch();
  };

  const BatchStats same = pipelined_for(false);
  const BatchStats distinct = pipelined_for(true);
  // Same handle: load(2) cannot hide behind compute(1) -> strictly serial.
  EXPECT_EQ(same.pipelined_cycles, same.load_cycles + same.compute_cycles);
  // Distinct handles: op 2's activation load hides behind op 1's compute.
  EXPECT_LT(distinct.pipelined_cycles, distinct.load_cycles + distinct.compute_cycles);
}

TEST(Residency, GuardsMisuse) {
  const unsigned bits = 8;
  const std::size_t n = 64;
  const auto a = random_vec(n, bits, 51);
  const auto b = random_vec(n, bits, 52);

  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem);
  const ResidentOperand h = eng.pin(a, bits, OperandLayout::MultUnit);

  // Span and handle on one side at once.
  VecOp both = span_op(OpKind::Mult, bits, a, b);
  both.ra = h;
  EXPECT_THROW((void)eng.run(both), std::invalid_argument);

  // Layout mismatch: a MultUnit pin cannot feed an ADD.
  VecOp wrong_kind = span_op(OpKind::Add, bits, {}, b);
  wrong_kind.ra = h;
  EXPECT_THROW((void)eng.run(wrong_kind), std::invalid_argument);

  // Precision mismatch.
  VecOp wrong_bits = span_op(OpKind::Mult, 4, {}, random_vec(n, 4, 53));
  wrong_bits.ra = h;
  EXPECT_THROW((void)eng.run(wrong_bits), std::invalid_argument);

  // Same handle on both sides of one op.
  VecOp squared = span_op(OpKind::Mult, bits, {}, {});
  squared.ra = h;
  squared.rb = h;
  EXPECT_THROW((void)eng.run(squared), std::invalid_argument);

  // Another engine's handle is unknown here.
  macro::ImcMemory other_mem(tiny_memory());
  ExecutionEngine other(other_mem);
  VecOp foreign = span_op(OpKind::Mult, bits, {}, b);
  foreign.ra = h;
  EXPECT_THROW((void)other.run(foreign), std::invalid_argument);

  // Use after unpin.
  EXPECT_TRUE(eng.unpin(h));
  EXPECT_FALSE(eng.unpin(h));
  VecOp stale = span_op(OpKind::Mult, bits, {}, b);
  stale.ra = h;
  EXPECT_THROW((void)eng.run(stale), std::invalid_argument);

  // Pin larger than the array.
  const std::size_t capacity = eng.row_pair_capacity();
  const std::size_t per_layer = eng.mult_units_per_row(bits) * mem.macro_count();
  const auto huge = random_vec((capacity + 1) * per_layer, bits, 54);
  EXPECT_THROW((void)eng.pin(huge, bits, OperandLayout::MultUnit), std::invalid_argument);

  // Two handles that fit individually but not together: a clean validation
  // error at run (and at submit on the serve route), not an allocator trap.
  const auto big1 = random_vec((capacity / 2 + 1) * per_layer, bits, 55);
  const auto big2 = random_vec((capacity / 2 + 1) * per_layer, bits, 56);
  VecOp pair = span_op(OpKind::Mult, bits, {}, {});
  pair.ra = eng.pin(big1, bits, OperandLayout::MultUnit);
  pair.rb = eng.pin(big2, bits, OperandLayout::MultUnit);
  EXPECT_THROW((void)eng.run(pair), std::invalid_argument);
  {
    macro::ImcMemory served_mem(tiny_memory());
    ExecutionEngine served_eng(served_mem);
    serve::Server server(served_eng);
    VecOp spair = span_op(OpKind::Mult, bits, {}, {});
    spair.ra = server.pin(big1, bits, OperandLayout::MultUnit);
    spair.rb = server.pin(big2, bits, OperandLayout::MultUnit);
    EXPECT_THROW((void)server.submit(spair), std::invalid_argument);
    server.stop();
  }
}

TEST(Residency, ServerRoutesHandleOpsToHomeMemory) {
  // Pin through a 3-memory pool server: requests referencing the handle
  // must execute on the memory that holds it (observable through the
  // per-memory lanes) and match the scalar reference every time.
  const unsigned bits = 8;
  serve::MemoryPoolConfig pcfg;
  pcfg.memories = 3;
  pcfg.memory = tiny_memory();
  pcfg.threads_per_memory = 1;
  serve::MemoryPool pool(pcfg);
  serve::Server server(pool);

  const std::size_t n = 128;
  const auto w = random_vec(n, bits, 61);
  const ResidentOperand h = server.pin(w, bits, OperandLayout::MultUnit);
  const auto home = server.memory_of(h.id);
  ASSERT_TRUE(home.has_value());

  for (std::size_t i = 0; i < 8; ++i) {
    const auto x = random_vec(n, bits, 70 + i);
    VecOp op = span_op(OpKind::Mult, bits, {}, x);
    op.ra = h;
    const OpResult res = server.submit(op).get();
    for (std::size_t k = 0; k < n; ++k) ASSERT_EQ(res.values[k], w[k] * x[k]);
  }
  server.stop();

  const serve::ServeStats s = server.stats();
  EXPECT_GT(s.modeled_load_cycles_saved, 0u);
  for (std::size_t m = 0; m < pool.size(); ++m) {
    if (m == *home) {
      EXPECT_EQ(s.per_memory[m].ops, 8u);
    } else {
      EXPECT_EQ(s.per_memory[m].ops, 0u);
    }
  }
  EXPECT_TRUE(server.unpin(h));
}

TEST(Residency, ServerRejectsForeignAndConflictingHandles) {
  const unsigned bits = 8;
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem);
  serve::Server server(eng);

  const std::size_t n = 64;
  const auto w = random_vec(n, bits, 81);
  // Pinned directly on the engine, not through the server: no home.
  const ResidentOperand foreign = eng.pin(w, bits, OperandLayout::MultUnit);
  const auto x = random_vec(n, bits, 82);
  VecOp op = span_op(OpKind::Mult, bits, {}, x);
  op.ra = foreign;
  EXPECT_THROW((void)server.submit(op), std::invalid_argument);
  server.stop();
}

}  // namespace
}  // namespace bpim::engine
