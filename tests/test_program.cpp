// Program / MacroController: validation, execution, tracing.

#include <gtest/gtest.h>

#include "macro/program.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using periph::LogicFn;

TEST(Program, BuilderAccumulatesAndCostsStatically) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8)
      .sub(RowRef::main(2), RowRef::main(3), 8)
      .mult(RowRef::main(4), RowRef::main(5), 8)
      .unary(Op::Not, RowRef::main(6), RowRef::dummy(0), 8);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.static_cycles(), 1u + 2u + 10u + 1u);
}

TEST(Program, LogicBuilderRejectsSingleWlFunctions) {
  Program p;
  EXPECT_THROW(p.logic(LogicFn::PassA, RowRef::main(0), RowRef::main(1)),
               std::invalid_argument);
  EXPECT_THROW(p.logic(LogicFn::NotA, RowRef::main(0), RowRef::main(1)),
               std::invalid_argument);
}

TEST(Program, UnaryBuilderRejectsArithmetic) {
  Program p;
  EXPECT_THROW(p.unary(Op::Add, RowRef::main(0), RowRef::dummy(0), 8), std::invalid_argument);
}

TEST(Controller, ValidatesRowsAndPrecisionUpfront) {
  ImcMacro m{MacroConfig{}};
  MacroController ctl(m);

  Program bad_row;
  bad_row.add(RowRef::main(0), RowRef::main(200), 8);
  EXPECT_THROW(ctl.validate(bad_row), std::invalid_argument);

  Program same_row;
  same_row.add(RowRef::main(3), RowRef::main(3), 8);
  EXPECT_THROW(ctl.validate(same_row), std::invalid_argument);

  Program ok;
  ok.add(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_NO_THROW(ctl.validate(ok));
}

TEST(Controller, RejectionLeavesMacroUntouched) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 9);
  MacroController ctl(m);
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8);   // fine
  p.add(RowRef::main(0), RowRef::main(999), 8); // invalid
  EXPECT_THROW(ctl.run(p), std::invalid_argument);
  EXPECT_EQ(m.total_cycles(), 0u);  // nothing executed
}

TEST(Controller, RunsAndAggregatesStats) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 20);
  m.poke_word(1, 0, 8, 30);
  MacroController ctl(m);
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8).sub(RowRef::main(0), RowRef::main(1), 8);
  const ProgramStats st = ctl.run(p);
  EXPECT_EQ(st.instructions, 2u);
  EXPECT_EQ(st.cycles, 3u);  // 1 + 2
  EXPECT_GT(st.energy.si(), 0.0);
  EXPECT_GT(st.elapsed.si(), 0.0);
}

TEST(Controller, TraceRecordsResultsPerInstruction) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 5);
  m.poke_word(1, 0, 8, 6);
  MacroController ctl(m);
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8);
  p.logic(LogicFn::Xor, RowRef::main(0), RowRef::main(1));
  std::vector<TraceEntry> trace;
  ctl.run(p, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].result.to_u64() & 0xFF, 11u);
  EXPECT_EQ(trace[1].result.to_u64() & 0xFF, 5u ^ 6u);
  EXPECT_EQ(trace[0].cycles, 1u);
}

TEST(Controller, MultThroughProgramMatchesDirectCall) {
  ImcMacro m{MacroConfig{}};
  m.poke_mult_operand(0, 0, 8, 13);
  m.poke_mult_operand(1, 0, 8, 11);
  MacroController ctl(m);
  Program p;
  p.mult(RowRef::main(0), RowRef::main(1), 8);
  std::vector<TraceEntry> trace;
  ctl.run(p, &trace);
  EXPECT_EQ(m.peek_mult_product(trace[0].result, 0, 8), 143u);
}

TEST(Controller, InstructionToStringReadable) {
  Instruction i;
  i.op = Op::Sub;
  i.a = RowRef::main(4);
  i.b = RowRef::dummy(1);
  i.bits = 4;
  const std::string s = to_string(i);
  EXPECT_NE(s.find("SUB"), std::string::npos);
  EXPECT_NE(s.find("R4"), std::string::npos);
  EXPECT_NE(s.find("D1"), std::string::npos);
  EXPECT_NE(s.find("4b"), std::string::npos);
}

TEST(Controller, AddShiftThroughProgramWritesDest) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 3);
  m.poke_word(1, 0, 8, 4);
  MacroController ctl(m);
  Program p;
  p.add_shift(RowRef::main(0), RowRef::main(1), 8, RowRef::dummy(ImcMacro::kDummyAccum));
  ctl.run(p);
  EXPECT_EQ(m.sram().row(RowRef::dummy(ImcMacro::kDummyAccum)).to_u64() & 0xFF, 14u);
}

}  // namespace
}  // namespace bpim::macro
