// Quantised NN layer on the IMC memory: correctness vs reference and the
// precision/energy trade the paper's reconfigurability targets.

#include <gtest/gtest.h>

#include <cmath>

#include "app/nn.hpp"
#include "common/rng.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

namespace bpim::app {
namespace {

std::vector<double> random_reals(std::size_t n, std::uint64_t seed) {
  bpim::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.0, 1.0);
  return v;
}

std::vector<std::vector<double>> random_weights(std::size_t out, std::size_t in,
                                                std::uint64_t seed) {
  bpim::Rng rng(seed);
  std::vector<std::vector<double>> w(out, std::vector<double>(in));
  for (auto& row : w)
    for (auto& x : row) x = rng.uniform(0.0, 1.0);
  return w;
}

TEST(Quantize, RoundTripWithinHalfStep) {
  const std::vector<double> x{0.1, 0.5, 0.9, 0.0, 1.0};
  const Quantized q = quantize(x, 8);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(static_cast<double>(q.values[i]) * q.scale, x[i], q.scale * 0.5 + 1e-12);
}

TEST(Quantize, CodesFitWidth) {
  const auto x = random_reals(100, 3);
  for (const unsigned bits : {2u, 4u, 8u}) {
    const Quantized q = quantize(x, bits);
    for (const auto c : q.values) EXPECT_LT(c, 1ull << bits);
  }
}

TEST(Quantize, GuardsBadInput) {
  EXPECT_THROW(quantize({}, 8), std::invalid_argument);
  EXPECT_THROW(quantize({1.0}, 1), std::invalid_argument);
}

TEST(QuantizedLinear, ImcMatchesReferenceExactly) {
  // The IMC path computes the same quantised arithmetic as the reference
  // (products are exact in-memory), so outputs must agree to fp rounding.
  macro::ImcMemory mem;
  QuantizedLinear layer(random_weights(4, 48, 17), 8);
  const auto x = random_reals(48, 18);
  const auto y_imc = layer.forward(mem, x);
  const auto y_ref = layer.forward_reference(x);
  ASSERT_EQ(y_imc.size(), 4u);
  for (std::size_t j = 0; j < y_imc.size(); ++j)
    EXPECT_NEAR(y_imc[j], y_ref[j], 1e-9 * std::max(1.0, y_ref[j]));
}

TEST(QuantizedLinear, LowerPrecisionCheaperAndCoarser) {
  macro::ImcMemory mem;
  const auto w = random_weights(2, 64, 19);
  const auto x = random_reals(64, 20);

  QuantizedLinear l8(w, 8), l4(w, 4), l2(w, 2);
  const auto y8 = l8.forward(mem, x);
  const double e8 = l8.last_stats().energy.si();
  const auto y4 = l4.forward(mem, x);
  const double e4 = l4.last_stats().energy.si();
  const auto y2 = l2.forward(mem, x);
  const double e2 = l2.last_stats().energy.si();

  // Energy: the paper's point -- precision reconfiguration pays off.
  EXPECT_LT(e4, e8);
  EXPECT_LT(e2, e4);

  // Accuracy: lower precision drifts further from the 8-bit result.
  double err4 = 0.0, err2 = 0.0;
  for (std::size_t j = 0; j < y8.size(); ++j) {
    err4 += std::abs(y4[j] - y8[j]);
    err2 += std::abs(y2[j] - y8[j]);
  }
  EXPECT_GT(err2, err4 * 0.8);  // 2-bit no more accurate than 4-bit (noise guard)
}

TEST(QuantizedLinear, StatsCountMacs) {
  macro::ImcMemory mem;
  QuantizedLinear layer(random_weights(3, 32, 21), 8);
  (void)layer.forward(mem, random_reals(32, 22));
  EXPECT_EQ(layer.last_stats().macs, 3u * 32u);
  EXPECT_GT(layer.last_stats().cycles, 0u);
  EXPECT_GT(layer.last_stats().elapsed.si(), 0.0);
}

TEST(QuantizedLinear, ValidatesShapes) {
  EXPECT_THROW(QuantizedLinear({}, 8), std::invalid_argument);
  EXPECT_THROW(QuantizedLinear({{1.0, 2.0}, {1.0}}, 8), std::invalid_argument);
  macro::ImcMemory mem;
  QuantizedLinear layer(random_weights(2, 8, 23), 8);
  EXPECT_THROW((void)layer.forward(mem, random_reals(9, 24)), std::invalid_argument);
}

TEST(QuantizedLinear, PinnedRepeatedForwardBitIdentical) {
  // N successive forward() calls with pinned weights must produce exactly
  // the outputs of fresh-poke execution -- the residency tentpole's core
  // contract -- while saving the weight-side load cycles after the first.
  const auto w = random_weights(6, 48, 31);
  macro::ImcMemory fresh_mem;
  engine::ExecutionEngine fresh_eng(fresh_mem);
  QuantizedLinear fresh(w, 8);
  macro::ImcMemory pinned_mem;
  engine::ExecutionEngine pinned_eng(pinned_mem);
  QuantizedLinear pinned(w, 8, pinned_eng);
  EXPECT_TRUE(pinned.pinned());

  for (std::size_t i = 0; i < 5; ++i) {
    const auto x = random_reals(48, 40 + i);
    const auto want = fresh.forward(fresh_eng, x);
    const auto got = pinned.forward(pinned_eng, x);
    EXPECT_EQ(want, got) << "forward " << i;  // bit-identical doubles
    // The pinned layer runs fused: identical values, fewer cycles, and the
    // chained-MAC discount is exactly what fused_cycles_saved accounts.
    EXPECT_EQ(fresh.last_stats().cycles,
              pinned.last_stats().cycles + pinned.last_stats().fused_cycles_saved);
    EXPECT_GT(pinned.last_stats().fused_cycles_saved, 0u);
    EXPECT_LE(pinned.last_stats().energy.si(), fresh.last_stats().energy.si());
    if (i == 0) {
      // Compile-at-pin materialized the weights (their deferred load lands
      // on this first call), but the activation stages once, not per-op.
      EXPECT_LE(pinned.last_stats().load_cycles, fresh.last_stats().load_cycles);
      EXPECT_GT(pinned.last_stats().load_cycles, 0u);
    } else {
      EXPECT_LT(pinned.last_stats().load_cycles, fresh.last_stats().load_cycles);
      EXPECT_GT(pinned.last_stats().load_cycles_saved, 0u);
    }
    EXPECT_EQ(fresh.last_stats().load_cycles_saved, 0u);
    EXPECT_EQ(fresh.last_stats().fused_cycles_saved, 0u);
  }
}

TEST(QuantizedLinear, PinnedForwardThroughServerBitIdentical) {
  // The serve::Server route (single memory): pinning through the server
  // and forwarding through its admission queue matches fresh execution.
  const auto w = random_weights(5, 32, 51);
  macro::ImcMemory fresh_mem;
  engine::ExecutionEngine fresh_eng(fresh_mem);
  QuantizedLinear fresh(w, 8);

  macro::ImcMemory served_mem;
  engine::ExecutionEngine served_eng(served_mem);
  serve::Server server(served_eng);
  QuantizedLinear pinned(w, 8, server);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto x = random_reals(32, 60 + i);
    EXPECT_EQ(fresh.forward(fresh_eng, x), pinned.forward(server, x)) << "forward " << i;
  }
  server.stop();
  EXPECT_GT(server.stats().modeled_load_cycles_saved, 0u);
}

TEST(QuantizedLinear, PinnedForwardThroughMemoryPoolBitIdentical) {
  // The multi-memory route: weights pin to hash-chosen pool nodes and
  // requests follow them there; results still match fresh execution.
  const auto w = random_weights(5, 32, 71);
  macro::ImcMemory fresh_mem;
  engine::ExecutionEngine fresh_eng(fresh_mem);
  QuantizedLinear fresh(w, 8);

  serve::MemoryPoolConfig pcfg;
  pcfg.memories = 2;
  pcfg.threads_per_memory = 1;
  serve::MemoryPool pool(pcfg);
  serve::Server server(pool);
  QuantizedLinear pinned(w, 8, server);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto x = random_reals(32, 80 + i);
    EXPECT_EQ(fresh.forward(fresh_eng, x), pinned.forward(server, x)) << "forward " << i;
  }
  server.stop();
  EXPECT_GT(server.stats().modeled_load_cycles_saved, 0u);
}

}  // namespace
}  // namespace bpim::app
