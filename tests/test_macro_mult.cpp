// ImcMacro: the left-shift bit-parallel multiplication (Fig 5) with
// reconfigurable precision (Fig 6).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "macro/imc_macro.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;

class MacroMult : public ::testing::TestWithParam<unsigned> {
 protected:
  ImcMacro macro_{MacroConfig{}};
  Rng rng_{GetParam() * 104729u};
};

TEST_P(MacroMult, PaperWorkedExample) {
  // Fig 5 walks 1010 x 1011 = 0110 1110 (10 * 11 = 110).
  const unsigned bits = GetParam();
  if (bits < 4) GTEST_SKIP() << "example needs 4-bit operands";
  macro_.poke_mult_operand(0, 0, bits, 10);
  macro_.poke_mult_operand(1, 0, bits, 11);
  const BitVector prod = macro_.mult_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_EQ(macro_.peek_mult_product(prod, 0, bits), 110u);
}

TEST_P(MacroMult, CycleCountIsNPlusTwo) {
  const unsigned bits = GetParam();
  macro_.poke_mult_operand(0, 0, bits, 1);
  macro_.poke_mult_operand(1, 0, bits, 1);
  macro_.mult_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_EQ(macro_.last_op().cycles, bits + 2);  // Table 1: MULT = N+2
}

TEST_P(MacroMult, AllUnitsMultiplyIndependently) {
  const unsigned bits = GetParam();
  const std::size_t units = macro_.mult_units_per_row(bits);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> a(units), b(units);
  for (std::size_t u = 0; u < units; ++u) {
    a[u] = rng_.next_u64() & mask;
    b[u] = rng_.next_u64() & mask;
    macro_.poke_mult_operand(0, u, bits, a[u]);
    macro_.poke_mult_operand(1, u, bits, b[u]);
  }
  const BitVector prod = macro_.mult_rows(RowRef::main(0), RowRef::main(1), bits);
  for (std::size_t u = 0; u < units; ++u)
    EXPECT_EQ(macro_.peek_mult_product(prod, u, bits), a[u] * b[u]) << "unit " << u;
}

TEST_P(MacroMult, RandomizedAgainstReference) {
  const unsigned bits = GetParam();
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  for (int iter = 0; iter < 40; ++iter) {
    const std::uint64_t a = rng_.next_u64() & mask;
    const std::uint64_t b = rng_.next_u64() & mask;
    macro_.poke_mult_operand(0, 0, bits, a);
    macro_.poke_mult_operand(1, 0, bits, b);
    const BitVector prod = macro_.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    EXPECT_EQ(macro_.peek_mult_product(prod, 0, bits), a * b) << a << " * " << b;
  }
}

TEST_P(MacroMult, EdgeOperands) {
  const unsigned bits = GetParam();
  const std::uint64_t top = (bits >= 64 ? ~0ull : (1ull << bits) - 1);
  const std::uint64_t cases[][2] = {
      {0, 0}, {0, top}, {top, 0}, {1, top}, {top, 1}, {top, top}};
  for (const auto& c : cases) {
    macro_.poke_mult_operand(0, 0, bits, c[0]);
    macro_.poke_mult_operand(1, 0, bits, c[1]);
    const BitVector prod = macro_.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    EXPECT_EQ(macro_.peek_mult_product(prod, 0, bits), c[0] * c[1])
        << c[0] << " * " << c[1] << " @ " << bits << " bits";
  }
}

TEST_P(MacroMult, ProductPersistsInAccumulatorRow) {
  const unsigned bits = GetParam();
  macro_.poke_mult_operand(0, 0, bits, 3);
  macro_.poke_mult_operand(1, 0, bits, 2);
  const BitVector prod = macro_.mult_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_EQ(macro_.sram().row(RowRef::dummy(ImcMacro::kDummyAccum)), prod);
}

INSTANTIATE_TEST_SUITE_P(Precisions, MacroMult, ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(MacroMultLayout, PrecisionChangesUnitCountOnSameHardware) {
  // The Fig 6 reconfiguration claim: one macro, different unit counts.
  ImcMacro m{MacroConfig{}};
  EXPECT_EQ(m.mult_units_per_row(2), 32u);
  EXPECT_EQ(m.mult_units_per_row(4), 16u);
  EXPECT_EQ(m.mult_units_per_row(8), 8u);
  EXPECT_EQ(m.mult_units_per_row(16), 4u);
  EXPECT_EQ(m.mult_units_per_row(32), 2u);
}

TEST(MacroMultLayout, MixedPrecisionBackToBack) {
  // Run an 8-bit multiply, then re-configure to 2-bit on the same macro.
  ImcMacro m{MacroConfig{}};
  m.poke_mult_operand(0, 0, 8, 200);
  m.poke_mult_operand(1, 0, 8, 100);
  const BitVector p8 = m.mult_rows(array::RowRef::main(0), array::RowRef::main(1), 8);
  EXPECT_EQ(m.peek_mult_product(p8, 0, 8), 20000u);

  m.poke_mult_operand(2, 0, 2, 3);
  m.poke_mult_operand(3, 0, 2, 3);
  const BitVector p2 = m.mult_rows(array::RowRef::main(2), array::RowRef::main(3), 2);
  EXPECT_EQ(m.peek_mult_product(p2, 0, 2), 9u);
}

}  // namespace
}  // namespace bpim::macro
