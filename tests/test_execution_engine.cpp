// ExecutionEngine: sharded parallel dispatch must be bit-identical to the
// serial walk -- values AND RunStats -- at every thread count, including
// odd-sized vectors whose last chunk only partially fills a row pair.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "app/vector_engine.hpp"
#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "macro/cost_model.hpp"
#include "macro/program.hpp"

namespace bpim::engine {
namespace {

macro::MemoryConfig tiny_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

/// Run `op` on a fresh memory with `threads` total workers.
OpResult run_fresh(const VecOp& op, std::size_t threads) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{threads});
  return eng.run(op);
}

void expect_identical(const OpResult& want, const OpResult& got, const char* what) {
  EXPECT_EQ(want.values, got.values) << what;
  EXPECT_EQ(want.stats.elements, got.stats.elements) << what;
  EXPECT_EQ(want.stats.elapsed_cycles, got.stats.elapsed_cycles) << what;
  // Bit-identical doubles, not approximately equal: the merge order is fixed.
  EXPECT_EQ(want.stats.energy.si(), got.stats.energy.si()) << what;
  EXPECT_EQ(want.stats.elapsed_time.si(), got.stats.elapsed_time.si()) << what;
}

class EngineDeterminismP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineDeterminismP, AllOpsMatchSerialExactly) {
  const std::size_t threads = GetParam();
  const unsigned bits = 8;
  // Sizes chosen to hit: sub-chunk, partial last chunk, exact layer,
  // multi-layer with a partial tail.
  const std::vector<std::size_t> sizes = {1, 7, 64, 300, 1023};
  const std::vector<VecOp> protos = {
      {OpKind::Add, bits, periph::LogicFn::And, {}, {}},
      {OpKind::Sub, bits, periph::LogicFn::And, {}, {}},
      {OpKind::Mult, bits, periph::LogicFn::And, {}, {}},
      {OpKind::AddShift, bits, periph::LogicFn::And, {}, {}},
      {OpKind::Logic, bits, periph::LogicFn::Xor, {}, {}},
  };
  for (const std::size_t n : sizes) {
    const auto a = random_vec(n, bits, 0xA0 + n);
    const auto b = random_vec(n, bits, 0xB0 + n);
    for (VecOp op : protos) {
      op.a = a;
      op.b = b;
      const OpResult serial = run_fresh(op, 1);
      const OpResult parallel = run_fresh(op, threads);
      expect_identical(serial, parallel,
                       (std::string(to_string(op.kind)) + " n=" + std::to_string(n)).c_str());
    }
    // NOT is unary: side b stays empty.
    const VecOp not_op{OpKind::Not, bits, periph::LogicFn::And, a, {}};
    expect_identical(run_fresh(not_op, 1), run_fresh(not_op, threads),
                     ("NOT n=" + std::to_string(n)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, EngineDeterminismP, ::testing::Values(2u, 8u));

TEST(ExecutionEngine, MatchesScalarReference) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{4});
  const unsigned bits = 8;
  const auto a = random_vec(333, bits, 1);
  const auto b = random_vec(333, bits, 2);

  VecOp op{OpKind::Add, bits, periph::LogicFn::And, a, b};
  auto add = eng.run(op);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(add.values[i], (a[i] + b[i]) & 0xFF);

  op.kind = OpKind::Mult;
  auto mul = eng.run(op);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(mul.values[i], a[i] * b[i]);

  // ADD-Shift: the sum, shifted up one position in-field (bit 0 zeroed).
  op.kind = OpKind::AddShift;
  auto as = eng.run(op);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(as.values[i], ((a[i] + b[i]) << 1) & 0xFF);

  const VecOp un{OpKind::Not, bits, periph::LogicFn::And, a, {}};
  auto nt = eng.run(un);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(nt.values[i], ~a[i] & 0xFF);
}

TEST(ExecutionEngine, BatchMatchesIndividualRuns) {
  const unsigned bits = 8;
  const auto a0 = random_vec(100, bits, 3);
  const auto b0 = random_vec(100, bits, 4);
  const auto a1 = random_vec(37, bits, 5);
  const auto b1 = random_vec(37, bits, 6);
  std::vector<VecOp> ops = {
      {OpKind::Mult, bits, periph::LogicFn::And, a0, b0},
      {OpKind::Add, bits, periph::LogicFn::And, a1, b1},
  };

  macro::ImcMemory mem_batch(tiny_memory());
  ExecutionEngine eng_batch(mem_batch, EngineConfig{4});
  const auto results = eng_batch.run_batch(ops);
  ASSERT_EQ(results.size(), 2u);

  for (std::size_t k = 0; k < ops.size(); ++k) {
    const OpResult one = run_fresh(ops[k], 1);
    expect_identical(one, results[k], "batch op");
  }

  const BatchStats& bs = eng_batch.last_batch();
  EXPECT_EQ(bs.ops, 2u);
  EXPECT_EQ(bs.elements, 137u);
  EXPECT_EQ(bs.compute_cycles,
            results[0].stats.elapsed_cycles + results[1].stats.elapsed_cycles);
  EXPECT_EQ(bs.serial_cycles, bs.load_cycles + bs.compute_cycles);
  // Double buffering can only help, and never beats pure compute + first load.
  EXPECT_LE(bs.pipelined_cycles, bs.serial_cycles);
  EXPECT_GE(bs.pipelined_cycles, bs.compute_cycles);
  EXPECT_EQ(bs.energy.si(),
            (results[0].stats.energy + results[1].stats.energy).si());
}

TEST(ExecutionEngine, BatchOverlapHidesLoadBehindCompute) {
  // MULT at 8 bits runs N+2 = 10 cycles per layer vs 2 load cycles, so in a
  // long same-shape batch every load after the first hides completely.
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  const unsigned bits = 8;
  const auto a = random_vec(32, bits, 7);  // one layer (4 macros x 8 units)
  const auto b = random_vec(32, bits, 8);
  std::vector<VecOp> ops(5, VecOp{OpKind::Mult, bits, periph::LogicFn::And, a, b});
  (void)eng.run_batch(ops);
  const BatchStats& bs = eng.last_batch();
  EXPECT_EQ(bs.load_cycles, 5u * 2u);
  EXPECT_EQ(bs.pipelined_cycles, 2u + bs.compute_cycles);  // only load 0 exposed
  EXPECT_GT(bs.overlap_speedup(), 1.0);
}

TEST(ExecutionEngine, NoOverlapCreditAtFullCapacity) {
  // Two full-capacity ops (64 layers each on 64 row pairs) cannot be
  // co-resident, so the batch model must not hide the second load.
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  const unsigned bits = 8;
  const std::size_t full = eng.mult_units_per_row(bits) * mem.macro_count() * 64;
  const auto a = random_vec(full, bits, 16);
  const auto b = random_vec(full, bits, 17);
  std::vector<VecOp> ops(2, VecOp{OpKind::Mult, bits, periph::LogicFn::And, a, b});
  (void)eng.run_batch(ops);
  EXPECT_EQ(eng.last_batch().pipelined_cycles, eng.last_batch().serial_cycles);

  // Half-capacity ops can ping-pong, so overlap is credited again.
  const auto ha = random_vec(full / 2, bits, 18);
  const auto hb = random_vec(full / 2, bits, 19);
  std::vector<VecOp> half_ops(2, VecOp{OpKind::Mult, bits, periph::LogicFn::And, ha, hb});
  (void)eng.run_batch(half_ops);
  EXPECT_LT(eng.last_batch().pipelined_cycles, eng.last_batch().serial_cycles);
}

TEST(ExecutionEngine, EmptyBatchIsANoOp) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  const auto results = eng.run_batch({});
  EXPECT_TRUE(results.empty());
  const BatchStats& bs = eng.last_batch();
  EXPECT_EQ(bs.ops, 0u);
  EXPECT_EQ(bs.elements, 0u);
  EXPECT_EQ(bs.load_cycles, 0u);
  EXPECT_EQ(bs.compute_cycles, 0u);
  EXPECT_EQ(bs.serial_cycles, 0u);
  EXPECT_EQ(bs.pipelined_cycles, 0u);
  EXPECT_EQ(bs.energy.si(), 0.0);
  EXPECT_EQ(bs.elapsed_time.si(), 0.0);
  // The pool and the memory's counters were never touched.
  EXPECT_EQ(mem.elapsed_cycles(), 0u);
}

TEST(ExecutionEngine, LayersForAndCapacityHooks) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  EXPECT_EQ(eng.row_pair_capacity(), 64u);  // 128 rows -> 64 ping-pong pairs
  const auto a = random_vec(65, 8, 20);     // 16 words/row x 4 macros = 64/layer
  VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, a};
  EXPECT_EQ(eng.layers_for(op), 2u);
  op.kind = OpKind::Mult;  // 8 units/row x 4 macros = 32/layer
  EXPECT_EQ(eng.layers_for(op), 3u);
}

TEST(ExecutionEngine, EmptyAndErrorCases) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{4});
  const std::vector<std::uint64_t> empty;
  VecOp op{OpKind::Add, 8, periph::LogicFn::And, empty, empty};
  const auto res = eng.run(op);
  EXPECT_TRUE(res.values.empty());
  EXPECT_EQ(res.stats.elapsed_cycles, 0u);

  const auto a = random_vec(4, 8, 9);
  const auto b = random_vec(3, 8, 10);
  op.a = a;
  op.b = b;
  EXPECT_THROW((void)eng.run(op), std::invalid_argument);  // propagates off the pool

  op.b = a;
  op.bits = 3;
  EXPECT_THROW((void)eng.run(op), std::invalid_argument);
}

TEST(ExecutionEngine, VectorEngineRoutesThroughSharedEngine) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  app::VectorEngine ve(eng, 8);
  EXPECT_EQ(&ve.engine(), &eng);

  const auto a = random_vec(200, 8, 11);
  const auto b = random_vec(200, 8, 12);
  const auto c = ve.add(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], (a[i] + b[i]) & 0xFF);

  // Serial seed semantics preserved: 200 adds on 64 words/layer -> 4 layers.
  EXPECT_EQ(ve.last_run().elapsed_cycles, 4u);
  EXPECT_EQ(ve.last_run().elements, 200u);
}

TEST(ExecutionEngine, VectorEngineBatchAggregatesLastRun) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  app::VectorEngine ve(eng, 8);
  const auto a = random_vec(40, 8, 14);
  const auto b = random_vec(40, 8, 15);
  std::vector<std::pair<std::span<const std::uint64_t>, std::span<const std::uint64_t>>> pairs =
      {{a, b}, {a, b}, {a, b}};
  const auto results = ve.mult_batch(pairs);
  ASSERT_EQ(results.size(), 3u);
  // last_run() is the sum over the batch, as a loop over ops would report.
  std::uint64_t cycles = 0;
  Joule energy{0.0};
  for (const auto& r : results) {
    cycles += r.stats.elapsed_cycles;
    energy += r.stats.energy;
  }
  EXPECT_EQ(ve.last_run().elements, 120u);
  EXPECT_EQ(ve.last_run().elapsed_cycles, cycles);
  EXPECT_EQ(ve.last_run().energy.si(), energy.si());
}

TEST(ExecutionEngine, InstructionStreamConservesLedger) {
  // The unified execution model's conservation law at the engine level: the
  // instruction-stream account in RunStats (one single-op program per chunk)
  // must reproduce what the macro ledgers charged -- chunk count as the
  // instruction count, CostModel pricing for cycles, and the exact nested
  // per-bank energy fold, bitwise.
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{4});
  const unsigned bits = 8;
  const std::size_t n = 300;
  const auto a = random_vec(n, bits, 21);
  const auto b = random_vec(n, bits, 22);
  const macro::CostModel cost(mem.macro(0).config());
  const std::size_t macros = mem.macro_count();
  const auto d1 = array::RowRef::dummy(macro::ImcMacro::kDummyOperand);
  const auto d2 = array::RowRef::dummy(macro::ImcMacro::kDummyAccum);

  struct Case {
    VecOp op;
    macro::Instruction inst;
  };
  std::vector<Case> cases;
  const auto make = [&](OpKind kind, macro::Op mop, periph::LogicFn fn,
                        std::optional<array::RowRef> dest) {
    Case c;
    c.op = VecOp{kind, bits, fn, a,
                 kind == OpKind::Not ? std::span<const std::uint64_t>{}
                                     : std::span<const std::uint64_t>(b)};
    c.inst.op = mop;
    c.inst.logic_fn = fn;
    c.inst.bits = bits;
    c.inst.a = array::RowRef::main(0);
    c.inst.b = array::RowRef::main(1);
    c.inst.dest = dest;
    cases.push_back(std::move(c));
  };
  make(OpKind::Add, macro::Op::Add, periph::LogicFn::And, std::nullopt);
  make(OpKind::Sub, macro::Op::Sub, periph::LogicFn::And, std::nullopt);
  make(OpKind::Mult, macro::Op::Mult, periph::LogicFn::And, std::nullopt);
  make(OpKind::AddShift, macro::Op::AddShift, periph::LogicFn::And, d2);
  make(OpKind::Not, macro::Op::Not, periph::LogicFn::And, d1);
  make(OpKind::Logic, macro::Op::And, periph::LogicFn::Xor, std::nullopt);

  for (const Case& c : cases) {
    const OpResult res = eng.run(c.op);
    const std::size_t per_chunk =
        c.op.kind == OpKind::Mult ? eng.mult_units_per_row(bits) : eng.words_per_row(bits);
    const std::uint64_t chunks = (n + per_chunk - 1) / per_chunk;
    EXPECT_EQ(res.stats.instructions, chunks) << to_string(c.op.kind);

    const macro::InstructionCost ic = cost.instruction_cost(c.inst);
    const std::uint64_t layers = (chunks + macros - 1) / macros;
    EXPECT_EQ(res.stats.elapsed_cycles, ic.cycles * layers) << to_string(c.op.kind);

    // Replay the engine's merge: per-macro fold in chunk order, then banks.
    std::vector<Joule> em(macros, Joule{0.0});
    for (std::uint64_t ch = 0; ch < chunks; ++ch) em[ch % macros] += ic.energy;
    Joule want{0.0};
    const std::size_t per_bank = mem.config().macros_per_bank;
    for (std::size_t bk = 0; bk < mem.bank_count(); ++bk) {
      Joule bank{0.0};
      for (std::size_t i = 0; i < mem.bank(bk).macro_count(); ++i)
        bank += em[bk * per_bank + i];
      want += bank;
    }
    EXPECT_EQ(res.stats.energy.si(), want.si()) << to_string(c.op.kind);
  }
}

TEST(ExecutionEngine, SingleOpProgramsAreCachedAcrossRuns) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{4});
  const auto a = random_vec(300, 8, 23);
  const auto b = random_vec(300, 8, 24);
  const VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, b};
  EXPECT_EQ(eng.op_program_cache_stats().compiled, 0u);
  (void)eng.run(op);
  // 300 words in 16-word chunks over 4 macros -> 5 row pairs -> 5 programs.
  const auto first = eng.op_program_cache_stats();
  EXPECT_EQ(first.compiled, 5u);
  EXPECT_EQ(first.hits, 0u);
  (void)eng.run(op);
  const auto second = eng.op_program_cache_stats();
  EXPECT_EQ(second.compiled, first.compiled);  // nothing recompiled
  EXPECT_EQ(second.hits, 5u);
}

TEST(ExecutionEngine, ConcurrentBatchOverProgramPath) {
  // TSan fodder: 8 workers share the OpCompiler cache and per-macro
  // controllers across a mixed-kind batch; results must still be the serial
  // answers, and the instruction account must be populated.
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{8});
  const unsigned bits = 8;
  const auto a = random_vec(200, bits, 25);
  const auto b = random_vec(200, bits, 26);
  const std::vector<VecOp> ops = {
      {OpKind::Mult, bits, periph::LogicFn::And, a, b},
      {OpKind::Add, bits, periph::LogicFn::And, a, b},
      {OpKind::AddShift, bits, periph::LogicFn::And, a, b},
      {OpKind::Not, bits, periph::LogicFn::And, a, {}},
      {OpKind::Sub, bits, periph::LogicFn::And, a, b},
      {OpKind::Logic, bits, periph::LogicFn::Xor, a, b},
  };
  for (int rep = 0; rep < 3; ++rep) {
    const auto results = eng.run_batch(ops);
    ASSERT_EQ(results.size(), ops.size());
    for (std::size_t k = 0; k < ops.size(); ++k)
      expect_identical(run_fresh(ops[k], 1), results[k], to_string(ops[k].kind));
    EXPECT_GT(eng.last_batch().instructions, 0u);
  }
}

TEST(ExecutionEngine, CapacityOverflowRejected) {
  macro::ImcMemory mem(tiny_memory());
  ExecutionEngine eng(mem, EngineConfig{2});
  // 4 macros x 64 row pairs x 16 words = 4096 elements max at 8 bits.
  const auto a = random_vec(4097, 8, 13);
  VecOp op{OpKind::Add, 8, periph::LogicFn::And, a, a};
  EXPECT_THROW((void)eng.run(op), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::engine
