// Pipelined-issue timing model.

#include <gtest/gtest.h>

#include "timing/pipeline.hpp"

namespace bpim::timing {
namespace {

using namespace bpim::literals;

TEST(Pipeline, IssueIntervalNeverExceedsLatency) {
  const PipelineModel m;
  for (double v = 0.6; v <= 1.1 + 1e-9; v += 0.1) {
    const auto t = m.timing(Volt(v));
    EXPECT_LE(t.issue_interval.si(), t.latency.si());
    EXPECT_GE(t.speedup_vs_serial(), 1.0);
  }
}

TEST(Pipeline, ReferencePointNumbers) {
  // At 0.9 V with the separator: BL busy = 60+140+130 = 330 ps; logic is
  // 222 ps, so the BL side limits issue at 330 ps against a 603 ps latency.
  const PipelineModel m;
  const auto t = m.timing(0.9_V, true);
  EXPECT_NEAR(in_ps(t.latency), 603.0, 1e-6);
  EXPECT_NEAR(in_ps(t.issue_interval), 330.0, 1e-6);
  EXPECT_NEAR(t.speedup_vs_serial(), 603.0 / 330.0, 1e-9);
}

TEST(Pipeline, SeparatorShortensIssueInterval) {
  // Without the separator the write-back holds the main BLs, lengthening
  // the BL-busy window (330 -> 483 ps at 0.9 V).
  const PipelineModel m;
  const auto with = m.timing(0.9_V, true);
  const auto without = m.timing(0.9_V, false);
  EXPECT_LT(with.issue_interval.si(), without.issue_interval.si());
  EXPECT_NEAR(in_ps(without.issue_interval), 330.0 + 153.0, 1e-6);
}

TEST(Pipeline, ThroughputIsInverseIssueInterval) {
  const PipelineModel m;
  const auto t = m.timing(0.9_V);
  EXPECT_NEAR(m.throughput(0.9_V).si(), 1.0 / t.issue_interval.si(), 1.0);
}

TEST(Pipeline, LogicBoundWhenChainVeryWide) {
  // A 32-bit logic stage (444 ps at 0.9 V) exceeds the 330 ps BL window, so
  // the periphery becomes the bottleneck.
  FreqModelConfig cfg;
  cfg.logic_bits = 32;
  const PipelineModel m(cfg);
  const auto t = m.timing(0.9_V, true);
  EXPECT_GT(in_ps(t.issue_interval), 330.0 + 1.0);
}

TEST(Pipeline, ScalesWithSupplyLikeTheCycle) {
  const PipelineModel m;
  const double r06 = m.timing(0.6_V).issue_interval.si() / m.timing(0.6_V).latency.si();
  const double r09 = m.timing(0.9_V).issue_interval.si() / m.timing(0.9_V).latency.si();
  EXPECT_NEAR(r06, r09, 1e-9);  // all components share the scaling law
}

}  // namespace
}  // namespace bpim::timing
