// FA-Logics: every logic function and the carry-select adder, exhaustively
// and property-style against reference arithmetic.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "periph/falogics.hpp"

namespace bpim::periph {
namespace {

using array::BlReadout;

BlReadout readout_of(std::uint64_t a, std::uint64_t b, std::size_t width) {
  BitVector va(width, a), vb(width, b);
  return BlReadout{va & vb, ~(va | vb)};
}

TEST(FaLogics, AllLogicFunctionsMatchReference) {
  const std::size_t w = 8;
  for (std::uint64_t a = 0; a < 256; a += 37) {
    for (std::uint64_t b = 0; b < 256; b += 41) {
      const BlReadout r = readout_of(a, b, w);
      EXPECT_EQ(FaLogics::logic(r, LogicFn::And).to_u64(), a & b);
      EXPECT_EQ(FaLogics::logic(r, LogicFn::Nand).to_u64(), (~(a & b)) & 0xFF);
      EXPECT_EQ(FaLogics::logic(r, LogicFn::Or).to_u64(), a | b);
      EXPECT_EQ(FaLogics::logic(r, LogicFn::Nor).to_u64(), (~(a | b)) & 0xFF);
      EXPECT_EQ(FaLogics::logic(r, LogicFn::Xor).to_u64(), a ^ b);
      EXPECT_EQ(FaLogics::logic(r, LogicFn::Xnor).to_u64(), (~(a ^ b)) & 0xFF);
    }
  }
}

TEST(FaLogics, SingleWlPassAndNot) {
  BitVector a(8, 0b10110010);
  const BlReadout r{a, ~a};
  EXPECT_EQ(FaLogics::logic(r, LogicFn::PassA).to_u64(), 0b10110010u);
  EXPECT_EQ(FaLogics::logic(r, LogicFn::NotA).to_u64(), 0b01001101u);
}

TEST(FaLogics, ToStringNames) {
  EXPECT_STREQ(to_string(LogicFn::Xnor), "XNOR");
  EXPECT_STREQ(to_string(LogicFn::NotA), "NOT");
}

// --- the full adder, paper eq. (1)-(2) -------------------------------------

TEST(FaLogics, SingleBitTruthTable) {
  // All eight (A, B, Cin) combinations of the carry-select FA.
  for (unsigned a = 0; a <= 1; ++a)
    for (unsigned b = 0; b <= 1; ++b)
      for (unsigned cin = 0; cin <= 1; ++cin) {
        const BlReadout r = readout_of(a, b, 1);
        const AddResult res = FaLogics::add(r, 1, cin != 0);
        const unsigned expect = a + b + cin;
        EXPECT_EQ(res.sum.get(0), (expect & 1u) != 0) << a << b << cin;
        EXPECT_EQ(res.carry.get(0), (expect >> 1) != 0) << a << b << cin;
      }
}

TEST(FaLogics, EightBitExhaustiveAgainstAdder) {
  for (std::uint64_t a = 0; a < 256; ++a)
    for (std::uint64_t b = 0; b < 256; ++b) {
      const AddResult r = FaLogics::add(readout_of(a, b, 8), 8, false);
      EXPECT_EQ(r.sum.to_u64(), (a + b) & 0xFF);
      EXPECT_EQ(r.word_carry.get(7), ((a + b) >> 8) != 0);
    }
}

TEST(FaLogics, CarryInImplementsPlusOne) {
  for (std::uint64_t a = 0; a < 256; a += 7)
    for (std::uint64_t b = 0; b < 256; b += 11) {
      const AddResult r = FaLogics::add(readout_of(a, b, 8), 8, true);
      EXPECT_EQ(r.sum.to_u64(), (a + b + 1) & 0xFF);
    }
}

TEST(FaLogics, SegmentationIsolatesWords) {
  // Two 4-bit words packed in 8 columns: 0xF + 0x1 must not carry into the
  // upper word when the chain is cut at 4-bit boundaries.
  const std::uint64_t a = 0x2F;  // words: low 0xF, high 0x2
  const std::uint64_t b = 0x11;  // words: low 0x1, high 0x1
  const AddResult cut = FaLogics::add(readout_of(a, b, 8), 4, false);
  EXPECT_EQ(cut.sum.to_u64() & 0xF, 0x0u);        // 0xF + 0x1 wraps
  EXPECT_EQ((cut.sum.to_u64() >> 4) & 0xF, 0x3u); // 2 + 1, no ripple-in
  // Without the cut the carry ripples across.
  const AddResult joined = FaLogics::add(readout_of(a, b, 8), 8, false);
  EXPECT_EQ(joined.sum.to_u64(), 0x40u);
}

TEST(FaLogics, WordCarryPackedAtWordMsb) {
  const AddResult r = FaLogics::add(readout_of(0xFF, 0x01, 8), 4, false);
  EXPECT_TRUE(r.word_carry.get(3));   // low word overflows
  EXPECT_FALSE(r.word_carry.get(7));  // 0xF + 0x0 + no ripple-in... (0xF+0x0=0xF)
}

class FaLogicsWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(FaLogicsWidths, RandomizedWordsMatchReference) {
  // Property sweep: at every supported precision, packed multi-word rows add
  // like independent integers.
  const unsigned bits = GetParam();
  const std::size_t width = 128;
  const std::size_t words = width / bits;
  bpim::Rng rng(1000 + bits);
  for (int iter = 0; iter < 200; ++iter) {
    BitVector ra(width), rb(width);
    ra.randomize(rng);
    rb.randomize(rng);
    const BlReadout r{ra & rb, ~(ra | rb)};
    const AddResult res = FaLogics::add(r, bits, false);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t a = 0, b = 0, s = 0;
      for (unsigned i = 0; i < bits; ++i) {
        a |= static_cast<std::uint64_t>(ra.get(w * bits + i)) << i;
        b |= static_cast<std::uint64_t>(rb.get(w * bits + i)) << i;
        s |= static_cast<std::uint64_t>(res.sum.get(w * bits + i)) << i;
      }
      const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
      EXPECT_EQ(s, (a + b) & mask) << "word " << w << " @ " << bits << " bits";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, FaLogicsWidths, ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(FaLogics, RejectsBadPrecision) {
  const BlReadout r = readout_of(1, 2, 8);
  EXPECT_THROW(FaLogics::add(r, 3, false), std::invalid_argument);  // 8 % 3 != 0
  EXPECT_THROW(FaLogics::add(r, 0, false), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::periph
