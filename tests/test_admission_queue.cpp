// AdmissionQueue unit tests: FIFO drain, bounded backpressure, close and
// pause semantics. Tickets here are empty shells (no ops) -- the queue only
// moves them.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/admission_queue.hpp"

namespace bpim::serve {
namespace {

using detail::Ticket;

Ticket ticket(std::uint64_t seq) {
  Ticket t;
  t.seq = seq;
  return t;
}

std::vector<std::uint64_t> seqs(const std::vector<Ticket>& ts) {
  std::vector<std::uint64_t> out;
  for (const auto& t : ts) out.push_back(t.seq);
  return out;
}

constexpr std::chrono::microseconds kNoWindow{0};

TEST(AdmissionQueue, DrainsInFifoOrder) {
  AdmissionQueue q(8);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(q.push(ticket(i)));
  EXPECT_EQ(q.depth(), 5u);
  EXPECT_EQ(q.peak_depth(), 5u);

  std::vector<Ticket> out;
  ASSERT_TRUE(q.wait_pop_all(out, kNoWindow, 1));
  EXPECT_EQ(seqs(out), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.peak_depth(), 5u);  // high-water mark survives the drain
}

TEST(AdmissionQueue, TryPushFailsWhenFull) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.try_push(ticket(0)));
  EXPECT_TRUE(q.try_push(ticket(1)));
  EXPECT_FALSE(q.try_push(ticket(2)));
  std::vector<Ticket> out;
  q.try_pop_all(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(q.try_push(ticket(3)));
}

TEST(AdmissionQueue, BlockingPushWaitsForRoom) {
  AdmissionQueue q(1);
  EXPECT_TRUE(q.push(ticket(0)));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(ticket(1)));  // blocks until the consumer drains
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  std::vector<Ticket> out;
  ASSERT_TRUE(q.wait_pop_all(out, kNoWindow, 1));
  producer.join();
  EXPECT_TRUE(pushed.load());
  out.clear();
  ASSERT_TRUE(q.wait_pop_all(out, kNoWindow, 1));
  EXPECT_EQ(seqs(out), (std::vector<std::uint64_t>{1}));
}

TEST(AdmissionQueue, CloseWakesBlockedProducer) {
  AdmissionQueue q(1);
  EXPECT_TRUE(q.push(ticket(0)));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    rejected.store(!q.push(ticket(1)));  // blocked on a full queue...
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();  // ...until close fails the admission
  producer.join();
  EXPECT_TRUE(rejected.load());

  // The accepted ticket still drains; only then does the queue report done.
  std::vector<Ticket> out;
  EXPECT_TRUE(q.wait_pop_all(out, kNoWindow, 1));
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  EXPECT_FALSE(q.wait_pop_all(out, kNoWindow, 1));
  EXPECT_TRUE(out.empty());
}

TEST(AdmissionQueue, PushAfterCloseFails) {
  AdmissionQueue q(4);
  q.close();
  EXPECT_FALSE(q.push(ticket(0)));
  EXPECT_FALSE(q.try_push(ticket(1)));
  EXPECT_TRUE(q.closed());
}

TEST(AdmissionQueue, PauseFreezesConsumerNotProducers) {
  AdmissionQueue q(4);
  q.set_paused(true);
  EXPECT_TRUE(q.push(ticket(0)));  // admission stays open
  std::vector<Ticket> out;
  q.try_pop_all(out);
  EXPECT_TRUE(out.empty());  // consumer side is frozen

  q.set_paused(false);
  q.try_pop_all(out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(AdmissionQueue, CloseOverridesPause) {
  AdmissionQueue q(4);
  q.set_paused(true);
  EXPECT_TRUE(q.push(ticket(0)));
  q.close();
  // Shutdown must drain even a paused queue.
  std::vector<Ticket> out;
  EXPECT_TRUE(q.wait_pop_all(out, kNoWindow, 1));
  EXPECT_EQ(out.size(), 1u);
}

TEST(AdmissionQueue, PauseDuringLingerFreezesDrain) {
  AdmissionQueue q(8);
  EXPECT_TRUE(q.push(ticket(0)));
  std::atomic<bool> drained{false};
  std::vector<Ticket> out;
  std::thread consumer([&] {
    // Generous window, unreachable fill target: the consumer lingers.
    EXPECT_TRUE(q.wait_pop_all(out, std::chrono::microseconds(50000), 100));
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.set_paused(true);  // freeze mid-linger: nothing may drain while staged
  EXPECT_TRUE(q.push(ticket(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(70));  // window long expired
  EXPECT_FALSE(drained.load());
  q.set_paused(false);  // release: both tickets drain as one decision
  consumer.join();
  EXPECT_EQ(seqs(out), (std::vector<std::uint64_t>{0, 1}));
}

TEST(AdmissionQueue, CoalesceWindowCollectsLateArrivals) {
  AdmissionQueue q(8);
  EXPECT_TRUE(q.push(ticket(0)));
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(q.push(ticket(1)));
    EXPECT_TRUE(q.push(ticket(2)));
  });
  // A generous window with fill target 3: the consumer lingers until the
  // two late arrivals land, then drains all three as one decision.
  std::vector<Ticket> out;
  ASSERT_TRUE(q.wait_pop_all(out, std::chrono::microseconds(500000), 3));
  late.join();
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace bpim::serve
