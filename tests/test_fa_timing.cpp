// FA critical-path timing (Fig 7b) and the shared delay-scaling law.

#include <gtest/gtest.h>

#include "timing/fa_timing.hpp"

namespace bpim::timing {
namespace {

using namespace bpim::literals;
using circuit::Corner;

TEST(DelayScaling, ReferencePointIsUnity) {
  DelayScaling s;
  EXPECT_DOUBLE_EQ(s.factor(0.9_V), 1.0);
}

TEST(DelayScaling, MonotoneInSupply) {
  DelayScaling s;
  double prev = 1e9;
  for (double v = 0.6; v <= 1.1; v += 0.05) {
    const double f = s.factor(Volt(v));
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(DelayScaling, PaperAnchorsReproduced) {
  // Fitted so 0.9 V -> 1.0 V speeds up by 2.25/1.658 and 0.9 -> 0.6 slows
  // by 1.658/0.372 (the published fmax pair).
  DelayScaling s;
  EXPECT_NEAR(s.factor(1.0_V), 1.658 / 2.25, 0.01);
  EXPECT_NEAR(s.factor(0.6_V), 1.658 / 0.372, 0.10);
}

TEST(DelayScaling, CornersShiftDelay) {
  DelayScaling s;
  EXPECT_GT(s.factor(0.9_V, Corner::SS), 1.0);
  EXPECT_LT(s.factor(0.9_V, Corner::FF), 1.0);
}

TEST(DelayScaling, RejectsSupplyBelowFitRange) {
  DelayScaling s;
  EXPECT_THROW((void)s.factor(Volt(0.30)), std::invalid_argument);
}

TEST(FaTiming, SixteenBitReferenceIs222ps) {
  // Fig 8: the 16-bit adder logic stage is 222 ps at 0.9 V.
  const Second d = fa_critical_path(FaKind::TransmissionGateSelect, 16, 0.9_V);
  EXPECT_NEAR(in_ps(d), 222.0, 1e-6);
}

TEST(FaTiming, SpeedupInPaperBand) {
  // Paper: the TG carry-select FA improves the critical path 1.8x-2.2x.
  for (const unsigned bits : {8u, 16u}) {
    for (const double v : {0.7, 0.8, 0.9, 1.0, 1.1}) {
      const double s = fa_speedup(bits, Volt(v));
      EXPECT_GT(s, 1.8) << bits << " bits @ " << v << " V";
      EXPECT_LT(s, 2.2) << bits << " bits @ " << v << " V";
    }
  }
}

TEST(FaTiming, ChainGrowsLinearlyInBits) {
  const FaTimingConfig cfg;
  const double d8 = fa_critical_path(FaKind::TransmissionGateSelect, 8, 0.9_V).si();
  const double d16 = fa_critical_path(FaKind::TransmissionGateSelect, 16, 0.9_V).si();
  const double d32 = fa_critical_path(FaKind::TransmissionGateSelect, 32, 0.9_V).si();
  EXPECT_NEAR(d16 - d8, 8.0 * cfg.tg_stage.si(), 1e-15);
  EXPECT_NEAR(d32 - d16, 16.0 * cfg.tg_stage.si(), 1e-15);
}

TEST(FaTiming, LogicFaPaysPerStage) {
  const double tg = fa_critical_path(FaKind::TransmissionGateSelect, 16, 0.9_V).si();
  const double lg = fa_critical_path(FaKind::LogicGate, 16, 0.9_V).si();
  EXPECT_GT(lg, tg);
}

TEST(FaTiming, LowVoltageSixteenBitLogicFaAboveNanosecond) {
  // Fig 7b's y-axis: the logic-gate 16-bit FA crosses ~1 ns near 0.7 V.
  const double d = in_ps(fa_critical_path(FaKind::LogicGate, 16, 0.7_V));
  EXPECT_GT(d, 900.0);
  EXPECT_LT(d, 1400.0);
}

TEST(FaTiming, RejectsZeroBits) {
  EXPECT_THROW((void)fa_critical_path(FaKind::LogicGate, 0, 0.9_V), std::invalid_argument);
}

TEST(FaTiming, SlowCornerSlower) {
  const double nn = fa_critical_path(FaKind::TransmissionGateSelect, 16, 0.9_V).si();
  const double ss =
      fa_critical_path(FaKind::TransmissionGateSelect, 16, 0.9_V, {}, Corner::SS).si();
  EXPECT_GT(ss, nn);
}

}  // namespace
}  // namespace bpim::timing
