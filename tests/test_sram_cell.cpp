// 6T cell behavioural model: read current, disturb mechanisms, trip points.

#include <gtest/gtest.h>

#include "cell/sram6t.hpp"
#include "circuit/mosfet.hpp"
#include "common/stats.hpp"

namespace bpim::cell {
namespace {

using namespace bpim::literals;
using circuit::Corner;
using circuit::OperatingPoint;

OperatingPoint nominal() { return OperatingPoint{0.9_V, 25.0, Corner::NN}; }

Sram6tCell make_cell(const OperatingPoint& op = nominal()) {
  return Sram6tCell(CellGeometry{}, op);
}

TEST(Sram6t, ReadCurrentGrowsWithWlVoltage) {
  const auto cell = make_cell();
  const double i_wlud = cell.read_current(0.55_V, 0.9_V).si();
  const double i_full = cell.read_current(0.9_V, 0.9_V).si();
  EXPECT_GT(i_wlud, 0.5e-6);  // WLUD still discharges, just slowly
  EXPECT_GT(i_full, 3.0 * i_wlud);
}

TEST(Sram6t, ReadCurrentRealisticMagnitude) {
  const auto cell = make_cell();
  const double i = cell.read_current(0.9_V, 0.9_V).si();
  EXPECT_GT(i, 5e-6);
  EXPECT_LT(i, 60e-6);
}

TEST(Sram6t, NoCurrentIntoDischargedBl) {
  const auto cell = make_cell();
  EXPECT_DOUBLE_EQ(cell.read_current(0.9_V, 0.0_V).si(), 0.0);
}

TEST(Sram6t, BumpRisesWithWlVoltage) {
  const auto cell = make_cell();
  const double b_wlud = cell.bump_voltage(0.55_V, 0.9_V).si();
  const double b_full = cell.bump_voltage(0.9_V, 0.9_V).si();
  EXPECT_GT(b_full, b_wlud);
  EXPECT_LT(b_full, 0.5 * 0.9);  // read-stable cell: bump below half supply
}

TEST(Sram6t, SagFallsWithWlVoltageAtLowBl) {
  // The paper's Fig-1 hazard: stored '1' pulled toward a discharged BL.
  const auto cell = make_cell();
  const double q_wlud = cell.sag_voltage(0.55_V, 0.05_V).si();
  const double q_full = cell.sag_voltage(0.9_V, 0.05_V).si();
  EXPECT_LT(q_full, q_wlud);   // full-swing WL drags the node much lower
  EXPECT_LT(q_full, 0.3);      // deep collapse: would flip
  EXPECT_GT(q_wlud, 0.6);      // WLUD keeps the node safely high
}

TEST(Sram6t, SagBoundedByBlAndSupply) {
  const auto cell = make_cell();
  const double q = cell.sag_voltage(0.9_V, 0.2_V).si();
  EXPECT_GE(q, 0.2);
  EXPECT_LE(q, 0.9);
}

TEST(Sram6t, TripPointIsInteriorToSupply) {
  const auto cell = make_cell();
  EXPECT_GT(cell.trip_low().si(), 0.2);
  EXPECT_LT(cell.trip_low().si(), 0.7);
}

TEST(Sram6t, RegenerationDivergesAtMargin) {
  const auto cell = make_cell();
  const Volt trip = cell.trip_high();
  const double close = cell.regeneration_time(Volt(trip.si() - 0.005), trip).si();
  const double deep = cell.regeneration_time(Volt(trip.si() - 0.3), trip).si();
  EXPECT_GT(close, 10.0 * deep);
  EXPECT_LT(deep, 50e-12);  // deep flips regenerate in tens of ps
}

TEST(Sram6t, NominalCellSurvivesBothSchemes) {
  const auto cell = make_cell();
  // WLUD with collapsed BL: quasi-DC stress, nominal cell holds.
  EXPECT_FALSE(cell.flips_with_low_bl(0.55_V, 0.05_V, 2.0_ns));
  // Short full-swing pulse with only the initial droop present.
  EXPECT_FALSE(cell.flips_with_low_bl(0.9_V, 0.75_V, 140.0_ps));
  // Classic bump on the '0' side at full WL.
  EXPECT_FALSE(cell.flips_with_high_bl(0.9_V, 0.9_V, 140.0_ps));
}

TEST(Sram6t, FullSwingDcStressFlips) {
  // Unprotected: full WL held while the BL is collapsed -- the access
  // device crushes the '1' node. This is why the paper needs the short WL.
  const auto cell = make_cell();
  EXPECT_TRUE(cell.flips_with_low_bl(0.9_V, 0.05_V, 2.0_ns));
}

TEST(Sram6t, MismatchSamplingIsZeroMeanAndScaled) {
  Rng rng(3);
  RunningStats acc;
  for (int i = 0; i < 20000; ++i)
    acc.add(CellMismatch::sample(rng, CellGeometry{}).d_access.si());
  EXPECT_NEAR(acc.mean(), 0.0, 1e-3);
  const double expected =
      circuit::Mosfet::mismatch_sigma(CellGeometry{}.w_access_um).si();
  EXPECT_NEAR(acc.stddev(), expected, 0.1 * expected);
}

TEST(Sram6t, WeakAccessTailFlipsUnderWlud) {
  // A cell with a strongly lowered access Vt and weakened pull-up is the
  // disturb tail the iso-ADM target counts.
  CellMismatch mm;
  mm.d_access = Volt(-0.12);
  mm.d_pullup = Volt(+0.10);
  const Sram6tCell weak(CellGeometry{}, nominal(), mm);
  EXPECT_TRUE(weak.flips_with_low_bl(0.55_V, 0.05_V, 2.0_ns));
}

TEST(Sram6t, SlowCornerReadsSlower) {
  const auto fast = make_cell(OperatingPoint{0.9_V, 25.0, Corner::FF});
  const auto slow = make_cell(OperatingPoint{0.9_V, 25.0, Corner::SS});
  EXPECT_GT(fast.read_current(0.9_V, 0.9_V).si(), slow.read_current(0.9_V, 0.9_V).si());
}

}  // namespace
}  // namespace bpim::cell
