// Read-disturb injection: why the short-WL + boost scheme matters.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "macro/imc_macro.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using periph::LogicFn;

MacroConfig scheme_cfg(WlScheme s, bool inject = true) {
  MacroConfig cfg;
  cfg.wl_scheme = s;
  cfg.inject_disturb = inject;
  cfg.seed = 99;
  return cfg;
}

TEST(Disturb, ModelRatesOrdered) {
  const auto prop = DisturbModel::for_scheme(WlScheme::ShortPulseBoost);
  const auto wlud = DisturbModel::for_scheme(WlScheme::Wlud);
  const auto unprotected = DisturbModel::for_scheme(WlScheme::FullSwingLong);
  EXPECT_DOUBLE_EQ(prop.flip_probability, 0.0);
  EXPECT_GT(wlud.flip_probability, 0.0);
  EXPECT_LT(wlud.flip_probability, 1e-4);  // iso-ADM decade
  EXPECT_GT(unprotected.flip_probability, 0.1);
}

TEST(Disturb, ProposedSchemePreservesDataOverManyComputes) {
  ImcMacro m{scheme_cfg(WlScheme::ShortPulseBoost)};
  Rng rng(1);
  BitVector r0(128), r1(128);
  r0.randomize(rng);
  r1.randomize(rng);
  m.poke_row(0, r0);
  m.poke_row(1, r1);
  for (int i = 0; i < 200; ++i) m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  EXPECT_EQ(m.disturb_flips(), 0u);
  EXPECT_EQ(m.peek_row(0), r0);
  EXPECT_EQ(m.peek_row(1), r1);
}

TEST(Disturb, UnprotectedSchemeCorruptsComplementaryColumns) {
  ImcMacro m{scheme_cfg(WlScheme::FullSwingLong)};
  BitVector r0(128), r1(128);
  r0.fill(true);   // every column complementary: r0=1, r1=0
  m.poke_row(0, r0);
  m.poke_row(1, r1);
  m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  EXPECT_GT(m.disturb_flips(), 20u);  // ~35% of 256 vulnerable cells
  EXPECT_FALSE(m.peek_row(0) == r0 && m.peek_row(1) == r1);
}

TEST(Disturb, MatchingColumnsAreSafeEvenUnprotected) {
  // Columns where both cells store the same value have no victim (no cell
  // fights a BL discharged by the other row).
  ImcMacro m{scheme_cfg(WlScheme::FullSwingLong)};
  BitVector ones(128);
  ones.fill(true);
  m.poke_row(0, ones);
  m.poke_row(1, ones);
  for (int i = 0; i < 50; ++i) m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  EXPECT_EQ(m.disturb_flips(), 0u);
}

TEST(Disturb, InjectionOffMeansNoFlips) {
  ImcMacro m{scheme_cfg(WlScheme::FullSwingLong, /*inject=*/false)};
  BitVector r0(128);
  r0.fill(true);
  m.poke_row(0, r0);
  for (int i = 0; i < 50; ++i) m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
  EXPECT_EQ(m.disturb_flips(), 0u);
  EXPECT_EQ(m.peek_row(0), r0);
}

TEST(Disturb, WludRateIsRareButNonzeroInBulk) {
  // At 2.25e-5 per vulnerable cell per compute, ~128 vulnerable columns x
  // 2 cells x 2000 computes ~= 11 expected flips.
  ImcMacro m{scheme_cfg(WlScheme::Wlud)};
  BitVector r0(128);
  r0.fill(true);
  m.poke_row(0, r0);
  m.poke_row(1, BitVector(128));
  std::uint64_t flips = 0;
  for (int i = 0; i < 2000; ++i) {
    m.poke_row(0, r0);  // restore between stress rounds
    m.poke_row(1, BitVector(128));
    m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
    flips = m.disturb_flips();
  }
  EXPECT_GT(flips, 0u);
  EXPECT_LT(flips, 60u);
}

TEST(Disturb, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    MacroConfig cfg = scheme_cfg(WlScheme::FullSwingLong);
    cfg.seed = seed;
    ImcMacro m{cfg};
    BitVector r0(128);
    r0.fill(true);
    m.poke_row(0, r0);
    m.poke_row(1, BitVector(128));
    m.logic_rows(LogicFn::And, RowRef::main(0), RowRef::main(1));
    return m.disturb_flips();
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace bpim::macro
