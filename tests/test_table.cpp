// TextTable formatting used by every bench binary.

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace bpim {
namespace {

TEST(TextTable, AlignsColumnsAndRule) {
  TextTable t({"Op", "Cycles"});
  t.add_row({"ADD", "1"}).add_row({"MULT", "10"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Op"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("MULT"), std::string::npos);
  // Header line and rule line have the same length.
  std::istringstream is(s);
  std::string header, rule;
  std::getline(is, header);
  std::getline(is, rule);
  EXPECT_EQ(header.size(), rule.size());
}

TEST(TextTable, RowWidthEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::ratio(0.22, 2), "0.22x");
}

TEST(TextTable, CsvEscapeHatch) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Fig 2");
  EXPECT_NE(os.str().find("Fig 2"), std::string::npos);
}

}  // namespace
}  // namespace bpim
