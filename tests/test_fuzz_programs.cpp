// Fuzzing: random instruction streams through the MacroController, checked
// word-for-word against a host-side reference executor that mirrors the
// architectural semantics (dummy rows included). This is the strongest
// whole-datapath invariant test in the suite.

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"
#include "macro/program.hpp"
#include "macro/verifier.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using periph::LogicFn;

/// Host-side mirror of the macro's architectural state and op semantics.
class ReferenceMachine {
 public:
  explicit ReferenceMachine(std::size_t cols) : cols_(cols) {
    main_.fill(BitVector(cols));
    dummy_.fill(BitVector(cols));
  }

  BitVector& row(RowRef r) { return r.is_dummy() ? dummy_[r.index] : main_[r.index]; }

  BitVector exec(const Instruction& i) {
    const BitVector a = row(i.a);
    switch (i.op) {
      case Op::Nand: case Op::And: case Op::Nor: case Op::Or: case Op::Xnor: case Op::Xor: {
        const BitVector b = row(i.b);
        switch (i.logic_fn) {
          case LogicFn::And: return a & b;
          case LogicFn::Nand: return ~(a & b);
          case LogicFn::Or: return a | b;
          case LogicFn::Nor: return ~(a | b);
          case LogicFn::Xor: return a ^ b;
          default: return ~(a ^ b);
        }
      }
      case Op::Not: {
        BitVector r = ~a;
        row(*i.dest) = r;
        return r;
      }
      case Op::Copy:
        row(*i.dest) = a;
        return a;
      case Op::Shift: {
        BitVector r = word_shift(a, i.bits);
        row(*i.dest) = r;
        return r;
      }
      case Op::Add: {
        BitVector r = word_add(a, row(i.b), i.bits, false);
        if (i.dest) row(*i.dest) = r;
        return r;
      }
      case Op::AddShift: {
        BitVector r = word_shift(word_add(a, row(i.b), i.bits, false), i.bits);
        row(*i.dest) = r;
        return r;
      }
      case Op::Sub: {
        const BitVector nb = ~row(i.b);
        dummy_[ImcMacro::kDummyOperand] = nb;  // architectural side effect
        return word_add(a, nb, i.bits, true);
      }
      case Op::Mult: {
        BitVector r = unit_mult(a, row(i.b), i.bits);
        dummy_[ImcMacro::kDummyAccum] = r;
        return r;
      }
    }
    return a;
  }

 private:
  [[nodiscard]] BitVector word_add(const BitVector& a, const BitVector& b, unsigned bits,
                                   bool cin) const {
    BitVector out(cols_);
    for (std::size_t w = 0; w < cols_ / bits; ++w) {
      std::uint64_t x = 0, y = 0;
      for (unsigned k = 0; k < bits; ++k) {
        x |= static_cast<std::uint64_t>(a.get(w * bits + k)) << k;
        y |= static_cast<std::uint64_t>(b.get(w * bits + k)) << k;
      }
      const std::uint64_t s = x + y + (cin ? 1 : 0);
      for (unsigned k = 0; k < bits; ++k) out.set(w * bits + k, (s >> k) & 1u);
    }
    return out;
  }

  [[nodiscard]] BitVector word_shift(const BitVector& a, unsigned bits) const {
    BitVector out(cols_);
    for (std::size_t w = 0; w < cols_ / bits; ++w)
      for (unsigned k = 1; k < bits; ++k) out.set(w * bits + k, a.get(w * bits + k - 1));
    return out;
  }

  [[nodiscard]] BitVector unit_mult(const BitVector& a, const BitVector& b,
                                    unsigned bits) const {
    const unsigned wide = 2 * bits;
    BitVector out(cols_);
    for (std::size_t u = 0; u < cols_ / wide; ++u) {
      std::uint64_t x = 0, y = 0;
      for (unsigned k = 0; k < bits; ++k) {
        x |= static_cast<std::uint64_t>(a.get(u * wide + k)) << k;
        y |= static_cast<std::uint64_t>(b.get(u * wide + k)) << k;
      }
      const std::uint64_t p = x * y;
      for (unsigned k = 0; k < wide; ++k) out.set(u * wide + k, (p >> k) & 1u);
    }
    return out;
  }

  std::size_t cols_;
  std::array<BitVector, 128> main_;
  std::array<BitVector, 3> dummy_;
};

TEST(FuzzPrograms, RandomStreamsMatchReferenceMachine) {
  Rng rng(0xF022);
  for (int round = 0; round < 12; ++round) {
    ImcMacro macro{MacroConfig{}};
    ReferenceMachine ref(macro.cols());
    MacroController ctl(macro, VerifyMode::VerifyFirst);

    // Seed six main rows with random data in both machines.
    for (std::size_t r = 0; r < 6; ++r) {
      BitVector data(macro.cols());
      data.randomize(rng);
      macro.poke_row(r, data);
      ref.row(RowRef::main(r)) = data;
    }

    constexpr std::array<unsigned, 3> kBits{4, 8, 16};
    Program p;
    std::vector<Instruction> expected;
    for (int n = 0; n < 30; ++n) {
      const unsigned bits = kBits[rng.uniform_u64(kBits.size())];
      const auto ra = RowRef::main(rng.uniform_u64(6));
      auto rb = RowRef::main(rng.uniform_u64(6));
      if (rb == ra) rb = RowRef::main((rb.index + 1) % 6);
      switch (rng.uniform_u64(6)) {
        case 0: p.logic(LogicFn::Xor, ra, rb); break;
        case 1: p.unary(Op::Not, ra, RowRef::dummy(0), bits); break;
        case 2: p.add(ra, rb, bits); break;
        case 3: p.add_shift(ra, rb, bits, RowRef::dummy(2)); break;
        case 4: p.sub(ra, rb, bits); break;
        case 5: p.mult(ra, rb, bits); break;
      }
    }

    // Every builder-produced stream must pass the static verifier before it
    // executes -- and then execute identically to the reference machine.
    const VerifyReport rep = verify_program(p, macro);
    ASSERT_TRUE(rep.ok()) << "round " << round << ":\n" << rep.to_string();

    std::vector<TraceEntry> trace;
    ctl.run(p, &trace);
    ASSERT_EQ(trace.size(), p.size());
    for (std::size_t k = 0; k < trace.size(); ++k) {
      const BitVector want = ref.exec(trace[k].inst);
      EXPECT_EQ(trace[k].result, want)
          << "round " << round << " instr " << k << ": " << to_string(trace[k].inst);
      if (trace[k].result == want) continue;
      break;  // stop at first divergence; states are now unrelated
    }
  }
}

TEST(FuzzPrograms, CorruptedStreamsAreRejectedBeforeExecution) {
  Rng rng(0xDEAD);
  for (int round = 0; round < 12; ++round) {
    ImcMacro macro{MacroConfig{}};
    MacroController ctl(macro, VerifyMode::VerifyFirst);

    // A short valid prefix, then one corrupted instruction mid-stream.
    Program p;
    for (int n = 0; n < 5; ++n)
      p.add(RowRef::main(rng.uniform_u64(6)), RowRef::main(6 + rng.uniform_u64(6)), 8);
    Instruction bad;
    bad.b = RowRef::main(1);
    switch (rng.uniform_u64(4)) {
      case 0:  // row beyond the array
        bad.op = Op::Add;
        bad.a = RowRef::main(500 + rng.uniform_u64(500));
        bad.bits = 8;
        break;
      case 1:  // width the ISA does not implement
        bad.op = Op::Sub;
        bad.a = RowRef::main(0);
        bad.bits = 7;
        break;
      case 2:  // dual-WL op sensing one row twice
        bad.op = Op::Add;
        bad.a = RowRef::main(1);
        bad.bits = 8;
        break;
      case 3:  // MULT sourcing its own scratch row
        bad.op = Op::Mult;
        bad.a = RowRef::dummy(2);
        bad.bits = 8;
        break;
    }
    p.push(bad);
    for (int n = 0; n < 5; ++n)
      p.add(RowRef::main(rng.uniform_u64(6)), RowRef::main(6 + rng.uniform_u64(6)), 8);

    const VerifyReport rep = verify_program(p, macro);
    EXPECT_FALSE(rep.ok()) << "round " << round << ": corruption not caught";
    EXPECT_THROW(ctl.run(p), std::invalid_argument);
    // Rejected whole: the valid prefix never executed either.
    EXPECT_EQ(macro.total_cycles(), 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace bpim::macro
