// Static program verifier: every diagnostic kind has a program that
// triggers it, builder-produced programs are accepted, and the controller's
// verify-first mode matches legacy execution on valid programs while
// rejecting bad ones before the macro is touched.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/rng.hpp"
#include "macro/program.hpp"
#include "macro/verifier.hpp"

namespace bpim::macro {
namespace {

using array::ArrayGeometry;
using array::RowRef;
using periph::LogicFn;

ArrayGeometry default_geometry() { return MacroConfig{}.geometry; }

bool has(const VerifyReport& r, DiagKind kind) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.kind == kind; });
}

const Diagnostic& first(const VerifyReport& r, DiagKind kind) {
  for (const auto& d : r.diagnostics)
    if (d.kind == kind) return d;
  throw std::logic_error("diagnostic kind not present");
}

TEST(Verifier, AcceptsBuilderProgramCleanly) {
  Program p;
  p.logic(LogicFn::Xor, RowRef::main(0), RowRef::main(1))
      .unary(Op::Not, RowRef::main(2), RowRef::dummy(0), 8)
      .add(RowRef::main(0), RowRef::dummy(0), 8)
      .add_shift(RowRef::main(1), RowRef::main(2), 8, RowRef::dummy(2))
      .sub(RowRef::main(3), RowRef::main(4), 16)
      .mult(RowRef::main(4), RowRef::main(5), 8);
  const auto rep = verify_program(p, default_geometry());
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.warnings, 0u);
  EXPECT_EQ(rep.static_cycles, p.static_cycles());
}

TEST(Verifier, FlagsRowsOutOfRange) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(200), 8)         // main beyond rows
      .unary(Op::Not, RowRef::main(1), RowRef::dummy(7), 8);  // dummy beyond dummy_rows
  const auto rep = verify_program(p, default_geometry());
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.errors, 2u);
  EXPECT_TRUE(has(rep, DiagKind::RowOutOfRange));
  EXPECT_EQ(first(rep, DiagKind::RowOutOfRange).instruction, 0u);
}

TEST(Verifier, FlagsIdenticalDualWlRows) {
  Program p;
  p.add(RowRef::main(3), RowRef::main(3), 8);
  const auto rep = verify_program(p, default_geometry());
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has(rep, DiagKind::IdenticalRows));
}

TEST(Verifier, FlagsScratchRowRoleViolations) {
  Program bad_mult;
  bad_mult.mult(RowRef::dummy(1), RowRef::main(1), 8);
  EXPECT_TRUE(has(verify_program(bad_mult, default_geometry()), DiagKind::RoleViolation));

  Program bad_mult_b;
  bad_mult_b.mult(RowRef::main(0), RowRef::dummy(2), 8);
  EXPECT_TRUE(has(verify_program(bad_mult_b, default_geometry()), DiagKind::RoleViolation));

  Program bad_sub;
  bad_sub.sub(RowRef::dummy(1), RowRef::main(0), 8);
  EXPECT_TRUE(has(verify_program(bad_sub, default_geometry()), DiagKind::RoleViolation));

  // The subtrahend may be D1: it is sensed before the scratch overwrite.
  Program ok_sub;
  ok_sub.sub(RowRef::main(0), RowRef::dummy(1), 8);
  EXPECT_TRUE(verify_program(ok_sub, default_geometry()).ok());
}

TEST(Verifier, FlagsMissingDest) {
  Program p;
  Instruction i;
  i.op = Op::Shift;
  i.a = RowRef::main(0);
  i.dest = std::nullopt;
  p.push(i);
  const auto rep = verify_program(p, default_geometry());
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has(rep, DiagKind::MissingDest));
}

TEST(Verifier, WarnsOnIgnoredDest) {
  Program p;
  Instruction i;
  i.op = Op::Sub;
  i.a = RowRef::main(0);
  i.b = RowRef::main(1);
  i.dest = RowRef::dummy(0);
  p.push(i);
  const auto rep = verify_program(p, default_geometry());
  EXPECT_TRUE(rep.ok());  // a warning, not an error
  EXPECT_EQ(rep.warnings, 1u);
  EXPECT_TRUE(has(rep, DiagKind::DestIgnored));
}

TEST(Verifier, FlagsUnsupportedPrecision) {
  Program p;
  Instruction i;
  i.op = Op::Add;
  i.a = RowRef::main(0);
  i.b = RowRef::main(1);
  i.bits = 5;
  p.push(i);
  Instruction z = i;
  z.bits = 0;
  p.push(z);
  const auto rep = verify_program(p, default_geometry());
  EXPECT_EQ(rep.errors, 2u);
  EXPECT_TRUE(has(rep, DiagKind::BadPrecision));
  // Degenerate widths are priced at zero instead of tripping Table 1.
  EXPECT_EQ(rep.static_cycles, 1u);
}

TEST(Verifier, FlagsFieldOverflowAndWidthMismatch) {
  ArrayGeometry narrow = default_geometry();
  narrow.cols = 16;
  Program overflow;
  overflow.mult(RowRef::main(0), RowRef::main(1), 16);  // 32-column units
  EXPECT_TRUE(has(verify_program(overflow, narrow), DiagKind::FieldOverflow));

  ArrayGeometry odd = default_geometry();
  odd.cols = 96;
  Program mismatch;
  mismatch.mult(RowRef::main(0), RowRef::main(1), 32);  // 64 does not divide 96
  EXPECT_TRUE(has(verify_program(mismatch, odd), DiagKind::WidthMismatch));
}

TEST(Verifier, WarnsOnRawThroughScratchClobber) {
  Program p;
  p.unary(Op::Not, RowRef::main(0), RowRef::dummy(1), 8)  // explicit def of D1
      .sub(RowRef::main(1), RowRef::main(2), 8)           // SUB stages ~b in D1
      .add(RowRef::dummy(1), RowRef::main(3), 8);         // reads the lost def
  const auto rep = verify_program(p, default_geometry());
  EXPECT_TRUE(rep.ok());
  ASSERT_TRUE(has(rep, DiagKind::RawHazard));
  EXPECT_EQ(first(rep, DiagKind::RawHazard).instruction, 2u);
}

TEST(Verifier, WarnsOnWawDeadStore) {
  Program p;
  p.unary(Op::Not, RowRef::main(0), RowRef::dummy(0), 8)
      .unary(Op::Not, RowRef::main(1), RowRef::dummy(0), 8);  // first def never read
  const auto rep = verify_program(p, default_geometry());
  EXPECT_TRUE(rep.ok());
  ASSERT_TRUE(has(rep, DiagKind::WawHazard));
  EXPECT_EQ(first(rep, DiagKind::WawHazard).instruction, 1u);

  Program read_between;
  read_between.unary(Op::Not, RowRef::main(0), RowRef::dummy(0), 8)
      .add(RowRef::dummy(0), RowRef::main(1), 8)
      .unary(Op::Not, RowRef::main(2), RowRef::dummy(0), 8);
  EXPECT_FALSE(has(verify_program(read_between, default_geometry()), DiagKind::WawHazard));
}

TEST(Verifier, WarnsOnPrecisionReinterpretation) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8, RowRef::dummy(0))
      .add(RowRef::dummy(0), RowRef::main(2), 4);  // 8-bit fields read as 4-bit
  const auto rep = verify_program(p, default_geometry());
  EXPECT_TRUE(rep.ok());
  ASSERT_TRUE(has(rep, DiagKind::PrecisionMismatch));
  EXPECT_EQ(first(rep, DiagKind::PrecisionMismatch).instruction, 1u);

  // Same width back-to-back is silent.
  Program same;
  same.add(RowRef::main(0), RowRef::main(1), 8, RowRef::dummy(0))
      .add(RowRef::dummy(0), RowRef::main(2), 8);
  EXPECT_FALSE(has(verify_program(same, default_geometry()), DiagKind::PrecisionMismatch));
}

TEST(Verifier, FlagsExplicitWritesIntoPinnedRows) {
  // Residency-aware pass: reading pinned weight rows is the fused
  // forward's whole point; writing into the pinned interval is corruption.
  const std::vector<PinnedRows> pinned{{100, 20}};

  Program reads;
  reads.mult(RowRef::main(104), RowRef::main(0), 8)
      .add(RowRef::main(110), RowRef::main(1), 8);
  EXPECT_TRUE(verify_program(reads, default_geometry(),
                             std::span<const PinnedRows>(pinned))
                  .ok());

  Program clobber;
  clobber.add_shift(RowRef::main(0), RowRef::main(1), 8, RowRef::main(110));
  const auto rep =
      verify_program(clobber, default_geometry(), std::span<const PinnedRows>(pinned));
  EXPECT_FALSE(rep.ok());
  ASSERT_TRUE(has(rep, DiagKind::ResidentClobber));
  EXPECT_EQ(first(rep, DiagKind::ResidentClobber).instruction, 0u);
  EXPECT_NE(rep.annotate(clobber).find("resident-clobber"), std::string::npos)
      << rep.annotate(clobber);

  // Without the pinned map the same program is clean: the check is opt-in.
  EXPECT_TRUE(verify_program(clobber, default_geometry()).ok());
}

TEST(Verifier, EnforcesStaticBudgets) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8)
      .add(RowRef::main(1), RowRef::main(2), 8)
      .add(RowRef::main(2), RowRef::main(3), 8);

  VerifyLimits cycles;
  cycles.max_cycles = 2;
  const auto rep = verify_program(p, default_geometry(), cycles);
  EXPECT_FALSE(rep.ok());
  ASSERT_TRUE(has(rep, DiagKind::CycleBudget));
  EXPECT_EQ(first(rep, DiagKind::CycleBudget).instruction, 2u);  // the crossing instruction

  VerifyLimits count;
  count.max_instructions = 2;
  EXPECT_TRUE(has(verify_program(p, default_geometry(), count), DiagKind::InstructionBudget));

  // Zero limits mean unlimited.
  EXPECT_TRUE(verify_program(p, default_geometry()).ok());
}

TEST(Verifier, ReportsFormatAsText) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(300), 8);
  const auto rep = verify_program(p, default_geometry());
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("error[row-out-of-range] @#0"), std::string::npos) << text;
  EXPECT_NE(rep.error_summary().find("1 error(s)"), std::string::npos);
}

TEST(Verifier, AcceptsRandomBuilderPrograms) {
  Rng rng(0x5EED);
  constexpr std::array<unsigned, 3> kBits{4, 8, 16};
  for (int round = 0; round < 20; ++round) {
    Program p;
    for (int n = 0; n < 40; ++n) {
      const unsigned bits = kBits[rng.uniform_u64(kBits.size())];
      const auto ra = RowRef::main(rng.uniform_u64(6));
      auto rb = RowRef::main(rng.uniform_u64(6));
      if (rb == ra) rb = RowRef::main((rb.index + 1) % 6);
      switch (rng.uniform_u64(6)) {
        case 0: p.logic(LogicFn::Xor, ra, rb); break;
        case 1: p.unary(Op::Not, ra, RowRef::dummy(0), bits); break;
        case 2: p.add(ra, rb, bits); break;
        case 3: p.add_shift(ra, rb, bits, RowRef::dummy(2)); break;
        case 4: p.sub(ra, rb, bits); break;
        case 5: p.mult(ra, rb, bits); break;
      }
    }
    const auto rep = verify_program(p, default_geometry());
    EXPECT_TRUE(rep.ok()) << "round " << round << ":\n" << rep.to_string();
  }
}

TEST(Verifier, VerifyFirstControllerMatchesLegacy) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8, RowRef::dummy(0))
      .sub(RowRef::main(2), RowRef::main(3), 8)
      .mult(RowRef::main(4), RowRef::main(5), 8)
      .unary(Op::Not, RowRef::main(0), RowRef::dummy(0), 8);

  ImcMacro legacy_macro{MacroConfig{}};
  ImcMacro verified_macro{MacroConfig{}};
  Rng rng(0xBEEF);
  for (std::size_t r = 0; r < 6; ++r) {
    BitVector data(legacy_macro.cols());
    data.randomize(rng);
    legacy_macro.poke_row(r, data);
    verified_macro.poke_row(r, data);
  }

  MacroController legacy(legacy_macro);
  MacroController verified(verified_macro, VerifyMode::VerifyFirst);
  std::vector<TraceEntry> lt, vt;
  const ProgramStats ls = legacy.run(p, &lt);
  const ProgramStats vs = verified.run(p, &vt);

  EXPECT_EQ(ls.cycles, vs.cycles);
  EXPECT_EQ(ls.instructions, vs.instructions);
  ASSERT_EQ(lt.size(), vt.size());
  for (std::size_t k = 0; k < lt.size(); ++k) EXPECT_EQ(lt[k].result, vt[k].result);
}

TEST(Verifier, VerifyFirstRejectsBeforeTouchingTheMacro) {
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8)
      .mult(RowRef::dummy(1), RowRef::main(2), 8);  // role violation at #1

  ImcMacro macro{MacroConfig{}};
  MacroController ctl(macro, VerifyMode::VerifyFirst);
  EXPECT_THROW(ctl.run(p), std::invalid_argument);
  EXPECT_EQ(macro.total_cycles(), 0u);  // nothing executed, not even #0

  // Legacy validate() does not know role rules: this program would have
  // started executing. VerifyFirst is strictly stricter.
  MacroController legacy(macro);
  EXPECT_NO_THROW(legacy.validate(p));
}

}  // namespace
}  // namespace bpim::macro
