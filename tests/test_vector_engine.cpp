// Vector engine: tiling across macros and row pairs, stats bookkeeping.

#include <gtest/gtest.h>

#include "app/vector_engine.hpp"
#include "common/rng.hpp"

namespace bpim::app {
namespace {

macro::MemoryConfig tiny_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

class VectorEngineP : public ::testing::TestWithParam<unsigned> {};

TEST_P(VectorEngineP, AddMatchesScalarReference) {
  const unsigned bits = GetParam();
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, bits);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  const auto a = random_vec(300, bits, 1);
  const auto b = random_vec(300, bits, 2);
  const auto c = eng.add(a, b);
  ASSERT_EQ(c.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], (a[i] + b[i]) & mask) << i;
}

TEST_P(VectorEngineP, SubMatchesScalarReference) {
  const unsigned bits = GetParam();
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, bits);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  const auto a = random_vec(150, bits, 3);
  const auto b = random_vec(150, bits, 4);
  const auto c = eng.sub(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], (a[i] - b[i]) & mask) << i;
}

TEST_P(VectorEngineP, MultMatchesScalarReference) {
  const unsigned bits = GetParam();
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, bits);
  const auto a = random_vec(100, bits, 5);
  const auto b = random_vec(100, bits, 6);
  const auto c = eng.mult(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], a[i] * b[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Precisions, VectorEngineP, ::testing::Values(2u, 4u, 8u, 16u));

TEST(VectorEngine, LogicOp) {
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, 8);
  const auto a = random_vec(64, 8, 7);
  const auto b = random_vec(64, 8, 8);
  const auto c = eng.logic(periph::LogicFn::Xor, a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], a[i] ^ b[i]);
}

TEST(VectorEngine, StatsReflectParallelism) {
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, 8);
  // 4 macros x 16 words per row pair: 64 adds in one lock-step layer.
  const auto a = random_vec(64, 8, 9);
  const auto b = random_vec(64, 8, 10);
  (void)eng.add(a, b);
  const auto& run = eng.last_run();
  EXPECT_EQ(run.elements, 64u);
  EXPECT_EQ(run.elapsed_cycles, 1u);  // single ADD cycle per macro, lock-step
  EXPECT_NEAR(run.cycles_per_element(), 1.0 / 64.0, 1e-12);
  EXPECT_GT(run.energy.si(), 0.0);
  EXPECT_GT(run.elapsed_time.si(), 0.0);

  // Twice the data -> two layers -> twice the elapsed cycles.
  const auto a2 = random_vec(128, 8, 11);
  const auto b2 = random_vec(128, 8, 12);
  (void)eng.add(a2, b2);
  EXPECT_EQ(eng.last_run().elapsed_cycles, 2u);
}

TEST(VectorEngine, MismatchedLengthsRejected) {
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, 8);
  EXPECT_THROW((void)eng.add({1, 2}, {1}), std::invalid_argument);
}

TEST(VectorEngine, CapacityQueries) {
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, 8);
  EXPECT_EQ(eng.words_per_row(), 16u);
  EXPECT_EQ(eng.mult_units_per_row(), 8u);
  EXPECT_EQ(eng.layer_capacity(), 64u);
}

TEST(VectorEngine, LargeVectorSpansManyRowPairs) {
  macro::ImcMemory mem(tiny_memory());
  VectorEngine eng(mem, 8);
  const auto a = random_vec(2048, 8, 13);
  const auto b = random_vec(2048, 8, 14);
  const auto c = eng.add(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], (a[i] + b[i]) & 0xFF);
  EXPECT_EQ(eng.last_run().elapsed_cycles, 2048 / 64);
}

}  // namespace
}  // namespace bpim::app
