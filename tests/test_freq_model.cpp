// Cycle-time composition and fmax (Fig 8).

#include <gtest/gtest.h>

#include "timing/freq_model.hpp"

namespace bpim::timing {
namespace {

using namespace bpim::literals;

TEST(FreqModel, BreakdownMatchesFig8At09V) {
  const FreqModel m;
  const auto b = m.breakdown(0.9_V);
  EXPECT_NEAR(in_ps(b.bl_precharge), 60.0, 1e-6);
  EXPECT_NEAR(in_ps(b.wl_activation), 140.0, 1e-6);
  EXPECT_NEAR(in_ps(b.bl_sensing), 130.0, 1e-6);
  EXPECT_NEAR(in_ps(b.logic), 222.0, 1e-6);
  EXPECT_NEAR(in_ps(b.write_back), 51.0, 1e-6);
  EXPECT_NEAR(in_ps(b.total()), 603.0, 1e-6);
}

TEST(FreqModel, Fig8FractionsMatchPaper) {
  // Paper: logic 36.8%, WL act 23.2%, sensing 21.6%, precharge 10.0%, WB 8.5%.
  const FreqModel m;
  const auto b = m.breakdown(0.9_V);
  const double t = b.total().si();
  EXPECT_NEAR(b.logic.si() / t, 0.368, 0.005);
  EXPECT_NEAR(b.wl_activation.si() / t, 0.232, 0.005);
  EXPECT_NEAR(b.bl_sensing.si() / t, 0.216, 0.005);
  EXPECT_NEAR(b.bl_precharge.si() / t, 0.100, 0.005);
  EXPECT_NEAR(b.write_back.si() / t, 0.085, 0.005);
}

TEST(FreqModel, PaperFmaxAnchors) {
  const FreqModel m;
  // Table 3: 2.25 GHz at 1.0 V; Fig 8 right: 372 MHz at 0.6 V.
  EXPECT_NEAR(in_GHz(m.fmax(1.0_V)), 2.25, 0.02);
  EXPECT_NEAR(in_MHz(m.fmax(0.6_V)), 372.0, 8.0);
  EXPECT_NEAR(in_GHz(m.fmax(0.9_V)), 1.658, 0.02);
}

TEST(FreqModel, FmaxMonotoneInSupply) {
  const FreqModel m;
  double prev = 0.0;
  for (double v = 0.6; v <= 1.1; v += 0.05) {
    const double f = m.fmax(Volt(v)).si();
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(FreqModel, SeparatorShortensWriteBack) {
  const FreqModel m;
  const auto with = m.breakdown(0.9_V, true);
  const auto without = m.breakdown(0.9_V, false);
  EXPECT_NEAR(without.write_back.si() / with.write_back.si(),
              m.config().write_back_full_bl_factor, 1e-9);
  EXPECT_GT(m.fmax(0.9_V, true).si(), m.fmax(0.9_V, false).si());
}

TEST(FreqModel, LogicFaChoiceHurtsFmax) {
  const FreqModel m;
  EXPECT_GT(m.fmax(0.9_V, true, circuit::Corner::NN, FaKind::TransmissionGateSelect).si(),
            m.fmax(0.9_V, true, circuit::Corner::NN, FaKind::LogicGate).si());
}

TEST(FreqModel, SlowCornerLowersFmax) {
  const FreqModel m;
  EXPECT_LT(m.fmax(0.9_V, true, circuit::Corner::SS).si(),
            m.fmax(0.9_V, true, circuit::Corner::NN).si());
}

TEST(FreqModel, SupplyRangeOfPaperIsUsable) {
  // The paper claims 0.6-1.1 V operation.
  const FreqModel m;
  EXPECT_GT(m.fmax(0.6_V).si(), 100e6);
  EXPECT_GT(m.fmax(1.1_V).si(), 2.5e9);
}

}  // namespace
}  // namespace bpim::timing
