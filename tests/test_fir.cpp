// FIR filtering on the IMC memory.

#include <gtest/gtest.h>

#include <cmath>

#include "app/fir.hpp"
#include "common/rng.hpp"

namespace bpim::app {
namespace {

macro::MemoryConfig small_mem() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = 2;
  return cfg;
}

TEST(Fir, ImpulseResponseIsTheTaps) {
  macro::ImcMemory mem(small_mem());
  FirFilter f({3, -2, 5, 1}, 8);
  std::vector<std::int64_t> x(8, 0);
  x[0] = 1;
  const auto y = f.apply(mem, x);
  EXPECT_EQ(y[0], 3);
  EXPECT_EQ(y[1], -2);
  EXPECT_EQ(y[2], 5);
  EXPECT_EQ(y[3], 1);
  EXPECT_EQ(y[4], 0);
}

TEST(Fir, MatchesReferenceOnRandomSignal) {
  macro::ImcMemory mem(small_mem());
  FirFilter f({7, -3, 0, 2, -1}, 8);
  Rng rng(4);
  std::vector<std::int64_t> x(200);
  for (auto& v : x) v = static_cast<std::int64_t>(rng.uniform_u64(201)) - 100;
  const auto y = f.apply(mem, x);
  const auto ref = f.apply_reference(x);
  ASSERT_EQ(y.size(), ref.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], ref[i]) << i;
}

TEST(Fir, MovingAverageSmoothsAStep) {
  macro::ImcMemory mem(small_mem());
  FirFilter f({1, 1, 1, 1}, 8);
  std::vector<std::int64_t> x(12, 0);
  for (std::size_t i = 4; i < x.size(); ++i) x[i] = 20;
  const auto y = f.apply(mem, x);
  EXPECT_EQ(y[3], 0);
  EXPECT_EQ(y[4], 20);
  EXPECT_EQ(y[5], 40);
  EXPECT_EQ(y[6], 60);
  EXPECT_EQ(y[7], 80);   // fully inside the step: 4 taps x 20
  EXPECT_EQ(y[11], 80);
}

TEST(Fir, ZeroTapsSkipMemoryWork) {
  macro::ImcMemory mem(small_mem());
  FirFilter sparse({5, 0, 0, 0, 0, 0, 0, -5}, 8);
  std::vector<std::int64_t> x(64, 3);
  (void)sparse.apply(mem, x);
  const auto cycles_sparse = sparse.last_stats().cycles;
  FirFilter dense({5, 1, 1, 1, 1, 1, 1, -5}, 8);
  (void)dense.apply(mem, x);
  EXPECT_LT(cycles_sparse, dense.last_stats().cycles);
}

TEST(Fir, StatsCountMacs) {
  macro::ImcMemory mem(small_mem());
  FirFilter f({1, 2, 3}, 8);
  std::vector<std::int64_t> x(50, 1);
  (void)f.apply(mem, x);
  EXPECT_EQ(f.last_stats().macs, 3u * 50u);
  EXPECT_GT(f.last_stats().energy.si(), 0.0);
}

TEST(Fir, ValidatesTaps) {
  EXPECT_THROW(FirFilter({}, 8), std::invalid_argument);
  EXPECT_THROW(FirFilter({300}, 8), std::invalid_argument);
}

TEST(Fir, PinnedTapsBitIdenticalAndCheaperToLoad) {
  // Streaming shape: the same filter applied block after block. Resident
  // tap rows must give exactly the re-poke outputs while only the delayed
  // streams load; a block of a different length falls back transparently.
  const std::vector<std::int64_t> taps{7, -3, 0, 5};
  const std::size_t block = 48;
  macro::ImcMemory fresh_mem(small_mem());
  engine::ExecutionEngine fresh_eng(fresh_mem);
  FirFilter fresh(taps, 8);
  macro::ImcMemory pinned_mem(small_mem());
  engine::ExecutionEngine pinned_eng(pinned_mem);
  FirFilter pinned(taps, 8, pinned_eng, block);
  EXPECT_TRUE(pinned.pinned());
  EXPECT_EQ(pinned.block_len(), block);

  bpim::Rng rng(77);
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::int64_t> x(block);
    for (auto& v : x) v = static_cast<std::int64_t>(rng.next_u64() % 200) - 100;
    const auto want = fresh.apply(fresh_eng, x);
    const auto got = pinned.apply(pinned_eng, x);
    EXPECT_EQ(want, got) << "block " << i;
    EXPECT_EQ(got, pinned.apply_reference(x));
    // The pinned filter runs fused: identical outputs, fewer cycles, the
    // chained-MAC discount accounted in fused_cycles_saved.
    EXPECT_EQ(fresh.last_stats().cycles,
              pinned.last_stats().cycles + pinned.last_stats().fused_cycles_saved);
    EXPECT_GT(pinned.last_stats().fused_cycles_saved, 0u);
    if (i > 0) {
      EXPECT_LT(pinned.last_stats().load_cycles, fresh.last_stats().load_cycles);
      EXPECT_GT(pinned.last_stats().load_cycles_saved, 0u);
    }
  }

  // Off-length block: re-poke fallback, still correct.
  std::vector<std::int64_t> odd(block / 2, 9);
  EXPECT_EQ(pinned.apply(pinned_eng, odd), pinned.apply_reference(odd));
}

}  // namespace
}  // namespace bpim::app
