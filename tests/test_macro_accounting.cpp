// Per-component energy breakdown and charged standard SRAM accesses.

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "macro/imc_macro.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using energy::Component;

constexpr std::array<Component, 8> kAllComponents{
    Component::DualWlComputeMain, Component::DualWlComputeNear, Component::SingleWlRead,
    Component::FaLogic,           Component::Inverter,          Component::WriteBackNear,
    Component::WriteBackFull,     Component::FlipFlop};

double breakdown_sum(const ImcMacro& m) {
  double s = 0.0;
  for (const auto c : kAllComponents) s += m.component_energy(c).si();
  return s;
}

TEST(MacroAccounting, ComponentsSumToTotalAcrossMixedOps) {
  ImcMacro m{MacroConfig{}};
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  m.sub_rows(RowRef::main(2), RowRef::main(3), 8);
  m.mult_rows(RowRef::main(4), RowRef::main(5), 4);
  m.unary_row(Op::Shift, RowRef::main(6), RowRef::dummy(0), 8);
  EXPECT_NEAR(breakdown_sum(m), m.total_energy().si(), 1e-22);
}

TEST(MacroAccounting, AddTouchesOnlyComputeAndFa) {
  ImcMacro m{MacroConfig{}};
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_GT(m.component_energy(Component::DualWlComputeMain).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::FaLogic).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::WriteBackNear).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::WriteBackFull).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::SingleWlRead).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::FlipFlop).si(), 0.0);
}

TEST(MacroAccounting, MultUsesNearComputeAndFlipFlops) {
  ImcMacro m{MacroConfig{}};
  m.mult_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_GT(m.component_energy(Component::DualWlComputeNear).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::FlipFlop).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::WriteBackNear).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::SingleWlRead).si(), 0.0);  // B load + A copy
  EXPECT_DOUBLE_EQ(m.component_energy(Component::DualWlComputeMain).si(), 0.0);
}

TEST(MacroAccounting, ResetClearsBreakdown) {
  ImcMacro m{MacroConfig{}};
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  m.reset_counters();
  EXPECT_DOUBLE_EQ(breakdown_sum(m), 0.0);
}

TEST(MacroAccounting, StandardReadIsChargedAndCorrect) {
  ImcMacro m{MacroConfig{}};
  BitVector data(128, 0xDEADBEEFull);
  m.poke_row(9, data);
  const BitVector out = m.read_row(9);
  EXPECT_EQ(out, data);
  EXPECT_EQ(m.last_op().cycles, 1u);
  EXPECT_GT(m.component_energy(Component::SingleWlRead).si(), 0.0);
}

TEST(MacroAccounting, StandardWriteIsChargedAndStored) {
  ImcMacro m{MacroConfig{}};
  BitVector data(128);
  data.fill(true);
  m.write_row(11, data);
  EXPECT_EQ(m.peek_row(11), data);
  EXPECT_EQ(m.last_op().cycles, 1u);
  EXPECT_GT(m.component_energy(Component::WriteBackFull).si(), 0.0);
}

TEST(MacroAccounting, StandardAccessesCheaperThanCompute) {
  // A normal read costs less than a dual-WL compute (one WL, no boost race,
  // no FA evaluation) -- the "memory performance preserved" framing.
  ImcMacro m{MacroConfig{}};
  m.read_row(0);
  const double read = m.last_op().op_energy.si();
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_LT(read, m.last_op().op_energy.si());
}

}  // namespace
}  // namespace bpim::macro
