// Per-component energy breakdown and charged standard SRAM accesses, plus
// the conservation law of the unified execution model: program execution is
// priced instruction-by-instruction through macro::CostModel, and those
// totals must equal the legacy cycle/energy ledger EXACTLY -- integer
// cycles, bitwise-identical energy doubles.

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "macro/cost_model.hpp"
#include "macro/imc_macro.hpp"
#include "macro/program.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;
using energy::Component;

constexpr std::array<Component, 8> kAllComponents{
    Component::DualWlComputeMain, Component::DualWlComputeNear, Component::SingleWlRead,
    Component::FaLogic,           Component::Inverter,          Component::WriteBackNear,
    Component::WriteBackFull,     Component::FlipFlop};

double breakdown_sum(const ImcMacro& m) {
  double s = 0.0;
  for (const auto c : kAllComponents) s += m.component_energy(c).si();
  return s;
}

TEST(MacroAccounting, ComponentsSumToTotalAcrossMixedOps) {
  ImcMacro m{MacroConfig{}};
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  m.sub_rows(RowRef::main(2), RowRef::main(3), 8);
  m.mult_rows(RowRef::main(4), RowRef::main(5), 4);
  m.unary_row(Op::Shift, RowRef::main(6), RowRef::dummy(0), 8);
  EXPECT_NEAR(breakdown_sum(m), m.total_energy().si(), 1e-22);
}

TEST(MacroAccounting, AddTouchesOnlyComputeAndFa) {
  ImcMacro m{MacroConfig{}};
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_GT(m.component_energy(Component::DualWlComputeMain).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::FaLogic).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::WriteBackNear).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::WriteBackFull).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::SingleWlRead).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.component_energy(Component::FlipFlop).si(), 0.0);
}

TEST(MacroAccounting, MultUsesNearComputeAndFlipFlops) {
  ImcMacro m{MacroConfig{}};
  m.mult_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_GT(m.component_energy(Component::DualWlComputeNear).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::FlipFlop).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::WriteBackNear).si(), 0.0);
  EXPECT_GT(m.component_energy(Component::SingleWlRead).si(), 0.0);  // B load + A copy
  EXPECT_DOUBLE_EQ(m.component_energy(Component::DualWlComputeMain).si(), 0.0);
}

TEST(MacroAccounting, ResetClearsBreakdown) {
  ImcMacro m{MacroConfig{}};
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  m.reset_counters();
  EXPECT_DOUBLE_EQ(breakdown_sum(m), 0.0);
}

TEST(MacroAccounting, ProgramTotalsConserveLedgerTotalsExactly) {
  // One instruction of every kind; the instruction-stream account returned
  // by run() must equal the executing macro's ledger: cycles as integers,
  // energy bitwise (the CostModel replays the exact charge fold).
  ImcMacro m{MacroConfig{}};
  MacroController ctl(m, VerifyMode::VerifyFirst);
  Program p;
  p.add(RowRef::main(0), RowRef::main(1), 8);
  p.sub(RowRef::main(2), RowRef::main(3), 8);
  p.mult(RowRef::main(4), RowRef::main(5), 4);
  p.add_shift(RowRef::main(6), RowRef::main(7), 8, RowRef::dummy(ImcMacro::kDummyAccum));
  p.unary(Op::Not, RowRef::main(8), RowRef::dummy(ImcMacro::kDummyOperand), 8);
  p.unary(Op::Shift, RowRef::main(9), RowRef::dummy(ImcMacro::kDummyOperand), 8);
  p.logic(periph::LogicFn::Xor, RowRef::main(10), RowRef::main(11));
  const ProgramStats stats = ctl.run(p);
  EXPECT_EQ(stats.instructions, 7u);
  EXPECT_EQ(stats.cycles, m.total_cycles());
  EXPECT_EQ(stats.energy.si(), m.total_energy().si());  // bitwise, not NEAR
  EXPECT_EQ(stats.fused_cycles_saved, 0u);

  // The static program_cost agrees with the executed account in full.
  const CostModel cost(m.config());
  const ProgramStats priced = cost.program_cost(p);
  EXPECT_EQ(priced.instructions, stats.instructions);
  EXPECT_EQ(priced.cycles, stats.cycles);
  EXPECT_EQ(priced.energy.si(), stats.energy.si());
  EXPECT_EQ(priced.elapsed.si(), stats.elapsed.si());
}

TEST(MacroAccounting, FusedChainTotalsConserveLedgerTotals) {
  // The chained-MAC discounts change both cycles and energy (skipped D1
  // staging); the per-instruction pricing must track the executed datapath
  // through every discount combination.
  ImcMacro m{MacroConfig{}};
  MacroController ctl(m, VerifyMode::VerifyFirst);
  Program p;
  p.mult(RowRef::main(0), RowRef::main(1), 8);  // full price (N + 2)
  p.mult(RowRef::main(0), RowRef::main(3), 8);  // pipelined + D1-staged (-2)
  p.mult(RowRef::main(4), RowRef::main(5), 8);  // pipelined only (-1)
  const ProgramStats stats = ctl.run(p, nullptr, /*fuse_mac_chains=*/true);
  EXPECT_EQ(stats.cycles, m.total_cycles());
  EXPECT_EQ(stats.energy.si(), m.total_energy().si());
  EXPECT_EQ(stats.fused_cycles_saved, 3u);
  EXPECT_EQ(stats.cycles, 3u * 10u - 3u);

  const CostModel cost(m.config());
  const ProgramStats priced = cost.program_cost(p, /*fuse_mac_chains=*/true);
  EXPECT_EQ(priced.cycles, stats.cycles);
  EXPECT_EQ(priced.fused_cycles_saved, stats.fused_cycles_saved);
  EXPECT_EQ(priced.energy.si(), stats.energy.si());
}

TEST(MacroAccounting, StandardReadIsChargedAndCorrect) {
  ImcMacro m{MacroConfig{}};
  BitVector data(128, 0xDEADBEEFull);
  m.poke_row(9, data);
  const BitVector out = m.read_row(9);
  EXPECT_EQ(out, data);
  EXPECT_EQ(m.last_op().cycles, 1u);
  EXPECT_GT(m.component_energy(Component::SingleWlRead).si(), 0.0);
}

TEST(MacroAccounting, StandardWriteIsChargedAndStored) {
  ImcMacro m{MacroConfig{}};
  BitVector data(128);
  data.fill(true);
  m.write_row(11, data);
  EXPECT_EQ(m.peek_row(11), data);
  EXPECT_EQ(m.last_op().cycles, 1u);
  EXPECT_GT(m.component_energy(Component::WriteBackFull).si(), 0.0);
}

TEST(MacroAccounting, StandardAccessesCheaperThanCompute) {
  // A normal read costs less than a dual-WL compute (one WL, no boost race,
  // no FA evaluation) -- the "memory performance preserved" framing.
  ImcMacro m{MacroConfig{}};
  m.read_row(0);
  const double read = m.last_op().op_energy.si();
  m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_LT(read, m.last_op().op_energy.si());
}

}  // namespace
}  // namespace bpim::macro
