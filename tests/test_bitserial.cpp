// The bit-serial baseline ([2]-style): functional correctness and the cycle
// algebra the Fig 9 comparison rests on.

#include <gtest/gtest.h>

#include "baseline/bitserial.hpp"
#include "common/rng.hpp"

namespace bpim::baseline {
namespace {

TEST(BitSerial, DefaultsMatchReferenceDesign) {
  const BitSerialMacro m;
  EXPECT_EQ(m.config().cols, 256u);   // [2]: 128 x 256 array
  EXPECT_EQ(m.alus(), 64u);           // 4:1 interleaved column ALUs
}

TEST(BitSerial, TransposedStorageRoundTrip) {
  BitSerialMacro m;
  m.poke_element(3, 8, 8, 0xA5);
  EXPECT_EQ(m.peek_element(3, 8, 8), 0xA5u);
  EXPECT_EQ(m.peek_element(2, 8, 8), 0u);
  EXPECT_THROW(m.poke_element(3, 125, 8, 1), std::invalid_argument);
  EXPECT_THROW(m.poke_element(64, 0, 8, 1), std::invalid_argument);
}

TEST(BitSerial, CycleFormulas) {
  EXPECT_EQ(BitSerialMacro::logic_cycles(8), 8u);
  EXPECT_EQ(BitSerialMacro::add_cycles(8), 9u);     // N+1
  EXPECT_EQ(BitSerialMacro::sub_cycles(8), 10u);    // N+2
  EXPECT_EQ(BitSerialMacro::mult_cycles(8), 80u);   // N*(N+2) ~ the N^2 cost
}

TEST(BitSerial, AddVectorAgainstReference) {
  BitSerialMacro m;
  bpim::Rng rng(5);
  const std::size_t elems = 64;
  std::vector<std::uint64_t> a(elems), b(elems);
  for (std::size_t e = 0; e < elems; ++e) {
    a[e] = rng.next_u64() & 0xFF;
    b[e] = rng.next_u64() & 0xFF;
    m.poke_element(e, 0, 8, a[e]);
    m.poke_element(e, 8, 8, b[e]);
  }
  m.add(0, 8, 16, 8, elems);
  EXPECT_EQ(m.total_cycles(), 9u);
  for (std::size_t e = 0; e < elems; ++e)
    EXPECT_EQ(m.peek_element(e, 16, 8), (a[e] + b[e]) & 0xFF) << e;
}

TEST(BitSerial, SubVectorAgainstReference) {
  BitSerialMacro m;
  bpim::Rng rng(6);
  for (std::size_t e = 0; e < 32; ++e) {
    const std::uint64_t a = rng.next_u64() & 0xFF, b = rng.next_u64() & 0xFF;
    m.poke_element(e, 0, 8, a);
    m.poke_element(e, 8, 8, b);
    m.sub(0, 8, 16, 8, e + 1);
    EXPECT_EQ(m.peek_element(e, 16, 8), (a - b) & 0xFF);
  }
}

TEST(BitSerial, MultVectorAgainstReference) {
  BitSerialMacro m;
  bpim::Rng rng(7);
  const std::size_t elems = 48;
  std::vector<std::uint64_t> a(elems), b(elems);
  for (std::size_t e = 0; e < elems; ++e) {
    a[e] = rng.next_u64() & 0xFF;
    b[e] = rng.next_u64() & 0xFF;
    m.poke_element(e, 0, 8, a[e]);
    m.poke_element(e, 8, 8, b[e]);
  }
  m.mult(0, 8, 16, 8, elems);
  EXPECT_EQ(m.total_cycles(), 80u);
  for (std::size_t e = 0; e < elems; ++e)
    EXPECT_EQ(m.peek_element(e, 16, 16), a[e] * b[e]) << e;
}

TEST(BitSerial, LogicFunctions) {
  BitSerialMacro m;
  m.poke_element(0, 0, 8, 0b1100);
  m.poke_element(0, 8, 8, 0b1010);
  m.logic(SerialLogicFn::And, 0, 8, 16, 8, 1);
  EXPECT_EQ(m.peek_element(0, 16, 8), 0b1000u);
  m.logic(SerialLogicFn::Or, 0, 8, 16, 8, 1);
  EXPECT_EQ(m.peek_element(0, 16, 8), 0b1110u);
  m.logic(SerialLogicFn::Xor, 0, 8, 16, 8, 1);
  EXPECT_EQ(m.peek_element(0, 16, 8), 0b0110u);
}

TEST(BitSerial, MultNeedsRoomForProduct) {
  BitSerialMacro m;
  EXPECT_THROW(m.mult(0, 8, 120, 8, 1), std::invalid_argument);  // 120+16 > 128
}

TEST(BitSerial, EnergyCalibratedToPublishedTopsPerWatt) {
  // [2] Table: ADD 5.27 TOPS/W and MULT 0.56 TOPS/W at 0.6 V.
  const BitSerialMacro m;
  const double add_tops =
      1e-12 / m.op_energy(BitSerialMacro::add_cycles(8), Volt(0.6)).si();
  const double mult_tops =
      1e-12 / m.op_energy(BitSerialMacro::mult_cycles(8), Volt(0.6)).si();
  EXPECT_NEAR(add_tops, 5.27, 0.07 * 5.27);
  EXPECT_NEAR(mult_tops, 0.56, 0.10 * 0.56);
}

TEST(BitSerial, ChargesPerElementAndCycle) {
  BitSerialMacro m;
  m.add(0, 8, 16, 8, 10);
  const double e10 = m.total_energy().si();
  m.reset_counters();
  m.add(0, 8, 16, 8, 20);
  EXPECT_NEAR(m.total_energy().si() / e10, 2.0, 1e-9);
}

TEST(BitSerial, ParallelismCappedByAlus) {
  BitSerialMacro m;
  EXPECT_THROW(m.add(0, 8, 16, 8, 65), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::baseline
