// Monte-Carlo drivers: determinism, convergence, failure-rate bounds.

#include <gtest/gtest.h>

#include "circuit/montecarlo.hpp"

namespace bpim::circuit {
namespace {

TEST(MonteCarlo, MetricDistributionConverges) {
  const auto s = monte_carlo_metric([](Rng& r) { return r.normal(5.0, 1.0); }, 50000, 11);
  EXPECT_EQ(s.count(), 50000u);
  EXPECT_NEAR(s.mean(), 5.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(MonteCarlo, MetricIsDeterministicPerSeed) {
  const auto a = monte_carlo_metric([](Rng& r) { return r.uniform(); }, 100, 7);
  const auto b = monte_carlo_metric([](Rng& r) { return r.uniform(); }, 100, 7);
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(MonteCarlo, FailureRateMatchesProbability) {
  const auto r =
      monte_carlo_failure([](Rng& rng) { return rng.uniform() < 0.01; }, 200000, 13);
  EXPECT_EQ(r.trials, 200000u);
  EXPECT_NEAR(r.rate(), 0.01, 0.002);
}

TEST(MonteCarlo, ZeroFailuresUsesRuleOfThree) {
  const auto r = monte_carlo_failure([](Rng&) { return false; }, 1000, 17);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
  EXPECT_NEAR(r.rate_upper95(), 3.0 / 1000.0, 1e-12);
}

TEST(MonteCarlo, UpperBoundCoversTrueRate) {
  const auto r =
      monte_carlo_failure([](Rng& rng) { return rng.uniform() < 0.005; }, 100000, 19);
  EXPECT_GT(r.rate_upper95(), 0.005 * 0.8);
}

TEST(MonteCarlo, EmptyTrialsSafe) {
  FailureRateResult r;
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.rate_upper95(), 1.0);
}

}  // namespace
}  // namespace bpim::circuit
