// ISA metadata: Table 1 cycle counts and classification.

#include <gtest/gtest.h>

#include "macro/isa.hpp"

namespace bpim::macro {
namespace {

TEST(Isa, Table1CycleCounts) {
  // Logic / NOT / Shift / ADD / ADD-Shift: 1 cycle; SUB: 2; MULT: N+2.
  for (const Op op : {Op::Nand, Op::And, Op::Nor, Op::Or, Op::Xnor, Op::Xor, Op::Not,
                      Op::Shift, Op::Copy, Op::Add, Op::AddShift})
    EXPECT_EQ(op_cycles(op, 8), 1u) << to_string(op);
  EXPECT_EQ(op_cycles(Op::Sub, 8), 2u);
  EXPECT_EQ(op_cycles(Op::Mult, 2), 4u);
  EXPECT_EQ(op_cycles(Op::Mult, 4), 6u);
  EXPECT_EQ(op_cycles(Op::Mult, 8), 10u);
  EXPECT_EQ(op_cycles(Op::Mult, 16), 18u);
}

TEST(Isa, DualVsSingleWl) {
  EXPECT_TRUE(is_dual_wl(Op::Add));
  EXPECT_TRUE(is_dual_wl(Op::Xor));
  EXPECT_TRUE(is_dual_wl(Op::Mult));
  EXPECT_FALSE(is_dual_wl(Op::Not));
  EXPECT_FALSE(is_dual_wl(Op::Shift));
  EXPECT_FALSE(is_dual_wl(Op::Copy));
}

TEST(Isa, PrecisionSet) {
  // Paper: 2/4/8-bit modes, extensible to 16/32 by the same method.
  for (const unsigned b : {2u, 4u, 8u, 16u, 32u}) EXPECT_TRUE(is_supported_precision(b));
  for (const unsigned b : {1u, 3u, 5u, 7u, 12u, 64u}) EXPECT_FALSE(is_supported_precision(b));
}

TEST(Isa, Names) {
  EXPECT_STREQ(to_string(Op::AddShift), "ADD-Shift");
  EXPECT_STREQ(to_string(Op::Mult), "MULT");
  EXPECT_STREQ(to_string(WlScheme::ShortPulseBoost), "Short WL + BL Boost");
}

TEST(Isa, CycleCountRejectsZeroBits) {
  EXPECT_THROW((void)op_cycles(Op::Mult, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::macro
