// Cross-module integration: the proposed macro vs the bit-serial baseline
// (the Fig 9 mechanics), end-to-end consistency of results and accounting.

#include <gtest/gtest.h>

#include "app/vector_engine.hpp"
#include "baseline/bitserial.hpp"
#include "common/rng.hpp"
#include "macro/imc_macro.hpp"

namespace bpim {
namespace {

using array::RowRef;

TEST(Integration, ProposedAndBaselineAgreeOnArithmetic) {
  // Same vector workload through both architectures: identical results.
  Rng rng(31);
  const std::size_t n = 48;
  std::vector<std::uint64_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.next_u64() & 0xFF;
    b[i] = rng.next_u64() & 0xFF;
  }

  macro::MemoryConfig mc;
  mc.banks = 1;
  mc.macros_per_bank = 1;
  macro::ImcMemory mem(mc);
  app::VectorEngine eng(mem, 8);
  const auto sum_p = eng.add(a, b);
  const auto prod_p = eng.mult(a, b);

  baseline::BitSerialMacro serial;
  for (std::size_t i = 0; i < n; ++i) {
    serial.poke_element(i, 0, 8, a[i]);
    serial.poke_element(i, 8, 8, b[i]);
  }
  serial.add(0, 8, 16, 8, n);
  serial.mult(0, 8, 32, 8, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sum_p[i], serial.peek_element(i, 16, 8));
    EXPECT_EQ(prod_p[i], serial.peek_element(i, 32, 16));
  }
}

TEST(Integration, BitParallelWinsCyclesPerOpAtWideRows) {
  // The Fig 9 mechanism: at 128-bit rows and 8-bit ADD, the proposed macro
  // retires 16 word-ops per cycle; the baseline needs 9 cycles for 64.
  macro::MacroConfig cfg;
  macro::ImcMacro prop(cfg);
  prop.add_rows(RowRef::main(0), RowRef::main(1), 8);
  const double prop_cpo =
      static_cast<double>(prop.last_op().cycles) / static_cast<double>(prop.words_per_row(8));

  baseline::BitSerialMacro serial;
  const double base_cpo = static_cast<double>(baseline::BitSerialMacro::add_cycles(8)) /
                          static_cast<double>(serial.alus());
  EXPECT_LT(prop_cpo, base_cpo);  // 0.0625 vs 0.1406
}

TEST(Integration, MultCrossoverDependsOnRowWidth) {
  // 8-bit MULT: proposed cycles/op = (N+2) / (cols/2N). Narrow rows lose to
  // the baseline's 64 ALUs; wide rows win -- the Fig 9 crossover.
  auto prop_cpo = [](std::size_t cols) {
    macro::MacroConfig cfg;
    cfg.geometry.cols = cols;
    macro::ImcMacro m(cfg);
    m.mult_rows(RowRef::main(0), RowRef::main(1), 8);
    return static_cast<double>(m.last_op().cycles) /
           static_cast<double>(m.mult_units_per_row(8));
  };
  const double base_cpo = static_cast<double>(baseline::BitSerialMacro::mult_cycles(8)) / 64.0;
  EXPECT_GT(prop_cpo(128), base_cpo * 0.9);   // near/above crossover at 128
  EXPECT_LT(prop_cpo(512), base_cpo * 0.5);   // clearly ahead at 512
  EXPECT_LT(prop_cpo(1024), prop_cpo(512));   // keeps improving with BL count
}

TEST(Integration, SubResultsStableUnderRepeatedDummyReuse) {
  // SUB reuses the dummy operand row; back-to-back SUBs must not interfere.
  macro::ImcMacro m{macro::MacroConfig{}};
  Rng rng(33);
  for (int iter = 0; iter < 20; ++iter) {
    const std::uint64_t a = rng.next_u64() & 0xFF, b = rng.next_u64() & 0xFF;
    m.poke_word(0, 3, 8, a);
    m.poke_word(1, 3, 8, b);
    const BitVector d = m.sub_rows(RowRef::main(0), RowRef::main(1), 8);
    std::uint64_t got = 0;
    for (unsigned i = 0; i < 8; ++i)
      got |= static_cast<std::uint64_t>(d.get(3 * 8 + i)) << i;
    EXPECT_EQ(got, (a - b) & 0xFF);
  }
}

TEST(Integration, MultDoesNotClobberMainArray) {
  macro::ImcMacro m{macro::MacroConfig{}};
  Rng rng(34);
  BitVector r0(128), r1(128), r5(128);
  r0.randomize(rng);
  r1.randomize(rng);
  r5.randomize(rng);
  m.poke_row(0, r0);
  m.poke_row(1, r1);
  m.poke_row(5, r5);
  m.mult_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_EQ(m.peek_row(0), r0);  // operands untouched (dummy rows did the work)
  EXPECT_EQ(m.peek_row(1), r1);
  EXPECT_EQ(m.peek_row(5), r5);
}

TEST(Integration, EnergyPerOpIndependentOfBatching) {
  // Vector-engine energy for V elements = V * per-word closed form.
  macro::MemoryConfig mc;
  mc.banks = 1;
  mc.macros_per_bank = 4;
  macro::ImcMemory mem(mc);
  app::VectorEngine eng(mem, 8);
  const auto a = std::vector<std::uint64_t>(256, 7);
  const auto b = std::vector<std::uint64_t>(256, 9);
  (void)eng.add(a, b);
  const double per_elem = in_fJ(eng.last_run().energy_per_element());
  const energy::EnergyModel ref;
  EXPECT_NEAR(per_elem, in_fJ(ref.add(8, Volt(0.9))), 1e-6);
}

TEST(Integration, ThroughputScalesWithMacroCount) {
  const auto run = [](std::size_t macros) {
    macro::MemoryConfig mc;
    mc.banks = 1;
    mc.macros_per_bank = macros;
    macro::ImcMemory mem(mc);
    app::VectorEngine eng(mem, 8);
    const std::vector<std::uint64_t> a(1024, 1), b(1024, 2);
    (void)eng.add(a, b);
    return eng.last_run().elapsed_cycles;
  };
  EXPECT_EQ(run(1), 4u * run(4));  // 4x macros -> 4x fewer lock-step layers
}

}  // namespace
}  // namespace bpim
