// Component energy model: prices, closed forms, scaling.

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace bpim::energy {
namespace {

using namespace bpim::literals;

TEST(EnergyModel, VoltageScaleIsQuadratic) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.voltage_scale(0.9_V), 1.0);
  EXPECT_NEAR(m.voltage_scale(0.6_V), (0.6 / 0.9) * (0.6 / 0.9), 1e-12);
  EXPECT_NEAR(m.voltage_scale(1.1_V), (1.1 / 0.9) * (1.1 / 0.9), 1e-12);
  EXPECT_THROW((void)m.voltage_scale(Volt(0.0)), std::invalid_argument);
}

TEST(EnergyModel, PricesPositiveAndOrdered) {
  const EnergyModel m;
  const auto p = [&](Component c) { return in_fJ(m.price(c, 0.9_V)); };
  EXPECT_GT(p(Component::DualWlComputeMain), p(Component::DualWlComputeNear));
  EXPECT_GT(p(Component::WriteBackFull), p(Component::WriteBackNear));
  EXPECT_GT(p(Component::SingleWlRead), 0.0);
  EXPECT_GT(p(Component::FaLogic), 0.0);
  EXPECT_GT(p(Component::FlipFlop), 0.0);
  EXPECT_GT(p(Component::Inverter), 0.0);
}

TEST(EnergyModel, AddIsLinearInBits) {
  const EnergyModel m;
  const double e2 = in_fJ(m.add(2, 0.9_V));
  const double e4 = in_fJ(m.add(4, 0.9_V));
  const double e8 = in_fJ(m.add(8, 0.9_V));
  EXPECT_NEAR(e4, 2.0 * e2, 1e-9);
  EXPECT_NEAR(e8, 4.0 * e2, 1e-9);
}

TEST(EnergyModel, AddEqualsLogicOpCost) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.add(8, 0.9_V).si(), m.logic_op(8, 0.9_V).si());
}

TEST(EnergyModel, SubIsNotPlusAdd) {
  const EnergyModel m;
  for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
    const double sub = m.sub(8, 0.9_V, sep).si();
    const double parts =
        m.single_wl_writeback(8, 0.9_V, sep).si() + m.add(8, 0.9_V).si();
    EXPECT_DOUBLE_EQ(sub, parts);
  }
}

TEST(EnergyModel, SeparatorSavesOnSubAndMult) {
  const EnergyModel m;
  for (const unsigned bits : {2u, 4u, 8u}) {
    EXPECT_LT(m.sub(bits, 0.9_V, SeparatorMode::Enabled).si(),
              m.sub(bits, 0.9_V, SeparatorMode::Disabled).si());
    EXPECT_LT(m.mult(bits, 0.9_V, SeparatorMode::Enabled).si(),
              m.mult(bits, 0.9_V, SeparatorMode::Disabled).si());
  }
}

TEST(EnergyModel, MultGrowsSuperlinearly) {
  // N+2 cycles on 2N-bit units: the per-op energy is ~quadratic in N.
  const EnergyModel m;
  const double e2 = m.mult(2, 0.9_V, SeparatorMode::Enabled).si();
  const double e4 = m.mult(4, 0.9_V, SeparatorMode::Enabled).si();
  const double e8 = m.mult(8, 0.9_V, SeparatorMode::Enabled).si();
  EXPECT_GT(e4 / e2, 2.5);
  EXPECT_GT(e8 / e4, 3.0);
}

TEST(EnergyModel, TopsPerWattInverse) {
  const EnergyModel m;
  EXPECT_NEAR(m.tops_per_watt(Joule(100e-15)), 10.0, 1e-9);
  EXPECT_THROW((void)m.tops_per_watt(Joule(0.0)), std::invalid_argument);
}

TEST(EnergyModel, EnergyDropsQuadraticallyWithSupply) {
  const EnergyModel m;
  const double hi = m.add(8, 0.9_V).si();
  const double lo = m.add(8, 0.6_V).si();
  EXPECT_NEAR(lo / hi, 4.0 / 9.0, 1e-9);
}

}  // namespace
}  // namespace bpim::energy
