// Waveforms and the fixed-step integrator, validated against analytic RC.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.hpp"

namespace bpim::circuit {
namespace {

using namespace bpim::literals;

TEST(Waveform, EmptyIsZero) {
  Waveform w;
  EXPECT_DOUBLE_EQ(w.at(1.0_ns).si(), 0.0);
}

TEST(Waveform, ConstantHoldsLevel) {
  const Waveform w = Waveform::constant(0.55_V);
  EXPECT_DOUBLE_EQ(w.at(0.0_ns).si(), 0.55);
  EXPECT_DOUBLE_EQ(w.at(5.0_ns).si(), 0.55);
}

TEST(Waveform, PulseShape) {
  const Waveform w = Waveform::pulse(10.0_ps, 140.0_ps, 0.9_V, 20.0_ps, 25.0_ps);
  EXPECT_DOUBLE_EQ(w.at(0.0_ps).si(), 0.0);
  EXPECT_DOUBLE_EQ(w.at(10.0_ps).si(), 0.0);
  EXPECT_NEAR(w.at(20.0_ps).si(), 0.45, 1e-9);   // mid-rise
  EXPECT_DOUBLE_EQ(w.at(30.0_ps).si(), 0.9);     // plateau start
  EXPECT_DOUBLE_EQ(w.at(170.0_ps).si(), 0.9);    // plateau end
  EXPECT_NEAR(w.at(182.5_ps).si(), 0.45, 1e-9);  // mid-fall
  EXPECT_DOUBLE_EQ(w.at(300.0_ps).si(), 0.0);
}

TEST(Waveform, RejectsUnorderedBreakpoints) {
  Waveform w;
  w.add_point(1.0_ns, 0.9_V);
  EXPECT_THROW(w.add_point(0.5_ns, 0.0_V), std::invalid_argument);
}

TEST(Integrator, MatchesAnalyticRcDischarge) {
  // dv/dt = -v/RC with RC = 100 ps, v0 = 1 V; v(t) = exp(-t/RC).
  constexpr double rc = 100e-12;
  NodeState<1> v{1.0};
  integrate<1>(
      [&](double, const NodeState<1>& s, NodeState<1>& d) { d[0] = -s[0] / rc; }, v,
      Second(200e-12), Second(0.1e-12), [](double, const NodeState<1>&) {});
  EXPECT_NEAR(v[0], std::exp(-2.0), 1e-4);
}

TEST(Integrator, ThresholdCrossingInterpolates) {
  constexpr double rc = 100e-12;
  const auto res = integrate_until_below<1>(
      [&](double, const NodeState<1>& s, NodeState<1>& d) { d[0] = -s[0] / rc; },
      NodeState<1>{1.0}, 0, Volt(std::exp(-1.0)), Second(500e-12), Second(0.5e-12));
  ASSERT_TRUE(res.crossed);
  EXPECT_NEAR(res.time.si(), 100e-12, 1e-12);  // crosses 1/e at t = RC
}

TEST(Integrator, ReportsNoCrossingWhenAboveThreshold) {
  const auto res = integrate_until_below<1>(
      [&](double, const NodeState<1>&, NodeState<1>& d) { d[0] = 0.0; }, NodeState<1>{1.0}, 0,
      0.5_V, Second(1e-9), Second(1e-12));
  EXPECT_FALSE(res.crossed);
}

TEST(Integrator, TwoNodeCoupling) {
  // Node 1 integrates node 0's constant: v1(t) = k*t.
  NodeState<2> v{2.0, 0.0};
  integrate<2>(
      [&](double, const NodeState<2>& s, NodeState<2>& d) {
        d[0] = 0.0;
        d[1] = s[0];
      },
      v, Second(1e-9), Second(1e-12), [](double, const NodeState<2>&) {});
  EXPECT_NEAR(v[1], 2.0e-9, 1e-13);
}

TEST(Integrator, WatchIndexValidated) {
  auto f = [](double, const NodeState<1>&, NodeState<1>& d) { d[0] = 0.0; };
  EXPECT_THROW(
      integrate_until_below<1>(f, NodeState<1>{1.0}, 3, 0.5_V, Second(1e-9), Second(1e-12)),
      std::invalid_argument);
}

}  // namespace
}  // namespace bpim::circuit
