// Multi-layer perceptron with per-layer precision.

#include <gtest/gtest.h>

#include <cmath>

#include "app/mlp.hpp"
#include "common/rng.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

namespace bpim::app {
namespace {

std::vector<std::vector<double>> rand_w(std::size_t out, std::size_t in, std::uint64_t seed) {
  bpim::Rng rng(seed);
  std::vector<std::vector<double>> w(out, std::vector<double>(in));
  for (auto& row : w)
    for (auto& x : row) x = rng.uniform(0.0, 1.0);
  return w;
}

TEST(Mlp, ShapeValidation) {
  EXPECT_THROW(Mlp({}), std::invalid_argument);
  // 8 -> 4 followed by a layer expecting 5 inputs: mismatch.
  EXPECT_THROW(Mlp({{rand_w(4, 8, 1), 8}, {rand_w(2, 5, 2), 8}}), std::invalid_argument);
  const Mlp ok({{rand_w(4, 8, 1), 8}, {rand_w(2, 4, 2), 8}});
  EXPECT_EQ(ok.depth(), 2u);
  EXPECT_EQ(ok.in_features(), 8u);
  EXPECT_EQ(ok.out_features(), 2u);
}

TEST(Mlp, ImcMatchesReference) {
  macro::ImcMemory mem;
  Mlp net({{rand_w(12, 24, 3), 8}, {rand_w(6, 12, 4), 8}, {rand_w(3, 6, 5), 8}});
  bpim::Rng rng(6);
  std::vector<double> x(24);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  const auto y = net.forward(mem, x);
  const auto ref = net.forward_reference(x);
  ASSERT_EQ(y.size(), 3u);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-9 * std::max(1.0, ref[i]));
}

TEST(Mlp, PerLayerStatsSumToTotal) {
  macro::ImcMemory mem;
  Mlp net({{rand_w(8, 16, 7), 8}, {rand_w(4, 8, 8), 4}});
  bpim::Rng rng(9);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  (void)net.forward(mem, x);
  ASSERT_EQ(net.layer_stats().size(), 2u);
  std::uint64_t cycles = 0;
  double energy = 0.0;
  for (const auto& s : net.layer_stats()) {
    cycles += s.cycles;
    energy += s.energy.si();
  }
  EXPECT_EQ(cycles, net.last_stats().cycles);
  EXPECT_NEAR(energy, net.last_stats().energy.si(), 1e-20);
  EXPECT_EQ(net.last_stats().macs, 8u * 16u + 4u * 8u);
}

TEST(Mlp, PinnedRepeatedForwardBitIdentical) {
  // The residency contract end to end: N successive forward() calls with
  // pinned weights (mixed precision included) are bit-identical to
  // fresh-poke execution on every route, and cheaper in load cycles after
  // the materializing first pass.
  const std::vector<MlpLayerSpec> specs = {{rand_w(12, 24, 13), 8}, {rand_w(6, 12, 14), 4}};
  macro::ImcMemory fresh_mem;
  engine::ExecutionEngine fresh_eng(fresh_mem);
  Mlp fresh(specs);
  macro::ImcMemory pinned_mem;
  engine::ExecutionEngine pinned_eng(pinned_mem);
  Mlp pinned(specs, pinned_eng);
  EXPECT_TRUE(pinned.pinned());

  bpim::Rng rng(15);
  std::uint64_t first_load = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<double> x(24);
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    const auto want = fresh.forward(fresh_eng, x);
    const auto got = pinned.forward(pinned_eng, x);
    EXPECT_EQ(want, got) << "forward " << i;  // bit-identical doubles
    // Pinned layers run fused: identical values, fewer cycles (accounted
    // in fused_cycles_saved), never more energy.
    EXPECT_EQ(fresh.last_stats().cycles,
              pinned.last_stats().cycles + pinned.last_stats().fused_cycles_saved);
    EXPECT_GT(pinned.last_stats().fused_cycles_saved, 0u);
    EXPECT_LE(pinned.last_stats().energy.si(), fresh.last_stats().energy.si());
    if (i == 0) {
      first_load = pinned.last_stats().load_cycles;
    } else {
      EXPECT_LT(pinned.last_stats().load_cycles, first_load);
      EXPECT_GT(pinned.last_stats().load_cycles_saved, 0u);
    }
  }
  const engine::ResidencyStats rs = pinned_eng.residency_stats();
  EXPECT_EQ(rs.pinned, 12u + 6u);  // one handle per neuron
  EXPECT_EQ(rs.evictions, 0u);
}

TEST(Mlp, PinnedForwardThroughPoolServerBitIdentical) {
  const std::vector<MlpLayerSpec> specs = {{rand_w(8, 16, 17), 8}, {rand_w(4, 8, 18), 8}};
  macro::ImcMemory fresh_mem;
  engine::ExecutionEngine fresh_eng(fresh_mem);
  Mlp fresh(specs);

  serve::MemoryPoolConfig pcfg;
  pcfg.memories = 2;
  pcfg.threads_per_memory = 1;
  serve::MemoryPool pool(pcfg);
  serve::Server server(pool);
  Mlp pinned(specs, server);

  bpim::Rng rng(19);
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<double> x(16);
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    EXPECT_EQ(fresh.forward(fresh_eng, x), pinned.forward(server, x)) << "forward " << i;
  }
  server.stop();
  EXPECT_GT(server.stats().modeled_load_cycles_saved, 0u);
}

TEST(Mlp, PinnedEvictionUnderPressureStaysCorrect) {
  // A net whose pinned set exceeds row_pair_capacity(): every forward
  // churns the LRU set, yet outputs stay bit-identical to fresh-poke
  // execution and the safe WL scheme records no disturb flips.
  macro::MemoryConfig mcfg;
  mcfg.banks = 1;
  mcfg.macros_per_bank = 2;
  mcfg.macro.geometry.rows = 16;  // 8 row pairs per macro
  const std::vector<MlpLayerSpec> specs = {{rand_w(12, 16, 21), 8}, {rand_w(8, 12, 22), 8}};

  macro::ImcMemory fresh_mem(mcfg);
  engine::ExecutionEngine fresh_eng(fresh_mem);
  Mlp fresh(specs);
  macro::ImcMemory pinned_mem(mcfg);
  engine::ExecutionEngine pinned_eng(pinned_mem);
  Mlp pinned(specs, pinned_eng);

  const engine::ResidencyStats before = pinned_eng.residency_stats();
  ASSERT_GT(before.pinned_layers, pinned_eng.row_pair_capacity());

  bpim::Rng rng(23);
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<double> x(16);
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    EXPECT_EQ(fresh.forward(fresh_eng, x), pinned.forward(pinned_eng, x)) << "forward " << i;
  }
  const engine::ResidencyStats after = pinned_eng.residency_stats();
  EXPECT_GT(after.evictions, 0u);
  EXPECT_GT(after.materializations, after.pinned);  // re-loads happened
  EXPECT_LE(after.resident_layers, pinned_eng.row_pair_capacity());
  // Disturb accounting: LRU churn re-writes rows but never flips cells
  // under the proposed WL scheme.
  for (std::size_t m = 0; m < pinned_mem.macro_count(); ++m)
    EXPECT_EQ(pinned_mem.macro(m).disturb_flips(), 0u);
}

TEST(Mlp, MixedPrecisionCheaperThanUniformHigh) {
  macro::ImcMemory mem;
  const auto w1 = rand_w(16, 32, 10);
  const auto w2 = rand_w(8, 16, 11);
  Mlp uniform({{w1, 8}, {w2, 8}});
  Mlp mixed({{w1, 8}, {w2, 2}});
  bpim::Rng rng(12);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  (void)uniform.forward(mem, x);
  const double e_uniform = uniform.last_stats().energy.si();
  (void)mixed.forward(mem, x);
  EXPECT_LT(mixed.last_stats().energy.si(), e_uniform);
}

}  // namespace
}  // namespace bpim::app
