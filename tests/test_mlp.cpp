// Multi-layer perceptron with per-layer precision.

#include <gtest/gtest.h>

#include <cmath>

#include "app/mlp.hpp"
#include "common/rng.hpp"

namespace bpim::app {
namespace {

std::vector<std::vector<double>> rand_w(std::size_t out, std::size_t in, std::uint64_t seed) {
  bpim::Rng rng(seed);
  std::vector<std::vector<double>> w(out, std::vector<double>(in));
  for (auto& row : w)
    for (auto& x : row) x = rng.uniform(0.0, 1.0);
  return w;
}

TEST(Mlp, ShapeValidation) {
  EXPECT_THROW(Mlp({}), std::invalid_argument);
  // 8 -> 4 followed by a layer expecting 5 inputs: mismatch.
  EXPECT_THROW(Mlp({{rand_w(4, 8, 1), 8}, {rand_w(2, 5, 2), 8}}), std::invalid_argument);
  const Mlp ok({{rand_w(4, 8, 1), 8}, {rand_w(2, 4, 2), 8}});
  EXPECT_EQ(ok.depth(), 2u);
  EXPECT_EQ(ok.in_features(), 8u);
  EXPECT_EQ(ok.out_features(), 2u);
}

TEST(Mlp, ImcMatchesReference) {
  macro::ImcMemory mem;
  Mlp net({{rand_w(12, 24, 3), 8}, {rand_w(6, 12, 4), 8}, {rand_w(3, 6, 5), 8}});
  bpim::Rng rng(6);
  std::vector<double> x(24);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  const auto y = net.forward(mem, x);
  const auto ref = net.forward_reference(x);
  ASSERT_EQ(y.size(), 3u);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-9 * std::max(1.0, ref[i]));
}

TEST(Mlp, PerLayerStatsSumToTotal) {
  macro::ImcMemory mem;
  Mlp net({{rand_w(8, 16, 7), 8}, {rand_w(4, 8, 8), 4}});
  bpim::Rng rng(9);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  (void)net.forward(mem, x);
  ASSERT_EQ(net.layer_stats().size(), 2u);
  std::uint64_t cycles = 0;
  double energy = 0.0;
  for (const auto& s : net.layer_stats()) {
    cycles += s.cycles;
    energy += s.energy.si();
  }
  EXPECT_EQ(cycles, net.last_stats().cycles);
  EXPECT_NEAR(energy, net.last_stats().energy.si(), 1e-20);
  EXPECT_EQ(net.last_stats().macs, 8u * 16u + 4u * 8u);
}

TEST(Mlp, MixedPrecisionCheaperThanUniformHigh) {
  macro::ImcMemory mem;
  const auto w1 = rand_w(16, 32, 10);
  const auto w2 = rand_w(8, 16, 11);
  Mlp uniform({{w1, 8}, {w2, 8}});
  Mlp mixed({{w1, 8}, {w2, 2}});
  bpim::Rng rng(12);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  (void)uniform.forward(mem, x);
  const double e_uniform = uniform.last_stats().energy.si();
  (void)mixed.forward(mem, x);
  EXPECT_LT(mixed.last_stats().energy.si(), e_uniform);
}

}  // namespace
}  // namespace bpim::app
