// Unit-type arithmetic, literals, and the physics helpers.

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace bpim {
namespace {

using namespace bpim::literals;

TEST(Units, LiteralsProduceSiValues) {
  EXPECT_DOUBLE_EQ((1.0_V).si(), 1.0);
  EXPECT_DOUBLE_EQ((550.0_mV).si(), 0.55);
  EXPECT_DOUBLE_EQ((140.0_ps).si(), 140e-12);
  EXPECT_DOUBLE_EQ((1.5_ns).si(), 1.5e-9);
  EXPECT_DOUBLE_EQ((20.0_fF).si(), 20e-15);
  EXPECT_DOUBLE_EQ((34.35_fJ).si(), 34.35e-15);
  EXPECT_DOUBLE_EQ((2.25_GHz).si(), 2.25e9);
  EXPECT_DOUBLE_EQ((372.0_MHz).si(), 372e6);
}

TEST(Units, IntegerLiterals) {
  EXPECT_DOUBLE_EQ((1_V).si(), 1.0);
  EXPECT_DOUBLE_EQ((140_ps).si(), 140e-12);
  EXPECT_DOUBLE_EQ((60_fF).si(), 60e-15);
}

TEST(Units, ArithmeticAndComparison) {
  const Volt a = 0.9_V;
  const Volt b = 0.3_V;
  EXPECT_DOUBLE_EQ((a + b).si(), 1.2);
  EXPECT_DOUBLE_EQ((a - b).si(), 0.6);
  EXPECT_DOUBLE_EQ((a * 2.0).si(), 1.8);
  EXPECT_DOUBLE_EQ((a / 3.0).si(), 0.3);
  EXPECT_DOUBLE_EQ(a / b, 3.0);  // like-ratio is dimensionless
  EXPECT_LT(b, a);
  EXPECT_EQ(a, 0.9_V);
}

TEST(Units, CompoundAssignment) {
  Volt v = 0.5_V;
  v += 0.1_V;
  v -= 0.2_V;
  v *= 2.0;
  EXPECT_NEAR(v.si(), 0.8, 1e-12);
}

TEST(Units, SwitchingEnergyIsCV2) {
  // 20 fF swinging 0.9 V: 20e-15 * 0.81 = 16.2 fJ.
  EXPECT_NEAR(in_fJ(switching_energy(20.0_fF, 0.9_V)), 16.2, 1e-9);
}

TEST(Units, SlewRelations) {
  // 20 fF slewing 0.3 V at 20 uA takes 300 ps.
  EXPECT_NEAR(in_ps(slew_time(20.0_fF, 300.0_mV, 20.0_uA)), 300.0, 1e-9);
  EXPECT_NEAR(in_uA(slew_current(20.0_fF, 300.0_mV, 300.0_ps)), 20.0, 1e-9);
}

TEST(Units, FrequencyPeriodRoundTrip) {
  const Hertz f = frequency_of(444.4_ps);
  EXPECT_NEAR(in_GHz(f), 2.2503, 1e-3);
  EXPECT_NEAR(in_ps(period_of(f)), 444.4, 1e-9);
}

TEST(Units, PowerEnergyHelpers) {
  EXPECT_NEAR(power_from_energy(100.0_fJ, 1.0_ns).si(), 100e-6, 1e-12);
  EXPECT_NEAR(in_fJ(energy_from_power(Watt(100e-6), 1.0_ns)), 100.0, 1e-9);
}

TEST(Units, EngineeringAccessors) {
  EXPECT_DOUBLE_EQ(in_mV(0.55_V), 550.0);
  EXPECT_DOUBLE_EQ(in_ns(1500.0_ps), 1.5);
  EXPECT_DOUBLE_EQ(in_pJ(1500.0_fJ), 1.5);
  EXPECT_DOUBLE_EQ(in_MHz(2.25_GHz), 2250.0);
}

}  // namespace
}  // namespace bpim
