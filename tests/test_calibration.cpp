// Calibration against the paper's published numbers (Table 2, Table 3).

#include <gtest/gtest.h>

#include "energy/calibration.hpp"

namespace bpim::energy {
namespace {

TEST(Calibration, TargetsCoverAllFifteenEntries) {
  EXPECT_EQ(table2_targets().size(), 15u);
}

TEST(Calibration, Table2WithinTolerance) {
  const CalibrationReport r = check_table2(EnergyModel{});
  ASSERT_EQ(r.rows.size(), 15u);
  for (const auto& row : r.rows)
    EXPECT_LT(std::abs(row.rel_error), 0.06) << row.label << ": model " << row.model_fj
                                             << " fJ vs paper " << row.paper_fj << " fJ";
  EXPECT_LT(r.mean_abs_rel_error, 0.03);
}

TEST(Calibration, AddEntriesEssentiallyExact) {
  const CalibrationReport r = check_table2(EnergyModel{});
  for (const auto& row : r.rows)
    if (row.label.rfind("ADD", 0) == 0) {
      EXPECT_LT(std::abs(row.rel_error), 0.01) << row.label;
    }
}

TEST(Calibration, SubEntriesEssentiallyExact) {
  const CalibrationReport r = check_table2(EnergyModel{});
  for (const auto& row : r.rows)
    if (row.label.rfind("SUB", 0) == 0) {
      EXPECT_LT(std::abs(row.rel_error), 0.01) << row.label;
    }
}

TEST(Calibration, TopsPerWattAnchors) {
  // Table 3 at 0.6 V: ADD 8.09, MULT 0.68 TOPS/W (1 op = 8-bit word op).
  const EnergyModel m;
  EXPECT_NEAR(model_tops_add_06v(m), kPaperTopsPerWattAdd06V, 0.05 * kPaperTopsPerWattAdd06V);
  EXPECT_NEAR(model_tops_mult_06v(m), kPaperTopsPerWattMult06V,
              0.05 * kPaperTopsPerWattMult06V);
}

TEST(Calibration, ReportTracksWorstRow) {
  const CalibrationReport r = check_table2(EnergyModel{});
  double worst = 0.0;
  for (const auto& row : r.rows) worst = std::max(worst, std::abs(row.rel_error));
  EXPECT_DOUBLE_EQ(worst, r.max_abs_rel_error);
}

TEST(Calibration, DetectsMiscalibratedModel) {
  EnergyParams bad;
  bad.cmp_main_fj *= 2.0;
  const CalibrationReport r = check_table2(EnergyModel{bad});
  EXPECT_GT(r.max_abs_rel_error, 0.3);
}

}  // namespace
}  // namespace bpim::energy
