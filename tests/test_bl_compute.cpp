// Bit-line computation transients: the Fig 2 / Fig 7a physics.

#include <gtest/gtest.h>

#include "timing/bl_compute.hpp"

namespace bpim::timing {
namespace {

using namespace bpim::literals;
using circuit::Corner;
using circuit::OperatingPoint;

OperatingPoint nominal() { return OperatingPoint{0.9_V, 25.0, Corner::NN}; }

TEST(BlCompute, SchemeNames) {
  EXPECT_STREQ(to_string(BlScheme::Wlud), "WLUD");
  EXPECT_STREQ(to_string(BlScheme::ShortWlBoost), "Short-WL + BL Boost");
}

TEST(BlCompute, CapacitanceScalesWithRows) {
  BlComputeConfig cfg;
  cfg.rows = 128;
  const BlComputeModel m128(BlScheme::Wlud, cfg, nominal());
  cfg.rows = 256;
  const BlComputeModel m256(BlScheme::Wlud, cfg, nominal());
  EXPECT_GT(m256.bl_capacitance().si(), m128.bl_capacitance().si());
}

TEST(BlCompute, ProposedFasterThanWludNominal) {
  BlComputeConfig cfg;
  const double prop =
      BlComputeModel(BlScheme::ShortWlBoost, cfg, nominal()).nominal_delay().si();
  const double wlud = BlComputeModel(BlScheme::Wlud, cfg, nominal()).nominal_delay().si();
  EXPECT_LT(prop, 0.8e-9);   // sub-ns with the boost
  EXPECT_GT(wlud, 1.2e-9);   // WLUD pays the weak-access discharge
  EXPECT_LT(prop / wlud, 0.5);
}

TEST(BlCompute, WludDelayInPaperBallpark) {
  // Fig 2's WLUD distribution is centred around ~1.5-2.2 ns at 0.9 V.
  const double d = BlComputeModel(BlScheme::Wlud, BlComputeConfig{}, nominal())
                       .nominal_delay().si();
  EXPECT_GT(d, 1.3e-9);
  EXPECT_LT(d, 2.6e-9);
}

TEST(BlCompute, WorstCornerRatioMatchesPaper) {
  // Paper Fig 7a: proposed is ~0.22x the WLUD delay at the worst corner.
  double worst_ratio = 0.0;
  for (const auto c : circuit::kAllCorners) {
    const OperatingPoint op{0.9_V, 25.0, c};
    const double p =
        BlComputeModel(BlScheme::ShortWlBoost, BlComputeConfig{}, op).nominal_delay().si();
    const double w = BlComputeModel(BlScheme::Wlud, BlComputeConfig{}, op).nominal_delay().si();
    worst_ratio = std::max(worst_ratio, p / w);
  }
  EXPECT_GT(worst_ratio, 0.12);
  EXPECT_LT(worst_ratio, 0.35);
}

TEST(BlCompute, BoostCollapsesAfterPulse) {
  // With the booster disabled (WLUD path uses none), a short pulse alone
  // never develops a full swing: delay saturates at t_end.
  BlComputeConfig cfg;
  cfg.t_end = Second(4e-9);
  BlComputeModel prop(BlScheme::ShortWlBoost, cfg, nominal());
  const double with_boost = prop.nominal_delay().si();
  EXPECT_LT(with_boost, 1e-9);

  // Emulate "no boost" by making the booster devices vanishingly weak.
  BlComputeConfig no_boost = cfg;
  no_boost.w_p0_um = 1e-6;
  no_boost.w_n1_um = 1e-6;
  BlComputeModel crippled(BlScheme::ShortWlBoost, no_boost, nominal());
  EXPECT_DOUBLE_EQ(crippled.nominal_delay().si(), no_boost.t_end.si());
}

TEST(BlCompute, LongerPulseSpeedsWludStyleDischarge) {
  BlComputeConfig slow;
  slow.wl_pulse = Second(80e-12);
  BlComputeConfig fast;
  fast.wl_pulse = Second(240e-12);
  const double d_slow =
      BlComputeModel(BlScheme::ShortWlBoost, slow, nominal()).nominal_delay().si();
  const double d_fast =
      BlComputeModel(BlScheme::ShortWlBoost, fast, nominal()).nominal_delay().si();
  EXPECT_LT(d_fast, d_slow);  // more droop -> earlier boost trigger
}

TEST(BlCompute, DistributionShapesMatchFig2) {
  // Proposed: short-tail (small sigma/mean); WLUD: long right tail.
  BlComputeConfig cfg;
  const auto prop = bl_delay_distribution(BlScheme::ShortWlBoost, cfg, nominal(), 1500, 21);
  const auto wlud = bl_delay_distribution(BlScheme::Wlud, cfg, nominal(), 1500, 22);

  EXPECT_LT(prop.stddev() / prop.mean(), 0.30);
  EXPECT_GT(wlud.stddev() / wlud.mean(), 0.12);
  EXPECT_LT(prop.mean(), wlud.mean());

  // Right-tail skew: (p99 - p50) vs (p50 - p1) is strongly asymmetric for
  // WLUD (current collapses as overdrive -> 0) and mild for the boost.
  const double wlud_skew = (wlud.percentile(0.99) - wlud.percentile(0.5)) /
                           (wlud.percentile(0.5) - wlud.percentile(0.01));
  const double prop_skew = (prop.percentile(0.99) - prop.percentile(0.5)) /
                           (prop.percentile(0.5) - prop.percentile(0.01));
  EXPECT_GT(wlud_skew, 1.3);
  EXPECT_LT(prop_skew, wlud_skew);
}

TEST(BlCompute, MonteCarloDeterministicPerSeed) {
  BlComputeConfig cfg;
  const auto a = bl_delay_distribution(BlScheme::Wlud, cfg, nominal(), 50, 5);
  const auto b = bl_delay_distribution(BlScheme::Wlud, cfg, nominal(), 50, 5);
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(BlCompute, LowerSupplyIsSlower) {
  BlComputeConfig cfg;
  const OperatingPoint low{0.8_V, 25.0, Corner::NN};
  const double d09 =
      BlComputeModel(BlScheme::ShortWlBoost, cfg, nominal()).nominal_delay().si();
  const double d08 = BlComputeModel(BlScheme::ShortWlBoost, cfg, low).nominal_delay().si();
  EXPECT_GT(d08, d09);
}

TEST(BlCompute, RejectsEmptyBitline) {
  BlComputeConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(BlComputeModel(BlScheme::Wlud, cfg, nominal()), std::invalid_argument);
}

}  // namespace
}  // namespace bpim::timing
