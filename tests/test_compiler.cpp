// FusionCompiler: emitted programs are verifier-clean, residency-aware,
// and priced correctly on the chained-MAC path.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "macro/compiler.hpp"
#include "macro/program.hpp"
#include "macro/verifier.hpp"

namespace bpim::macro {
namespace {

using array::ArrayGeometry;
using array::RowRef;

TEST(FusionCompiler, MacForwardEmitsOneMultPerStepZeroDiagnostics) {
  const ArrayGeometry g{};
  FusionCompiler fc(g);
  MacForwardSpec spec;
  spec.bits = 8;
  // One activation row (0) against three weight rows -- the adjacency that
  // unlocks the chained-datapath discount.
  spec.steps = {{0, 10}, {0, 12}, {0, 14}};
  const Program p = fc.compile_mac_forward(spec);
  ASSERT_EQ(p.size(), 3u);
  for (const Instruction& i : p.instructions()) {
    EXPECT_EQ(i.op, Op::Mult);
    EXPECT_EQ(i.bits, 8u);
    EXPECT_FALSE(i.dest.has_value());
  }
  const VerifyReport rep = verify_program(p, g);
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.warnings, 0u);
}

TEST(FusionCompiler, FusedStaticCyclesDiscountsChainedMacs) {
  const ArrayGeometry g{};
  FusionCompiler fc(g);
  MacForwardSpec spec;
  spec.bits = 8;  // MULT = N + 2 = 10 cycles per Table 1
  spec.steps = {{0, 10}, {0, 12}, {2, 14}};
  const Program p = fc.compile_mac_forward(spec);
  // #0 full price; #1 pipelined (-1) and D1-staged (-1, same a_row); #2
  // pipelined only (new activation row re-stages D1).
  EXPECT_EQ(p.static_cycles(), 30u);
  EXPECT_EQ(FusionCompiler::fused_static_cycles(p), 10u + 8u + 9u);
}

TEST(FusionCompiler, MacForwardMayReadPinnedRowsButChainMayNotClobber) {
  const ArrayGeometry g{};
  // Rows [100, 120) pinned, the residency map's shape.
  const std::vector<PinnedRows> pinned{{100, 20}};
  FusionCompiler fc(g, pinned);

  // Reading pinned weight rows is the whole point: clean emission.
  MacForwardSpec fwd;
  fwd.bits = 8;
  fwd.steps = {{0, 104}, {0, 106}};
  EXPECT_NO_THROW((void)fc.compile_mac_forward(fwd));

  // An ADD-Shift chain retires into its own a_row; pointing that at a
  // pinned row must be rejected (ResidentClobber) with the disassembly.
  ChainSpec chain;
  chain.bits = 8;
  ChainLayerSpec layer;
  layer.a_row = 110;  // pinned -- the final write-back would corrupt it
  layer.b_row = 0;
  layer.links = {{ChainLinkKind::AddShift, 2}};
  chain.layers = {layer};
  try {
    (void)fc.compile_chain(chain);
    FAIL() << "expected compile_chain to reject the pinned-row write-back";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("resident-clobber"), std::string::npos) << e.what();
    // The rejection text is the annotated disassembly.
    EXPECT_NE(std::string(e.what()).find("ADD-Shift"), std::string::npos) << e.what();
  }
}

TEST(FusionCompiler, ChainEmissionShapesLinksAroundD2) {
  const ArrayGeometry g{};
  FusionCompiler fc(g);
  ChainSpec spec;
  spec.bits = 4;  // links at 8-bit
  ChainLayerSpec layer;
  layer.a_row = 0;
  layer.b_row = 1;
  layer.links = {{ChainLinkKind::Add, 2}, {ChainLinkKind::Add, 3}};
  spec.layers = {layer};
  const Program p = fc.compile_chain(spec);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.instructions()[0].op, Op::Mult);
  // Intermediate link accumulates back into D2; final link drives out.
  ASSERT_TRUE(p.instructions()[1].dest.has_value());
  EXPECT_EQ(p.instructions()[1].dest->kind, RowRef::Kind::Dummy);
  EXPECT_EQ(p.instructions()[1].bits, 8u);
  EXPECT_FALSE(p.instructions()[2].dest.has_value());
  const VerifyReport rep = verify_program(p, g);
  EXPECT_EQ(rep.errors, 0u);
  EXPECT_EQ(rep.warnings, 0u);
}

TEST(FusionCompiler, DumpNamesOpsRowsAndRoles) {
  const ArrayGeometry g{};
  FusionCompiler fc(g);
  MacForwardSpec spec;
  spec.bits = 8;
  spec.steps = {{0, 10}};
  const std::string text = fc.compile_mac_forward(spec).dump();
  EXPECT_NE(text.find("MULT"), std::string::npos) << text;
  EXPECT_NE(text.find("R0"), std::string::npos) << text;
  EXPECT_NE(text.find("R10"), std::string::npos) << text;
  EXPECT_NE(text.find("D2"), std::string::npos) << text;  // product role
}

TEST(FusionCompiler, RejectsDegenerateSpecs) {
  const ArrayGeometry g{};
  FusionCompiler fc(g);
  EXPECT_THROW((void)fc.compile_mac_forward({8, {}}), std::invalid_argument);
  EXPECT_THROW((void)fc.compile_mac_forward({8, {{5, 5}}}), std::invalid_argument);
  EXPECT_THROW((void)fc.compile_mac_forward({3, {{0, 1}}}), std::invalid_argument);
  ChainSpec no_links;
  no_links.bits = 8;
  no_links.layers = {{0, 1, {}}};
  EXPECT_THROW((void)fc.compile_chain(no_links), std::invalid_argument);
  ChainSpec wide;  // 32-bit head needs 64-bit links, which the ISA lacks
  wide.bits = 32;
  wide.layers = {{0, 1, {{ChainLinkKind::Add, 2}}}};
  EXPECT_THROW((void)fc.compile_chain(wide), std::invalid_argument);
}

TEST(FusionCompiler, FuzzedSpecsAlwaysEmitZeroDiagnosticPrograms) {
  // The tentpole's contract: whatever layout the engine asks for, the
  // emitted program must survive the residency-aware verifier with zero
  // diagnostics -- warnings included -- and execute under VerifyFirst.
  const ArrayGeometry g{};
  bpim::Rng rng(0xF05Ed);
  const unsigned precisions[] = {2, 4, 8, 16};
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned bits = precisions[rng.uniform_u64(4)];
    // Pinned band in the top half, like the residency allocator produces.
    const std::size_t pinned_rows = 2 * (1 + rng.uniform_u64(20));
    const std::size_t pinned_base = g.rows - pinned_rows;
    FusionCompiler fc(g, {{pinned_base, pinned_rows}});

    if (trial % 2 == 0) {
      MacForwardSpec spec;
      spec.bits = bits;
      const std::size_t layers = 1 + rng.uniform_u64(3);
      const std::size_t ops = 1 + rng.uniform_u64(6);
      for (std::size_t l = 0; l < layers; ++l)
        for (std::size_t j = 0; j < ops; ++j)
          spec.steps.push_back({2 * l, pinned_base + 2 * ((j + l) % (pinned_rows / 2))});
      const Program p = fc.compile_mac_forward(spec);
      const VerifyReport rep =
          verify_program(p, g, std::span<const PinnedRows>(fc.pinned()));
      EXPECT_EQ(rep.errors, 0u) << rep.annotate(p);
      EXPECT_EQ(rep.warnings, 0u) << rep.annotate(p);
      EXPECT_LE(FusionCompiler::fused_static_cycles(p), p.static_cycles());
    } else if (2 * bits <= 32) {
      ChainSpec spec;
      spec.bits = bits;
      const std::size_t links = 1 + rng.uniform_u64(3);
      const std::size_t pairs = (2 + links + 1) / 2;
      const std::size_t layers = 1 + rng.uniform_u64(3);
      for (std::size_t l = 0; l < layers; ++l) {
        ChainLayerSpec layer;
        layer.a_row = 2 * pairs * l;
        layer.b_row = layer.a_row + 1;
        for (std::size_t j = 0; j < links; ++j) {
          const bool last = j + 1 == links;
          const bool shift = last && rng.uniform_u64(2) == 0;
          layer.links.emplace_back(shift ? ChainLinkKind::AddShift : ChainLinkKind::Add,
                                   layer.a_row + 2 + j);
        }
        spec.layers.push_back(std::move(layer));
      }
      const Program p = fc.compile_chain(spec);
      const VerifyReport rep =
          verify_program(p, g, std::span<const PinnedRows>(fc.pinned()));
      EXPECT_EQ(rep.errors, 0u) << rep.annotate(p);
      EXPECT_EQ(rep.warnings, 0u) << rep.annotate(p);
    }
  }
}

TEST(FusionCompiler, FuzzedForwardExecutesBitIdenticalToReference) {
  // Execute fuzzed MAC-forward programs on a live macro under VerifyFirst
  // and check every traced product against host arithmetic.
  ImcMacro m{MacroConfig{}};
  const std::size_t units = m.mult_units_per_row(8);
  bpim::Rng rng(0xBEEF);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t ops = 1 + rng.uniform_u64(4);
    std::vector<std::uint64_t> activation(units);
    for (auto& v : activation) v = rng.uniform_u64(256);
    m.poke_mult_operands(0, 0, 8, activation);
    std::vector<std::vector<std::uint64_t>> weights(ops,
                                                    std::vector<std::uint64_t>(units));
    MacForwardSpec spec;
    spec.bits = 8;
    for (std::size_t j = 0; j < ops; ++j) {
      for (auto& v : weights[j]) v = rng.uniform_u64(256);
      m.poke_mult_operands(2 * (j + 1), 0, 8, weights[j]);
      spec.steps.push_back({0, 2 * (j + 1)});
    }
    const FusionCompiler fc(m.config().geometry);
    const Program p = fc.compile_mac_forward(spec);
    MacroController ctl(m, VerifyMode::VerifyFirst);
    std::vector<TraceEntry> trace;
    const ProgramStats stats = ctl.run(p, &trace, /*fuse_mac_chains=*/true);
    EXPECT_EQ(stats.cycles + stats.fused_cycles_saved, p.static_cycles());
    ASSERT_EQ(trace.size(), ops);
    for (std::size_t j = 0; j < ops; ++j)
      for (std::size_t i = 0; i < units; ++i)
        EXPECT_EQ(m.peek_mult_product(trace[j].result, i, 8),
                  activation[i] * weights[j][i])
            << "trial " << trial << " op " << j << " unit " << i;
  }
}

TEST(OpCompiler, EmitsVerifiedSingleOpProgramsForEveryKind) {
  const ArrayGeometry g{};
  OpCompiler oc(g);
  const RowRef d1 = RowRef::dummy(1);
  const RowRef d2 = RowRef::dummy(2);
  const Program* programs[] = {
      &oc.add(RowRef::main(0), RowRef::main(1), 8),
      &oc.sub(RowRef::main(0), RowRef::main(1), 8),
      &oc.mult(RowRef::main(0), RowRef::main(1), 8),
      &oc.add_shift(RowRef::main(0), RowRef::main(1), 8, d2),
      &oc.unary(Op::Not, RowRef::main(0), d1, 8),
      &oc.logic(periph::LogicFn::Xor, RowRef::main(0), RowRef::main(1)),
  };
  for (const Program* p : programs) {
    ASSERT_EQ(p->size(), 1u);
    const VerifyReport rep = verify_program(*p, g);
    EXPECT_EQ(rep.errors, 0u) << rep.annotate(*p);
    EXPECT_EQ(rep.warnings, 0u) << rep.annotate(*p);
  }
  EXPECT_EQ(oc.cache_stats().compiled, 6u);
  EXPECT_EQ(oc.cache_stats().hits, 0u);
}

TEST(OpCompiler, CachesByKindBitsAndPlacement) {
  const ArrayGeometry g{};
  OpCompiler oc(g);
  const Program& first = oc.add(RowRef::main(0), RowRef::main(1), 8);
  // Same (kind, bits, rows) -> the identical cached object, counted as a hit.
  EXPECT_EQ(&oc.add(RowRef::main(0), RowRef::main(1), 8), &first);
  // Different bits or placement -> distinct programs, counted as misses.
  EXPECT_NE(&oc.add(RowRef::main(0), RowRef::main(1), 4), &first);
  EXPECT_NE(&oc.add(RowRef::main(2), RowRef::main(3), 8), &first);
  const auto stats = oc.cache_stats();
  EXPECT_EQ(stats.compiled, 3u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(OpCompiler, RejectsVerifierDiagnosticsAndPinnedClobber) {
  const ArrayGeometry g{};
  // Dual-WL compute needs two distinct rows; same-row draws a diagnostic.
  OpCompiler plain(g);
  EXPECT_THROW((void)plain.add(RowRef::main(3), RowRef::main(3), 8),
               std::invalid_argument);

  // Rows [100, 120) pinned: reading them is fine, writing them is not.
  OpCompiler oc(g, {{100, 20}});
  EXPECT_NO_THROW((void)oc.mult(RowRef::main(0), RowRef::main(104), 8));
  try {
    (void)oc.unary(Op::Copy, RowRef::main(0), RowRef::main(104), 8);
    FAIL() << "expected the pinned-row write to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("resident-clobber"), std::string::npos)
        << e.what();
  }
}

TEST(OpCompiler, SetPinnedClearsCache) {
  const ArrayGeometry g{};
  OpCompiler oc(g);
  (void)oc.add(RowRef::main(0), RowRef::main(1), 8);
  oc.set_pinned({{100, 20}});
  // The stale program is gone: the same request recompiles against the new
  // residency map instead of hitting the old entry.
  (void)oc.add(RowRef::main(0), RowRef::main(1), 8);
  const auto stats = oc.cache_stats();
  EXPECT_EQ(stats.compiled, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

}  // namespace
}  // namespace bpim::macro
