// Differential tests: the word-parallel (SWAR) datapath against the seed's
// per-bit reference (baseline/naive_datapath), randomized across precisions
// and row widths -- including widths that are not a multiple of the 64-bit
// storage word and precisions that do not divide 64 (the chunked fallback).
//
// The program-path sweep at the bottom runs every op kind through the
// unified execution model (OpCompiler -> VerifyFirst MacroController)
// against a twin macro driven by direct datapath calls AND against the
// naive per-bit oracles -- the differential that keeps the refactored
// dispatch honest.

#include <gtest/gtest.h>

#include "baseline/naive_datapath.hpp"
#include "common/rng.hpp"
#include "macro/compiler.hpp"
#include "macro/imc_macro.hpp"
#include "macro/program.hpp"
#include "periph/falogics.hpp"

namespace bpim {
namespace {

using array::BlReadout;
using array::RowRef;
using baseline::naive_add;
using baseline::naive_mult_datapath;
using periph::AddResult;
using periph::FaLogics;

BlReadout random_readout(std::size_t width, Rng& rng) {
  BitVector a(width), b(width);
  a.randomize(rng);
  b.randomize(rng);
  return BlReadout{a & b, ~(a | b)};
}

void expect_add_matches(std::size_t width, unsigned precision, bool carry_in, Rng& rng) {
  const BlReadout r = random_readout(width, rng);
  const AddResult fast = FaLogics::add(r, precision, carry_in);
  const AddResult ref = naive_add(r, precision, carry_in);
  EXPECT_EQ(fast.sum, ref.sum) << "sum w=" << width << " p=" << precision << " cin=" << carry_in;
  EXPECT_EQ(fast.carry, ref.carry)
      << "carry w=" << width << " p=" << precision << " cin=" << carry_in;
  EXPECT_EQ(fast.word_carry, ref.word_carry)
      << "word_carry w=" << width << " p=" << precision << " cin=" << carry_in;
}

TEST(HotPathDiff, AddMatchesReferenceAtSupportedPrecisions) {
  Rng rng(0xADD);
  for (const std::size_t width : {64u, 128u, 256u}) {
    for (const unsigned precision : {2u, 4u, 8u, 16u, 32u}) {
      for (const bool cin : {false, true})
        for (int rep = 0; rep < 25; ++rep) expect_add_matches(width, precision, cin, rng);
    }
  }
}

TEST(HotPathDiff, AddMatchesReferenceAtOddWordBoundaries) {
  // Row widths that are not a multiple of 64: the top storage word is
  // partial, and ~bl_nor has garbage above the row that must not leak in.
  Rng rng(0x0DD);
  struct Case {
    std::size_t width;
    unsigned precision;
  };
  for (const Case c : {Case{96, 4}, Case{96, 8}, Case{96, 16}, Case{80, 8}, Case{80, 16},
                       Case{72, 8}, Case{200, 8}, Case{120, 4}}) {
    for (const bool cin : {false, true})
      for (int rep = 0; rep < 25; ++rep) expect_add_matches(c.width, c.precision, cin, rng);
  }
}

TEST(HotPathDiff, AddMatchesReferenceOnChunkedFallback) {
  // Precisions that do not divide 64 (or exceed it) take the chunked path:
  // fields straddle storage words and carries propagate between chunks.
  Rng rng(0xC44);
  struct Case {
    std::size_t width;
    unsigned precision;
  };
  for (const Case c : {Case{96, 3}, Case{96, 12}, Case{96, 24}, Case{96, 96}, Case{90, 5},
                       Case{128, 128}, Case{192, 96}, Case{256, 128}, Case{130, 65}}) {
    for (const bool cin : {false, true})
      for (int rep = 0; rep < 25; ++rep) expect_add_matches(c.width, c.precision, cin, rng);
  }
}

TEST(HotPathDiff, AddChainSpansFullField) {
  // All-ones + 1 ripples the carry through an entire >64-bit field.
  const std::size_t width = 128;
  BitVector a(width), b(width);
  a.fill(true);
  const BlReadout r{a & b, ~(a | b)};
  const AddResult fast = FaLogics::add(r, 128, true);
  const AddResult ref = naive_add(r, 128, true);
  EXPECT_EQ(fast.sum, ref.sum);
  EXPECT_EQ(fast.carry, ref.carry);
  EXPECT_EQ(fast.word_carry, ref.word_carry);
  EXPECT_EQ(fast.sum.popcount(), 0u);  // ...1111 + 1 == 0 with carry-out
  EXPECT_TRUE(fast.word_carry.get(127));
}

macro::MacroConfig geometry_cfg(std::size_t cols) {
  macro::MacroConfig cfg;
  cfg.geometry.cols = cols;
  return cfg;
}

TEST(HotPathDiff, MultRowsMatchesReferenceAndHostProducts) {
  Rng rng(0x3117);
  for (const std::size_t cols : {128u, 96u, 256u}) {
    for (const unsigned bits : {4u, 8u, 16u}) {
      if (cols % (2 * bits) != 0) continue;
      macro::ImcMacro m{geometry_cfg(cols)};
      const std::size_t units = m.mult_units_per_row(bits);
      for (int rep = 0; rep < 10; ++rep) {
        std::vector<std::uint64_t> va(units), vb(units);
        for (std::size_t u = 0; u < units; ++u) {
          va[u] = rng.next_u64() & ((1ull << bits) - 1);
          vb[u] = rng.next_u64() & ((1ull << bits) - 1);
          m.poke_mult_operand(0, u, bits, va[u]);
          m.poke_mult_operand(1, u, bits, vb[u]);
        }
        const BitVector row_a = m.peek_row(0);
        const BitVector row_b = m.peek_row(1);
        const BitVector product = m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
        EXPECT_EQ(product, naive_mult_datapath(row_a, row_b, bits))
            << "cols=" << cols << " bits=" << bits;
        for (std::size_t u = 0; u < units; ++u)
          EXPECT_EQ(m.peek_mult_product(product, u, bits), va[u] * vb[u])
              << "cols=" << cols << " bits=" << bits << " unit=" << u;
      }
    }
  }
}

TEST(HotPathDiff, ShiftAndAddShiftMatchPerBitSemantics) {
  Rng rng(0x5417);
  macro::ImcMacro m{geometry_cfg(96)};
  const unsigned bits = 8;
  for (int rep = 0; rep < 10; ++rep) {
    BitVector a(96), b(96);
    a.randomize(rng);
    b.randomize(rng);
    m.poke_row(0, a);
    m.poke_row(1, b);

    // Shift: out[w*bits + i] = src[w*bits + i - 1], field LSBs cleared.
    const BitVector shifted =
        m.unary_row(macro::Op::Shift, RowRef::main(0), RowRef::main(2), bits);
    for (std::size_t w = 0; w < 96 / bits; ++w)
      for (unsigned i = 0; i < bits; ++i)
        EXPECT_EQ(shifted.get(w * bits + i), i == 0 ? false : a.get(w * bits + i - 1));

    // AddShift: the propagated-sum path writes S[n-1] into column n.
    const AddResult ref = naive_add({a & b, ~(a | b)}, bits, false);
    const BitVector as = m.add_shift_rows(RowRef::main(0), RowRef::main(1), bits,
                                          RowRef::dummy(macro::ImcMacro::kDummyAccum));
    for (std::size_t w = 0; w < 96 / bits; ++w)
      for (unsigned i = 0; i < bits; ++i)
        EXPECT_EQ(as.get(w * bits + i), i == 0 ? false : ref.sum.get(w * bits + i - 1));
  }
}

TEST(HotPathDiff, ProgramPathMatchesDirectDatapathAndOracles) {
  // Unified execution model differential: every op kind x precision x random
  // row placement, compiled by OpCompiler and executed through a VerifyFirst
  // controller on one macro, against the same sequence of direct datapath
  // calls on a twin macro (same config -> identical state evolution). The
  // driven-out rows must match bitwise, per-op cycles/energy must match the
  // twin's ledger exactly, and each result must also agree with the
  // independent per-bit oracle.
  Rng rng(0x9406);
  const macro::MacroConfig cfg;
  const std::size_t cols = cfg.geometry.cols;
  const std::size_t rows = cfg.geometry.rows;
  const RowRef d1 = RowRef::dummy(macro::ImcMacro::kDummyOperand);
  const RowRef d2 = RowRef::dummy(macro::ImcMacro::kDummyAccum);
  enum class K { Add, Sub, Mult, AddShift, Not, Logic };
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    macro::ImcMacro direct{cfg};
    macro::ImcMacro programmed{cfg};
    macro::OpCompiler compiler(cfg.geometry);
    macro::MacroController ctl(programmed, macro::VerifyMode::VerifyFirst);
    for (const K kind : {K::Add, K::Sub, K::Mult, K::AddShift, K::Not, K::Logic}) {
      for (int rep = 0; rep < 6; ++rep) {
        std::size_t ri_a = rng.next_u64() % rows;
        std::size_t ri_b = rng.next_u64() % rows;
        while (ri_b == ri_a) ri_b = rng.next_u64() % rows;
        BitVector va(cols), vb(cols);
        va.randomize(rng);
        vb.randomize(rng);
        for (macro::ImcMacro* m : {&direct, &programmed}) {
          m->poke_row(ri_a, va);
          m->poke_row(ri_b, vb);
        }
        const RowRef a = RowRef::main(ri_a);
        const RowRef b = RowRef::main(ri_b);
        const macro::Program* prog = nullptr;
        BitVector want;
        switch (kind) {
          case K::Add:
            prog = &compiler.add(a, b, bits);
            want = direct.add_rows(a, b, bits);
            break;
          case K::Sub:
            prog = &compiler.sub(a, b, bits);
            want = direct.sub_rows(a, b, bits);
            break;
          case K::Mult:
            prog = &compiler.mult(a, b, bits);
            want = direct.mult_rows(a, b, bits);
            break;
          case K::AddShift:
            prog = &compiler.add_shift(a, b, bits, d2);
            want = direct.add_shift_rows(a, b, bits, d2);
            break;
          case K::Not:
            prog = &compiler.unary(macro::Op::Not, a, d1, bits);
            want = direct.unary_row(macro::Op::Not, a, d1, bits);
            break;
          case K::Logic:
            prog = &compiler.logic(periph::LogicFn::Nor, a, b);
            want = direct.logic_rows(periph::LogicFn::Nor, a, b);
            break;
        }
        std::vector<macro::TraceEntry> trace;
        (void)ctl.run(*prog, &trace);
        ASSERT_EQ(trace.size(), 1u);
        const BitVector& got = trace.back().result;
        const std::string what = "kind=" + std::string(1, "ASMXNL"[static_cast<int>(kind)]) +
                                 " bits=" + std::to_string(bits) + " rows=(" +
                                 std::to_string(ri_a) + "," + std::to_string(ri_b) + ")";
        EXPECT_EQ(got, want) << what;
        EXPECT_EQ(trace.back().cycles, direct.last_op().cycles) << what;
        EXPECT_EQ(trace.back().op_energy.si(), direct.last_op().op_energy.si()) << what;

        switch (kind) {
          case K::Add:
            EXPECT_EQ(got, naive_add({va & vb, ~(va | vb)}, bits, false).sum) << what;
            break;
          case K::Sub:
            // a - b == a + ~b + 1 per field: readout of (a, ~b), carry-in 1.
            EXPECT_EQ(got, naive_add({va & ~vb, ~(va | ~vb)}, bits, true).sum) << what;
            break;
          case K::Mult:
            EXPECT_EQ(got, naive_mult_datapath(va, vb, bits)) << what;
            break;
          case K::AddShift: {
            const AddResult ref = naive_add({va & vb, ~(va | vb)}, bits, false);
            for (std::size_t w = 0; w < cols / bits; ++w)
              for (unsigned i = 0; i < bits; ++i)
                EXPECT_EQ(got.get(w * bits + i),
                          i == 0 ? false : ref.sum.get(w * bits + i - 1))
                    << what;
            break;
          }
          case K::Not:
            EXPECT_EQ(got, ~va) << what;
            break;
          case K::Logic:
            EXPECT_EQ(got, ~(va | vb)) << what;
            break;
        }
      }
    }
    // Random placements mostly miss the cache; what matters is that every
    // emitted program was verified and none was rejected.
    EXPECT_GT(compiler.cache_stats().compiled, 0u);
  }
}

TEST(HotPathDiff, PokePeekRoundTripAcrossWordBoundaries) {
  // 16-bit words at 96 cols put word 3 at columns 48..64 -- straddling the
  // storage-word boundary.
  macro::ImcMacro m{geometry_cfg(96)};
  Rng rng(0x9011);
  const unsigned bits = 16;
  for (std::size_t w = 0; w < m.words_per_row(bits); ++w) {
    const std::uint64_t v = rng.next_u64() & 0xFFFFu;
    m.poke_word(3, w, bits, v);
    EXPECT_EQ(m.peek_word(3, w, bits), v);
  }
}

TEST(HotPathDiff, BulkPokeMatchesPerWordPokes) {
  macro::ImcMacro one{geometry_cfg(128)};
  macro::ImcMacro bulk{geometry_cfg(128)};
  Rng rng(0xB01C);
  const unsigned bits = 8;
  std::vector<std::uint64_t> vals(one.words_per_row(bits));
  for (auto& v : vals) v = rng.next_u64() & 0xFFu;
  for (std::size_t w = 0; w < vals.size(); ++w) one.poke_word(4, w, bits, vals[w]);
  bulk.poke_words(4, 0, bits, vals);
  EXPECT_EQ(one.peek_row(4), bulk.peek_row(4));

  std::vector<std::uint64_t> ops(one.mult_units_per_row(bits));
  for (auto& v : ops) v = rng.next_u64() & 0xFFu;
  for (std::size_t u = 0; u < ops.size(); ++u) one.poke_mult_operand(5, u, bits, ops[u]);
  bulk.poke_mult_operands(5, 0, bits, ops);
  EXPECT_EQ(one.peek_row(5), bulk.peek_row(5));

  EXPECT_THROW(bulk.poke_words(4, 16, bits, vals), std::invalid_argument);
  EXPECT_THROW(bulk.poke_words(4, 0, bits, std::vector<std::uint64_t>{1ull << bits}),
               std::invalid_argument);
}

std::uint64_t sparse_operand(Rng& rng, unsigned bits, int zero_pct) {
  if (static_cast<int>(rng.next_u64() % 100) < zero_pct) return 0;
  return rng.next_u64() & ((1ull << bits) - 1);
}

TEST(HotPathDiff, AdaptiveExecutionIsBitIdenticalAcrossOpsAndSparsity) {
  // The adaptive policy may only move cycles, never bits: every op kind x
  // precision x operand sparsity, run policy-on against a policy-off twin
  // and the per-bit oracles, with the three-way cycle split checked exactly
  // (full == adaptive + adaptive_cycles_saved, both == Table 1 static).
  Rng rng(0xADA7);
  const macro::MacroConfig cfg;
  const std::size_t cols = cfg.geometry.cols;
  const RowRef d1 = RowRef::dummy(macro::ImcMacro::kDummyOperand);
  const RowRef d2 = RowRef::dummy(macro::ImcMacro::kDummyAccum);
  const macro::AdaptivePolicy policies[] = {{true, false}, {false, true}, {true, true}};
  enum class K { Add, Sub, Mult, AddShift, Not, Logic };
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    for (const int zero_pct : {0, 50, 95}) {
      for (const macro::AdaptivePolicy policy : policies) {
        macro::ImcMacro full{cfg};
        macro::ImcMacro adapt{cfg};
        macro::OpCompiler compiler(cfg.geometry);
        macro::MacroController full_ctl(full, macro::VerifyMode::VerifyFirst);
        macro::MacroController adapt_ctl(adapt, macro::VerifyMode::VerifyFirst);
        for (const K kind : {K::Add, K::Sub, K::Mult, K::AddShift, K::Not, K::Logic}) {
          for (int rep = 0; rep < 4; ++rep) {
            const RowRef a = RowRef::main(0);
            const RowRef b = RowRef::main(1);
            if (kind == K::Mult) {
              for (std::size_t u = 0; u < full.mult_units_per_row(bits); ++u) {
                const std::uint64_t va = sparse_operand(rng, bits, zero_pct);
                const std::uint64_t vb = sparse_operand(rng, bits, zero_pct);
                for (macro::ImcMacro* m : {&full, &adapt}) {
                  m->poke_mult_operand(0, u, bits, va);
                  m->poke_mult_operand(1, u, bits, vb);
                }
              }
            } else {
              BitVector va(cols), vb(cols);
              va.randomize(rng);
              vb.randomize(rng);
              for (macro::ImcMacro* m : {&full, &adapt}) {
                m->poke_row(0, va);
                m->poke_row(1, vb);
              }
            }
            const BitVector row_a = full.peek_row(0);
            const BitVector row_b = full.peek_row(1);
            const macro::Program* prog = nullptr;
            switch (kind) {
              case K::Add: prog = &compiler.add(a, b, bits); break;
              case K::Sub: prog = &compiler.sub(a, b, bits); break;
              case K::Mult: prog = &compiler.mult(a, b, bits); break;
              case K::AddShift: prog = &compiler.add_shift(a, b, bits, d2); break;
              case K::Not: prog = &compiler.unary(macro::Op::Not, a, d1, bits); break;
              case K::Logic: prog = &compiler.logic(periph::LogicFn::Nor, a, b); break;
            }
            std::vector<macro::TraceEntry> ft, at;
            const macro::ProgramStats fs = full_ctl.run(*prog, &ft);
            const macro::ProgramStats as = adapt_ctl.run(*prog, &at, false, policy);
            ASSERT_EQ(ft.size(), 1u);
            ASSERT_EQ(at.size(), 1u);
            const std::string what = "kind=" +
                                     std::string(1, "ASMXNL"[static_cast<int>(kind)]) +
                                     " bits=" + std::to_string(bits) +
                                     " zero%=" + std::to_string(zero_pct) +
                                     " narrow=" + std::to_string(policy.narrow_precision) +
                                     " skip=" + std::to_string(policy.skip_zero);
            EXPECT_EQ(at.back().result, ft.back().result) << what;
            // Exact cycle conservation: the policy-off twin pays Table 1 in
            // full, and the adaptive run splits the same total.
            EXPECT_EQ(fs.adaptive_cycles_saved, 0u) << what;
            EXPECT_EQ(fs.cycles, prog->static_cycles()) << what;
            EXPECT_EQ(as.cycles + as.adaptive_cycles_saved, fs.cycles) << what;
            EXPECT_EQ(at.back().adaptive_cycles_saved, as.adaptive_cycles_saved) << what;
            EXPECT_LE(as.energy.si(), fs.energy.si()) << what;
            if (kind != K::Mult) {
              EXPECT_EQ(as.adaptive_cycles_saved, 0u) << what;
            } else {
              EXPECT_EQ(at.back().result, naive_mult_datapath(row_a, row_b, bits)) << what;
            }
          }
        }
      }
    }
  }
}

TEST(HotPathDiff, AdaptiveNarrowingAndSkipSaveExactCycles) {
  const macro::MacroConfig cfg;
  const unsigned bits = 8;
  const macro::AdaptivePolicy policy{true, true};
  macro::ImcMacro m{cfg};
  macro::MacroController ctl(m, macro::VerifyMode::VerifyFirst);
  const std::size_t units = m.mult_units_per_row(bits);
  macro::Program prog;
  prog.mult(RowRef::main(0), RowRef::main(1), bits);

  // All-zero multiplicand: every product is provably zero, so the MULT
  // collapses to its single zero-init cycle and skips staging outright.
  for (std::size_t u = 0; u < units; ++u) {
    m.poke_mult_operand(0, u, bits, 0);
    m.poke_mult_operand(1, u, bits, 0xFF);
  }
  std::vector<macro::TraceEntry> t;
  macro::ProgramStats s = ctl.run(prog, &t, false, policy);
  EXPECT_EQ(s.cycles, 1u);
  EXPECT_EQ(s.adaptive_cycles_saved, bits + 1u);
  EXPECT_EQ(t.back().result.popcount(), 0u);

  // Narrow multiplier: every effectual product has b <= 3, so only the two
  // low add-shift iterations run (staging still pays its cycle).
  for (std::size_t u = 0; u < units; ++u) {
    m.poke_mult_operand(0, u, bits, 5);
    m.poke_mult_operand(1, u, bits, 3);
  }
  t.clear();
  s = ctl.run(prog, &t, false, policy);
  EXPECT_EQ(s.cycles, 4u);  // zero-init + staging + 2 iterations
  EXPECT_EQ(s.adaptive_cycles_saved, bits - 2u);
  for (std::size_t u = 0; u < units; ++u)
    EXPECT_EQ(m.peek_mult_product(t.back().result, u, bits), 15u);
}

TEST(HotPathDiff, AdaptiveFusedChainStaysBitIdenticalAndConserving) {
  // Fusion and adaptivity compose: a chained-MAC program whose middle MULT
  // skips entirely must keep the staged-D1 discount of the later links
  // honest (the stale-multiplicand hazard the controller's staging validity
  // tracking exists for) and still split Table 1's total exactly.
  Rng rng(0xFADE);
  const macro::MacroConfig cfg;
  const unsigned bits = 8;
  macro::ImcMacro full{cfg};
  macro::ImcMacro adapt{cfg};
  macro::MacroController full_ctl(full, macro::VerifyMode::VerifyFirst);
  macro::MacroController adapt_ctl(adapt, macro::VerifyMode::VerifyFirst);
  const std::size_t units = full.mult_units_per_row(bits);
  for (std::size_t u = 0; u < units; ++u) {
    const std::uint64_t a = 1 + (rng.next_u64() & 0xFE);
    const std::uint64_t b1 = rng.next_u64() & 0xFF;
    const std::uint64_t b3 = rng.next_u64() & 0x3;
    for (macro::ImcMacro* m : {&full, &adapt}) {
      m->poke_mult_operand(0, u, bits, a);
      m->poke_mult_operand(1, u, bits, b1);
      m->poke_mult_operand(2, u, bits, 0);  // the skipping middle link
      m->poke_mult_operand(3, u, bits, b3);
    }
  }
  macro::Program prog;
  for (std::size_t r = 1; r <= 3; ++r)
    prog.mult(RowRef::main(0), RowRef::main(r), bits);

  std::vector<macro::TraceEntry> ft, at;
  const macro::ProgramStats fs = full_ctl.run(prog, &ft);
  const macro::ProgramStats as =
      adapt_ctl.run(prog, &at, /*fuse_mac_chains=*/true, macro::AdaptivePolicy{true, true});
  ASSERT_EQ(ft.size(), 3u);
  ASSERT_EQ(at.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(at[k].result, ft[k].result) << "link " << k;
    EXPECT_EQ(at[k].result,
              naive_mult_datapath(full.peek_row(0), full.peek_row(k + 1), bits))
        << "link " << k;
  }
  EXPECT_EQ(fs.cycles, prog.static_cycles());
  EXPECT_EQ(as.cycles + as.fused_cycles_saved + as.adaptive_cycles_saved,
            prog.static_cycles());
  EXPECT_GT(as.fused_cycles_saved, 0u);
  EXPECT_GT(as.adaptive_cycles_saved, 0u);
}

}  // namespace
}  // namespace bpim
