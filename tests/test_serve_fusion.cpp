// serve::Server fusion routes: submit_forward / submit_chain through the
// admission queue -- single- and multi-memory -- must be bit-identical to
// the direct engine, account the fused discount in ServeStats, and survive
// concurrent clients (the fused serving stress the TSan CI job runs).

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/execution_engine.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

namespace bpim::serve {
namespace {

using engine::ChainLinkKind;
using engine::ChainRequest;
using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OperandLayout;
using engine::OpKind;
using engine::OpResult;
using engine::ResidentOperand;
using engine::VecOp;

macro::MemoryConfig tiny_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 2;
  cfg.macros_per_bank = 2;
  return cfg;
}

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  bpim::Rng rng(seed);
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

TEST(ServeFusion, SubmitForwardBitIdenticalToDirectEngine) {
  macro::ImcMemory direct_mem(tiny_memory());
  ExecutionEngine direct(direct_mem, EngineConfig{1});

  macro::ImcMemory served_mem(tiny_memory());
  ExecutionEngine served_eng(served_mem, EngineConfig{1});
  Server server(served_eng);

  const unsigned bits = 8;
  const std::size_t n = 48;
  std::vector<std::vector<std::uint64_t>> w;
  std::vector<ResidentOperand> direct_handles, served_handles;
  for (std::size_t j = 0; j < 4; ++j) {
    w.push_back(random_vec(n, bits, 10 + j));
    direct_handles.push_back(direct.pin(w.back(), bits, OperandLayout::MultUnit));
    served_handles.push_back(server.pin(w.back(), bits, OperandLayout::MultUnit));
  }
  for (std::size_t call = 0; call < 3; ++call) {
    const auto x = random_vec(n, bits, 50 + call);
    const auto want = direct.run_forward(direct_handles, x);
    const auto got = server.submit_forward(served_handles, x).get();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(want[j].values, got[j].values) << "call " << call << " op " << j;
      EXPECT_EQ(want[j].stats.elapsed_cycles, got[j].stats.elapsed_cycles);
      EXPECT_EQ(want[j].stats.fused_cycles_saved, got[j].stats.fused_cycles_saved);
    }
  }
  server.stop();
  const ServeStats s = server.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_GT(s.modeled_fused_cycles_saved, 0u);
}

TEST(ServeFusion, SubmitForwardThroughMemoryPoolColocatesAndMatches) {
  macro::ImcMemory direct_mem(tiny_memory());
  ExecutionEngine direct(direct_mem, EngineConfig{1});

  MemoryPoolConfig pcfg;
  pcfg.memory = tiny_memory();
  pcfg.memories = 2;
  pcfg.threads_per_memory = 1;
  MemoryPool pool(pcfg);
  Server server(pool);

  const unsigned bits = 4;
  const std::size_t n = 64;
  std::vector<std::vector<std::uint64_t>> w;
  std::vector<ResidentOperand> direct_handles, served_handles;
  for (std::size_t j = 0; j < 3; ++j) {
    w.push_back(random_vec(n, bits, 20 + j));
    direct_handles.push_back(direct.pin(w.back(), bits, OperandLayout::MultUnit));
    // One colocate key: every weight must land on the same pool memory.
    served_handles.push_back(server.pin(w.back(), bits, OperandLayout::MultUnit, 7));
  }
  const auto x = random_vec(n, bits, 90);
  const auto want = direct.run_forward(direct_handles, x);
  const auto got = server.submit_forward(served_handles, x).get();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < want.size(); ++j) EXPECT_EQ(want[j].values, got[j].values);
  server.stop();
  EXPECT_GT(server.stats().modeled_fused_cycles_saved, 0u);
}

TEST(ServeFusion, SplitHomesAreRejectedWithColocateHint) {
  MemoryPoolConfig pcfg;
  pcfg.memory = tiny_memory();
  pcfg.memories = 2;
  pcfg.threads_per_memory = 1;
  MemoryPool pool(pcfg);
  Server server(pool);

  const auto w0 = random_vec(32, 8, 1);
  const auto w1 = random_vec(32, 8, 2);
  // Explicit keys onto different memories.
  const std::vector<ResidentOperand> handles{
      server.pin(w0, 8, OperandLayout::MultUnit, 0),
      server.pin(w1, 8, OperandLayout::MultUnit, 1)};
  const auto x = random_vec(32, 8, 3);
  try {
    (void)server.submit_forward(handles, x);
    FAIL() << "expected split-home weights to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("colocate_key"), std::string::npos) << e.what();
  }
  server.stop();
}

TEST(ServeFusion, SubmitChainMatchesDirectEngine) {
  macro::ImcMemory direct_mem(tiny_memory());
  ExecutionEngine direct(direct_mem, EngineConfig{1});

  macro::ImcMemory served_mem(tiny_memory());
  ExecutionEngine served_eng(served_mem, EngineConfig{1});
  Server server(served_eng);

  const unsigned bits = 4;
  const std::size_t n = 56;
  const auto a = random_vec(n, bits, 30);
  const auto b = random_vec(n, bits, 31);
  const auto c = random_vec(n, 2 * bits, 32);

  ChainRequest req;
  req.bits = bits;
  req.a = a;
  req.b = b;
  req.links = {{ChainLinkKind::Add, c}};
  const OpResult want = direct.run_chain(req);
  const OpResult got = server.submit_chain(req).get();
  EXPECT_EQ(want.values, got.values);
  EXPECT_EQ(want.stats.elapsed_cycles, got.stats.elapsed_cycles);
  EXPECT_EQ(want.stats.load_cycles_saved, got.stats.load_cycles_saved);
  server.stop();
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(ServeFusion, ConcurrentFusedAndPlainClientsStayBitIdentical) {
  // The fused serving stress: forward, chain and plain-op clients hammer
  // one server concurrently; every result must match a serial reference.
  macro::ImcMemory served_mem(tiny_memory());
  ExecutionEngine served_eng(served_mem, EngineConfig{2});
  Server server(served_eng);

  const unsigned bits = 8;
  const std::size_t n = 32;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kCallsPerClient = 8;

  // Per-client pinned layer (colocated per client) plus a serial twin.
  std::vector<std::vector<std::vector<std::uint64_t>>> w(kClients);
  std::vector<std::vector<ResidentOperand>> handles(kClients);
  for (std::size_t cl = 0; cl < kClients; ++cl) {
    for (std::size_t j = 0; j < 3; ++j) {
      w[cl].push_back(random_vec(n, bits, 1000 + 10 * cl + j));
      handles[cl].push_back(
          server.pin(w[cl].back(), bits, OperandLayout::MultUnit, cl));
    }
  }

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (std::size_t cl = 0; cl < kClients; ++cl) {
    clients.emplace_back([&, cl] {
      for (std::size_t call = 0; call < kCallsPerClient; ++call) {
        const auto x = random_vec(n, bits, 2000 + 100 * cl + call);
        if (call % 2 == 0) {
          const auto got = server.submit_forward(handles[cl], x).get();
          for (std::size_t j = 0; j < got.size(); ++j)
            for (std::size_t i = 0; i < n; ++i)
              if (got[j].values[i] != w[cl][j][i] * x[i]) {
                failures[cl] = "forward mismatch";
                return;
              }
        } else {
          const auto y = random_vec(n, bits, 3000 + 100 * cl + call);
          VecOp op;
          op.kind = OpKind::Mult;
          op.bits = bits;
          op.a = x;
          op.b = y;
          const OpResult got = server.submit(op).get();
          for (std::size_t i = 0; i < n; ++i)
            if (got.values[i] != x[i] * y[i]) {
              failures[cl] = "plain op mismatch";
              return;
            }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t cl = 0; cl < kClients; ++cl) EXPECT_EQ(failures[cl], "") << "client " << cl;
  server.stop();
  const ServeStats s = server.stats();
  EXPECT_EQ(s.completed, kClients * kCallsPerClient);
  EXPECT_GT(s.modeled_fused_cycles_saved, 0u);
}

}  // namespace
}  // namespace bpim::serve
