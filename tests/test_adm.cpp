// Access-disturb-margin estimators and the iso-ADM calibration.

#include <gtest/gtest.h>

#include "timing/adm.hpp"

namespace bpim::timing {
namespace {

using namespace bpim::literals;
using circuit::OperatingPoint;

OperatingPoint nominal() { return OperatingPoint{0.9_V, 25.0, circuit::Corner::NN}; }

TEST(Adm, WludAtPaperLevelNearIsoTarget) {
  // The 0.55 V WLUD operating point should sit in the 2.5e-5 decade
  // (measured 2.25e-5 over 2M samples during calibration; use a smaller,
  // CI-friendly sample here with wide Poisson bounds).
  const auto r = wlud_disturb_rate(BlComputeConfig{}, nominal(), 0.55_V, 400000, 42);
  EXPECT_LT(r.rate(), 3.0e-4);
  EXPECT_GT(r.rate_upper95(), 1.0e-6);
}

TEST(Adm, WludRateIncreasesWithLevel) {
  const BlComputeConfig cfg;
  const auto lo = wlud_disturb_rate(cfg, nominal(), 0.55_V, 150000, 43);
  const auto hi = wlud_disturb_rate(cfg, nominal(), 0.70_V, 150000, 43);
  EXPECT_GT(hi.failures, lo.failures);
  EXPECT_GT(hi.rate(), 1e-3);  // 0.70 V is clearly unsafe
}

TEST(Adm, FullLevelIsCatastrophic) {
  const auto r = wlud_disturb_rate(BlComputeConfig{}, nominal(), 0.9_V, 5000, 44);
  EXPECT_GT(r.rate(), 0.2);
}

TEST(Adm, ShortWlSchemeIsAtLeastAsSafe) {
  const BlComputeConfig cfg;
  const auto prop = shortwl_disturb_rate(cfg, nominal(), 300000, 45);
  const auto wlud = wlud_disturb_rate(cfg, nominal(), 0.55_V, 300000, 46);
  EXPECT_LE(prop.failures, wlud.failures + 5);
  EXPECT_LT(prop.rate(), 1e-4);
}

TEST(Adm, LongerPulseEventuallyUnsafe) {
  // Stretching the "short" pulse toward a quasi-DC full-swing access must
  // raise the disturb rate dramatically -- the reason 140 ps is short.
  BlComputeConfig long_pulse;
  long_pulse.wl_pulse = Second(3e-9);
  const auto r = shortwl_disturb_rate(long_pulse, nominal(), 20000, 47);
  EXPECT_GT(r.rate(), 1e-2);
}

TEST(Adm, CalibrateFindsLevelNearPaper) {
  // Bisecting for the 2.5e-5 iso-ADM level should land in the 0.5-0.6 V
  // neighbourhood the paper uses (0.55 V).
  const Volt level =
      calibrate_wlud_level(BlComputeConfig{}, nominal(), 2.5e-5, 60000, 48);
  EXPECT_GT(level.si(), 0.48);
  EXPECT_LT(level.si(), 0.62);
}

}  // namespace
}  // namespace bpim::timing
