// ImcMacro: ADD / SUB / ADD-Shift across precisions, property-style.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "macro/imc_macro.hpp"

namespace bpim::macro {
namespace {

using array::RowRef;

class MacroArith : public ::testing::TestWithParam<unsigned> {
 protected:
  ImcMacro macro_{MacroConfig{}};
  Rng rng_{GetParam() * 7919u};

  [[nodiscard]] std::uint64_t mask() const {
    const unsigned bits = GetParam();
    return bits >= 64 ? ~0ull : (1ull << bits) - 1;
  }
};

TEST_P(MacroArith, AddAllWordsOfARowPair) {
  const unsigned bits = GetParam();
  const std::size_t words = macro_.words_per_row(bits);
  std::vector<std::uint64_t> a(words), b(words);
  for (std::size_t w = 0; w < words; ++w) {
    a[w] = rng_.next_u64() & mask();
    b[w] = rng_.next_u64() & mask();
    macro_.poke_word(0, w, bits, a[w]);
    macro_.poke_word(1, w, bits, b[w]);
  }
  const BitVector sum = macro_.add_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_EQ(macro_.last_op().cycles, op_cycles(Op::Add, bits));
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t s = 0;
    for (unsigned i = 0; i < bits; ++i)
      s |= static_cast<std::uint64_t>(sum.get(w * bits + i)) << i;
    EXPECT_EQ(s, (a[w] + b[w]) & mask()) << "word " << w;
  }
}

TEST_P(MacroArith, SubIsTwosComplement) {
  const unsigned bits = GetParam();
  const std::size_t words = macro_.words_per_row(bits);
  std::vector<std::uint64_t> a(words), b(words);
  for (std::size_t w = 0; w < words; ++w) {
    a[w] = rng_.next_u64() & mask();
    b[w] = rng_.next_u64() & mask();
    macro_.poke_word(0, w, bits, a[w]);
    macro_.poke_word(1, w, bits, b[w]);
  }
  const BitVector diff = macro_.sub_rows(RowRef::main(0), RowRef::main(1), bits);
  EXPECT_EQ(macro_.last_op().cycles, 2u);  // Table 1: SUB takes 2 cycles
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t d = 0;
    for (unsigned i = 0; i < bits; ++i)
      d |= static_cast<std::uint64_t>(diff.get(w * bits + i)) << i;
    EXPECT_EQ(d, (a[w] - b[w]) & mask()) << "word " << w;
  }
}

TEST_P(MacroArith, AddShiftIsSumTimesTwo) {
  const unsigned bits = GetParam();
  const std::size_t words = macro_.words_per_row(bits);
  std::vector<std::uint64_t> a(words), b(words);
  for (std::size_t w = 0; w < words; ++w) {
    // Keep sums below half range so the shifted value is (a+b)*2 exactly.
    a[w] = rng_.next_u64() & (mask() >> 2);
    b[w] = rng_.next_u64() & (mask() >> 2);
    macro_.poke_word(0, w, bits, a[w]);
    macro_.poke_word(1, w, bits, b[w]);
  }
  const RowRef dest = RowRef::dummy(ImcMacro::kDummyAccum);
  const BitVector out = macro_.add_shift_rows(RowRef::main(0), RowRef::main(1), bits, dest);
  EXPECT_EQ(macro_.last_op().cycles, 1u);  // single-cycle add-and-shift
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t s = 0;
    for (unsigned i = 0; i < bits; ++i)
      s |= static_cast<std::uint64_t>(out.get(w * bits + i)) << i;
    EXPECT_EQ(s, ((a[w] + b[w]) << 1) & mask()) << "word " << w;
  }
  EXPECT_EQ(macro_.sram().row(dest), out);  // written back for iteration
}

TEST_P(MacroArith, AddWithWritebackStoresResult) {
  const unsigned bits = GetParam();
  macro_.poke_word(0, 0, bits, 1);
  macro_.poke_word(1, 0, bits, 2);
  const RowRef dest = RowRef::dummy(ImcMacro::kDummyZero);
  const BitVector sum =
      macro_.add_rows(RowRef::main(0), RowRef::main(1), bits, dest);
  EXPECT_EQ(macro_.sram().row(dest), sum);
}

INSTANTIATE_TEST_SUITE_P(Precisions, MacroArith, ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(MacroArithEdge, AddWrapsAtPrecision) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 0xFF);
  m.poke_word(1, 0, 8, 0x01);
  const BitVector s = m.add_rows(RowRef::main(0), RowRef::main(1), 8);
  EXPECT_EQ(s.to_u64() & 0xFF, 0x00u);
  // Neighbouring word must stay clean (MX3 segmentation).
  EXPECT_EQ((s.to_u64() >> 8) & 0xFF, 0x00u);
}

TEST(MacroArithEdge, SubZeroAndIdentity) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 0x5A);
  m.poke_word(1, 0, 8, 0x5A);
  EXPECT_EQ(m.sub_rows(RowRef::main(0), RowRef::main(1), 8).to_u64() & 0xFF, 0u);
  m.poke_word(1, 0, 8, 0x00);
  EXPECT_EQ(m.sub_rows(RowRef::main(0), RowRef::main(1), 8).to_u64() & 0xFF, 0x5Au);
}

TEST(MacroArithEdge, SubNegativeWrapsModulo) {
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 3);
  m.poke_word(1, 0, 8, 5);
  EXPECT_EQ(m.sub_rows(RowRef::main(0), RowRef::main(1), 8).to_u64() & 0xFF, 0xFEu);  // -2
}

TEST(MacroArithEdge, UnsupportedPrecisionRejected) {
  ImcMacro m{MacroConfig{}};
  EXPECT_THROW(m.add_rows(RowRef::main(0), RowRef::main(1), 3), std::invalid_argument);
}

TEST(MacroArithEdge, DummyRowsUsableAsOperands) {
  // SUB leaves ~b in the dummy operand row; computing with it directly must
  // work (main+dummy share BLs when the separator is closed).
  ImcMacro m{MacroConfig{}};
  m.poke_word(0, 0, 8, 0x21);
  BitVector inverted(128);
  inverted.fill(false);
  for (unsigned i = 0; i < 8; ++i) inverted.set(i, ((0x0F >> i) & 1u) != 0);
  m.poke_row(1, inverted);  // place 0x0F via row 1 then copy into dummy
  m.unary_row(Op::Copy, array::RowRef::main(1), array::RowRef::dummy(0), 8);
  const BitVector s = m.add_rows(RowRef::main(0), RowRef::dummy(0), 8);
  EXPECT_EQ(s.to_u64() & 0xFF, 0x30u);
}

}  // namespace
}  // namespace bpim::macro
