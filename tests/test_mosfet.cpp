// Alpha-power/EKV MOSFET model: monotonicity, regions, corners, mismatch.

#include <gtest/gtest.h>

#include "circuit/mosfet.hpp"

namespace bpim::circuit {
namespace {

using namespace bpim::literals;

OperatingPoint nominal() { return OperatingPoint{0.9_V, 25.0, Corner::NN}; }

TEST(Mosfet, RejectsNonPositiveWidth) {
  EXPECT_THROW(Mosfet(DeviceKind::Nmos, VtFlavor::Regular, 0.0, nominal()),
               std::invalid_argument);
}

TEST(Mosfet, CurrentIncreasesWithVgs) {
  const Mosfet m(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  double prev = 0.0;
  for (double vgs = 0.2; vgs <= 1.1; vgs += 0.05) {
    const double i = m.current(Volt(vgs), 0.9_V).si();
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Mosfet, CurrentIncreasesWithVdsInTriode) {
  const Mosfet m(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  const double sat = m.current(0.9_V, 0.9_V).si();
  const double lin = m.current(0.9_V, 0.05_V).si();
  EXPECT_LT(lin, sat);
  EXPECT_GT(lin, 0.0);
  // Beyond Vdsat the current saturates.
  EXPECT_DOUBLE_EQ(m.current(0.9_V, 0.8_V).si(), m.current(0.9_V, 0.9_V).si());
}

TEST(Mosfet, ZeroOrNegativeVdsGivesZero) {
  const Mosfet m(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  EXPECT_DOUBLE_EQ(m.current(0.9_V, 0.0_V).si(), 0.0);
  EXPECT_DOUBLE_EQ(m.current(0.9_V, Volt(-0.1)).si(), 0.0);
}

TEST(Mosfet, SubthresholdIsExponentialNotZero) {
  const Mosfet m(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  const double i1 = m.current(Volt(m.vth().si() - 0.10), 0.9_V).si();
  const double i2 = m.current(Volt(m.vth().si() - 0.20), 0.9_V).si();
  EXPECT_GT(i1, 0.0);
  EXPECT_GT(i2, 0.0);
  EXPECT_GT(i1 / i2, 5.0);  // ~100 mV/decade-ish slope
  EXPECT_LT(i1 / i2, 100.0);
}

TEST(Mosfet, CurrentScalesLinearlyWithWidth) {
  const Mosfet w1(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  const Mosfet w2(DeviceKind::Nmos, VtFlavor::Regular, 0.4, nominal());
  EXPECT_NEAR(w2.current(0.9_V, 0.9_V).si() / w1.current(0.9_V, 0.9_V).si(), 2.0, 1e-9);
}

TEST(Mosfet, LvtConductsMoreAtSameBias) {
  const Mosfet rvt(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  const Mosfet lvt(DeviceKind::Nmos, VtFlavor::LowVt, 0.2, nominal());
  EXPECT_LT(lvt.vth().si(), rvt.vth().si());
  EXPECT_GT(lvt.current(0.5_V, 0.9_V).si(), rvt.current(0.5_V, 0.9_V).si());
}

TEST(Mosfet, PmosWeakerPerMicron) {
  const Mosfet n(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  const Mosfet p(DeviceKind::Pmos, VtFlavor::Regular, 0.2, nominal());
  EXPECT_GT(n.current(0.9_V, 0.9_V).si(), p.current(0.9_V, 0.9_V).si());
}

TEST(Mosfet, CornerOrderingSlowToFast) {
  auto idsat = [](Corner c) {
    OperatingPoint op{Volt(0.9), 25.0, c};
    return Mosfet(DeviceKind::Nmos, VtFlavor::Regular, 0.2, op).current(Volt(0.9), Volt(0.9)).si();
  };
  EXPECT_LT(idsat(Corner::SS), idsat(Corner::NN));
  EXPECT_LT(idsat(Corner::NN), idsat(Corner::FF));
  // NMOS: SF is slow, FS is fast.
  EXPECT_LT(idsat(Corner::SF), idsat(Corner::NN));
  EXPECT_GT(idsat(Corner::FS), idsat(Corner::NN));
}

TEST(Mosfet, PmosCornerAsymmetry) {
  auto idsat = [](Corner c) {
    OperatingPoint op{Volt(0.9), 25.0, c};
    return Mosfet(DeviceKind::Pmos, VtFlavor::Regular, 0.2, op).current(Volt(0.9), Volt(0.9)).si();
  };
  EXPECT_GT(idsat(Corner::SF), idsat(Corner::NN));  // fast PMOS at SF
  EXPECT_LT(idsat(Corner::FS), idsat(Corner::NN));
}

TEST(Mosfet, HotterIsSlowerAtHighOverdrive) {
  OperatingPoint hot{0.9_V, 125.0, Corner::NN};
  const Mosfet cold(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal());
  const Mosfet warm(DeviceKind::Nmos, VtFlavor::Regular, 0.2, hot);
  // At full overdrive, mobility loss dominates the Vth drop.
  EXPECT_LT(warm.current(0.9_V, 0.9_V).si(), cold.current(0.9_V, 0.9_V).si());
  // Near threshold the lower Vth wins (temperature inversion).
  EXPECT_GT(warm.current(0.45_V, 0.9_V).si(), cold.current(0.45_V, 0.9_V).si());
}

TEST(Mosfet, MismatchDeltaShiftsThreshold) {
  const Mosfet fast(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal(), default_process(),
                    Volt(-0.05));
  const Mosfet slow(DeviceKind::Nmos, VtFlavor::Regular, 0.2, nominal(), default_process(),
                    Volt(+0.05));
  EXPECT_NEAR(slow.vth().si() - fast.vth().si(), 0.10, 1e-12);
  EXPECT_GT(fast.current(0.6_V, 0.9_V).si(), slow.current(0.6_V, 0.9_V).si());
}

TEST(Mosfet, PelgromSigmaShrinksWithArea) {
  const double s_small = Mosfet::mismatch_sigma(0.1).si();
  const double s_large = Mosfet::mismatch_sigma(0.4).si();
  EXPECT_NEAR(s_small / s_large, 2.0, 1e-9);  // sqrt(4x area)
  EXPECT_GT(s_small, 0.01);                   // tens of mV for minimum devices
  EXPECT_LT(s_small, 0.06);
}

TEST(Mosfet, RealisticSaturationCurrentDensity) {
  // ~200-600 uA/um at full overdrive is the right 28 nm ballpark.
  const Mosfet m(DeviceKind::Nmos, VtFlavor::Regular, 1.0, nominal());
  const double i = m.current(0.9_V, 0.9_V).si();
  EXPECT_GT(i, 100e-6);
  EXPECT_LT(i, 800e-6);
}

}  // namespace
}  // namespace bpim::circuit
