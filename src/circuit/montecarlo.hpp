#pragma once
// Monte-Carlo driver: runs a per-sample model under mismatch and collects
// either a metric distribution (delay histograms, Fig 2) or a failure rate
// (access-disturb margin, 2.5e-5 target).

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace bpim::circuit {

/// Distribution of a scalar metric over `trials` mismatch samples.
/// `model` draws its own device deltas from the Rng and returns the metric.
[[nodiscard]] SampleSet monte_carlo_metric(const std::function<double(Rng&)>& model,
                                           std::size_t trials, std::uint64_t seed);

struct FailureRateResult {
  std::size_t trials = 0;
  std::size_t failures = 0;
  [[nodiscard]] double rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(trials);
  }
  /// 95% upper Clopper-ish bound (normal approx, floored at 3/N for 0 fails).
  [[nodiscard]] double rate_upper95() const;
};

/// Failure rate of a boolean predicate over `trials` mismatch samples.
[[nodiscard]] FailureRateResult monte_carlo_failure(const std::function<bool(Rng&)>& model,
                                                    std::size_t trials, std::uint64_t seed);

}  // namespace bpim::circuit
