#include "circuit/montecarlo.hpp"

#include <cmath>

namespace bpim::circuit {

SampleSet monte_carlo_metric(const std::function<double(Rng&)>& model, std::size_t trials,
                             std::uint64_t seed) {
  Rng rng(seed);
  SampleSet out;
  out.reserve(trials);
  for (std::size_t i = 0; i < trials; ++i) out.add(model(rng));
  return out;
}

double FailureRateResult::rate_upper95() const {
  if (trials == 0) return 1.0;
  const double n = static_cast<double>(trials);
  if (failures == 0) return 3.0 / n;  // "rule of three"
  const double p = rate();
  return p + 1.645 * std::sqrt(p * (1.0 - p) / n);
}

FailureRateResult monte_carlo_failure(const std::function<bool(Rng&)>& model, std::size_t trials,
                                      std::uint64_t seed) {
  Rng rng(seed);
  FailureRateResult out;
  out.trials = trials;
  for (std::size_t i = 0; i < trials; ++i)
    if (model(rng)) ++out.failures;
  return out;
}

}  // namespace bpim::circuit
