#pragma once
// Tiny fixed-step transient solver for the handful of nodes the behavioural
// circuit models need (bit line + booster mirror node), plus a piecewise-
// linear Waveform used for word-line pulses.
//
// We deliberately avoid a general netlist solver: every circuit in this
// repository has <= 4 nodes and its derivative function is hand-written,
// which keeps the Monte-Carlo loops fast and the physics auditable.

#include <array>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace bpim::circuit {

/// Piecewise-linear waveform: (time, value) breakpoints, held flat outside.
class Waveform {
 public:
  Waveform() = default;

  Waveform& add_point(Second t, Volt v) {
    BPIM_REQUIRE(points_.empty() || t.si() >= points_.back().first,
                 "waveform breakpoints must be time-ordered");
    points_.emplace_back(t.si(), v.si());
    return *this;
  }

  [[nodiscard]] Volt at(Second t) const;

  /// Trapezoidal pulse: 0 before t0, ramps to `level` over `rise`, holds for
  /// `width`, ramps back over `fall`.
  static Waveform pulse(Second t0, Second width, Volt level, Second rise, Second fall);
  /// Constant level from t=0.
  static Waveform constant(Volt level);

 private:
  std::vector<std::pair<double, double>> points_;
};

/// State vector for up to N nodes (values in volts).
template <std::size_t N>
using NodeState = std::array<double, N>;

/// Result of a threshold search on a transient run.
struct CrossingResult {
  bool crossed = false;
  Second time{0.0};
};

/// Integrates dv/dt = f(t, v) with Heun's method (RK2) at fixed step `dt`
/// until `t_end`, calling `observer(t, v)` after every step. f receives and
/// returns volts/seconds as raw doubles for speed.
template <std::size_t N, class Deriv, class Observer>
void integrate(Deriv&& f, NodeState<N>& v, Second t_end, Second dt, Observer&& observer) {
  const double h = dt.si();
  const double tend = t_end.si();
  NodeState<N> k1{}, k2{}, pred{};
  for (double t = 0.0; t < tend; t += h) {
    f(t, v, k1);
    for (std::size_t i = 0; i < N; ++i) pred[i] = v[i] + h * k1[i];
    f(t + h, pred, k2);
    for (std::size_t i = 0; i < N; ++i) v[i] += 0.5 * h * (k1[i] + k2[i]);
    observer(t + h, v);
  }
}

/// Convenience: integrate until node `watch` falls below `threshold` (volts),
/// returning the (linearly interpolated) crossing time.
template <std::size_t N, class Deriv>
CrossingResult integrate_until_below(Deriv&& f, NodeState<N> v, std::size_t watch, Volt threshold,
                                     Second t_end, Second dt) {
  BPIM_REQUIRE(watch < N, "watch node out of range");
  CrossingResult out;
  double prev_t = 0.0;
  double prev_v = v[watch];
  integrate<N>(std::forward<Deriv>(f), v, t_end, dt, [&](double t, const NodeState<N>& state) {
    if (!out.crossed && state[watch] < threshold.si()) {
      // Linear interpolation between the previous and current sample.
      const double dv = state[watch] - prev_v;
      const double frac = dv != 0.0 ? (threshold.si() - prev_v) / dv : 1.0;
      out.crossed = true;
      out.time = Second(prev_t + frac * (t - prev_t));
    }
    prev_t = t;
    prev_v = state[watch];
  });
  return out;
}

}  // namespace bpim::circuit
