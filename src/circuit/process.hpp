#pragma once
// 28 nm-class process description: corners, operating point, and the global
// device parameters every behavioural model draws from.
//
// This is a *behavioural* stand-in for a PDK. Numbers are generic 28 nm HKMG
// textbook values; the paper-facing results are either calibrated to the
// paper's anchors (see energy/ and timing/freq_model) or reported as shape
// comparisons (distributions, corner ratios).

#include <array>
#include <string>

#include "common/units.hpp"

namespace bpim::circuit {

/// Process corner, named NMOS-first: FS = fast NMOS / slow PMOS.
enum class Corner { SS, SF, NN, FS, FF };

[[nodiscard]] const char* to_string(Corner c);

/// All five corners in the order the paper plots them (Fig. 7a).
inline constexpr std::array<Corner, 5> kAllCorners{Corner::SF, Corner::SS, Corner::NN,
                                                   Corner::FS, Corner::FF};

enum class DeviceKind { Nmos, Pmos };
enum class VtFlavor { Regular, LowVt };

/// Global supply / temperature / corner context for a simulation.
struct OperatingPoint {
  Volt vdd{0.9};
  double temp_c = 25.0;
  Corner corner = Corner::NN;
};

/// Static process parameters (NN, 25 C) plus corner/temperature modifiers.
struct ProcessParams {
  // Nominal threshold voltages.
  Volt vth_n{0.42};
  Volt vth_p{0.44};
  /// LVT devices sit ~110 mV below regular Vt (used by the BL booster).
  Volt lvt_offset{0.11};

  /// Saturation transconductance at 1 V overdrive for a 1 um wide device.
  /// (alpha-power-law k in I = k * W * (Vgs-Vth)^alpha).
  double kp_n_a_per_um = 5.5e-4;
  double kp_p_a_per_um = 2.6e-4;

  /// Velocity-saturation exponent (Sakurai-Newton alpha, 28 nm short channel).
  double alpha_n = 1.28;
  double alpha_p = 1.35;

  /// Vdsat = vdsat_frac * (Vgs - Vth).
  double vdsat_frac = 0.82;

  /// Subthreshold slope factor n (swing = n * kT/q * ln10) and leak floor.
  double subvt_n_factor = 1.45;
  double ioff_a_per_um = 1.5e-9;

  /// Corner Vth shift magnitude (applied +/- per corner and device kind).
  Volt corner_vth_shift{0.045};
  /// Corner transconductance multiplier (fast = *1.08, slow = /1.08).
  double corner_kp_factor = 1.08;

  /// Vth temperature coefficient (V/K, negative: Vth drops when hot).
  double vth_tempco_v_per_k = -0.9e-3;
  /// Mobility degradation with temperature: kp *= (T/T0)^mobility_temp_exp.
  double mobility_temp_exp = -1.35;

  /// Pelgrom mismatch coefficient: sigma_Vth = avt / sqrt(W*L) (V*um).
  double avt_v_um = 1.6e-3;
  /// Drawn channel length (um) used in the Pelgrom denominator.
  double lmin_um = 0.030;
};

/// Default parameter set shared by the whole repository.
[[nodiscard]] const ProcessParams& default_process();

/// Signed corner direction for a device kind: +1 = slow (higher Vt), -1 = fast.
[[nodiscard]] int corner_sign(Corner c, DeviceKind kind);

/// Thermal voltage kT/q at the operating temperature.
[[nodiscard]] Volt thermal_voltage(double temp_c);

}  // namespace bpim::circuit
