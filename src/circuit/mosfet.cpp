#include "circuit/mosfet.hpp"

#include <cmath>

#include "common/require.hpp"

namespace bpim::circuit {

Mosfet::Mosfet(DeviceKind kind, VtFlavor flavor, double w_um, const OperatingPoint& op,
               const ProcessParams& p, Volt vth_delta)
    : kind_(kind), w_um_(w_um) {
  BPIM_REQUIRE(w_um > 0.0, "device width must be positive");

  const bool is_n = kind == DeviceKind::Nmos;
  double vth = (is_n ? p.vth_n : p.vth_p).si();
  if (flavor == VtFlavor::LowVt) vth -= p.lvt_offset.si();

  // Corner: slow = higher Vt and weaker kp.
  const int sign = corner_sign(op.corner, kind);
  vth += sign * p.corner_vth_shift.si();
  double kp = is_n ? p.kp_n_a_per_um : p.kp_p_a_per_um;
  if (sign > 0) kp /= p.corner_kp_factor;
  if (sign < 0) kp *= p.corner_kp_factor;

  // Temperature: Vth drops when hot, mobility degrades.
  const double dt = op.temp_c - 25.0;
  vth += p.vth_tempco_v_per_k * dt;
  kp *= std::pow((op.temp_c + 273.15) / (25.0 + 273.15), p.mobility_temp_exp);

  vth_ = Volt(vth + vth_delta.si());
  kp_ = kp;
  alpha_ = is_n ? p.alpha_n : p.alpha_p;
  vdsat_frac_ = p.vdsat_frac;
  // EKV-style smoothing temperature scale: n * kT/q. The resulting
  // subthreshold swing is ln(10)*s/alpha per decade (~70 mV/dec here).
  subvt_swing_ = p.subvt_n_factor * thermal_voltage(op.temp_c).si();
  ioff_ = p.ioff_a_per_um;
}

Ampere Mosfet::current(Volt vgs, Volt vds) const {
  double vds_v = vds.si();
  if (vds_v <= 0.0) return Ampere(0.0);
  if (vds_v > 1.5) vds_v = 1.5;  // clamp far beyond any operating supply

  // EKV interpolation of the overdrive: smooth transition from exponential
  // subthreshold conduction to the alpha-power strong-inversion law.
  const double vov = vgs.si() - vth_.si();
  const double s = subvt_swing_;
  double veff;
  const double x = vov / s;
  if (x > 40.0) {
    veff = vov;
  } else if (x < -40.0) {
    return Ampere(0.0);
  } else {
    veff = s * std::log1p(std::exp(x));
  }
  if (veff <= 0.0) return Ampere(0.0);

  const double isat = kp_ * w_um_ * std::pow(veff, alpha_);
  const double vdsat = vdsat_frac_ * veff;
  if (vds_v >= vdsat) return Ampere(isat);
  const double xd = vds_v / vdsat;
  return Ampere(isat * (2.0 - xd) * xd);
}

Volt Mosfet::mismatch_sigma(double w_um, const ProcessParams& p) {
  BPIM_REQUIRE(w_um > 0.0, "device width must be positive");
  return Volt(p.avt_v_um / std::sqrt(w_um * p.lmin_um));
}

}  // namespace bpim::circuit
