#pragma once
// Alpha-power-law MOSFET (Sakurai-Newton) with a subthreshold tail.
//
// Good enough for the three questions the paper's circuit figures ask:
//   * how fast does a cell/booster discharge a bit line (Fig 2, 7a),
//   * how does that delay move across corners and supply (Fig 7a, 8),
//   * how does Vth mismatch spread the delay distribution (Fig 2).
//
// I(Vgs, Vds) =
//   subthreshold:  Ioff * W * 10^((Vgs-Vth)/S)            , Vgs <= Vth
//   saturation:    k * W * (Vgs-Vth)^alpha                , Vds >= Vdsat
//   triode:        Isat * (2 - x) * x, x = Vds/Vdsat      , Vds <  Vdsat
//
// Voltages are device-local magnitudes: pass Vgs/Vds as positive overdrive
// for both NMOS and PMOS (callers flip signs for PMOS).

#include "circuit/process.hpp"
#include "common/units.hpp"

namespace bpim::circuit {

class Mosfet {
 public:
  /// A device of width `w_um` under a given operating point. `vth_delta`
  /// injects Monte-Carlo mismatch (added to the effective threshold).
  Mosfet(DeviceKind kind, VtFlavor flavor, double w_um, const OperatingPoint& op,
         const ProcessParams& p = default_process(), Volt vth_delta = Volt(0.0));

  /// Drain current magnitude for gate-source / drain-source magnitudes.
  [[nodiscard]] Ampere current(Volt vgs, Volt vds) const;

  /// Effective threshold after flavor, corner, temperature and mismatch.
  [[nodiscard]] Volt vth() const { return vth_; }
  [[nodiscard]] double width_um() const { return w_um_; }
  [[nodiscard]] DeviceKind kind() const { return kind_; }

  /// Pelgrom sigma for this device geometry.
  [[nodiscard]] static Volt mismatch_sigma(double w_um, const ProcessParams& p = default_process());

 private:
  DeviceKind kind_;
  double w_um_;
  Volt vth_;
  double kp_;        // A/um at 1 V overdrive, corner/temperature adjusted
  double alpha_;
  double vdsat_frac_;
  double subvt_swing_;  // V/decade
  double ioff_;         // A/um
};

}  // namespace bpim::circuit
