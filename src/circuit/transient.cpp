#include "circuit/transient.hpp"

namespace bpim::circuit {

Volt Waveform::at(Second t) const {
  if (points_.empty()) return Volt(0.0);
  const double x = t.si();
  if (x <= points_.front().first) return Volt(points_.front().second);
  if (x >= points_.back().first) return Volt(points_.back().second);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (x <= points_[i].first) {
      const auto& [t0, v0] = points_[i - 1];
      const auto& [t1, v1] = points_[i];
      if (t1 == t0) return Volt(v1);
      const double frac = (x - t0) / (t1 - t0);
      return Volt(v0 + frac * (v1 - v0));
    }
  }
  return Volt(points_.back().second);
}

Waveform Waveform::pulse(Second t0, Second width, Volt level, Second rise, Second fall) {
  Waveform w;
  w.add_point(Second(0.0), Volt(0.0));
  w.add_point(t0, Volt(0.0));
  w.add_point(t0 + rise, level);
  w.add_point(t0 + rise + width, level);
  w.add_point(t0 + rise + width + fall, Volt(0.0));
  return w;
}

Waveform Waveform::constant(Volt level) {
  Waveform w;
  w.add_point(Second(0.0), level);
  return w;
}

}  // namespace bpim::circuit
