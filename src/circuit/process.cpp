#include "circuit/process.hpp"

namespace bpim::circuit {

const char* to_string(Corner c) {
  switch (c) {
    case Corner::SS: return "SS";
    case Corner::SF: return "SF";
    case Corner::NN: return "NN";
    case Corner::FS: return "FS";
    case Corner::FF: return "FF";
  }
  return "??";
}

const ProcessParams& default_process() {
  static const ProcessParams params{};
  return params;
}

int corner_sign(Corner c, DeviceKind kind) {
  // Corner naming is NMOS-first: SF = slow NMOS, fast PMOS.
  switch (c) {
    case Corner::NN: return 0;
    case Corner::SS: return +1;
    case Corner::FF: return -1;
    case Corner::SF: return kind == DeviceKind::Nmos ? +1 : -1;
    case Corner::FS: return kind == DeviceKind::Nmos ? -1 : +1;
  }
  return 0;
}

Volt thermal_voltage(double temp_c) {
  constexpr double k_boltzmann = 1.380649e-23;
  constexpr double q_electron = 1.602177e-19;
  return Volt(k_boltzmann * (temp_c + 273.15) / q_electron);
}

}  // namespace bpim::circuit
