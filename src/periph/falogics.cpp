#include "periph/falogics.hpp"

namespace bpim::periph {

const char* to_string(LogicFn fn) {
  switch (fn) {
    case LogicFn::And: return "AND";
    case LogicFn::Nand: return "NAND";
    case LogicFn::Or: return "OR";
    case LogicFn::Nor: return "NOR";
    case LogicFn::Xor: return "XOR";
    case LogicFn::Xnor: return "XNOR";
    case LogicFn::PassA: return "PASS";
    case LogicFn::NotA: return "NOT";
  }
  return "??";
}

BitVector FaLogics::xor_bits(const array::BlReadout& r) { return ~(r.bl_and | r.bl_nor); }

BitVector FaLogics::xnor_bits(const array::BlReadout& r) { return r.bl_and | r.bl_nor; }

BitVector FaLogics::logic(const array::BlReadout& r, LogicFn fn) {
  switch (fn) {
    case LogicFn::And: return r.bl_and;
    case LogicFn::Nand: return ~r.bl_and;
    case LogicFn::Or: return ~r.bl_nor;
    case LogicFn::Nor: return r.bl_nor;
    case LogicFn::Xor: return xor_bits(r);
    case LogicFn::Xnor: return xnor_bits(r);
    case LogicFn::PassA: return r.bl_and;  // single-WL: BLT carries A
    case LogicFn::NotA: return r.bl_nor;   // single-WL: BLB carries ~A
  }
  return r.bl_and;
}

namespace {

// a + b + cin (cin in {0,1}) with carry-out, without __int128.
inline std::uint64_t addc_u64(std::uint64_t a, std::uint64_t b, std::uint64_t cin,
                              std::uint64_t& sum) {
  const std::uint64_t t = a + cin;
  sum = t + b;
  return static_cast<std::uint64_t>((t < cin) | (sum < b));
}

// Fast path: fields of `precision` bits never straddle a storage word
// (precision divides 64), so every word is one partitioned addition.
void add_swar(const array::BlReadout& r, unsigned precision, bool carry_in, AddResult& out) {
  // P = A&B and Q = A|B add exactly like A and B (see header).
  const std::uint64_t lsb = BitVector::periodic_mask(precision);
  const std::uint64_t msb = lsb << (precision - 1);
  const std::uint64_t cin_m = carry_in ? lsb : 0;
  for (std::size_t k = 0; k < out.sum.word_count(); ++k) {
    const std::uint64_t p = r.bl_and.word(k);
    const std::uint64_t q = ~r.bl_nor.word(k);  // garbage past size() is above every field
    // Clearing the field MSBs keeps every partial add inside its field; the
    // MSB sum bits are xor-ed back in, the MSB carry-out is the majority.
    const std::uint64_t s_low = (p & ~msb) + (q & ~msb) + cin_m;
    const std::uint64_t sum = s_low ^ ((p ^ q) & msb);
    const std::uint64_t c_in = p ^ q ^ sum;  // carry INTO each stage
    const std::uint64_t c_msb = ((p & q) | ((p | q) & c_in)) & msb;
    // Stage n's carry-out is stage n+1's carry-in, except at field MSBs
    // (where >>1 would smear the next field's seed across the boundary).
    const std::uint64_t carry = ((c_in >> 1) & ~msb) | c_msb;
    out.sum.set_word(k, sum);
    out.carry.set_word(k, carry);
    out.word_carry.set_word(k, c_msb);
  }
}

// General path (precision does not divide 64, or exceeds it): walk each
// field in 64-bit chunks, propagating the carry between chunks. Still
// word-at-a-time -- only the chunk bookkeeping is scalar.
void add_chunked(const array::BlReadout& r, unsigned precision, bool carry_in, AddResult& out) {
  const std::size_t width = r.bl_and.size();
  for (std::size_t base = 0; base < width; base += precision) {
    std::uint64_t c = carry_in ? 1 : 0;
    for (std::size_t o = 0; o < precision; o += 64) {
      const std::size_t len = precision - o < 64 ? precision - o : 64;
      const std::uint64_t mask = len == 64 ? ~0ull : (1ull << len) - 1;
      const std::uint64_t p = r.bl_and.extract_bits(base + o, len);
      const std::uint64_t q = ~r.bl_nor.extract_bits(base + o, len) & mask;
      std::uint64_t sum = 0;
      std::uint64_t cout = 0;
      if (len == 64) {
        cout = addc_u64(p, q, c, sum);
      } else {
        sum = p + q + c;
        cout = (sum >> len) & 1u;
        sum &= mask;
      }
      const std::uint64_t c_in = p ^ q ^ sum;
      const std::uint64_t carry = ((c_in >> 1) & (mask >> 1)) | (cout << (len - 1));
      out.sum.deposit_bits(base + o, len, sum);
      out.carry.deposit_bits(base + o, len, carry);
      c = cout;
    }
    out.word_carry.set(base + precision - 1, c != 0);
  }
}

}  // namespace

void FaLogics::add_into(const array::BlReadout& r, unsigned precision, bool carry_in,
                        AddResult& out) {
  const std::size_t width = r.bl_and.size();
  BPIM_REQUIRE(precision >= 1, "precision must be at least 1 bit");
  BPIM_REQUIRE(width % precision == 0, "precision must divide the row width");
  out.sum.reset(width);
  out.carry.reset(width);
  out.word_carry.reset(width);
  if (width == 0) return;
  if (precision <= 64 && 64 % precision == 0)
    add_swar(r, precision, carry_in, out);
  else
    add_chunked(r, precision, carry_in, out);
}

AddResult FaLogics::add(const array::BlReadout& r, unsigned precision, bool carry_in) {
  AddResult out;
  add_into(r, precision, carry_in, out);
  return out;
}

}  // namespace bpim::periph
