#include "periph/falogics.hpp"

namespace bpim::periph {

const char* to_string(LogicFn fn) {
  switch (fn) {
    case LogicFn::And: return "AND";
    case LogicFn::Nand: return "NAND";
    case LogicFn::Or: return "OR";
    case LogicFn::Nor: return "NOR";
    case LogicFn::Xor: return "XOR";
    case LogicFn::Xnor: return "XNOR";
    case LogicFn::PassA: return "PASS";
    case LogicFn::NotA: return "NOT";
  }
  return "??";
}

BitVector FaLogics::xor_bits(const array::BlReadout& r) { return ~(r.bl_and | r.bl_nor); }

BitVector FaLogics::xnor_bits(const array::BlReadout& r) { return r.bl_and | r.bl_nor; }

BitVector FaLogics::logic(const array::BlReadout& r, LogicFn fn) {
  switch (fn) {
    case LogicFn::And: return r.bl_and;
    case LogicFn::Nand: return ~r.bl_and;
    case LogicFn::Or: return ~r.bl_nor;
    case LogicFn::Nor: return r.bl_nor;
    case LogicFn::Xor: return xor_bits(r);
    case LogicFn::Xnor: return xnor_bits(r);
    case LogicFn::PassA: return r.bl_and;  // single-WL: BLT carries A
    case LogicFn::NotA: return r.bl_nor;   // single-WL: BLB carries ~A
  }
  return r.bl_and;
}

AddResult FaLogics::add(const array::BlReadout& r, unsigned precision, bool carry_in) {
  const std::size_t width = r.bl_and.size();
  BPIM_REQUIRE(precision >= 1, "precision must be at least 1 bit");
  BPIM_REQUIRE(width % precision == 0, "precision must divide the row width");

  const BitVector x = xor_bits(r);
  const BitVector n = xnor_bits(r);
  const BitVector& a_and = r.bl_and;
  const BitVector a_or = ~r.bl_nor;

  AddResult out{BitVector(width), BitVector(width), BitVector(width)};
  bool c = carry_in;
  for (std::size_t i = 0; i < width; ++i) {
    if (i % precision == 0) c = carry_in;  // MX3 cuts the chain at boundaries
    // Carry-select: both candidates precomputed, carry picks one.
    const bool s = c ? n.get(i) : x.get(i);
    const bool c_next = c ? a_or.get(i) : a_and.get(i);
    out.sum.set(i, s);
    out.carry.set(i, c_next);
    if ((i + 1) % precision == 0) out.word_carry.set(i, c_next);
    c = c_next;
  }
  return out;
}

}  // namespace bpim::periph
