#pragma once
// Functional model of the column-peripheral "FA-Logics" block (paper Fig 3).
//
// Inputs per column are the two single-ended SA outputs of a BL compute:
//   bl_and = A AND B   (BLT survives only if no accessed cell stores 0)
//   bl_nor = NOR(A,B)  (BLB survives only if no accessed cell stores 1)
// (single-WL accesses give bl_and = A, bl_nor = NOT A).
//
// From these, four transmission gates, an OR gate and three inverters derive
// every 2-input logic function, and the carry-select full adder of the
// paper's eq. (1)-(2) computes sums:
//
//   S[n]    = C[n-1] ? XNOR(A,B)[n] : XOR(A,B)[n]
//   C[n]    = C[n-1] ? (A|B)[n]     : (A&B)[n]
//
// Both candidate pairs exist before the carry arrives, so the ripple path is
// one transmission-gate mux per bit (the 1.8-2.2x critical-path win of
// Fig 7b; timing lives in timing/fa_timing).
//
// The carry chain spans the whole row of peripheral units; MX3 switches cut
// it at every `precision` boundary so the row computes cols/precision
// independent words per cycle (the reconfigurable bit-precision of Fig 6).
//
// The model evaluates the whole chain word-parallel (SWAR): the carry-select
// recurrence above is exactly binary addition of P = bl_and and Q = ~bl_nor
// (P+Q = A+B with the identical carry chain, since P^Q = A^B and P&Q = A&B),
// so one partitioned 64-bit add per storage word -- field-MSB masks cut the
// carries at precision boundaries exactly like the MX3 mux -- replaces the
// seed's per-bit ripple loop. The per-bit carry vector is recovered from the
// adder identity carries_in = a ^ b ^ sum. Bit-identical to the per-bit
// reference (baseline/naive_datapath, checked by tests/test_hot_path_diff).

#include "array/sram_array.hpp"
#include "common/bitvec.hpp"

namespace bpim::periph {

/// Logic functions the Y-path can emit in one cycle (Table 1, logic group).
enum class LogicFn { And, Nand, Or, Nor, Xor, Xnor, PassA, NotA };

[[nodiscard]] const char* to_string(LogicFn fn);

/// Result of the segmented carry-select addition across a row.
struct AddResult {
  BitVector sum;        ///< per-column sum bits
  BitVector carry;      ///< per-column carry-out bits (C[n] of every stage)
  BitVector word_carry; ///< carry-out of each word, packed at the word's MSB column
};

class FaLogics {
 public:
  /// Emit a logic function of the accessed row(s) from the SA outputs.
  [[nodiscard]] static BitVector logic(const array::BlReadout& r, LogicFn fn);

  /// Segmented ripple (carry-select) addition. `precision` must divide the
  /// readout width; `carry_in` seeds every word segment (1 implements the
  /// +1 of two's-complement subtraction).
  [[nodiscard]] static AddResult add(const array::BlReadout& r, unsigned precision,
                                     bool carry_in);

  /// As add(), but reuses `out`'s storage -- the MULT sequencer calls this
  /// once per iteration and must not allocate three fresh vectors each time.
  static void add_into(const array::BlReadout& r, unsigned precision, bool carry_in,
                       AddResult& out);

  /// XOR derived from the two SA outputs: ~(bl_and | bl_nor).
  [[nodiscard]] static BitVector xor_bits(const array::BlReadout& r);
  /// XNOR: bl_and | bl_nor.
  [[nodiscard]] static BitVector xnor_bits(const array::BlReadout& r);
};

}  // namespace bpim::periph
