#pragma once
// Multi-memory scale-out: N independent ImcMemory + ExecutionEngine pairs
// behind one placement policy -- the NUMA-style tier the ROADMAP called for.
//
// Each memory models one NUMA node: its own SRAM arrays, RNG streams,
// energy ledgers, and engine thread pool. Nodes never share mutable state,
// so sub-batches dispatched to distinct memories may execute concurrently
// on the host, and in the cycle model the memories always run in parallel
// (the serving makespan is the busiest memory's cycle total).
//
// The pool does not schedule; serve::Server's scheduler coalesces requests
// exactly as on a single memory, then asks place() which memory each
// per-memory sub-batch of the dispatch group should run on:
//
//   RoundRobin        rotate through the memories; oblivious but fair.
//   LeastLoaded       pick the memory with the fewest modeled cycles
//                     dispatched so far (in-group assignments are charged an
//                     estimate immediately, so one group spreads out).
//   StickyByOperand   hash of the sub-batch head's operand bytes; repeated
//                     weight rows land on the same memory, the affinity a
//                     persistent-residency tier needs.
//
// Placement never changes results: every op runs the same chunk walk on
// whichever memory it lands on, and the nodes are configuration-identical.
// Disturb injection would break that (per-node RNG streams diverge), so the
// pool refuses it at construction; run injected-disturb experiments on a
// single memory. Bit-identity to serial single-memory execution is asserted
// by tests/test_memory_pool.cpp.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "engine/execution_engine.hpp"
#include "macro/memory.hpp"

namespace bpim::serve {

enum class Placement { RoundRobin, LeastLoaded, StickyByOperand };

[[nodiscard]] const char* to_string(Placement p);

struct MemoryPoolConfig {
  std::size_t memories = 1;
  /// Per-node memory shape; every node is built from this config (node i
  /// additionally gets seed_offset = i * 1'000'000 to decorrelate disturb
  /// streams across nodes).
  macro::MemoryConfig memory{};
  /// Engine worker threads per node; 0 divides the hardware threads evenly
  /// across the nodes (at least one each).
  std::size_t threads_per_memory = 0;
  Placement placement = Placement::LeastLoaded;
};

class MemoryPool {
 public:
  /// Owning: build `memories` identical nodes from the config.
  explicit MemoryPool(const MemoryPoolConfig& cfg);
  /// Non-owning: wrap caller-owned engines (which must outlive the pool and
  /// be shape-identical -- same macro count and rows).
  MemoryPool(std::vector<engine::ExecutionEngine*> engines, Placement placement);

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  [[nodiscard]] std::size_t size() const { return engines_.size(); }
  [[nodiscard]] engine::ExecutionEngine& engine(std::size_t i) const;
  [[nodiscard]] Placement placement() const { return placement_; }

  /// Row pairs available per memory -- the residency budget of one
  /// sub-batch (identical across nodes; enforced at construction).
  [[nodiscard]] std::size_t row_pair_capacity() const;
  /// Row-pair layers `op` occupies (same on every node).
  [[nodiscard]] std::size_t layers_for(const engine::VecOp& op) const;
  /// Row-pair layers pinned operands currently hold on memory `m` (what
  /// the coalescer subtracts from row_pair_capacity() when budgeting
  /// transient operands).
  [[nodiscard]] std::size_t resident_layers(std::size_t m) const;
  /// The largest resident set across the pool: the conservative per-memory
  /// transient budget for sub-batches whose placement is still open.
  [[nodiscard]] std::size_t max_resident_layers() const;

  /// One sub-batch of a dispatch group, as the placement policy sees it.
  struct Slot {
    std::size_t layers = 0;        ///< summed row-pair layers
    std::uint64_t operand_hash = 0;  ///< hash of the head op's operands
    /// Memory holding the sub-batch's resident operands; when set the
    /// placement policy has no choice -- the requests must run there.
    std::optional<std::size_t> home;
  };

  /// Assign each slot of one dispatch group a memory index. Deterministic
  /// for a given pool history. Scheduler-thread only.
  [[nodiscard]] std::vector<std::size_t> place(const std::vector<Slot>& group)
      BPIM_EXCLUDES(mutex_);

  /// Completion feedback: `pipelined_cycles` ran on memory `mem`. Keeps the
  /// least-loaded account honest. Called concurrently from the server's
  /// lane workers as each sub-batch finishes; the load account is
  /// mutex-guarded (unlike rr_next_, which really is scheduler-only).
  void on_batch_done(std::size_t mem, std::size_t layers, std::uint64_t pipelined_cycles)
      BPIM_EXCLUDES(mutex_);

  /// Cumulative modeled pipelined cycles dispatched per memory (snapshot;
  /// callable from any thread).
  [[nodiscard]] std::vector<std::uint64_t> dispatched_cycles() const BPIM_EXCLUDES(mutex_);

 private:
  /// One NUMA node. Owning pools populate memory/owned_engine; non-owning
  /// pools only set engine.
  struct Node {
    std::unique_ptr<macro::ImcMemory> memory;
    std::unique_ptr<engine::ExecutionEngine> owned_engine;
    engine::ExecutionEngine* engine = nullptr;
  };

  void check_homogeneous() const;

  std::vector<Node> nodes_;
  std::vector<engine::ExecutionEngine*> engines_;  ///< flat view, index == memory id
  Placement placement_ = Placement::LeastLoaded;
  std::size_t rr_next_ = 0;  ///< RoundRobin cursor (scheduler-thread only)
  /// Guards the load account (written by the scheduler and lane workers,
  /// read by stats).
  mutable Mutex mutex_;
  /// Completed pipelined cycles per memory.
  std::vector<std::uint64_t> load_cycles_ BPIM_GUARDED_BY(mutex_);
  /// Across memories, for the in-flight estimate.
  std::uint64_t total_cycles_ BPIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_layers_ BPIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace bpim::serve
