#include "serve/admission_queue.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace bpim::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  BPIM_REQUIRE(capacity > 0, "admission queue capacity must be positive");
}

bool AdmissionQueue::push(detail::Ticket&& t) {
  MutexLock lk(mutex_);
  while (!closed_ && queue_.size() >= capacity_) not_full_.wait(mutex_);
  if (closed_) return false;
  queue_.push_back(std::move(t));
  peak_depth_ = std::max(peak_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return true;
}

bool AdmissionQueue::try_push(detail::Ticket&& t) {
  {
    MutexLock lk(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(t));
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

bool AdmissionQueue::wait_pop_all(std::vector<detail::Ticket>& out,
                                  std::chrono::microseconds coalesce_window,
                                  std::size_t fill_target) {
  MutexLock lk(mutex_);
  for (;;) {
    // Closed overrides pause: shutdown must drain even a paused queue.
    while (!closed_ && (paused_ || queue_.empty())) not_empty_.wait(mutex_);
    if (queue_.empty()) return false;  // closed and fully drained
    if (coalesce_window.count() > 0 && !closed_ && queue_.size() < fill_target) {
      const auto until = Clock::now() + coalesce_window;
      while (!closed_ && !paused_ && queue_.size() < fill_target) {
        if (not_empty_.wait_until(mutex_, until) == std::cv_status::timeout) break;
      }
    }
    // A pause landing mid-linger freezes the drain too: back to the outer
    // wait so the stage-then-release contract holds.
    if (paused_ && !closed_) continue;
    drain_locked(out);
    return true;
  }
}

void AdmissionQueue::try_pop_all(std::vector<detail::Ticket>& out) {
  MutexLock lk(mutex_);
  if (paused_ && !closed_) return;
  drain_locked(out);
}

void AdmissionQueue::drain_locked(std::vector<detail::Ticket>& out) {
  if (queue_.empty()) return;
  out.reserve(out.size() + queue_.size());
  for (auto& t : queue_) out.push_back(std::move(t));
  queue_.clear();
  not_full_.notify_all();
}

void AdmissionQueue::close() {
  {
    MutexLock lk(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool AdmissionQueue::closed() const {
  MutexLock lk(mutex_);
  return closed_;
}

void AdmissionQueue::set_paused(bool paused) {
  {
    MutexLock lk(mutex_);
    paused_ = paused;
  }
  if (!paused) not_empty_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  MutexLock lk(mutex_);
  return queue_.size();
}

std::size_t AdmissionQueue::peak_depth() const {
  MutexLock lk(mutex_);
  return peak_depth_;
}

}  // namespace bpim::serve
