#include "serve/admission_queue.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace bpim::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  BPIM_REQUIRE(capacity > 0, "admission queue capacity must be positive");
}

bool AdmissionQueue::push(detail::Ticket&& t) {
  std::unique_lock lk(mutex_);
  not_full_.wait(lk, [&] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(std::move(t));
  peak_depth_ = std::max(peak_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return true;
}

bool AdmissionQueue::try_push(detail::Ticket&& t) {
  {
    std::lock_guard lk(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(t));
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

bool AdmissionQueue::wait_pop_all(std::vector<detail::Ticket>& out,
                                  std::chrono::microseconds coalesce_window,
                                  std::size_t fill_target) {
  std::unique_lock lk(mutex_);
  for (;;) {
    // Closed overrides pause: shutdown must drain even a paused queue.
    not_empty_.wait(lk, [&] { return closed_ || (!paused_ && !queue_.empty()); });
    if (queue_.empty()) return false;  // closed and fully drained
    if (coalesce_window.count() > 0 && !closed_ && queue_.size() < fill_target) {
      const auto until = Clock::now() + coalesce_window;
      not_empty_.wait_until(lk, until, [&] {
        return closed_ || paused_ || queue_.size() >= fill_target;
      });
    }
    // A pause landing mid-linger freezes the drain too: back to the outer
    // wait so the stage-then-release contract holds.
    if (paused_ && !closed_) continue;
    drain_locked(out);
    return true;
  }
}

void AdmissionQueue::try_pop_all(std::vector<detail::Ticket>& out) {
  std::lock_guard lk(mutex_);
  if (paused_ && !closed_) return;
  drain_locked(out);
}

void AdmissionQueue::drain_locked(std::vector<detail::Ticket>& out) {
  if (queue_.empty()) return;
  out.reserve(out.size() + queue_.size());
  for (auto& t : queue_) out.push_back(std::move(t));
  queue_.clear();
  not_full_.notify_all();
}

void AdmissionQueue::close() {
  {
    std::lock_guard lk(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard lk(mutex_);
  return closed_;
}

void AdmissionQueue::set_paused(bool paused) {
  {
    std::lock_guard lk(mutex_);
    paused_ = paused;
  }
  if (!paused) not_empty_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard lk(mutex_);
  return queue_.size();
}

std::size_t AdmissionQueue::peak_depth() const {
  std::lock_guard lk(mutex_);
  return peak_depth_;
}

}  // namespace bpim::serve
