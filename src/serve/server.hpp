#pragma once
// Batched request serving in front of the execution tier.
//
//   clients --submit()--> [bounded admission queue] --> scheduler thread
//                                                          |  coalesce
//                                                          v  + place
//                                  memory 0 .. memory N-1 (MemoryPool)
//                                  ExecutionEngine::run_batch on each
//
// Many client threads submit vector ops; a single scheduler thread drains
// the admission queue and coalesces *compatible* requests -- same kind and
// precision (and logic function) -- into one dispatch group. On a
// single-memory server the group is one run_batch call, as before. Over a
// serve::MemoryPool the group's layer budget is N memories' worth: a group
// whose summed row-pair layers exceed a single array's residency budget is
// split into per-memory sub-batches, placed by the pool's policy
// (round-robin / least-loaded / sticky-by-operand-hash), and sub-batches on
// distinct memories execute concurrently. Operands pinned through pin()
// constrain both sides of that math: the coalescer budgets transient
// layers against capacity minus the pinned set, and a request referencing
// a handle is routed to the memory that holds it (the pin-per-memory
// registry; pin placement itself is by operand hash, so identical weights
// always pin to the same node). Within the backlog the scheduler
// serves strictly by (priority desc, admission order); deadlines are
// re-checked with a fresh clock at batch-build time, so a request that
// expired while held in the coalesce window or while an earlier batch ran
// fails with DeadlineExceeded instead of executing.
//
// Results are bit-identical to submitting each op alone through a serial
// engine on one memory: run_batch executes ops one after another with the
// same per-op chunk walk, per-op results do not depend on what ran before,
// and every pool memory is shape-identical. Coalescing and placement change
// only the batch-level cycle account, never a client's values or RunStats.
//
// Exactly one thread (the scheduler) owns scheduling state; sub-batch
// worker threads it spawns touch only their own memory's engine. Clients
// only rendezvous through the queue and their futures. stop() (and the
// destructor) closes admission, drains everything already accepted, and
// joins -- no accepted future is ever abandoned.

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "engine/execution_engine.hpp"
#include "obs/trace.hpp"
#include "serve/admission_queue.hpp"
#include "serve/memory_pool.hpp"
#include "serve/request.hpp"
#include "serve/serve_stats.hpp"

namespace bpim::serve {

class Server {
 public:
  /// Single-memory server: wraps the engine in a non-owning pool of one.
  /// The engine (and its memory) must outlive the server; the server is the
  /// engine's only user while running.
  explicit Server(engine::ExecutionEngine& eng, ServerConfig cfg = {});
  /// Multi-memory server: route dispatch groups across the pool. The pool
  /// must outlive the server; the server is its only user while running.
  explicit Server(MemoryPool& pool, ServerConfig cfg = {});
  ~Server();  ///< stop()s: drains accepted work, then joins.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one op; blocks while the queue is full (backpressure). Operands
  /// are copied, so the caller's buffers may be freed on return. The future
  /// yields the op's OpResult, or throws DeadlineExceeded / ServerStopped.
  /// Throws std::invalid_argument on malformed ops (mismatched lengths,
  /// unsupported precision, vector exceeding memory capacity) and
  /// ServerStopped after stop().
  [[nodiscard]] std::future<engine::OpResult> submit(const engine::VecOp& op,
                                                     SubmitOptions opts = {})
      BPIM_EXCLUDES(pin_mutex_);
  /// Like submit() but never blocks: nullopt when the queue is full (the
  /// rejection is counted in ServeStats).
  [[nodiscard]] std::optional<std::future<engine::OpResult>> try_submit(
      const engine::VecOp& op, SubmitOptions opts = {}) BPIM_EXCLUDES(pin_mutex_);

  /// Admit a fused whole-forward request: every weight handle (all pinned
  /// through this server onto one pool memory) against one shared
  /// activation, executed as one fused macro program on the weights' home
  /// memory (ExecutionEngine::run_forward; falls back to op-at-a-time there
  /// when the shape cannot fuse -- values are identical either way). The
  /// activation is copied; results come back in `weights` order.
  [[nodiscard]] std::future<std::vector<engine::OpResult>> submit_forward(
      std::span<const engine::ResidentOperand> weights,
      std::span<const std::uint64_t> activation, SubmitOptions opts = {})
      BPIM_EXCLUDES(pin_mutex_);

  /// Admit a fused MULT->ADD(->ADD-Shift) chain (ExecutionEngine::run_chain):
  /// the head product never leaves the array while the links fold in. All
  /// operand spans (head and links) are copied at admission.
  [[nodiscard]] std::future<engine::OpResult> submit_chain(const engine::ChainRequest& chain,
                                                           SubmitOptions opts = {})
      BPIM_EXCLUDES(pin_mutex_);

  /// Pin an operand resident behind the serving frontend: a deterministic
  /// operand hash picks the pool memory (so re-pinning the same values
  /// lands on the same node), the handle is registered there, and every
  /// later request referencing it is routed to that memory. The values are
  /// copied; the materializing write happens on the scheduler side at
  /// first use. Thread-safe; throws ServerStopped after stop().
  /// `colocate_key`, when set, overrides the hash placement: handles pinned
  /// with the same key land on the same pool memory. submit_forward needs
  /// every weight of a layer on one node, so callers pin them under one key
  /// (e.g. a hash of the layer's identity).
  [[nodiscard]] engine::ResidentOperand pin(std::span<const std::uint64_t> values,
                                            unsigned bits, engine::OperandLayout layout,
                                            std::optional<std::uint64_t> colocate_key =
                                                std::nullopt) BPIM_EXCLUDES(pin_mutex_);
  /// Drop a pinned operand (false when unknown). Safe after stop() as long
  /// as the pool is alive; must not race requests that reference it.
  bool unpin(const engine::ResidentOperand& handle) BPIM_EXCLUDES(pin_mutex_);
  /// Pool memory holding `handle_id`, if pinned through this server.
  [[nodiscard]] std::optional<std::size_t> memory_of(std::uint64_t handle_id) const
      BPIM_EXCLUDES(pin_mutex_);

  /// Close admission, drain every accepted request, join the scheduler.
  /// Idempotent; implied by the destructor.
  void stop() BPIM_EXCLUDES(stop_mutex_);
  [[nodiscard]] bool stopped() const { return stopping_.load(std::memory_order_acquire); }

  /// Freeze/release the scheduler (admission stays open): stage a set of
  /// requests, then release them as one deterministic coalescing decision.
  /// Intended for tests and diagnostics.
  void pause();
  void resume();

  /// Set the adaptive execution policy (macro-level MULT operand narrowing
  /// and zero skipping) on every pool memory's engine. Takes effect from the
  /// next dispatched batch; safe to call concurrently with in-flight
  /// requests (engines snapshot the policy per run, and results are
  /// bit-identical either way -- only the cycle account moves).
  void set_adaptive_policy(macro::AdaptivePolicy policy) {
    for (std::size_t i = 0; i < pool_->size(); ++i)
      pool_->engine(i).set_adaptive_policy(policy);
  }

  [[nodiscard]] ServeStats stats() const;
  /// The first pool memory's engine (the only one on a single-memory
  /// server) -- kept for capacity/geometry queries; all pool memories are
  /// shape-identical.
  [[nodiscard]] engine::ExecutionEngine& engine() { return pool_->engine(0); }
  [[nodiscard]] const engine::ExecutionEngine& engine() const { return pool_->engine(0); }
  [[nodiscard]] const MemoryPool& pool() const { return *pool_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  /// Validate + package one request (throws std::invalid_argument).
  detail::Ticket make_ticket(const engine::VecOp& op, SubmitOptions opts)
      BPIM_EXCLUDES(pin_mutex_);
  detail::Ticket make_forward_ticket(std::span<const engine::ResidentOperand> weights,
                                     std::span<const std::uint64_t> activation,
                                     SubmitOptions opts) BPIM_EXCLUDES(pin_mutex_);
  detail::Ticket make_chain_ticket(const engine::ChainRequest& chain, SubmitOptions opts);
  void scheduler_loop();
  /// Run one fused (Chain/Forward) ticket on its memory's engine and settle
  /// its promise; fused requests always dispatch as their own group.
  void execute_fused(detail::Ticket& t, engine::ExecutionEngine& eng, std::size_t mem);
  /// Run one dispatch group: sub-batch i on pool memory where[i], distinct
  /// memories concurrently; each lane accounts and fulfills its own
  /// promises as it finishes (no cross-lane barrier for clients).
  void execute_group(std::vector<std::vector<detail::Ticket>>& subs,
                     const std::vector<std::size_t>& where);

  /// Per-request trace correlation key: unique across servers (the base is
  /// a per-server counter shifted clear of any realistic seq), so async
  /// "request" bars and submit->batch flow arrows never alias between two
  /// servers in one process.
  [[nodiscard]] std::uint64_t trace_id(std::uint64_t seq) const {
    return trace_id_base_ | seq;
  }
  /// Register the per-lane synthetic trace tracks; shared ctor tail.
  void init_tracing();

  std::optional<MemoryPool> owned_pool_;  ///< set by the single-engine ctor
  MemoryPool* pool_;
  const ServerConfig cfg_;
  AdmissionQueue queue_;
  mutable ServeLedger ledger_;
  /// handle id -> pool memory, for routing resident-operand requests.
  mutable Mutex pin_mutex_;
  std::unordered_map<std::uint64_t, std::size_t> pin_home_ BPIM_GUARDED_BY(pin_mutex_);
  /// Persistent lane workers for multi-memory dispatch groups (scheduler
  /// thread included); workers start lazily, so a pool-of-one server never
  /// spawns any.
  engine::ThreadPool lane_pool_;
  /// One synthetic trace track per pool memory: a lane's batches render on
  /// one timeline row whichever worker thread ran them.
  std::vector<obs::TrackId> lane_tracks_;
  std::uint64_t trace_id_base_ = 0;
  std::atomic<std::uint64_t> seq_{0};
  /// Set (under stop_mutex_) before admission closes; read lock-free by
  /// stopped()/submit fast paths. The release store in stop() pairs with
  /// the acquire load in stopped().
  std::atomic<bool> stopping_{false};
  Mutex stop_mutex_;  ///< serialises concurrent stop() calls
  /// Joined exactly once, by whichever stop() call holds stop_mutex_.
  std::thread scheduler_ BPIM_GUARDED_BY(stop_mutex_);
};

}  // namespace bpim::serve
