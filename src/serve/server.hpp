#pragma once
// Batched request serving in front of the ExecutionEngine.
//
//   clients --submit()--> [bounded admission queue] --> scheduler thread
//                                                          |  coalesce
//                                                          v
//                                            ExecutionEngine::run_batch
//
// Many client threads submit vector ops; a single scheduler thread drains
// the admission queue and coalesces *compatible* requests -- same kind and
// precision (and logic function), summed row-pair layers within the array's
// residency budget -- into one run_batch call, so unrelated clients' operand
// loads ping-pong-overlap each other's compute in the cycle model. Within
// the backlog the scheduler serves strictly by (priority desc, admission
// order); requests whose deadline lapsed while queued fail with
// DeadlineExceeded instead of executing.
//
// Results are bit-identical to submitting each op alone through a serial
// engine: run_batch executes ops one after another with the same per-op
// chunk walk, and per-op results do not depend on what ran before (the
// engine's batch tests assert this). Coalescing changes only the batch-level
// cycle account, never a client's values or RunStats.
//
// Exactly one thread (the scheduler) touches the engine and its memory;
// clients only rendezvous through the queue and their futures. stop() (and
// the destructor) closes admission, drains everything already accepted, and
// joins -- no accepted future is ever abandoned.

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "engine/execution_engine.hpp"
#include "serve/admission_queue.hpp"
#include "serve/request.hpp"
#include "serve/serve_stats.hpp"

namespace bpim::serve {

class Server {
 public:
  /// The engine (and its memory) must outlive the server. The server is the
  /// engine's only user while running.
  explicit Server(engine::ExecutionEngine& eng, ServerConfig cfg = {});
  ~Server();  ///< stop()s: drains accepted work, then joins.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one op; blocks while the queue is full (backpressure). Operands
  /// are copied, so the caller's buffers may be freed on return. The future
  /// yields the op's OpResult, or throws DeadlineExceeded / ServerStopped.
  /// Throws std::invalid_argument on malformed ops (mismatched lengths,
  /// unsupported precision, vector exceeding memory capacity) and
  /// ServerStopped after stop().
  [[nodiscard]] std::future<engine::OpResult> submit(const engine::VecOp& op,
                                                     SubmitOptions opts = {});
  /// Like submit() but never blocks: nullopt when the queue is full (the
  /// rejection is counted in ServeStats).
  [[nodiscard]] std::optional<std::future<engine::OpResult>> try_submit(
      const engine::VecOp& op, SubmitOptions opts = {});

  /// Close admission, drain every accepted request, join the scheduler.
  /// Idempotent; implied by the destructor.
  void stop();
  [[nodiscard]] bool stopped() const { return stopping_.load(std::memory_order_acquire); }

  /// Freeze/release the scheduler (admission stays open): stage a set of
  /// requests, then release them as one deterministic coalescing decision.
  /// Intended for tests and diagnostics.
  void pause();
  void resume();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] engine::ExecutionEngine& engine() { return eng_; }
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }

 private:
  /// Validate + package one request (throws std::invalid_argument).
  detail::Ticket make_ticket(const engine::VecOp& op, SubmitOptions opts);
  void scheduler_loop();
  /// Run one coalesced batch and fulfill its promises.
  void execute_batch(std::vector<detail::Ticket>& batch);

  engine::ExecutionEngine& eng_;
  const ServerConfig cfg_;
  AdmissionQueue queue_;
  mutable ServeLedger ledger_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;  ///< serialises concurrent stop() calls
  std::thread scheduler_;
};

}  // namespace bpim::serve
