#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"
#include "macro/isa.hpp"

namespace bpim::serve {

using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

Server::Server(engine::ExecutionEngine& eng, ServerConfig cfg)
    : eng_(eng), cfg_(cfg), queue_(cfg.queue_capacity) {
  BPIM_REQUIRE(cfg_.max_batch_ops > 0, "max_batch_ops must be positive");
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() { stop(); }

detail::Ticket Server::make_ticket(const VecOp& op, SubmitOptions opts) {
  // Validate at admission so malformed ops throw on the client's thread,
  // not inside the scheduler.
  BPIM_REQUIRE(op.a.size() == op.b.size(), "operand vectors must have equal length");
  BPIM_REQUIRE(macro::is_supported_precision(op.bits), "unsupported precision");

  detail::Ticket t;
  t.a.assign(op.a.begin(), op.a.end());
  t.b.assign(op.b.begin(), op.b.end());
  t.op = op;
  t.op.a = t.a;
  t.op.b = t.b;
  t.layers = eng_.layers_for(t.op);
  BPIM_REQUIRE(t.layers <= eng_.row_pair_capacity(), "vector exceeds memory capacity");
  t.priority = opts.priority;
  t.deadline = opts.deadline;
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  t.submit_time = Clock::now();
  return t;
}

std::future<OpResult> Server::submit(const VecOp& op, SubmitOptions opts) {
  if (stopped()) throw ServerStopped();
  detail::Ticket t = make_ticket(op, opts);
  std::future<OpResult> fut = t.promise.get_future();
  // Count before the push: once the ticket is in the queue the scheduler may
  // complete it, and a stats() snapshot must never show completed > submitted.
  ledger_.on_submitted();
  if (!queue_.push(std::move(t))) {
    // The queue closed while we were blocked on backpressure: the request
    // was never accepted, so its future carries the stop.
    ledger_.on_submit_rescinded();
    t.promise.set_exception(std::make_exception_ptr(ServerStopped()));
  }
  return fut;
}

std::optional<std::future<OpResult>> Server::try_submit(const VecOp& op, SubmitOptions opts) {
  if (stopped()) throw ServerStopped();
  // Fail fast before the operand deep-copy; try_push below stays the
  // authoritative full/closed check.
  if (queue_.depth() >= queue_.capacity()) {
    ledger_.on_rejected();
    return std::nullopt;
  }
  detail::Ticket t = make_ticket(op, opts);
  std::future<OpResult> fut = t.promise.get_future();
  ledger_.on_submitted();
  if (!queue_.try_push(std::move(t))) {
    ledger_.on_submit_rescinded();
    if (queue_.closed()) throw ServerStopped();
    ledger_.on_rejected();
    return std::nullopt;
  }
  return fut;
}

void Server::stop() {
  std::lock_guard lk(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  queue_.set_paused(false);  // a paused scheduler must still drain and exit
  if (scheduler_.joinable()) scheduler_.join();
}

void Server::pause() { queue_.set_paused(true); }
void Server::resume() { queue_.set_paused(false); }

ServeStats Server::stats() const {
  return ledger_.snapshot(queue_.depth(), queue_.peak_depth());
}

void Server::scheduler_loop() {
  std::vector<detail::Ticket> backlog;
  std::vector<detail::Ticket> incoming;
  for (;;) {
    // Top up the backlog: block only when there is nothing left to run.
    incoming.clear();
    if (backlog.empty()) {
      if (!queue_.wait_pop_all(incoming, cfg_.coalesce_window, cfg_.max_batch_ops))
        break;  // closed and fully drained
    } else {
      queue_.try_pop_all(incoming);
    }
    for (auto& t : incoming) backlog.push_back(std::move(t));

    // Serve order: priority desc, admission order within a priority level.
    std::sort(backlog.begin(), backlog.end(),
              [](const detail::Ticket& x, const detail::Ticket& y) {
                return x.priority != y.priority ? x.priority > y.priority : x.seq < y.seq;
              });

    // Deadlines are checked when the scheduler considers the backlog: a
    // request whose deadline lapsed while queued fails instead of running.
    const auto now = Clock::now();
    std::size_t expired = 0;
    std::erase_if(backlog, [&](detail::Ticket& t) {
      if (!t.deadline || now <= *t.deadline) return false;
      t.promise.set_exception(std::make_exception_ptr(DeadlineExceeded()));
      ++expired;
      return true;
    });
    if (expired > 0) ledger_.on_expired(expired);
    if (backlog.empty()) continue;

    // Coalesce from the head: every compatible request (same kind and
    // precision, same logic fn) that still fits the array's row-pair
    // residency budget rides along; the rest wait for a later batch. The
    // head itself always fits (validated at admission).
    const OpKind kind = backlog.front().op.kind;
    const unsigned bits = backlog.front().op.bits;
    const periph::LogicFn fn = backlog.front().op.fn;
    const std::size_t capacity = eng_.row_pair_capacity();
    std::vector<detail::Ticket> batch;
    std::vector<detail::Ticket> rest;
    std::size_t layers = 0;
    for (auto& t : backlog) {
      const bool compatible = t.op.kind == kind && t.op.bits == bits &&
                              (kind != OpKind::Logic || t.op.fn == fn);
      if (compatible && batch.size() < cfg_.max_batch_ops &&
          layers + t.layers <= capacity) {
        layers += t.layers;
        batch.push_back(std::move(t));
      } else {
        rest.push_back(std::move(t));
      }
    }
    backlog = std::move(rest);
    execute_batch(batch);
  }
}

void Server::execute_batch(std::vector<detail::Ticket>& batch) {
  std::vector<VecOp> ops;
  ops.reserve(batch.size());
  std::size_t layers = 0;
  for (const auto& t : batch) {
    ops.push_back(t.op);
    layers += t.layers;
  }

  std::vector<OpResult> results;
  try {
    results = eng_.run_batch(ops);
  } catch (...) {
    // Validation happens at submit, so this is a defect; surface it on
    // every rider's future rather than killing the scheduler.
    const std::exception_ptr err = std::current_exception();
    for (auto& t : batch) t.promise.set_exception(err);
    return;
  }

  const engine::BatchStats bs = eng_.last_batch();
  const auto done = Clock::now();
  std::vector<double> host_us;
  host_us.reserve(batch.size());
  for (const auto& t : batch)
    host_us.push_back(std::chrono::duration<double, std::micro>(done - t.submit_time).count());

  BatchRecord rec;
  rec.kind = batch.front().op.kind;
  rec.bits = batch.front().op.bits;
  rec.ops = batch.size();
  rec.layers = layers;
  rec.pipelined_cycles = bs.pipelined_cycles;
  rec.serial_cycles = bs.serial_cycles;
  // Ledger before promises: a client that wakes on its future and asks for
  // stats() must already see its own batch.
  ledger_.on_batch(rec, bs, host_us);

  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].promise.set_value(std::move(results[i]));
}

}  // namespace bpim::serve
