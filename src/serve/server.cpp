#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"
#include "macro/isa.hpp"

namespace bpim::serve {

using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

namespace {

/// FNV-1a word mixer shared by the placement hashes below.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  }
};

/// FNV-1a over the op's full identity and operand bytes: the sticky
/// placement key. Repeated weight rows hash identically, so they land on
/// the same pool memory every time. The logic function is part of the
/// identity -- And/Or requests on identical operands must not alias.
std::uint64_t hash_operands(const VecOp& op) {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(op.kind));
  f.mix(op.bits);
  f.mix(static_cast<std::uint64_t>(op.fn));
  f.mix(op.ra.id);
  f.mix(op.rb.id);
  for (const std::uint64_t x : op.a) f.mix(x);
  for (const std::uint64_t x : op.b) f.mix(x);
  return f.h;
}

/// Pin placement key: a pure function of the pinned values and shape, so
/// the same weights always pin to the same pool memory.
std::uint64_t hash_pin(std::span<const std::uint64_t> values, unsigned bits,
                       engine::OperandLayout layout) {
  Fnv1a f;
  f.mix(bits);
  f.mix(static_cast<std::uint64_t>(layout));
  for (const std::uint64_t x : values) f.mix(x);
  return f.h;
}

/// Trace lineage of one request: an async "request" bar from admission to
/// settlement, plus a flow arrow tail inside the caller's submit span. The
/// bar's id correlates every event of one request across tracks.
void trace_request_admitted(std::uint64_t rid, const detail::Ticket& t) {
  if (!BPIM_TRACE_ON()) return;
  auto& trace = obs::TraceSession::global();
  trace.async_begin("request", rid,
                    obs::EventArgs{{"priority", static_cast<double>(t.priority)},
                                   {"layers", static_cast<double>(t.layers)}});
  trace.flow_start("req", rid);
}

/// Close a request bar that never executed (rescinded admission, expiry).
void trace_request_dropped(std::uint64_t rid, const char* why) {
  if (!BPIM_TRACE_ON()) return;
  obs::TraceSession::global().async_end("request", rid,
                                        obs::EventArgs{{why, 1.0}});
}

}  // namespace

void Server::init_tracing() {
  // Request ids: server instance in the top bits, admission seq below.
  // 2^40 requests per server before the spaces could touch.
  static std::atomic<std::uint64_t> server_counter{0};
  trace_id_base_ = server_counter.fetch_add(1, std::memory_order_relaxed) << 40;
  obs::TraceSession& trace = obs::TraceSession::global();
  lane_tracks_.reserve(pool_->size());
  for (std::size_t m = 0; m < pool_->size(); ++m)
    lane_tracks_.push_back(trace.register_track("lane " + std::to_string(m)));
}

Server::Server(engine::ExecutionEngine& eng, ServerConfig cfg)
    : owned_pool_(std::in_place, std::vector<engine::ExecutionEngine*>{&eng},
                  Placement::RoundRobin),
      pool_(&*owned_pool_),
      cfg_(cfg),
      queue_(cfg.queue_capacity),
      ledger_(pool_->size()),
      lane_pool_(pool_->size()) {
  BPIM_REQUIRE(cfg_.max_batch_ops > 0, "max_batch_ops must be positive");
  init_tracing();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::Server(MemoryPool& pool, ServerConfig cfg)
    : pool_(&pool),
      cfg_(cfg),
      queue_(cfg.queue_capacity),
      ledger_(pool.size()),
      lane_pool_(pool.size()) {
  BPIM_REQUIRE(cfg_.max_batch_ops > 0, "max_batch_ops must be positive");
  init_tracing();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() { stop(); }

detail::Ticket Server::make_ticket(const VecOp& op, SubmitOptions opts) {
  // Validate at admission so malformed ops throw on the client's thread,
  // not inside the scheduler.
  const std::size_t len_a = op.ra ? static_cast<std::size_t>(op.ra.elements) : op.a.size();
  const std::size_t len_b = op.rb ? static_cast<std::size_t>(op.rb.elements) : op.b.size();
  if (op.kind == OpKind::Not)
    BPIM_REQUIRE(len_b == 0 && !op.rb, "NOT is unary: operand side b must stay empty");
  else
    BPIM_REQUIRE(len_a == len_b, "operand vectors must have equal length");
  BPIM_REQUIRE(macro::is_supported_precision(op.bits), "unsupported precision");
  BPIM_REQUIRE(!op.ra || op.a.empty(), "operand side has both a span and a resident handle");
  BPIM_REQUIRE(!op.rb || op.b.empty(), "operand side has both a span and a resident handle");

  detail::Ticket t;
  t.a.assign(op.a.begin(), op.a.end());
  t.b.assign(op.b.begin(), op.b.end());
  t.op = op;
  t.op.a = t.a;
  t.op.b = t.b;
  // Resident operands anchor the request to the memory that holds them;
  // two handles on one op must agree.
  if (op.ra || op.rb) {
    MutexLock lk(pin_mutex_);
    const auto home_of = [&](const engine::ResidentOperand& h) -> std::optional<std::size_t> {
      if (!h) return std::nullopt;
      const auto it = pin_home_.find(h.id);
      BPIM_REQUIRE(it != pin_home_.end(),
                   "resident operand was not pinned through this server");
      return it->second;
    };
    const auto home_a = home_of(op.ra);
    const auto home_b = home_of(op.rb);
    BPIM_REQUIRE(!home_a || !home_b || *home_a == *home_b,
                 "op references resident operands on different pool memories");
    t.home = home_a ? home_a : home_b;
  }
  t.layers = pool_->layers_for(t.op);
  // One op never splits across memories (its chunk walk is per-memory), so
  // it must fit a single array whatever the pool size -- and a two-handle
  // op needs both residents in the array at once.
  BPIM_REQUIRE(t.layers <= pool_->row_pair_capacity(), "vector exceeds memory capacity");
  if (op.ra && op.rb)
    BPIM_REQUIRE(op.ra.layers + op.rb.layers <= pool_->row_pair_capacity(),
                 "resident operand pair exceeds memory capacity");
  // Only sticky placement reads the hash; spare the other policies the
  // extra operand pass on the client's critical path.
  if (pool_->placement() == Placement::StickyByOperand)
    t.operand_hash = hash_operands(t.op);
  t.priority = opts.priority;
  t.deadline = opts.deadline;
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  t.submit_time = Clock::now();
  return t;
}

std::future<OpResult> Server::submit(const VecOp& op, SubmitOptions opts) {
  if (stopped()) throw ServerStopped();
  BPIM_TRACE_SPAN(span, "serve.submit");
  detail::Ticket t = make_ticket(op, opts);
  std::future<OpResult> fut = t.promise.get_future();
  const std::uint64_t rid = trace_id(t.seq);
  trace_request_admitted(rid, t);
  // Count before the push: once the ticket is in the queue the scheduler may
  // complete it, and a stats() snapshot must never show completed > submitted.
  ledger_.on_submitted();
  if (!queue_.push(std::move(t))) {
    // The queue closed while we were blocked on backpressure: the request
    // was never accepted, so its future carries the stop.
    ledger_.on_submit_rescinded();
    trace_request_dropped(rid, "rescinded");
    t.promise.set_exception(std::make_exception_ptr(ServerStopped()));
  }
  return fut;
}

detail::Ticket Server::make_forward_ticket(std::span<const engine::ResidentOperand> weights,
                                           std::span<const std::uint64_t> activation,
                                           SubmitOptions opts) {
  BPIM_REQUIRE(!weights.empty(), "fused forward needs at least one weight");
  const unsigned bits = weights.front().bits;
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
  std::optional<std::size_t> home;
  {
    MutexLock lk(pin_mutex_);
    for (const engine::ResidentOperand& w : weights) {
      BPIM_REQUIRE(static_cast<bool>(w), "fused forward weight has no handle");
      BPIM_REQUIRE(w.bits == bits, "fused forward weights must share one precision");
      BPIM_REQUIRE(w.layout == engine::OperandLayout::MultUnit,
                   "fused forward weights must be pinned in MULT-unit layout");
      BPIM_REQUIRE(w.elements == weights.front().elements,
                   "fused forward weights must share one length");
      const auto it = pin_home_.find(w.id);
      BPIM_REQUIRE(it != pin_home_.end(), "resident operand was not pinned through this server");
      BPIM_REQUIRE(!home || *home == it->second,
                   "fused forward weights live on different pool memories -- pin them "
                   "under one colocate_key");
      home = it->second;
    }
  }
  BPIM_REQUIRE(activation.size() == weights.front().elements,
               "activation length must match the pinned weights");

  detail::Ticket t;
  t.kind = detail::ReqKind::Forward;
  t.op.kind = OpKind::Mult;  // labels for BatchRecord/compatibility checks
  t.op.bits = bits;
  t.a.assign(activation.begin(), activation.end());
  t.fwd_weights.assign(weights.begin(), weights.end());
  t.home = home;
  // The budget the ticket occupies is its transient activation region; the
  // weights' rows are already down on the home memory.
  t.layers = weights.front().layers;
  t.priority = opts.priority;
  t.deadline = opts.deadline;
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  t.submit_time = Clock::now();
  return t;
}

detail::Ticket Server::make_chain_ticket(const engine::ChainRequest& chain,
                                         SubmitOptions opts) {
  BPIM_REQUIRE(!chain.links.empty(), "a chain needs at least one link");
  BPIM_REQUIRE(macro::is_supported_precision(chain.bits), "unsupported precision");
  BPIM_REQUIRE(macro::is_supported_precision(2 * chain.bits),
               "chain links run at 2x the head precision, which the ISA lacks here");
  BPIM_REQUIRE(!chain.a.empty(), "chain operands must be non-empty");
  BPIM_REQUIRE(chain.a.size() == chain.b.size(), "operand vectors must have equal length");
  for (const engine::ChainLink& link : chain.links)
    BPIM_REQUIRE(link.values.size() == chain.a.size(),
                 "link operand length must match the head operands");

  detail::Ticket t;
  t.kind = detail::ReqKind::Chain;
  t.op.kind = OpKind::Mult;
  t.op.bits = chain.bits;
  t.a.assign(chain.a.begin(), chain.a.end());
  t.b.assign(chain.b.begin(), chain.b.end());
  t.links.reserve(chain.links.size());
  for (const engine::ChainLink& link : chain.links)
    t.links.emplace_back(link.kind,
                         std::vector<std::uint64_t>(link.values.begin(), link.values.end()));
  // One chain layer stages the head pair plus one row per link operand.
  const std::size_t pairs_per_layer = (2 + chain.links.size() + 1) / 2;
  VecOp head;
  head.kind = OpKind::Mult;
  head.bits = chain.bits;
  head.a = t.a;
  head.b = t.b;
  t.layers = pairs_per_layer * pool_->layers_for(head);
  BPIM_REQUIRE(t.layers <= pool_->row_pair_capacity(), "chain exceeds memory capacity");
  if (pool_->placement() == Placement::StickyByOperand) {
    t.op.a = t.a;
    t.op.b = t.b;
    t.operand_hash = hash_operands(t.op);
    t.op.a = {};
    t.op.b = {};
  }
  t.priority = opts.priority;
  t.deadline = opts.deadline;
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  t.submit_time = Clock::now();
  return t;
}

std::future<std::vector<OpResult>> Server::submit_forward(
    std::span<const engine::ResidentOperand> weights,
    std::span<const std::uint64_t> activation, SubmitOptions opts) {
  if (stopped()) throw ServerStopped();
  BPIM_TRACE_SPAN(span, "serve.submit_forward");
  detail::Ticket t = make_forward_ticket(weights, activation, opts);
  std::future<std::vector<OpResult>> fut = t.fwd_promise.get_future();
  const std::uint64_t rid = trace_id(t.seq);
  trace_request_admitted(rid, t);
  ledger_.on_submitted();
  if (!queue_.push(std::move(t))) {
    ledger_.on_submit_rescinded();
    trace_request_dropped(rid, "rescinded");
    t.fwd_promise.set_exception(std::make_exception_ptr(ServerStopped()));
  }
  return fut;
}

std::future<OpResult> Server::submit_chain(const engine::ChainRequest& chain,
                                           SubmitOptions opts) {
  if (stopped()) throw ServerStopped();
  BPIM_TRACE_SPAN(span, "serve.submit_chain");
  detail::Ticket t = make_chain_ticket(chain, opts);
  std::future<OpResult> fut = t.promise.get_future();
  const std::uint64_t rid = trace_id(t.seq);
  trace_request_admitted(rid, t);
  ledger_.on_submitted();
  if (!queue_.push(std::move(t))) {
    ledger_.on_submit_rescinded();
    trace_request_dropped(rid, "rescinded");
    t.promise.set_exception(std::make_exception_ptr(ServerStopped()));
  }
  return fut;
}

std::optional<std::future<OpResult>> Server::try_submit(const VecOp& op, SubmitOptions opts) {
  if (stopped()) throw ServerStopped();
  // Fail fast before the operand deep-copy; try_push below stays the
  // authoritative full/closed check.
  if (queue_.depth() >= queue_.capacity()) {
    ledger_.on_rejected();
    BPIM_TRACE_INSTANT("serve.reject");
    return std::nullopt;
  }
  BPIM_TRACE_SPAN(span, "serve.submit");
  detail::Ticket t = make_ticket(op, opts);
  std::future<OpResult> fut = t.promise.get_future();
  const std::uint64_t rid = trace_id(t.seq);
  trace_request_admitted(rid, t);
  ledger_.on_submitted();
  if (!queue_.try_push(std::move(t))) {
    ledger_.on_submit_rescinded();
    if (queue_.closed()) {
      trace_request_dropped(rid, "rescinded");
      throw ServerStopped();
    }
    ledger_.on_rejected();
    trace_request_dropped(rid, "rejected");
    return std::nullopt;
  }
  return fut;
}

engine::ResidentOperand Server::pin(std::span<const std::uint64_t> values, unsigned bits,
                                    engine::OperandLayout layout,
                                    std::optional<std::uint64_t> colocate_key) {
  if (stopped()) throw ServerStopped();
  // Deterministic hash placement: the same weight values always pin to the
  // same node, whatever the batch placement policy is -- exactly the
  // affinity the sticky policy approximates for span operands. A colocate
  // key overrides the value hash so a fused forward's weights share a node.
  const std::size_t m = pool_->size() == 1 ? 0
                        : colocate_key     ? *colocate_key % pool_->size()
                                           : hash_pin(values, bits, layout) % pool_->size();
  const engine::ResidentOperand handle = pool_->engine(m).pin(values, bits, layout);
  {
    MutexLock lk(pin_mutex_);
    pin_home_.emplace(handle.id, m);
  }
  return handle;
}

bool Server::unpin(const engine::ResidentOperand& handle) {
  if (!handle) return false;
  std::size_t m = 0;
  {
    MutexLock lk(pin_mutex_);
    const auto it = pin_home_.find(handle.id);
    if (it == pin_home_.end()) return false;
    m = it->second;
    pin_home_.erase(it);
  }
  return pool_->engine(m).unpin(handle);
}

std::optional<std::size_t> Server::memory_of(std::uint64_t handle_id) const {
  MutexLock lk(pin_mutex_);
  const auto it = pin_home_.find(handle_id);
  return it == pin_home_.end() ? std::nullopt : std::optional<std::size_t>(it->second);
}

void Server::stop() {
  MutexLock lk(stop_mutex_);
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  queue_.set_paused(false);  // a paused scheduler must still drain and exit
  if (scheduler_.joinable()) scheduler_.join();
}

void Server::pause() { queue_.set_paused(true); }
void Server::resume() { queue_.set_paused(false); }

ServeStats Server::stats() const {
  return ledger_.snapshot(queue_.depth(), queue_.peak_depth());
}

void Server::scheduler_loop() {
#if BPIM_OBS_ENABLED
  obs::TraceSession::global().set_thread_name("scheduler");
#endif
  // One dispatch group spans the whole pool: up to max_batch_ops requests
  // and one array's worth of layers per memory.
  const std::size_t capacity = pool_->row_pair_capacity();
  const std::size_t group_op_budget = cfg_.max_batch_ops * pool_->size();

  std::vector<detail::Ticket> backlog;
  std::vector<detail::Ticket> incoming;
  for (;;) {
    // Top up the backlog: block only when there is nothing left to run.
    incoming.clear();
    if (backlog.empty()) {
      if (!queue_.wait_pop_all(incoming, cfg_.coalesce_window, group_op_budget))
        break;  // closed and fully drained
    } else {
      queue_.try_pop_all(incoming);
    }
    for (auto& t : incoming) backlog.push_back(std::move(t));
    if (backlog.empty()) continue;

    // One scheduling decision: sort, expire, coalesce, place, dispatch.
    BPIM_TRACE_SPAN(sched_span, "serve.schedule");
    sched_span.arg("backlog", static_cast<double>(backlog.size()));

    // Serve order: priority desc, admission order within a priority level.
    std::sort(backlog.begin(), backlog.end(),
              [](const detail::Ticket& x, const detail::Ticket& y) {
                return x.priority != y.priority ? x.priority > y.priority : x.seq < y.seq;
              });

    // Deadlines are (re-)checked at batch-build time with a fresh clock: a
    // request that expired while queued, while held in the coalesce window,
    // or while an earlier batch ran fails here instead of executing. Ledger
    // before promises: a client that wakes on its future must already see
    // its expiry in stats().
    const auto now = Clock::now();
    std::vector<detail::Ticket> lapsed;
    std::erase_if(backlog, [&](detail::Ticket& t) {
      if (!t.deadline || now <= *t.deadline) return false;
      lapsed.push_back(std::move(t));
      return true;
    });
    if (!lapsed.empty()) {
      ledger_.on_expired(lapsed.size());
      for (auto& t : lapsed) {
        trace_request_dropped(trace_id(t.seq), "expired");
        t.fail(std::make_exception_ptr(DeadlineExceeded()));
      }
    }
    if (backlog.empty()) continue;

    // A fused request at the head (Chain/Forward) dispatches as its own
    // group: it is already one whole program, there is nothing to coalesce
    // it with. Its home memory (a Forward's weights) binds placement.
    if (backlog.front().kind != detail::ReqKind::Op) {
      std::vector<std::vector<detail::Ticket>> subs(1);
      std::vector<MemoryPool::Slot> slots(1);
      slots[0].layers = backlog.front().layers;
      slots[0].operand_hash = backlog.front().operand_hash;
      slots[0].home = backlog.front().home;
      subs[0].push_back(std::move(backlog.front()));
      backlog.erase(backlog.begin());
      execute_group(subs, pool_->place(slots));
      continue;
    }

    // Budgets account for pinned layers: transient (span) operands can only
    // stage into capacity minus each memory's resident set, while requests
    // referencing a handle ride free -- their rows are already down on
    // their home memory. Recomputed per group, since materialization and
    // eviction move the resident set between wakeups.
    std::size_t group_layer_budget = 0;
    for (std::size_t m = 0; m < pool_->size(); ++m)
      group_layer_budget += capacity - std::min(capacity, pool_->resident_layers(m));
    const std::size_t unhomed_budget =
        capacity - std::min(capacity, pool_->max_resident_layers());

    // Coalesce from the head: every compatible request (same kind and
    // precision, same logic fn) that still fits the group budget rides
    // along; the rest wait for a later group. The head always goes (the
    // engine evicts pinned rows LRU-first if it must).
    const OpKind kind = backlog.front().op.kind;
    const unsigned bits = backlog.front().op.bits;
    const periph::LogicFn fn = backlog.front().op.fn;
    std::vector<detail::Ticket> selected;
    std::vector<detail::Ticket> rest;
    std::size_t transient_layers = 0;
    for (auto& t : backlog) {
      const bool compatible = t.kind == detail::ReqKind::Op && t.op.kind == kind &&
                              t.op.bits == bits && (kind != OpKind::Logic || t.op.fn == fn);
      if (compatible &&
          (selected.empty() ||
           (selected.size() < group_op_budget &&
            transient_layers + t.transient_layers() <= group_layer_budget))) {
        transient_layers += t.transient_layers();
        selected.push_back(std::move(t));
      } else {
        rest.push_back(std::move(t));
      }
    }
    backlog = std::move(rest);

    // Split the selection into per-memory sub-batches: greedy in serve
    // order, each within one array's transient budget and the per-batch op
    // cap. Requests that reference resident operands must run on their
    // home memory, so a home change also cuts a sub-batch; homed
    // sub-batches stage nothing transient and pack by op count alone. On a
    // pool of one with nothing pinned this is the original single
    // sub-batch.
    std::vector<std::vector<detail::Ticket>> subs;
    std::vector<MemoryPool::Slot> slots;
    std::size_t sub_transient = 0;
    for (auto& t : selected) {
      const std::size_t tl = t.transient_layers();
      const std::size_t sub_budget =
          t.home ? capacity : std::max<std::size_t>(unhomed_budget, 1);
      if (subs.empty() || slots.back().home != t.home ||
          subs.back().size() >= cfg_.max_batch_ops ||
          (!subs.back().empty() && sub_transient + tl > sub_budget)) {
        subs.emplace_back();
        slots.emplace_back();
        slots.back().home = t.home;
        sub_transient = 0;
      }
      sub_transient += tl;
      slots.back().layers += t.layers;
      if (subs.back().empty()) slots.back().operand_hash = t.operand_hash;
      subs.back().push_back(std::move(t));
    }
    execute_group(subs, pool_->place(slots));
  }
}

void Server::execute_group(std::vector<std::vector<detail::Ticket>>& subs,
                           const std::vector<std::size_t>& where) {
  // Runs one sub-batch end to end -- engine call, accounting, promises --
  // so a lane releases its clients the moment it finishes instead of
  // waiting out the group's slowest lane, and the recorded host latency is
  // exactly what the client waited. Ledger and pool accounts are
  // mutex-guarded, so lanes may complete concurrently. Never throws.
  const auto run_sub = [&](std::size_t i) {
    auto& batch = subs[i];
    engine::ExecutionEngine& eng = pool_->engine(where[i]);
    if (batch.front().kind != detail::ReqKind::Op) {
      execute_fused(batch.front(), eng, where[i]);
      return;
    }
    const auto started = Clock::now();
    BPIM_TRACE_SPAN(lane_span, "serve.batch", lane_tracks_[where[i]]);
    if (BPIM_TRACE_ON()) {
      // Arrow heads from every rider's submit span into this batch.
      auto& trace = obs::TraceSession::global();
      for (const auto& t : batch)
        trace.flow_finish("req", trace_id(t.seq), lane_tracks_[where[i]]);
    }
    std::vector<VecOp> ops;
    ops.reserve(batch.size());
    for (const auto& t : batch) ops.push_back(t.op);

    std::vector<OpResult> results;
    try {
      results = eng.run_batch(ops);
    } catch (...) {
      // Validation happens at submit, so this is a defect; surface it on
      // every rider's future rather than killing the scheduler.
      const std::exception_ptr err = std::current_exception();
      for (auto& t : batch) {
        trace_request_dropped(trace_id(t.seq), "error");
        t.promise.set_exception(err);
      }
      return;
    }
    const engine::BatchStats bs = eng.last_batch();
    const auto done = Clock::now();

    std::vector<double> host_us;
    std::vector<std::size_t> op_layers;
    host_us.reserve(batch.size());
    op_layers.reserve(batch.size());
    for (const auto& t : batch) {
      host_us.push_back(
          std::chrono::duration<double, std::micro>(done - t.submit_time).count());
      op_layers.push_back(t.layers);
    }

    BatchRecord rec;
    rec.kind = batch.front().op.kind;
    rec.bits = batch.front().op.bits;
    rec.ops = batch.size();
    rec.layers = 0;
    for (const std::size_t l : op_layers) rec.layers += l;
    rec.memory = where[i];
    rec.pipelined_cycles = bs.pipelined_cycles;
    rec.serial_cycles = bs.serial_cycles;
    pool_->on_batch_done(where[i], rec.layers, bs.pipelined_cycles);
    // Ledger before promises: a client that wakes on its future and asks for
    // stats() must already see its own batch.
    ledger_.on_batch(rec, bs, host_us, op_layers);

    lane_span.arg("ops", static_cast<double>(rec.ops));
    lane_span.arg("memory", static_cast<double>(rec.memory));
    lane_span.arg("pipelined_cycles", static_cast<double>(bs.pipelined_cycles));
    lane_span.arg("load_cycles_saved", static_cast<double>(bs.load_cycles_saved));
    if (BPIM_TRACE_ON()) {
      // Settle each rider's request bar with its waiting/served breakdown:
      // queue_us up to dispatch, host_us end to end, batch_share its
      // layer-weighted slice of the batch cost.
      auto& trace = obs::TraceSession::global();
      for (std::size_t k = 0; k < batch.size(); ++k) {
        const double queue_us = std::chrono::duration<double, std::micro>(
                                    started - batch[k].submit_time)
                                    .count();
        const double share = rec.layers > 0 ? static_cast<double>(op_layers[k]) /
                                                  static_cast<double>(rec.layers)
                                            : 1.0 / static_cast<double>(rec.ops);
        trace.async_end("request", trace_id(batch[k].seq),
                        obs::EventArgs{{"queue_us", queue_us},
                                       {"host_us", host_us[k]},
                                       {"batch_share", share}});
      }
    }

    for (std::size_t k = 0; k < batch.size(); ++k)
      batch[k].promise.set_value(std::move(results[k]));
  };

  // Distinct memories run concurrently on the persistent lane workers;
  // sub-batches that share a memory (sticky hash collisions) stay
  // serialized inside one lane, since an engine admits only one run_batch
  // at a time.
  std::vector<std::vector<std::size_t>> by_memory(pool_->size());
  for (std::size_t i = 0; i < subs.size(); ++i) by_memory[where[i]].push_back(i);
  std::erase_if(by_memory, [](const std::vector<std::size_t>& lane) { return lane.empty(); });
  lane_pool_.parallel_for(by_memory.size(), [&](std::size_t l) {
    for (const std::size_t i : by_memory[l]) run_sub(i);
  });
}

void Server::execute_fused(detail::Ticket& t, engine::ExecutionEngine& eng, std::size_t mem) {
  // One fused request is one engine call; like run_sub it accounts before
  // settling the promise and never throws into the scheduler.
  const auto started = Clock::now();
  BPIM_TRACE_SPAN(lane_span, "serve.fused", lane_tracks_[mem]);
  if (BPIM_TRACE_ON())
    obs::TraceSession::global().flow_finish("req", trace_id(t.seq), lane_tracks_[mem]);
  engine::BatchStats bs;
  std::vector<OpResult> fwd_results;
  OpResult chain_result;
  try {
    if (t.kind == detail::ReqKind::Forward) {
      fwd_results = eng.run_forward(t.fwd_weights, t.a);
    } else {
      engine::ChainRequest req;
      req.bits = t.op.bits;
      req.a = t.a;
      req.b = t.b;
      req.links.reserve(t.links.size());
      for (const auto& [kind, values] : t.links)
        req.links.push_back(engine::ChainLink{kind, values});
      chain_result = eng.run_chain(req);
    }
  } catch (...) {
    // Validation happens at submit, so this is a defect; surface it on the
    // client's future rather than killing the scheduler.
    trace_request_dropped(trace_id(t.seq), "error");
    t.fail(std::current_exception());
    return;
  }
  bs = eng.last_batch();
  const auto done = Clock::now();

  BatchRecord rec;
  rec.kind = t.op.kind;
  rec.bits = t.op.bits;
  rec.ops = 1;
  rec.layers = t.layers;
  rec.memory = mem;
  rec.pipelined_cycles = bs.pipelined_cycles;
  rec.serial_cycles = bs.serial_cycles;
  pool_->on_batch_done(mem, rec.layers, bs.pipelined_cycles);
  const std::vector<double> host_us = {
      std::chrono::duration<double, std::micro>(done - t.submit_time).count()};
  // Ledger before promises, as everywhere: a woken client sees its batch.
  ledger_.on_batch(rec, bs, host_us, {t.layers});

  lane_span.arg("memory", static_cast<double>(mem));
  lane_span.arg("pipelined_cycles", static_cast<double>(bs.pipelined_cycles));
  lane_span.arg("fused_cycles_saved", static_cast<double>(bs.fused_cycles_saved));
  if (BPIM_TRACE_ON()) {
    const double queue_us =
        std::chrono::duration<double, std::micro>(started - t.submit_time).count();
    obs::TraceSession::global().async_end(
        "request", trace_id(t.seq),
        obs::EventArgs{{"queue_us", queue_us}, {"host_us", host_us[0]}});
  }

  if (t.kind == detail::ReqKind::Forward)
    t.fwd_promise.set_value(std::move(fwd_results));
  else
    t.promise.set_value(std::move(chain_result));
}

}  // namespace bpim::serve
