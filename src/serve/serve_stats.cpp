#include "serve/serve_stats.hpp"

namespace bpim::serve {

namespace {

LatencySummary summarize(const SampleSet& samples) {
  LatencySummary s;
  s.count = samples.count();
  if (s.count == 0) return s;
  s.mean = samples.mean();
  s.p50 = samples.percentile(0.50);
  s.p99 = samples.percentile(0.99);
  s.max = samples.max();
  return s;
}

}  // namespace

void ServeLedger::on_submitted() {
  std::lock_guard lk(mutex_);
  ++totals_.submitted;
}

void ServeLedger::on_submit_rescinded() {
  std::lock_guard lk(mutex_);
  --totals_.submitted;
}

void ServeLedger::on_rejected() {
  std::lock_guard lk(mutex_);
  ++totals_.rejected;
}

void ServeLedger::on_expired(std::size_t n) {
  std::lock_guard lk(mutex_);
  totals_.expired += n;
}

void ServeLedger::on_batch(const BatchRecord& rec, const engine::BatchStats& bs,
                           const std::vector<double>& host_us_samples) {
  std::lock_guard lk(mutex_);
  ++totals_.batches;
  totals_.completed += rec.ops;
  totals_.modeled_pipelined_cycles += bs.pipelined_cycles;
  totals_.modeled_serial_cycles += bs.serial_cycles;
  totals_.energy += bs.energy;
  for (const double us : host_us_samples) host_us_.add(us);
  for (std::size_t i = 0; i < rec.ops; ++i)
    modeled_cycles_.add(static_cast<double>(bs.pipelined_cycles));
  if (recent_.size() < kRecentBatches) {
    recent_.push_back(rec);
  } else {
    recent_[recent_begin_] = rec;
    recent_begin_ = (recent_begin_ + 1) % kRecentBatches;
  }
}

ServeStats ServeLedger::snapshot(std::size_t queue_depth,
                                 std::size_t peak_queue_depth) const {
  std::lock_guard lk(mutex_);
  ServeStats s = totals_;
  s.queue_depth = queue_depth;
  s.peak_queue_depth = peak_queue_depth;
  s.host_us = summarize(host_us_);
  s.modeled_cycles = summarize(modeled_cycles_);
  s.recent_batches.reserve(recent_.size());
  for (std::size_t i = 0; i < recent_.size(); ++i)
    s.recent_batches.push_back(recent_[(recent_begin_ + i) % recent_.size()]);
  return s;
}

}  // namespace bpim::serve
