#include "serve/serve_stats.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace bpim::serve {

namespace {

LatencySummary summarize(const SampleSet& samples) {
  // SampleSet is total on degenerate sets (empty -> 0.0, one sample -> that
  // sample), so no count guard is needed here.
  LatencySummary s;
  s.count = samples.count();
  s.mean = samples.mean();
  s.p50 = samples.percentile(0.50);
  s.p90 = samples.percentile(0.90);
  s.p99 = samples.percentile(0.99);
  s.p999 = samples.percentile(0.999);
  s.max = samples.max();
  return s;
}

}  // namespace

ServeLedger::ServeLedger(std::size_t memories)
    : metrics_{obs::MetricsRegistry::global().counter(
                   "serve.requests.submitted", "requests admitted into the queue"),
               obs::MetricsRegistry::global().counter(
                   "serve.requests.rescinded", "admissions undone by a racing stop"),
               obs::MetricsRegistry::global().counter(
                   "serve.requests.rejected", "try_submit refusals (queue full)"),
               obs::MetricsRegistry::global().counter(
                   "serve.requests.expired", "requests failed with DeadlineExceeded"),
               obs::MetricsRegistry::global().counter(
                   "serve.requests.completed", "futures fulfilled with a result"),
               obs::MetricsRegistry::global().counter("serve.batches",
                                                      "run_batch calls issued"),
               obs::MetricsRegistry::global().histogram(
                   "serve.latency.host_us", "per-request wall latency, microseconds"),
               obs::MetricsRegistry::global().histogram(
                   "serve.batch.ops", "requests coalesced per executed batch"),
               obs::MetricsRegistry::global().histogram(
                   "serve.latency.modeled_cycles",
                   "per-request share of its batch's pipelined cycles")} {
  BPIM_REQUIRE(memories > 0, "ledger needs at least one memory lane");
  totals_.per_memory.resize(memories);
}

void ServeLedger::on_submitted() {
  metrics_.submitted.add();
  MutexLock lk(mutex_);
  ++totals_.submitted;
}

void ServeLedger::on_submit_rescinded() {
  metrics_.rescinded.add();
  MutexLock lk(mutex_);
  --totals_.submitted;
}

void ServeLedger::on_rejected() {
  metrics_.rejected.add();
  MutexLock lk(mutex_);
  ++totals_.rejected;
}

void ServeLedger::on_expired(std::size_t n) {
  metrics_.expired.add(n);
  MutexLock lk(mutex_);
  totals_.expired += n;
}

void ServeLedger::on_batch(const BatchRecord& rec, const engine::BatchStats& bs,
                           const std::vector<double>& host_us_samples,
                           const std::vector<std::size_t>& op_layers) {
  metrics_.completed.add(rec.ops);
  metrics_.batches.add();
  metrics_.batch_ops.observe(rec.ops);
  MutexLock lk(mutex_);
  BPIM_REQUIRE(rec.memory < totals_.per_memory.size(), "batch memory out of range");
  ++totals_.batches;
  totals_.completed += rec.ops;
  // Per-memory BatchStats merge into the aggregate serial account; the
  // parallel (makespan) view comes from the per-memory lanes at snapshot.
  aggregate_ += bs;
  MemoryLaneStats& lane = totals_.per_memory[rec.memory];
  ++lane.batches;
  lane.ops += rec.ops;
  lane.layers += rec.layers;
  lane.modeled_pipelined_cycles += bs.pipelined_cycles;
  for (const double us : host_us_samples) {
    host_us_.add(us);
    metrics_.host_us.observe(static_cast<std::uint64_t>(us < 0.0 ? 0.0 : us));
  }
  // Attribute the batch cost once across its riders: each op's modeled
  // latency is its layer-weighted share, so the samples of a batch sum to
  // its cost and p50/p99 neither overcount under coalescing nor charge a
  // one-layer rider for a 32-layer neighbour. Equal split when per-op
  // layers are unknown.
  std::size_t layer_sum = 0;
  if (op_layers.size() == rec.ops)
    for (const std::size_t l : op_layers) layer_sum += l;
  const double pipelined = static_cast<double>(bs.pipelined_cycles);
  for (std::size_t i = 0; i < rec.ops; ++i) {
    const double weight = layer_sum > 0 ? static_cast<double>(op_layers[i]) /
                                              static_cast<double>(layer_sum)
                                        : 1.0 / static_cast<double>(rec.ops);
    const double share = pipelined * weight;
    modeled_cycles_.add(share);
    metrics_.modeled_cycles.observe(static_cast<std::uint64_t>(share));
  }
  if (recent_.size() < kRecentBatches) {
    recent_.push_back(rec);
  } else {
    recent_[recent_begin_] = rec;
    recent_begin_ = (recent_begin_ + 1) % kRecentBatches;
  }
}

ServeStats ServeLedger::snapshot(std::size_t queue_depth,
                                 std::size_t peak_queue_depth) const {
  MutexLock lk(mutex_);
  ServeStats s = totals_;
  s.queue_depth = queue_depth;
  s.peak_queue_depth = peak_queue_depth;
  s.modeled_pipelined_cycles = aggregate_.pipelined_cycles;
  s.modeled_serial_cycles = aggregate_.serial_cycles;
  s.modeled_load_cycles = aggregate_.load_cycles;
  s.modeled_load_cycles_saved = aggregate_.load_cycles_saved;
  s.modeled_fused_cycles_saved = aggregate_.fused_cycles_saved;
  s.modeled_adaptive_cycles_saved = aggregate_.adaptive_cycles_saved;
  s.energy = aggregate_.energy;
  s.modeled_makespan_cycles = 0;
  for (const MemoryLaneStats& lane : s.per_memory)
    s.modeled_makespan_cycles =
        std::max(s.modeled_makespan_cycles, lane.modeled_pipelined_cycles);
  s.host_us = summarize(host_us_);
  s.modeled_cycles = summarize(modeled_cycles_);
  s.recent_batches.reserve(recent_.size());
  for (std::size_t i = 0; i < recent_.size(); ++i)
    s.recent_batches.push_back(recent_[(recent_begin_ + i) % recent_.size()]);
  return s;
}

}  // namespace bpim::serve
