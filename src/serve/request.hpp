#pragma once
// Public request-side types of the serving subsystem: per-request options
// (priority, deadline), server configuration, the exceptions a client can
// see, and the internal Ticket that carries one admitted request from
// submit() through the admission queue to the scheduler.
//
// Operand ownership: submit() copies the operand spans into the ticket, so
// a client may free its buffers as soon as submit() returns -- unlike the
// raw ExecutionEngine API, whose spans must outlive the run() call. The
// VecOp inside a ticket points into the ticket's own vectors; std::vector
// moves keep heap storage stable, so the spans survive the ticket's travel
// through the queue.

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <stdexcept>
#include <vector>

#include "engine/execution_engine.hpp"

namespace bpim::serve {

using Clock = std::chrono::steady_clock;

/// Per-request scheduling knobs.
struct SubmitOptions {
  /// Higher priorities are scheduled first; ties break FIFO by admission
  /// order. Priority affects ordering only -- results are identical.
  int priority = 0;
  /// If set and the request is still queued when the scheduler picks up
  /// work after this instant, the request fails with DeadlineExceeded
  /// instead of executing. Checked at schedule time, not mid-execution.
  std::optional<Clock::time_point> deadline;
};

struct ServerConfig {
  /// Bounded admission queue: submit() blocks when full (backpressure),
  /// try_submit() returns nullopt.
  std::size_t queue_capacity = 256;
  /// Max requests coalesced into one ExecutionEngine::run_batch call. With a
  /// memory pool this is the per-memory sub-batch cap; one dispatch group
  /// may select up to max_batch_ops x pool-size requests.
  std::size_t max_batch_ops = 64;
  /// When > 0, the scheduler waits up to this long after finding the queue
  /// non-empty for more arrivals to coalesce (it stops waiting early once
  /// max_batch_ops requests are queued). 0 = schedule immediately.
  std::chrono::microseconds coalesce_window{0};
};

/// submit()/try_submit() after stop(): the server no longer admits work.
class ServerStopped : public std::runtime_error {
 public:
  ServerStopped() : std::runtime_error("bpim::serve::Server is stopped") {}
};

/// Set on a request's future when its deadline passed while it was queued.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("request deadline exceeded while queued") {}
};

namespace detail {

/// What a ticket asks the engine for. Op is the classic single VecOp;
/// Chain and Forward are fused requests (engine/fusion.hpp) that execute
/// as one verified macro program and always dispatch as their own group.
enum class ReqKind { Op, Chain, Forward };

/// One admitted request in flight. Move-only; the op's spans point into
/// this ticket's own a/b storage.
struct Ticket {
  ReqKind kind = ReqKind::Op;
  engine::VecOp op;  ///< the op; fused kinds use only its kind/bits labels
  std::vector<std::uint64_t> a, b;
  /// Chain requests: the owned link operands, in fold order.
  std::vector<std::pair<engine::ChainLinkKind, std::vector<std::uint64_t>>> links;
  /// Forward requests: the pinned weight handles, in op order.
  std::vector<engine::ResidentOperand> fwd_weights;
  int priority = 0;
  std::optional<Clock::time_point> deadline;
  std::uint64_t seq = 0;  ///< admission order, the FIFO tiebreak
  Clock::time_point submit_time{};
  std::size_t layers = 0;         ///< row-pair layers, precomputed at submit
  std::uint64_t operand_hash = 0;  ///< FNV-1a over kind/bits/fn/operands (sticky placement)
  /// Pool memory that holds the op's resident operand(s); requests with a
  /// handle must run there, everything else is free for placement.
  std::optional<std::size_t> home;
  std::promise<engine::OpResult> promise;  ///< Op and Chain results
  std::promise<std::vector<engine::OpResult>> fwd_promise;  ///< Forward results

  /// Row-pair layers the request stages through the transient region: a
  /// resident-operand Op computes in its handle's own pairs and consumes
  /// none; a fused Forward stages its shared activation (`layers` counts
  /// exactly that region) even though its weights are resident; a Chain is
  /// fully transient (the coalescer's budget math packs against this).
  [[nodiscard]] std::size_t transient_layers() const {
    if (kind == ReqKind::Op) return home ? 0 : layers;
    return layers;
  }

  /// Surface a scheduling failure on whichever promise the client holds.
  void fail(std::exception_ptr err) {
    if (kind == ReqKind::Forward)
      fwd_promise.set_exception(std::move(err));
    else
      promise.set_exception(std::move(err));
  }
};

}  // namespace detail
}  // namespace bpim::serve
