#pragma once
// Bounded MPSC admission queue between client threads and the scheduler.
//
// Producers (any thread): push() blocks while the queue is full -- that is
// the server's backpressure -- and try_push() fails fast instead. Both fail
// once the queue is closed.
//
// Consumer (the scheduler thread): wait_pop_all() parks until work is
// admitted, optionally lingers for a coalesce window so near-simultaneous
// requests land in one batch, then moves *everything* out in one swap;
// try_pop_all() is the non-blocking top-up between batches. Closing wakes
// everyone; the consumer keeps draining until the queue is empty, so
// accepted work is never dropped.
//
// pause() freezes the consumer side only (admission stays open). It exists
// so tests and diagnostics can stage a known set of requests and then
// release them as one deterministic coalescing decision.

#include <chrono>
#include <deque>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/request.hpp"

namespace bpim::serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Block until there is room, then admit. Returns false (ticket left
  /// untouched) if the queue is or becomes closed.
  [[nodiscard]] bool push(detail::Ticket&& t) BPIM_EXCLUDES(mutex_);
  /// Admit only if there is room right now. Returns false (ticket left
  /// untouched) when full or closed.
  [[nodiscard]] bool try_push(detail::Ticket&& t) BPIM_EXCLUDES(mutex_);

  /// Consumer: block until at least one ticket is available (and the queue
  /// is not paused), linger up to `coalesce_window` for the depth to reach
  /// `fill_target`, then append every queued ticket to `out`. Returns false
  /// -- with nothing appended -- only when the queue is closed and empty:
  /// the drain is complete.
  [[nodiscard]] bool wait_pop_all(std::vector<detail::Ticket>& out,
                                  std::chrono::microseconds coalesce_window,
                                  std::size_t fill_target) BPIM_EXCLUDES(mutex_);
  /// Consumer: append whatever is queued right now (nothing while paused).
  void try_pop_all(std::vector<detail::Ticket>& out) BPIM_EXCLUDES(mutex_);

  /// Stop admitting; wakes blocked producers (push fails) and the consumer
  /// (which drains the remainder). Idempotent.
  void close() BPIM_EXCLUDES(mutex_);
  [[nodiscard]] bool closed() const BPIM_EXCLUDES(mutex_);

  /// Freeze/unfreeze the consumer side; a close() overrides pause.
  void set_paused(bool paused) BPIM_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t depth() const BPIM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t peak_depth() const BPIM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// Move every queued ticket to `out` and wake blocked producers.
  void drain_locked(std::vector<detail::Ticket>& out) BPIM_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_full_;   ///< producers park here
  CondVar not_empty_;  ///< the consumer parks here
  std::deque<detail::Ticket> queue_ BPIM_GUARDED_BY(mutex_);
  std::size_t peak_depth_ BPIM_GUARDED_BY(mutex_) = 0;
  bool closed_ BPIM_GUARDED_BY(mutex_) = false;
  bool paused_ BPIM_GUARDED_BY(mutex_) = false;
};

}  // namespace bpim::serve
