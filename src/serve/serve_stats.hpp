#pragma once
// Serving-side accounting: what the macro pool did on behalf of clients.
//
// ServeStats is an immutable snapshot (Server::stats()); ServeLedger is the
// mutex-guarded accumulator the server writes to. Latency is recorded per
// request on two clocks:
//   host      submit() to result-ready, microseconds of wall time -- queueing
//             plus simulator execution, what a client actually waited;
//   modeled   the pipelined cycle count of the batch the request rode in --
//             how long the modeled silicon was busy producing its batch.
// Every sample is kept (~8 bytes per completed request at model scale);
// quantiles come from the common SampleSet helper, linearly interpolated
// between order statistics.

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "engine/execution_engine.hpp"

namespace bpim::serve {

/// Quantile summary of one latency distribution (SampleSet semantics:
/// linear interpolation between order statistics).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// One executed batch, as the scheduler shaped it.
struct BatchRecord {
  engine::OpKind kind = engine::OpKind::Add;
  unsigned bits = 0;
  std::size_t ops = 0;     ///< requests coalesced into the batch
  std::size_t layers = 0;  ///< summed row-pair layers (residency)
  std::uint64_t pipelined_cycles = 0;
  std::uint64_t serial_cycles = 0;
};

struct ServeStats {
  std::uint64_t submitted = 0;  ///< admitted into the queue
  std::uint64_t rejected = 0;   ///< try_submit() refused: queue full
  std::uint64_t expired = 0;    ///< failed with DeadlineExceeded
  std::uint64_t completed = 0;  ///< futures fulfilled with a result
  std::uint64_t batches = 0;    ///< run_batch calls issued

  std::size_t queue_depth = 0;       ///< at snapshot time
  std::size_t peak_queue_depth = 0;  ///< high-water mark since construction

  /// Modeled-cycle totals over every batch: pipelined is what the coalesced
  /// schedule cost, serial what one-op-at-a-time submission would have.
  std::uint64_t modeled_pipelined_cycles = 0;
  std::uint64_t modeled_serial_cycles = 0;
  Joule energy{0.0};

  LatencySummary host_us;         ///< per request, microseconds of wall time
  LatencySummary modeled_cycles;  ///< per request, its batch's pipelined cycles

  /// The most recent batches, oldest first (bounded ring; see kRecentBatches).
  std::vector<BatchRecord> recent_batches;

  [[nodiscard]] double mean_batch_occupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) / static_cast<double>(batches);
  }
  [[nodiscard]] double modeled_cycles_per_op() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(modeled_pipelined_cycles) /
                                static_cast<double>(completed);
  }
  /// Cycle-model win of coalescing over one-op-at-a-time submission.
  [[nodiscard]] double coalescing_speedup() const {
    return modeled_pipelined_cycles == 0
               ? 1.0
               : static_cast<double>(modeled_serial_cycles) /
                     static_cast<double>(modeled_pipelined_cycles);
  }
};

/// Thread-safe accumulator behind Server::stats().
class ServeLedger {
 public:
  static constexpr std::size_t kRecentBatches = 64;

  void on_submitted();
  /// Undo one on_submitted(): the push raced a close and was never admitted.
  void on_submit_rescinded();
  void on_rejected();
  void on_expired(std::size_t n);
  /// Record one executed batch: its shape, the engine's BatchStats, and the
  /// per-request latency samples (host microseconds, one per request).
  void on_batch(const BatchRecord& rec, const engine::BatchStats& bs,
                const std::vector<double>& host_us_samples);

  [[nodiscard]] ServeStats snapshot(std::size_t queue_depth,
                                    std::size_t peak_queue_depth) const;

 private:
  mutable std::mutex mutex_;
  ServeStats totals_;                ///< counter/cycle fields only
  SampleSet host_us_;                ///< per-request samples
  SampleSet modeled_cycles_;         ///< per-request samples
  std::vector<BatchRecord> recent_;  ///< ring, oldest at recent_begin_
  std::size_t recent_begin_ = 0;
};

}  // namespace bpim::serve
