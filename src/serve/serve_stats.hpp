#pragma once
// Serving-side accounting: what the macro pool did on behalf of clients.
//
// ServeStats is an immutable snapshot (Server::stats()); ServeLedger is the
// mutex-guarded accumulator the server writes to. Latency is recorded per
// request on two clocks:
//   host      submit() to result-ready, microseconds of wall time -- queueing
//             plus simulator execution, what a client actually waited;
//   modeled   the request's share of its batch's pipelined cycles, weighted
//             by its row-pair layers (layers_i / sum layers): the batch cost
//             is attributed once across its riders, so per-op p50/p99 do not
//             overcount under coalescing and the samples of a batch sum to
//             its cost.
// Every sample is kept (~8 bytes per completed request at model scale);
// quantiles come from the common SampleSet helper, linearly interpolated
// between order statistics.
//
// With a multi-memory pool the ledger also keeps one lane per memory
// (NUMA node). Memories run in parallel in the cycle model, so the
// aggregate makespan is the busiest lane's total, not the sum.

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "engine/execution_engine.hpp"
#include "obs/metrics.hpp"

namespace bpim::serve {

/// Quantile summary of one latency distribution (SampleSet semantics:
/// linear interpolation between order statistics).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  ///< p99.9 -- tail resolution for overload work
  double max = 0.0;
};

/// One executed batch, as the scheduler shaped it. With a memory pool this
/// is one per-memory sub-batch of a dispatch group.
struct BatchRecord {
  engine::OpKind kind = engine::OpKind::Add;
  unsigned bits = 0;
  std::size_t ops = 0;      ///< requests coalesced into the batch
  std::size_t layers = 0;   ///< summed row-pair layers (residency)
  std::size_t memory = 0;   ///< pool memory (NUMA node) it ran on
  std::uint64_t pipelined_cycles = 0;
  std::uint64_t serial_cycles = 0;
};

/// Aggregate account of one pool memory (NUMA node).
struct MemoryLaneStats {
  std::uint64_t batches = 0;  ///< sub-batches dispatched to this memory
  std::uint64_t ops = 0;
  std::uint64_t layers = 0;
  std::uint64_t modeled_pipelined_cycles = 0;  ///< this memory's busy cycles
};

struct ServeStats {
  std::uint64_t submitted = 0;  ///< admitted into the queue
  std::uint64_t rejected = 0;   ///< try_submit() refused: queue full
  std::uint64_t expired = 0;    ///< failed with DeadlineExceeded
  std::uint64_t completed = 0;  ///< futures fulfilled with a result
  std::uint64_t batches = 0;    ///< run_batch calls issued

  std::size_t queue_depth = 0;       ///< at snapshot time
  std::size_t peak_queue_depth = 0;  ///< high-water mark since construction

  /// Modeled-cycle totals over every batch: pipelined is what the coalesced
  /// schedule cost, serial what one-op-at-a-time submission would have.
  std::uint64_t modeled_pipelined_cycles = 0;
  std::uint64_t modeled_serial_cycles = 0;
  /// Operand-load traffic: what the batches actually spent writing rows,
  /// and what resident operands (Server::pin) saved against re-poking.
  std::uint64_t modeled_load_cycles = 0;
  std::uint64_t modeled_load_cycles_saved = 0;
  /// Compute cycles fused program execution (submit_forward / submit_chain,
  /// chained-MAC datapath) saved vs op-at-a-time Table 1 issue; the
  /// pipelined/serial totals are already net of this.
  std::uint64_t modeled_fused_cycles_saved = 0;
  /// Compute cycles the adaptive policy (MULT operand narrowing / zero
  /// skipping, Server::set_adaptive_policy) saved across every batch; the
  /// pipelined/serial totals are already net of this.
  std::uint64_t modeled_adaptive_cycles_saved = 0;
  /// Busiest memory's pipelined total: the modeled finish line when the
  /// pool's memories run in parallel. Equals modeled_pipelined_cycles on a
  /// single-memory server.
  std::uint64_t modeled_makespan_cycles = 0;
  Joule energy{0.0};

  LatencySummary host_us;         ///< per request, microseconds of wall time
  LatencySummary modeled_cycles;  ///< per request, its share of its batch's cycles

  /// One lane per pool memory, index == memory id.
  std::vector<MemoryLaneStats> per_memory;

  /// The most recent batches, oldest first (bounded ring; see kRecentBatches).
  std::vector<BatchRecord> recent_batches;

  [[nodiscard]] double mean_batch_occupancy() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) / static_cast<double>(batches);
  }
  [[nodiscard]] double modeled_cycles_per_op() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(modeled_pipelined_cycles) /
                                static_cast<double>(completed);
  }
  /// Cycle-model win of coalescing over one-op-at-a-time submission.
  [[nodiscard]] double coalescing_speedup() const {
    return modeled_pipelined_cycles == 0
               ? 1.0
               : static_cast<double>(modeled_serial_cycles) /
                     static_cast<double>(modeled_pipelined_cycles);
  }
  /// Cycle-model win of spreading batches across parallel memories: total
  /// pipelined work over the busiest memory's share. 1.0 on a pool of one.
  [[nodiscard]] double scaleout_speedup() const {
    return modeled_makespan_cycles == 0
               ? 1.0
               : static_cast<double>(modeled_pipelined_cycles) /
                     static_cast<double>(modeled_makespan_cycles);
  }
  /// Fraction of the makespan memory `m` was busy, in [0,1].
  [[nodiscard]] double memory_occupancy(std::size_t m) const {
    if (m >= per_memory.size() || modeled_makespan_cycles == 0) return 0.0;
    return static_cast<double>(per_memory[m].modeled_pipelined_cycles) /
           static_cast<double>(modeled_makespan_cycles);
  }
};

/// Thread-safe accumulator behind Server::stats().
class ServeLedger {
 public:
  static constexpr std::size_t kRecentBatches = 64;

  /// `memories` sizes the per-memory lanes (>= 1).
  explicit ServeLedger(std::size_t memories = 1);

  void on_submitted() BPIM_EXCLUDES(mutex_);
  /// Undo one on_submitted(): the push raced a close and was never admitted.
  void on_submit_rescinded() BPIM_EXCLUDES(mutex_);
  void on_rejected() BPIM_EXCLUDES(mutex_);
  void on_expired(std::size_t n) BPIM_EXCLUDES(mutex_);
  /// Record one executed batch: its shape (rec.memory selects the lane), the
  /// engine's BatchStats, the per-request latency samples (host
  /// microseconds, one per request) and per-request row-pair layers. Each
  /// request's modeled latency sample is its layer-weighted share of the
  /// batch's pipelined cycles (equal split when the layers are unknown or
  /// sum to zero).
  void on_batch(const BatchRecord& rec, const engine::BatchStats& bs,
                const std::vector<double>& host_us_samples,
                const std::vector<std::size_t>& op_layers = {}) BPIM_EXCLUDES(mutex_);

  [[nodiscard]] ServeStats snapshot(std::size_t queue_depth,
                                    std::size_t peak_queue_depth) const BPIM_EXCLUDES(mutex_);

 private:
  /// Global obs instruments mirroring the ledger (resolved once at
  /// construction; updates are lock-free atomics). The ledger stays the
  /// source of truth for stats(); these exist for exposition (metrics
  /// snapshot / Prometheus scrape) without a Server handle.
  struct Metrics {
    obs::Counter& submitted;
    obs::Counter& rescinded;  ///< counters are monotonic: rescinds count up
    obs::Counter& rejected;
    obs::Counter& expired;
    obs::Counter& completed;
    obs::Counter& batches;
    obs::Histogram& host_us;
    obs::Histogram& batch_ops;
    obs::Histogram& modeled_cycles;
  };

  Metrics metrics_;
  mutable Mutex mutex_;
  /// Counter and lane fields only: the cycle/energy aggregates
  /// (modeled_pipelined/serial/makespan, energy) are derived from
  /// aggregate_ and the lanes at snapshot() and stay zero in here.
  ServeStats totals_ BPIM_GUARDED_BY(mutex_);
  engine::BatchStats aggregate_ BPIM_GUARDED_BY(mutex_);  ///< every sub-batch's BatchStats, merged
  SampleSet host_us_ BPIM_GUARDED_BY(mutex_);             ///< per-request samples
  SampleSet modeled_cycles_ BPIM_GUARDED_BY(mutex_);      ///< per-request samples
  std::vector<BatchRecord> recent_ BPIM_GUARDED_BY(mutex_);  ///< ring, oldest at recent_begin_
  std::size_t recent_begin_ BPIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace bpim::serve
