#include "serve/memory_pool.hpp"

#include <algorithm>
#include <thread>

#include "common/require.hpp"

namespace bpim::serve {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::RoundRobin:
      return "round-robin";
    case Placement::LeastLoaded:
      return "least-loaded";
    case Placement::StickyByOperand:
      return "sticky-by-operand";
  }
  return "?";
}

MemoryPool::MemoryPool(const MemoryPoolConfig& cfg) : placement_(cfg.placement) {
  BPIM_REQUIRE(cfg.memories > 0, "pool needs at least one memory");
  std::size_t threads = cfg.threads_per_memory;
  if (threads == 0) {
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::max<std::size_t>(1, hw / cfg.memories);
  }
  nodes_.reserve(cfg.memories);
  engines_.reserve(cfg.memories);
  for (std::size_t i = 0; i < cfg.memories; ++i) {
    Node node;
    macro::MemoryConfig mcfg = cfg.memory;
    // Outside the per-memory bank stride (b * 1000): every node gets its own
    // disturb-RNG streams without overlapping a sibling's.
    mcfg.seed_offset += i * 1'000'000;
    node.memory = std::make_unique<macro::ImcMemory>(mcfg);
    node.owned_engine =
        std::make_unique<engine::ExecutionEngine>(*node.memory, engine::EngineConfig{threads});
    node.engine = node.owned_engine.get();
    engines_.push_back(node.engine);
    nodes_.push_back(std::move(node));
  }
  load_cycles_.assign(engines_.size(), 0);
  check_homogeneous();
}

MemoryPool::MemoryPool(std::vector<engine::ExecutionEngine*> engines, Placement placement)
    : engines_(std::move(engines)), placement_(placement) {
  BPIM_REQUIRE(!engines_.empty(), "pool needs at least one engine");
  for (engine::ExecutionEngine* e : engines_)
    BPIM_REQUIRE(e != nullptr, "pool engine must not be null");
  load_cycles_.assign(engines_.size(), 0);
  check_homogeneous();
}

void MemoryPool::check_homogeneous() const {
  // Placement must be free to put any sub-batch on any memory, so every
  // node has to agree on the residency geometry an op maps to (macro count,
  // rows, columns) and on the result-affecting config knobs (WL scheme,
  // supply, cycle time, disturb mode). Energy-parameter equality is the
  // caller's responsibility on a non-owning pool; the owning constructor
  // builds every node from one config.
  const macro::MacroConfig& head = engines_.front()->memory().config().macro;
  const std::size_t macros = engines_.front()->memory().macro_count();
  const std::size_t capacity = engines_.front()->row_pair_capacity();
  const double cycle_time = engines_.front()->memory().macro(0).cycle_time().si();
  for (engine::ExecutionEngine* e : engines_) {
    const macro::MacroConfig& c = e->memory().config().macro;
    BPIM_REQUIRE(e->memory().macro_count() == macros,
                 "pool memories must have identical macro counts");
    BPIM_REQUIRE(e->row_pair_capacity() == capacity,
                 "pool memories must have identical row-pair capacity");
    BPIM_REQUIRE(c.geometry.cols == head.geometry.cols,
                 "pool memories must have identical column counts");
    BPIM_REQUIRE(c.wl_scheme == head.wl_scheme,
                 "pool memories must use the same WL scheme");
    BPIM_REQUIRE(c.vdd.si() == head.vdd.si(),
                 "pool memories must run at the same supply voltage");
    // With injection on, per-node RNG streams (and their histories) make
    // results depend on which memory place() chose -- the bit-identity
    // guarantee cannot hold, so refuse rather than silently break it. A
    // pool of one has no placement choice, so a single disturb-injected
    // memory (the seed's experiment setup) stays servable.
    BPIM_REQUIRE(engines_.size() == 1 || !c.inject_disturb,
                 "disturb injection breaks placement-independent results; "
                 "run injected-disturb experiments on a single memory");
    BPIM_REQUIRE(e->memory().macro(0).cycle_time().si() == cycle_time,
                 "pool memories must have identical cycle time");
  }
}

engine::ExecutionEngine& MemoryPool::engine(std::size_t i) const {
  BPIM_REQUIRE(i < engines_.size(), "pool memory index out of range");
  return *engines_[i];
}

std::size_t MemoryPool::row_pair_capacity() const {
  return engines_.front()->row_pair_capacity();
}

std::size_t MemoryPool::layers_for(const engine::VecOp& op) const {
  return engines_.front()->layers_for(op);
}

std::size_t MemoryPool::resident_layers(std::size_t m) const {
  BPIM_REQUIRE(m < engines_.size(), "pool memory index out of range");
  return engines_[m]->resident_layers();
}

std::size_t MemoryPool::max_resident_layers() const {
  std::size_t worst = 0;
  for (const engine::ExecutionEngine* e : engines_)
    worst = std::max(worst, e->resident_layers());
  return worst;
}

std::vector<std::size_t> MemoryPool::place(const std::vector<Slot>& group) {
  // Residency overrides policy: a sub-batch whose requests reference
  // pinned operands runs on the memory that holds them. Only the free
  // slots go through the configured policy.
  std::vector<std::size_t> where;
  where.reserve(group.size());
  const std::size_t n = engines_.size();
  switch (placement_) {
    case Placement::RoundRobin:
      for (const Slot& s : group) {
        if (s.home) {
          where.push_back(*s.home);
          continue;
        }
        where.push_back(rr_next_);
        rr_next_ = (rr_next_ + 1) % n;
      }
      break;
    case Placement::StickyByOperand:
      // Pure function of the operands: the same weight rows always land on
      // the same memory, whatever ran before. Handle-backed sub-batches
      // are stickier still -- their home memory holds the rows.
      for (const Slot& s : group) where.push_back(s.home ? *s.home : s.operand_hash % n);
      break;
    case Placement::LeastLoaded: {
      MutexLock lk(mutex_);
      // Charge each assignment an in-flight estimate right away, so the
      // sub-batches of one concurrent dispatch group spread across
      // memories instead of all chasing the same minimum. Homed slots are
      // charged too -- their load is just as real to later free slots.
      const std::uint64_t cycles_per_layer =
          total_layers_ == 0 ? 1 : std::max<std::uint64_t>(1, total_cycles_ / total_layers_);
      std::vector<std::uint64_t> load = load_cycles_;
      for (const Slot& s : group) {
        const std::size_t m = s.home ? *s.home
                                     : static_cast<std::size_t>(std::min_element(
                                           load.begin(), load.end()) -
                                       load.begin());
        where.push_back(m);
        load[m] += std::max<std::uint64_t>(1, s.layers * cycles_per_layer);
      }
      break;
    }
  }
  return where;
}

void MemoryPool::on_batch_done(std::size_t mem, std::size_t layers,
                               std::uint64_t pipelined_cycles) {
  MutexLock lk(mutex_);
  BPIM_REQUIRE(mem < load_cycles_.size(), "pool memory index out of range");
  load_cycles_[mem] += pipelined_cycles;
  total_cycles_ += pipelined_cycles;
  total_layers_ += layers;
}

std::vector<std::uint64_t> MemoryPool::dispatched_cycles() const {
  MutexLock lk(mutex_);
  return load_cycles_;
}

}  // namespace bpim::serve
