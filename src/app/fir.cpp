#include "app/fir.hpp"

#include "common/require.hpp"

namespace bpim::app {

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits)
    : taps_(std::move(taps)), bits_(bits) {
  BPIM_REQUIRE(!taps_.empty(), "filter needs at least one tap");
  for (const auto t : taps_)
    BPIM_REQUIRE(fits_signed(t, bits), "tap out of signed range for the precision");
}

std::vector<std::int64_t> FirFilter::apply(macro::ImcMemory& mem,
                                           const std::vector<std::int64_t>& x) {
  engine::ExecutionEngine eng(mem);
  return apply(eng, x);
}

std::vector<std::int64_t> FirFilter::apply(engine::ExecutionEngine& eng,
                                           const std::vector<std::int64_t>& x) {
  SignedVectorOps ops(eng, bits_);
  stats_ = FirStats{};
  std::vector<std::int64_t> y(x.size(), 0);

  // Each non-zero tap multiplies the stream delayed by k against the
  // broadcast tap; all taps go down as one double-buffered engine batch.
  std::vector<std::vector<std::int64_t>> delayed_streams, tap_vectors;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    if (taps_[k] == 0) continue;
    std::vector<std::int64_t> delayed(x.size(), 0);
    for (std::size_t n = k; n < x.size(); ++n) delayed[n] = x[n - k];
    delayed_streams.push_back(std::move(delayed));
    tap_vectors.emplace_back(x.size(), taps_[k]);
  }
  if (delayed_streams.empty()) return y;

  const auto partials = ops.mult_batch(delayed_streams, tap_vectors);
  for (std::size_t k = 0; k < partials.size(); ++k) {
    const RunStats& run = ops.last_batch_runs()[k];
    stats_.macs += x.size();
    stats_.cycles += run.elapsed_cycles;
    stats_.energy += run.energy;
    for (std::size_t n = 0; n < x.size(); ++n) y[n] += partials[k][n];
  }
  stats_.pipelined_cycles = ops.last_batch().pipelined_cycles;
  return y;
}

std::vector<std::int64_t> FirFilter::apply_reference(const std::vector<std::int64_t>& x) const {
  std::vector<std::int64_t> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n)
    for (std::size_t k = 0; k <= n && k < taps_.size(); ++k) y[n] += taps_[k] * x[n - k];
  return y;
}

}  // namespace bpim::app
