#include "app/fir.hpp"

#include "common/require.hpp"

namespace bpim::app {

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits)
    : taps_(std::move(taps)), bits_(bits) {
  BPIM_REQUIRE(!taps_.empty(), "filter needs at least one tap");
  for (const auto t : taps_)
    BPIM_REQUIRE(fits_signed(t, bits), "tap out of signed range for the precision");
}

std::vector<std::int64_t> FirFilter::apply(macro::ImcMemory& mem,
                                           const std::vector<std::int64_t>& x) {
  SignedVectorOps ops(mem, bits_);
  stats_ = FirStats{};
  std::vector<std::int64_t> y(x.size(), 0);

  for (std::size_t k = 0; k < taps_.size(); ++k) {
    if (taps_[k] == 0) continue;
    // Tap k multiplies the stream delayed by k against the broadcast tap.
    std::vector<std::int64_t> delayed(x.size(), 0);
    for (std::size_t n = k; n < x.size(); ++n) delayed[n] = x[n - k];
    const std::vector<std::int64_t> tap(x.size(), taps_[k]);
    const auto partial = ops.mult(delayed, tap);
    const auto& run = ops.last_run();
    stats_.macs += x.size();
    stats_.cycles += run.elapsed_cycles;
    stats_.energy += run.energy;
    for (std::size_t n = 0; n < x.size(); ++n) y[n] += partial[n];
  }
  return y;
}

std::vector<std::int64_t> FirFilter::apply_reference(const std::vector<std::int64_t>& x) const {
  std::vector<std::int64_t> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n)
    for (std::size_t k = 0; k <= n && k < taps_.size(); ++k) y[n] += taps_[k] * x[n - k];
  return y;
}

}  // namespace bpim::app
