#include "app/fir.hpp"

#include <utility>

#include "common/require.hpp"
#include "serve/server.hpp"

namespace bpim::app {

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits)
    : taps_(std::move(taps)), bits_(bits) {
  BPIM_REQUIRE(!taps_.empty(), "filter needs at least one tap");
  for (const auto t : taps_)
    BPIM_REQUIRE(fits_signed(t, bits), "tap out of signed range for the precision");
}

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits,
                     engine::ExecutionEngine& eng, std::size_t block_len)
    : FirFilter(std::move(taps), bits) {
  SignedVectorOps ops(eng, bits_);
  pin_taps(ops, block_len);
  pinned_engine_ = &eng;
}

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits, serve::Server& server,
                     std::size_t block_len)
    : FirFilter(std::move(taps), bits) {
  SignedVectorOps ops(server, bits_);
  pin_taps(ops, block_len);
  pinned_server_ = &server;
}

FirFilter::~FirFilter() { release_handles(); }

FirFilter::FirFilter(FirFilter&& other) noexcept
    : taps_(std::move(other.taps_)),
      bits_(other.bits_),
      stats_(other.stats_),
      tap_handles_(std::move(other.tap_handles_)),
      block_len_(other.block_len_),
      pinned_engine_(other.pinned_engine_),
      pinned_server_(other.pinned_server_) {
  other.tap_handles_.clear();
  other.block_len_ = 0;
  other.pinned_engine_ = nullptr;
  other.pinned_server_ = nullptr;
}

FirFilter& FirFilter::operator=(FirFilter&& other) noexcept {
  if (this == &other) return *this;
  release_handles();
  taps_ = std::move(other.taps_);
  bits_ = other.bits_;
  stats_ = other.stats_;
  tap_handles_ = std::move(other.tap_handles_);
  block_len_ = other.block_len_;
  pinned_engine_ = other.pinned_engine_;
  pinned_server_ = other.pinned_server_;
  other.tap_handles_.clear();
  other.block_len_ = 0;
  other.pinned_engine_ = nullptr;
  other.pinned_server_ = nullptr;
  return *this;
}

void FirFilter::pin_taps(SignedVectorOps& ops, std::size_t block_len) {
  BPIM_REQUIRE(block_len > 0, "FIR block length must be positive");
  block_len_ = block_len;
  for (const auto t : taps_) {
    if (t == 0) continue;  // zero taps never reach the memory
    tap_handles_.push_back(
        ops.pin_mult_magnitudes(std::vector<std::int64_t>(block_len, t)));
  }
}

void FirFilter::release_handles() noexcept {
  for (const auto& h : tap_handles_) {
    if (pinned_server_ != nullptr) {
      (void)pinned_server_->unpin(h);
    } else if (pinned_engine_ != nullptr) {
      (void)pinned_engine_->unpin(h);
    }
  }
  tap_handles_.clear();
}

std::vector<std::int64_t> FirFilter::apply(macro::ImcMemory& mem,
                                           const std::vector<std::int64_t>& x) {
  engine::ExecutionEngine eng(mem);
  return apply(eng, x);
}

std::vector<std::int64_t> FirFilter::apply(engine::ExecutionEngine& eng,
                                           const std::vector<std::int64_t>& x) {
  SignedVectorOps ops(eng, bits_);
  return apply_on(ops, x, pinned_engine_ == &eng && x.size() == block_len_);
}

std::vector<std::int64_t> FirFilter::apply(serve::Server& server,
                                           const std::vector<std::int64_t>& x) {
  SignedVectorOps ops(server, bits_);
  return apply_on(ops, x, pinned_server_ == &server && x.size() == block_len_);
}

std::vector<std::int64_t> FirFilter::apply_on(SignedVectorOps& ops,
                                              const std::vector<std::int64_t>& x,
                                              bool resident) {
  stats_ = FirStats{};
  std::vector<std::int64_t> y(x.size(), 0);

  // Each non-zero tap multiplies the stream delayed by k against the
  // broadcast tap; all taps go down as one double-buffered engine batch.
  // With resident tap rows only the delayed streams are loaded.
  std::vector<std::vector<std::int64_t>> delayed_streams, tap_vectors;
  std::vector<engine::ResidentOperand> handles;
  std::vector<bool> negative;
  std::size_t nonzero = 0;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    if (taps_[k] == 0) continue;
    std::vector<std::int64_t> delayed(x.size(), 0);
    for (std::size_t n = k; n < x.size(); ++n) delayed[n] = x[n - k];
    delayed_streams.push_back(std::move(delayed));
    if (resident) {
      handles.push_back(tap_handles_[nonzero]);
      negative.push_back(taps_[k] < 0);
    } else {
      tap_vectors.emplace_back(x.size(), taps_[k]);
    }
    ++nonzero;
  }
  if (delayed_streams.empty()) return y;

  const auto partials = resident
                            ? ops.mult_batch_resident(delayed_streams, handles, negative)
                            : ops.mult_batch(delayed_streams, tap_vectors);
  for (std::size_t k = 0; k < partials.size(); ++k) {
    const RunStats& run = ops.last_batch_runs()[k];
    stats_.macs += x.size();
    stats_.cycles += run.elapsed_cycles;
    stats_.load_cycles += run.load_cycles;
    stats_.load_cycles_saved += run.load_cycles_saved;
    stats_.energy += run.energy;
    for (std::size_t n = 0; n < x.size(); ++n) y[n] += partials[k][n];
  }
  if (ops.server() == nullptr) stats_.pipelined_cycles = ops.last_batch().pipelined_cycles;
  return y;
}

std::vector<std::int64_t> FirFilter::apply_reference(const std::vector<std::int64_t>& x) const {
  std::vector<std::int64_t> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n)
    for (std::size_t k = 0; k <= n && k < taps_.size(); ++k) y[n] += taps_[k] * x[n - k];
  return y;
}

}  // namespace bpim::app
