#include "app/fir.hpp"

#include <utility>

#include "common/require.hpp"
#include "serve/server.hpp"

namespace bpim::app {

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits)
    : taps_(std::move(taps)), bits_(bits) {
  BPIM_REQUIRE(!taps_.empty(), "filter needs at least one tap");
  for (const auto t : taps_)
    BPIM_REQUIRE(fits_signed(t, bits), "tap out of signed range for the precision");
}

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits,
                     engine::ExecutionEngine& eng, std::size_t block_len)
    : FirFilter(std::move(taps), bits) {
  SignedVectorOps ops(eng, bits_);
  pin_taps(ops, block_len);
  pinned_engine_ = &eng;
  // Compile-at-pin: the fused whole-filter program is built now, so the
  // first pinned-block apply() already runs fused.
  (void)ops.compile_forward(tap_handles_);
}

FirFilter::FirFilter(std::vector<std::int64_t> taps, unsigned bits, serve::Server& server,
                     std::size_t block_len)
    : FirFilter(std::move(taps), bits) {
  SignedVectorOps ops(server, bits_);
  pin_taps(ops, block_len);
  pinned_server_ = &server;
}

FirFilter::~FirFilter() { release_handles(); }

FirFilter::FirFilter(FirFilter&& other) noexcept
    : taps_(std::move(other.taps_)),
      bits_(other.bits_),
      stats_(other.stats_),
      tap_handles_(std::move(other.tap_handles_)),
      block_len_(other.block_len_),
      pinned_engine_(other.pinned_engine_),
      pinned_server_(other.pinned_server_) {
  other.tap_handles_.clear();
  other.block_len_ = 0;
  other.pinned_engine_ = nullptr;
  other.pinned_server_ = nullptr;
}

FirFilter& FirFilter::operator=(FirFilter&& other) noexcept {
  if (this == &other) return *this;
  release_handles();
  taps_ = std::move(other.taps_);
  bits_ = other.bits_;
  stats_ = other.stats_;
  tap_handles_ = std::move(other.tap_handles_);
  block_len_ = other.block_len_;
  pinned_engine_ = other.pinned_engine_;
  pinned_server_ = other.pinned_server_;
  other.tap_handles_.clear();
  other.block_len_ = 0;
  other.pinned_engine_ = nullptr;
  other.pinned_server_ = nullptr;
  return *this;
}

void FirFilter::pin_taps(SignedVectorOps& ops, std::size_t block_len) {
  BPIM_REQUIRE(block_len > 0, "FIR block length must be positive");
  block_len_ = block_len;
  // One colocate key per filter so a multi-memory server homes every tap
  // row together -- the fused apply needs them on one memory.
  std::uint64_t key = 1469598103934665603ull;
  const auto mix = [&key](std::uint64_t v) {
    key ^= v;
    key *= 1099511628211ull;
  };
  mix(bits_);
  mix(block_len);
  for (const auto t : taps_) mix(static_cast<std::uint64_t>(t));
  for (const auto t : taps_) {
    if (t == 0) continue;  // zero taps never reach the memory
    tap_handles_.push_back(
        ops.pin_mult_magnitudes(std::vector<std::int64_t>(block_len, t), key));
  }
}

void FirFilter::release_handles() noexcept {
  for (const auto& h : tap_handles_) {
    if (pinned_server_ != nullptr) {
      (void)pinned_server_->unpin(h);
    } else if (pinned_engine_ != nullptr) {
      (void)pinned_engine_->unpin(h);
    }
  }
  tap_handles_.clear();
}

std::vector<std::int64_t> FirFilter::apply(macro::ImcMemory& mem,
                                           const std::vector<std::int64_t>& x) {
  engine::ExecutionEngine eng(mem);
  return apply(eng, x);
}

std::vector<std::int64_t> FirFilter::apply(engine::ExecutionEngine& eng,
                                           const std::vector<std::int64_t>& x) {
  SignedVectorOps ops(eng, bits_);
  return apply_on(ops, x, pinned_engine_ == &eng && x.size() == block_len_);
}

std::vector<std::int64_t> FirFilter::apply(serve::Server& server,
                                           const std::vector<std::int64_t>& x) {
  SignedVectorOps ops(server, bits_);
  return apply_on(ops, x, pinned_server_ == &server && x.size() == block_len_);
}

std::vector<std::int64_t> FirFilter::apply_on(SignedVectorOps& ops,
                                              const std::vector<std::int64_t>& x,
                                              bool resident) {
  stats_ = FirStats{};
  std::vector<std::int64_t> y(x.size(), 0);

  std::vector<std::size_t> delays;  // tap index of each non-zero tap, in order
  std::vector<bool> negative;
  for (std::size_t k = 0; k < taps_.size(); ++k) {
    if (taps_[k] == 0) continue;
    delays.push_back(k);
    negative.push_back(taps_[k] < 0);
  }
  if (delays.empty()) return y;

  if (resident) {
    // Fused: each pinned tap row is a broadcast constant, so the undelayed
    // block |x| staged once against every tap row gives the complete
    // product streams p[k][n] = x[n] * taps[k]; the delay is pure host
    // reindexing (y[n] += p[k][n-k]). One compiled macro program, same
    // products the delayed op-at-a-time path computes.
    const auto partials = ops.mult_forward_resident(x, tap_handles_, negative);
    for (std::size_t k = 0; k < partials.size(); ++k) {
      const RunStats& run = ops.last_batch_runs()[k];
      stats_.macs += x.size();
      stats_.cycles += run.elapsed_cycles;
      stats_.load_cycles += run.load_cycles;
      stats_.load_cycles_saved += run.load_cycles_saved;
      stats_.fused_cycles_saved += run.fused_cycles_saved;
      stats_.adaptive_cycles_saved += run.adaptive_cycles_saved;
      stats_.energy += run.energy;
      const std::size_t d = delays[k];
      for (std::size_t n = d; n < x.size(); ++n) y[n] += partials[k][n - d];
    }
    if (ops.server() == nullptr) stats_.pipelined_cycles = ops.last_batch().pipelined_cycles;
    return y;
  }

  // Unpinned: each non-zero tap multiplies the stream delayed by k against
  // the broadcast tap; all taps go down as one double-buffered engine batch.
  std::vector<std::vector<std::int64_t>> delayed_streams, tap_vectors;
  for (const std::size_t k : delays) {
    std::vector<std::int64_t> delayed(x.size(), 0);
    for (std::size_t n = k; n < x.size(); ++n) delayed[n] = x[n - k];
    delayed_streams.push_back(std::move(delayed));
    tap_vectors.emplace_back(x.size(), taps_[k]);
  }
  const auto partials = ops.mult_batch(delayed_streams, tap_vectors);
  for (std::size_t k = 0; k < partials.size(); ++k) {
    const RunStats& run = ops.last_batch_runs()[k];
    stats_.macs += x.size();
    stats_.cycles += run.elapsed_cycles;
    stats_.load_cycles += run.load_cycles;
    stats_.load_cycles_saved += run.load_cycles_saved;
    stats_.adaptive_cycles_saved += run.adaptive_cycles_saved;
    stats_.energy += run.energy;
    for (std::size_t n = 0; n < x.size(); ++n) y[n] += partials[k][n];
  }
  if (ops.server() == nullptr) stats_.pipelined_cycles = ops.last_batch().pipelined_cycles;
  return y;
}

std::vector<std::int64_t> FirFilter::apply_reference(const std::vector<std::int64_t>& x) const {
  std::vector<std::int64_t> y(x.size(), 0);
  for (std::size_t n = 0; n < x.size(); ++n)
    for (std::size_t k = 0; k <= n && k < taps_.size(); ++k) y[n] += taps_[k] * x[n - k];
  return y;
}

}  // namespace bpim::app
