#include "app/mlp.hpp"

#include <utility>

#include "common/require.hpp"

namespace bpim::app {

void Mlp::build(std::vector<MlpLayerSpec> layers, engine::ExecutionEngine* eng,
                serve::Server* server) {
  BPIM_REQUIRE(!layers.empty(), "MLP needs at least one layer");
  std::size_t expected_in = layers.front().weights.front().size();
  for (auto& spec : layers) {
    BPIM_REQUIRE(!spec.weights.empty(), "layer has no neurons");
    BPIM_REQUIRE(spec.weights.front().size() == expected_in,
                 "layer input size does not match previous layer output");
    expected_in = spec.weights.size();
    if (server != nullptr) {
      layers_.emplace_back(spec.weights, spec.bits, *server);
    } else if (eng != nullptr) {
      layers_.emplace_back(spec.weights, spec.bits, *eng);
    } else {
      layers_.emplace_back(spec.weights, spec.bits);
    }
  }
}

Mlp::Mlp(std::vector<MlpLayerSpec> layers) { build(std::move(layers), nullptr, nullptr); }

Mlp::Mlp(std::vector<MlpLayerSpec> layers, engine::ExecutionEngine& eng) {
  build(std::move(layers), &eng, nullptr);
}

Mlp::Mlp(std::vector<MlpLayerSpec> layers, serve::Server& server) {
  build(std::move(layers), nullptr, &server);
}

std::size_t Mlp::in_features() const { return layers_.front().in_features(); }
std::size_t Mlp::out_features() const { return layers_.back().out_features(); }

bool Mlp::pinned() const {
  for (const auto& layer : layers_)
    if (!layer.pinned()) return false;
  return true;
}

std::vector<double> Mlp::forward(macro::ImcMemory& mem, const std::vector<double>& x) {
  engine::ExecutionEngine eng(mem);
  return forward(eng, x);
}

namespace {

void merge_layer(LayerStats& total, const LayerStats& s) {
  total.macs += s.macs;
  total.cycles += s.cycles;
  total.pipelined_cycles += s.pipelined_cycles;
  total.load_cycles += s.load_cycles;
  total.load_cycles_saved += s.load_cycles_saved;
  total.fused_cycles_saved += s.fused_cycles_saved;
  total.adaptive_cycles_saved += s.adaptive_cycles_saved;
  total.energy += s.energy;
  total.elapsed += s.elapsed;
}

}  // namespace

std::vector<double> Mlp::forward(engine::ExecutionEngine& eng, const std::vector<double>& x) {
  stats_ = LayerStats{};
  per_layer_.clear();
  std::vector<double> act = x;
  for (auto& layer : layers_) {
    act = layer.forward(eng, act);  // ReLU applied inside the layer
    per_layer_.push_back(layer.last_stats());
    merge_layer(stats_, per_layer_.back());
  }
  return act;
}

std::vector<double> Mlp::forward(serve::Server& server, const std::vector<double>& x) {
  stats_ = LayerStats{};
  per_layer_.clear();
  std::vector<double> act = x;
  for (auto& layer : layers_) {
    act = layer.forward(server, act);
    per_layer_.push_back(layer.last_stats());
    merge_layer(stats_, per_layer_.back());
  }
  return act;
}

std::vector<double> Mlp::forward_reference(const std::vector<double>& x) const {
  std::vector<double> act = x;
  for (const auto& layer : layers_) act = layer.forward_reference(act);
  return act;
}

}  // namespace bpim::app
