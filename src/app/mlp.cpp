#include "app/mlp.hpp"

#include "common/require.hpp"

namespace bpim::app {

Mlp::Mlp(std::vector<MlpLayerSpec> layers) {
  BPIM_REQUIRE(!layers.empty(), "MLP needs at least one layer");
  std::size_t expected_in = layers.front().weights.front().size();
  for (auto& spec : layers) {
    BPIM_REQUIRE(!spec.weights.empty(), "layer has no neurons");
    BPIM_REQUIRE(spec.weights.front().size() == expected_in,
                 "layer input size does not match previous layer output");
    expected_in = spec.weights.size();
    layers_.emplace_back(spec.weights, spec.bits);
  }
}

std::size_t Mlp::in_features() const { return layers_.front().in_features(); }
std::size_t Mlp::out_features() const { return layers_.back().out_features(); }

std::vector<double> Mlp::forward(macro::ImcMemory& mem, const std::vector<double>& x) {
  engine::ExecutionEngine eng(mem);
  return forward(eng, x);
}

std::vector<double> Mlp::forward(engine::ExecutionEngine& eng, const std::vector<double>& x) {
  stats_ = LayerStats{};
  per_layer_.clear();
  std::vector<double> act = x;
  for (auto& layer : layers_) {
    act = layer.forward(eng, act);  // ReLU applied inside the layer
    const LayerStats& s = layer.last_stats();
    per_layer_.push_back(s);
    stats_.macs += s.macs;
    stats_.cycles += s.cycles;
    stats_.pipelined_cycles += s.pipelined_cycles;
    stats_.energy += s.energy;
    stats_.elapsed += s.elapsed;
  }
  return act;
}

std::vector<double> Mlp::forward_reference(const std::vector<double>& x) const {
  std::vector<double> act = x;
  for (const auto& layer : layers_) act = layer.forward_reference(act);
  return act;
}

}  // namespace bpim::app
