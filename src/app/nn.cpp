#include "app/nn.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace bpim::app {

Quantized quantize(const std::vector<double>& x, unsigned bits) {
  BPIM_REQUIRE(!x.empty(), "cannot quantise an empty vector");
  BPIM_REQUIRE(bits >= 2 && bits <= 32, "quantisation width out of range");
  double lo = 0.0, hi = 0.0;
  for (const double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Unsigned codes; negative inputs are clamped (callers pre-shift if they
  // need signed ranges -- keeps the in-memory arithmetic unsigned like the
  // paper's datapath).
  const double levels = static_cast<double>((1ull << bits) - 1);
  const double scale = hi > 0.0 ? hi / levels : 1.0;
  Quantized q;
  q.scale = scale;
  q.values.reserve(x.size());
  for (const double v : x) {
    const double code = std::clamp(std::round(v / scale), 0.0, levels);
    q.values.push_back(static_cast<std::uint64_t>(code));
  }
  return q;
}

QuantizedLinear::QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits)
    : weights_raw_(std::move(weights)), bits_(bits) {
  BPIM_REQUIRE(!weights_raw_.empty(), "layer needs at least one output neuron");
  const std::size_t in = weights_raw_.front().size();
  for (const auto& row : weights_raw_) {
    BPIM_REQUIRE(row.size() == in, "ragged weight matrix");
    weights_.push_back(quantize(row, bits));
  }
}

std::size_t QuantizedLinear::in_features() const { return weights_raw_.front().size(); }

std::vector<double> QuantizedLinear::forward(macro::ImcMemory& mem,
                                             const std::vector<double>& x) {
  engine::ExecutionEngine eng(mem);
  return forward(eng, x);
}

std::vector<double> QuantizedLinear::forward(engine::ExecutionEngine& eng,
                                             const std::vector<double>& x) {
  BPIM_REQUIRE(x.size() == in_features(), "input size mismatch");
  const Quantized qx = quantize(x, bits_);

  // One engine batch: every output neuron's product vector is an
  // independent op, so loads double-buffer against computes across neurons.
  VectorEngine engine(eng, bits_);
  std::vector<std::pair<std::span<const std::uint64_t>, std::span<const std::uint64_t>>> pairs;
  pairs.reserve(weights_.size());
  for (const auto& w : weights_) pairs.emplace_back(w.values, qx.values);
  const auto results = engine.mult_batch(pairs);

  stats_ = LayerStats{};
  std::vector<double> y;
  y.reserve(out_features());
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    // In-memory products, host-side accumulate (see header).
    std::uint64_t acc = 0;
    for (const auto p : results[j].values) acc += p;
    stats_.macs += x.size();
    stats_.cycles += results[j].stats.elapsed_cycles;
    stats_.energy += results[j].stats.energy;
    stats_.elapsed += results[j].stats.elapsed_time;
    const double real = static_cast<double>(acc) * weights_[j].scale * qx.scale;
    y.push_back(std::max(0.0, real));  // ReLU
  }
  stats_.pipelined_cycles = eng.last_batch().pipelined_cycles;
  return y;
}

std::vector<double> QuantizedLinear::forward_reference(const std::vector<double>& x) const {
  BPIM_REQUIRE(x.size() == in_features(), "input size mismatch");
  const Quantized qx = quantize(x, bits_);
  std::vector<double> y;
  y.reserve(out_features());
  for (const auto& w : weights_) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      acc += static_cast<double>(w.values[i]) * static_cast<double>(qx.values[i]);
    y.push_back(std::max(0.0, acc * w.scale * qx.scale));
  }
  return y;
}

}  // namespace bpim::app
