#include "app/nn.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "serve/server.hpp"

namespace bpim::app {

Quantized quantize(const std::vector<double>& x, unsigned bits) {
  BPIM_REQUIRE(!x.empty(), "cannot quantise an empty vector");
  BPIM_REQUIRE(bits >= 2 && bits <= 32, "quantisation width out of range");
  double lo = 0.0, hi = 0.0;
  for (const double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Unsigned codes; negative inputs are clamped (callers pre-shift if they
  // need signed ranges -- keeps the in-memory arithmetic unsigned like the
  // paper's datapath).
  const double levels = static_cast<double>((1ull << bits) - 1);
  const double scale = hi > 0.0 ? hi / levels : 1.0;
  Quantized q;
  q.scale = scale;
  q.values.reserve(x.size());
  for (const double v : x) {
    const double code = std::clamp(std::round(v / scale), 0.0, levels);
    q.values.push_back(static_cast<std::uint64_t>(code));
  }
  return q;
}

QuantizedLinear::QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits)
    : weights_raw_(std::move(weights)), bits_(bits) {
  BPIM_REQUIRE(!weights_raw_.empty(), "layer needs at least one output neuron");
  const std::size_t in = weights_raw_.front().size();
  for (const auto& row : weights_raw_) {
    BPIM_REQUIRE(row.size() == in, "ragged weight matrix");
    weights_.push_back(quantize(row, bits));
  }
}

QuantizedLinear::QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits,
                                 engine::ExecutionEngine& eng)
    : QuantizedLinear(std::move(weights), bits) {
  VectorEngine ve(eng, bits_);
  pin_weights(ve);
  pinned_engine_ = &eng;
  // Compile-at-pin: the fused whole-forward program is built (and the
  // weights materialized) now, so the first forward already runs fused.
  // Unfusable shapes simply stay on the op-at-a-time path.
  (void)ve.compile_forward(weight_handles_);
}

QuantizedLinear::QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits,
                                 serve::Server& server)
    : QuantizedLinear(std::move(weights), bits) {
  VectorEngine ve(server, bits_);
  pin_weights(ve);
  pinned_server_ = &server;
}

QuantizedLinear::~QuantizedLinear() { release_handles(); }

QuantizedLinear::QuantizedLinear(QuantizedLinear&& other) noexcept
    : weights_raw_(std::move(other.weights_raw_)),
      weights_(std::move(other.weights_)),
      bits_(other.bits_),
      stats_(other.stats_),
      weight_handles_(std::move(other.weight_handles_)),
      pinned_engine_(other.pinned_engine_),
      pinned_server_(other.pinned_server_) {
  other.weight_handles_.clear();
  other.pinned_engine_ = nullptr;
  other.pinned_server_ = nullptr;
}

QuantizedLinear& QuantizedLinear::operator=(QuantizedLinear&& other) noexcept {
  if (this == &other) return *this;
  release_handles();
  weights_raw_ = std::move(other.weights_raw_);
  weights_ = std::move(other.weights_);
  bits_ = other.bits_;
  stats_ = other.stats_;
  weight_handles_ = std::move(other.weight_handles_);
  pinned_engine_ = other.pinned_engine_;
  pinned_server_ = other.pinned_server_;
  other.weight_handles_.clear();
  other.pinned_engine_ = nullptr;
  other.pinned_server_ = nullptr;
  return *this;
}

void QuantizedLinear::pin_weights(VectorEngine& ve) {
  // All rows of one layer pin under one colocate key so a multi-memory
  // server homes them together -- the fused forward needs every weight on
  // the memory that runs the program.
  std::uint64_t key = 1469598103934665603ull;
  const auto mix = [&key](std::uint64_t v) {
    key ^= v;
    key *= 1099511628211ull;
  };
  mix(bits_);
  for (const auto& w : weights_)
    for (const std::uint64_t v : w.values) mix(v);
  weight_handles_.reserve(weights_.size());
  for (const auto& w : weights_)
    weight_handles_.push_back(ve.pin_operand(w.values, engine::OperandLayout::MultUnit, key));
}

void QuantizedLinear::release_handles() noexcept {
  for (const auto& h : weight_handles_) {
    if (pinned_server_ != nullptr) {
      (void)pinned_server_->unpin(h);
    } else if (pinned_engine_ != nullptr) {
      (void)pinned_engine_->unpin(h);
    }
  }
  weight_handles_.clear();
}

std::size_t QuantizedLinear::in_features() const { return weights_raw_.front().size(); }

std::vector<double> QuantizedLinear::forward(macro::ImcMemory& mem,
                                             const std::vector<double>& x) {
  engine::ExecutionEngine eng(mem);
  return forward(eng, x);
}

std::vector<double> QuantizedLinear::forward(engine::ExecutionEngine& eng,
                                             const std::vector<double>& x) {
  VectorEngine ve(eng, bits_);
  const auto y = forward_on(ve, x, pinned_engine_ == &eng);
  stats_.pipelined_cycles = eng.last_batch().pipelined_cycles;
  return y;
}

std::vector<double> QuantizedLinear::forward(serve::Server& server,
                                             const std::vector<double>& x) {
  VectorEngine ve(server, bits_);
  return forward_on(ve, x, pinned_server_ == &server);
}

std::vector<double> QuantizedLinear::forward_on(VectorEngine& ve,
                                                const std::vector<double>& x,
                                                bool resident) {
  BPIM_REQUIRE(x.size() == in_features(), "input size mismatch");
  const Quantized qx = quantize(x, bits_);

  // Resident weights run as one fused whole-forward program (the engine
  // falls back to op-at-a-time transparently when the shape is unfusable).
  // Otherwise, one engine batch: every output neuron's product vector is an
  // independent op, so loads double-buffer against computes across neurons.
  std::vector<engine::OpResult> results;
  if (resident) {
    results = ve.run_forward(weight_handles_, qx.values);
  } else {
    std::vector<engine::VecOp> ops;
    ops.reserve(weights_.size());
    for (std::size_t j = 0; j < weights_.size(); ++j) {
      engine::VecOp op;
      op.kind = engine::OpKind::Mult;
      op.bits = bits_;
      op.a = weights_[j].values;
      op.b = qx.values;
      ops.push_back(op);
    }
    results = ve.run_ops(ops);
  }

  stats_ = LayerStats{};
  std::vector<double> y;
  y.reserve(out_features());
  for (std::size_t j = 0; j < weights_.size(); ++j) {
    // In-memory products, host-side accumulate (see header).
    std::uint64_t acc = 0;
    for (const auto p : results[j].values) acc += p;
    stats_.macs += x.size();
    stats_.cycles += results[j].stats.elapsed_cycles;
    stats_.load_cycles += results[j].stats.load_cycles;
    stats_.load_cycles_saved += results[j].stats.load_cycles_saved;
    stats_.fused_cycles_saved += results[j].stats.fused_cycles_saved;
    stats_.adaptive_cycles_saved += results[j].stats.adaptive_cycles_saved;
    stats_.energy += results[j].stats.energy;
    stats_.elapsed += results[j].stats.elapsed_time;
    const double real = static_cast<double>(acc) * weights_[j].scale * qx.scale;
    y.push_back(std::max(0.0, real));  // ReLU
  }
  return y;
}

std::vector<double> QuantizedLinear::forward_reference(const std::vector<double>& x) const {
  BPIM_REQUIRE(x.size() == in_features(), "input size mismatch");
  const Quantized qx = quantize(x, bits_);
  std::vector<double> y;
  y.reserve(out_features());
  for (const auto& w : weights_) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      acc += static_cast<double>(w.values[i]) * static_cast<double>(qx.values[i]);
    y.push_back(std::max(0.0, acc * w.scale * qx.scale));
  }
  return y;
}

}  // namespace bpim::app
