#include "app/vector_engine.hpp"

#include "common/require.hpp"
#include "macro/isa.hpp"
#include "serve/server.hpp"

namespace bpim::app {

VectorEngine::VectorEngine(macro::ImcMemory& memory, unsigned bits)
    : owned_(std::make_unique<engine::ExecutionEngine>(memory)),
      engine_(owned_.get()),
      bits_(bits) {
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
}

VectorEngine::VectorEngine(engine::ExecutionEngine& engine, unsigned bits)
    : engine_(&engine), bits_(bits) {
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
}

VectorEngine::VectorEngine(serve::Server& server, unsigned bits)
    : engine_(&server.engine()), server_(&server), bits_(bits) {
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
}

std::size_t VectorEngine::words_per_row() const { return engine_->words_per_row(bits_); }

std::size_t VectorEngine::mult_units_per_row() const {
  return engine_->mult_units_per_row(bits_);
}

std::size_t VectorEngine::layer_capacity() const { return engine_->layer_capacity(bits_); }

std::vector<std::uint64_t> VectorEngine::run_op(engine::OpKind kind, periph::LogicFn fn,
                                                const std::vector<std::uint64_t>& a,
                                                const std::vector<std::uint64_t>& b) {
  engine::VecOp op;
  op.kind = kind;
  op.bits = bits_;
  op.fn = fn;
  op.a = a;
  op.b = b;
  engine::OpResult res = server_ ? server_->submit(op).get() : engine_->run(op);
  last_ = res.stats;
  return std::move(res.values);
}

std::vector<std::uint64_t> VectorEngine::add(const std::vector<std::uint64_t>& a,
                                             const std::vector<std::uint64_t>& b) {
  return run_op(engine::OpKind::Add, periph::LogicFn::And, a, b);
}

std::vector<std::uint64_t> VectorEngine::sub(const std::vector<std::uint64_t>& a,
                                             const std::vector<std::uint64_t>& b) {
  return run_op(engine::OpKind::Sub, periph::LogicFn::And, a, b);
}

std::vector<std::uint64_t> VectorEngine::mult(const std::vector<std::uint64_t>& a,
                                              const std::vector<std::uint64_t>& b) {
  return run_op(engine::OpKind::Mult, periph::LogicFn::And, a, b);
}

std::vector<std::uint64_t> VectorEngine::logic(periph::LogicFn fn,
                                               const std::vector<std::uint64_t>& a,
                                               const std::vector<std::uint64_t>& b) {
  return run_op(engine::OpKind::Logic, fn, a, b);
}

std::vector<std::uint64_t> VectorEngine::add_shift(const std::vector<std::uint64_t>& a,
                                                   const std::vector<std::uint64_t>& b) {
  return run_op(engine::OpKind::AddShift, periph::LogicFn::And, a, b);
}

std::vector<std::uint64_t> VectorEngine::bit_not(const std::vector<std::uint64_t>& a) {
  engine::VecOp op;
  op.kind = engine::OpKind::Not;
  op.bits = bits_;
  op.a = a;
  engine::OpResult res = server_ ? server_->submit(op).get() : engine_->run(op);
  last_ = res.stats;
  return std::move(res.values);
}

std::vector<engine::OpResult> VectorEngine::mult_batch(
    const std::vector<std::pair<std::span<const std::uint64_t>,
                                std::span<const std::uint64_t>>>& pairs) {
  std::vector<engine::VecOp> ops;
  ops.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    engine::VecOp op;
    op.kind = engine::OpKind::Mult;
    op.bits = bits_;
    op.a = a;
    op.b = b;
    ops.push_back(op);
  }
  return run_ops(ops);
}

std::vector<engine::OpResult> VectorEngine::run_ops(const std::vector<engine::VecOp>& ops) {
  std::vector<engine::OpResult> results;
  if (server_) {
    // Submit every op before waiting on any, so the scheduler can coalesce
    // them (with each other and with other clients' work).
    std::vector<std::future<engine::OpResult>> futs;
    futs.reserve(ops.size());
    for (const auto& op : ops) futs.push_back(server_->submit(op));
    results.reserve(futs.size());
    for (auto& f : futs) results.push_back(f.get());
  } else {
    results = engine_->run_batch(ops);
  }
  // last_run() aggregates the whole batch, as a seed-era caller looping the
  // ops and summing per-op stats would have seen.
  last_ = RunStats{};
  for (const auto& r : results) {
    last_.elements += r.stats.elements;
    last_.instructions += r.stats.instructions;
    last_.elapsed_cycles += r.stats.elapsed_cycles;
    last_.energy += r.stats.energy;
    last_.elapsed_time += r.stats.elapsed_time;
    last_.load_cycles += r.stats.load_cycles;
    last_.load_cycles_saved += r.stats.load_cycles_saved;
    last_.adaptive_cycles_saved += r.stats.adaptive_cycles_saved;
  }
  return results;
}

std::vector<engine::OpResult> VectorEngine::run_forward(
    std::span<const engine::ResidentOperand> weights,
    std::span<const std::uint64_t> activation) {
  std::vector<engine::OpResult> results =
      server_ ? server_->submit_forward(weights, activation).get()
              : engine_->run_forward(weights, activation);
  last_ = RunStats{};
  for (const auto& r : results) {
    last_.elements += r.stats.elements;
    last_.instructions += r.stats.instructions;
    last_.elapsed_cycles += r.stats.elapsed_cycles;
    last_.energy += r.stats.energy;
    last_.elapsed_time += r.stats.elapsed_time;
    last_.load_cycles += r.stats.load_cycles;
    last_.load_cycles_saved += r.stats.load_cycles_saved;
    last_.fused_cycles_saved += r.stats.fused_cycles_saved;
    last_.adaptive_cycles_saved += r.stats.adaptive_cycles_saved;
  }
  return results;
}

bool VectorEngine::compile_forward(std::span<const engine::ResidentOperand> weights) {
  // A serving engine belongs to its scheduler; its lazy compile on first
  // submit_forward is race-free because the lane thread is the run thread.
  if (server_ != nullptr) return false;
  return engine_->compile_forward(weights);
}

engine::ResidentOperand VectorEngine::pin_operand(std::span<const std::uint64_t> values,
                                                  engine::OperandLayout layout,
                                                  std::optional<std::uint64_t> colocate_key) {
  return server_ ? server_->pin(values, bits_, layout, colocate_key)
                 : engine_->pin(values, bits_, layout);
}

bool VectorEngine::unpin(const engine::ResidentOperand& handle) {
  return server_ ? server_->unpin(handle) : engine_->unpin(handle);
}

}  // namespace bpim::app
