#include "app/vector_engine.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace bpim::app {

using array::RowRef;

VectorEngine::VectorEngine(macro::ImcMemory& memory, unsigned bits)
    : mem_(memory), bits_(bits) {
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
}

std::size_t VectorEngine::words_per_row() const { return mem_.macro(0).words_per_row(bits_); }

std::size_t VectorEngine::mult_units_per_row() const {
  return mem_.macro(0).mult_units_per_row(bits_);
}

std::size_t VectorEngine::layer_capacity() const {
  return words_per_row() * mem_.macro_count();
}

template <class PerMacroOp, class Extract>
std::vector<std::uint64_t> VectorEngine::run(const std::vector<std::uint64_t>& a,
                                             const std::vector<std::uint64_t>& b,
                                             std::size_t per_op, bool mult_layout, PerMacroOp op,
                                             Extract extract) {
  BPIM_REQUIRE(a.size() == b.size(), "operand vectors must have equal length");
  mem_.reset_counters();

  std::vector<std::uint64_t> out;
  out.reserve(a.size());
  const std::size_t macros = mem_.macro_count();
  const std::size_t chunk = per_op;  // elements per macro op (one row pair)

  std::size_t pos = 0;
  std::size_t row_pair = 0;
  while (pos < a.size()) {
    // One lock-step layer: every macro gets (up to) one row-pair of work.
    for (std::size_t m = 0; m < macros && pos < a.size(); ++m) {
      auto& mac = mem_.macro(m);
      const std::size_t r_a = 2 * row_pair;
      const std::size_t r_b = 2 * row_pair + 1;
      BPIM_REQUIRE(r_b < mac.rows(), "vector exceeds memory capacity");
      const std::size_t n = std::min(chunk, a.size() - pos);
      for (std::size_t i = 0; i < n; ++i) {
        if (mult_layout) {
          mac.poke_mult_operand(r_a, i, bits_, a[pos + i]);
          mac.poke_mult_operand(r_b, i, bits_, b[pos + i]);
        } else {
          mac.poke_word(r_a, i, bits_, a[pos + i]);
          mac.poke_word(r_b, i, bits_, b[pos + i]);
        }
      }
      const BitVector result = op(mac, RowRef::main(r_a), RowRef::main(r_b));
      for (std::size_t i = 0; i < n; ++i) out.push_back(extract(mac, result, i));
      pos += n;
    }
    ++row_pair;
  }

  last_ = RunStats{};
  last_.elements = a.size();
  last_.elapsed_cycles = mem_.elapsed_cycles();
  last_.energy = mem_.total_energy();
  last_.elapsed_time = Second(static_cast<double>(last_.elapsed_cycles) *
                              mem_.macro(0).cycle_time().si());
  return out;
}

std::vector<std::uint64_t> VectorEngine::add(const std::vector<std::uint64_t>& a,
                                             const std::vector<std::uint64_t>& b) {
  return run(
      a, b, words_per_row(), false,
      [&](macro::ImcMacro& m, RowRef ra, RowRef rb) { return m.add_rows(ra, rb, bits_); },
      [&](const macro::ImcMacro&, const BitVector& row, std::size_t w) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < bits_; ++i)
          v |= static_cast<std::uint64_t>(row.get(w * bits_ + i)) << i;
        return v;
      });
}

std::vector<std::uint64_t> VectorEngine::sub(const std::vector<std::uint64_t>& a,
                                             const std::vector<std::uint64_t>& b) {
  return run(
      a, b, words_per_row(), false,
      [&](macro::ImcMacro& m, RowRef ra, RowRef rb) { return m.sub_rows(ra, rb, bits_); },
      [&](const macro::ImcMacro&, const BitVector& row, std::size_t w) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < bits_; ++i)
          v |= static_cast<std::uint64_t>(row.get(w * bits_ + i)) << i;
        return v;
      });
}

std::vector<std::uint64_t> VectorEngine::mult(const std::vector<std::uint64_t>& a,
                                              const std::vector<std::uint64_t>& b) {
  return run(
      a, b, mult_units_per_row(), true,
      [&](macro::ImcMacro& m, RowRef ra, RowRef rb) { return m.mult_rows(ra, rb, bits_); },
      [&](const macro::ImcMacro& m, const BitVector& row, std::size_t u) {
        return m.peek_mult_product(row, u, bits_);
      });
}

std::vector<std::uint64_t> VectorEngine::logic(periph::LogicFn fn,
                                               const std::vector<std::uint64_t>& a,
                                               const std::vector<std::uint64_t>& b) {
  return run(
      a, b, words_per_row(), false,
      [&](macro::ImcMacro& m, RowRef ra, RowRef rb) { return m.logic_rows(fn, ra, rb); },
      [&](const macro::ImcMacro&, const BitVector& row, std::size_t w) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < bits_; ++i)
          v |= static_cast<std::uint64_t>(row.get(w * bits_ + i)) << i;
        return v;
      });
}

}  // namespace bpim::app
