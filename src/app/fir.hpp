#pragma once
// FIR filtering on the IMC memory -- the real-time streaming-DSP workload
// class the paper's introduction cites alongside deep learning.
//
//   y[n] = sum_k h[k] * x[n-k]
//
// Each tap k is one vectorised in-memory multiply of the (shifted) input
// stream against the broadcast tap coefficient; the host accumulates the
// per-tap partial products. Taps and samples are signed (sign-magnitude
// multiplies, see signed_ops).

#include <cstdint>
#include <vector>

#include "app/signed_ops.hpp"

namespace bpim::app {

struct FirStats {
  std::uint64_t macs = 0;
  std::uint64_t cycles = 0;  ///< sum of per-tap compute cycles (no load overlap)
  /// Double-buffered schedule: tap k+1's operand load overlaps tap k's
  /// compute (see engine::BatchStats).
  std::uint64_t pipelined_cycles = 0;
  Joule energy{0.0};
};

class FirFilter {
 public:
  /// `taps` are signed integer coefficients fitting `bits` (two's complement).
  FirFilter(std::vector<std::int64_t> taps, unsigned bits);

  [[nodiscard]] std::size_t order() const { return taps_.size(); }
  [[nodiscard]] unsigned bits() const { return bits_; }

  /// Filters `x` (values must fit `bits` signed); returns y of equal length
  /// (zero-padded history). All multiplies run in-memory: every non-zero
  /// tap is one op of a single double-buffered ExecutionEngine batch.
  [[nodiscard]] std::vector<std::int64_t> apply(macro::ImcMemory& mem,
                                                const std::vector<std::int64_t>& x);
  /// Same, on a shared engine (reuses its thread pool across calls).
  [[nodiscard]] std::vector<std::int64_t> apply(engine::ExecutionEngine& eng,
                                                const std::vector<std::int64_t>& x);

  /// Host-only reference implementation.
  [[nodiscard]] std::vector<std::int64_t> apply_reference(
      const std::vector<std::int64_t>& x) const;

  [[nodiscard]] const FirStats& last_stats() const { return stats_; }

 private:
  std::vector<std::int64_t> taps_;
  unsigned bits_;
  FirStats stats_{};
};

}  // namespace bpim::app
