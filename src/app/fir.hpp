#pragma once
// FIR filtering on the IMC memory -- the real-time streaming-DSP workload
// class the paper's introduction cites alongside deep learning.
//
//   y[n] = sum_k h[k] * x[n-k]
//
// Each tap k is one vectorised in-memory multiply of the (shifted) input
// stream against the broadcast tap coefficient; the host accumulates the
// per-tap partial products. Taps and samples are signed (sign-magnitude
// multiplies, see signed_ops).

#include <cstdint>
#include <vector>

#include "app/signed_ops.hpp"

namespace bpim::app {

struct FirStats {
  std::uint64_t macs = 0;
  std::uint64_t cycles = 0;  ///< sum of per-tap compute cycles (no load overlap)
  /// Double-buffered schedule: tap k+1's operand load overlaps tap k's
  /// compute (see engine::BatchStats). Direct-engine route only.
  std::uint64_t pipelined_cycles = 0;
  /// Operand-load traffic, and what resident tap rows saved vs re-poking.
  std::uint64_t load_cycles = 0;
  std::uint64_t load_cycles_saved = 0;
  /// Compute cycles the fused whole-filter program saved vs op-at-a-time
  /// Table-1 issue (pinned blocks only; `cycles` is already net of this).
  std::uint64_t fused_cycles_saved = 0;
  /// Compute cycles the adaptive policy (MULT operand narrowing / zero
  /// skipping) saved across the taps; `cycles` is already net of this.
  std::uint64_t adaptive_cycles_saved = 0;
  Joule energy{0.0};
};

/// Streaming FIR over the IMC memory. Constructed with an engine or server
/// plus a block length, the filter pins each non-zero tap's broadcast
/// magnitude rows resident (engine/residency.hpp): apply() calls on
/// blocks of that length reference the handles instead of re-poking the
/// same tap rows every block -- the steady-state shape of a streaming
/// filter. A pinned filter's apply is also *fused*: because each pinned
/// tap row is a broadcast constant, the block's |x| is staged once and
/// multiplied against every tap row by one compiled macro program
/// (engine::ExecutionEngine::run_forward); the host assembles the tap
/// delays from the undelayed product streams. Outputs are bit-identical to
/// the op-at-a-time path; only the cycle account improves
/// (FirStats::fused_cycles_saved). Other block lengths (or other engines)
/// transparently fall back to the re-poke path with identical results.
/// Pinning makes the filter move-only; destroy it before the engine/server
/// it pinned on.
class FirFilter {
 public:
  /// `taps` are signed integer coefficients fitting `bits` (two's complement).
  FirFilter(std::vector<std::int64_t> taps, unsigned bits);
  /// Pin the tap rows resident on `eng` for blocks of `block_len` samples.
  FirFilter(std::vector<std::int64_t> taps, unsigned bits, engine::ExecutionEngine& eng,
            std::size_t block_len);
  /// Same, pinned behind a serving frontend.
  FirFilter(std::vector<std::int64_t> taps, unsigned bits, serve::Server& server,
            std::size_t block_len);
  ~FirFilter();

  FirFilter(const FirFilter&) = delete;
  FirFilter& operator=(const FirFilter&) = delete;
  FirFilter(FirFilter&& other) noexcept;
  FirFilter& operator=(FirFilter&& other) noexcept;

  [[nodiscard]] std::size_t order() const { return taps_.size(); }
  [[nodiscard]] unsigned bits() const { return bits_; }
  [[nodiscard]] bool pinned() const { return !tap_handles_.empty(); }
  /// Block length the tap rows were pinned for (0 when not pinned).
  [[nodiscard]] std::size_t block_len() const { return block_len_; }

  /// Filters `x` (values must fit `bits` signed); returns y of equal length
  /// (zero-padded history). All multiplies run in-memory: every non-zero
  /// tap is one op of a single double-buffered ExecutionEngine batch.
  [[nodiscard]] std::vector<std::int64_t> apply(macro::ImcMemory& mem,
                                                const std::vector<std::int64_t>& x);
  /// Same, on a shared engine (reuses its thread pool across calls; uses
  /// the resident tap rows when pinned on this engine and x is one block).
  [[nodiscard]] std::vector<std::int64_t> apply(engine::ExecutionEngine& eng,
                                                const std::vector<std::int64_t>& x);
  /// Same, submitted through a serving frontend.
  [[nodiscard]] std::vector<std::int64_t> apply(serve::Server& server,
                                                const std::vector<std::int64_t>& x);

  /// Host-only reference implementation.
  [[nodiscard]] std::vector<std::int64_t> apply_reference(
      const std::vector<std::int64_t>& x) const;

  [[nodiscard]] const FirStats& last_stats() const { return stats_; }

 private:
  void pin_taps(SignedVectorOps& ops, std::size_t block_len);
  void release_handles() noexcept;
  std::vector<std::int64_t> apply_on(SignedVectorOps& ops, const std::vector<std::int64_t>& x,
                                     bool resident);

  std::vector<std::int64_t> taps_;
  unsigned bits_;
  FirStats stats_{};
  /// One handle per non-zero tap, in tap order, when pinned.
  std::vector<engine::ResidentOperand> tap_handles_;
  std::size_t block_len_ = 0;
  engine::ExecutionEngine* pinned_engine_ = nullptr;
  serve::Server* pinned_server_ = nullptr;
};

}  // namespace bpim::app
