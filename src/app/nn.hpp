#pragma once
// Quantised fully-connected layer on the IMC memory -- the machine-learning
// inference workload the paper's introduction motivates, and the showcase
// for reconfigurable bit-precision: the same hardware runs 2/4/8-bit
// weights, trading accuracy for energy (Fig 6's reconfiguration).
//
// y_j = act( sum_i W[j][i] * x[i] )
//
// Products are computed in-memory (bit-parallel MULT on 2N-bit units);
// accumulation of the 2N-bit partial products into a wide sum is done by
// the digital host (the standard macro/accelerator split: the memory
// supplies multiply bandwidth, the accumulator sits outside the array).

#include <cstdint>
#include <vector>

#include "app/vector_engine.hpp"

namespace bpim::app {

/// Uniform affine quantisation of a float vector to unsigned `bits` levels.
struct Quantized {
  std::vector<std::uint64_t> values;
  double scale = 1.0;  ///< real = scale * code
};

[[nodiscard]] Quantized quantize(const std::vector<double>& x, unsigned bits);

struct LayerStats {
  std::uint64_t macs = 0;
  std::uint64_t cycles = 0;  ///< sum of per-op compute cycles (no load overlap)
  /// Double-buffered schedule: operand load of neuron k+1 overlaps the
  /// compute of neuron k (see engine::BatchStats).
  std::uint64_t pipelined_cycles = 0;
  Joule energy{0.0};
  Second elapsed{0.0};
};

/// Fully-connected layer with unsigned quantised weights and activations.
class QuantizedLinear {
 public:
  /// `weights[j]` is the j-th output neuron's weight row.
  QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits);

  [[nodiscard]] unsigned bits() const { return bits_; }
  [[nodiscard]] std::size_t in_features() const;
  [[nodiscard]] std::size_t out_features() const { return weights_.size(); }

  /// Runs inference on the IMC memory; returns dequantised outputs (ReLU).
  /// All per-neuron multiplies are submitted as one ExecutionEngine batch
  /// (sharded across macros and threads, double-buffered row-pair loads).
  [[nodiscard]] std::vector<double> forward(macro::ImcMemory& mem,
                                            const std::vector<double>& x);
  /// Same, on a shared engine (reuses its thread pool across layers/calls).
  [[nodiscard]] std::vector<double> forward(engine::ExecutionEngine& eng,
                                            const std::vector<double>& x);

  /// Reference (double-precision, same quantised codes) for accuracy checks.
  [[nodiscard]] std::vector<double> forward_reference(const std::vector<double>& x) const;

  [[nodiscard]] const LayerStats& last_stats() const { return stats_; }

 private:
  std::vector<std::vector<double>> weights_raw_;
  std::vector<Quantized> weights_;
  unsigned bits_;
  LayerStats stats_{};
};

}  // namespace bpim::app
