#pragma once
// Quantised fully-connected layer on the IMC memory -- the machine-learning
// inference workload the paper's introduction motivates, and the showcase
// for reconfigurable bit-precision: the same hardware runs 2/4/8-bit
// weights, trading accuracy for energy (Fig 6's reconfiguration).
//
// y_j = act( sum_i W[j][i] * x[i] )
//
// Products are computed in-memory (bit-parallel MULT on 2N-bit units);
// accumulation of the 2N-bit partial products into a wide sum is done by
// the digital host (the standard macro/accelerator split: the memory
// supplies multiply bandwidth, the accumulator sits outside the array).

#include <cstdint>
#include <vector>

#include "app/vector_engine.hpp"

namespace bpim::app {

/// Uniform affine quantisation of a float vector to unsigned `bits` levels.
struct Quantized {
  std::vector<std::uint64_t> values;
  double scale = 1.0;  ///< real = scale * code
};

[[nodiscard]] Quantized quantize(const std::vector<double>& x, unsigned bits);

struct LayerStats {
  std::uint64_t macs = 0;
  std::uint64_t cycles = 0;  ///< sum of per-op compute cycles (no load overlap)
  /// Double-buffered schedule: operand load of neuron k+1 overlaps the
  /// compute of neuron k (see engine::BatchStats). Direct-engine route
  /// only (a server batches across clients, so the layer has no private
  /// pipelined account there).
  std::uint64_t pipelined_cycles = 0;
  /// Operand-load traffic of the layer's ops, and what pinned weights
  /// saved against re-poking (both routes; see engine/residency.hpp).
  std::uint64_t load_cycles = 0;
  std::uint64_t load_cycles_saved = 0;
  /// Compute cycles the fused whole-forward program saved vs op-at-a-time
  /// Table-1 issue (pinned forwards only; `cycles` is already net of this).
  std::uint64_t fused_cycles_saved = 0;
  /// Compute cycles the adaptive policy (MULT operand narrowing / zero
  /// skipping on the pinned engine) saved; `cycles` is already net of this.
  /// Sparse activations (ReLU outputs) are where this pays off.
  std::uint64_t adaptive_cycles_saved = 0;
  Joule energy{0.0};
  Second elapsed{0.0};
};

/// Fully-connected layer with unsigned quantised weights and activations.
///
/// Constructed with an engine or server, the layer pins its quantised
/// weight rows resident (engine/residency.hpp): repeated forward() calls
/// on that engine/server reference the handles instead of re-poking the
/// same rows, and last_stats() shows the saved load cycles. A pinned
/// layer's forward is also *fused*: the whole layer compiles into one
/// verified macro program per macro (compiled eagerly at pin time on the
/// direct-engine route, lazily on first use behind a server), executed on
/// the chained-MAC datapath with the activation staged once -- see
/// engine::ExecutionEngine::run_forward. Results are bit-identical on
/// every route; only the cycle/energy account improves
/// (LayerStats::fused_cycles_saved). Pinning makes the layer move-only; it
/// unpins on destruction, so destroy it before the engine/server it
/// pinned on.
class QuantizedLinear {
 public:
  /// `weights[j]` is the j-th output neuron's weight row.
  QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits);
  /// Pin the weights resident on `eng` at construction.
  QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits,
                  engine::ExecutionEngine& eng);
  /// Pin the weights resident behind a serving frontend at construction.
  QuantizedLinear(std::vector<std::vector<double>> weights, unsigned bits,
                  serve::Server& server);
  ~QuantizedLinear();

  QuantizedLinear(const QuantizedLinear&) = delete;
  QuantizedLinear& operator=(const QuantizedLinear&) = delete;
  QuantizedLinear(QuantizedLinear&& other) noexcept;
  QuantizedLinear& operator=(QuantizedLinear&& other) noexcept;

  [[nodiscard]] unsigned bits() const { return bits_; }
  [[nodiscard]] std::size_t in_features() const;
  [[nodiscard]] std::size_t out_features() const { return weights_.size(); }
  /// True when the weights are pinned resident somewhere.
  [[nodiscard]] bool pinned() const { return !weight_handles_.empty(); }

  /// Runs inference on the IMC memory; returns dequantised outputs (ReLU).
  /// All per-neuron multiplies are submitted as one ExecutionEngine batch
  /// (sharded across macros and threads, double-buffered row-pair loads).
  [[nodiscard]] std::vector<double> forward(macro::ImcMemory& mem,
                                            const std::vector<double>& x);
  /// Same, on a shared engine (reuses its thread pool across layers/calls).
  /// Uses the resident weights when pinned on this very engine.
  [[nodiscard]] std::vector<double> forward(engine::ExecutionEngine& eng,
                                            const std::vector<double>& x);
  /// Same, submitted through a serving frontend (single- or multi-memory).
  /// Uses the resident weights when pinned on this very server.
  [[nodiscard]] std::vector<double> forward(serve::Server& server,
                                            const std::vector<double>& x);

  /// Reference (double-precision, same quantised codes) for accuracy checks.
  [[nodiscard]] std::vector<double> forward_reference(const std::vector<double>& x) const;

  [[nodiscard]] const LayerStats& last_stats() const { return stats_; }

 private:
  void pin_weights(VectorEngine& ve);
  void release_handles() noexcept;
  std::vector<double> forward_on(VectorEngine& ve, const std::vector<double>& x,
                                 bool resident);

  std::vector<std::vector<double>> weights_raw_;
  std::vector<Quantized> weights_;
  unsigned bits_;
  LayerStats stats_{};
  /// One handle per output neuron when pinned (same order as weights_).
  std::vector<engine::ResidentOperand> weight_handles_;
  engine::ExecutionEngine* pinned_engine_ = nullptr;
  serve::Server* pinned_server_ = nullptr;
};

}  // namespace bpim::app
