#pragma once
// Signed arithmetic on top of the unsigned in-memory datapath.
//
// The macro's ADD/SUB are two's-complement-exact at word width, so signed
// add/sub only need encode/decode. MULT is unsigned hardware (Fig 5), so
// signed multiplies run sign-magnitude: the memory multiplies |a|*|b| (the
// bandwidth-heavy part) and the host applies the sign -- the same
// memory/host split the paper's macro implies for ML inference with signed
// weights.

#include <cstdint>
#include <optional>
#include <vector>

#include "app/vector_engine.hpp"

namespace bpim::app {

/// Two's-complement encode into an unsigned `bits`-wide code.
[[nodiscard]] std::uint64_t encode_signed(std::int64_t v, unsigned bits);
/// Two's-complement decode of a `bits`-wide code.
[[nodiscard]] std::int64_t decode_signed(std::uint64_t code, unsigned bits);

/// Valid signed range of a `bits`-wide word: [-2^(bits-1), 2^(bits-1)-1].
[[nodiscard]] bool fits_signed(std::int64_t v, unsigned bits);

/// Element-wise signed operations executed on the IMC memory.
class SignedVectorOps {
 public:
  SignedVectorOps(macro::ImcMemory& mem, unsigned bits) : engine_(mem, bits), bits_(bits) {}
  /// Shares the given engine's thread pool instead of owning one.
  SignedVectorOps(engine::ExecutionEngine& eng, unsigned bits)
      : engine_(eng, bits), bits_(bits) {}
  /// Routes every op through a serving frontend (see VectorEngine).
  SignedVectorOps(serve::Server& server, unsigned bits)
      : engine_(server, bits), bits_(bits) {}

  [[nodiscard]] std::vector<std::int64_t> add(const std::vector<std::int64_t>& a,
                                              const std::vector<std::int64_t>& b);
  [[nodiscard]] std::vector<std::int64_t> sub(const std::vector<std::int64_t>& a,
                                              const std::vector<std::int64_t>& b);
  /// Sign-magnitude multiply: in-memory unsigned |a|*|b|, host-applied sign.
  [[nodiscard]] std::vector<std::int64_t> mult(const std::vector<std::int64_t>& a,
                                               const std::vector<std::int64_t>& b);

  /// Batched sign-magnitude multiply: pairs (as[k], bs[k]) run as one
  /// double-buffered engine batch. Per-pair stats via last_batch_runs();
  /// overlap accounting via last_batch().
  [[nodiscard]] std::vector<std::vector<std::int64_t>> mult_batch(
      const std::vector<std::vector<std::int64_t>>& as,
      const std::vector<std::vector<std::int64_t>>& bs);

  // ---- persistent operand residency ---------------------------------------
  /// Pin |b| resident as a MULT operand (engine/residency.hpp): the
  /// magnitude rows stay in the array and mult_batch_resident() references
  /// them by handle. The sign is the caller's to re-apply -- pass
  /// b_negative below. `colocate_key` as in VectorEngine::pin_operand.
  [[nodiscard]] engine::ResidentOperand pin_mult_magnitudes(
      const std::vector<std::int64_t>& b,
      std::optional<std::uint64_t> colocate_key = std::nullopt);
  bool unpin(const engine::ResidentOperand& handle);

  /// Batched sign-magnitude multiply against resident b-side magnitudes:
  /// op k multiplies |as[k]| by the pinned rows of b_handles[k], and
  /// b_negative[k] says whether the pinned operand was negative (one
  /// broadcast sign per op, the FIR-tap shape). Bit-identical to
  /// mult_batch() on the equivalent spans.
  [[nodiscard]] std::vector<std::vector<std::int64_t>> mult_batch_resident(
      const std::vector<std::vector<std::int64_t>>& as,
      const std::vector<engine::ResidentOperand>& b_handles,
      const std::vector<bool>& b_negative);

  /// Fused sign-magnitude forward: |a| is staged once and multiplied against
  /// every resident magnitude handle in one compiled macro program
  /// (VectorEngine::run_forward). out[k][i] = sign * (|a[i]| * |b_k[i]|)
  /// with the sign from a[i] and b_negative[k] -- the per-handle products a
  /// caller with broadcast constants (FIR taps) reassembles at any delay.
  /// Bit-identical products to mult_batch_resident on the same operands.
  [[nodiscard]] std::vector<std::vector<std::int64_t>> mult_forward_resident(
      const std::vector<std::int64_t>& a,
      const std::vector<engine::ResidentOperand>& b_handles,
      const std::vector<bool>& b_negative);

  /// Eagerly compile the fused forward for the handles (direct-engine route
  /// only; see VectorEngine::compile_forward).
  bool compile_forward(const std::vector<engine::ResidentOperand>& handles);

  /// The serving frontend ops route through, or nullptr on a direct engine.
  [[nodiscard]] serve::Server* server() const { return engine_.server(); }

  [[nodiscard]] const RunStats& last_run() const { return engine_.last_run(); }
  [[nodiscard]] const std::vector<RunStats>& last_batch_runs() const { return batch_runs_; }
  [[nodiscard]] const engine::BatchStats& last_batch() const {
    return engine_.engine().last_batch();
  }

 private:
  VectorEngine engine_;
  unsigned bits_;
  std::vector<RunStats> batch_runs_;
};

}  // namespace bpim::app
