#pragma once
// Element-wise vector operations over the IMC memory.
//
// The engine tiles a vector across macros (data-parallel) and across row
// pairs within each macro (time-multiplexed): each macro-level operation
// processes all cols/N words of one row pair per Table-1 cycle count. This
// is the word-parallelism the paper's Fig 9 sweeps against the bit-serial
// baseline.
//
// Layout per chunk: operand A in row 2k, operand B in row 2k+1 of the same
// macro (dual-WL operands must share columns). MULT uses the 2N-bit unit
// layout (operands in unit low halves).

#include <cstdint>
#include <vector>

#include "macro/memory.hpp"

namespace bpim::app {

struct RunStats {
  std::uint64_t elements = 0;
  std::uint64_t elapsed_cycles = 0;  ///< lock-step across macros (max)
  Joule energy{0.0};
  Second elapsed_time{0.0};

  [[nodiscard]] double cycles_per_element() const {
    return elements == 0 ? 0.0
                         : static_cast<double>(elapsed_cycles) / static_cast<double>(elements);
  }
  [[nodiscard]] Joule energy_per_element() const {
    return elements == 0 ? Joule(0.0) : Joule(energy.si() / static_cast<double>(elements));
  }
};

class VectorEngine {
 public:
  VectorEngine(macro::ImcMemory& memory, unsigned bits);

  [[nodiscard]] unsigned bits() const { return bits_; }
  /// Elements processed by one macro op (one row pair).
  [[nodiscard]] std::size_t words_per_row() const;
  [[nodiscard]] std::size_t mult_units_per_row() const;
  /// Max elements resident at once across all macros (one row-pair layer).
  [[nodiscard]] std::size_t layer_capacity() const;

  // Element-wise c = a (op) b. Values must fit `bits`; MULT returns 2N-bit
  // products. Sizes of a and b must match.
  [[nodiscard]] std::vector<std::uint64_t> add(const std::vector<std::uint64_t>& a,
                                               const std::vector<std::uint64_t>& b);
  [[nodiscard]] std::vector<std::uint64_t> sub(const std::vector<std::uint64_t>& a,
                                               const std::vector<std::uint64_t>& b);
  [[nodiscard]] std::vector<std::uint64_t> mult(const std::vector<std::uint64_t>& a,
                                                const std::vector<std::uint64_t>& b);
  [[nodiscard]] std::vector<std::uint64_t> logic(periph::LogicFn fn,
                                                 const std::vector<std::uint64_t>& a,
                                                 const std::vector<std::uint64_t>& b);

  [[nodiscard]] const RunStats& last_run() const { return last_; }

 private:
  template <class PerMacroOp, class Extract>
  std::vector<std::uint64_t> run(const std::vector<std::uint64_t>& a,
                                 const std::vector<std::uint64_t>& b, std::size_t per_op,
                                 bool mult_layout, PerMacroOp op, Extract extract);

  macro::ImcMemory& mem_;
  unsigned bits_;
  RunStats last_{};
};

}  // namespace bpim::app
