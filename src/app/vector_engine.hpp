#pragma once
// Element-wise vector operations over the IMC memory.
//
// The engine tiles a vector across macros (data-parallel) and across row
// pairs within each macro (time-multiplexed): each macro-level operation
// processes all cols/N words of one row pair per Table-1 cycle count. This
// is the word-parallelism the paper's Fig 9 sweeps against the bit-serial
// baseline.
//
// Layout per chunk: operand A in row 2k, operand B in row 2k+1 of the same
// macro (dual-WL operands must share columns). MULT uses the 2N-bit unit
// layout (operands in unit low halves).
//
// Execution is delegated to engine::ExecutionEngine, which shards the
// per-macro chunks over a persistent thread pool. Results and RunStats are
// bit-identical to a serial walk at any thread count (see the engine
// header). Construct from an ExecutionEngine to share its pool across
// precisions and call sites; the (memory, bits) constructor keeps the seed
// API and owns a private engine. Construct from a serve::Server to submit
// through its admission queue instead -- same results, but the op may
// coalesce with other clients' work (serve/server.hpp), and on a
// multi-memory server it may run on any memory of the serve::MemoryPool
// (placement never changes values or RunStats; geometry queries below use
// the pool's first engine, which is shape-identical to the rest).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "engine/execution_engine.hpp"
#include "macro/memory.hpp"

namespace bpim::serve {
class Server;
}

namespace bpim::app {

using RunStats = engine::RunStats;

class VectorEngine {
 public:
  VectorEngine(macro::ImcMemory& memory, unsigned bits);
  VectorEngine(engine::ExecutionEngine& engine, unsigned bits);
  /// Route every op through a serving frontend: ops are submitted to the
  /// server's admission queue and may coalesce with other clients' work.
  VectorEngine(serve::Server& server, unsigned bits);

  [[nodiscard]] unsigned bits() const { return bits_; }
  [[nodiscard]] engine::ExecutionEngine& engine() { return *engine_; }
  [[nodiscard]] const engine::ExecutionEngine& engine() const { return *engine_; }
  /// The serving frontend ops route through, or nullptr on a direct engine.
  [[nodiscard]] serve::Server* server() const { return server_; }
  /// Elements processed by one macro op (one row pair).
  [[nodiscard]] std::size_t words_per_row() const;
  [[nodiscard]] std::size_t mult_units_per_row() const;
  /// Max elements resident at once across all macros (one row-pair layer).
  [[nodiscard]] std::size_t layer_capacity() const;

  // Element-wise c = a (op) b. Values must fit `bits`; MULT returns 2N-bit
  // products. Sizes of a and b must match.
  [[nodiscard]] std::vector<std::uint64_t> add(const std::vector<std::uint64_t>& a,
                                               const std::vector<std::uint64_t>& b);
  [[nodiscard]] std::vector<std::uint64_t> sub(const std::vector<std::uint64_t>& a,
                                               const std::vector<std::uint64_t>& b);
  [[nodiscard]] std::vector<std::uint64_t> mult(const std::vector<std::uint64_t>& a,
                                                const std::vector<std::uint64_t>& b);
  [[nodiscard]] std::vector<std::uint64_t> logic(periph::LogicFn fn,
                                                 const std::vector<std::uint64_t>& a,
                                                 const std::vector<std::uint64_t>& b);
  /// Element-wise ((a + b) mod 2^bits) << 1, kept in-field (MSB dropped,
  /// LSB zero) -- the macro's ADD-Shift step exposed as a vector op.
  [[nodiscard]] std::vector<std::uint64_t> add_shift(const std::vector<std::uint64_t>& a,
                                                     const std::vector<std::uint64_t>& b);
  /// Element-wise bitwise complement within `bits` ((~a) masked).
  [[nodiscard]] std::vector<std::uint64_t> bit_not(const std::vector<std::uint64_t>& a);

  /// Batched multiply: pairs[k] = (a_k, b_k) run as one double-buffered
  /// engine batch (per-op stats via the results; overlap via
  /// engine().last_batch()).
  [[nodiscard]] std::vector<engine::OpResult> mult_batch(
      const std::vector<std::pair<std::span<const std::uint64_t>,
                                  std::span<const std::uint64_t>>>& pairs);

  /// Run a pre-built op list (resident handles allowed) as one batch,
  /// routed through the server when constructed from one. Results are in
  /// submission order; last_run() aggregates the whole batch.
  [[nodiscard]] std::vector<engine::OpResult> run_ops(const std::vector<engine::VecOp>& ops);

  /// Fused whole-forward: every pinned weight against one shared activation
  /// as a single compiled macro program (ExecutionEngine::run_forward;
  /// submit_forward through a server). Bit-identical to running the
  /// equivalent MULT op per weight; only the cycle/energy account improves.
  [[nodiscard]] std::vector<engine::OpResult> run_forward(
      std::span<const engine::ResidentOperand> weights,
      std::span<const std::uint64_t> activation);

  /// Eagerly compile the fused forward program for `weights` (direct-engine
  /// route only -- a serving engine belongs to its scheduler thread, which
  /// compiles lazily on first use). False when unavailable or unfusable.
  bool compile_forward(std::span<const engine::ResidentOperand> weights);

  // ---- persistent operand residency ---------------------------------------
  /// Pin a constant operand (e.g. a weight row) resident at this engine's
  /// precision; the handle goes into VecOp::ra / rb. Layout must match the
  /// op kind it will be used with (MultUnit for mult, Word otherwise).
  /// Routed through the server when constructed from one. `colocate_key`
  /// (server route) makes handles pinned under one key share a pool memory
  /// -- what a fused forward's weights need (Server::pin).
  [[nodiscard]] engine::ResidentOperand pin_operand(
      std::span<const std::uint64_t> values, engine::OperandLayout layout,
      std::optional<std::uint64_t> colocate_key = std::nullopt);
  /// Drop a pinned operand (false when unknown).
  bool unpin(const engine::ResidentOperand& handle);

  /// Stats of the last op -- or, after mult_batch(), the sum over the whole
  /// batch (per-op compute cycles, no load overlap; the pipelined view is
  /// engine().last_batch()).
  [[nodiscard]] const RunStats& last_run() const { return last_; }

 private:
  std::vector<std::uint64_t> run_op(engine::OpKind kind, periph::LogicFn fn,
                                    const std::vector<std::uint64_t>& a,
                                    const std::vector<std::uint64_t>& b);

  std::unique_ptr<engine::ExecutionEngine> owned_;  ///< set by the (memory, bits) ctor
  engine::ExecutionEngine* engine_;
  serve::Server* server_ = nullptr;  ///< when set, ops go through the server
  unsigned bits_;
  RunStats last_{};
};

}  // namespace bpim::app
