#pragma once
// Multi-layer perceptron with *per-layer* precision on the IMC memory --
// the mixed-precision inference scenario the paper's reconfigurable
// datapath targets: early layers keep 8-bit fidelity, later layers drop to
// 4- or 2-bit, all on the same silicon (Fig 6).

#include <vector>

#include "app/nn.hpp"

namespace bpim::app {

struct MlpLayerSpec {
  std::vector<std::vector<double>> weights;  ///< [out][in]
  unsigned bits = 8;
};

class Mlp {
 public:
  /// Layer i's input size must equal layer i-1's output size.
  explicit Mlp(std::vector<MlpLayerSpec> layers);

  [[nodiscard]] std::size_t depth() const { return layers_.size(); }
  [[nodiscard]] std::size_t in_features() const;
  [[nodiscard]] std::size_t out_features() const;

  /// Full forward pass on the IMC memory (ReLU between layers). One
  /// ExecutionEngine (thread pool) is shared by every layer.
  [[nodiscard]] std::vector<double> forward(macro::ImcMemory& mem,
                                            const std::vector<double>& x);
  /// Same, on a caller-provided engine (reused across forward() calls).
  [[nodiscard]] std::vector<double> forward(engine::ExecutionEngine& eng,
                                            const std::vector<double>& x);
  /// Host-side reference with the same quantisation.
  [[nodiscard]] std::vector<double> forward_reference(const std::vector<double>& x) const;

  /// Aggregated stats of the last forward() (all layers).
  [[nodiscard]] const LayerStats& last_stats() const { return stats_; }
  /// Per-layer stats of the last forward().
  [[nodiscard]] const std::vector<LayerStats>& layer_stats() const { return per_layer_; }

 private:
  std::vector<QuantizedLinear> layers_;
  LayerStats stats_{};
  std::vector<LayerStats> per_layer_;
};

}  // namespace bpim::app
