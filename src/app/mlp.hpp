#pragma once
// Multi-layer perceptron with *per-layer* precision on the IMC memory --
// the mixed-precision inference scenario the paper's reconfigurable
// datapath targets: early layers keep 8-bit fidelity, later layers drop to
// 4- or 2-bit, all on the same silicon (Fig 6).

#include <vector>

#include "app/nn.hpp"

namespace bpim::app {

struct MlpLayerSpec {
  std::vector<std::vector<double>> weights;  ///< [out][in]
  unsigned bits = 8;
};

class Mlp {
 public:
  /// Layer i's input size must equal layer i-1's output size.
  explicit Mlp(std::vector<MlpLayerSpec> layers);
  /// Pin every layer's weights resident on `eng` at construction: repeated
  /// forward(eng, ...) calls reference the handles instead of re-poking
  /// identical weight rows (engine/residency.hpp), and each layer runs as
  /// one fused compiled macro program (QuantizedLinear). Bit-identical
  /// results; destroy the Mlp before the engine.
  Mlp(std::vector<MlpLayerSpec> layers, engine::ExecutionEngine& eng);
  /// Same, pinned behind a serving frontend (single- or multi-memory).
  Mlp(std::vector<MlpLayerSpec> layers, serve::Server& server);

  [[nodiscard]] std::size_t depth() const { return layers_.size(); }
  [[nodiscard]] std::size_t in_features() const;
  [[nodiscard]] std::size_t out_features() const;
  [[nodiscard]] bool pinned() const;

  /// Full forward pass on the IMC memory (ReLU between layers). One
  /// ExecutionEngine (thread pool) is shared by every layer.
  [[nodiscard]] std::vector<double> forward(macro::ImcMemory& mem,
                                            const std::vector<double>& x);
  /// Same, on a caller-provided engine (reused across forward() calls;
  /// resident weights when the Mlp was pinned on this engine).
  [[nodiscard]] std::vector<double> forward(engine::ExecutionEngine& eng,
                                            const std::vector<double>& x);
  /// Same, submitted through a serving frontend (resident weights when the
  /// Mlp was pinned on this server).
  [[nodiscard]] std::vector<double> forward(serve::Server& server,
                                            const std::vector<double>& x);
  /// Host-side reference with the same quantisation.
  [[nodiscard]] std::vector<double> forward_reference(const std::vector<double>& x) const;

  /// Aggregated stats of the last forward() (all layers).
  [[nodiscard]] const LayerStats& last_stats() const { return stats_; }
  /// Per-layer stats of the last forward().
  [[nodiscard]] const std::vector<LayerStats>& layer_stats() const { return per_layer_; }

 private:
  void build(std::vector<MlpLayerSpec> layers, engine::ExecutionEngine* eng,
             serve::Server* server);

  std::vector<QuantizedLinear> layers_;
  LayerStats stats_{};
  std::vector<LayerStats> per_layer_;
};

}  // namespace bpim::app
