#include "app/signed_ops.hpp"

#include <cmath>

#include "common/bitvec.hpp"
#include "common/require.hpp"

namespace bpim::app {

std::uint64_t encode_signed(std::int64_t v, unsigned bits) {
  BPIM_REQUIRE(bits >= 2 && bits <= 63, "signed width out of range");
  BPIM_REQUIRE(fits_signed(v, bits), "value out of signed range");
  const std::uint64_t mask = (1ull << bits) - 1;
  return static_cast<std::uint64_t>(v) & mask;
}

std::int64_t decode_signed(std::uint64_t code, unsigned bits) {
  BPIM_REQUIRE(bits >= 2 && bits <= 63, "signed width out of range");
  BPIM_REQUIRE(BitVector::fits_u64(code, bits), "code wider than the word");
  const std::uint64_t sign_bit = 1ull << (bits - 1);
  if (code & sign_bit) return static_cast<std::int64_t>(code) - (1ll << bits);
  return static_cast<std::int64_t>(code);
}

bool fits_signed(std::int64_t v, unsigned bits) {
  const std::int64_t lo = -(1ll << (bits - 1));
  const std::int64_t hi = (1ll << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

namespace {

std::vector<std::uint64_t> encode_all(const std::vector<std::int64_t>& v, unsigned bits) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size());
  for (const auto x : v) out.push_back(encode_signed(x, bits));
  return out;
}

std::vector<std::uint64_t> magnitudes(const std::vector<std::int64_t>& v, unsigned bits) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size());
  for (const auto x : v) {
    BPIM_REQUIRE(fits_signed(x, bits), "value out of signed range");
    out.push_back(static_cast<std::uint64_t>(std::llabs(x)));
  }
  return out;
}

std::vector<std::int64_t> apply_signs(const std::vector<std::uint64_t>& mags,
                                      const std::vector<std::int64_t>& a,
                                      const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> out;
  out.reserve(mags.size());
  for (std::size_t i = 0; i < mags.size(); ++i) {
    const bool neg = (a[i] < 0) != (b[i] < 0);
    out.push_back(neg ? -static_cast<std::int64_t>(mags[i])
                      : static_cast<std::int64_t>(mags[i]));
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> SignedVectorOps::add(const std::vector<std::int64_t>& a,
                                               const std::vector<std::int64_t>& b) {
  batch_runs_.clear();
  const auto codes = engine_.add(encode_all(a, bits_), encode_all(b, bits_));
  std::vector<std::int64_t> out;
  out.reserve(codes.size());
  for (const auto c : codes) out.push_back(decode_signed(c, bits_));
  return out;
}

std::vector<std::int64_t> SignedVectorOps::sub(const std::vector<std::int64_t>& a,
                                               const std::vector<std::int64_t>& b) {
  batch_runs_.clear();
  const auto codes = engine_.sub(encode_all(a, bits_), encode_all(b, bits_));
  std::vector<std::int64_t> out;
  out.reserve(codes.size());
  for (const auto c : codes) out.push_back(decode_signed(c, bits_));
  return out;
}

std::vector<std::int64_t> SignedVectorOps::mult(const std::vector<std::int64_t>& a,
                                                const std::vector<std::int64_t>& b) {
  BPIM_REQUIRE(a.size() == b.size(), "operand vectors must have equal length");
  batch_runs_.clear();
  // In-memory magnitudes (the heavy work); host-side sign bookkeeping.
  const auto mags = engine_.mult(magnitudes(a, bits_), magnitudes(b, bits_));
  return apply_signs(mags, a, b);
}

engine::ResidentOperand SignedVectorOps::pin_mult_magnitudes(
    const std::vector<std::int64_t>& b, std::optional<std::uint64_t> colocate_key) {
  return engine_.pin_operand(magnitudes(b, bits_), engine::OperandLayout::MultUnit,
                             colocate_key);
}

bool SignedVectorOps::unpin(const engine::ResidentOperand& handle) {
  return engine_.unpin(handle);
}

std::vector<std::vector<std::int64_t>> SignedVectorOps::mult_batch_resident(
    const std::vector<std::vector<std::int64_t>>& as,
    const std::vector<engine::ResidentOperand>& b_handles,
    const std::vector<bool>& b_negative) {
  BPIM_REQUIRE(as.size() == b_handles.size() && as.size() == b_negative.size(),
               "batch operand lists must have equal length");
  // Magnitude storage must outlive the engine call (ops borrow spans).
  std::vector<std::vector<std::uint64_t>> ma;
  ma.reserve(as.size());
  std::vector<engine::VecOp> ops;
  ops.reserve(as.size());
  for (std::size_t k = 0; k < as.size(); ++k) {
    ma.push_back(magnitudes(as[k], bits_));
    engine::VecOp op;
    op.kind = engine::OpKind::Mult;
    op.bits = bits_;
    op.a = ma.back();
    op.rb = b_handles[k];
    ops.push_back(op);
  }
  const auto results = engine_.run_ops(ops);

  batch_runs_.clear();
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(results.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    batch_runs_.push_back(results[k].stats);
    std::vector<std::int64_t> signed_out;
    signed_out.reserve(results[k].values.size());
    for (std::size_t i = 0; i < results[k].values.size(); ++i) {
      const bool neg = (as[k][i] < 0) != b_negative[k];
      const auto mag = static_cast<std::int64_t>(results[k].values[i]);
      signed_out.push_back(neg ? -mag : mag);
    }
    out.push_back(std::move(signed_out));
  }
  return out;
}

std::vector<std::vector<std::int64_t>> SignedVectorOps::mult_forward_resident(
    const std::vector<std::int64_t>& a,
    const std::vector<engine::ResidentOperand>& b_handles,
    const std::vector<bool>& b_negative) {
  BPIM_REQUIRE(b_handles.size() == b_negative.size(),
               "handle and sign lists must have equal length");
  const auto ma = magnitudes(a, bits_);
  const auto results = engine_.run_forward(b_handles, ma);

  batch_runs_.clear();
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(results.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    batch_runs_.push_back(results[k].stats);
    std::vector<std::int64_t> signed_out;
    signed_out.reserve(results[k].values.size());
    for (std::size_t i = 0; i < results[k].values.size(); ++i) {
      const bool neg = (a[i] < 0) != b_negative[k];
      const auto mag = static_cast<std::int64_t>(results[k].values[i]);
      signed_out.push_back(neg ? -mag : mag);
    }
    out.push_back(std::move(signed_out));
  }
  return out;
}

bool SignedVectorOps::compile_forward(const std::vector<engine::ResidentOperand>& handles) {
  return engine_.compile_forward(handles);
}

std::vector<std::vector<std::int64_t>> SignedVectorOps::mult_batch(
    const std::vector<std::vector<std::int64_t>>& as,
    const std::vector<std::vector<std::int64_t>>& bs) {
  BPIM_REQUIRE(as.size() == bs.size(), "batch operand lists must have equal length");
  // Magnitude storage must outlive the engine call (ops borrow spans).
  std::vector<std::vector<std::uint64_t>> ma, mb;
  ma.reserve(as.size());
  mb.reserve(bs.size());
  std::vector<std::pair<std::span<const std::uint64_t>, std::span<const std::uint64_t>>> pairs;
  pairs.reserve(as.size());
  for (std::size_t k = 0; k < as.size(); ++k) {
    BPIM_REQUIRE(as[k].size() == bs[k].size(), "operand vectors must have equal length");
    ma.push_back(magnitudes(as[k], bits_));
    mb.push_back(magnitudes(bs[k], bits_));
    pairs.emplace_back(ma.back(), mb.back());
  }
  const auto results = engine_.mult_batch(pairs);

  batch_runs_.clear();
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(results.size());
  for (std::size_t k = 0; k < results.size(); ++k) {
    batch_runs_.push_back(results[k].stats);
    out.push_back(apply_signs(results[k].values, as[k], bs[k]));
  }
  return out;
}

}  // namespace bpim::app
