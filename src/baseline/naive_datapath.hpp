#pragma once
// The seed's per-bit functional datapath, preserved verbatim as a reference.
//
// The production path (periph/falogics, macro/imc_macro) evaluates every
// cycle word-parallel over BitVector's packed words; these functions keep
// the original one-bool-at-a-time loops so that
//   * tests/test_hot_path_diff can check the SWAR rewrite bit-identical
//     across precisions and odd row widths, and
//   * bench/hot_path_bench can measure the speedup against the pre-PR
//     implementation on the same inputs.
// Nothing here is called from the simulator's hot path.

#include "array/sram_array.hpp"
#include "common/bitvec.hpp"
#include "periph/falogics.hpp"

namespace bpim::baseline {

/// The seed's FaLogics::add: per-bit carry-select ripple with the MX3 cut
/// at every `precision` boundary.
[[nodiscard]] periph::AddResult naive_add(const array::BlReadout& r, unsigned precision,
                                          bool carry_in);

/// The seed's ImcMacro::mult_rows datapath (FF load, multiplicand copy,
/// add-and-shift iterations) on plain row values: row_a holds the
/// multiplicands and row_b the multipliers in the low halves of each
/// 2*bits-wide unit; returns the row of 2*bits-wide products. Pure
/// datapath -- no array traffic, energy or cycle accounting.
[[nodiscard]] BitVector naive_mult_datapath(const BitVector& row_a, const BitVector& row_b,
                                            unsigned bits);

}  // namespace bpim::baseline
