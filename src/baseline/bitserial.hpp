#pragma once
// Conventional bit-serial IMC baseline (the paper's main comparison point,
// modelled on the 28 nm compute-SRAM of [2], JSSC'19).
//
// Data is stored *transposed*: an N-bit element occupies N consecutive rows
// of one column, and one bit-serial ALU at the bottom of each (4:1
// interleaved) column group processes one bit slice per cycle with a carry
// latch. Cycle costs follow the bit-serial algebra:
//
//   logic            N cycles          (one slice per cycle)
//   ADD              N + 1             (carry init + N slices)
//   SUB              N + 2             (invert-on-the-fly + cin + slices)
//   MULT             N * (N + 2)       (per multiplier bit: mask load +
//                                       predicated (N+1)-cycle add into the
//                                       shifted accumulator) ~ the N^2
//                                       scaling the paper quotes for [2]
//
// Parallelism is fixed by the column-ALU organisation (cols / interleave;
// 64 for the native 256-column, 4:1 configuration of [2]) -- the crucial
// contrast with the proposed bit-parallel macro whose word parallelism
// grows with the row width (Fig 9).
//
// Energy: one flat per-ALU-per-cycle price calibrated against the published
// TOPS/W of [2] (ADD 5.27 / MULT 0.56 at 0.6 V), quadratic supply scaling.

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/units.hpp"

namespace bpim::baseline {

struct BitSerialConfig {
  std::size_t rows = 128;
  std::size_t cols = 256;
  std::size_t interleave = 4;
  Volt vdd{0.9};
  /// Per-ALU per-cycle energy at 0.9 V (BL access + sense + serial ALU +
  /// write-back of one slice). 47.4 fJ reproduces [2]'s ADD 5.27 TOPS/W.
  double cycle_energy_fj = 47.4;
};

enum class SerialLogicFn { And, Or, Xor };

class BitSerialMacro {
 public:
  explicit BitSerialMacro(const BitSerialConfig& cfg = {});

  [[nodiscard]] const BitSerialConfig& config() const { return cfg_; }
  /// Number of column ALUs = element-level parallelism.
  [[nodiscard]] std::size_t alus() const { return cfg_.cols / cfg_.interleave; }

  // ---- transposed storage access (uncharged setup) -----------------------
  /// Element `e` (one per ALU), bits stored at rows [base, base+bits).
  void poke_element(std::size_t e, std::size_t base_row, unsigned bits, std::uint64_t value);
  [[nodiscard]] std::uint64_t peek_element(std::size_t e, std::size_t base_row,
                                           unsigned bits) const;

  // ---- vector operations over `elements` (<= alus()) ---------------------
  void logic(SerialLogicFn fn, std::size_t base_a, std::size_t base_b, std::size_t base_d,
             unsigned bits, std::size_t elements);
  void add(std::size_t base_a, std::size_t base_b, std::size_t base_d, unsigned bits,
           std::size_t elements);
  /// d = a - b (two's complement, bit-serial invert + carry-in).
  void sub(std::size_t base_a, std::size_t base_b, std::size_t base_d, unsigned bits,
           std::size_t elements);
  /// d = a * b; product occupies 2*bits rows at base_d.
  void mult(std::size_t base_a, std::size_t base_b, std::size_t base_d, unsigned bits,
            std::size_t elements);

  // ---- published cycle formulas (used for costing and asserted against
  //      the functional implementation in tests) ---------------------------
  [[nodiscard]] static unsigned logic_cycles(unsigned bits) { return bits; }
  [[nodiscard]] static unsigned add_cycles(unsigned bits) { return bits + 1; }
  [[nodiscard]] static unsigned sub_cycles(unsigned bits) { return bits + 2; }
  [[nodiscard]] static unsigned mult_cycles(unsigned bits) { return bits * (bits + 2); }

  // ---- accounting ---------------------------------------------------------
  [[nodiscard]] std::uint64_t total_cycles() const { return cycles_; }
  [[nodiscard]] Joule total_energy() const { return energy_; }
  void reset_counters();

  /// Energy of one element-op from the calibrated per-cycle price.
  [[nodiscard]] Joule op_energy(unsigned cycles, Volt vdd) const;

 private:
  [[nodiscard]] std::size_t column_of(std::size_t e) const;
  void charge(unsigned cycles, std::size_t elements);
  bool get_bit(std::size_t e, std::size_t row) const;
  void set_bit(std::size_t e, std::size_t row, bool v);

  BitSerialConfig cfg_;
  std::vector<BitVector> rows_;
  std::uint64_t cycles_ = 0;
  Joule energy_{0.0};
};

}  // namespace bpim::baseline
