#include "baseline/bitserial.hpp"

#include "common/require.hpp"

namespace bpim::baseline {

BitSerialMacro::BitSerialMacro(const BitSerialConfig& cfg) : cfg_(cfg) {
  BPIM_REQUIRE(cfg.rows > 0 && cfg.cols > 0, "array must be non-empty");
  BPIM_REQUIRE(cfg.interleave > 0 && cfg.cols % cfg.interleave == 0,
               "columns must be a multiple of the interleave factor");
  rows_.assign(cfg.rows, BitVector(cfg.cols));
}

std::size_t BitSerialMacro::column_of(std::size_t e) const {
  BPIM_REQUIRE(e < alus(), "element index exceeds ALU count");
  return e * cfg_.interleave;  // one active column per 4:1 group
}

bool BitSerialMacro::get_bit(std::size_t e, std::size_t row) const {
  BPIM_REQUIRE(row < cfg_.rows, "row out of range");
  return rows_[row].get(column_of(e));
}

void BitSerialMacro::set_bit(std::size_t e, std::size_t row, bool v) {
  BPIM_REQUIRE(row < cfg_.rows, "row out of range");
  rows_[row].set(column_of(e), v);
}

void BitSerialMacro::poke_element(std::size_t e, std::size_t base_row, unsigned bits,
                                  std::uint64_t value) {
  BPIM_REQUIRE(base_row + bits <= cfg_.rows, "element does not fit below base row");
  for (unsigned i = 0; i < bits; ++i) set_bit(e, base_row + i, (value >> i) & 1u);
}

std::uint64_t BitSerialMacro::peek_element(std::size_t e, std::size_t base_row,
                                           unsigned bits) const {
  BPIM_REQUIRE(base_row + bits <= cfg_.rows, "element does not fit below base row");
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bits; ++i)
    v |= static_cast<std::uint64_t>(get_bit(e, base_row + i)) << i;
  return v;
}

void BitSerialMacro::charge(unsigned cycles, std::size_t elements) {
  cycles_ += cycles;
  const double scale = (cfg_.vdd.si() / 0.9) * (cfg_.vdd.si() / 0.9);
  energy_ += Joule(cfg_.cycle_energy_fj * 1e-15 * scale * static_cast<double>(cycles) *
                   static_cast<double>(elements));
}

Joule BitSerialMacro::op_energy(unsigned cycles, Volt vdd) const {
  const double scale = (vdd.si() / 0.9) * (vdd.si() / 0.9);
  return Joule(cfg_.cycle_energy_fj * 1e-15 * scale * static_cast<double>(cycles));
}

void BitSerialMacro::reset_counters() {
  cycles_ = 0;
  energy_ = Joule(0.0);
}

void BitSerialMacro::logic(SerialLogicFn fn, std::size_t base_a, std::size_t base_b,
                           std::size_t base_d, unsigned bits, std::size_t elements) {
  BPIM_REQUIRE(elements <= alus(), "more elements than column ALUs");
  for (std::size_t e = 0; e < elements; ++e) {
    for (unsigned i = 0; i < bits; ++i) {  // one bit slice per cycle
      const bool a = get_bit(e, base_a + i);
      const bool b = get_bit(e, base_b + i);
      bool r = false;
      switch (fn) {
        case SerialLogicFn::And: r = a && b; break;
        case SerialLogicFn::Or: r = a || b; break;
        case SerialLogicFn::Xor: r = a != b; break;
      }
      set_bit(e, base_d + i, r);
    }
  }
  charge(logic_cycles(bits), elements);
}

void BitSerialMacro::add(std::size_t base_a, std::size_t base_b, std::size_t base_d,
                         unsigned bits, std::size_t elements) {
  BPIM_REQUIRE(elements <= alus(), "more elements than column ALUs");
  for (std::size_t e = 0; e < elements; ++e) {
    bool c = false;  // carry latch, initialised in the extra cycle
    for (unsigned i = 0; i < bits; ++i) {
      const bool a = get_bit(e, base_a + i);
      const bool b = get_bit(e, base_b + i);
      set_bit(e, base_d + i, a ^ b ^ c);
      c = (a && b) || (c && (a || b));
    }
  }
  charge(add_cycles(bits), elements);
}

void BitSerialMacro::sub(std::size_t base_a, std::size_t base_b, std::size_t base_d,
                         unsigned bits, std::size_t elements) {
  BPIM_REQUIRE(elements <= alus(), "more elements than column ALUs");
  for (std::size_t e = 0; e < elements; ++e) {
    bool c = true;  // two's complement carry-in
    for (unsigned i = 0; i < bits; ++i) {
      const bool a = get_bit(e, base_a + i);
      const bool b = !get_bit(e, base_b + i);  // invert on the fly
      set_bit(e, base_d + i, a ^ b ^ c);
      c = (a && b) || (c && (a || b));
    }
  }
  charge(sub_cycles(bits), elements);
}

void BitSerialMacro::mult(std::size_t base_a, std::size_t base_b, std::size_t base_d,
                          unsigned bits, std::size_t elements) {
  BPIM_REQUIRE(elements <= alus(), "more elements than column ALUs");
  BPIM_REQUIRE(base_d + 2 * bits <= cfg_.rows, "product does not fit below base row");
  for (std::size_t e = 0; e < elements; ++e) {
    // Zero the accumulator rows, then per multiplier bit: load the predicate
    // mask (1 cycle) and run a predicated add of A into the accumulator at
    // the shifted position ((N+1) cycles) -- the N*(N+2) bit-serial flow.
    for (unsigned i = 0; i < 2 * bits; ++i) set_bit(e, base_d + i, false);
    for (unsigned i = 0; i < bits; ++i) {
      if (!get_bit(e, base_b + i)) continue;  // predicated off: cycles still spent
      bool c = false;
      for (unsigned j = 0; j < bits; ++j) {
        const bool a = get_bit(e, base_a + j);
        const bool acc = get_bit(e, base_d + i + j);
        set_bit(e, base_d + i + j, a ^ acc ^ c);
        c = (a && acc) || (c && (a || acc));
      }
      // Carry ripple-out into the remaining accumulator bits.
      for (unsigned j = i + bits; c && j < 2 * bits; ++j) {
        const bool acc = get_bit(e, base_d + j);
        set_bit(e, base_d + j, acc != c);
        c = acc && c;
      }
    }
  }
  charge(mult_cycles(bits), elements);
}

}  // namespace bpim::baseline
