#include "baseline/naive_datapath.hpp"

namespace bpim::baseline {

using array::BlReadout;
using periph::AddResult;
using periph::FaLogics;

AddResult naive_add(const BlReadout& r, unsigned precision, bool carry_in) {
  const std::size_t width = r.bl_and.size();
  BPIM_REQUIRE(precision >= 1, "precision must be at least 1 bit");
  BPIM_REQUIRE(width % precision == 0, "precision must divide the row width");

  const BitVector x = FaLogics::xor_bits(r);
  const BitVector n = FaLogics::xnor_bits(r);
  const BitVector& a_and = r.bl_and;
  const BitVector a_or = ~r.bl_nor;

  AddResult out{BitVector(width), BitVector(width), BitVector(width)};
  bool c = carry_in;
  for (std::size_t i = 0; i < width; ++i) {
    if (i % precision == 0) c = carry_in;  // MX3 cuts the chain at boundaries
    // Carry-select: both candidates precomputed, carry picks one.
    const bool s = c ? n.get(i) : x.get(i);
    const bool c_next = c ? a_or.get(i) : a_and.get(i);
    out.sum.set(i, s);
    out.carry.set(i, c_next);
    if ((i + 1) % precision == 0) out.word_carry.set(i, c_next);
    c = c_next;
  }
  return out;
}

BitVector naive_mult_datapath(const BitVector& row_a, const BitVector& row_b, unsigned bits) {
  const std::size_t cols = row_a.size();
  BPIM_REQUIRE(row_b.size() == cols, "operand rows must have equal width");
  BPIM_REQUIRE(bits >= 1 && cols % (2 * static_cast<std::size_t>(bits)) == 0,
               "2N-bit units must divide the row width");
  const std::size_t units = cols / (2 * static_cast<std::size_t>(bits));
  const unsigned unit_bits = 2 * bits;

  // FF load (MSB-first release order) from the multiplier row's low halves.
  std::vector<std::uint64_t> ff(units, 0);
  for (std::size_t u = 0; u < units; ++u) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bits; ++i)
      v |= static_cast<std::uint64_t>(row_b.get(u * unit_bits + i)) << i;
    ff[u] = v;
  }

  // Multiplicand copy into the (conceptual) dummy operand row: low halves.
  BitVector a_copy(cols);
  for (std::size_t u = 0; u < units; ++u)
    for (unsigned i = 0; i < bits; ++i)
      a_copy.set(u * unit_bits + i, row_a.get(u * unit_bits + i));

  // Add-and-shift iterations: acc <- (ff_bit ? acc + A : acc), shifted left
  // except on the last cycle.
  BitVector acc(cols);
  for (unsigned k = 0; k < bits; ++k) {
    const bool last = (k + 1 == bits);
    const BlReadout r{a_copy & acc, ~(a_copy | acc)};
    const AddResult res = naive_add(r, unit_bits, false);
    BitVector next(cols);
    for (std::size_t u = 0; u < units; ++u) {
      const bool take_sum = (ff[u] >> (bits - 1 - k)) & 1u;  // MSB-first
      const std::size_t base = u * unit_bits;
      for (unsigned i = 0; i < unit_bits; ++i) {
        const bool bit = take_sum ? res.sum.get(base + i) : acc.get(base + i);
        if (last)
          next.set(base + i, bit);
        else if (i + 1 < unit_bits)
          next.set(base + i + 1, bit);  // <<1 via the propagation path
      }
    }
    acc = next;
  }
  return acc;
}

}  // namespace bpim::baseline
