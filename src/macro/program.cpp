#include "macro/program.hpp"

#include <sstream>

#include "common/require.hpp"
#include "macro/cost_model.hpp"
#include "macro/verifier.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bpim::macro {

namespace {

// Program-path instruments, resolved once (stable addresses, lock-free
// updates thereafter). Rejections and per-program cycles are the adoption
// signals of the unified execution model.
obs::Counter& verify_rejected_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "macro.verify.rejected", "programs rejected before execution (VerifyFirst or compile)");
  return c;
}

obs::Histogram& program_cycles_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "macro.program.cycles", "modeled cycles per executed macro program");
  return h;
}

// Adaptive-execution instruments: how often the policy fires, what it saves,
// and the narrowed-depth distribution (full-depth MULTs observe bits).
obs::Counter& adaptive_mults_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "engine.adaptive.mults", "MULTs executed under an enabled adaptive policy");
  return c;
}

obs::Counter& adaptive_skipped_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "engine.adaptive.skipped", "MULTs skipped outright (all products provably zero)");
  return c;
}

obs::Counter& adaptive_saved_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "engine.adaptive.cycles_saved", "modeled cycles saved by adaptive narrowing/skipping");
  return c;
}

obs::Histogram& adaptive_depth_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "engine.adaptive.narrowed_depth", "executed add-shift depth per adaptive MULT");
  return h;
}

}  // namespace

std::string to_string(const Instruction& inst) {
  std::ostringstream os;
  os << to_string(inst.op);
  if (inst.op == Op::Nand || inst.op == Op::And || inst.op == Op::Nor || inst.op == Op::Or ||
      inst.op == Op::Xnor || inst.op == Op::Xor)
    os << "(" << periph::to_string(inst.logic_fn) << ")";
  auto row = [](const array::RowRef& r) {
    return std::string(r.is_dummy() ? "D" : "R") + std::to_string(r.index);
  };
  os << " " << row(inst.a);
  if (is_dual_wl(inst.op)) os << ", " << row(inst.b);
  if (inst.dest) os << " -> " << row(*inst.dest);
  os << " @" << inst.bits << "b";
  return os.str();
}

Program& Program::logic(periph::LogicFn fn, array::RowRef a, array::RowRef b) {
  BPIM_REQUIRE(fn != periph::LogicFn::PassA && fn != periph::LogicFn::NotA,
               "PassA/NotA are single-WL paths; use unary(COPY/NOT)");
  Instruction i;
  i.op = Op::And;  // representative dual-WL logic op; fn carries the function
  i.logic_fn = fn;
  i.a = a;
  i.b = b;
  instructions_.push_back(i);
  return *this;
}

Program& Program::unary(Op op, array::RowRef src, array::RowRef dest, unsigned bits) {
  BPIM_REQUIRE(op == Op::Not || op == Op::Copy || op == Op::Shift,
               "unary() takes NOT/COPY/SHIFT");
  Instruction i;
  i.op = op;
  i.a = src;
  i.dest = dest;
  i.bits = bits;
  instructions_.push_back(i);
  return *this;
}

Program& Program::add(array::RowRef a, array::RowRef b, unsigned bits,
                      std::optional<array::RowRef> dest) {
  Instruction i;
  i.op = Op::Add;
  i.a = a;
  i.b = b;
  i.bits = bits;
  i.dest = dest;
  instructions_.push_back(i);
  return *this;
}

Program& Program::add_shift(array::RowRef a, array::RowRef b, unsigned bits,
                            array::RowRef dest) {
  Instruction i;
  i.op = Op::AddShift;
  i.a = a;
  i.b = b;
  i.bits = bits;
  i.dest = dest;
  instructions_.push_back(i);
  return *this;
}

Program& Program::sub(array::RowRef a, array::RowRef b, unsigned bits) {
  Instruction i;
  i.op = Op::Sub;
  i.a = a;
  i.b = b;
  i.bits = bits;
  instructions_.push_back(i);
  return *this;
}

Program& Program::mult(array::RowRef a, array::RowRef b, unsigned bits) {
  Instruction i;
  i.op = Op::Mult;
  i.a = a;
  i.b = b;
  i.bits = bits;
  instructions_.push_back(i);
  return *this;
}

std::uint64_t Program::static_cycles() const {
  std::uint64_t c = 0;
  for (const auto& i : instructions_) c += op_cycles(i.op, i.bits);
  return c;
}

std::string Program::dump() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < instructions_.size(); ++k) {
    const Instruction& i = instructions_[k];
    os << "#" << k << "\t" << to_string(i);
    switch (i.op) {
      case Op::Mult:
        os << "\t; D1 <- masked a, FF <- b, product -> D2";
        break;
      case Op::Sub:
        os << "\t; D1 <- ~b, difference driven out";
        break;
      case Op::Add:
        if (!i.dest) os << "\t; sum driven out";
        break;
      case Op::AddShift:
        os << "\t; (a+b)<<1 in-field";
        break;
      default:
        break;
    }
    os << "\n";
  }
  return os.str();
}

void MacroController::check_row(const array::RowRef& r, std::size_t index) const {
  const auto& g = macro_.config().geometry;
  const std::size_t limit = r.is_dummy() ? g.dummy_rows : g.rows;
  if (r.index >= limit)
    throw std::invalid_argument("instruction " + std::to_string(index) +
                                ": row out of range: " + std::to_string(r.index));
}

void MacroController::validate(const Program& p) const {
  for (std::size_t k = 0; k < p.instructions().size(); ++k) {
    const Instruction& i = p.instructions()[k];
    check_row(i.a, k);
    if (is_dual_wl(i.op)) {
      check_row(i.b, k);
      if (i.a == i.b)
        throw std::invalid_argument("instruction " + std::to_string(k) +
                                    ": dual-WL op needs two distinct rows");
    }
    if (i.dest) check_row(*i.dest, k);
    const bool needs_dest = i.op == Op::Not || i.op == Op::Copy || i.op == Op::Shift ||
                            i.op == Op::AddShift;
    if (needs_dest && !i.dest)
      throw std::invalid_argument("instruction " + std::to_string(k) + ": " +
                                  std::string(to_string(i.op)) + " requires a destination");
    if (i.op != Op::And || i.logic_fn == periph::LogicFn::PassA ||
        i.logic_fn == periph::LogicFn::NotA) {
      // Arithmetic ops and single-WL paths carry a precision.
      if (i.op == Op::Add || i.op == Op::AddShift || i.op == Op::Sub || i.op == Op::Mult ||
          needs_dest) {
        if (!is_supported_precision(i.bits))
          throw std::invalid_argument("instruction " + std::to_string(k) +
                                      ": unsupported precision " + std::to_string(i.bits));
        const unsigned span = i.op == Op::Mult ? 2 * i.bits : i.bits;
        if (macro_.cols() % span != 0)
          throw std::invalid_argument("instruction " + std::to_string(k) +
                                      ": precision does not divide the row width");
      }
    }
  }
}

ProgramStats MacroController::run(const Program& p, std::vector<TraceEntry>* trace,
                                  bool fuse_mac_chains, const AdaptivePolicy& policy) {
  if (mode_ == VerifyMode::VerifyFirst) {
    const VerifyReport report = verify_program(p, macro_);
    if (!report.ok()) {
      verify_rejected_counter().add();
      throw std::invalid_argument("program rejected by verifier: " + report.error_summary() +
                                  "\n" + report.annotate(p));
    }
  } else {
    validate(p);
  }
  // The instruction stream is the accounting source: every instruction is
  // priced by the cost model (cycles from timing/, joules from energy/) and
  // cross-checked against the executing datapath's ledger. Cycles are
  // asserted here on every instruction; the energy half of the conservation
  // law (bitwise ledger equality) is asserted in test_macro_accounting /
  // test_macro_energy.
  const CostModel cost(macro_.config());
  ProgramStats stats;
  const Instruction* prev = nullptr;
  // What the masked-copy dummy row D1 currently holds. A MULT whose staging
  // cycle executes records its multiplicand here; a skipped or d1-staged
  // MULT leaves it alone (the add-shift iterations only write D2); SUB and
  // any explicit write to D1 clobber it. Fusion's D1-reuse discount keys off
  // this rather than just the previous instruction, because under zero-skip
  // the MULT that *would* have staged may not have -- reusing D1 then would
  // multiply by stale data.
  struct {
    array::RowRef row{};
    unsigned bits = 0;
    bool valid = false;
  } staged;
  const array::RowRef d1_row = array::RowRef::dummy(ImcMacro::kDummyOperand);
  for (const Instruction& i : p.instructions()) {
    BitVector result;
    InstructionCost priced;
    MultPlan plan;
    unsigned adaptive = 0;
    switch (i.op) {
      case Op::Nand:
      case Op::And:
      case Op::Nor:
      case Op::Or:
      case Op::Xnor:
      case Op::Xor:
        priced = cost.instruction_cost(i, fuse_mac_chains ? prev : nullptr);
        result = macro_.logic_rows(i.logic_fn, i.a, i.b);
        break;
      case Op::Not:
      case Op::Copy:
      case Op::Shift:
        priced = cost.instruction_cost(i, fuse_mac_chains ? prev : nullptr);
        result = macro_.unary_row(i.op, i.a, *i.dest, i.bits);
        break;
      case Op::Add:
        priced = cost.instruction_cost(i, fuse_mac_chains ? prev : nullptr);
        result = macro_.add_rows(i.a, i.b, i.bits, i.dest);
        break;
      case Op::AddShift:
        priced = cost.instruction_cost(i, fuse_mac_chains ? prev : nullptr);
        result = macro_.add_shift_rows(i.a, i.b, i.bits, *i.dest);
        break;
      case Op::Sub:
        priced = cost.instruction_cost(i, fuse_mac_chains ? prev : nullptr);
        result = macro_.sub_rows(i.a, i.b, i.bits);
        break;
      case Op::Mult: {
        // Chain discount: a MULT directly after a MULT at the same precision
        // loads its FF while the predecessor's final D2 write-back drains;
        // if D1 still holds this multiplicand's masked copy, the staging
        // cycle drops out as well. The adaptive policy then narrows/skips
        // against the operand data; the one resolved plan drives pricing,
        // execution, and the savings split alike.
        const bool pipelined =
            fuse_mac_chains && prev != nullptr && prev->op == Op::Mult && prev->bits == i.bits;
        const bool d1_staged =
            pipelined && staged.valid && staged.row == i.a && staged.bits == i.bits;
        plan = macro_.plan_mult(i.a, i.b, i.bits, policy, d1_staged, pipelined);
        priced = cost.instruction_cost(i, plan);
        result = macro_.mult_rows_planned(i.a, i.b, i.bits, plan);
        adaptive = plan.adaptive_cycles_saved(i.bits);
        break;
      }
    }
    const ExecStats es = macro_.last_op();
    BPIM_REQUIRE(priced.cycles == es.cycles,
                 "cost model cycles diverge from the executed datapath");
    ++stats.instructions;
    stats.cycles += priced.cycles;
    const unsigned table_cycles = op_cycles(i.op, i.bits);
    if (i.op == Op::Mult) {
      const unsigned fused = plan.fused_cycles_saved();
      BPIM_REQUIRE(priced.cycles + fused + adaptive == table_cycles,
                   "MULT cycle conservation violated (static != cycles + fused + adaptive)");
      stats.fused_cycles_saved += fused;
      stats.adaptive_cycles_saved += adaptive;
      if (policy.enabled()) {
        adaptive_mults_counter().add();
        if (plan.skip) adaptive_skipped_counter().add();
        if (adaptive > 0) adaptive_saved_counter().add(adaptive);
        adaptive_depth_histogram().observe(plan.depth);
      }
      // Track what D1 holds after this MULT for the next link's reuse test.
      if (plan.staging_cycles() > 0) {
        staged.row = i.a;
        staged.bits = i.bits;
        staged.valid = true;
      }
    } else if (i.op == Op::Sub || (i.dest && *i.dest == d1_row)) {
      staged.valid = false;  // D1 clobbered (SUB stages ~b there; dest hit it)
    } else {
      if (table_cycles > priced.cycles) stats.fused_cycles_saved += table_cycles - priced.cycles;
    }
    stats.energy += priced.energy;
    if (trace) trace->push_back(TraceEntry{i, es.cycles, es.op_energy, result, adaptive});
    prev = &i;
  }
  stats.elapsed = cost.cycle_time() * static_cast<double>(stats.cycles);
  program_cycles_histogram().observe(stats.cycles);
#if BPIM_OBS_ENABLED
  // Per-program events are high volume (one per macro per batch step), so
  // they stay behind the extra macro-events gate; a bench opts in when it
  // wants the microscope view.
  if (auto& session = obs::TraceSession::global(); session.macro_events_on()) {
    session.instant("macro.program", 0,
                    obs::EventArgs{{"instructions", static_cast<double>(stats.instructions)},
                                   {"cycles", static_cast<double>(stats.cycles)},
                                   {"fused_cycles_saved",
                                    static_cast<double>(stats.fused_cycles_saved)},
                                   {"adaptive_cycles_saved",
                                    static_cast<double>(stats.adaptive_cycles_saved)}});
  }
#endif
  return stats;
}

}  // namespace bpim::macro
