#pragma once
// Static verifier for macro::Program -- the compile-time contract of the
// row-level ISA. Where MacroController::validate throws on the first
// malformed instruction, the verifier checks a whole program against an
// array geometry *before* any state is touched and returns a structured
// diagnostics list (severity, instruction index, message), so a macro
// compiler (the planned fusion path that emits Programs at pin time) can
// report every fault of an emitted program at once and tests can assert on
// diagnostic kinds instead of string-matching exception text.
//
// Checked, per instruction:
//   * row bounds against the geometry (main rows and dummy rows);
//   * role rules of the sequencer's scratch rows: dual-WL ops need two
//     distinct rows; MULT must not source D1/D2 (it zero-inits D2 and
//     stages the multiplicand in D1 before reading its operands); SUB must
//     not source `a` from D1 (cycle 2 senses a against ~b staged there);
//   * destination discipline: NOT/COPY/SHIFT/ADD-Shift require a dest,
//     SUB/MULT/logic ignore one (warning -- SUB drives its result out,
//     MULT leaves it in D2);
//   * precision: supported width, and the operand field span (2N for MULT)
//     must fit (FieldOverflow) and divide (WidthMismatch) the row width;
//   * data hazards across instructions sharing rows: WAW (an explicit
//     dest overwritten before anything read it) and RAW (reading a row
//     whose explicit definition was clobbered by a later instruction's
//     implicit scratch-row traffic), plus precision reinterpretation
//     (a row written as N-bit fields read back at a different width);
//   * whole-program budgets: Table-1 static cycles and instruction count
//     against caller-supplied limits.
//
// Hazard diagnostics are Warnings (the program still executes exactly as
// written -- these flag *suspect* schedules for the compiler); everything
// the hardware cannot execute faithfully is an Error. A program with no
// Errors is accepted: report.ok().

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "array/sram_array.hpp"
#include "macro/program.hpp"

namespace bpim::macro {

enum class Severity { Warning, Error };

enum class DiagKind {
  RowOutOfRange,      ///< row index beyond the geometry's main/dummy rows
  IdenticalRows,      ///< dual-WL op sensing the same row twice
  RoleViolation,      ///< operand overlaps the op's implicit scratch rows
  MissingDest,        ///< NOT/COPY/SHIFT/ADD-Shift without a destination
  DestIgnored,        ///< dest on an op that discards it (SUB/MULT/logic)
  BadPrecision,       ///< unsupported operand width
  FieldOverflow,      ///< operand field span wider than the row
  WidthMismatch,      ///< field span does not divide the row width
  RawHazard,          ///< read of a row clobbered by implicit scratch traffic
  WawHazard,          ///< explicit dest overwritten before any read
  PrecisionMismatch,  ///< field-structured read at a different width than the write
  CycleBudget,        ///< static cycles exceed VerifyLimits::max_cycles
  InstructionBudget,  ///< instruction count exceeds VerifyLimits::max_instructions
  ResidentClobber,    ///< explicit write into a row the residency map pins
};

[[nodiscard]] const char* to_string(Severity s);
[[nodiscard]] const char* to_string(DiagKind k);

struct Diagnostic {
  Severity severity = Severity::Error;
  DiagKind kind = DiagKind::RowOutOfRange;
  std::size_t instruction = 0;  ///< index into Program::instructions()
  std::string message;
};

/// Whole-program static budgets; 0 means unlimited.
struct VerifyLimits {
  std::uint64_t max_cycles = 0;       ///< Table-1 static cycle budget
  std::size_t max_instructions = 0;   ///< program length budget
};

/// One interval of main rows the ResidencyManager has pinned (weights kept
/// materialized across calls). A program may *read* these rows -- that is
/// the whole point of residency -- but an explicit write-back into one is an
/// Error (ResidentClobber): it would silently corrupt a pinned operand.
struct PinnedRows {
  std::size_t first_row = 0;  ///< first main-row index of the interval
  std::size_t row_count = 0;  ///< rows covered (contiguous)
};

struct VerifyReport {
  std::vector<Diagnostic> diagnostics;  ///< program order, then budgets
  std::uint64_t static_cycles = 0;      ///< Table-1 total (malformed ops priced 0)
  std::size_t errors = 0;
  std::size_t warnings = 0;

  /// Accepted: free of Errors (Warnings allowed).
  [[nodiscard]] bool ok() const { return errors == 0; }
  /// One line per diagnostic ("error[kind] @#i: message").
  [[nodiscard]] std::string to_string() const;
  /// Like to_string() but Errors only -- the verify-first rejection text.
  [[nodiscard]] std::string error_summary() const;
  /// Program::dump() with each instruction's diagnostics interleaved under
  /// it -- the debuggable form of a rejected fused program.
  [[nodiscard]] std::string annotate(const Program& p) const;
};

/// Verify `p` against an array geometry (no macro instance needed -- a
/// compiler can check emitted programs before the target array exists).
[[nodiscard]] VerifyReport verify_program(const Program& p, const array::ArrayGeometry& g,
                                          const VerifyLimits& limits = {});

/// Residency-aware verify: additionally flags explicit main-row writes that
/// land inside any pinned interval (ResidentClobber, Error).
[[nodiscard]] VerifyReport verify_program(const Program& p, const array::ArrayGeometry& g,
                                          std::span<const PinnedRows> pinned,
                                          const VerifyLimits& limits = {});

/// Convenience: verify against a live macro's geometry.
[[nodiscard]] VerifyReport verify_program(const Program& p, const ImcMacro& m,
                                          const VerifyLimits& limits = {});

}  // namespace bpim::macro
