#include "macro/isa.hpp"

namespace bpim::macro {

const char* to_string(Op op) {
  switch (op) {
    case Op::Nand: return "NAND";
    case Op::And: return "AND";
    case Op::Nor: return "NOR";
    case Op::Or: return "OR";
    case Op::Xnor: return "XNOR";
    case Op::Xor: return "XOR";
    case Op::Not: return "NOT";
    case Op::Shift: return "SHIFT";
    case Op::Copy: return "COPY";
    case Op::Add: return "ADD";
    case Op::AddShift: return "ADD-Shift";
    case Op::Sub: return "SUB";
    case Op::Mult: return "MULT";
  }
  return "??";
}

bool is_dual_wl(Op op) {
  switch (op) {
    case Op::Not:
    case Op::Shift:
    case Op::Copy:
      return false;
    default:
      return true;
  }
}

unsigned op_cycles(Op op, unsigned bits) {
  BPIM_REQUIRE(bits >= 1, "precision must be positive");
  switch (op) {
    case Op::Sub: return 2;
    case Op::Mult: return bits + 2;
    default: return 1;
  }
}

const char* to_string(WlScheme s) {
  switch (s) {
    case WlScheme::ShortPulseBoost: return "Short WL + BL Boost";
    case WlScheme::Wlud: return "WLUD";
    case WlScheme::FullSwingLong: return "Full-swing long WL (unprotected)";
  }
  return "??";
}

bool is_supported_precision(unsigned bits) {
  return bits == 2 || bits == 4 || bits == 8 || bits == 16 || bits == 32;
}

}  // namespace bpim::macro
