#pragma once
// Fusion compiler: turns dependent op chains into single verified macro ISA
// programs, so a whole forward pass executes in-array -- intermediates live
// in the dummy accumulator row (D2), never leaving the subarray. This is
// the IMAC organization applied to the seed's row-level ISA: the multi-bit
// MAC is the primitive, and the verifier (macro/verifier.hpp) is the
// contract every emitted program is checked against before it ever reaches
// a macro.
//
// Two program shapes are emitted:
//
//   compile_mac_forward  One MULT per (activation row, weight row) pair.
//                        The per-MAC products are captured from the
//                        execution trace; back-to-back MULTs of one staged
//                        activation row run on the chained datapath (FF load
//                        overlapped, D1 staging skipped), which is where the
//                        fused cycle win comes from.
//
//   compile_chain        MULT -> ADD(-> ADD-Shift) dependency chains: the
//                        head product stays in D2 and each link folds a
//                        2N-bit operand row into it. The final link drives
//                        the result out (ADD) or retires it into the layer's
//                        own dead activation row (ADD-Shift needs a dest).
//
// The compiler knows the residency map: programs are verified against the
// pinned intervals (DiagKind::ResidentClobber) and must come back with ZERO
// diagnostics -- warnings included -- or compilation throws with the
// annotated disassembly. Nothing here depends on the engine layer; the
// engine hands in geometry + pinned intervals and gets Programs back.

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "array/sram_array.hpp"
#include "common/thread_annotations.hpp"
#include "macro/program.hpp"
#include "macro/verifier.hpp"

namespace bpim::macro {

/// One MAC of a fused forward: MULT of two staged main rows, product in D2.
struct MacStep {
  std::size_t a_row = 0;  ///< multiplicand row (the shared activation)
  std::size_t b_row = 0;  ///< multiplier row (typically a resident weight)
};

/// A whole forward at one precision: the per-macro MAC sequence, in issue
/// order. Steps sharing `a_row` should be adjacent -- the chained datapath
/// only discounts back-to-back repeats.
struct MacForwardSpec {
  unsigned bits = 8;
  std::vector<MacStep> steps;
};

/// How one chain link folds its operand into the D2 accumulator.
enum class ChainLinkKind {
  Add,       ///< acc += operand
  AddShift,  ///< acc = (acc + operand) << 1 (in-field)
};

/// One MULT->links chain: the head MAC plus the rows folded into it. Link
/// operands are 2N-bit fields (the product width).
struct ChainLayerSpec {
  std::size_t a_row = 0;
  std::size_t b_row = 0;
  std::vector<std::pair<ChainLinkKind, std::size_t>> links;
};

struct ChainSpec {
  unsigned bits = 8;  ///< head MULT precision; links run at 2*bits
  std::vector<ChainLayerSpec> layers;
};

class FusionCompiler {
 public:
  /// `pinned` is the residency map of the target macro's main rows; emitted
  /// programs may read pinned rows (that is the point) but never write them.
  explicit FusionCompiler(array::ArrayGeometry g, std::vector<PinnedRows> pinned = {})
      : geom_(g), pinned_(std::move(pinned)) {}

  /// Emit and verify the fused whole-forward MAC program. Throws
  /// std::invalid_argument (with annotated disassembly) if the emitted
  /// program draws any verifier diagnostic.
  [[nodiscard]] Program compile_mac_forward(const MacForwardSpec& spec) const;

  /// Emit and verify a MULT->ADD(->ADD-Shift) chain program. The last link
  /// of an ADD chain carries no dest (result driven out and captured from
  /// the trace); a final ADD-Shift retires into the layer's own `a_row`,
  /// dead since the head MULT consumed it.
  [[nodiscard]] Program compile_chain(const ChainSpec& spec) const;

  /// Cycle cost of `p` on the chained-MAC execution path -- Table 1 minus
  /// the discounts MacroController::run applies with fuse_mac_chains set.
  [[nodiscard]] static std::uint64_t fused_static_cycles(const Program& p);

  [[nodiscard]] const array::ArrayGeometry& geometry() const { return geom_; }
  [[nodiscard]] const std::vector<PinnedRows>& pinned() const { return pinned_; }

 private:
  void verify_emitted(const Program& p, const char* what) const;

  array::ArrayGeometry geom_;
  std::vector<PinnedRows> pinned_;
};

/// Single-op compiler: the FusionCompiler's sibling for everything that is
/// not a fused chain. Each entry point emits the one-instruction Program for
/// a VecOp-shaped request (ADD, SUB, MULT, ADD-Shift, unary, logic) against
/// the array geometry + residency map, verifies it to zero diagnostics
/// (warnings included, like the fusion path), and caches it by
/// (op, fn, bits, rows, dest) so hot-path dispatch is one hash lookup.
///
/// Returned references stay valid for the compiler's lifetime (entries are
/// never evicted); set_pinned() is the one invalidation point -- it clears
/// the cache and must not race executions of previously returned programs,
/// the same contract the fusion path has at recompile.
///
/// Thread-safe: the engine compiles on the submitting thread, but a serving
/// deployment may share one compiler across engines. Cache traffic feeds the
/// macro.programs.compiled / macro.programs.cache_hits counters and compile
/// instants on the trace timeline.
class OpCompiler {
 public:
  explicit OpCompiler(array::ArrayGeometry g, std::vector<PinnedRows> pinned = {})
      : geom_(g), pinned_(std::move(pinned)) {}

  const Program& add(array::RowRef a, array::RowRef b, unsigned bits) BPIM_EXCLUDES(mutex_);
  const Program& sub(array::RowRef a, array::RowRef b, unsigned bits) BPIM_EXCLUDES(mutex_);
  const Program& mult(array::RowRef a, array::RowRef b, unsigned bits) BPIM_EXCLUDES(mutex_);
  const Program& add_shift(array::RowRef a, array::RowRef b, unsigned bits,
                           array::RowRef dest) BPIM_EXCLUDES(mutex_);
  const Program& unary(Op op, array::RowRef src, array::RowRef dest, unsigned bits)
      BPIM_EXCLUDES(mutex_);
  const Program& logic(periph::LogicFn fn, array::RowRef a, array::RowRef b)
      BPIM_EXCLUDES(mutex_);

  /// Generic entry: build/fetch the verified single-instruction program for
  /// `inst`. Throws std::invalid_argument (with annotated disassembly) when
  /// the instruction draws any verifier diagnostic.
  const Program& single(const Instruction& inst) BPIM_EXCLUDES(mutex_);

  /// Replace the residency map. Clears the cache (programs verified against
  /// the old map are stale); must not race executions.
  void set_pinned(std::vector<PinnedRows> pinned) BPIM_EXCLUDES(mutex_);

  struct CacheStats {
    std::uint64_t compiled = 0;  ///< cache misses: programs emitted + verified
    std::uint64_t hits = 0;      ///< programs served from the cache
  };
  [[nodiscard]] CacheStats cache_stats() const BPIM_EXCLUDES(mutex_);

  [[nodiscard]] const array::ArrayGeometry& geometry() const { return geom_; }

 private:
  /// Cache key: the instruction's identity, rows encoded as dummy-bit+index.
  struct Key {
    std::uint8_t op = 0;
    std::uint8_t fn = 0;
    std::uint32_t bits = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t dest = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  array::ArrayGeometry geom_;
  mutable Mutex mutex_;
  std::vector<PinnedRows> pinned_ BPIM_GUARDED_BY(mutex_);
  std::unordered_map<Key, Program, KeyHash> cache_ BPIM_GUARDED_BY(mutex_);
  CacheStats stats_ BPIM_GUARDED_BY(mutex_);
};

}  // namespace bpim::macro
