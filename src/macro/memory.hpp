#pragma once
// Bank / memory hierarchy: the paper's 128 KB configuration is 4 banks of
// bit-parallel IMC macros (Table 3: "4 x 128 x 128"). Each 128x128 macro
// stores 2 KB, so the 128 KB part aggregates 64 macros, 16 per bank. Banks
// operate independently; macros within a bank share command sequencing and
// can execute the same row-level operation in lock-step (the vector engine
// in app/ exploits this).

#include <cstddef>
#include <memory>
#include <vector>

#include "macro/imc_macro.hpp"

namespace bpim::macro {

struct MemoryConfig {
  MacroConfig macro{};
  std::size_t banks = 4;
  std::size_t macros_per_bank = 16;
  /// Added to every macro's RNG seed. Lets a multi-memory deployment give
  /// each ImcMemory instance (NUMA node) a decorrelated disturb-injection
  /// stream while sharing one MacroConfig. Op results and RunStats do not
  /// depend on it unless `macro.inject_disturb` is enabled.
  std::uint64_t seed_offset = 0;
};

class Bank {
 public:
  Bank(const MacroConfig& macro_cfg, std::size_t macro_count, std::uint64_t seed_base);

  [[nodiscard]] std::size_t macro_count() const { return macros_.size(); }
  [[nodiscard]] ImcMacro& macro(std::size_t i);
  [[nodiscard]] const ImcMacro& macro(std::size_t i) const;

  /// Energy summed over macros; elapsed cycles = max (lock-step execution).
  [[nodiscard]] Joule total_energy() const;
  [[nodiscard]] std::uint64_t elapsed_cycles() const;
  void reset_counters();

 private:
  std::vector<std::unique_ptr<ImcMacro>> macros_;
};

class ImcMemory {
 public:
  explicit ImcMemory(const MemoryConfig& cfg = {});

  [[nodiscard]] const MemoryConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t bank_count() const { return banks_.size(); }
  [[nodiscard]] Bank& bank(std::size_t b);
  [[nodiscard]] const Bank& bank(std::size_t b) const;
  /// Macro by flat index across banks.
  [[nodiscard]] ImcMacro& macro(std::size_t flat);
  [[nodiscard]] std::size_t macro_count() const;

  /// Storage capacity in bytes (main arrays only, dummy rows excluded).
  [[nodiscard]] std::size_t capacity_bytes() const;

  [[nodiscard]] Joule total_energy() const;
  /// Elapsed cycles assuming banks run fully in parallel.
  [[nodiscard]] std::uint64_t elapsed_cycles() const;
  void reset_counters();

 private:
  MemoryConfig cfg_;
  std::vector<std::unique_ptr<Bank>> banks_;
};

}  // namespace bpim::macro
