#include "macro/imc_macro.hpp"

#include <bit>
#include <cmath>

#include "common/require.hpp"

namespace bpim::macro {

using array::BlReadout;
using array::RowRef;
using energy::Component;
using energy::SeparatorMode;
using periph::FaLogics;
using periph::LogicFn;

DisturbModel DisturbModel::for_scheme(WlScheme scheme) {
  switch (scheme) {
    case WlScheme::ShortPulseBoost:
      // Measured < 1/2M in the ADM Monte Carlo (timing/adm): the WL is gone
      // before the boost collapses the BL.
      return {0.0};
    case WlScheme::Wlud:
      // Iso-ADM calibration point (2.25e-5 measured at 0.55 V WL, 0.9 V).
      return {2.25e-5};
    case WlScheme::FullSwingLong:
      // Full-swing WL held while the BL collapses: the access device wins
      // against the pull-up for a large fraction of mismatch samples.
      return {0.35};
  }
  return {0.0};
}

ImcMacro::ImcMacro(const MacroConfig& cfg)
    : cfg_(cfg),
      array_(cfg.geometry),
      energy_(cfg.energy_params),
      freq_(cfg.freq),
      disturb_(DisturbModel::for_scheme(cfg.wl_scheme)),
      rng_(cfg.seed) {
  BPIM_REQUIRE(cfg.geometry.dummy_rows >= 3, "the sequencer needs three dummy rows");
}

std::size_t ImcMacro::words_per_row(unsigned bits) const {
  BPIM_REQUIRE(is_supported_precision(bits), "unsupported precision");
  BPIM_REQUIRE(cols() % bits == 0, "precision must divide the row width");
  return cols() / bits;
}

std::size_t ImcMacro::mult_units_per_row(unsigned bits) const {
  BPIM_REQUIRE(is_supported_precision(bits), "unsupported precision");
  BPIM_REQUIRE(cols() % (2 * bits) == 0, "2N-bit units must divide the row width");
  return cols() / (2 * static_cast<std::size_t>(bits));
}

// ---- uncharged data access --------------------------------------------------

void ImcMacro::poke_row(std::size_t r, const BitVector& data) {
  array_.write_row(RowRef::main(r), data);
}

const BitVector& ImcMacro::peek_row(std::size_t r) const { return array_.row(RowRef::main(r)); }

void ImcMacro::poke_word(std::size_t r, std::size_t word, unsigned bits, std::uint64_t value) {
  BPIM_REQUIRE(word < words_per_row(bits), "word index out of range");
  BPIM_REQUIRE(BitVector::fits_u64(value, bits), "value does not fit precision");
  array_.deposit_bits(RowRef::main(r), word * bits, bits, value);
}

std::uint64_t ImcMacro::peek_word(std::size_t r, std::size_t word, unsigned bits) const {
  BPIM_REQUIRE(word < words_per_row(bits), "word index out of range");
  return array_.extract_bits(RowRef::main(r), word * bits, bits);
}

void ImcMacro::poke_words(std::size_t r, std::size_t first_word, unsigned bits,
                          std::span<const std::uint64_t> values) {
  BPIM_REQUIRE(first_word + values.size() <= words_per_row(bits), "word range out of range");
  const RowRef row = RowRef::main(r);
  for (std::size_t i = 0; i < values.size(); ++i) {
    BPIM_REQUIRE(BitVector::fits_u64(values[i], bits), "value does not fit precision");
    array_.deposit_bits(row, (first_word + i) * bits, bits, values[i]);
  }
}

void ImcMacro::poke_mult_operand(std::size_t r, std::size_t unit, unsigned bits,
                                 std::uint64_t value) {
  BPIM_REQUIRE(unit < mult_units_per_row(bits), "unit index out of range");
  BPIM_REQUIRE(BitVector::fits_u64(value, bits), "value does not fit precision");
  // One deposit covers the whole unit: operand in the low half, zeros above.
  array_.deposit_bits(RowRef::main(r), unit * 2 * bits, 2 * bits, value);
}

void ImcMacro::poke_mult_operands(std::size_t r, std::size_t first_unit, unsigned bits,
                                  std::span<const std::uint64_t> values) {
  BPIM_REQUIRE(first_unit + values.size() <= mult_units_per_row(bits), "unit range out of range");
  const RowRef row = RowRef::main(r);
  for (std::size_t i = 0; i < values.size(); ++i) {
    BPIM_REQUIRE(BitVector::fits_u64(values[i], bits), "value does not fit precision");
    array_.deposit_bits(row, (first_unit + i) * 2 * bits, 2 * bits, values[i]);
  }
}

std::uint64_t ImcMacro::peek_mult_product(const BitVector& row, std::size_t unit,
                                          unsigned bits) const {
  BPIM_REQUIRE(unit < mult_units_per_row(bits), "unit index out of range");
  return row.extract_bits(unit * 2 * bits, 2 * bits);
}

// ---- accounting helpers -----------------------------------------------------

Component ImcMacro::compute_price(RowRef a, RowRef b) const {
  // Dummy-segment computes are short-BL accesses; the *adaptive* separator's
  // energy benefit shows up on write-back (see energy model header).
  return (a.is_dummy() && b.is_dummy()) ? Component::DualWlComputeNear
                                        : Component::DualWlComputeMain;
}

Component ImcMacro::wb_price() const {
  return cfg_.separator == SeparatorMode::Enabled ? Component::WriteBackNear
                                                  : Component::WriteBackFull;
}

void ImcMacro::charge(Component c, double bits) {
  const Joule e = energy_.price(c, cfg_.vdd) * bits;
  pending_energy_ += e;
  component_energy_[static_cast<std::size_t>(c)] += e;
}

Joule ImcMacro::component_energy(Component c) const {
  return component_energy_[static_cast<std::size_t>(c)];
}

void ImcMacro::finish_op(unsigned cycles) {
  last_ = ExecStats{cycles, pending_energy_};
  total_cycles_ += cycles;
  total_energy_ += pending_energy_;
  pending_energy_ = Joule(0.0);
}

void ImcMacro::write_back(RowRef dest, const BitVector& data, double charged_bits) {
  if (cfg_.separator == SeparatorMode::Enabled && dest.is_dummy())
    array_.set_separated(true);  // adaptive: cut the heavy main-segment BL
  array_.write_row(dest, data);
  array_.set_separated(false);
  const Component wb = dest.is_dummy() ? wb_price() : Component::WriteBackFull;
  charge(wb, charged_bits);
}

BlReadout ImcMacro::sense_dual(RowRef a, RowRef b) {
  if (cfg_.separator == SeparatorMode::Enabled && a.is_dummy() && b.is_dummy())
    array_.set_separated(true);
  BlReadout r = array_.compute_dual(a, b);
  array_.set_separated(false);
  maybe_disturb(a, b);
  return r;
}

void ImcMacro::maybe_disturb(RowRef a, RowRef b) {
  if (!cfg_.inject_disturb || disturb_.flip_probability <= 0.0) return;
  // Vulnerable columns hold complementary data: one cell discharges a BL and
  // the other cell's node on that BL sags toward it (paper Fig 1).
  const BitVector vulnerable = array_.row(a) ^ array_.row(b);
  const std::size_t slots = 2 * vulnerable.popcount();  // cell in a, cell in b per column
  if (slots == 0) return;
  // Geometric-skip sampling: instead of one Bernoulli draw per vulnerable
  // cell, draw the gap to the next flip directly -- Geometric(p) -- so the
  // common no-flip compute costs one draw, not 2V. The flipped-cell
  // marginals are identical to the per-cell scan.
  const double denom = std::log1p(-disturb_.flip_probability);  // -inf at p == 1: every slot flips
  double gap = std::floor(std::log1p(-rng_.uniform()) / denom);
  if (!(gap < static_cast<double>(slots))) return;
  // At least one flip: materialize the vulnerable column list once.
  std::vector<std::size_t> cols;
  cols.reserve(slots / 2);
  vulnerable.for_each_set_bit([&](std::size_t c) { cols.push_back(c); });
  std::size_t j = 0;
  for (;;) {
    j += static_cast<std::size_t>(gap);
    const std::size_t c = cols[j / 2];
    const RowRef victim = (j % 2 == 0) ? a : b;
    array_.set(victim, c, !array_.get(victim, c));
    ++disturb_flips_;
    ++j;
    gap = std::floor(std::log1p(-rng_.uniform()) / denom);
    if (!(gap < static_cast<double>(slots - j))) return;
  }
}

void ImcMacro::reset_counters() {
  total_cycles_ = 0;
  total_energy_ = Joule(0.0);
  component_energy_.fill(Joule(0.0));
  disturb_flips_ = 0;
  last_ = ExecStats{};
}

BitVector ImcMacro::read_row(std::size_t r) {
  const BlReadout out = array_.read_single(RowRef::main(r));
  charge(Component::SingleWlRead, static_cast<double>(cols()));
  finish_op(1);
  return out.bl_and;
}

void ImcMacro::write_row(std::size_t r, const BitVector& data) {
  charge(Component::WriteBackFull, static_cast<double>(cols()));
  array_.write_row(RowRef::main(r), data);
  finish_op(1);
}

Second scheme_cycle_time(const MacroConfig& cfg, const timing::FreqModel& freq) {
  const bool sep = cfg.separator == SeparatorMode::Enabled;
  switch (cfg.wl_scheme) {
    case WlScheme::ShortPulseBoost:
      return period_of(freq.fmax(cfg.vdd, sep));
    case WlScheme::Wlud: {
      // WL activation + sensing replaced by the WLUD BL computation phase
      // (~1.86 ns at 0.9 V from the transient model), supply-scaled.
      const auto b = freq.breakdown(cfg.vdd, sep);
      const double k = freq.config().scaling.factor(cfg.vdd);
      return b.bl_precharge + Second(1.86e-9 * k) + b.logic + b.write_back;
    }
    case WlScheme::FullSwingLong: {
      // Full-current discharge without boost (~0.42 ns at 0.9 V) -- fast but
      // destructive (see DisturbModel).
      const auto b = freq.breakdown(cfg.vdd, sep);
      const double k = freq.config().scaling.factor(cfg.vdd);
      return b.bl_precharge + Second(0.42e-9 * k) + b.logic + b.write_back;
    }
  }
  return period_of(freq.fmax(cfg.vdd, sep));
}

Second ImcMacro::cycle_time() const { return scheme_cycle_time(cfg_, freq_); }

Hertz ImcMacro::fmax() const { return frequency_of(cycle_time()); }

// ---- compute operations -----------------------------------------------------

BitVector ImcMacro::logic_rows(LogicFn fn, RowRef a, RowRef b) {
  const BlReadout r = sense_dual(a, b);
  BitVector out = FaLogics::logic(r, fn);
  const double n = static_cast<double>(cols());
  charge(compute_price(a, b), n);
  charge(Component::FaLogic, n);
  finish_op(1);
  return out;
}

BitVector ImcMacro::unary_row(Op op, RowRef src, RowRef dest, unsigned bits) {
  BPIM_REQUIRE(op == Op::Not || op == Op::Copy || op == Op::Shift, "not a single-WL op");
  const BlReadout r = array_.read_single(src);
  BitVector out(cols());
  switch (op) {
    case Op::Not: out = r.bl_nor; break;
    case Op::Copy: out = r.bl_and; break;
    case Op::Shift:
      // <<1 within every precision word via the carry-propagation path.
      (void)words_per_row(bits);  // precision validation, as the seed path had
      out = r.bl_and;
      out.shl1_in_fields(bits);
      break;
    default: break;
  }
  const double n = static_cast<double>(cols());
  charge(Component::SingleWlRead, n);
  charge(Component::Inverter, n);
  write_back(dest, out, n);
  finish_op(1);
  return out;
}

BitVector ImcMacro::add_rows(RowRef a, RowRef b, unsigned bits, std::optional<RowRef> dest,
                             bool carry_in) {
  BPIM_REQUIRE(is_supported_precision(bits), "unsupported precision");
  const BlReadout r = sense_dual(a, b);
  periph::AddResult res = FaLogics::add(r, bits, carry_in);
  const double n = static_cast<double>(cols());
  charge(compute_price(a, b), n);
  charge(Component::FaLogic, n);
  if (dest) write_back(*dest, res.sum, n);
  finish_op(1);
  return std::move(res.sum);
}

BitVector ImcMacro::add_shift_rows(RowRef a, RowRef b, unsigned bits, RowRef dest) {
  BPIM_REQUIRE(is_supported_precision(bits), "unsupported precision");
  const BlReadout r = sense_dual(a, b);
  periph::AddResult res = FaLogics::add(r, bits, false);
  // The propagated-sum path writes S[n-1] into column n (MX0 + Y-path FF).
  const std::size_t words = words_per_row(bits);
  BitVector out = std::move(res.sum);
  out.shl1_in_fields(bits);
  const double n = static_cast<double>(cols());
  charge(compute_price(a, b), n);
  charge(Component::FaLogic, n);
  charge(Component::FlipFlop, static_cast<double>(words));
  write_back(dest, out, n);
  finish_op(1);
  return out;
}

BitVector ImcMacro::sub_rows(RowRef a, RowRef b, unsigned bits) {
  BPIM_REQUIRE(is_supported_precision(bits), "unsupported precision");
  // Cycle 1: NOT(b) -> dummy operand row.
  const RowRef d1 = RowRef::dummy(kDummyOperand);
  const BlReadout rb = array_.read_single(b);
  const double n = static_cast<double>(cols());
  charge(Component::SingleWlRead, n);
  charge(Component::Inverter, n);
  write_back(d1, rb.bl_nor, n);
  // Cycle 2: a + ~b + 1 (two's complement).
  const BlReadout r = sense_dual(a, d1);
  periph::AddResult res = FaLogics::add(r, bits, true);
  charge(compute_price(a, d1), n);
  charge(Component::FaLogic, n);
  finish_op(2);
  return std::move(res.sum);
}

BitVector ImcMacro::mult_rows(RowRef a, RowRef b, unsigned bits, const AdaptivePolicy& policy) {
  return mult_impl(a, b, bits, plan_mult(a, b, bits, policy));
}

BitVector ImcMacro::mult_rows_chained(RowRef a, RowRef b, unsigned bits, bool d1_staged,
                                      bool pipelined, const AdaptivePolicy& policy) {
  BPIM_REQUIRE(!d1_staged || pipelined, "D1 staging implies a pipelined chain link");
  return mult_impl(a, b, bits, plan_mult(a, b, bits, policy, d1_staged, pipelined));
}

BitVector ImcMacro::mult_rows_planned(RowRef a, RowRef b, unsigned bits, const MultPlan& plan) {
  BPIM_REQUIRE(plan.depth <= bits, "plan depth exceeds the operand precision");
  BPIM_REQUIRE(!plan.skip || plan.depth == 0, "a skipped MULT runs no iterations");
  BPIM_REQUIRE(!plan.d1_staged || plan.pipelined, "D1 staging implies a pipelined chain link");
  return mult_impl(a, b, bits, plan);
}

MultPlan ImcMacro::plan_mult(RowRef a, RowRef b, unsigned bits, const AdaptivePolicy& policy,
                             bool d1_staged, bool pipelined) const {
  MultPlan plan = MultPlan::full(bits, d1_staged, pipelined);
  if (!policy.enabled()) return plan;
  (void)mult_units_per_row(bits);  // precision/width validation
  const std::size_t unit_bits = 2 * static_cast<std::size_t>(bits);
  // Effectual operand view: the low half of every 2N-bit unit (unit_bits
  // divides 64 for every supported precision, so one mask word covers all).
  std::uint64_t low_halves = 0;
  for (std::size_t i = 0; i < 64; i += unit_bits) low_halves |= ((1ull << bits) - 1) << i;
  const std::uint64_t field_fill =
      unit_bits >= 64 ? ~0ull : ((1ull << unit_bits) - 1);  // disjoint fields: no carry
  const std::uint64_t unit_lsbs = BitVector::periodic_mask(unit_bits);
  const BitVector& row_a = array_.row(a);
  const BitVector& row_b = array_.row(b);
  // A zero multiplicand unit makes every multiplier bit of that unit
  // ineffectual (sum == accumulator == 0 whatever the select bit says).
  // One allocation-free pass (the planner sits on the MULT hot path): per
  // word, OR-fold each multiplicand field onto its LSB (sub-field shifts
  // cannot push a higher field's bits down to a lower field's LSB), expand
  // the zero flags to full-field masks, drop those multiplier fields, and
  // accumulate the surviving multiplier bits. Phantom fields past the row
  // end hold zero multiplier bits, so they cannot contribute.
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < row_a.word_count(); ++w) {
    std::uint64_t aw = row_a.word(w) & low_halves;
    const std::uint64_t bw = row_b.word(w) & low_halves;
    for (std::size_t s = 1; s < unit_bits; s <<= 1) aw |= aw >> s;
    acc |= bw & ~((~aw & unit_lsbs) * field_fill);
  }
  unsigned eff = 0;
  if (acc != 0) {
    // Fold every unit onto the low one (unit-multiple shifts preserve
    // in-field positions); the residue's bit width is the max effectual
    // multiplier depth across the row.
    for (std::size_t s = unit_bits; s < 64; s <<= 1) acc |= acc >> s;
    eff = static_cast<unsigned>(std::bit_width(unit_bits >= 64 ? acc : acc & field_fill));
  }
  if (policy.narrow_precision) plan.depth = eff;
  if (policy.skip_zero && eff == 0) {
    plan.skip = true;
    plan.depth = 0;
  }
  return plan;
}

BitVector ImcMacro::mult_impl(RowRef a, RowRef b, unsigned bits, const MultPlan& plan) {
  BPIM_REQUIRE(is_supported_precision(bits), "unsupported precision");
  const std::size_t units = mult_units_per_row(bits);
  const unsigned unit_bits = 2 * bits;
  const RowRef d1 = RowRef::dummy(kDummyOperand);
  const RowRef d2 = RowRef::dummy(kDummyAccum);
  const auto& p = energy_.params();
  const double n_units = static_cast<double>(units);

  // Cycle 1: zero-init the accumulator row; load the multiplier FFs
  // (MSB-first release order -- the reversed B[3:0] -> B[0:3] of Fig 5).
  BitVector zeros(cols());
  write_back(d2, zeros, static_cast<double>(cols()) * p.zero_init_activity);
  const BlReadout rb = array_.read_single(b);
  charge(Component::SingleWlRead, static_cast<double>(bits) * n_units);
  charge(Component::FlipFlop, static_cast<double>(bits) * n_units);
  std::vector<std::uint64_t> ff(units, 0);
  for (std::size_t u = 0; u < units; ++u)
    ff[u] = rb.bl_and.extract_bits(u * unit_bits, bits);

  // Cycle 2: copy the multiplicand into the dummy operand row (low halves):
  // mask off the high half of every unit in one word-parallel AND. A
  // d1-staged chain link skips the whole cycle -- the previous MULT of the
  // same multiplicand left exactly this masked copy in D1 (the add-shift
  // iterations only write D2), so neither the read nor the staging
  // write-back happens. A skipped MULT (all products provably zero) elides
  // it too: the zero-initialised accumulator row already IS the result.
  if (!plan.skip && !plan.d1_staged) {
    const BlReadout ra = array_.read_single(a);
    std::uint64_t low_halves = 0;  // low `bits` of each unit set (unit_bits divides 64)
    for (std::size_t i = 0; i < 64; i += unit_bits) low_halves |= ((1ull << bits) - 1) << i;
    BitVector a_copy = ra.bl_and;
    for (std::size_t w = 0; w < a_copy.word_count(); ++w)
      a_copy.set_word(w, a_copy.word(w) & low_halves);
    charge(Component::SingleWlRead, static_cast<double>(bits) * n_units);
    write_back(d1, a_copy, static_cast<double>(bits) * n_units);
  }

  // Cycles 3..N+2: (N-1) add-and-shift iterations plus the final ADD.
  // acc <- (ff_bit ? acc + A : acc), shifted left except on the last cycle.
  // The per-unit FF bit selects between sum and accumulator through a
  // broadcast field mask; the <<1 is the word-parallel in-field shift. All
  // scratch (AddResult, select mask, next row) is reused across iterations.
  // An adaptive plan starts at k = bits - depth: every dropped leading
  // iteration is a per-unit no-op (multiplier bit zero keeps the still-zero
  // accumulator, and a shift of zero is zero; zero-multiplicand units see
  // sum == accumulator == 0 either way), so products are bit-identical.
  periph::AddResult res;
  BitVector sel(cols());
  BitVector next(cols());
  for (unsigned k = bits - plan.depth; k < bits; ++k) {
    const bool last = (k + 1 == bits);
    const BlReadout r = sense_dual(d1, d2);
    FaLogics::add_into(r, unit_bits, false, res);
    const BitVector& acc = array_.row(d2);
    for (std::size_t u = 0; u < units; ++u) {
      const bool take_sum = (ff[u] >> (bits - 1 - k)) & 1u;  // MSB-first
      sel.deposit_bits(u * unit_bits, unit_bits, take_sum ? ~0ull : 0);
    }
    for (std::size_t w = 0; w < next.word_count(); ++w) {
      const std::uint64_t s = sel.word(w);
      next.set_word(w, (res.sum.word(w) & s) | (acc.word(w) & ~s));
    }
    if (!last) next.shl1_in_fields(unit_bits);  // <<1 via the propagation path
    charge(compute_price(d1, d2), static_cast<double>(cols()));
    charge(Component::FaLogic, static_cast<double>(cols()));
    charge(Component::FlipFlop, n_units);
    write_back(d2, next, static_cast<double>(cols()) * p.mult_wb_activity);
  }

  // The plan owns the cycle split; op_cycles(MULT, bits) == plan.cycles()
  // + plan.fused_cycles_saved() + plan.adaptive_cycles_saved(bits) exactly
  // (the controller asserts it per instruction).
  finish_op(plan.cycles());
  return array_.row(d2);
}

}  // namespace bpim::macro
