#include "macro/compiler.hpp"

#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bpim::macro {

using array::RowRef;

namespace {

obs::Counter& programs_compiled_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "macro.programs.compiled", "macro ISA programs emitted and verified");
  return c;
}

obs::Counter& program_cache_hits_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "macro.programs.cache_hits", "single-op programs served from the OpCompiler cache");
  return c;
}

obs::Counter& compile_rejected_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "macro.verify.rejected", "programs rejected before execution (VerifyFirst or compile)");
  return c;
}

}  // namespace

Program FusionCompiler::compile_mac_forward(const MacForwardSpec& spec) const {
  BPIM_REQUIRE(!spec.steps.empty(), "fused forward needs at least one MAC");
  BPIM_REQUIRE(is_supported_precision(spec.bits), "unsupported MAC precision");
  Program p;
  for (const MacStep& s : spec.steps) {
    BPIM_REQUIRE(s.a_row != s.b_row, "MAC needs two distinct rows");
    p.mult(RowRef::main(s.a_row), RowRef::main(s.b_row), spec.bits);
  }
  verify_emitted(p, "compile_mac_forward");
  return p;
}

Program FusionCompiler::compile_chain(const ChainSpec& spec) const {
  BPIM_REQUIRE(!spec.layers.empty(), "chain needs at least one layer");
  BPIM_REQUIRE(is_supported_precision(spec.bits), "unsupported chain head precision");
  BPIM_REQUIRE(is_supported_precision(2 * spec.bits),
               "chain links run at 2x the head precision, which the ISA lacks here");
  const RowRef d2 = RowRef::dummy(ImcMacro::kDummyAccum);
  Program p;
  for (const ChainLayerSpec& layer : spec.layers) {
    BPIM_REQUIRE(!layer.links.empty(), "chain layer needs at least one link");
    BPIM_REQUIRE(layer.a_row != layer.b_row, "chain head needs two distinct rows");
    p.mult(RowRef::main(layer.a_row), RowRef::main(layer.b_row), spec.bits);
    for (std::size_t j = 0; j < layer.links.size(); ++j) {
      const auto& [kind, operand_row] = layer.links[j];
      const RowRef rb = RowRef::main(operand_row);
      const bool last = j + 1 == layer.links.size();
      if (kind == ChainLinkKind::Add) {
        // Intermediate sums accumulate back into D2; the final sum is
        // driven out for the trace to capture.
        p.add(d2, rb, 2 * spec.bits, last ? std::nullopt : std::optional<RowRef>(d2));
      } else {
        // ADD-Shift must write back. Intermediates stay in D2; the final
        // value retires into the layer's own activation row -- dead since
        // the head MULT consumed it, and never pinned.
        p.add_shift(d2, rb, 2 * spec.bits, last ? RowRef::main(layer.a_row) : d2);
      }
    }
  }
  verify_emitted(p, "compile_chain");
  return p;
}

std::uint64_t FusionCompiler::fused_static_cycles(const Program& p) {
  std::uint64_t c = 0;
  const Instruction* prev = nullptr;
  for (const Instruction& i : p.instructions()) {
    std::uint64_t cost = op_cycles(i.op, i.bits);
    if (i.op == Op::Mult && prev != nullptr && prev->op == Op::Mult && prev->bits == i.bits) {
      --cost;                          // FF load pipelined behind prior write-back
      if (prev->a == i.a) --cost;      // D1 already staged with this multiplicand
    }
    c += cost;
    prev = &i;
  }
  return c;
}

void FusionCompiler::verify_emitted(const Program& p, const char* what) const {
  const VerifyReport rep = verify_program(p, geom_, pinned_);
  if (rep.errors == 0 && rep.warnings == 0) {
    programs_compiled_counter().add();
    BPIM_TRACE_INSTANT("macro.program.compile", 0,
                       obs::EventArgs{{"instructions", static_cast<double>(p.size())},
                                      {"fused", 1.0}});
    return;
  }
  compile_rejected_counter().add();
  throw std::invalid_argument(std::string(what) +
                              ": emitted program drew verifier diagnostics:\n" +
                              rep.annotate(p));
}

namespace {

/// Row encoding for the cache key: the dummy bit rides above any plausible
/// row index; absent operands get a sentinel no RowRef can produce.
constexpr std::uint64_t kNoRow = ~0ull;

std::uint64_t encode_row(RowRef r) {
  return (r.is_dummy() ? (1ull << 63) : 0ull) | static_cast<std::uint64_t>(r.index);
}

}  // namespace

std::size_t OpCompiler::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the key fields, same recipe the engine's fused-program cache
  // uses for its layer keys.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.op);
  mix(k.fn);
  mix(k.bits);
  mix(k.a);
  mix(k.b);
  mix(k.dest);
  return static_cast<std::size_t>(h);
}

const Program& OpCompiler::single(const Instruction& inst) {
  Key key;
  key.op = static_cast<std::uint8_t>(inst.op);
  key.fn = static_cast<std::uint8_t>(inst.logic_fn);
  key.bits = inst.bits;
  key.a = encode_row(inst.a);
  key.b = is_dual_wl(inst.op) ? encode_row(inst.b) : kNoRow;
  key.dest = inst.dest ? encode_row(*inst.dest) : kNoRow;

  MutexLock lock(mutex_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.hits;
    program_cache_hits_counter().add();
    return it->second;
  }
  Program p;
  p.push(inst);
  const VerifyReport rep = verify_program(p, geom_, pinned_);
  if (rep.errors + rep.warnings != 0) {
    compile_rejected_counter().add();
    throw std::invalid_argument(
        "OpCompiler: single-op program drew verifier diagnostics:\n" + rep.annotate(p));
  }
  ++stats_.compiled;
  programs_compiled_counter().add();
  BPIM_TRACE_INSTANT("macro.program.compile", 0,
                     obs::EventArgs{{"instructions", 1.0}, {"fused", 0.0}});
  // unordered_map references are stable under rehash and nothing is ever
  // erased outside set_pinned(), so the mapped Program can be handed out.
  return cache_.emplace(key, std::move(p)).first->second;
}

const Program& OpCompiler::add(RowRef a, RowRef b, unsigned bits) {
  Instruction i;
  i.op = Op::Add;
  i.a = a;
  i.b = b;
  i.bits = bits;
  return single(i);
}

const Program& OpCompiler::sub(RowRef a, RowRef b, unsigned bits) {
  Instruction i;
  i.op = Op::Sub;
  i.a = a;
  i.b = b;
  i.bits = bits;
  return single(i);
}

const Program& OpCompiler::mult(RowRef a, RowRef b, unsigned bits) {
  Instruction i;
  i.op = Op::Mult;
  i.a = a;
  i.b = b;
  i.bits = bits;
  return single(i);
}

const Program& OpCompiler::add_shift(RowRef a, RowRef b, unsigned bits, RowRef dest) {
  Instruction i;
  i.op = Op::AddShift;
  i.a = a;
  i.b = b;
  i.bits = bits;
  i.dest = dest;
  return single(i);
}

const Program& OpCompiler::unary(Op op, RowRef src, RowRef dest, unsigned bits) {
  BPIM_REQUIRE(op == Op::Not || op == Op::Copy || op == Op::Shift,
               "unary() takes NOT/COPY/SHIFT");
  Instruction i;
  i.op = op;
  i.a = src;
  i.dest = dest;
  i.bits = bits;
  return single(i);
}

const Program& OpCompiler::logic(periph::LogicFn fn, RowRef a, RowRef b) {
  BPIM_REQUIRE(fn != periph::LogicFn::PassA && fn != periph::LogicFn::NotA,
               "PassA/NotA are single-WL paths; use unary(COPY/NOT)");
  Instruction i;
  i.op = Op::And;  // representative dual-WL logic op; fn carries the function
  i.logic_fn = fn;
  i.a = a;
  i.b = b;
  return single(i);
}

void OpCompiler::set_pinned(std::vector<PinnedRows> pinned) {
  MutexLock lock(mutex_);
  pinned_ = std::move(pinned);
  cache_.clear();
}

OpCompiler::CacheStats OpCompiler::cache_stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace bpim::macro
