#include "macro/compiler.hpp"

#include "common/require.hpp"

namespace bpim::macro {

using array::RowRef;

Program FusionCompiler::compile_mac_forward(const MacForwardSpec& spec) const {
  BPIM_REQUIRE(!spec.steps.empty(), "fused forward needs at least one MAC");
  BPIM_REQUIRE(is_supported_precision(spec.bits), "unsupported MAC precision");
  Program p;
  for (const MacStep& s : spec.steps) {
    BPIM_REQUIRE(s.a_row != s.b_row, "MAC needs two distinct rows");
    p.mult(RowRef::main(s.a_row), RowRef::main(s.b_row), spec.bits);
  }
  verify_emitted(p, "compile_mac_forward");
  return p;
}

Program FusionCompiler::compile_chain(const ChainSpec& spec) const {
  BPIM_REQUIRE(!spec.layers.empty(), "chain needs at least one layer");
  BPIM_REQUIRE(is_supported_precision(spec.bits), "unsupported chain head precision");
  BPIM_REQUIRE(is_supported_precision(2 * spec.bits),
               "chain links run at 2x the head precision, which the ISA lacks here");
  const RowRef d2 = RowRef::dummy(ImcMacro::kDummyAccum);
  Program p;
  for (const ChainLayerSpec& layer : spec.layers) {
    BPIM_REQUIRE(!layer.links.empty(), "chain layer needs at least one link");
    BPIM_REQUIRE(layer.a_row != layer.b_row, "chain head needs two distinct rows");
    p.mult(RowRef::main(layer.a_row), RowRef::main(layer.b_row), spec.bits);
    for (std::size_t j = 0; j < layer.links.size(); ++j) {
      const auto& [kind, operand_row] = layer.links[j];
      const RowRef rb = RowRef::main(operand_row);
      const bool last = j + 1 == layer.links.size();
      if (kind == ChainLinkKind::Add) {
        // Intermediate sums accumulate back into D2; the final sum is
        // driven out for the trace to capture.
        p.add(d2, rb, 2 * spec.bits, last ? std::nullopt : std::optional<RowRef>(d2));
      } else {
        // ADD-Shift must write back. Intermediates stay in D2; the final
        // value retires into the layer's own activation row -- dead since
        // the head MULT consumed it, and never pinned.
        p.add_shift(d2, rb, 2 * spec.bits, last ? RowRef::main(layer.a_row) : d2);
      }
    }
  }
  verify_emitted(p, "compile_chain");
  return p;
}

std::uint64_t FusionCompiler::fused_static_cycles(const Program& p) {
  std::uint64_t c = 0;
  const Instruction* prev = nullptr;
  for (const Instruction& i : p.instructions()) {
    std::uint64_t cost = op_cycles(i.op, i.bits);
    if (i.op == Op::Mult && prev != nullptr && prev->op == Op::Mult && prev->bits == i.bits) {
      --cost;                          // FF load pipelined behind prior write-back
      if (prev->a == i.a) --cost;      // D1 already staged with this multiplicand
    }
    c += cost;
    prev = &i;
  }
  return c;
}

void FusionCompiler::verify_emitted(const Program& p, const char* what) const {
  const VerifyReport rep = verify_program(p, geom_, pinned_);
  if (rep.errors == 0 && rep.warnings == 0) return;
  throw std::invalid_argument(std::string(what) +
                              ": emitted program drew verifier diagnostics:\n" +
                              rep.annotate(p));
}

}  // namespace bpim::macro
