#include "macro/cost_model.hpp"

#include "common/require.hpp"

namespace bpim::macro {

using array::RowRef;
using energy::Component;
using energy::SeparatorMode;

CostModel::CostModel(const MacroConfig& cfg)
    : geom_(cfg.geometry),
      vdd_(cfg.vdd),
      separator_(cfg.separator),
      energy_(cfg.energy_params),
      cycle_time_(scheme_cycle_time(cfg, timing::FreqModel(cfg.freq))) {}

Component CostModel::compute_price(RowRef a, RowRef b) const {
  return (a.is_dummy() && b.is_dummy()) ? Component::DualWlComputeNear
                                        : Component::DualWlComputeMain;
}

Component CostModel::wb_price(RowRef dest) const {
  if (!dest.is_dummy()) return Component::WriteBackFull;
  return separator_ == SeparatorMode::Enabled ? Component::WriteBackNear
                                              : Component::WriteBackFull;
}

InstructionCost CostModel::instruction_cost(const Instruction& inst,
                                            const Instruction* prev) const {
  // Each arm charges the identical component sequence, in the identical
  // order, with the identical per-charge bit counts as the matching ImcMacro
  // entry point -- the left-fold over `e` reproduces the ledger's pending-
  // energy accumulation bit for bit. Touch that sequence in imc_macro.cpp
  // and this function must move in lock-step (the conservation tests fail
  // loudly if they drift).
  InstructionCost c;
  Joule e{0.0};
  const auto charge = [&](Component comp, double bits) { e += price(comp) * bits; };
  const double n = static_cast<double>(geom_.cols);

  switch (inst.op) {
    case Op::Nand:
    case Op::And:
    case Op::Nor:
    case Op::Or:
    case Op::Xnor:
    case Op::Xor:
      charge(compute_price(inst.a, inst.b), n);
      charge(Component::FaLogic, n);
      c.cycles = 1;
      break;
    case Op::Not:
    case Op::Copy:
    case Op::Shift: {
      BPIM_REQUIRE(inst.dest.has_value(), "single-WL op needs a destination to price");
      charge(Component::SingleWlRead, n);
      charge(Component::Inverter, n);
      charge(wb_price(*inst.dest), n);
      c.cycles = 1;
      break;
    }
    case Op::Add:
      charge(compute_price(inst.a, inst.b), n);
      charge(Component::FaLogic, n);
      if (inst.dest) charge(wb_price(*inst.dest), n);
      c.cycles = 1;
      break;
    case Op::AddShift: {
      BPIM_REQUIRE(inst.dest.has_value(), "ADD-Shift needs a destination to price");
      const std::size_t words = geom_.cols / inst.bits;
      charge(compute_price(inst.a, inst.b), n);
      charge(Component::FaLogic, n);
      charge(Component::FlipFlop, static_cast<double>(words));
      charge(wb_price(*inst.dest), n);
      c.cycles = 1;
      break;
    }
    case Op::Sub: {
      const RowRef d1 = RowRef::dummy(ImcMacro::kDummyOperand);
      charge(Component::SingleWlRead, n);
      charge(Component::Inverter, n);
      charge(wb_price(d1), n);
      charge(compute_price(inst.a, d1), n);
      charge(Component::FaLogic, n);
      c.cycles = 2;
      break;
    }
    case Op::Mult: {
      const bool pipelined =
          prev != nullptr && prev->op == Op::Mult && prev->bits == inst.bits;
      const bool d1_staged = pipelined && prev->a == inst.a;
      return mult_cost(inst.bits, MultPlan::full(inst.bits, d1_staged, pipelined));
    }
  }
  c.energy = e;
  return c;
}

InstructionCost CostModel::instruction_cost(const Instruction& inst, const MultPlan& plan) const {
  if (inst.op != Op::Mult) return instruction_cost(inst, nullptr);
  return mult_cost(inst.bits, plan);
}

InstructionCost CostModel::mult_cost(unsigned bits, const MultPlan& plan) const {
  // Mirrors ImcMacro::mult_impl's charge sequence under the same plan,
  // charge for charge and in order (the bitwise-energy conservation law).
  InstructionCost c;
  Joule e{0.0};
  const auto charge = [&](Component comp, double n_bits) { e += price(comp) * n_bits; };
  const double n = static_cast<double>(geom_.cols);
  const auto& p = energy_.params();
  const RowRef d1 = RowRef::dummy(ImcMacro::kDummyOperand);
  const RowRef d2 = RowRef::dummy(ImcMacro::kDummyAccum);
  const std::size_t units = geom_.cols / (2 * static_cast<std::size_t>(bits));
  const double n_units = static_cast<double>(units);
  // Cycle 1: D2 zero-init + multiplier FF load (always performed -- a
  // skipped MULT's result is that zero-initialised accumulator row).
  charge(wb_price(d2), n * p.zero_init_activity);
  charge(Component::SingleWlRead, static_cast<double>(bits) * n_units);
  charge(Component::FlipFlop, static_cast<double>(bits) * n_units);
  // Cycle 2: multiplicand staged into D1 (skipped on a d1-staged link or a
  // zero-skip plan).
  if (!plan.skip && !plan.d1_staged) {
    charge(Component::SingleWlRead, static_cast<double>(bits) * n_units);
    charge(wb_price(d1), static_cast<double>(bits) * n_units);
  }
  // Add-and-shift iterations on the separated segment, to the plan's depth.
  for (unsigned k = 0; k < plan.depth; ++k) {
    charge(compute_price(d1, d2), n);
    charge(Component::FaLogic, n);
    charge(Component::FlipFlop, n_units);
    charge(wb_price(d2), n * p.mult_wb_activity);
  }
  c.cycles = plan.cycles();
  c.energy = e;
  return c;
}

ProgramStats CostModel::program_cost(const Program& p, bool fuse_mac_chains) const {
  ProgramStats stats;
  const Instruction* prev = nullptr;
  for (const Instruction& i : p.instructions()) {
    const InstructionCost c = instruction_cost(i, fuse_mac_chains ? prev : nullptr);
    ++stats.instructions;
    stats.cycles += c.cycles;
    const unsigned table_cycles = op_cycles(i.op, i.bits);
    if (table_cycles > c.cycles) stats.fused_cycles_saved += table_cycles - c.cycles;
    stats.energy += c.energy;
    prev = &i;
  }
  stats.elapsed = cycle_time_ * static_cast<double>(stats.cycles);
  return stats;
}

}  // namespace bpim::macro
