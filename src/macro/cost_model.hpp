#pragma once
// Instruction-driven cost model: cycles and joules of a macro::Program,
// priced instruction by instruction from the same timing (timing/freq_model)
// and energy (energy/EnergyModel) models the macro's execution ledger draws
// on -- without touching a macro.
//
// Each Instruction maps to the exact micro-action sequence the sequencer
// would issue (dummy-row traffic, per-bit activities and all), in the exact
// order ImcMacro charges it, so the statically priced totals equal the
// executed ledger totals *bitwise* -- double accumulation order included.
// That conservation law (program_cost == ledger) is the contract that lets
// the instruction stream replace the ledgers as the accounting source of
// truth; MacroController::run asserts the cycle half on every instruction
// and the tests in test_macro_accounting/test_macro_energy assert the
// energy half exactly.
//
// Chained-MAC pricing: pass the predecessor instruction to instruction_cost
// (or set fuse_mac_chains on program_cost) and back-to-back MULTs at one
// precision get the pipelined FF-load discount (-1 cycle); a repeated
// multiplicand row additionally skips the D1 staging cycle and its energy
// (-1 cycle more) -- the same discounts MacroController::run applies.

#include <cstdint>

#include "energy/energy_model.hpp"
#include "macro/program.hpp"
#include "timing/freq_model.hpp"

namespace bpim::macro {

/// Price of one instruction: what the macro's ledger will record for it.
struct InstructionCost {
  unsigned cycles = 0;
  Joule energy{0.0};
};

class CostModel {
 public:
  explicit CostModel(const MacroConfig& cfg);

  /// Price one instruction. `prev` (may be null) is the immediately
  /// preceding instruction *on the chained datapath*: pass it only when the
  /// executing controller runs with fuse_mac_chains, so the MULT discounts
  /// here match the execution path cycle for cycle.
  [[nodiscard]] InstructionCost instruction_cost(const Instruction& inst,
                                                 const Instruction* prev = nullptr) const;

  /// Price one instruction under a resolved adaptive MULT plan (the
  /// controller's path when an AdaptivePolicy is active: ImcMacro::plan_mult
  /// resolves the data-dependent depth/skip once, and this overload prices
  /// exactly the micro-actions mult_rows_planned will charge -- the cost
  /// model itself stays data-oblivious). Non-MULT instructions ignore the
  /// plan and price as the static overload does.
  [[nodiscard]] InstructionCost instruction_cost(const Instruction& inst,
                                                 const MultPlan& plan) const;

  /// Price a whole program, accumulating in instruction order (the same
  /// left-fold the execution ledger performs). With `fuse_mac_chains`, MULT
  /// chains are priced on the chained datapath and the discount lands in
  /// fused_cycles_saved, exactly as MacroController::run books it.
  [[nodiscard]] ProgramStats program_cost(const Program& p, bool fuse_mac_chains = false) const;

  /// Cycle time under the config's WL scheme and separator mode -- the same
  /// tick ImcMacro::cycle_time() reports (shared scheme_cycle_time helper).
  [[nodiscard]] Second cycle_time() const { return cycle_time_; }

 private:
  [[nodiscard]] Joule price(energy::Component c) const { return energy_.price(c, vdd_); }
  [[nodiscard]] energy::Component compute_price(array::RowRef a, array::RowRef b) const;
  [[nodiscard]] energy::Component wb_price(array::RowRef dest) const;
  [[nodiscard]] InstructionCost mult_cost(unsigned bits, const MultPlan& plan) const;

  array::ArrayGeometry geom_;
  Volt vdd_;
  energy::SeparatorMode separator_;
  energy::EnergyModel energy_;
  Second cycle_time_;
};

}  // namespace bpim::macro
