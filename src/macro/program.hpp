#pragma once
// Micro-program interface to the IMC macro -- the software-visible face of
// the "Ctrl." block in the paper's Fig 3.
//
// A Program is a validated list of instructions (op, operand rows, precision,
// destination); the MacroController executes it on an ImcMacro, accumulating
// per-program cycle/energy statistics and recording an optional trace. This
// is how a host integrates the macro: build row-level programs, run them,
// read results -- without touching the per-op C++ API directly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "macro/imc_macro.hpp"

namespace bpim::macro {

/// One row-level instruction. Unused fields are ignored per op kind:
///   * logic ops use `logic_fn`, rows a+b;
///   * NOT/COPY/SHIFT use row a and `dest` (required);
///   * ADD uses rows a+b and optional `dest`; ADD-Shift requires `dest`;
///   * SUB/MULT use rows a+b (results: SUB driven out, MULT in dummy D2).
struct Instruction {
  Op op = Op::Add;
  periph::LogicFn logic_fn = periph::LogicFn::And;
  array::RowRef a{};
  array::RowRef b{};
  std::optional<array::RowRef> dest{};
  unsigned bits = 8;
};

[[nodiscard]] std::string to_string(const Instruction& inst);

/// Validated instruction list.
class Program {
 public:
  Program() = default;

  Program& logic(periph::LogicFn fn, array::RowRef a, array::RowRef b);
  Program& unary(Op op, array::RowRef src, array::RowRef dest, unsigned bits);
  Program& add(array::RowRef a, array::RowRef b, unsigned bits,
               std::optional<array::RowRef> dest = std::nullopt);
  Program& add_shift(array::RowRef a, array::RowRef b, unsigned bits, array::RowRef dest);
  Program& sub(array::RowRef a, array::RowRef b, unsigned bits);
  Program& mult(array::RowRef a, array::RowRef b, unsigned bits);

  /// Append a raw instruction with none of the builder methods' argument
  /// checks -- the entry point for code that assembles Instructions itself
  /// (a macro compiler, fuzzers, verifier tests). Such programs carry no
  /// validity guarantee: check them with macro::verify_program (or run them
  /// through a VerifyFirst controller) before execution.
  Program& push(Instruction inst) {
    instructions_.push_back(std::move(inst));
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return instructions_.size(); }
  [[nodiscard]] bool empty() const { return instructions_.empty(); }
  [[nodiscard]] const std::vector<Instruction>& instructions() const { return instructions_; }

  /// Total cycle cost per Table 1 (static, before execution).
  [[nodiscard]] std::uint64_t static_cycles() const;

  /// Disassembly: one instruction per line ("#k  MULT R4, R1 @8b  ; ..."),
  /// annotated with the scratch-row roles each op implies. The text the
  /// verifier's diagnostics and test failure messages lean on.
  [[nodiscard]] std::string dump() const;

 private:
  std::vector<Instruction> instructions_;
};

/// Per-instruction execution record.
struct TraceEntry {
  Instruction inst;
  unsigned cycles = 0;
  Joule op_energy{0.0};
  BitVector result;  ///< row-wide result driven out (empty for pure WB ops)
  /// Cycles the adaptive policy saved on this instruction (MULT narrowing/
  /// skipping; 0 for other ops or when the policy is off).
  unsigned adaptive_cycles_saved = 0;
};

/// Per-program account, derived from the instruction stream: run() prices
/// every instruction through macro::CostModel (cycles from timing/, joules
/// from energy/) and cross-checks the executing macro's ledger -- the two
/// agree exactly (cycles asserted per instruction, energy bitwise in tests).
struct ProgramStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  /// Cycles the chained-MAC execution path saved vs Table 1's per-op cost
  /// (0 unless run() was asked to fuse). `cycles` is already net of this.
  std::uint64_t fused_cycles_saved = 0;
  /// Cycles the adaptive policy saved (MULT iteration narrowing + zero
  /// skipping; 0 unless run() was given an enabled AdaptivePolicy).
  /// `cycles` is already net of this, and the three-way split is exact:
  /// static_cycles == cycles + fused_cycles_saved + adaptive_cycles_saved.
  std::uint64_t adaptive_cycles_saved = 0;
  Joule energy{0.0};
  Second elapsed{0.0};
};

/// How MacroController checks a program before execution.
enum class VerifyMode {
  /// The original first-fault walk (validate()): throws at the first
  /// malformed instruction with just its index.
  Legacy,
  /// Run the static verifier (macro/verifier.hpp) over the whole program
  /// first; reject with every error listed. Catches everything Legacy does
  /// plus scratch-row role violations and budget faults.
  VerifyFirst,
};

/// Executes programs against a macro; validates rows/precision before any
/// state is touched (a bad program is rejected whole).
class MacroController {
 public:
  explicit MacroController(ImcMacro& m, VerifyMode mode = VerifyMode::Legacy)
      : macro_(m), mode_(mode) {}

  /// Throws std::invalid_argument (with the offending instruction index) if
  /// any instruction is malformed for this macro.
  void validate(const Program& p) const;

  /// Checks (per VerifyMode) and runs; returns stats. If `trace` is
  /// non-null, appends one entry per instruction. Rejected programs leave
  /// the macro untouched.
  ///
  /// With `fuse_mac_chains` set, back-to-back MULTs at one precision run on
  /// the chained datapath: the FF load of cycle 1 overlaps the predecessor's
  /// final D2 write-back (-1 cycle), and when the multiplier row repeats the
  /// D1 staging cycle is skipped too (-1 more). Results are bit-identical;
  /// only the cycle/energy account changes (fused_cycles_saved reports the
  /// discount).
  ///
  /// With an enabled `policy`, every MULT is first resolved against its
  /// operand data (ImcMacro::plan_mult): the add-shift loop runs only to the
  /// max effectual bit depth (narrow_precision) and provably-zero products
  /// skip staging and iterations outright (skip_zero). Outputs stay
  /// bit-identical; the saved cycles land in adaptive_cycles_saved with
  /// static == cycles + fused + adaptive asserted per instruction.
  ProgramStats run(const Program& p, std::vector<TraceEntry>* trace = nullptr,
                   bool fuse_mac_chains = false, const AdaptivePolicy& policy = {});

  [[nodiscard]] VerifyMode mode() const { return mode_; }

 private:
  void check_row(const array::RowRef& r, std::size_t index) const;

  ImcMacro& macro_;
  const VerifyMode mode_;
};

}  // namespace bpim::macro
