#pragma once
// Operation set of the bit-parallel IMC macro and its cycle costs (Table 1).
//
//   Type     Operation        Cycles
//   Logic    NAND/AND          1
//            NOR/OR            1
//            XNOR/XOR          1
//            NOT, Shift(<<1)   1
//   Integer  ADD               1
//            SUB               2
//            MULT              N+2
//            ADD-Shift         1
//   (N = operand bit width)

#include <string>

#include "common/require.hpp"

namespace bpim::macro {

enum class Op {
  Nand, And, Nor, Or, Xnor, Xor,  // dual-WL logic
  Not, Shift, Copy,               // single-WL
  Add, AddShift, Sub, Mult,       // arithmetic
};

[[nodiscard]] const char* to_string(Op op);

/// True for operations that activate two word lines.
[[nodiscard]] bool is_dual_wl(Op op);

/// Cycle count of `op` at operand precision `bits` (Table 1).
[[nodiscard]] unsigned op_cycles(Op op, unsigned bits);

/// Word-line scheme the macro is built with; decides disturb behaviour and
/// the achievable cycle time.
enum class WlScheme {
  ShortPulseBoost,  ///< the paper's scheme: full-swing 140 ps WL + BL boost
  Wlud,             ///< conventional 0.55 V under-driven WL assist
  FullSwingLong,    ///< unprotected full-swing WL held for the whole access
};

[[nodiscard]] const char* to_string(WlScheme s);

/// Supported operand precisions (the paper implements 2/4/8 and states the
/// same method extends to 16/32).
[[nodiscard]] bool is_supported_precision(unsigned bits);

}  // namespace bpim::macro
