#pragma once
// Operation set of the bit-parallel IMC macro and its cycle costs (Table 1).
//
//   Type     Operation        Cycles
//   Logic    NAND/AND          1
//            NOR/OR            1
//            XNOR/XOR          1
//            NOT, Shift(<<1)   1
//   Integer  ADD               1
//            SUB               2
//            MULT              N+2
//            ADD-Shift         1
//   (N = operand bit width)

#include <string>

#include "common/require.hpp"

namespace bpim::macro {

enum class Op {
  Nand, And, Nor, Or, Xnor, Xor,  // dual-WL logic
  Not, Shift, Copy,               // single-WL
  Add, AddShift, Sub, Mult,       // arithmetic
};

[[nodiscard]] const char* to_string(Op op);

/// True for operations that activate two word lines.
[[nodiscard]] bool is_dual_wl(Op op);

/// Cycle count of `op` at operand precision `bits` (Table 1).
[[nodiscard]] unsigned op_cycles(Op op, unsigned bits);

/// Word-line scheme the macro is built with; decides disturb behaviour and
/// the achievable cycle time.
enum class WlScheme {
  ShortPulseBoost,  ///< the paper's scheme: full-swing 140 ps WL + BL boost
  Wlud,             ///< conventional 0.55 V under-driven WL assist
  FullSwingLong,    ///< unprotected full-swing WL held for the whole access
};

[[nodiscard]] const char* to_string(WlScheme s);

/// Supported operand precisions (the paper implements 2/4/8 and states the
/// same method extends to 16/32).
[[nodiscard]] bool is_supported_precision(unsigned bits);

/// Sparsity/precision-adaptive execution policy (DynamicStripes-style
/// narrowing + zero-operand skipping). Data-dependent and bit-exact: the
/// MULT add-shift loop only ever drops *leading* iterations, where every
/// unit's select bit is provably ineffectual (multiplier bit zero, or
/// multiplicand zero so sum == accumulator == 0), so products are identical
/// to the full-depth sequence.
struct AdaptivePolicy {
  /// Run the add-shift loop only to the operands' max effectual bit depth.
  bool narrow_precision = false;
  /// When every unit's product is provably zero, skip staging and all
  /// iterations outright (the zero-initialised accumulator IS the result).
  bool skip_zero = false;
  [[nodiscard]] constexpr bool enabled() const { return narrow_precision || skip_zero; }
};

/// Resolved execution plan of one MULT: how many add-shift iterations run
/// and which setup cycles are elided. Produced by ImcMacro::plan_mult from
/// the operand data + policy; consumed identically by the executing
/// datapath (mult_impl), the cost model, and the controller's accounting,
/// so priced == executed cycles holds by construction and the split
///   op_cycles(MULT, bits) == cycles() + fused_cycles_saved()
///                                     + adaptive_cycles_saved(bits)
/// is exact in every case (asserted per instruction by the controller).
struct MultPlan {
  unsigned depth = 0;      ///< executed add-shift iterations (== bits when static)
  bool skip = false;       ///< all products provably zero: no staging, no iterations
  bool d1_staged = false;  ///< D1 already holds the masked multiplicand (fusion)
  bool pipelined = false;  ///< cycle 1 may hide behind the predecessor's write-back

  /// The static full-precision plan (policy off).
  [[nodiscard]] static constexpr MultPlan full(unsigned bits, bool d1_staged = false,
                                               bool pipelined = false) {
    return MultPlan{bits, false, d1_staged, pipelined};
  }

  /// 1 when the D1 staging cycle executes.
  [[nodiscard]] constexpr unsigned staging_cycles() const {
    return (!skip && !d1_staged) ? 1u : 0u;
  }
  /// 1 when cycle 1 (zero-init + FF load) occupies its own cycle. A
  /// pipelined link hides it behind the predecessor's final write-back --
  /// unless nothing else remains, in which case the op still takes its
  /// one mandatory cycle.
  [[nodiscard]] constexpr unsigned lead_cycles() const {
    return (pipelined && staging_cycles() + depth > 0) ? 0u : 1u;
  }
  /// Modeled cycles this MULT occupies the array.
  [[nodiscard]] constexpr unsigned cycles() const {
    return lead_cycles() + staging_cycles() + depth;
  }
  /// Cycles the *fusion* discounts account for (pipelining + D1 reuse).
  [[nodiscard]] constexpr unsigned fused_cycles_saved() const {
    return ((pipelined && lead_cycles() == 0) ? 1u : 0u) + (d1_staged ? 1u : 0u);
  }
  /// Cycles the *adaptive* policy accounts for: dropped leading iterations
  /// plus the staging cycle a skip elides (when fusion hadn't already).
  [[nodiscard]] constexpr unsigned adaptive_cycles_saved(unsigned bits) const {
    return (bits - depth) + ((skip && !d1_staged) ? 1u : 0u);
  }
};

}  // namespace bpim::macro
