#include "macro/memory.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace bpim::macro {

Bank::Bank(const MacroConfig& macro_cfg, std::size_t macro_count, std::uint64_t seed_base) {
  BPIM_REQUIRE(macro_count > 0, "bank needs at least one macro");
  macros_.reserve(macro_count);
  for (std::size_t i = 0; i < macro_count; ++i) {
    MacroConfig c = macro_cfg;
    c.seed = seed_base + i;  // decorrelate disturb injection across macros
    macros_.push_back(std::make_unique<ImcMacro>(c));
  }
}

ImcMacro& Bank::macro(std::size_t i) {
  BPIM_REQUIRE(i < macros_.size(), "macro index out of range");
  return *macros_[i];
}

const ImcMacro& Bank::macro(std::size_t i) const {
  BPIM_REQUIRE(i < macros_.size(), "macro index out of range");
  return *macros_[i];
}

Joule Bank::total_energy() const {
  Joule e;
  for (const auto& m : macros_) e += m->total_energy();
  return e;
}

std::uint64_t Bank::elapsed_cycles() const {
  std::uint64_t c = 0;
  for (const auto& m : macros_) c = std::max(c, m->total_cycles());
  return c;
}

void Bank::reset_counters() {
  for (auto& m : macros_) m->reset_counters();
}

ImcMemory::ImcMemory(const MemoryConfig& cfg) : cfg_(cfg) {
  BPIM_REQUIRE(cfg.banks > 0, "memory needs at least one bank");
  banks_.reserve(cfg.banks);
  for (std::size_t b = 0; b < cfg.banks; ++b)
    banks_.push_back(std::make_unique<Bank>(
        cfg.macro, cfg.macros_per_bank, cfg.macro.seed + cfg.seed_offset + b * 1000));
}

Bank& ImcMemory::bank(std::size_t b) {
  BPIM_REQUIRE(b < banks_.size(), "bank index out of range");
  return *banks_[b];
}

const Bank& ImcMemory::bank(std::size_t b) const {
  BPIM_REQUIRE(b < banks_.size(), "bank index out of range");
  return *banks_[b];
}

ImcMacro& ImcMemory::macro(std::size_t flat) {
  return bank(flat / cfg_.macros_per_bank).macro(flat % cfg_.macros_per_bank);
}

std::size_t ImcMemory::macro_count() const { return cfg_.banks * cfg_.macros_per_bank; }

std::size_t ImcMemory::capacity_bytes() const {
  const auto& g = cfg_.macro.geometry;
  return macro_count() * g.rows * g.cols / 8;
}

Joule ImcMemory::total_energy() const {
  Joule e;
  for (const auto& b : banks_) e += b->total_energy();
  return e;
}

std::uint64_t ImcMemory::elapsed_cycles() const {
  std::uint64_t c = 0;
  for (const auto& b : banks_) c = std::max(c, b->elapsed_cycles());
  return c;
}

void ImcMemory::reset_counters() {
  for (auto& b : banks_) b->reset_counters();
}

}  // namespace bpim::macro
