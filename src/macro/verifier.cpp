#include "macro/verifier.hpp"

#include <sstream>
#include <unordered_map>

namespace bpim::macro {

namespace {

constexpr std::size_t kD1 = ImcMacro::kDummyOperand;
constexpr std::size_t kD2 = ImcMacro::kDummyAccum;

bool is_dual_logic(Op op) {
  switch (op) {
    case Op::Nand:
    case Op::And:
    case Op::Nor:
    case Op::Or:
    case Op::Xnor:
    case Op::Xor:
      return true;
    default:
      return false;
  }
}

bool needs_dest(Op op) {
  return op == Op::Not || op == Op::Copy || op == Op::Shift || op == Op::AddShift;
}

/// Ops whose sense path interprets rows as precision fields (as opposed to
/// the bitwise logic/NOT/COPY paths).
bool field_structured_read(Op op) {
  return op == Op::Add || op == Op::AddShift || op == Op::Sub || op == Op::Shift;
}

std::string row_name(const array::RowRef& r) {
  return std::string(r.is_dummy() ? "D" : "R") + std::to_string(r.index);
}

/// What the verifier remembers about one row between instructions.
struct RowState {
  std::size_t last_def = 0;     ///< instruction index of the live explicit def
  unsigned write_bits = 0;      ///< field width of that def (0 = untyped/bitwise)
  bool has_explicit_def = false;
  bool read_since_def = false;
  bool clobbered = false;  ///< explicit def destroyed by implicit scratch traffic
  std::size_t clobberer = 0;  ///< instruction whose implicit write did it
};

class Checker {
 public:
  Checker(const Program& p, const array::ArrayGeometry& g, const VerifyLimits& limits,
          std::span<const PinnedRows> pinned = {})
      : prog_(p), geom_(g), limits_(limits), pinned_(pinned) {}

  VerifyReport run() {
    const auto& insts = prog_.instructions();
    for (std::size_t k = 0; k < insts.size(); ++k) check_instruction(k, insts[k]);
    if (limits_.max_instructions > 0 && insts.size() > limits_.max_instructions) {
      std::ostringstream os;
      os << "program has " << insts.size() << " instructions, budget is "
         << limits_.max_instructions;
      diag(Severity::Error, DiagKind::InstructionBudget, limits_.max_instructions, os.str());
    }
    return std::move(report_);
  }

 private:
  void diag(Severity sev, DiagKind kind, std::size_t inst, std::string msg) {
    report_.diagnostics.push_back(Diagnostic{sev, kind, inst, std::move(msg)});
    if (sev == Severity::Error)
      ++report_.errors;
    else
      ++report_.warnings;
  }

  /// Flat row key; dummy rows follow the main rows.
  [[nodiscard]] std::size_t key(const array::RowRef& r) const {
    return r.is_dummy() ? geom_.rows + r.index : r.index;
  }

  [[nodiscard]] bool in_range(const array::RowRef& r) const {
    return r.index < (r.is_dummy() ? geom_.dummy_rows : geom_.rows);
  }

  bool check_bounds(std::size_t k, const array::RowRef& r, const char* role) {
    if (in_range(r)) return true;
    std::ostringstream os;
    os << role << " row " << row_name(r) << " out of range ("
       << (r.is_dummy() ? geom_.dummy_rows : geom_.rows) << " "
       << (r.is_dummy() ? "dummy" : "main") << " rows)";
    diag(Severity::Error, DiagKind::RowOutOfRange, k, os.str());
    return false;
  }

  /// Operand sense: RAW (clobbered definitions) and field reinterpretation.
  void note_read(std::size_t k, const array::RowRef& r, unsigned read_bits) {
    if (!in_range(r)) return;
    RowState& st = rows_[key(r)];
    if (st.clobbered) {
      std::ostringstream os;
      os << "reads " << row_name(r) << ", whose value from instruction " << st.last_def
         << " was clobbered by implicit scratch traffic of instruction " << st.clobberer;
      diag(Severity::Warning, DiagKind::RawHazard, k, os.str());
      st.clobbered = false;  // one report per lost definition
    }
    if (read_bits != 0 && st.write_bits != 0 && st.write_bits != read_bits) {
      std::ostringstream os;
      os << "reads " << row_name(r) << " as " << read_bits << "-bit fields, but instruction "
         << st.last_def << " wrote it as " << st.write_bits << "-bit fields";
      diag(Severity::Warning, DiagKind::PrecisionMismatch, k, os.str());
    }
    st.read_since_def = true;
  }

  /// Explicit write-back to `dest`: WAW against an unread explicit def.
  void note_write(std::size_t k, const array::RowRef& r, unsigned write_bits) {
    if (!in_range(r)) return;
    RowState& st = rows_[key(r)];
    if (st.has_explicit_def && !st.read_since_def && !st.clobbered) {
      std::ostringstream os;
      os << "overwrites " << row_name(r) << " before the value written by instruction "
         << st.last_def << " was read";
      diag(Severity::Warning, DiagKind::WawHazard, k, os.str());
    }
    st = RowState{};
    st.last_def = k;
    st.write_bits = write_bits;
    st.has_explicit_def = true;
  }

  /// Implicit scratch-row write (SUB -> D1; MULT -> D1 and D2). Scratch
  /// churn over scratch is the sequencer's normal business -- only an
  /// explicit definition that was never read turns this into a pending RAW.
  /// A consumed definition is dead by then: accumulating into D2 and letting
  /// the next MULT reclaim it is the ISA's intended MAC-chain idiom.
  void note_implicit_write(std::size_t k, std::size_t dummy_index) {
    const array::RowRef r = array::RowRef::dummy(dummy_index);
    if (!in_range(r)) return;
    RowState& st = rows_[key(r)];
    if (st.has_explicit_def && !st.read_since_def) {
      st.clobbered = true;
      st.clobberer = k;
    }
    st.has_explicit_def = false;
    st.write_bits = 0;
  }

  /// Residency discipline: explicit write-back into a pinned main row.
  void check_resident(std::size_t k, const array::RowRef& r) {
    if (r.is_dummy() || pinned_.empty()) return;
    for (const PinnedRows& iv : pinned_) {
      if (r.index < iv.first_row || r.index >= iv.first_row + iv.row_count) continue;
      std::ostringstream os;
      os << "destination " << row_name(r) << " lies inside the pinned interval ["
         << iv.first_row << ", " << iv.first_row + iv.row_count
         << ") -- the write would corrupt a resident operand";
      diag(Severity::Error, DiagKind::ResidentClobber, k, os.str());
      return;
    }
  }

  void check_instruction(std::size_t k, const Instruction& i) {
    const bool dual = is_dual_wl(i.op);

    // Row bounds first; out-of-range rows are excluded from hazard state.
    check_bounds(k, i.a, "operand");
    if (dual) {
      check_bounds(k, i.b, "operand");
      if (i.a == i.b)
        diag(Severity::Error, DiagKind::IdenticalRows, k,
             "dual-WL op senses " + row_name(i.a) + " against itself");
    }
    if (i.dest) check_bounds(k, *i.dest, "destination");

    // Scratch-row role rules of the sequencer (imc_macro.cpp):
    //  * MULT zero-inits D2 and stages the multiplicand in D1 before its
    //    operand senses, so neither operand may live there;
    //  * SUB stages ~b in D1 during cycle 1 and senses `a` against it in
    //    cycle 2, so `a` must not be D1 (b == D1 is senseless-but-sound:
    //    cycle 1 reads b before overwriting it).
    if (i.op == Op::Mult) {
      for (const auto* r : {&i.a, &i.b}) {
        if (r->is_dummy() && (r->index == kD1 || r->index == kD2))
          diag(Severity::Error, DiagKind::RoleViolation, k,
               "MULT operand " + row_name(*r) + " overlaps the op's scratch rows (D1/D2)");
      }
    }
    if (i.op == Op::Sub && i.a.is_dummy() && i.a.index == kD1)
      diag(Severity::Error, DiagKind::RoleViolation, k,
           "SUB minuend D1 is overwritten with ~b before it is sensed");

    // Destination discipline.
    if (needs_dest(i.op) && !i.dest)
      diag(Severity::Error, DiagKind::MissingDest, k,
           std::string(to_string(i.op)) + " requires a destination row");
    if (i.dest && (i.op == Op::Sub || i.op == Op::Mult || is_dual_logic(i.op))) {
      const char* where = i.op == Op::Mult ? "the result lands in D2"
                          : i.op == Op::Sub ? "the result is driven out"
                                            : "logic results are driven out";
      diag(Severity::Warning, DiagKind::DestIgnored, k,
           std::string(to_string(i.op)) + " ignores its destination (" + where + ")");
    }

    // Precision: dual-WL logic is bitwise and width-free; everything else
    // senses precision fields that must tile the row.
    const bool precision_checked = !is_dual_logic(i.op);
    if (precision_checked) {
      if (!is_supported_precision(i.bits)) {
        diag(Severity::Error, DiagKind::BadPrecision, k,
             "unsupported precision " + std::to_string(i.bits));
      } else {
        const std::size_t span = i.op == Op::Mult ? 2 * std::size_t{i.bits} : i.bits;
        if (span > geom_.cols) {
          std::ostringstream os;
          os << "operand field spans " << span << " columns, row is " << geom_.cols << " wide";
          diag(Severity::Error, DiagKind::FieldOverflow, k, os.str());
        } else if (geom_.cols % span != 0) {
          std::ostringstream os;
          os << "field span " << span << " does not divide the " << geom_.cols
             << "-column row width";
          diag(Severity::Error, DiagKind::WidthMismatch, k, os.str());
        }
      }
    }

    // Dataflow: senses first, then the op's implicit scratch writes, then
    // the explicit write-back -- the order the sequencer performs them.
    // MULT reads its operands as packed 2N-bit units, not plain fields, so
    // its reads carry no field tag.
    const unsigned read_bits =
        field_structured_read(i.op) && i.op != Op::Mult ? i.bits : 0;
    note_read(k, i.a, read_bits);
    if (dual) note_read(k, i.b, read_bits);
    if (i.op == Op::Sub) note_implicit_write(k, kD1);
    if (i.op == Op::Mult) {
      note_implicit_write(k, kD1);
      note_implicit_write(k, kD2);
    }
    if (i.dest && !(i.op == Op::Sub || i.op == Op::Mult || is_dual_logic(i.op))) {
      // NOT/COPY write bitwise images; SHIFT/ADD/ADD-Shift write N-bit fields.
      const unsigned wb = (i.op == Op::Not || i.op == Op::Copy) ? 0 : i.bits;
      check_resident(k, *i.dest);
      note_write(k, *i.dest, wb);
    }

    // Cycle account (Table 1). op_cycles rejects degenerate widths, so only
    // price instructions a real sequencer could issue.
    if (i.bits >= 1) {
      report_.static_cycles += op_cycles(i.op, i.bits);
      if (limits_.max_cycles > 0 && !cycle_budget_reported_ &&
          report_.static_cycles > limits_.max_cycles) {
        std::ostringstream os;
        os << "static cycles reach " << report_.static_cycles << " here, budget is "
           << limits_.max_cycles;
        diag(Severity::Error, DiagKind::CycleBudget, k, os.str());
        cycle_budget_reported_ = true;
      }
    }
  }

  const Program& prog_;
  const array::ArrayGeometry& geom_;
  const VerifyLimits& limits_;
  std::span<const PinnedRows> pinned_;
  VerifyReport report_;
  std::unordered_map<std::size_t, RowState> rows_;
  bool cycle_budget_reported_ = false;
};

}  // namespace

const char* to_string(Severity s) { return s == Severity::Error ? "error" : "warning"; }

const char* to_string(DiagKind k) {
  switch (k) {
    case DiagKind::RowOutOfRange: return "row-out-of-range";
    case DiagKind::IdenticalRows: return "identical-rows";
    case DiagKind::RoleViolation: return "role-violation";
    case DiagKind::MissingDest: return "missing-dest";
    case DiagKind::DestIgnored: return "dest-ignored";
    case DiagKind::BadPrecision: return "bad-precision";
    case DiagKind::FieldOverflow: return "field-overflow";
    case DiagKind::WidthMismatch: return "width-mismatch";
    case DiagKind::RawHazard: return "raw-hazard";
    case DiagKind::WawHazard: return "waw-hazard";
    case DiagKind::PrecisionMismatch: return "precision-mismatch";
    case DiagKind::CycleBudget: return "cycle-budget";
    case DiagKind::InstructionBudget: return "instruction-budget";
    case DiagKind::ResidentClobber: return "resident-clobber";
  }
  return "unknown";
}

namespace {
void format_diag(std::ostringstream& os, const Diagnostic& d) {
  os << to_string(d.severity) << "[" << to_string(d.kind) << "] @#" << d.instruction << ": "
     << d.message << "\n";
}
}  // namespace

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) format_diag(os, d);
  return os.str();
}

std::string VerifyReport::error_summary() const {
  std::ostringstream os;
  os << errors << " error(s):\n";
  for (const auto& d : diagnostics)
    if (d.severity == Severity::Error) format_diag(os, d);
  return os.str();
}

std::string VerifyReport::annotate(const Program& p) const {
  std::ostringstream os;
  std::istringstream lines(p.dump());
  std::string line;
  for (std::size_t k = 0; std::getline(lines, line); ++k) {
    os << line << "\n";
    for (const auto& d : diagnostics)
      if (d.instruction == k) {
        os << "    ^ ";
        format_diag(os, d);
      }
  }
  // Budget faults indexed past the last instruction (whole-program).
  for (const auto& d : diagnostics)
    if (d.instruction >= p.size()) format_diag(os, d);
  return os.str();
}

VerifyReport verify_program(const Program& p, const array::ArrayGeometry& g,
                            const VerifyLimits& limits) {
  return Checker(p, g, limits).run();
}

VerifyReport verify_program(const Program& p, const array::ArrayGeometry& g,
                            std::span<const PinnedRows> pinned, const VerifyLimits& limits) {
  return Checker(p, g, limits, pinned).run();
}

VerifyReport verify_program(const Program& p, const ImcMacro& m, const VerifyLimits& limits) {
  return verify_program(p, m.config().geometry, limits);
}

}  // namespace bpim::macro
