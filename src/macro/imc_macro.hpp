#pragma once
// The bit-parallel in-memory-computing macro: the paper's primary
// contribution, as a cycle-accurate, energy-accounted functional model.
//
// One macro = one SRAM array (default 128x128) + 3 dummy rows behind the BL
// separator + a row of column peripheral units (SAs, FA-Logics, MX0..MX3,
// multiplier flip-flops, write-back drivers) + the micro-coded sequencer.
//
// Word layout: at precision N, a row holds cols/N words; word w occupies
// columns [w*N, (w+1)*N), bit i of the word in column w*N+i. Operands of a
// dual-WL operation sit in the *same columns of two different rows*. MULT
// uses 2N-bit precision units (Fig 6): unit u spans columns [u*2N, (u+1)*2N);
// the N-bit inputs live in the unit's low half and the 2N-bit product fills
// the unit.
//
// Every compute entry point mutates state exactly as the hardware sequence
// would (dummy-row traffic included), charges the energy ledger with the
// same component prices the closed-form EnergyModel uses, and advances the
// cycle counter per Table 1.
//
// Execution contract: the compute entry points below are the *controller's*
// surface. Everything above the macro layer (engine/serve/app) executes
// through verified macro::Programs via MacroController -- a CI grep gate
// enforces that no direct row-op call appears outside src/macro/. Tests and
// benches may still call them directly as the differential oracle against
// the program path (alongside baseline/naive_datapath).

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "array/sram_array.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "energy/energy_model.hpp"
#include "macro/isa.hpp"
#include "periph/falogics.hpp"
#include "timing/freq_model.hpp"

namespace bpim::macro {

struct MacroConfig {
  array::ArrayGeometry geometry{};
  Volt vdd{0.9};
  energy::SeparatorMode separator = energy::SeparatorMode::Enabled;
  energy::EnergyParams energy_params{};
  WlScheme wl_scheme = WlScheme::ShortPulseBoost;
  /// When true, dual-WL computes under an unsafe WL scheme stochastically
  /// flip victim cells (see DisturbModel); the proposed scheme is immune.
  bool inject_disturb = false;
  std::uint64_t seed = 0x6B1Dull;
  timing::FreqModelConfig freq{};
};

/// Cycle time of a macro built with `cfg` under its WL scheme and separator
/// mode, composed from the given frequency model. Shared by
/// ImcMacro::cycle_time() and macro::CostModel, so instruction-driven
/// pricing can never drift from the executing macro's tick.
[[nodiscard]] Second scheme_cycle_time(const MacroConfig& cfg, const timing::FreqModel& freq);

/// Per-scheme probability that a vulnerable cell flips during one dual-WL
/// compute. Values for ShortPulseBoost/Wlud are the measured iso-ADM rates
/// (see timing/adm and EXPERIMENTS.md); FullSwingLong is catastrophic.
struct DisturbModel {
  double flip_probability = 0.0;
  [[nodiscard]] static DisturbModel for_scheme(WlScheme scheme);
};

/// Result of one macro-level operation.
struct ExecStats {
  unsigned cycles = 0;
  Joule op_energy{0.0};
};

class ImcMacro {
 public:
  explicit ImcMacro(const MacroConfig& cfg);

  [[nodiscard]] const MacroConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t cols() const { return cfg_.geometry.cols; }
  [[nodiscard]] std::size_t rows() const { return cfg_.geometry.rows; }
  /// Words per row at a given precision.
  [[nodiscard]] std::size_t words_per_row(unsigned bits) const;
  /// MULT units per row at a given precision (each 2*bits wide).
  [[nodiscard]] std::size_t mult_units_per_row(unsigned bits) const;

  // ---- uncharged data access (test/benchmark setup) ----------------------
  void poke_row(std::size_t r, const BitVector& data);
  [[nodiscard]] const BitVector& peek_row(std::size_t r) const;
  void poke_word(std::size_t r, std::size_t word, unsigned bits, std::uint64_t value);
  [[nodiscard]] std::uint64_t peek_word(std::size_t r, std::size_t word, unsigned bits) const;
  /// Bulk poke: values[i] goes to word `first_word + i`. One range/precision
  /// validation for the whole span (the engine's operand-load path).
  void poke_words(std::size_t r, std::size_t first_word, unsigned bits,
                  std::span<const std::uint64_t> values);
  /// Low half of MULT unit `u` (operand slot).
  void poke_mult_operand(std::size_t r, std::size_t unit, unsigned bits, std::uint64_t value);
  /// Bulk poke of MULT operands: values[i] goes to unit `first_unit + i`.
  void poke_mult_operands(std::size_t r, std::size_t first_unit, unsigned bits,
                          std::span<const std::uint64_t> values);
  [[nodiscard]] std::uint64_t peek_mult_product(const BitVector& row, std::size_t unit,
                                                unsigned bits) const;
  [[nodiscard]] const array::SramArray& sram() const { return array_; }

  // ---- standard SRAM access (charged; the macro is still a memory) --------
  /// Normal read of a full row (single-WL, 1 cycle).
  BitVector read_row(std::size_t r);
  /// Normal write of a full row (1 cycle, drives the full-height BLs).
  void write_row(std::size_t r, const BitVector& data);

  // ---- compute operations (charged) ---------------------------------------
  /// Dual-WL logic op across all columns (1 cycle).
  BitVector logic_rows(periph::LogicFn fn, array::RowRef a, array::RowRef b);
  /// Single-WL op: NOT / COPY / SHIFT(<<1 per precision word) of row `src`,
  /// written back to `dest` (1 cycle).
  BitVector unary_row(Op op, array::RowRef src, array::RowRef dest, unsigned bits);
  /// Bit-parallel ADD of all words of two rows (1 cycle, result driven out;
  /// pass `dest` to also write it back).
  BitVector add_rows(array::RowRef a, array::RowRef b, unsigned bits,
                     std::optional<array::RowRef> dest = std::nullopt, bool carry_in = false);
  /// ADD followed by the <<1 write-back path (1 cycle, requires dest).
  BitVector add_shift_rows(array::RowRef a, array::RowRef b, unsigned bits, array::RowRef dest);
  /// Two's-complement SUB: a - b (2 cycles: NOT -> dummy, ADD with cin=1).
  BitVector sub_rows(array::RowRef a, array::RowRef b, unsigned bits);
  /// Bit-parallel MULT on 2N-bit units (N+2 cycles static; fewer under an
  /// enabled AdaptivePolicy -- see plan_mult). Operands in the low halves of
  /// each unit of rows a (multiplicand) and b (multiplier); returns the row
  /// of 2N-bit products (also left in dummy row D2).
  BitVector mult_rows(array::RowRef a, array::RowRef b, unsigned bits,
                      const AdaptivePolicy& policy = {});
  /// MULT as the non-head link of a fused MAC chain. `pipelined` overlaps
  /// cycle 1 (D2 zero-init + FF load) with the predecessor MULT's final
  /// write-back (-1 cycle, same energy); `d1_staged` additionally skips the
  /// D1 staging cycle -- valid only when the immediately preceding op was a
  /// MULT of the same multiplicand row at the same precision, so D1 still
  /// holds the masked copy (-1 cycle and its staging energy). Products are
  /// bit-identical to mult_rows().
  BitVector mult_rows_chained(array::RowRef a, array::RowRef b, unsigned bits,
                              bool d1_staged, bool pipelined,
                              const AdaptivePolicy& policy = {});
  /// Resolve the adaptive execution plan of one MULT from the operand data:
  /// SWAR-scan the unit fields (zero_field_mask on the multiplicand,
  /// field_max_set_bit on the effectual multiplier bits) for the max
  /// effectual depth E, then narrow the iteration count to E
  /// (narrow_precision) and/or skip the op body when E == 0 (skip_zero).
  /// The scan itself is uncharged: it models the peripheral's zero/msb
  /// detectors reading the operands as they stream through the FF load and
  /// staging cycles the op performs anyway.
  [[nodiscard]] MultPlan plan_mult(array::RowRef a, array::RowRef b, unsigned bits,
                                   const AdaptivePolicy& policy, bool d1_staged = false,
                                   bool pipelined = false) const;
  /// Execute a MULT under an already-resolved plan (the controller's path:
  /// plan once, price it, execute it). The plan must come from plan_mult on
  /// the current operand data -- a stale or hand-built plan that skips
  /// effectual iterations yields wrong products.
  BitVector mult_rows_planned(array::RowRef a, array::RowRef b, unsigned bits,
                              const MultPlan& plan);

  // ---- accounting ---------------------------------------------------------
  [[nodiscard]] ExecStats last_op() const { return last_; }
  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }
  [[nodiscard]] Joule total_energy() const { return total_energy_; }
  /// Cumulative energy charged to one micro-action class (sums to
  /// total_energy() across all components).
  [[nodiscard]] Joule component_energy(energy::Component c) const;
  void reset_counters();

  /// Cycle time / fmax for this macro's scheme and separator mode.
  [[nodiscard]] Second cycle_time() const;
  [[nodiscard]] Hertz fmax() const;

  /// Count of cells corrupted by injected read disturb so far.
  [[nodiscard]] std::uint64_t disturb_flips() const { return disturb_flips_; }

  /// Dummy-row roles used by the sequencer.
  static constexpr std::size_t kDummyZero = 0;  ///< scratch / zero row
  static constexpr std::size_t kDummyOperand = 1;  ///< NOT result / multiplicand copy
  static constexpr std::size_t kDummyAccum = 2;    ///< MULT accumulator / results

 private:
  BitVector mult_impl(array::RowRef a, array::RowRef b, unsigned bits, const MultPlan& plan);
  [[nodiscard]] energy::Component compute_price(array::RowRef a, array::RowRef b) const;
  [[nodiscard]] energy::Component wb_price() const;
  void charge(energy::Component c, double bits);
  void finish_op(unsigned cycles);
  /// Write with separator management + write-back energy for `bits` bits.
  void write_back(array::RowRef dest, const BitVector& data, double charged_bits);
  array::BlReadout sense_dual(array::RowRef a, array::RowRef b);
  /// Apply stochastic disturb to vulnerable columns of a dual-WL access.
  void maybe_disturb(array::RowRef a, array::RowRef b);

  MacroConfig cfg_;
  array::SramArray array_;
  energy::EnergyModel energy_;
  timing::FreqModel freq_;
  DisturbModel disturb_;
  Rng rng_;

  ExecStats last_{};
  Joule pending_energy_{0.0};
  std::uint64_t total_cycles_ = 0;
  Joule total_energy_{0.0};
  std::array<Joule, 8> component_energy_{};  // indexed by Component
  std::uint64_t disturb_flips_ = 0;
};

}  // namespace bpim::macro
