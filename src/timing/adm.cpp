#include "timing/adm.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/mosfet.hpp"

namespace bpim::timing {

using circuit::DeviceKind;
using circuit::FailureRateResult;
using circuit::Mosfet;
using circuit::VtFlavor;

FailureRateResult wlud_disturb_rate(const BlComputeConfig& cfg, const circuit::OperatingPoint& op,
                                    Volt wlud_level, std::size_t trials, std::uint64_t seed) {
  // Quasi-DC: by the end of the (nanosecond-scale) WLUD evaluation the BL has
  // collapsed to near ground; the victim '1' cell sees that level for much
  // longer than any latch regeneration time.
  const Volt v_bl_low(0.04);
  const Second stress(2e-9);
  return circuit::monte_carlo_failure(
      [&](Rng& rng) {
        const auto mm = cell::CellMismatch::sample(rng, cfg.cell_geometry);
        const cell::Sram6tCell victim(cfg.cell_geometry, op, mm);
        return victim.flips_with_low_bl(wlud_level, v_bl_low, stress);
      },
      trials, seed);
}

FailureRateResult shortwl_disturb_rate(const BlComputeConfig& cfg,
                                       const circuit::OperatingPoint& op, std::size_t trials,
                                       std::uint64_t seed) {
  const double vdd = op.vdd.si();
  const Volt s_p0 = Mosfet::mismatch_sigma(cfg.w_p0_um);
  const double c_bl =
      cfg.c_bl_per_cell.si() * static_cast<double>(cfg.rows) + cfg.c_bl_fixed.si();

  return circuit::monte_carlo_failure(
      [&](Rng& rng) {
        // Aggressor ('0' cell) discharges the BL during the pulse; its own
        // mismatch sets the droop. Victim is the cell storing '1'.
        const auto mm_aggr = cell::CellMismatch::sample(rng, cfg.cell_geometry);
        const auto mm_vict = cell::CellMismatch::sample(rng, cfg.cell_geometry);
        const cell::Sram6tCell aggressor(cfg.cell_geometry, op, mm_aggr);
        const cell::Sram6tCell victim(cfg.cell_geometry, op, mm_vict);
        const Volt d_p0(rng.normal(0.0, s_p0.si()) - cfg.p0_sense_vt_drop.si());
        const Mosfet p0(DeviceKind::Pmos, VtFlavor::LowVt, cfg.w_p0_um, op,
                        circuit::default_process(), d_p0);

        const double pulse =
            std::max(20e-12, cfg.wl_pulse.si() + rng.normal(0.0, cfg.wl_jitter_sigma.si()));

        // Droop accumulated while the WL is (approximately) at full swing.
        const double i_cell = aggressor.read_current(op.vdd, op.vdd).si();
        double droop = i_cell * (pulse + 0.5 * cfg.wl_rise.si()) / c_bl;

        // Early boost contribution during the pulse: P0's mirror charge rate
        // translated into an equivalent extra droop (fast-P0 tail hazard).
        const double i_p0 = p0.current(Volt(droop), Volt(vdd)).si();
        const double mirror_rise = i_p0 * pulse / cfg.c_mirror.si();
        if (mirror_rise > 0.3 * vdd) {
          // Boost triggered before WL off: BL collapse overlaps the pulse.
          const Mosfet n1(DeviceKind::Nmos, VtFlavor::LowVt, cfg.w_n1_um, op);
          const double i_boost =
              cfg.n_stack_factor *
              n1.current(Volt(std::min(mirror_rise, vdd)), Volt(vdd - droop)).si();
          droop += i_boost * 0.5 * pulse / c_bl;
        }
        droop = std::min(droop, vdd);

        // Walk the WL fall ramp; the BL keeps falling while the victim's
        // access device is still on. Check the sag criterion at each step.
        constexpr int kSteps = 4;
        for (int k = 0; k < kSteps; ++k) {
          const double frac = (k + 0.5) / kSteps;
          const double v_wl = vdd * (1.0 - frac);
          const double t_in_step = cfg.wl_fall.si() / kSteps;
          const double v_bl = std::max(0.0, vdd - droop - 0.15 * vdd * frac);
          if (victim.flips_with_low_bl(Volt(v_wl), Volt(v_bl), Second(t_in_step * kSteps)))
            return true;
        }
        return false;
      },
      trials, seed);
}

Volt calibrate_wlud_level(const BlComputeConfig& cfg, const circuit::OperatingPoint& op,
                          double target, std::size_t trials_per_probe, std::uint64_t seed) {
  // Failure rate increases monotonically with the WL level.
  double lo = 0.40, hi = op.vdd.si();
  for (int i = 0; i < 12; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double rate =
        wlud_disturb_rate(cfg, op, Volt(mid), trials_per_probe, seed + static_cast<unsigned>(i))
            .rate();
    (rate < target ? lo : hi) = mid;
  }
  return Volt(0.5 * (lo + hi));
}

}  // namespace bpim::timing
