#pragma once
// Cycle-time composition and maximum operating frequency (Fig 8).
//
// One IMC cycle is the serial composition the paper breaks down on the left
// of Fig 8 (values at 0.9 V, NN):
//
//     BL precharge      60 ps
//     WL activation    140 ps   (short full-swing pulse)
//     BL sensing       130 ps   (boost completion + single-ended SA)
//     logic            222 ps   (16-bit TG carry-select ripple, 8-bit mode
//                                pairs two 8-bit words -> 16-bit chain)
//     write-back        51 ps   (with BL separator; ~3x without)
//
// The sum scales with the shared DelayScaling law; the fit reproduces the
// paper's anchors: 2.25 GHz at 1.0 V and 372 MHz at 0.6 V.

#include "circuit/process.hpp"
#include "common/units.hpp"
#include "timing/fa_timing.hpp"

namespace bpim::timing {

struct CycleBreakdown {
  Second bl_precharge{0.0};
  Second wl_activation{0.0};
  Second bl_sensing{0.0};
  Second logic{0.0};
  Second write_back{0.0};

  [[nodiscard]] Second total() const {
    return bl_precharge + wl_activation + bl_sensing + logic + write_back;
  }
};

struct FreqModelConfig {
  // Component delays at the 0.9 V / NN reference point.
  Second bl_precharge{60e-12};
  Second wl_activation{140e-12};
  Second bl_sensing{130e-12};
  Second write_back_separated{51e-12};
  /// Write-back without the BL separator drives the full-height BL.
  double write_back_full_bl_factor = 3.0;
  /// Logic stage = ripple chain of this many bits (paper: 16-bit adder even
  /// in 8-bit mode, two words per 32-bit slice segment pair).
  unsigned logic_bits = 16;
  FaTimingConfig fa{};
  DelayScaling scaling{};
};

class FreqModel {
 public:
  explicit FreqModel(FreqModelConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] CycleBreakdown breakdown(Volt vdd, bool with_separator = true,
                                         circuit::Corner corner = circuit::Corner::NN,
                                         FaKind fa_kind = FaKind::TransmissionGateSelect) const;

  [[nodiscard]] Hertz fmax(Volt vdd, bool with_separator = true,
                           circuit::Corner corner = circuit::Corner::NN,
                           FaKind fa_kind = FaKind::TransmissionGateSelect) const;

  [[nodiscard]] const FreqModelConfig& config() const { return cfg_; }

 private:
  FreqModelConfig cfg_;
};

}  // namespace bpim::timing
