#pragma once
// Full-adder critical-path timing (Fig 7b) and the shared supply-voltage
// delay-scaling law used across the timing models.
//
// The proposed FA is a transmission-gate carry-select structure: both
// candidate (sum, carry) pairs are precomputed from the BL computation
// results (A AND B on BLT, NOR(A,B) on BLB) while sensing completes; the
// ripple path then only traverses one transmission-gate mux per bit. The
// baseline logic-gate FA recomputes the majority/parity functions at every
// stage, paying ~2 gate delays per bit.
//
// Voltage scaling: g(V) = V / (V - Vth_eff)^alpha_eff, an effective
// alpha-power fit anchored to the paper's published operating points
// (2.25 GHz @ 1.0 V and 372 MHz @ 0.6 V -- see freq_model).

#include "circuit/process.hpp"
#include "common/units.hpp"

namespace bpim::timing {

/// Effective alpha-power supply scaling shared by all gate-delay models.
struct DelayScaling {
  Volt vth_eff{0.33};
  double alpha_eff = 2.54;
  /// Corner adjustment: Vth_eff shift per slow/fast corner step.
  Volt corner_vth_shift{0.04};

  /// Relative delay factor at `vdd` vs the 0.9 V reference.
  [[nodiscard]] double factor(Volt vdd, circuit::Corner corner = circuit::Corner::NN) const;
};

enum class FaKind { TransmissionGateSelect, LogicGate };

struct FaTimingConfig {
  // Per-bit ripple stage and fixed setup at 0.9 V, NN, 25 C.
  Second tg_stage{12e-12};
  Second tg_setup{30e-12};
  Second logic_stage{27.5e-12};
  Second logic_setup{20e-12};
  DelayScaling scaling{};
};

/// Critical path of an N-bit ripple chain for the chosen FA style.
[[nodiscard]] Second fa_critical_path(FaKind kind, unsigned bits, Volt vdd,
                                      const FaTimingConfig& cfg = {},
                                      circuit::Corner corner = circuit::Corner::NN);

/// Speedup of the TG carry-select FA over the logic-gate FA (paper: 1.8-2.2x).
[[nodiscard]] double fa_speedup(unsigned bits, Volt vdd, const FaTimingConfig& cfg = {});

}  // namespace bpim::timing
