#pragma once
// Pipelined issue model for back-to-back macro operations.
//
// The five phases of one cycle (Fig 8) occupy two resource classes:
//   * the bit lines:   precharge, WL activation, sensing, write-back;
//   * the periphery:   FA-Logics evaluation.
// Operation i+1 may precharge while operation i is still in its logic
// phase, so the steady-state issue interval is the BL occupancy, not the
// full latency. The BL separator helps twice: with it, write-back drives
// only the dummy segment, releasing the *main* BLs one phase earlier.
//
// This is an extension study (the paper reports the serial cycle; related
// work [4] pipelines with latches) -- see bench/ablation_pipeline.

#include "timing/freq_model.hpp"

namespace bpim::timing {

struct PipelineTiming {
  Second latency{0.0};         ///< one operation start-to-result
  Second issue_interval{0.0};  ///< steady-state spacing between operations
  [[nodiscard]] double speedup_vs_serial() const {
    return latency.si() / issue_interval.si();
  }
};

class PipelineModel {
 public:
  explicit PipelineModel(FreqModelConfig cfg = {}) : freq_(cfg) {}

  /// Steady-state pipelined timing at `vdd`. With the separator, write-back
  /// retires onto the separated dummy segment and does not hold the main
  /// BLs, shortening the issue interval further.
  [[nodiscard]] PipelineTiming timing(Volt vdd, bool with_separator = true,
                                      circuit::Corner corner = circuit::Corner::NN) const;

  /// Sustained operation rate (1 / issue interval).
  [[nodiscard]] Hertz throughput(Volt vdd, bool with_separator = true,
                                 circuit::Corner corner = circuit::Corner::NN) const;

  [[nodiscard]] const FreqModel& freq() const { return freq_; }

 private:
  FreqModel freq_;
};

}  // namespace bpim::timing
