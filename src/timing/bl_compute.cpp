#include "timing/bl_compute.hpp"

#include <cmath>

#include "circuit/mosfet.hpp"
#include "circuit/transient.hpp"
#include "common/require.hpp"

namespace bpim::timing {

using circuit::DeviceKind;
using circuit::Mosfet;
using circuit::VtFlavor;
using circuit::Waveform;

const char* to_string(BlScheme s) {
  return s == BlScheme::ShortWlBoost ? "Short-WL + BL Boost" : "WLUD";
}

BlComputeModel::BlComputeModel(BlScheme scheme, const BlComputeConfig& cfg,
                               const circuit::OperatingPoint& op)
    : scheme_(scheme), cfg_(cfg), op_(op) {
  BPIM_REQUIRE(cfg.rows > 0, "bit line must have at least one cell");
}

Farad BlComputeModel::bl_capacitance() const {
  return Farad(cfg_.c_bl_per_cell.si() * static_cast<double>(cfg_.rows) + cfg_.c_bl_fixed.si());
}

Second BlComputeModel::compute_delay(const cell::CellMismatch& cell_mm, Volt d_p0, Volt d_n1,
                                     Volt sa_offset, Second pulse_jitter) const {
  const double vdd = op_.vdd.si();
  const cell::Sram6tCell cell(cfg_.cell_geometry, op_, cell_mm);

  // Word-line waveform.
  Waveform wl;
  if (scheme_ == BlScheme::ShortWlBoost) {
    const double width = std::max(20e-12, cfg_.wl_pulse.si() + pulse_jitter.si());
    wl = Waveform::pulse(cfg_.wl_t0, Second(width), op_.vdd, cfg_.wl_rise, cfg_.wl_fall);
  } else {
    // WLUD: reduced level held for the whole evaluation window.
    wl = Waveform::pulse(cfg_.wl_t0, cfg_.t_end, cfg_.wlud_level, cfg_.wl_rise, cfg_.wl_fall);
  }

  // Boost devices (only used by ShortWlBoost). P0 carries the droop-sensor
  // bias as an effective threshold reduction, and the replica bias cancels
  // most of the corner shift for both booster devices (see config).
  const auto& proc = circuit::default_process();
  const double comp_p = -cfg_.boost_corner_tracking *
                        circuit::corner_sign(op_.corner, DeviceKind::Pmos) *
                        proc.corner_vth_shift.si();
  const double comp_n = -cfg_.boost_corner_tracking *
                        circuit::corner_sign(op_.corner, DeviceKind::Nmos) *
                        proc.corner_vth_shift.si();
  const Mosfet p0(DeviceKind::Pmos, VtFlavor::LowVt, cfg_.w_p0_um, op_, proc,
                  Volt(d_p0.si() - cfg_.p0_sense_vt_drop.si() + comp_p));
  const Mosfet n1(DeviceKind::Nmos, VtFlavor::LowVt, cfg_.w_n1_um, op_, proc,
                  Volt(d_n1.si() + comp_n));

  const double c_bl = bl_capacitance().si();
  const double c_mir = cfg_.c_mirror.si();
  const bool boosted = scheme_ == BlScheme::ShortWlBoost;

  // Sense threshold, shifted by SA offset.
  const double v_sense = cfg_.sa_threshold_frac * vdd + sa_offset.si();

  // State: v[0] = bit line, v[1] = booster mirror node.
  double v_bl = vdd;
  double v_mir = 0.0;
  const double h = cfg_.dt.si();
  const double t_end = cfg_.t_end.si();

  auto derivs = [&](double t, double bl, double mir, double& d_bl, double& d_mir) {
    const Volt v_wl = wl.at(Second(t));
    double i_dn = cell.read_current(v_wl, Volt(bl)).si();
    if (boosted) {
      // P0 charges the mirror node as the BL droops below VDD.
      const double i_p0 = p0.current(Volt(vdd - bl), Volt(vdd - mir)).si();
      // N1 (gated by the mirror) and N0 (enable) pull the BL down.
      i_dn += cfg_.n_stack_factor * n1.current(Volt(mir), Volt(bl)).si();
      d_mir = (mir < vdd) ? i_p0 / c_mir : 0.0;
    } else {
      d_mir = 0.0;
    }
    d_bl = (bl > 0.0) ? -i_dn / c_bl : 0.0;
  };

  double prev_t = 0.0;
  double prev_bl = v_bl;
  for (double t = 0.0; t < t_end; t += h) {
    double d_bl1 = 0.0, d_mir1 = 0.0, d_bl2 = 0.0, d_mir2 = 0.0;
    derivs(t, v_bl, v_mir, d_bl1, d_mir1);
    const double bl_p = v_bl + h * d_bl1;
    const double mir_p = v_mir + h * d_mir1;
    derivs(t + h, bl_p, mir_p, d_bl2, d_mir2);
    v_bl += 0.5 * h * (d_bl1 + d_bl2);
    v_mir += 0.5 * h * (d_mir1 + d_mir2);
    if (v_bl < 0.0) v_bl = 0.0;
    if (v_mir > vdd) v_mir = vdd;

    if (v_bl < v_sense) {
      // Interpolate the crossing, reference to WL activation start.
      const double dv = v_bl - prev_bl;
      const double frac = dv != 0.0 ? (v_sense - prev_bl) / dv : 1.0;
      const double t_cross = prev_t + frac * (t + h - prev_t);
      const double delay = t_cross - cfg_.wl_t0.si() + cfg_.sa_resolve.si();
      return Second(std::max(delay, 0.0));
    }
    prev_t = t + h;
    prev_bl = v_bl;
  }
  return cfg_.t_end;  // swing never developed
}

Second BlComputeModel::nominal_delay() const {
  return compute_delay(cell::CellMismatch{}, Volt(0.0), Volt(0.0), Volt(0.0), Second(0.0));
}

SampleSet bl_delay_distribution(BlScheme scheme, const BlComputeConfig& cfg,
                                const circuit::OperatingPoint& op, std::size_t trials,
                                std::uint64_t seed) {
  const BlComputeModel model(scheme, cfg, op);
  const Volt s_p0 = Mosfet::mismatch_sigma(cfg.w_p0_um);
  const Volt s_n1 = Mosfet::mismatch_sigma(cfg.w_n1_um);
  return circuit::monte_carlo_metric(
      [&](Rng& rng) {
        const auto mm = cell::CellMismatch::sample(rng, cfg.cell_geometry);
        const Volt d_p0(rng.normal(0.0, s_p0.si()));
        const Volt d_n1(rng.normal(0.0, s_n1.si()));
        const Volt sa_off(rng.normal(0.0, cfg.sa_offset_sigma.si()));
        const Second jitter(rng.normal(0.0, cfg.wl_jitter_sigma.si()));
        return model.compute_delay(mm, d_p0, d_n1, sa_off, jitter).si();
      },
      trials, seed);
}

}  // namespace bpim::timing
