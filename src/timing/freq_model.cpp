#include "timing/freq_model.hpp"

namespace bpim::timing {

CycleBreakdown FreqModel::breakdown(Volt vdd, bool with_separator, circuit::Corner corner,
                                    FaKind fa_kind) const {
  const double k = cfg_.scaling.factor(vdd, corner);
  CycleBreakdown b;
  b.bl_precharge = cfg_.bl_precharge * k;
  b.wl_activation = cfg_.wl_activation * k;
  b.bl_sensing = cfg_.bl_sensing * k;
  b.logic = fa_critical_path(fa_kind, cfg_.logic_bits, vdd, cfg_.fa, corner);
  const double wb_factor = with_separator ? 1.0 : cfg_.write_back_full_bl_factor;
  b.write_back = cfg_.write_back_separated * (k * wb_factor);
  return b;
}

Hertz FreqModel::fmax(Volt vdd, bool with_separator, circuit::Corner corner,
                      FaKind fa_kind) const {
  return frequency_of(breakdown(vdd, with_separator, corner, fa_kind).total());
}

}  // namespace bpim::timing
