#pragma once
// Access Disturb Margin (ADM) estimation.
//
// The paper compares its short-WL + boost scheme against WLUD at an
// *iso-failure-rate* of 2.5e-5 (Fig 2 caption). The dominant hazard during
// dual-WL bit-line computing is the Fig-1 mechanism: once the shared BL has
// been discharged by the '0' cell, the other accessed cell (storing '1')
// sees its '1' node pulled down through the access device toward the low BL.
//
//   * WLUD: the BL fully collapses while the (weakened) WL is still high --
//     a quasi-DC stress; failure happens in mismatch tails where the access
//     device wins against the pull-up.
//   * Short WL + boost: the WL is gone before the boost collapses the BL;
//     residual risk comes from the WL fall ramp overlapping early boost
//     triggering in fast-P0 tails.
//
// Both estimators share the Sram6tCell disturb primitives. A bisection
// helper finds the WLUD level that lands on a target failure rate (this is
// how the 0.55 V operating point of the baseline is justified).

#include <cstdint>

#include "circuit/montecarlo.hpp"
#include "timing/bl_compute.hpp"

namespace bpim::timing {

struct AdmConfig {
  double target_failure = 2.5e-5;
  std::size_t trials = 400000;
  std::uint64_t seed = 0xADCull;
};

/// Failure probability of a stored '1' during a WLUD dual-WL compute at the
/// given WL level (quasi-DC stress with the BL collapsed).
[[nodiscard]] circuit::FailureRateResult wlud_disturb_rate(const BlComputeConfig& cfg,
                                                           const circuit::OperatingPoint& op,
                                                           Volt wlud_level, std::size_t trials,
                                                           std::uint64_t seed);

/// Failure probability of a stored '1' during a short-WL + boost compute.
/// Walks the WL fall ramp against the (analytically estimated) BL droop and
/// boost collapse, checking the sag criterion at each step.
[[nodiscard]] circuit::FailureRateResult shortwl_disturb_rate(const BlComputeConfig& cfg,
                                                              const circuit::OperatingPoint& op,
                                                              std::size_t trials,
                                                              std::uint64_t seed);

/// WLUD level whose disturb rate equals `target` (bisection over the level).
/// Used to justify the 0.55 V iso-ADM comparison point.
[[nodiscard]] Volt calibrate_wlud_level(const BlComputeConfig& cfg,
                                        const circuit::OperatingPoint& op, double target,
                                        std::size_t trials_per_probe, std::uint64_t seed);

}  // namespace bpim::timing
