#include "timing/pipeline.hpp"

namespace bpim::timing {

PipelineTiming PipelineModel::timing(Volt vdd, bool with_separator,
                                     circuit::Corner corner) const {
  const CycleBreakdown b = freq_.breakdown(vdd, with_separator, corner);
  PipelineTiming t;
  t.latency = b.total();
  // BL occupancy: precharge + WL + sensing always; write-back only holds the
  // main BLs when the separator is absent (otherwise it retires onto the
  // short dummy segment in the shadow of the next op's logic phase).
  Second bl_busy = b.bl_precharge + b.wl_activation + b.bl_sensing;
  if (!with_separator) bl_busy += b.write_back;
  // The periphery (logic) must also drain before the next result arrives;
  // the issue interval is the slower of the two resources.
  t.issue_interval = bl_busy > b.logic ? bl_busy : b.logic;
  return t;
}

Hertz PipelineModel::throughput(Volt vdd, bool with_separator, circuit::Corner corner) const {
  return frequency_of(timing(vdd, with_separator, corner).issue_interval);
}

}  // namespace bpim::timing
