#include "timing/fa_timing.hpp"

#include <cmath>

#include "common/require.hpp"

namespace bpim::timing {

double DelayScaling::factor(Volt vdd, circuit::Corner corner) const {
  // A slow corner raises the effective threshold; fast lowers it. Use the
  // NMOS-side sign (logic paths here are dominated by NMOS evaluation).
  const int sign = circuit::corner_sign(corner, circuit::DeviceKind::Nmos);
  const double vth = vth_eff.si() + sign * corner_vth_shift.si();
  const double v = vdd.si();
  BPIM_REQUIRE(v > vth + 0.05, "supply too low for the delay-scaling fit");
  auto g = [&](double supply, double threshold) {
    return supply / std::pow(supply - threshold, alpha_eff);
  };
  return g(v, vth) / g(0.9, vth_eff.si());
}

Second fa_critical_path(FaKind kind, unsigned bits, Volt vdd, const FaTimingConfig& cfg,
                        circuit::Corner corner) {
  BPIM_REQUIRE(bits >= 1, "adder must have at least one bit");
  const double per_stage =
      (kind == FaKind::TransmissionGateSelect ? cfg.tg_stage : cfg.logic_stage).si();
  const double setup =
      (kind == FaKind::TransmissionGateSelect ? cfg.tg_setup : cfg.logic_setup).si();
  const double base = setup + static_cast<double>(bits) * per_stage;
  return Second(base * cfg.scaling.factor(vdd, corner));
}

double fa_speedup(unsigned bits, Volt vdd, const FaTimingConfig& cfg) {
  return fa_critical_path(FaKind::LogicGate, bits, vdd, cfg) /
         fa_critical_path(FaKind::TransmissionGateSelect, bits, vdd, cfg);
}

}  // namespace bpim::timing
