#pragma once
// Bit-line computation delay model (Fig 2 and Fig 7a of the paper).
//
// Simulates one bit-line pair column during a dual-WL compute where the
// result is '0' (exactly one accessed cell discharges -- the slowest and
// therefore timing-critical case), under one of two word-line schemes:
//
//   * Wlud           -- conventional assist: WL held at a reduced level
//                       (default 0.55 V) for the whole evaluation; the cell
//                       alone discharges the BL.
//   * ShortWlBoost   -- the paper's scheme: full-swing WL for a short pulse
//                       (default 140 ps), after which the LVT boost circuit
//                       (P0 mirror + N0/N1 pull-down) regeneratively
//                       completes the swing.
//
// The transient integrates two nodes, the bit line and the booster's mirror
// node, with alpha-power/EKV devices. Monte-Carlo runs resample cell and
// booster Vth mismatch, SA offset and WL pulse-width jitter.

#include <cstdint>

#include "cell/sram6t.hpp"
#include "circuit/montecarlo.hpp"
#include "circuit/process.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace bpim::timing {

enum class BlScheme { ShortWlBoost, Wlud };

[[nodiscard]] const char* to_string(BlScheme s);

struct BlComputeConfig {
  /// Cells on the bit line (array rows sharing the BL).
  std::size_t rows = 128;
  /// BL capacitance: per-cell (drain + wire share) plus fixed periphery.
  Farad c_bl_per_cell{0.18e-15};
  Farad c_bl_fixed{3.0e-15};

  // Word-line driver.
  Second wl_t0{10e-12};
  Second wl_rise{20e-12};
  Second wl_fall{25e-12};
  Second wl_pulse{140e-12};     ///< ShortWlBoost pulse width
  Volt wlud_level{0.55};        ///< Wlud DC level
  Second wl_jitter_sigma{5e-12};

  // Boost circuit (ShortWlBoost only). Widths in um; LVT devices.
  double w_p0_um = 0.60;
  double w_n1_um = 0.80;
  /// Conductance derating of the N0/N1 series stack.
  double n_stack_factor = 0.62;
  Farad c_mirror{0.9e-15};
  /// Effective extra Vt drop of the P0 droop sensor. The silicon circuit
  /// biases P0 through the N2/N3 network so a ~100-150 mV BL droop already
  /// turns the mirror path on; we fold that bias into an effective
  /// threshold reduction of the behavioural P0 device.
  Volt p0_sense_vt_drop{0.24};
  /// Fraction of the global corner Vth shift the booster's bias network
  /// cancels (replica-bias corner tracking of the sensing stage).
  double boost_corner_tracking = 0.85;

  // Single-ended sense amplifier.
  double sa_threshold_frac = 0.62;  ///< sense when v_bl < frac * VDD
  Second sa_resolve{45e-12};
  Volt sa_offset_sigma{12e-3};

  // Integration.
  Second dt{1.5e-12};
  Second t_end{9e-9};

  cell::CellGeometry cell_geometry{};
};

/// One-column transient evaluator.
class BlComputeModel {
 public:
  BlComputeModel(BlScheme scheme, const BlComputeConfig& cfg, const circuit::OperatingPoint& op);

  /// Total BL-computation delay (WL activation to SA output) for a given
  /// mismatch sample. Returns t_end if the swing never develops.
  [[nodiscard]] Second compute_delay(const cell::CellMismatch& cell_mm, Volt d_p0, Volt d_n1,
                                     Volt sa_offset, Second pulse_jitter) const;

  /// Nominal delay (no mismatch).
  [[nodiscard]] Second nominal_delay() const;

  [[nodiscard]] Farad bl_capacitance() const;
  [[nodiscard]] const BlComputeConfig& config() const { return cfg_; }
  [[nodiscard]] const circuit::OperatingPoint& op() const { return op_; }
  [[nodiscard]] BlScheme scheme() const { return scheme_; }

 private:
  BlScheme scheme_;
  BlComputeConfig cfg_;
  circuit::OperatingPoint op_;
};

/// Monte-Carlo distribution of the BL computation delay (seconds).
[[nodiscard]] SampleSet bl_delay_distribution(BlScheme scheme, const BlComputeConfig& cfg,
                                              const circuit::OperatingPoint& op,
                                              std::size_t trials, std::uint64_t seed);

}  // namespace bpim::timing
