#pragma once
// Strong unit types used at API boundaries of the simulator.
//
// Each quantity wraps a double holding the value in SI base units (volts,
// seconds, farads, joules, amperes, hertz, watts). The wrapper prevents the
// classic "is this delay in ps or ns?" class of bug; internal hot loops are
// free to extract the raw double via .si().

#include <cmath>
#include <compare>

namespace bpim {

template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double si) : si_(si) {}

  /// Value in SI base units.
  [[nodiscard]] constexpr double si() const { return si_; }

  constexpr Quantity& operator+=(Quantity o) { si_ += o.si_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { si_ -= o.si_; return *this; }
  constexpr Quantity& operator*=(double k) { si_ *= k; return *this; }
  constexpr Quantity& operator/=(double k) { si_ /= k; return *this; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity(a.si_ + b.si_); }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity(a.si_ - b.si_); }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.si_); }
  friend constexpr Quantity operator*(Quantity a, double k) { return Quantity(a.si_ * k); }
  friend constexpr Quantity operator*(double k, Quantity a) { return Quantity(a.si_ * k); }
  friend constexpr Quantity operator/(Quantity a, double k) { return Quantity(a.si_ / k); }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.si_ / b.si_; }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double si_ = 0.0;
};

struct VoltTag {};
struct SecondTag {};
struct FaradTag {};
struct JouleTag {};
struct AmpereTag {};
struct HertzTag {};
struct WattTag {};

using Volt = Quantity<VoltTag>;
using Second = Quantity<SecondTag>;
using Farad = Quantity<FaradTag>;
using Joule = Quantity<JouleTag>;
using Ampere = Quantity<AmpereTag>;
using Hertz = Quantity<HertzTag>;
using Watt = Quantity<WattTag>;

// ---- physically meaningful cross-unit helpers -----------------------------

/// Dynamic switching energy of capacitance c charged through swing v: C*V^2.
[[nodiscard]] constexpr Joule switching_energy(Farad c, Volt v) {
  return Joule(c.si() * v.si() * v.si());
}

/// Charge-sharing / discharge time for capacitance c to slew dv at current i.
[[nodiscard]] constexpr Second slew_time(Farad c, Volt dv, Ampere i) {
  return Second(c.si() * dv.si() / i.si());
}

/// Current that slews capacitance c by dv in time t.
[[nodiscard]] constexpr Ampere slew_current(Farad c, Volt dv, Second t) {
  return Ampere(c.si() * dv.si() / t.si());
}

[[nodiscard]] constexpr Hertz frequency_of(Second period) { return Hertz(1.0 / period.si()); }
[[nodiscard]] constexpr Second period_of(Hertz f) { return Second(1.0 / f.si()); }
[[nodiscard]] constexpr Watt power_from_energy(Joule e, Second t) { return Watt(e.si() / t.si()); }
[[nodiscard]] constexpr Joule energy_from_power(Watt p, Second t) { return Joule(p.si() * t.si()); }

// ---- convenience accessors in engineering units ---------------------------

[[nodiscard]] constexpr double in_mV(Volt v) { return v.si() * 1e3; }
[[nodiscard]] constexpr double in_ps(Second t) { return t.si() * 1e12; }
[[nodiscard]] constexpr double in_ns(Second t) { return t.si() * 1e9; }
[[nodiscard]] constexpr double in_fF(Farad c) { return c.si() * 1e15; }
[[nodiscard]] constexpr double in_fJ(Joule e) { return e.si() * 1e15; }
[[nodiscard]] constexpr double in_pJ(Joule e) { return e.si() * 1e12; }
[[nodiscard]] constexpr double in_uA(Ampere i) { return i.si() * 1e6; }
[[nodiscard]] constexpr double in_MHz(Hertz f) { return f.si() * 1e-6; }
[[nodiscard]] constexpr double in_GHz(Hertz f) { return f.si() * 1e-9; }
[[nodiscard]] constexpr double in_mW(Watt p) { return p.si() * 1e3; }

namespace literals {

constexpr Volt operator""_V(long double v) { return Volt(static_cast<double>(v)); }
constexpr Volt operator""_mV(long double v) { return Volt(static_cast<double>(v) * 1e-3); }
constexpr Second operator""_s(long double v) { return Second(static_cast<double>(v)); }
constexpr Second operator""_ns(long double v) { return Second(static_cast<double>(v) * 1e-9); }
constexpr Second operator""_ps(long double v) { return Second(static_cast<double>(v) * 1e-12); }
constexpr Farad operator""_fF(long double v) { return Farad(static_cast<double>(v) * 1e-15); }
constexpr Farad operator""_pF(long double v) { return Farad(static_cast<double>(v) * 1e-12); }
constexpr Joule operator""_fJ(long double v) { return Joule(static_cast<double>(v) * 1e-15); }
constexpr Joule operator""_pJ(long double v) { return Joule(static_cast<double>(v) * 1e-12); }
constexpr Ampere operator""_uA(long double v) { return Ampere(static_cast<double>(v) * 1e-6); }
constexpr Ampere operator""_nA(long double v) { return Ampere(static_cast<double>(v) * 1e-9); }
constexpr Hertz operator""_GHz(long double v) { return Hertz(static_cast<double>(v) * 1e9); }
constexpr Hertz operator""_MHz(long double v) { return Hertz(static_cast<double>(v) * 1e6); }

constexpr Volt operator""_V(unsigned long long v) { return Volt(static_cast<double>(v)); }
constexpr Volt operator""_mV(unsigned long long v) { return Volt(static_cast<double>(v) * 1e-3); }
constexpr Second operator""_ns(unsigned long long v) { return Second(static_cast<double>(v) * 1e-9); }
constexpr Second operator""_ps(unsigned long long v) { return Second(static_cast<double>(v) * 1e-12); }
constexpr Farad operator""_fF(unsigned long long v) { return Farad(static_cast<double>(v) * 1e-15); }
constexpr Joule operator""_fJ(unsigned long long v) { return Joule(static_cast<double>(v) * 1e-15); }
constexpr Ampere operator""_uA(unsigned long long v) { return Ampere(static_cast<double>(v) * 1e-6); }
constexpr Hertz operator""_GHz(unsigned long long v) { return Hertz(static_cast<double>(v) * 1e9); }
constexpr Hertz operator""_MHz(unsigned long long v) { return Hertz(static_cast<double>(v) * 1e6); }

}  // namespace literals
}  // namespace bpim
