#pragma once
// Deterministic random number generation for Monte-Carlo runs.
//
// xoshiro256++ with SplitMix64 seeding: identical streams on every platform
// (std:: distributions are implementation-defined, so normal/uniform variates
// are generated here explicitly). Every experiment seeds its own generator so
// results are reproducible run-to-run and independent of test ordering.

#include <cstdint>
#include <cmath>
#include <numbers>

namespace bpim {

/// xoshiro256++ PRNG (public-domain algorithm by Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's unbiased bounded generation (simple rejection variant).
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal variate (Box-Muller; one value per call, cached pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace bpim
