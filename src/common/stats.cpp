#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace bpim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  BPIM_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  BPIM_REQUIRE(hi > lo, "histogram range must be non-empty");
  BPIM_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (b >= counts_.size()) b = counts_.size() - 1;
  ++counts_[b];
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (const double x : xs) add(x);
}

double Histogram::bin_center(std::size_t b) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * w;
}

double Histogram::bin_fraction(std::size_t b) const {
  return total_ == 0 ? 0.0 : static_cast<double>(counts_.at(b)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width, const std::string& unit) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * static_cast<double>(width));
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "  " << bin_center(b) << unit << " |" << std::string(bar, '#');
    os << " " << counts_[b] << "\n";
  }
  if (underflow_ > 0) os << "  (" << underflow_ << " below range)\n";
  if (overflow_ > 0) os << "  (" << overflow_ << " above range)\n";
  return os.str();
}

}  // namespace bpim
