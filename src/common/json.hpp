#pragma once
// Minimal JSON reader -- the counterpart of common/json_writer.hpp.
//
// Parses the documents this repo itself emits (BENCH_*.json, trace-event
// exports, metrics snapshots) into a small DOM so tests can round-trip what
// the writers produce and tools can post-process artifacts without a
// third-party library (the container has none). Full JSON is accepted:
// nested containers, all escape sequences including \uXXXX with surrogate
// pairs (decoded to UTF-8), scientific-notation numbers.
//
// Numbers are held as double -- exact for the unsigned 53-bit counters and
// timestamps the emitters produce. Object member order is preserved.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bpim::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Value>;

  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_u64() const;  ///< number, rounded to nearest
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::vector<Member>& as_object() const;

  /// Object member lookup: nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Object member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// Array element; throws std::runtime_error out of range.
  [[nodiscard]] const Value& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;  ///< array/object element count

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> elems);
  static Value make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

/// Parse a complete document (one value plus surrounding whitespace).
/// Throws std::runtime_error with the byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Parse a file; throws std::runtime_error when unreadable or malformed.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace bpim::json
