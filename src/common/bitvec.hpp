#pragma once
// Dynamic bit vector used for SRAM row contents and operand words.
//
// The functional simulator is bit-exact: every row of the array and every
// peripheral latch is a BitVector. Bit 0 is the least significant bit of the
// word it encodes.

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace bpim {

class Rng;

class BitVector {
 public:
  BitVector() = default;
  /// All-zero vector of `size` bits.
  explicit BitVector(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}
  /// Vector of `size` bits initialised from the low bits of `value`.
  BitVector(std::size_t size, std::uint64_t value) : BitVector(size) {
    BPIM_REQUIRE(size >= 64 || value < (1ull << size), "value does not fit in size bits");
    if (!words_.empty()) words_[0] = value;
    trim();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    BPIM_REQUIRE(i < size_, "bit index out of range");
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i, bool v) {
    BPIM_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = 1ull << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  void fill(bool v) {
    for (auto& w : words_) w = v ? ~0ull : 0ull;
    trim();
  }

  void randomize(Rng& rng);

  /// Low 64 bits as an integer (vector may be shorter than 64 bits).
  [[nodiscard]] std::uint64_t to_u64() const {
    return words_.empty() ? 0 : words_[0];
  }

  /// Bits [pos, pos+len) as a new vector. len may run past the end
  /// conceptually only if pos+len <= size.
  [[nodiscard]] BitVector slice(std::size_t pos, std::size_t len) const {
    BPIM_REQUIRE(pos + len <= size_, "slice out of range");
    BitVector out(len);
    for (std::size_t i = 0; i < len; ++i) out.set(i, get(pos + i));
    return out;
  }

  /// Overwrites bits [pos, pos+src.size()) with src.
  void patch(std::size_t pos, const BitVector& src) {
    BPIM_REQUIRE(pos + src.size() <= size_, "patch out of range");
    for (std::size_t i = 0; i < src.size(); ++i) set(pos + i, src.get(i));
  }

  /// Logical shift left by one (bit i+1 <- bit i, bit 0 <- 0), in place.
  void shl1() {
    bool carry = false;
    for (auto& w : words_) {
      const bool next_carry = (w >> 63) & 1u;
      w = (w << 1) | (carry ? 1u : 0u);
      carry = next_carry;
    }
    trim();
  }

  [[nodiscard]] std::size_t popcount() const;

  BitVector& operator&=(const BitVector& o) { return apply(o, [](std::uint64_t a, std::uint64_t b) { return a & b; }); }
  BitVector& operator|=(const BitVector& o) { return apply(o, [](std::uint64_t a, std::uint64_t b) { return a | b; }); }
  BitVector& operator^=(const BitVector& o) { return apply(o, [](std::uint64_t a, std::uint64_t b) { return a ^ b; }); }

  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  [[nodiscard]] BitVector operator~() const {
    BitVector out = *this;
    for (auto& w : out.words_) w = ~w;
    out.trim();
    return out;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// MSB-first binary string, e.g. "1010" for the 4-bit value 10.
  [[nodiscard]] std::string to_string() const;

 private:
  template <class F>
  BitVector& apply(const BitVector& o, F f) {
    BPIM_REQUIRE(size_ == o.size_, "size mismatch in bitwise op");
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] = f(words_[k], o.words_[k]);
    trim();
    return *this;
  }

  void trim() {
    const std::size_t rem = size_ % 64;
    if (rem != 0 && !words_.empty()) words_.back() &= (~0ull >> (64 - rem));
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bpim
