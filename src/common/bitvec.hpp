#pragma once
// Dynamic bit vector used for SRAM row contents and operand words.
//
// The functional simulator is bit-exact: every row of the array and every
// peripheral latch is a BitVector. Bit 0 is the least significant bit of the
// word it encodes.
//
// Storage is packed little-endian into 64-bit words, and the word-level API
// (word/set_word, extract_bits/deposit_bits, shl1_in_fields,
// for_each_set_bit) is the substrate of the SWAR datapath: the hardware
// switches all columns in one cycle, so the simulator models that cycle
// with whole-word bitwise arithmetic instead of per-bit loops. The word
// accessors bounds-check with BPIM_DCHECK (debug builds only); the per-bit
// get/set and slice/patch keep their throwing BPIM_REQUIRE contract.

#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace bpim {

class Rng;

class BitVector {
 public:
  BitVector() = default;
  /// All-zero vector of `size` bits.
  explicit BitVector(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}
  /// Vector of `size` bits initialised from the low bits of `value`.
  BitVector(std::size_t size, std::uint64_t value) : BitVector(size) {
    BPIM_REQUIRE(fits_u64(value, size), "value does not fit in size bits");
    if (!words_.empty()) words_[0] = value;
    trim();
  }

  /// True when `value` fits in `bits` bits. Shift-safe for every width
  /// (the seed's `value < (1ull << size)` form had to skip size >= 64,
  /// where the shift is UB); at 64 and above every u64 fits.
  [[nodiscard]] static constexpr bool fits_u64(std::uint64_t value, std::size_t bits) {
    return bits >= 64 || (value >> bits) == 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Resize to `size` bits, all zero; reuses the existing word storage.
  void reset(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  [[nodiscard]] bool get(std::size_t i) const {
    BPIM_REQUIRE(i < size_, "bit index out of range");
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i, bool v) {
    BPIM_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = 1ull << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  // ---- word-level access (the SWAR hot path) ------------------------------

  /// Number of 64-bit storage words.
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  /// 64-bit storage word k; bits past size() in the last word are zero.
  [[nodiscard]] std::uint64_t word(std::size_t k) const {
    BPIM_DCHECK(k < words_.size(), "word index out of range");
    return words_[k];
  }

  /// Overwrite storage word k. Bits past size() are masked off.
  void set_word(std::size_t k, std::uint64_t w) {
    BPIM_DCHECK(k < words_.size(), "word index out of range");
    words_[k] = w;
    if (k + 1 == words_.size()) trim();
  }

  /// Bits [pos, pos+len) as a u64 (len <= 64), crossing word boundaries.
  [[nodiscard]] std::uint64_t extract_bits(std::size_t pos, std::size_t len) const {
    BPIM_DCHECK(len <= 64 && pos + len <= size_, "extract_bits out of range");
    if (len == 0) return 0;
    const std::size_t k = pos / 64;
    const std::size_t off = pos % 64;
    std::uint64_t v = words_[k] >> off;
    if (off + len > 64) v |= words_[k + 1] << (64 - off);
    return len == 64 ? v : v & ((1ull << len) - 1);
  }

  /// Overwrite bits [pos, pos+len) with the low len bits of `value`.
  void deposit_bits(std::size_t pos, std::size_t len, std::uint64_t value) {
    BPIM_DCHECK(len <= 64 && pos + len <= size_, "deposit_bits out of range");
    if (len == 0) return;
    const std::uint64_t m = len == 64 ? ~0ull : (1ull << len) - 1;
    value &= m;
    const std::size_t k = pos / 64;
    const std::size_t off = pos % 64;
    words_[k] = (words_[k] & ~(m << off)) | (value << off);
    if (off + len > 64) {
      const std::uint64_t mh = (1ull << (off + len - 64)) - 1;
      words_[k + 1] = (words_[k + 1] & ~mh) | (value >> (64 - off));
    }
  }

  /// Call fn(index) for every set bit, in ascending index order.
  template <class F>
  void for_each_set_bit(F&& fn) const {
    for (std::size_t k = 0; k < words_.size(); ++k) {
      std::uint64_t w = words_[k];
      while (w != 0) {
        fn(k * 64 + static_cast<std::size_t>(std::countr_zero(w)));
        w &= w - 1;
      }
    }
  }

  void fill(bool v) {
    for (auto& w : words_) w = v ? ~0ull : 0ull;
    trim();
  }

  void randomize(Rng& rng);

  /// Low 64 bits as an integer (vector may be shorter than 64 bits).
  [[nodiscard]] std::uint64_t to_u64() const {
    return words_.empty() ? 0 : words_[0];
  }

  /// Bits [pos, pos+len) as a new vector.
  [[nodiscard]] BitVector slice(std::size_t pos, std::size_t len) const {
    BPIM_REQUIRE(pos + len <= size_, "slice out of range");
    BitVector out(len);
    for (std::size_t o = 0; o < len; o += 64) {
      const std::size_t n = len - o < 64 ? len - o : 64;
      out.deposit_bits(o, n, extract_bits(pos + o, n));
    }
    return out;
  }

  /// Overwrites bits [pos, pos+src.size()) with src.
  void patch(std::size_t pos, const BitVector& src) {
    BPIM_REQUIRE(pos + src.size() <= size_, "patch out of range");
    for (std::size_t o = 0; o < src.size(); o += 64) {
      const std::size_t n = src.size() - o < 64 ? src.size() - o : 64;
      deposit_bits(pos + o, n, src.extract_bits(o, n));
    }
  }

  /// Logical shift left by one (bit i+1 <- bit i, bit 0 <- 0), in place.
  void shl1() {
    std::uint64_t carry = 0;
    for (auto& w : words_) {
      const std::uint64_t next_carry = w >> 63;
      w = (w << 1) | carry;
      carry = next_carry;
    }
    trim();
  }

  /// Shift left by one within every `field`-bit field (fields start at bit
  /// 0): bit k*field of each field becomes 0, the field's MSB is dropped.
  /// `field` must divide size(). This is the write-back propagation path of
  /// the peripheral (<<1 per precision word) as one word-parallel op.
  void shl1_in_fields(std::size_t field) {
    BPIM_REQUIRE(field >= 1 && size_ % field == 0, "field width must divide the vector size");
    if (field <= 64 && 64 % field == 0) {
      // Fields never straddle a word, so no cross-word carry exists and one
      // mask clears every field-LSB position.
      const std::uint64_t lsb_mask = periodic_mask(field);
      for (auto& w : words_) w = (w << 1) & ~lsb_mask;
      trim();
      return;
    }
    // Fields straddle words: a whole-vector shift has the right intra-field
    // behaviour; only the field-LSB positions need clearing afterwards.
    shl1();
    for (std::size_t p = 0; p < size_; p += field) set(p, false);
  }

  /// Word with one bit set every `period` positions (bit 0, period, ...).
  /// `period` must divide 64.
  [[nodiscard]] static std::uint64_t periodic_mask(std::size_t period) {
    BPIM_DCHECK(period >= 1 && period <= 64 && 64 % period == 0, "period must divide 64");
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < 64; i += period) m |= 1ull << i;
    return m;
  }

  /// Sentinel for "no set bit anywhere" (field_max_set_bit).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Highest in-field index of any set bit, maximised over all `field`-bit
  /// fields (fields start at bit 0; `field` must divide size()). Returns
  /// npos when the vector is all zero. The word-parallel effectual-bit scan
  /// of the adaptive MULT path: OR every word together, fold fields onto the
  /// low field, take the msb -- O(words), no per-field loop.
  [[nodiscard]] std::size_t field_max_set_bit(std::size_t field) const {
    BPIM_REQUIRE(field >= 1 && size_ % field == 0, "field width must divide the vector size");
    if (field <= 64 && 64 % field == 0) {
      std::uint64_t acc = 0;
      for (const auto w : words_) acc |= w;
      if (acc == 0) return npos;
      // Fields never straddle a word: fold every field down onto bits
      // [0, field) (the shifts are field multiples, so in-field positions
      // are preserved), then the msb of the residue is the answer.
      for (std::size_t s = field; s < 64; s <<= 1) acc |= acc >> s;
      const std::uint64_t low = field == 64 ? acc : acc & ((1ull << field) - 1);
      return static_cast<std::size_t>(std::bit_width(low)) - 1;
    }
    // Fields straddle words: walk the set bits (the fallback mirrors
    // shl1_in_fields' split; exercised only by tests, never the datapath).
    std::size_t best = npos;
    for_each_set_bit([&](std::size_t i) {
      const std::size_t in_field = i % field;
      if (best == npos || in_field > best) best = in_field;
    });
    return best;
  }

  /// One-bit-per-field zero detector: a vector of size() bits whose bit
  /// k*field is set iff field k (bits [k*field, (k+1)*field)) is all zero.
  /// All other positions are zero. `field` must divide size().
  [[nodiscard]] BitVector zero_field_mask(std::size_t field) const {
    BPIM_REQUIRE(field >= 1 && size_ % field == 0, "field width must divide the vector size");
    BitVector out(size_);
    if (field <= 64 && 64 % field == 0) {
      // Per word: OR-fold each field onto its own LSB (shifts below `field`
      // never import a *lower*-indexed field's bits into an LSB position),
      // invert, keep the LSB lattice. set_word trims phantom fields past
      // size() in the last word.
      const std::uint64_t lsb_mask = periodic_mask(field);
      for (std::size_t k = 0; k < words_.size(); ++k) {
        std::uint64_t w = words_[k];
        for (std::size_t s = 1; s < field; s <<= 1) w |= w >> s;
        out.set_word(k, ~w & lsb_mask);
      }
      return out;
    }
    for (std::size_t p = 0; p < size_; p += field) {
      bool zero = true;
      for (std::size_t o = 0; o < field && zero; o += 64) {
        const std::size_t n = field - o < 64 ? field - o : 64;
        zero = extract_bits(p + o, n) == 0;
      }
      if (zero) out.set(p, true);
    }
    return out;
  }

  [[nodiscard]] std::size_t popcount() const;

  BitVector& operator&=(const BitVector& o) { return apply(o, [](std::uint64_t a, std::uint64_t b) { return a & b; }); }
  BitVector& operator|=(const BitVector& o) { return apply(o, [](std::uint64_t a, std::uint64_t b) { return a | b; }); }
  BitVector& operator^=(const BitVector& o) { return apply(o, [](std::uint64_t a, std::uint64_t b) { return a ^ b; }); }

  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  [[nodiscard]] BitVector operator~() const {
    BitVector out = *this;
    for (auto& w : out.words_) w = ~w;
    out.trim();
    return out;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// MSB-first binary string, e.g. "1010" for the 4-bit value 10.
  [[nodiscard]] std::string to_string() const;

 private:
  template <class F>
  BitVector& apply(const BitVector& o, F f) {
    BPIM_REQUIRE(size_ == o.size_, "size mismatch in bitwise op");
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] = f(words_[k], o.words_[k]);
    trim();
    return *this;
  }

  void trim() {
    const std::size_t rem = size_ % 64;
    if (rem != 0 && !words_.empty()) words_.back() &= (~0ull >> (64 - rem));
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bpim
