#include "common/json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bpim::json {

namespace {

[[noreturn]] void fail_kind(const char* want, Value::Kind got) {
  static constexpr const char* kNames[] = {"null", "bool", "number", "string", "array",
                                           "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           kNames[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) fail_kind("bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) fail_kind("number", kind_);
  return num_;
}

std::uint64_t Value::as_u64() const {
  const double d = as_number();
  if (d < 0.0) throw std::runtime_error("json: negative number where u64 expected");
  return static_cast<std::uint64_t>(std::llround(d));
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) fail_kind("string", kind_);
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::Array) fail_kind("array", kind_);
  return arr_;
}

const std::vector<Value::Member>& Value::as_object() const {
  if (kind_ != Kind::Object) fail_kind("object", kind_);
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : obj_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr)
    throw std::runtime_error("json: missing object member \"" + std::string(key) + "\"");
  return *v;
}

const Value& Value::at(std::size_t index) const {
  const auto& a = as_array();
  if (index >= a.size()) throw std::runtime_error("json: array index out of range");
  return a[index];
}

std::size_t Value::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  fail_kind("array", kind_);
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> elems) {
  Value v;
  v.kind_ = Kind::Array;
  v.arr_ = std::move(elems);
  return v;
}

Value Value::make_object(std::vector<Member> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.obj_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over one string_view. Depth-capped so a hostile
/// bracket run cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos_;
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("malformed literal");
    pos_ += lit.size();
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value::make_string(parse_string());
      case 't':
        expect_literal("true");
        return Value::make_bool(true);
      case 'f':
        expect_literal("false");
        return Value::make_bool(false);
      case 'n':
        expect_literal("null");
        return Value::make_null();
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    ++pos_;  // '{'
    std::vector<Value::Member> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') return Value::make_object(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    ++pos_;  // '['
    std::vector<Value> elems;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(elems));
    }
    for (;;) {
      elems.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return Value::make_array(std::move(elems));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == '+' ||
                      peek() == '-' || peek() == 'e' || peek() == 'E'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("malformed number");
    return Value::make_number(d);
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("malformed \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':  out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/':  out.push_back('/'); break;
        case 'b':  out.push_back('\b'); break;
        case 'f':  out.push_back('\f'); break;
        case 'n':  out.push_back('\n'); break;
        case 'r':  out.push_back('\r'); break;
        case 't':  out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow for a full pair.
            if (next() != '\\' || next() != 'u') fail("unpaired surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace bpim::json
