#pragma once
// Precondition checking for public API entry points.
//
// BPIM_REQUIRE throws std::invalid_argument with file:line context; it is for
// caller errors and stays active in release builds (the simulator is not in
// any inner loop tight enough for this to matter). Internal invariants use
// plain assert().

#include <stdexcept>
#include <string>

namespace bpim::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed (" + expr + "): " + msg);
}

}  // namespace bpim::detail

#define BPIM_REQUIRE(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) ::bpim::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// BPIM_DCHECK guards the word-level hot accessors (BitVector::word,
// extract_bits, deposit_bits, ...): same contract as BPIM_REQUIRE in debug
// builds, compiled out under NDEBUG so the SWAR datapath reduces to
// straight-line word arithmetic. Public entry points that promise to throw
// on caller errors keep BPIM_REQUIRE.
#ifdef NDEBUG
#define BPIM_DCHECK(expr, msg) ((void)0)
#else
#define BPIM_DCHECK(expr, msg) BPIM_REQUIRE(expr, msg)
#endif
