#pragma once
// Shared JSON emission (promoted from bench/bench_json.hpp now that the
// observability layer emits JSON too: BENCH_*.json artifacts, trace-event
// files, metrics snapshots).
//
// The writer keeps the schemas the benches emit, centralises comma /
// precision / escaping handling, and is dependency-free on purpose (the
// container has no JSON library, and the artifacts are flat enough that one
// is not worth vendoring). The matching reader lives in common/json.hpp.
//
// Usage:
//   JsonWriter w(path);
//   w.begin_object();
//   w.field("schema", "bpim.residency.v1");
//   w.key("sweep"); w.begin_array();
//     w.begin_object(); w.field("x", 1); w.end_object();
//   w.end_array();
//   w.end_object();   // newline-terminated on the way out
//
// Values: strings (escaped, including control characters), bools, integers,
// doubles (fixed, default 6 digits), and numeric vectors. Layout is
// pretty-printed, two-space indent, one key or element per line.

#include <fstream>
#include <iomanip>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace bpim {

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path, int precision = 6)
      : file_(path), out_(&file_), precision_(precision) {}
  /// Write into a caller-owned stream (trace export, tests).
  explicit JsonWriter(std::ostream& out, int precision = 6)
      : out_(&out), precision_(precision) {}

  [[nodiscard]] bool ok() const { return out_->good(); }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Key of the next value inside an object.
  void key(std::string_view k) {
    separate();
    *out_ << '"';
    escape(k);
    *out_ << "\": ";
    pending_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    *out_ << '"';
    escape(v);
    *out_ << '"';
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    *out_ << (v ? "true" : "false");
  }
  void value(double v) {
    separate();
    *out_ << std::fixed << std::setprecision(precision_) << v;
  }
  template <class T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                                      int> = 0>
  void value(T v) {
    separate();
    *out_ << v;
  }

  /// key + scalar value in one go.
  template <class T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// key + flat numeric array (one line per element).
  template <class T>
  void field(std::string_view k, const std::vector<T>& values) {
    key(k);
    begin_array();
    for (const T& v : values) value(v);
    end_array();
  }

 private:
  void open(char c) {
    separate();
    *out_ << c;
    ++depth_;
    first_ = true;
  }

  void close(char c) {
    --depth_;
    if (!first_) newline();
    *out_ << c;
    first_ = false;
    if (depth_ == 0) *out_ << '\n';
  }

  /// Comma/newline bookkeeping before a key, value, or container. A value
  /// directly after its key stays on the key's line.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (depth_ > 0) {
      if (!first_) *out_ << ',';
      newline();
    }
    first_ = false;
  }

  void newline() {
    *out_ << '\n';
    for (int i = 0; i < depth_; ++i) *out_ << "  ";
  }

  void escape(std::string_view s) {
    static constexpr char kHex[] = "0123456789abcdef";
    for (const char ch : s) {
      const auto c = static_cast<unsigned char>(ch);
      switch (c) {
        case '"':  *out_ << "\\\""; break;
        case '\\': *out_ << "\\\\"; break;
        case '\n': *out_ << "\\n"; break;
        case '\t': *out_ << "\\t"; break;
        case '\r': *out_ << "\\r"; break;
        case '\b': *out_ << "\\b"; break;
        case '\f': *out_ << "\\f"; break;
        default:
          // Remaining control characters must be \u-escaped or the emitted
          // document is not JSON at all.
          if (c < 0x20)
            *out_ << "\\u00" << kHex[c >> 4] << kHex[c & 0xF];
          else
            *out_ << ch;
      }
    }
  }

  std::ofstream file_;  ///< backing stream of the path constructor (else unused)
  std::ostream* out_;
  int precision_;
  int depth_ = 0;
  bool first_ = true;
  bool pending_key_ = false;
};

}  // namespace bpim
