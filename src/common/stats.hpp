#pragma once
// Statistics helpers for Monte-Carlo experiments: running moments (Welford),
// percentiles, and a fixed-bin histogram with ASCII rendering used by the
// Fig. 2 reproduction bench.

#include <cstddef>
#include <string>
#include <vector>

namespace bpim {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with percentile queries (sorts lazily).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,1]; linear interpolation between order statistics. Degenerate
  /// sets are well-defined: an empty set yields 0.0 for any p (matching
  /// mean()), a single sample is every percentile of itself.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double min() const { return percentile(0.0); }
  [[nodiscard]] double max() const { return percentile(1.0); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-range, fixed-bin-count histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin_count(std::size_t b) const { return counts_.at(b); }
  [[nodiscard]] double bin_center(std::size_t b) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Fraction of all samples in bin b.
  [[nodiscard]] double bin_fraction(std::size_t b) const;

  /// Multi-line ASCII bar rendering (one row per bin), labelled with centers.
  [[nodiscard]] std::string render(std::size_t width = 50, const std::string& unit = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace bpim
