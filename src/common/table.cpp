#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace bpim {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  BPIM_REQUIRE(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  BPIM_REQUIRE(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string TextTable::ratio(double v, int decimals) { return num(v, decimals) + "x"; }

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 != cells.size()) os << "  ";
    }
    os << "\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 != header_.size()) os << "  ";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 != cells.size()) os << ",";
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " " << std::string(title.size() < 70 ? 70 - title.size() : 4, '=')
     << "\n\n";
}

}  // namespace bpim
