#pragma once
// Console table formatting for the benchmark binaries, which print
// paper-shaped tables (rows/series matching the DAC'20 evaluation section),
// plus a CSV escape hatch for plotting.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bpim {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule, e.g.
///   Op     2-bit   4-bit
///   -----  ------  ------
///   ADD    68.2    138.4
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);

  /// Formats a double with `decimals` fraction digits.
  static std::string num(double v, int decimals = 2);
  /// Formats as "12.3x" style ratio.
  static std::string ratio(double v, int decimals = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used to delimit experiments in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bpim
