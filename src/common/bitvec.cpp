#include "common/bitvec.hpp"

#include <bit>

#include "common/rng.hpp"

namespace bpim {

void BitVector::randomize(Rng& rng) {
  for (auto& w : words_) w = rng.next_u64();
  trim();
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = size_; i-- > 0;) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace bpim
