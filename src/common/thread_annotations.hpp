#pragma once
// Clang Thread Safety Analysis wrappers: an annotated Mutex / MutexLock /
// CondVar trio plus the attribute macros, so every locked class in the tree
// states its lock discipline in a form the compiler can *prove* at build
// time (clang -Wthread-safety; see the CI `thread-safety` job). Under any
// other compiler the attributes expand to nothing and the wrappers are
// zero-cost veneers over <mutex> / <condition_variable>.
//
// Usage pattern (see engine::ThreadPool for the canonical migration):
//
//   class Account {
//     void withdraw(int n) BPIM_EXCLUDES(mutex_) {
//       MutexLock lk(mutex_);
//       while (balance_ < n) funds_cv_.wait(mutex_);
//       balance_ -= n;
//     }
//     Mutex mutex_;
//     CondVar funds_cv_;
//     int balance_ BPIM_GUARDED_BY(mutex_) = 0;
//   };
//
// Two deliberate restrictions keep the annotations provable:
//   * CondVar has no predicate-taking wait: the analysis cannot see that a
//     predicate lambda runs with the lock held, so guarded reads inside it
//     would be flagged. Write the `while (!pred) cv.wait(mutex_);` loop in
//     the annotated function instead.
//   * MutexLock is the only scoped lock (std::lock_guard/unique_lock carry
//     no annotations). It supports early unlock() and re-lock() so the
//     unlock-before-notify idiom stays expressible.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define BPIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BPIM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability (names it in diagnostics).
#define BPIM_CAPABILITY(x) BPIM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class that acquires a capability for its lifetime.
#define BPIM_SCOPED_CAPABILITY BPIM_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be accessed while holding the given mutex.
#define BPIM_GUARDED_BY(x) BPIM_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding the given mutex.
#define BPIM_PT_GUARDED_BY(x) BPIM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the given mutex(es) when calling.
#define BPIM_REQUIRES(...) BPIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es) when calling (the function
/// acquires them itself; guards against self-deadlock).
#define BPIM_EXCLUDES(...) BPIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define BPIM_ACQUIRE(...) BPIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define BPIM_RELEASE(...) BPIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define BPIM_TRY_ACQUIRE(...) BPIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define BPIM_ASSERT_CAPABILITY(x) BPIM_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given capability.
#define BPIM_RETURN_CAPABILITY(x) BPIM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; must not appear in src/engine or src/serve (CI greps).
#define BPIM_NO_THREAD_SAFETY_ANALYSIS BPIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bpim {

class CondVar;

/// std::mutex with capability annotations.
class BPIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BPIM_ACQUIRE() { m_.lock(); }
  void unlock() BPIM_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() BPIM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over a Mutex (the annotated stand-in for std::lock_guard /
/// std::unique_lock). Supports early unlock() and re-lock().
class BPIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) BPIM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() BPIM_RELEASE() {
    if (held_) m_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() BPIM_RELEASE() {
    m_.unlock();
    held_ = false;
  }
  void lock() BPIM_ACQUIRE() {
    m_.lock();
    held_ = true;
  }

 private:
  Mutex& m_;
  bool held_ = true;
};

/// Condition variable bound to the annotated Mutex. Waits atomically
/// release the mutex and reacquire it before returning, so as far as the
/// static analysis (and the caller) is concerned the capability is held
/// across the call -- which is exactly the std::condition_variable
/// contract. No predicate overloads; loop in the caller (see file header).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Caller must hold `m`; still holds it on return.
  void wait(Mutex& m) BPIM_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait; returns std::cv_status::timeout when `deadline` passed.
  template <class Clock, class Duration>
  std::cv_status wait_until(Mutex& m,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      BPIM_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace bpim
