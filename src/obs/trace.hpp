#pragma once
// Low-overhead tracing: spans and instant events on per-thread lock-free
// rings, exported as Chrome/Perfetto trace-event JSON (open the file at
// ui.perfetto.dev).
//
// Design constraints, in order:
//   1. Disabled cost ~ one relaxed atomic load + branch per site. The
//      macros additionally compile out entirely under -DBPIM_OBS_ENABLED=0
//      (CMake option BPIM_OBS=OFF), leaving zero code at every site.
//   2. Enabled cost is one bounded SPSC ring write: each thread owns its
//      ring (single producer), export is the single consumer, so recording
//      never takes a lock and never allocates. A full ring drops the event
//      and counts it (TraceSession::dropped()) instead of blocking or
//      overwriting a slot the exporter may be reading.
//   3. Event names and arg keys must be string literals (or otherwise
//      outlive the session) -- the ring stores the pointers.
//
// Tracks: every thread gets its own timeline row automatically. Work that
// migrates across host threads (a lane whose batches run on pool workers,
// an engine shared by callers) records onto a *synthetic* track instead:
// `register_track("lane 0")` returns a TrackId, and any thread may stamp
// events onto it. Cross-track request lineage uses async begin/end pairs
// (one "request" bar per in-flight request) plus flow arrows
// (submit -> executing batch).
//
// Timestamps are steady-clock nanoseconds from one session epoch;
// the exporter converts to the microseconds Perfetto expects.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

#ifndef BPIM_OBS_ENABLED
#define BPIM_OBS_ENABLED 1
#endif

namespace bpim::obs {

/// Timeline row an event lands on. 0 = the recording thread's own row;
/// values from TraceSession::register_track() name shared synthetic rows.
using TrackId = std::uint32_t;

/// Up to kMax numeric key/value annotations on one event. Keys must be
/// string literals (stored by pointer). Extra adds beyond kMax are dropped.
struct EventArgs {
  static constexpr int kMax = 4;
  struct KV {
    const char* key = nullptr;
    double value = 0.0;
  };

  EventArgs() = default;
  EventArgs(std::initializer_list<KV> list) {
    for (const KV& kv : list) add(kv.key, kv.value);
  }

  void add(const char* key, double value) {
    if (count < kMax) kv[count++] = {key, value};
  }

  KV kv[kMax];
  int count = 0;
};

enum class EventType : std::uint8_t {
  Complete,     ///< span: [begin_ns, end_ns] bar ("X")
  Instant,      ///< point-in-time marker ("i")
  AsyncBegin,   ///< start of an id-keyed async bar ("b")
  AsyncEnd,     ///< end of an id-keyed async bar ("e")
  FlowStart,    ///< arrow tail, binds to the enclosing span ("s")
  FlowFinish,   ///< arrow head ("f")
};

/// One fixed-size ring slot. POD on purpose: recording is a struct copy.
struct Event {
  EventType type = EventType::Instant;
  TrackId track = 0;
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;  ///< Complete only
  std::uint64_t id = 0;      ///< async / flow correlation key
  EventArgs args;
};

/// The process-wide trace collector. All recording goes through
/// TraceSession::global(); separate instances exist only for tests.
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  static TraceSession& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-macro-program events are high volume; off unless a bench asks.
  void set_macro_events(bool on) { macro_events_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool macro_events_on() const {
    return enabled() && macro_events_.load(std::memory_order_relaxed);
  }

  /// Create a named synthetic timeline row (e.g. "lane 0", "engine 1").
  /// Any thread may then record events onto the returned id.
  [[nodiscard]] TrackId register_track(std::string name) BPIM_EXCLUDES(mutex_);

  /// Name the calling thread's own row in the exported timeline.
  void set_thread_name(std::string name) BPIM_EXCLUDES(mutex_);

  /// Nanoseconds since the session epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  // ---- recording (no-ops while disabled) --------------------------------
  void complete_event(const char* name, TrackId track, std::uint64_t begin_ns,
                      std::uint64_t end_ns, const EventArgs& args = {})
      BPIM_EXCLUDES(mutex_);
  void instant(const char* name, TrackId track = 0, const EventArgs& args = {})
      BPIM_EXCLUDES(mutex_);
  void async_begin(const char* name, std::uint64_t id, const EventArgs& args = {})
      BPIM_EXCLUDES(mutex_);
  void async_end(const char* name, std::uint64_t id, const EventArgs& args = {})
      BPIM_EXCLUDES(mutex_);
  void flow_start(const char* name, std::uint64_t id, TrackId track = 0)
      BPIM_EXCLUDES(mutex_);
  void flow_finish(const char* name, std::uint64_t id, TrackId track = 0)
      BPIM_EXCLUDES(mutex_);

  // ---- export -----------------------------------------------------------
  /// Drain every ring into Chrome trace-event JSON. Consumes the drained
  /// events (a second export only sees what was recorded since); track and
  /// thread metadata is re-emitted every time so each export stands alone.
  void export_json(std::ostream& out) BPIM_EXCLUDES(mutex_);
  /// export_json to a file; false when the file cannot be written.
  bool export_file(const std::string& path) BPIM_EXCLUDES(mutex_);

  /// Events lost to full rings since construction.
  [[nodiscard]] std::uint64_t dropped() const BPIM_EXCLUDES(mutex_);

 private:
  struct Ring;

  Ring& local_ring() BPIM_EXCLUDES(mutex_);
  void emit(const Event& ev) BPIM_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> macro_events_{false};
  const std::uint64_t epoch_ns_;

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ BPIM_GUARDED_BY(mutex_);
  std::vector<std::string> track_names_ BPIM_GUARDED_BY(mutex_);
  std::uint32_t next_tid_ BPIM_GUARDED_BY(mutex_) = 2;  ///< 1 is reserved (pid row)
};

/// RAII span on the global session: the constructor samples the clock, the
/// destructor records one Complete event covering the scope. All work is
/// skipped when tracing is disabled at construction time.
class Span {
 public:
  explicit Span(const char* name, TrackId track = 0)
      : session_(TraceSession::global()) {
    if (session_.enabled()) {
      name_ = name;
      track_ = track;
      begin_ns_ = session_.now_ns();
    }
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric annotation (no-op when the span is inert).
  void arg(const char* key, double value) {
    if (name_ != nullptr) args_.add(key, value);
  }

  /// Close the span early (idempotent; the destructor then does nothing).
  void finish() {
    if (name_ == nullptr) return;
    session_.complete_event(name_, track_, begin_ns_, session_.now_ns(), args_);
    name_ = nullptr;
  }

 private:
  TraceSession& session_;
  const char* name_ = nullptr;
  TrackId track_ = 0;
  std::uint64_t begin_ns_ = 0;
  EventArgs args_;
};

/// Compile-out stand-in for Span under BPIM_OBS_ENABLED=0.
struct NullSpan {
  explicit NullSpan(const char*, TrackId = 0) {}
  void arg(const char*, double) {}
  void finish() {}
};

}  // namespace bpim::obs

// Instrumentation macros. `var` names the span variable so call sites can
// attach args / finish early. All of them vanish under BPIM_OBS_ENABLED=0.
#if BPIM_OBS_ENABLED
#define BPIM_TRACE_SPAN(var, ...) ::bpim::obs::Span var{__VA_ARGS__}
#define BPIM_TRACE_INSTANT(...)                                   \
  do {                                                            \
    auto& bpim_obs_s = ::bpim::obs::TraceSession::global();       \
    if (bpim_obs_s.enabled()) bpim_obs_s.instant(__VA_ARGS__);    \
  } while (0)
/// For blocks of direct TraceSession calls (async/flow events): constant
/// false when compiled out, so the guarded block folds away entirely.
#define BPIM_TRACE_ON() (::bpim::obs::TraceSession::global().enabled())
#else
#define BPIM_TRACE_SPAN(var, ...) ::bpim::obs::NullSpan var{__VA_ARGS__}
#define BPIM_TRACE_INSTANT(...) ((void)0)
#define BPIM_TRACE_ON() false
#endif
