#include "obs/metrics.hpp"

#include <bit>
#include <fstream>
#include <ostream>

#include "common/json_writer.hpp"

namespace bpim::obs {

std::size_t HistogramBuckets::index_of(std::uint64_t v) {
  if (v < 8) return static_cast<std::size_t>(v);
  const int e = std::bit_width(v) - 1;  // high set bit, >= 3
  return static_cast<std::size_t>(e - 2) * kSubBuckets +
         static_cast<std::size_t>((v >> (e - 3)) & 7U);
}

std::uint64_t HistogramBuckets::lower_bound(std::size_t idx) {
  if (idx < 8) return idx;
  const std::size_t octave = idx / kSubBuckets;  // >= 1
  const std::uint64_t mantissa = 8 + (idx % kSubBuckets);
  return mantissa << (octave - 1);
}

std::uint64_t HistogramBuckets::upper_bound(std::size_t idx) {
  if (idx < 8) return idx;
  const std::size_t octave = idx / kSubBuckets;
  const std::uint64_t width = std::uint64_t{1} << (octave - 1);
  return lower_bound(idx) + width - 1;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (const Bucket& b : buckets) {
    const std::uint64_t next = cumulative + b.count;
    if (static_cast<double>(next) >= rank) {
      // Interpolate within [lower, upper]: how far into the bucket's mass
      // the requested rank falls. The lower bound is recovered from the
      // upper one via the shared index arithmetic.
      const std::uint64_t upper = b.upper;
      const std::uint64_t lower =
          HistogramBuckets::lower_bound(HistogramBuckets::index_of(upper));
      const double into =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(b.count);
      return static_cast<double>(lower) +
             into * static_cast<double>(upper - lower);
    }
    cumulative = next;
  }
  return buckets.empty() ? 0.0 : static_cast<double>(buckets.back().upper);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) snap.buckets.push_back({HistogramBuckets::upper_bound(i), n});
  }
  return snap;
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

template <class T>
T& MetricsRegistry::lookup_or_create(std::vector<Named<T>>& list,
                                     const std::string& name,
                                     const std::string& help) {
  for (Named<T>& n : list)
    if (n.name == name) return *n.instrument;
  list.push_back({name, help, std::make_unique<T>()});
  return *list.back().instrument;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  MutexLock lk(mutex_);
  return lookup_or_create(counters_, name, help);
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  MutexLock lk(mutex_);
  return lookup_or_create(gauges_, name, help);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help) {
  MutexLock lk(mutex_);
  return lookup_or_create(histograms_, name, help);
}

void MetricsRegistry::write_json(std::ostream& out) const {
  JsonWriter w(out, 6);
  MutexLock lk(mutex_);
  w.begin_object();
  w.field("schema", "bpim.metrics.v1");
  w.key("counters");
  w.begin_array();
  for (const auto& c : counters_) {
    w.begin_object();
    w.field("name", c.name);
    if (!c.help.empty()) w.field("help", c.help);
    w.field("value", c.instrument->value());
    w.end_object();
  }
  w.end_array();
  w.key("gauges");
  w.begin_array();
  for (const auto& g : gauges_) {
    w.begin_object();
    w.field("name", g.name);
    if (!g.help.empty()) w.field("help", g.help);
    w.field("value", g.instrument->value());
    w.end_object();
  }
  w.end_array();
  w.key("histograms");
  w.begin_array();
  for (const auto& h : histograms_) {
    const HistogramSnapshot snap = h.instrument->snapshot();
    w.begin_object();
    w.field("name", h.name);
    if (!h.help.empty()) w.field("help", h.help);
    w.field("count", snap.count);
    w.field("sum", snap.sum);
    w.field("mean", snap.mean());
    w.field("p50", snap.quantile(0.50));
    w.field("p90", snap.quantile(0.90));
    w.field("p99", snap.quantile(0.99));
    w.field("p999", snap.quantile(0.999));
    w.key("buckets");
    w.begin_array();
    for (const auto& b : snap.buckets) {
      w.begin_object();
      w.field("le", b.upper);
      w.field("count", b.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map straight onto underscores.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.' || c == '-' || c == ' ') c = '_';
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  MutexLock lk(mutex_);
  for (const auto& c : counters_) {
    const std::string n = prom_name(c.name);
    if (!c.help.empty()) out << "# HELP " << n << ' ' << c.help << '\n';
    out << "# TYPE " << n << " counter\n";
    out << n << ' ' << c.instrument->value() << '\n';
  }
  for (const auto& g : gauges_) {
    const std::string n = prom_name(g.name);
    if (!g.help.empty()) out << "# HELP " << n << ' ' << g.help << '\n';
    out << "# TYPE " << n << " gauge\n";
    out << n << ' ' << g.instrument->value() << '\n';
  }
  for (const auto& h : histograms_) {
    const std::string n = prom_name(h.name);
    const HistogramSnapshot snap = h.instrument->snapshot();
    if (!h.help.empty()) out << "# HELP " << n << ' ' << h.help << '\n';
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& b : snap.buckets) {
      cumulative += b.count;
      out << n << "_bucket{le=\"" << b.upper << "\"} " << cumulative << '\n';
    }
    out << n << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
    out << n << "_sum " << snap.sum << '\n';
    out << n << "_count " << snap.count << '\n';
  }
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

bool MetricsRegistry::write_prometheus_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_prometheus(out);
  return out.good();
}

}  // namespace bpim::obs
