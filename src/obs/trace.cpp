#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <ostream>

#include "common/json_writer.hpp"

namespace bpim::obs {

namespace {

/// Synthetic tracks export as tids in their own range so they can never
/// collide with real per-thread rows (which start at 2 and grow by one per
/// thread -- this process has tens of threads, not a thousand).
constexpr TrackId kSyntheticBase = 1000;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One thread's event ring. SPSC: the owning thread is the only writer
/// (head), export -- serialized by the session mutex -- the only reader
/// (tail). The slot payload is published by the release store of head and
/// reclaimed by the release store of tail, so neither side ever touches a
/// slot the other may be accessing; a full ring drops instead of wrapping.
struct TraceSession::Ring {
  static constexpr std::size_t kCapacity = std::size_t{1} << 13;
  static_assert((kCapacity & (kCapacity - 1)) == 0, "mask arithmetic below");

  std::vector<Event> slots{kCapacity};
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;      ///< exported thread row; fixed at registration
  std::string name;           ///< row label; guarded by the session mutex

  void push(const Event& ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[h & (kCapacity - 1)] = ev;
    head.store(h + 1, std::memory_order_release);
  }
};

TraceSession::TraceSession() : epoch_ns_(steady_ns()) {}
TraceSession::~TraceSession() = default;

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

std::uint64_t TraceSession::now_ns() const { return steady_ns() - epoch_ns_; }

TraceSession::Ring& TraceSession::local_ring() {
  // Cached per thread *per session*: a thread that alternates between two
  // sessions re-registers (gaining a fresh ring) on each switch -- benign,
  // and only test code ever holds more than the global session.
  struct Cache {
    TraceSession* owner = nullptr;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner != this) {
    MutexLock lk(mutex_);
    auto ring = std::make_unique<Ring>();
    ring->tid = next_tid_++;
    ring->name = "thread " + std::to_string(ring->tid);
    cache = {this, ring.get()};
    rings_.push_back(std::move(ring));
  }
  return *cache.ring;
}

void TraceSession::emit(const Event& ev) {
  if (!enabled()) return;
  local_ring().push(ev);
}

TrackId TraceSession::register_track(std::string name) {
  MutexLock lk(mutex_);
  track_names_.push_back(std::move(name));
  return kSyntheticBase + static_cast<TrackId>(track_names_.size() - 1);
}

void TraceSession::set_thread_name(std::string name) {
  Ring& ring = local_ring();
  MutexLock lk(mutex_);
  ring.name = std::move(name);
}

void TraceSession::complete_event(const char* name, TrackId track,
                                  std::uint64_t begin_ns, std::uint64_t end_ns,
                                  const EventArgs& args) {
  Event ev;
  ev.type = EventType::Complete;
  ev.track = track;
  ev.name = name;
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  ev.args = args;
  emit(ev);
}

void TraceSession::instant(const char* name, TrackId track, const EventArgs& args) {
  Event ev;
  ev.type = EventType::Instant;
  ev.track = track;
  ev.name = name;
  ev.begin_ns = now_ns();
  ev.args = args;
  emit(ev);
}

void TraceSession::async_begin(const char* name, std::uint64_t id,
                               const EventArgs& args) {
  Event ev;
  ev.type = EventType::AsyncBegin;
  ev.name = name;
  ev.begin_ns = now_ns();
  ev.id = id;
  ev.args = args;
  emit(ev);
}

void TraceSession::async_end(const char* name, std::uint64_t id,
                             const EventArgs& args) {
  Event ev;
  ev.type = EventType::AsyncEnd;
  ev.name = name;
  ev.begin_ns = now_ns();
  ev.id = id;
  ev.args = args;
  emit(ev);
}

void TraceSession::flow_start(const char* name, std::uint64_t id, TrackId track) {
  Event ev;
  ev.type = EventType::FlowStart;
  ev.track = track;
  ev.name = name;
  ev.begin_ns = now_ns();
  ev.id = id;
  emit(ev);
}

void TraceSession::flow_finish(const char* name, std::uint64_t id, TrackId track) {
  Event ev;
  ev.type = EventType::FlowFinish;
  ev.track = track;
  ev.name = name;
  ev.begin_ns = now_ns();
  ev.id = id;
  emit(ev);
}

std::uint64_t TraceSession::dropped() const {
  MutexLock lk(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_)
    total += ring->dropped.load(std::memory_order_relaxed);
  return total;
}

namespace {

/// Microseconds for the exporter: Perfetto's JSON ts/dur unit.
double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_args(JsonWriter& w, const EventArgs& args) {
  w.key("args");
  w.begin_object();
  for (int i = 0; i < args.count; ++i) w.field(args.kv[i].key, args.kv[i].value);
  w.end_object();
}

void write_metadata(JsonWriter& w, const char* what, std::uint32_t tid,
                    const std::string& name) {
  w.begin_object();
  w.field("ph", "M");
  w.field("name", what);
  w.field("pid", 1);
  w.field("tid", tid);
  w.key("args");
  w.begin_object();
  w.field("name", name);
  w.end_object();
  w.end_object();
}

void write_event(JsonWriter& w, const Event& ev, std::uint32_t owner_tid) {
  const std::uint32_t tid = ev.track == 0 ? owner_tid : ev.track;
  w.begin_object();
  w.field("name", ev.name);
  w.field("cat", "bpim");
  w.field("pid", 1);
  w.field("tid", tid);
  w.field("ts", to_us(ev.begin_ns));
  switch (ev.type) {
    case EventType::Complete:
      w.field("ph", "X");
      w.field("dur", to_us(ev.end_ns - ev.begin_ns));
      write_args(w, ev.args);
      break;
    case EventType::Instant:
      w.field("ph", "i");
      w.field("s", "t");  // thread-scoped tick mark
      write_args(w, ev.args);
      break;
    case EventType::AsyncBegin:
    case EventType::AsyncEnd:
      w.field("ph", ev.type == EventType::AsyncBegin ? "b" : "e");
      w.field("id", ev.id);
      write_args(w, ev.args);
      break;
    case EventType::FlowStart:
      w.field("ph", "s");
      w.field("id", ev.id);
      break;
    case EventType::FlowFinish:
      w.field("ph", "f");
      w.field("bp", "e");  // bind to the enclosing slice
      w.field("id", ev.id);
      break;
  }
  w.end_object();
}

}  // namespace

void TraceSession::export_json(std::ostream& out) {
  // ts/dur carry 3 decimals of a microsecond -> full nanosecond resolution.
  JsonWriter w(out, 3);
  MutexLock lk(mutex_);
  w.begin_object();
  w.field("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();
  write_metadata(w, "process_name", 1, "bpim");
  for (std::size_t i = 0; i < track_names_.size(); ++i)
    write_metadata(w, "thread_name", kSyntheticBase + static_cast<TrackId>(i),
                   track_names_[i]);
  for (const auto& ring : rings_) {
    write_metadata(w, "thread_name", ring->tid, ring->name);
    const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    for (std::uint64_t s = tail; s != head; ++s)
      write_event(w, ring->slots[s & (Ring::kCapacity - 1)], ring->tid);
    ring->tail.store(head, std::memory_order_release);
  }
  w.end_array();
  w.end_object();
}

bool TraceSession::export_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  export_json(out);
  return out.good();
}

}  // namespace bpim::obs
