#pragma once
// Metrics: named counters, gauges, and log-linear histograms with a
// thread-safe snapshot, exported as JSON (round-trips through
// common/json.hpp) and Prometheus text exposition.
//
// Registration (MetricsRegistry::counter/gauge/histogram) takes a lock and
// returns a reference with a stable address; call sites resolve their
// instruments once (constructor, or a function-local static) and then
// update through lock-free atomics. Updating is always on -- unlike
// tracing there is no enable switch, because a counter bump is a single
// relaxed fetch_add and the registry is consulted only at registration
// and exposition time.
//
// Histogram buckets are log-linear, 8 sub-buckets per power-of-two octave
// (~9% relative width): values 0..7 land in their own buckets, a value
// with high bit e >= 3 lands in bucket (e-2)*8 + next-3-bits. 496 buckets
// cover the full u64 range in 4 KiB of atomics; quantiles interpolate
// linearly inside the resolved bucket, the same convention SampleSet uses
// between order statistics.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace bpim::obs {

/// Monotonic event count. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level (queue depth, resident layers, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Pure bucket arithmetic of the log-linear layout, shared by Histogram
/// and by anything replaying a snapshot.
struct HistogramBuckets {
  static constexpr int kSubBuckets = 8;      ///< per octave
  static constexpr int kBucketCount = 496;   ///< covers all of u64

  /// Bucket a value lands in.
  [[nodiscard]] static std::size_t index_of(std::uint64_t v);
  /// Smallest value of bucket `idx`.
  [[nodiscard]] static std::uint64_t lower_bound(std::size_t idx);
  /// Largest value of bucket `idx` (inclusive).
  [[nodiscard]] static std::uint64_t upper_bound(std::size_t idx);
};

/// Point-in-time copy of a histogram, with quantile resolution.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Non-empty buckets only, ascending.
  struct Bucket {
    std::uint64_t upper = 0;  ///< inclusive upper bound of the bucket
    std::uint64_t count = 0;  ///< events in this bucket (not cumulative)
  };
  std::vector<Bucket> buckets;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Linear interpolation inside the resolved bucket; q in [0,1].
  [[nodiscard]] double quantile(double q) const;
};

/// Lock-free log-linear histogram of u64 observations.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::uint64_t v) {
    buckets_[HistogramBuckets::index_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Double-valued sum under concurrent adds: CAS loop, still lock-free.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + static_cast<double>(v),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, HistogramBuckets::kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide instrument registry. Lookup-or-create by name; exposition
/// walks every registered instrument. Instrument addresses are stable for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Names are dotted lowercase ("serve.requests.completed"); `help` is
  /// kept from the first registration of a name.
  Counter& counter(const std::string& name, const std::string& help = "")
      BPIM_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& help = "")
      BPIM_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, const std::string& help = "")
      BPIM_EXCLUDES(mutex_);

  /// One JSON document: schema bpim.metrics.v1, every instrument's current
  /// value (histograms with mean/quantiles and non-empty buckets).
  void write_json(std::ostream& out) const BPIM_EXCLUDES(mutex_);
  /// Prometheus text exposition (dots in names become underscores).
  void write_prometheus(std::ostream& out) const BPIM_EXCLUDES(mutex_);
  bool write_json_file(const std::string& path) const BPIM_EXCLUDES(mutex_);
  bool write_prometheus_file(const std::string& path) const BPIM_EXCLUDES(mutex_);

 private:
  template <class T>
  struct Named {
    std::string name;
    std::string help;
    std::unique_ptr<T> instrument;
  };

  template <class T>
  static T& lookup_or_create(std::vector<Named<T>>& list, const std::string& name,
                             const std::string& help);

  mutable Mutex mutex_;
  std::vector<Named<Counter>> counters_ BPIM_GUARDED_BY(mutex_);
  std::vector<Named<Gauge>> gauges_ BPIM_GUARDED_BY(mutex_);
  std::vector<Named<Histogram>> histograms_ BPIM_GUARDED_BY(mutex_);
};

}  // namespace bpim::obs
