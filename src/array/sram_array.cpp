#include "array/sram_array.hpp"

namespace bpim::array {

SramArray::SramArray(const ArrayGeometry& g) : geom_(g) {
  BPIM_REQUIRE(g.rows > 0 && g.cols > 0, "array must be non-empty");
  BPIM_REQUIRE(g.interleave > 0 && g.cols % g.interleave == 0,
               "columns must be a multiple of the interleave factor");
  main_.assign(g.rows, BitVector(g.cols));
  dummy_.assign(g.dummy_rows, BitVector(g.cols));
}

const BitVector& SramArray::row(RowRef r) const {
  if (r.kind == RowRef::Kind::Main) {
    BPIM_REQUIRE(r.index < main_.size(), "main row out of range");
    return main_[r.index];
  }
  BPIM_REQUIRE(r.index < dummy_.size(), "dummy row out of range");
  return dummy_[r.index];
}

void SramArray::write_row(RowRef r, const BitVector& data) {
  BPIM_REQUIRE(data.size() == geom_.cols, "row width mismatch");
  if (r.kind == RowRef::Kind::Main) {
    BPIM_REQUIRE(r.index < main_.size(), "main row out of range");
    main_[r.index] = data;
  } else {
    BPIM_REQUIRE(r.index < dummy_.size(), "dummy row out of range");
    dummy_[r.index] = data;
  }
}

void SramArray::set(RowRef r, std::size_t col, bool v) {
  BPIM_REQUIRE(col < geom_.cols, "column out of range");
  auto& target = (r.kind == RowRef::Kind::Main) ? main_ : dummy_;
  BPIM_REQUIRE(r.index < target.size(), "row out of range");
  target[r.index].set(col, v);
}

std::uint64_t SramArray::extract_bits(RowRef r, std::size_t col, std::size_t len) const {
  BPIM_REQUIRE(len <= 64 && col + len <= geom_.cols, "column range out of range");
  return row(r).extract_bits(col, len);
}

void SramArray::deposit_bits(RowRef r, std::size_t col, std::size_t len, std::uint64_t value) {
  BPIM_REQUIRE(len <= 64 && col + len <= geom_.cols, "column range out of range");
  auto& target = (r.kind == RowRef::Kind::Main) ? main_ : dummy_;
  BPIM_REQUIRE(r.index < target.size(), "row out of range");
  target[r.index].deposit_bits(col, len, value);
}

void SramArray::check_access(RowRef r) const {
  // While the separator is open, only same-segment WL pairs share a BL; a
  // cross-segment dual access cannot produce a valid wired-AND result.
  (void)r;
}

BlReadout SramArray::compute_dual(RowRef a, RowRef b) const {
  BPIM_REQUIRE(!(a == b), "dual-WL compute needs two distinct rows");
  if (separated_) {
    BPIM_REQUIRE(a.is_dummy() == b.is_dummy(),
                 "cross-segment dual-WL access while BL separator is open");
  }
  const BitVector& ra = row(a);
  const BitVector& rb = row(b);
  return BlReadout{ra & rb, ~(ra | rb)};
}

BlReadout SramArray::read_single(RowRef r) const {
  const BitVector& data = row(r);
  return BlReadout{data, ~data};
}

std::size_t SramArray::toggle_count(RowRef r, const BitVector& incoming) const {
  return (row(r) ^ incoming).popcount();
}

}  // namespace bpim::array
