#pragma once
// Functional model of the 6T SRAM cell array with the IMC extensions of the
// paper's Fig 3: a main array (rows x cols), three dummy rows below the BL
// separator, and the bit-line compute primitives.
//
// Bit-line compute semantics (precharged BLT/BLB pair, then WL activation):
//   dual WL (rows A and B):   SA(BLT) = A AND B      SA(BLB) = NOR(A, B)
//   single WL (row A):        SA(BLT) = A            SA(BLB) = NOT A
// BLT stays high only if no accessed cell stores 0; BLB stays high only if
// no accessed cell stores 1.
//
// The BL separator is a pass-gate in every column between the main segment
// and the dummy segment. When open (separated), accesses restricted to the
// dummy rows see only the short segment -- the energy and write-back-delay
// win the paper attributes to the separator. The functional results are
// identical either way; the state is tracked so the energy ledger and the
// sequencer can price accesses correctly and so illegal cross-segment
// accesses while separated are caught.

#include <cstddef>
#include <vector>

#include "common/bitvec.hpp"
#include "common/require.hpp"

namespace bpim::array {

struct ArrayGeometry {
  std::size_t rows = 128;
  std::size_t cols = 128;
  std::size_t dummy_rows = 3;
  /// Column interleaving of the peripheral units (addressing/layout only;
  /// compute engages all columns -- see DESIGN.md).
  std::size_t interleave = 4;
};

/// Addresses either a main-array row or a dummy row.
struct RowRef {
  enum class Kind { Main, Dummy } kind = Kind::Main;
  std::size_t index = 0;

  static RowRef main(std::size_t r) { return {Kind::Main, r}; }
  static RowRef dummy(std::size_t d) { return {Kind::Dummy, d}; }
  [[nodiscard]] bool is_dummy() const { return kind == Kind::Dummy; }
  friend bool operator==(const RowRef&, const RowRef&) = default;
};

/// Sense-amplifier outputs of one BL compute across all columns.
struct BlReadout {
  BitVector bl_and;  ///< SA(BLT): AND of the accessed cells per column
  BitVector bl_nor;  ///< SA(BLB): NOR of the accessed cells per column
};

class SramArray {
 public:
  explicit SramArray(const ArrayGeometry& g);

  [[nodiscard]] const ArrayGeometry& geometry() const { return geom_; }

  // ---- plain storage access --------------------------------------------
  [[nodiscard]] const BitVector& row(RowRef r) const;
  void write_row(RowRef r, const BitVector& data);
  [[nodiscard]] bool get(RowRef r, std::size_t col) const { return row(r).get(col); }
  void set(RowRef r, std::size_t col, bool v);
  /// Columns [col, col+len) of a row as a u64 (len <= 64).
  [[nodiscard]] std::uint64_t extract_bits(RowRef r, std::size_t col, std::size_t len) const;
  /// Overwrite columns [col, col+len) of a row with the low len bits of
  /// `value` (uncharged -- the macro's poke path).
  void deposit_bits(RowRef r, std::size_t col, std::size_t len, std::uint64_t value);

  // ---- BL separator -----------------------------------------------------
  /// Separated = dummy segment disconnected from the main-array BLs.
  void set_separated(bool s) { separated_ = s; }
  [[nodiscard]] bool separated() const { return separated_; }

  // ---- bit-line compute primitives ---------------------------------------
  /// Dual-WL compute. Both rows must be on the same (connected) segment:
  /// while separated, main+dummy combinations are rejected.
  [[nodiscard]] BlReadout compute_dual(RowRef a, RowRef b) const;
  /// Single-WL read of one row.
  [[nodiscard]] BlReadout read_single(RowRef r) const;

  /// Number of bits that differ from the currently stored row -- the
  /// write-back switching activity used by the energy ledger.
  [[nodiscard]] std::size_t toggle_count(RowRef r, const BitVector& incoming) const;

 private:
  void check_access(RowRef r) const;

  ArrayGeometry geom_;
  std::vector<BitVector> main_;
  std::vector<BitVector> dummy_;
  bool separated_ = false;
};

}  // namespace bpim::array
