#pragma once
// Behavioural 6T SRAM bit cell.
//
// Models the two cell-level questions the paper's evaluation hinges on:
//
//  1. Read/compute current -- how fast does one cell discharge a bit line,
//     as a function of the word-line voltage (full swing vs WLUD). This sets
//     the BL computation delay (Fig 2, Fig 7a).
//
//  2. Read disturb -- whether the stored value survives the access. Two
//     mechanisms are modelled:
//       (a) classic bump: the internal '0' node is pulled up through the
//           access device while the BL is still high;
//       (b) the dual-WL mechanism of the paper's Fig 1: once the shared BL
//           has been discharged by the *other* cell, the '1' node of this
//           cell is pulled *down* through its access device toward the low
//           BL. WLUD weakens the access device to survive this; the proposed
//           scheme instead cuts the WL before the BL collapses.
//
// All device operating points and Monte-Carlo mismatch deltas are explicit,
// so the same cell serves nominal timing, corner sweeps and MC runs.

#include "circuit/mosfet.hpp"
#include "circuit/process.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace bpim::cell {

/// Drawn device widths of the 6T cell (um). Defaults give a ~1.4 read beta
/// ratio, typical of a 28 nm high-density cell scaled for IMC read margin.
struct CellGeometry {
  double w_access_um = 0.14;
  double w_pulldown_um = 0.20;
  /// Sized so the WLUD baseline at 0.55 V sits at the paper's iso-ADM
  /// failure target of 2.5e-5 (measured 2.25e-5 over 2M MC samples).
  double w_pullup_um = 0.11;
};

/// Per-instance threshold mismatch of the five devices that matter for one
/// read side (the second pull-up/pull-down pair enters via the trip voltage).
struct CellMismatch {
  Volt d_access{0.0};
  Volt d_pulldown{0.0};
  Volt d_pullup{0.0};
  Volt d_trip{0.0};  ///< lumped mismatch of the opposite inverter's trip point

  /// Draw a Pelgrom-distributed sample for the given geometry.
  static CellMismatch sample(Rng& rng, const CellGeometry& g,
                             const circuit::ProcessParams& p = circuit::default_process());
};

class Sram6tCell {
 public:
  Sram6tCell(const CellGeometry& g, const circuit::OperatingPoint& op,
             const CellMismatch& mm = {},
             const circuit::ProcessParams& p = circuit::default_process());

  /// Discharge current injected into a high bit line when this cell stores
  /// '0' and its word line sits at `v_wl` with the BL at `v_bl`.
  /// Series access + pull-down, combined with the conductance-series rule.
  [[nodiscard]] Ampere read_current(Volt v_wl, Volt v_bl) const;

  /// Mechanism (a): equilibrium voltage of the internal '0' node while the
  /// BL is held at `v_bl` (high) and the WL at `v_wl`.
  [[nodiscard]] Volt bump_voltage(Volt v_wl, Volt v_bl) const;

  /// Mechanism (b): equilibrium voltage of the internal '1' node while the
  /// shared BL has been discharged to `v_bl` (low) and the WL is at `v_wl`.
  [[nodiscard]] Volt sag_voltage(Volt v_wl, Volt v_bl) const;

  /// Trip voltage of the opposite inverter: if a disturbed node crosses it
  /// (upward for the '0' node, downward for the '1' node) the latch
  /// regenerates to the wrong state.
  [[nodiscard]] Volt trip_low() const;   ///< '0' node flips if bumped above this
  [[nodiscard]] Volt trip_high() const;  ///< '1' node flips if sagged below this

  /// Time the disturbance must persist for the latch to regenerate. Diverges
  /// as the disturbed level approaches the trip point.
  [[nodiscard]] Second regeneration_time(Volt disturbed, Volt trip) const;

  /// True if holding WL at `v_wl` for `duration` with a *low* BL at `v_bl`
  /// flips a stored '1' (the paper's dual-WL compute disturb).
  [[nodiscard]] bool flips_with_low_bl(Volt v_wl, Volt v_bl, Second duration) const;

  /// True if holding WL at `v_wl` for `duration` with a *high* BL flips a
  /// stored '0' (classic single-ended read bump).
  [[nodiscard]] bool flips_with_high_bl(Volt v_wl, Volt v_bl, Second duration) const;

  [[nodiscard]] const circuit::OperatingPoint& op() const { return op_; }

 private:
  circuit::OperatingPoint op_;
  circuit::Mosfet access_;
  circuit::Mosfet pulldown_;
  circuit::Mosfet pullup_;
  Volt trip_nominal_;
  Volt d_trip_;
};

}  // namespace bpim::cell
