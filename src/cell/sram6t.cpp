#include "cell/sram6t.hpp"

#include <cmath>

#include "common/require.hpp"

namespace bpim::cell {

using circuit::DeviceKind;
using circuit::Mosfet;
using circuit::VtFlavor;

CellMismatch CellMismatch::sample(Rng& rng, const CellGeometry& g,
                                  const circuit::ProcessParams& p) {
  CellMismatch mm;
  mm.d_access = Volt(rng.normal(0.0, Mosfet::mismatch_sigma(g.w_access_um, p).si()));
  mm.d_pulldown = Volt(rng.normal(0.0, Mosfet::mismatch_sigma(g.w_pulldown_um, p).si()));
  mm.d_pullup = Volt(rng.normal(0.0, Mosfet::mismatch_sigma(g.w_pullup_um, p).si()));
  // The opposite inverter's pair lumped into one trip-point shift; RSS of the
  // pull-up and pull-down sigmas, each entering the trip with weight ~0.5.
  const double s_pd = Mosfet::mismatch_sigma(g.w_pulldown_um, p).si();
  const double s_pu = Mosfet::mismatch_sigma(g.w_pullup_um, p).si();
  const double s_trip = 0.5 * std::sqrt(s_pd * s_pd + s_pu * s_pu);
  mm.d_trip = Volt(rng.normal(0.0, s_trip));
  return mm;
}

Sram6tCell::Sram6tCell(const CellGeometry& g, const circuit::OperatingPoint& op,
                       const CellMismatch& mm, const circuit::ProcessParams& p)
    : op_(op),
      access_(DeviceKind::Nmos, VtFlavor::Regular, g.w_access_um, op, p, mm.d_access),
      pulldown_(DeviceKind::Nmos, VtFlavor::Regular, g.w_pulldown_um, op, p, mm.d_pulldown),
      pullup_(DeviceKind::Pmos, VtFlavor::Regular, g.w_pullup_um, op, p, mm.d_pullup),
      d_trip_(mm.d_trip) {
  // Nominal inverter trip point: gate voltage where the (nominal-mismatch)
  // pull-down saturation current equals the pull-up saturation current.
  const double vdd = op.vdd.si();
  double lo = 0.05, hi = vdd - 0.05;
  for (int i = 0; i < 48; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double i_dn = pulldown_.current(Volt(mid), Volt(vdd)).si();
    const double i_up = pullup_.current(Volt(vdd - mid), Volt(vdd)).si();
    (i_dn < i_up ? lo : hi) = mid;
  }
  trip_nominal_ = Volt(0.5 * (lo + hi));
}

Ampere Sram6tCell::read_current(Volt v_wl, Volt v_bl) const {
  if (v_bl.si() <= 0.0) return Ampere(0.0);
  // Series stack approximated by series conductances evaluated with the full
  // BL voltage across each device; pessimistic by < 2x and smooth, which is
  // what the transient solver needs.
  const double i_acc = access_.current(v_wl, v_bl).si();
  const double i_pd = pulldown_.current(op_.vdd, v_bl).si();
  if (i_acc <= 0.0 || i_pd <= 0.0) return Ampere(0.0);
  return Ampere(i_acc * i_pd / (i_acc + i_pd));
}

Volt Sram6tCell::bump_voltage(Volt v_wl, Volt v_bl) const {
  // '0' node pulled up through the access device against the pull-down.
  double lo = 0.0, hi = v_bl.si();
  for (int i = 0; i < 40; ++i) {
    const double vx = 0.5 * (lo + hi);
    const double i_up = access_.current(Volt(v_wl.si() - vx), Volt(v_bl.si() - vx)).si();
    const double i_dn = pulldown_.current(op_.vdd, Volt(vx)).si();
    (i_up > i_dn ? lo : hi) = vx;
  }
  return Volt(0.5 * (lo + hi));
}

Volt Sram6tCell::sag_voltage(Volt v_wl, Volt v_bl) const {
  // '1' node pulled down toward a low BL against the pull-up.
  const double vdd = op_.vdd.si();
  const double vgs_acc = v_wl.si() - v_bl.si();  // access source sits on the BL
  double lo = v_bl.si(), hi = vdd;
  for (int i = 0; i < 40; ++i) {
    const double vq = 0.5 * (lo + hi);
    const double i_dn = access_.current(Volt(vgs_acc), Volt(vq - v_bl.si())).si();
    const double i_up = pullup_.current(op_.vdd, Volt(vdd - vq)).si();
    (i_up > i_dn ? lo : hi) = vq;
  }
  return Volt(0.5 * (lo + hi));
}

Volt Sram6tCell::trip_low() const { return Volt(trip_nominal_.si() + d_trip_.si()); }
Volt Sram6tCell::trip_high() const { return Volt(trip_nominal_.si() + d_trip_.si()); }

Second Sram6tCell::regeneration_time(Volt disturbed, Volt trip) const {
  // First-order latch regeneration: tau scales with the inverse of the
  // overdrive past the trip point. tau0 is a fitted latch time constant.
  constexpr double tau0_s = 4.0e-12;
  const double excess = std::abs(disturbed.si() - trip.si());
  if (excess < 1e-4) return Second(1.0);  // effectively never regenerates
  return Second(tau0_s * (trip.si() / excess + 1.0));
}

bool Sram6tCell::flips_with_low_bl(Volt v_wl, Volt v_bl, Second duration) const {
  const Volt vq = sag_voltage(v_wl, v_bl);
  const Volt trip = trip_high();
  if (vq.si() >= trip.si()) return false;
  return duration.si() >= regeneration_time(vq, trip).si();
}

bool Sram6tCell::flips_with_high_bl(Volt v_wl, Volt v_bl, Second duration) const {
  const Volt vx = bump_voltage(v_wl, v_bl);
  const Volt trip = trip_low();
  if (vx.si() <= trip.si()) return false;
  return duration.si() >= regeneration_time(vx, trip).si();
}

}  // namespace bpim::cell
