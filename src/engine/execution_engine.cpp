#include "engine/execution_engine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/require.hpp"
#include "macro/isa.hpp"

namespace bpim::engine {

using array::RowRef;

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Add:
      return "ADD";
    case OpKind::Sub:
      return "SUB";
    case OpKind::Mult:
      return "MULT";
    case OpKind::AddShift:
      return "ADD-SHIFT";
    case OpKind::Not:
      return "NOT";
    case OpKind::Logic:
      return "LOGIC";
  }
  return "?";
}

namespace {

// More workers than macros can never help: the macro is the unit of
// parallelism, so cap the pool and spare the surplus threads the wake-up
// on every op.
std::size_t useful_threads(const EngineConfig& cfg, const macro::ImcMemory& mem) {
  std::size_t t = cfg.threads != 0 ? cfg.threads
                                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(t, mem.macro_count());
}

}  // namespace

ExecutionEngine::ExecutionEngine(macro::ImcMemory& mem, EngineConfig cfg)
    : mem_(mem),
      pool_(useful_threads(cfg, mem)),
      residency_(mem.macro(0).rows() / 2),
      op_compiler_(mem.macro(0).config().geometry) {
#if BPIM_OBS_ENABLED
  static std::atomic<std::uint64_t> instance_counter{0};
  trace_track_ = obs::TraceSession::global().register_track(
      "engine " + std::to_string(instance_counter.fetch_add(1, std::memory_order_relaxed)));
#endif
}

std::size_t ExecutionEngine::words_per_row(unsigned bits) const {
  return mem_.macro(0).words_per_row(bits);
}

std::size_t ExecutionEngine::mult_units_per_row(unsigned bits) const {
  return mem_.macro(0).mult_units_per_row(bits);
}

namespace {

OperandLayout layout_of(OpKind kind) {
  return kind == OpKind::Mult ? OperandLayout::MultUnit : OperandLayout::Word;
}

}  // namespace

std::size_t ExecutionEngine::elements_per_chunk(const VecOp& op) const {
  return elements_per_chunk(op.bits, layout_of(op.kind));
}

std::size_t ExecutionEngine::elements_per_chunk(unsigned bits, OperandLayout layout) const {
  return layout == OperandLayout::MultUnit ? mult_units_per_row(bits) : words_per_row(bits);
}

std::size_t ExecutionEngine::layers_for_elements(std::size_t elements, unsigned bits,
                                                 OperandLayout layout) const {
  const std::size_t per_op = elements_per_chunk(bits, layout);
  const std::size_t chunks = (elements + per_op - 1) / per_op;
  return (chunks + mem_.macro_count() - 1) / mem_.macro_count();
}

std::size_t ExecutionEngine::layer_capacity(unsigned bits) const {
  return words_per_row(bits) * mem_.macro_count();
}

std::size_t ExecutionEngine::layers_for(const VecOp& op) const {
  return layers_for_elements(op.length(), op.bits, layout_of(op.kind));
}

std::size_t ExecutionEngine::row_pair_capacity() const { return mem_.macro(0).rows() / 2; }

ResidentOperand ExecutionEngine::pin(std::span<const std::uint64_t> values, unsigned bits,
                                     OperandLayout layout) {
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
  for (const std::uint64_t v : values)
    BPIM_REQUIRE(BitVector::fits_u64(v, bits), "value does not fit precision");
  return residency_.pin(values, bits, layout,
                        layers_for_elements(values.size(), bits, layout));
}

bool ExecutionEngine::unpin(const ResidentOperand& handle) {
  return handle ? residency_.unpin(handle.id) : false;
}

void ExecutionEngine::materialize(ResidencyManager::Entry& entry) {
  BPIM_TRACE_INSTANT("residency.materialize", trace_track_,
                     {{"handle", static_cast<double>(entry.handle.id)},
                      {"layers", static_cast<double>(entry.handle.layers)}});
  const unsigned bits = entry.handle.bits;
  const bool mult_layout = entry.handle.layout == OperandLayout::MultUnit;
  const std::size_t per_op = elements_per_chunk(bits, entry.handle.layout);
  const std::size_t macros = mem_.macro_count();
  const std::size_t n = entry.values.size();
  const std::size_t chunks = (n + per_op - 1) / per_op;
  const std::span<const std::uint64_t> values(entry.values);
  for (std::size_t c = 0; c < chunks; ++c) {
    auto& mac = mem_.macro(c % macros);
    const std::size_t row = 2 * (entry.base_pair + c / macros);
    const std::size_t pos = c * per_op;
    const std::size_t len = std::min(per_op, n - pos);
    if (mult_layout) {
      mac.poke_mult_operands(row, 0, bits, values.subspan(pos, len));
    } else {
      mac.poke_words(row, 0, bits, values.subspan(pos, len));
    }
  }
}

const macro::Program& ExecutionEngine::program_for(const VecOp& op, std::size_t r_a,
                                                   std::size_t r_b) {
  const RowRef a = RowRef::main(r_a);
  const RowRef b = RowRef::main(r_b);
  switch (op.kind) {
    case OpKind::Add:
      return op_compiler_.add(a, b, op.bits);
    case OpKind::Sub:
      return op_compiler_.sub(a, b, op.bits);
    case OpKind::Mult:
      return op_compiler_.mult(a, b, op.bits);
    case OpKind::AddShift:
      // The shifted sum retires into the dummy accumulator: the driven-out
      // row carries the value and no main row is written.
      return op_compiler_.add_shift(a, b, op.bits,
                                    RowRef::dummy(macro::ImcMacro::kDummyAccum));
    case OpKind::Not:
      // Unary: the inverted row lands in the dummy operand row and is
      // driven out; side b never exists.
      return op_compiler_.unary(macro::Op::Not, a,
                                RowRef::dummy(macro::ImcMacro::kDummyOperand), op.bits);
    case OpKind::Logic:
      break;
  }
  return op_compiler_.logic(op.fn, a, b);
}

OpResult ExecutionEngine::run_one(const VecOp& op, OpAccount& acct) {
  const bool mult_layout = op.kind == OpKind::Mult;
  const bool unary = op.kind == OpKind::Not;
  const OperandLayout want = mult_layout ? OperandLayout::MultUnit : OperandLayout::Word;

  // Resolve each side to a data span plus (for handles) the live entry.
  const auto resolve = [&](std::span<const std::uint64_t> s, const ResidentOperand& h)
      -> std::pair<std::span<const std::uint64_t>, ResidencyManager::Entry*> {
    if (!h) return {s, nullptr};
    BPIM_REQUIRE(s.empty(), "operand side has both a span and a resident handle");
    ResidencyManager::Entry* e = residency_.touch(h.id);
    BPIM_REQUIRE(e != nullptr, "unknown resident operand (unpinned, or pinned on another engine)");
    BPIM_REQUIRE(e->handle.bits == op.bits, "resident operand precision mismatch");
    BPIM_REQUIRE(e->handle.layout == want, "resident operand layout does not fit the op kind");
    return {std::span<const std::uint64_t>(e->values), e};
  };
  const auto [a, ea] = resolve(op.a, op.ra);
  const auto [b, eb] = resolve(op.b, op.rb);
  if (unary)
    BPIM_REQUIRE(b.empty() && eb == nullptr, "NOT is unary: operand side b must stay empty");
  else
    BPIM_REQUIRE(a.size() == b.size(), "operand vectors must have equal length");
  BPIM_REQUIRE(macro::is_supported_precision(op.bits), "unsupported precision");
  BPIM_REQUIRE(ea == nullptr || ea != eb, "a resident operand cannot be both sides of one op");
  // Two handles must fit the array together -- each side passed the
  // per-handle bound at pin(), but their pair sum is only known here.
  if (ea != nullptr && eb != nullptr)
    BPIM_REQUIRE(ea->handle.layers + eb->handle.layers <= row_pair_capacity(),
                 "resident operand pair exceeds memory capacity");
  mem_.reset_counters();

  const std::size_t n = a.size();
  const std::size_t per_op = elements_per_chunk(op);
  const std::size_t macros = mem_.macro_count();
  const std::size_t chunks = (n + per_op - 1) / per_op;
  // Single source of truth with the serve scheduler's residency budget.
  const std::size_t layers = layers_for(op);
  if (layers > 0)
    BPIM_REQUIRE(2 * (layers - 1) + 1 < mem_.macro(0).rows(), "vector exceeds memory capacity");

  // Row residency: a fully-transient op stages in pairs [0, layers) exactly
  // as before; an op with a resident side computes in the handle's own
  // pairs (activation in the odd row) and consumes no transient pairs.
  // Eviction (LRU) happens here when the pinned set and the transient
  // region collide, and evicted handles re-materialize on use.
  const std::uint64_t rows_per_layer = unary ? 1 : 2;  // staged operand rows
  const std::size_t transient = (ea != nullptr || eb != nullptr) ? 0 : layers;
  if (transient > 0) residency_.reserve_transient(transient);
  std::uint64_t load = transient > 0 ? rows_per_layer * layers : 0;
  if (ea != nullptr && residency_.ensure_rows(*ea, eb)) {
    materialize(*ea);
    load += layers;  // the one materializing write, charged to this batch
  }
  if (eb != nullptr && residency_.ensure_rows(*eb, ea)) {
    materialize(*eb);
    load += layers;
  }
  if (!unary && (ea != nullptr) != (eb != nullptr)) load += layers;  // the activation side

  OpResult res;
  res.values.assign(n, 0);

  // Row placement by layer -- identical for every macro of the layer, so
  // the whole op dispatches through `layers` cached programs.
  const std::size_t base_a = ea != nullptr ? ea->base_pair : 0;
  const std::size_t base_b = eb != nullptr ? eb->base_pair : 0;
  const ResidencyManager::Entry* res_a = ea;
  const ResidencyManager::Entry* res_b = eb;
  const auto place = [&](std::size_t row_pair) -> std::pair<std::size_t, std::size_t> {
    if (res_a == nullptr && res_b == nullptr) return {2 * row_pair, 2 * row_pair + 1};
    if (res_a != nullptr && res_b != nullptr)
      return {2 * (base_a + row_pair), 2 * (base_b + row_pair)};
    if (res_a != nullptr) {
      const std::size_t r = 2 * (base_a + row_pair);
      return {r, r + 1};
    }
    const std::size_t r = 2 * (base_b + row_pair);
    return {r + 1, r};
  };

  // Compile (or fetch) the per-layer single-op programs up front, on the
  // submitting thread: workers share the verified Program objects by
  // reference and never touch the compiler cache.
  std::vector<const macro::Program*> progs;
  progs.reserve(layers);
  for (std::size_t rp = 0; rp < layers; ++rp) {
    const auto [pr_a, pr_b] = place(rp);
    progs.push_back(&program_for(op, pr_a, pr_b));
  }

  // Shard: macro m owns chunks m, m + M, m + 2M, ... -- the same per-macro
  // chunk sequence as the serial layer walk, so RNG streams and ledgers
  // advance identically and any thread count gives bit-identical results.
  // Each worker runs its macro's programs through a VerifyFirst controller;
  // the ProgramStats it returns (priced per instruction by macro::CostModel)
  // are the op's accounting source.
  const std::span<const std::uint64_t> av = a;
  const std::span<const std::uint64_t> bv = b;
  const macro::AdaptivePolicy pol = adaptive_policy();
  std::vector<std::uint64_t> cycles_m(macros, 0);
  std::vector<std::uint64_t> adaptive_m(macros, 0);
  std::vector<std::uint64_t> insts_m(macros, 0);
  std::vector<Joule> energy_m(macros, Joule(0.0));
  pool_.parallel_for(std::min(chunks, macros), [&](std::size_t m) {
    auto& mac = mem_.macro(m);
    macro::MacroController ctl(mac, macro::VerifyMode::VerifyFirst);
    std::vector<macro::TraceEntry> trace;
    for (std::size_t c = m; c < chunks; c += macros) {
      const std::size_t row_pair = c / macros;
      const auto [r_a, r_b] = place(row_pair);
      const std::size_t pos = c * per_op;
      const std::size_t len = std::min(per_op, n - pos);
      if (mult_layout) {
        if (res_a == nullptr) mac.poke_mult_operands(r_a, 0, op.bits, av.subspan(pos, len));
        if (res_b == nullptr) mac.poke_mult_operands(r_b, 0, op.bits, bv.subspan(pos, len));
      } else {
        if (res_a == nullptr) mac.poke_words(r_a, 0, op.bits, av.subspan(pos, len));
        if (!unary && res_b == nullptr) mac.poke_words(r_b, 0, op.bits, bv.subspan(pos, len));
      }
      trace.clear();
      const macro::ProgramStats ps = ctl.run(*progs[row_pair], &trace,
                                             /*fuse_mac_chains=*/false, pol);
      cycles_m[m] += ps.cycles;
      adaptive_m[m] += ps.adaptive_cycles_saved;
      insts_m[m] += ps.instructions;
      energy_m[m] += ps.energy;
      const BitVector& result = trace.back().result;
      if (mult_layout) {
        for (std::size_t i = 0; i < len; ++i)
          res.values[pos + i] = mac.peek_mult_product(result, i, op.bits);
      } else {
        for (std::size_t i = 0; i < len; ++i)
          res.values[pos + i] = result.extract_bits(i * op.bits, op.bits);
      }
    }
  });

  // Deterministic merge of the instruction-stream account: cycles are the
  // lock-step max across macros, energy the fixed bank-then-macro nested sum
  // -- the exact association the legacy ledger walk (Bank::total_energy
  // inside ImcMemory::total_energy) uses, so the doubles are bit-identical
  // to mem_.total_energy(). Cycle agreement with the ledger is asserted
  // here; the energy half of the conservation law is asserted in tests.
  res.stats.elements = n;
  std::uint64_t dense_elapsed = 0;  // the policy-off makespan of this stream
  for (std::size_t m = 0; m < macros; ++m) {
    res.stats.elapsed_cycles = std::max(res.stats.elapsed_cycles, cycles_m[m]);
    dense_elapsed = std::max(dense_elapsed, cycles_m[m] + adaptive_m[m]);
    res.stats.instructions += insts_m[m];
  }
  // Adaptive savings at the makespan level: unfused single-op programs have
  // cycles_m + adaptive_m == static cycles exactly (per-instruction
  // conservation), so dense_elapsed IS what a policy-off run would take and
  // the law dense == elapsed + adaptive_cycles_saved holds exactly.
  res.stats.adaptive_cycles_saved = dense_elapsed - res.stats.elapsed_cycles;
  const std::size_t per_bank = mem_.config().macros_per_bank;
  for (std::size_t bk = 0; bk < mem_.bank_count(); ++bk) {
    Joule bank_energy{0.0};
    for (std::size_t i = 0; i < mem_.bank(bk).macro_count(); ++i)
      bank_energy += energy_m[bk * per_bank + i];
    res.stats.energy += bank_energy;
  }
  BPIM_REQUIRE(res.stats.elapsed_cycles == mem_.elapsed_cycles(),
               "instruction-stream cycles diverge from the memory ledger");
  res.stats.elapsed_time =
      Second(static_cast<double>(res.stats.elapsed_cycles) * mem_.macro(0).cycle_time().si());

  // Operand load in the cycle model: one staged row = one lock-step
  // row-write cycle per layer (pokes carry no cycle cost in the seed
  // semantics; this feeds only the batch double-buffering account).
  // Resident sides load nothing beyond their one materializing write.
  acct.load_cycles = load;
  acct.saved_cycles = rows_per_layer * layers - load;
  acct.layers = layers;
  acct.transient_layers = transient;
  acct.handle_a = op.ra.id;
  acct.handle_b = op.rb.id;
  if (acct.saved_cycles > 0) residency_.note_saved(acct.saved_cycles);
  res.stats.load_cycles = acct.load_cycles;
  res.stats.load_cycles_saved = acct.saved_cycles;
  return res;
}

OpResult ExecutionEngine::run(const VecOp& op) {
  return run_batch(std::span<const VecOp>(&op, 1)).front();
}

std::vector<OpResult> ExecutionEngine::run_batch(std::span<const VecOp> ops) {
  if (ops.empty()) {
    // An empty batch never touches the pool or the memory's counters.
    batch_ = BatchStats{};
    return {};
  }
  BPIM_TRACE_SPAN(span, "engine.run_batch", trace_track_);

  std::vector<OpResult> results;
  results.reserve(ops.size());

  batch_ = BatchStats{};
  batch_.ops = ops.size();
  const std::size_t total_row_pairs = mem_.macro(0).rows() / 2;
  std::uint64_t prev_compute = 0;
  OpAccount prev{};
  for (std::size_t k = 0; k < ops.size(); ++k) {
    OpAccount acct;
    results.push_back(run_one(ops[k], acct));
    const RunStats& s = results.back().stats;
    batch_.elements += s.elements;
    batch_.instructions += s.instructions;
    batch_.load_cycles += acct.load_cycles;
    batch_.load_cycles_saved += acct.saved_cycles;
    batch_.compute_cycles += s.elapsed_cycles;
    batch_.adaptive_cycles_saved += s.adaptive_cycles_saved;
    batch_.energy += s.energy;
    // Double-buffered schedule: op k's load hides behind op k-1's compute --
    // but only when both ops fit in the array at once (their transient
    // regions plus the materialized pinned set), since the ping-pong load
    // needs row pairs that op k-1 is not still computing on. Two ops on
    // the same resident handle can never overlap: op k's activation write
    // targets the very pair op k-1 is computing on.
    const bool shares_handle =
        (acct.handle_a != 0 &&
         (acct.handle_a == prev.handle_a || acct.handle_a == prev.handle_b)) ||
        (acct.handle_b != 0 &&
         (acct.handle_b == prev.handle_a || acct.handle_b == prev.handle_b));
    const bool fits = prev.transient_layers + acct.transient_layers +
                          residency_.resident_layers() <=
                      total_row_pairs;
    const bool can_overlap = k > 0 && fits && !shares_handle;
    // prev_compute is 0 at k == 0, so the no-overlap arm also covers "the
    // first load has nothing to hide behind".
    batch_.pipelined_cycles += can_overlap ? std::max(prev_compute, acct.load_cycles)
                                           : prev_compute + acct.load_cycles;
    prev_compute = s.elapsed_cycles;
    prev = acct;
  }
  batch_.pipelined_cycles += prev_compute;  // last compute has nothing to hide behind
  batch_.serial_cycles = batch_.load_cycles + batch_.compute_cycles;
  batch_.elapsed_time = Second(static_cast<double>(batch_.pipelined_cycles) *
                               mem_.macro(0).cycle_time().si());
  span.arg("ops", static_cast<double>(batch_.ops));
  span.arg("pipelined_cycles", static_cast<double>(batch_.pipelined_cycles));
  span.arg("load_cycles_saved", static_cast<double>(batch_.load_cycles_saved));
  return results;
}

// ---- fusion (run_forward / compile_forward / run_chain) ---------------------

std::vector<macro::PinnedRows> ExecutionEngine::pinned_rows() const {
  std::vector<macro::PinnedRows> out;
  for (const auto& [base, layers] : residency_.materialized_intervals())
    out.push_back(macro::PinnedRows{2 * base, 2 * layers});
  return out;
}

ExecutionEngine::ForwardPlan ExecutionEngine::prepare_forward(
    std::span<const ResidentOperand> weights) {
  BPIM_REQUIRE(!weights.empty(), "fused forward needs at least one weight");
  ForwardPlan plan;
  plan.bits = weights.front().bits;
  plan.entries.reserve(weights.size());
  for (const ResidentOperand& w : weights) {
    BPIM_REQUIRE(static_cast<bool>(w), "fused forward weight has no handle");
    ResidencyManager::Entry* e = residency_.touch(w.id);
    BPIM_REQUIRE(e != nullptr,
                 "unknown resident operand (unpinned, or pinned on another engine)");
    BPIM_REQUIRE(e->handle.bits == plan.bits, "fused forward weights must share one precision");
    BPIM_REQUIRE(e->handle.layout == OperandLayout::MultUnit,
                 "fused forward weights must be pinned in MULT-unit layout");
    BPIM_REQUIRE(e->handle.elements == weights.front().elements,
                 "fused forward weights must share one length");
    plan.entries.push_back(e);
  }
  plan.elements = static_cast<std::size_t>(weights.front().elements);
  plan.per_op = mult_units_per_row(plan.bits);
  plan.chunks = (plan.elements + plan.per_op - 1) / plan.per_op;
  plan.layers = layers_for_elements(plan.elements, plan.bits, OperandLayout::MultUnit);
  plan.loaded.assign(weights.size(), 0);

  // The fused layout needs the activation region plus every weight resident
  // at once; op-at-a-time dispatch has no such requirement, so an oversized
  // shape simply stays unfusable and run_forward falls back.
  if ((weights.size() + 1) * plan.layers > row_pair_capacity()) return plan;

  residency_.reserve_transient(plan.layers);
  for (std::size_t j = 0; j < plan.entries.size(); ++j) {
    if (residency_.ensure_rows(*plan.entries[j])) {
      materialize(*plan.entries[j]);
      plan.load_cycles += plan.layers;
      plan.loaded[j] = 1;
    }
  }
  // Fragmentation -- or a sibling evicted while materializing a later
  // weight -- can still break the layout; check before committing to it.
  for (const ResidencyManager::Entry* e : plan.entries)
    if (!e->materialized || e->base_pair < plan.layers) return plan;
  plan.fusable = true;
  return plan;
}

FusedForward& ExecutionEngine::fused_program_for(const ForwardPlan& plan) {
  // FNV-1a over the handle ids; a (vanishingly rare) colliding id list just
  // recompiles every call, it can never run the wrong program.
  std::uint64_t key = 1469598103934665603ull;
  for (const ResidencyManager::Entry* e : plan.entries) {
    key ^= e->handle.id;
    key *= 1099511628211ull;
  }
  FusedForward& ff = fused_[key];
  const auto fresh = [&] {
    if (ff.programs.empty() || ff.bits != plan.bits || ff.elements != plan.elements ||
        ff.layers != plan.layers || ff.ids.size() != plan.entries.size())
      return false;
    for (std::size_t j = 0; j < plan.entries.size(); ++j)
      if (ff.ids[j] != plan.entries[j]->handle.id ||
          ff.base_pairs[j] != plan.entries[j]->base_pair)
        return false;
    return true;
  };
  if (fresh()) return ff;
  const bool rebuild = !ff.programs.empty();
  BPIM_TRACE_INSTANT(rebuild ? "fusion.recompile" : "fusion.compile", trace_track_,
                     {{"weights", static_cast<double>(plan.entries.size())},
                      {"layers", static_cast<double>(plan.layers)}});

  const std::size_t macros = mem_.macro_count();
  const macro::FusionCompiler compiler(mem_.macro(0).config().geometry, pinned_rows());
  FusedForward next;
  next.bits = plan.bits;
  next.elements = plan.elements;
  next.layers = plan.layers;
  for (const ResidencyManager::Entry* e : plan.entries) {
    next.ids.push_back(e->handle.id);
    next.base_pairs.push_back(e->base_pair);
  }
  next.programs.reserve(macros);
  for (std::size_t m = 0; m < macros; ++m) {
    // Macro m owns chunks m, m + M, ... (the run_one shard); its program
    // walks them layer-major with the op loop inside, so every MULT of a
    // layer shares the staged activation row and the chained datapath's
    // D1-staging discount applies to all but the first.
    const std::size_t layers_m = plan.chunks > m ? (plan.chunks - m - 1) / macros + 1 : 0;
    macro::MacForwardSpec spec;
    spec.bits = plan.bits;
    for (std::size_t l = 0; l < layers_m; ++l)
      for (const ResidencyManager::Entry* e : plan.entries)
        spec.steps.push_back(macro::MacStep{2 * l, 2 * (e->base_pair + l)});
    next.programs.push_back(spec.steps.empty() ? macro::Program{}
                                               : compiler.compile_mac_forward(spec));
  }
  next.fused_static_cycles = macro::FusionCompiler::fused_static_cycles(next.programs.front());
  ff = std::move(next);
  if (rebuild)
    ++fusion_stats_.recompiles;
  else
    ++fusion_stats_.compiles;
  return ff;
}

bool ExecutionEngine::compile_forward(std::span<const ResidentOperand> weights) {
  ForwardPlan plan = prepare_forward(weights);
  if (!plan.fusable) return false;
  (void)fused_program_for(plan);
  pending_load_ += plan.load_cycles;
  return true;
}

std::vector<OpResult> ExecutionEngine::run_forward(std::span<const ResidentOperand> weights,
                                                   std::span<const std::uint64_t> activation) {
  BPIM_TRACE_SPAN(span, "engine.run_forward", trace_track_);
  ForwardPlan plan = prepare_forward(weights);
  BPIM_REQUIRE(activation.size() == plan.elements,
               "activation length must match the pinned weights");
  if (!plan.fusable) {
    ++fusion_stats_.fallback_runs;
    BPIM_TRACE_INSTANT("fusion.fallback", trace_track_,
                       {{"weights", static_cast<double>(weights.size())}});
    std::vector<VecOp> ops(weights.size());
    for (std::size_t j = 0; j < weights.size(); ++j) {
      ops[j].kind = OpKind::Mult;
      ops[j].bits = plan.bits;
      ops[j].ra = weights[j];
      ops[j].b = activation;
    }
    std::vector<OpResult> out = run_batch(ops);
    // Weights prepare_forward already materialized load nothing inside
    // run_batch; keep their writes on this batch's account.
    batch_.load_cycles += plan.load_cycles;
    batch_.serial_cycles += plan.load_cycles;
    batch_.pipelined_cycles += plan.load_cycles;
    return out;
  }

  FusedForward& ff = fused_program_for(plan);
  const std::size_t ops = weights.size();
  const std::size_t macros = mem_.macro_count();
  const std::size_t active = std::min(plan.chunks, macros);
  mem_.reset_counters();

  // Stage the shared activation (even row of transient pair l for chunk
  // c = l*M + m) and run each macro's fused program on the chained datapath.
  // Per-macro programs and RNG streams are independent, so the parallel walk
  // stays bit-identical to a serial one.
  const macro::AdaptivePolicy pol = adaptive_policy();
  std::vector<std::vector<macro::TraceEntry>> traces(macros);
  std::vector<macro::ProgramStats> ps_m(macros);
  pool_.parallel_for(active, [&](std::size_t m) {
    auto& mac = mem_.macro(m);
    for (std::size_t c = m; c < plan.chunks; c += macros) {
      const std::size_t pos = c * plan.per_op;
      const std::size_t len = std::min(plan.per_op, plan.elements - pos);
      mac.poke_mult_operands(2 * (c / macros), 0, plan.bits, activation.subspan(pos, len));
    }
    macro::MacroController ctl(mac, macro::VerifyMode::VerifyFirst);
    traces[m].reserve(ff.programs[m].size());
    ps_m[m] = ctl.run(ff.programs[m], &traces[m], /*fuse_mac_chains=*/true, pol);
  });

  // Extraction: macro m's trace entry l*J + j is layer l of op j, covering
  // elements of chunk c = l*M + m.
  std::vector<OpResult> results(ops);
  for (OpResult& r : results) r.values.assign(plan.elements, 0);
  for (std::size_t m = 0; m < active; ++m) {
    auto& mac = mem_.macro(m);
    const std::size_t layers_m = traces[m].size() / ops;
    for (std::size_t l = 0; l < layers_m; ++l) {
      const std::size_t pos = (l * macros + m) * plan.per_op;
      const std::size_t len = std::min(plan.per_op, plan.elements - pos);
      for (std::size_t j = 0; j < ops; ++j) {
        const BitVector& product = traces[m][l * ops + j].result;
        for (std::size_t i = 0; i < len; ++i)
          results[j].values[pos + i] = mac.peek_mult_product(product, i, plan.bits);
      }
    }
  }

  // Per-op accounting: cycles from macro 0 (the max-layer macro; instruction
  // costs match across macros, so its walk is the lock-step critical path
  // and the per-op shares sum to mem_.elapsed_cycles()); energy merged in
  // fixed macro-then-layer order. Load: the activation (plus any weights
  // compile_forward staged early) bills to op 0, a weight materialized this
  // call bills to its own op; the baseline is 2 row writes per layer per op.
  const double tick = mem_.macro(0).cycle_time().si();
  const std::uint64_t table_mult = macro::op_cycles(macro::Op::Mult, plan.bits);
  const std::uint64_t pending = pending_load_;
  pending_load_ = 0;
  const std::size_t layers0 = traces[0].size() / ops;
  std::uint64_t saved_total = 0;
  std::uint64_t fused_saved_total = 0;
  for (std::size_t j = 0; j < ops; ++j) {
    RunStats& s = results[j].stats;
    s.elements = plan.elements;
    for (std::size_t l = 0; l < layers0; ++l) {
      s.elapsed_cycles += traces[0][l * ops + j].cycles;
      s.adaptive_cycles_saved += traces[0][l * ops + j].adaptive_cycles_saved;
    }
    for (std::size_t m = 0; m < active; ++m) {
      const std::size_t layers_m = traces[m].size() / ops;
      s.instructions += layers_m;  // one MULT per layer per macro
      for (std::size_t l = 0; l < layers_m; ++l) s.energy += traces[m][l * ops + j].op_energy;
    }
    s.elapsed_time = Second(static_cast<double>(s.elapsed_cycles) * tick);
    // Per-instruction conservation splits each MULT's Table 1 cost three
    // ways exactly: executed + fused discount + adaptive discount.
    s.fused_cycles_saved = table_mult * layers0 - s.elapsed_cycles - s.adaptive_cycles_saved;
    fused_saved_total += s.fused_cycles_saved;
    s.load_cycles = (plan.loaded[j] ? plan.layers : 0) +
                    (j == 0 ? plan.layers + pending : 0);
    const std::uint64_t baseline = 2 * plan.layers;
    s.load_cycles_saved = s.load_cycles >= baseline ? 0 : baseline - s.load_cycles;
    saved_total += s.load_cycles_saved;
  }
  if (saved_total > 0) residency_.note_saved(saved_total);

  batch_ = BatchStats{};
  batch_.ops = ops;
  batch_.elements = static_cast<std::uint64_t>(ops) * plan.elements;
  for (const OpResult& r : results) batch_.instructions += r.stats.instructions;
  batch_.load_cycles = plan.load_cycles + pending + plan.layers;
  batch_.load_cycles_saved = saved_total;
  batch_.compute_cycles = mem_.elapsed_cycles();
  batch_.serial_cycles = batch_.load_cycles + batch_.compute_cycles;
  // One fused program: there is no op boundary left to ping-pong loads
  // across, and nothing to hide the single activation load behind.
  batch_.pipelined_cycles = batch_.serial_cycles;
  batch_.fused_cycles_saved = fused_saved_total;
  // Makespan-level adaptive account: per-macro cycles + adaptive equals the
  // same-fusion-pattern policy-off walk, so the max-over-macros difference
  // is exactly what the policy took off the batch's critical path.
  std::uint64_t dense_elapsed = 0;
  for (std::size_t m = 0; m < active; ++m)
    dense_elapsed = std::max(dense_elapsed, ps_m[m].cycles + ps_m[m].adaptive_cycles_saved);
  batch_.adaptive_cycles_saved = dense_elapsed - batch_.compute_cycles;
  batch_.energy = mem_.total_energy();
  batch_.elapsed_time = Second(static_cast<double>(batch_.pipelined_cycles) * tick);
  ++fusion_stats_.fused_runs;
  span.arg("ops", static_cast<double>(ops));
  span.arg("pipelined_cycles", static_cast<double>(batch_.pipelined_cycles));
  span.arg("fused_cycles_saved", static_cast<double>(batch_.fused_cycles_saved));
  return results;
}

OpResult ExecutionEngine::run_chain(const ChainRequest& req) {
  BPIM_TRACE_SPAN(span, "engine.run_chain", trace_track_);
  BPIM_REQUIRE(!req.links.empty(), "a chain needs at least one link");
  BPIM_REQUIRE(macro::is_supported_precision(req.bits), "unsupported precision");
  BPIM_REQUIRE(macro::is_supported_precision(2 * req.bits),
               "chain links run at 2x the head precision, which the ISA lacks here");
  BPIM_REQUIRE(!req.a.empty(), "chain operands must be non-empty");
  BPIM_REQUIRE(req.a.size() == req.b.size(), "operand vectors must have equal length");
  for (const ChainLink& link : req.links)
    BPIM_REQUIRE(link.values.size() == req.a.size(),
                 "link operand length must match the head operands");

  const std::size_t n = req.a.size();
  const std::size_t per_op = mult_units_per_row(req.bits);
  const std::size_t macros = mem_.macro_count();
  const std::size_t chunks = (n + per_op - 1) / per_op;
  const std::size_t layers = (chunks + macros - 1) / macros;
  const std::size_t links = req.links.size();
  // Rows per layer: head operands a + b plus one row per link operand.
  const std::size_t pairs_per_layer = (2 + links + 1) / 2;
  BPIM_REQUIRE(pairs_per_layer * layers <= row_pair_capacity(), "chain exceeds memory capacity");
  residency_.reserve_transient(pairs_per_layer * layers);

  const macro::FusionCompiler compiler(mem_.macro(0).config().geometry, pinned_rows());
  std::vector<macro::Program> programs;
  programs.reserve(macros);
  for (std::size_t m = 0; m < macros; ++m) {
    const std::size_t layers_m = chunks > m ? (chunks - m - 1) / macros + 1 : 0;
    macro::ChainSpec spec;
    spec.bits = req.bits;
    for (std::size_t l = 0; l < layers_m; ++l) {
      macro::ChainLayerSpec layer;
      layer.a_row = 2 * pairs_per_layer * l;
      layer.b_row = layer.a_row + 1;
      for (std::size_t j = 0; j < links; ++j)
        layer.links.emplace_back(req.links[j].kind, layer.a_row + 2 + j);
      spec.layers.push_back(std::move(layer));
    }
    programs.push_back(spec.layers.empty() ? macro::Program{} : compiler.compile_chain(spec));
  }
  mem_.reset_counters();

  const macro::AdaptivePolicy pol = adaptive_policy();
  std::vector<std::vector<macro::TraceEntry>> traces(macros);
  std::vector<macro::ProgramStats> ps_m(macros);
  const std::size_t active = std::min(chunks, macros);
  pool_.parallel_for(active, [&](std::size_t m) {
    auto& mac = mem_.macro(m);
    for (std::size_t c = m; c < chunks; c += macros) {
      const std::size_t base = 2 * pairs_per_layer * (c / macros);
      const std::size_t pos = c * per_op;
      const std::size_t len = std::min(per_op, n - pos);
      mac.poke_mult_operands(base, 0, req.bits, req.a.subspan(pos, len));
      mac.poke_mult_operands(base + 1, 0, req.bits, req.b.subspan(pos, len));
      // Link operands are full 2N-bit fields, aligned with the product
      // units (words_per_row(2N) == mult_units_per_row(N)).
      for (std::size_t j = 0; j < links; ++j)
        mac.poke_words(base + 2 + j, 0, 2 * req.bits, req.links[j].values.subspan(pos, len));
    }
    macro::MacroController ctl(mac, macro::VerifyMode::VerifyFirst);
    traces[m].reserve(programs[m].size());
    ps_m[m] = ctl.run(programs[m], &traces[m], /*fuse_mac_chains=*/true, pol);
  });

  // The last link of each layer block drives the chain's value out.
  OpResult res;
  res.values.assign(n, 0);
  const std::size_t block = 1 + links;
  for (std::size_t m = 0; m < active; ++m) {
    auto& mac = mem_.macro(m);
    const std::size_t layers_m = traces[m].size() / block;
    for (std::size_t l = 0; l < layers_m; ++l) {
      const std::size_t pos = (l * macros + m) * per_op;
      const std::size_t len = std::min(per_op, n - pos);
      const BitVector& out = traces[m][l * block + links].result;
      for (std::size_t i = 0; i < len; ++i)
        res.values[pos + i] = mac.peek_mult_product(out, i, req.bits);
    }
  }

  // Load account: a, b and each link operand stage once per layer. The
  // op-at-a-time equivalent re-stages the spilled intermediate next to every
  // link operand -- 2 rows per link per layer -- so the chain saves one row
  // write per link per layer.
  const std::uint64_t load = (2 + links) * layers;
  const std::uint64_t saved = links * layers;
  residency_.note_saved(saved);

  const double tick = mem_.macro(0).cycle_time().si();
  res.stats.elements = n;
  for (const auto& t : traces) res.stats.instructions += t.size();
  res.stats.elapsed_cycles = mem_.elapsed_cycles();
  res.stats.energy = mem_.total_energy();
  res.stats.elapsed_time = Second(static_cast<double>(res.stats.elapsed_cycles) * tick);
  res.stats.load_cycles = load;
  res.stats.load_cycles_saved = saved;
  std::uint64_t dense_elapsed = 0;  // same-fusion-pattern policy-off makespan
  for (std::size_t m = 0; m < active; ++m)
    dense_elapsed = std::max(dense_elapsed, ps_m[m].cycles + ps_m[m].adaptive_cycles_saved);
  res.stats.adaptive_cycles_saved = dense_elapsed - res.stats.elapsed_cycles;

  batch_ = BatchStats{};
  batch_.ops = 1;
  batch_.elements = n;
  batch_.instructions = res.stats.instructions;
  batch_.load_cycles = load;
  batch_.load_cycles_saved = saved;
  batch_.compute_cycles = res.stats.elapsed_cycles;
  batch_.serial_cycles = load + batch_.compute_cycles;
  batch_.pipelined_cycles = batch_.serial_cycles;
  batch_.adaptive_cycles_saved = res.stats.adaptive_cycles_saved;
  batch_.energy = res.stats.energy;
  batch_.elapsed_time = Second(static_cast<double>(batch_.pipelined_cycles) * tick);
  ++fusion_stats_.chain_runs;
  return res;
}

}  // namespace bpim::engine
