#include "engine/execution_engine.hpp"

#include <algorithm>
#include <thread>

#include "common/require.hpp"
#include "macro/isa.hpp"

namespace bpim::engine {

using array::RowRef;

namespace {

BitVector exec_chunk(macro::ImcMacro& mac, const VecOp& op, RowRef ra, RowRef rb) {
  switch (op.kind) {
    case OpKind::Add:
      return mac.add_rows(ra, rb, op.bits);
    case OpKind::Sub:
      return mac.sub_rows(ra, rb, op.bits);
    case OpKind::Mult:
      return mac.mult_rows(ra, rb, op.bits);
    case OpKind::Logic:
      break;
  }
  return mac.logic_rows(op.fn, ra, rb);
}

}  // namespace

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Add:
      return "ADD";
    case OpKind::Sub:
      return "SUB";
    case OpKind::Mult:
      return "MULT";
    case OpKind::Logic:
      return "LOGIC";
  }
  return "?";
}

namespace {

// More workers than macros can never help: the macro is the unit of
// parallelism, so cap the pool and spare the surplus threads the wake-up
// on every op.
std::size_t useful_threads(const EngineConfig& cfg, const macro::ImcMemory& mem) {
  std::size_t t = cfg.threads != 0 ? cfg.threads
                                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(t, mem.macro_count());
}

}  // namespace

ExecutionEngine::ExecutionEngine(macro::ImcMemory& mem, EngineConfig cfg)
    : mem_(mem), pool_(useful_threads(cfg, mem)), residency_(mem.macro(0).rows() / 2) {}

std::size_t ExecutionEngine::words_per_row(unsigned bits) const {
  return mem_.macro(0).words_per_row(bits);
}

std::size_t ExecutionEngine::mult_units_per_row(unsigned bits) const {
  return mem_.macro(0).mult_units_per_row(bits);
}

namespace {

OperandLayout layout_of(OpKind kind) {
  return kind == OpKind::Mult ? OperandLayout::MultUnit : OperandLayout::Word;
}

}  // namespace

std::size_t ExecutionEngine::elements_per_chunk(const VecOp& op) const {
  return elements_per_chunk(op.bits, layout_of(op.kind));
}

std::size_t ExecutionEngine::elements_per_chunk(unsigned bits, OperandLayout layout) const {
  return layout == OperandLayout::MultUnit ? mult_units_per_row(bits) : words_per_row(bits);
}

std::size_t ExecutionEngine::layers_for_elements(std::size_t elements, unsigned bits,
                                                 OperandLayout layout) const {
  const std::size_t per_op = elements_per_chunk(bits, layout);
  const std::size_t chunks = (elements + per_op - 1) / per_op;
  return (chunks + mem_.macro_count() - 1) / mem_.macro_count();
}

std::size_t ExecutionEngine::layer_capacity(unsigned bits) const {
  return words_per_row(bits) * mem_.macro_count();
}

std::size_t ExecutionEngine::layers_for(const VecOp& op) const {
  return layers_for_elements(op.length(), op.bits, layout_of(op.kind));
}

std::size_t ExecutionEngine::row_pair_capacity() const { return mem_.macro(0).rows() / 2; }

ResidentOperand ExecutionEngine::pin(std::span<const std::uint64_t> values, unsigned bits,
                                     OperandLayout layout) {
  BPIM_REQUIRE(macro::is_supported_precision(bits), "unsupported precision");
  for (const std::uint64_t v : values)
    BPIM_REQUIRE(BitVector::fits_u64(v, bits), "value does not fit precision");
  return residency_.pin(values, bits, layout,
                        layers_for_elements(values.size(), bits, layout));
}

bool ExecutionEngine::unpin(const ResidentOperand& handle) {
  return handle ? residency_.unpin(handle.id) : false;
}

void ExecutionEngine::materialize(ResidencyManager::Entry& entry) {
  const unsigned bits = entry.handle.bits;
  const bool mult_layout = entry.handle.layout == OperandLayout::MultUnit;
  const std::size_t per_op = elements_per_chunk(bits, entry.handle.layout);
  const std::size_t macros = mem_.macro_count();
  const std::size_t n = entry.values.size();
  const std::size_t chunks = (n + per_op - 1) / per_op;
  const std::span<const std::uint64_t> values(entry.values);
  for (std::size_t c = 0; c < chunks; ++c) {
    auto& mac = mem_.macro(c % macros);
    const std::size_t row = 2 * (entry.base_pair + c / macros);
    const std::size_t pos = c * per_op;
    const std::size_t len = std::min(per_op, n - pos);
    if (mult_layout) {
      mac.poke_mult_operands(row, 0, bits, values.subspan(pos, len));
    } else {
      mac.poke_words(row, 0, bits, values.subspan(pos, len));
    }
  }
}

OpResult ExecutionEngine::run_one(const VecOp& op, OpAccount& acct) {
  const bool mult_layout = op.kind == OpKind::Mult;
  const OperandLayout want = mult_layout ? OperandLayout::MultUnit : OperandLayout::Word;

  // Resolve each side to a data span plus (for handles) the live entry.
  const auto resolve = [&](std::span<const std::uint64_t> s, const ResidentOperand& h)
      -> std::pair<std::span<const std::uint64_t>, ResidencyManager::Entry*> {
    if (!h) return {s, nullptr};
    BPIM_REQUIRE(s.empty(), "operand side has both a span and a resident handle");
    ResidencyManager::Entry* e = residency_.touch(h.id);
    BPIM_REQUIRE(e != nullptr, "unknown resident operand (unpinned, or pinned on another engine)");
    BPIM_REQUIRE(e->handle.bits == op.bits, "resident operand precision mismatch");
    BPIM_REQUIRE(e->handle.layout == want, "resident operand layout does not fit the op kind");
    return {std::span<const std::uint64_t>(e->values), e};
  };
  const auto [a, ea] = resolve(op.a, op.ra);
  const auto [b, eb] = resolve(op.b, op.rb);
  BPIM_REQUIRE(a.size() == b.size(), "operand vectors must have equal length");
  BPIM_REQUIRE(macro::is_supported_precision(op.bits), "unsupported precision");
  BPIM_REQUIRE(ea == nullptr || ea != eb, "a resident operand cannot be both sides of one op");
  // Two handles must fit the array together -- each side passed the
  // per-handle bound at pin(), but their pair sum is only known here.
  if (ea != nullptr && eb != nullptr)
    BPIM_REQUIRE(ea->handle.layers + eb->handle.layers <= row_pair_capacity(),
                 "resident operand pair exceeds memory capacity");
  mem_.reset_counters();

  const std::size_t n = a.size();
  const std::size_t per_op = elements_per_chunk(op);
  const std::size_t macros = mem_.macro_count();
  const std::size_t chunks = (n + per_op - 1) / per_op;
  // Single source of truth with the serve scheduler's residency budget.
  const std::size_t layers = layers_for(op);
  if (layers > 0)
    BPIM_REQUIRE(2 * (layers - 1) + 1 < mem_.macro(0).rows(), "vector exceeds memory capacity");

  // Row residency: a fully-transient op stages in pairs [0, layers) exactly
  // as before; an op with a resident side computes in the handle's own
  // pairs (activation in the odd row) and consumes no transient pairs.
  // Eviction (LRU) happens here when the pinned set and the transient
  // region collide, and evicted handles re-materialize on use.
  const std::size_t transient = (ea != nullptr || eb != nullptr) ? 0 : layers;
  if (transient > 0) residency_.reserve_transient(transient);
  std::uint64_t load = transient > 0 ? 2 * layers : 0;
  if (ea != nullptr && residency_.ensure_rows(*ea, eb)) {
    materialize(*ea);
    load += layers;  // the one materializing write, charged to this batch
  }
  if (eb != nullptr && residency_.ensure_rows(*eb, ea)) {
    materialize(*eb);
    load += layers;
  }
  if ((ea != nullptr) != (eb != nullptr)) load += layers;  // the activation side

  OpResult res;
  res.values.assign(n, 0);

  // Shard: macro m owns chunks m, m + M, m + 2M, ... -- the same per-macro
  // chunk sequence as the serial layer walk, so RNG streams and ledgers
  // advance identically and any thread count gives bit-identical results.
  const std::size_t base_a = ea != nullptr ? ea->base_pair : 0;
  const std::size_t base_b = eb != nullptr ? eb->base_pair : 0;
  const std::span<const std::uint64_t> av = a;
  const std::span<const std::uint64_t> bv = b;
  const ResidencyManager::Entry* res_a = ea;
  const ResidencyManager::Entry* res_b = eb;
  pool_.parallel_for(std::min(chunks, macros), [&](std::size_t m) {
    auto& mac = mem_.macro(m);
    for (std::size_t c = m; c < chunks; c += macros) {
      const std::size_t row_pair = c / macros;
      std::size_t r_a, r_b;
      if (res_a == nullptr && res_b == nullptr) {
        r_a = 2 * row_pair;
        r_b = 2 * row_pair + 1;
      } else if (res_a != nullptr && res_b != nullptr) {
        r_a = 2 * (base_a + row_pair);
        r_b = 2 * (base_b + row_pair);
      } else if (res_a != nullptr) {
        r_a = 2 * (base_a + row_pair);
        r_b = r_a + 1;
      } else {
        r_b = 2 * (base_b + row_pair);
        r_a = r_b + 1;
      }
      const std::size_t pos = c * per_op;
      const std::size_t len = std::min(per_op, n - pos);
      if (mult_layout) {
        if (res_a == nullptr) mac.poke_mult_operands(r_a, 0, op.bits, av.subspan(pos, len));
        if (res_b == nullptr) mac.poke_mult_operands(r_b, 0, op.bits, bv.subspan(pos, len));
      } else {
        if (res_a == nullptr) mac.poke_words(r_a, 0, op.bits, av.subspan(pos, len));
        if (res_b == nullptr) mac.poke_words(r_b, 0, op.bits, bv.subspan(pos, len));
      }
      const BitVector result = exec_chunk(mac, op, RowRef::main(r_a), RowRef::main(r_b));
      if (mult_layout) {
        for (std::size_t i = 0; i < len; ++i)
          res.values[pos + i] = mac.peek_mult_product(result, i, op.bits);
      } else {
        for (std::size_t i = 0; i < len; ++i)
          res.values[pos + i] = result.extract_bits(i * op.bits, op.bits);
      }
    }
  });

  // Deterministic merge: bank/macro traversal order is fixed, so the energy
  // sum and cycle max are the same doubles/ints the serial path produced.
  res.stats.elements = n;
  res.stats.elapsed_cycles = mem_.elapsed_cycles();
  res.stats.energy = mem_.total_energy();
  res.stats.elapsed_time =
      Second(static_cast<double>(res.stats.elapsed_cycles) * mem_.macro(0).cycle_time().si());

  // Operand load in the cycle model: one row pair = 2 lock-step row-write
  // cycles per layer (pokes carry no cycle cost in the seed semantics; this
  // feeds only the batch double-buffering account). Resident sides load
  // nothing beyond their one materializing write.
  acct.load_cycles = load;
  acct.saved_cycles = 2 * layers - load;
  acct.layers = layers;
  acct.transient_layers = transient;
  acct.handle_a = op.ra.id;
  acct.handle_b = op.rb.id;
  if (acct.saved_cycles > 0) residency_.note_saved(acct.saved_cycles);
  res.stats.load_cycles = acct.load_cycles;
  res.stats.load_cycles_saved = acct.saved_cycles;
  return res;
}

OpResult ExecutionEngine::run(const VecOp& op) {
  return run_batch(std::span<const VecOp>(&op, 1)).front();
}

std::vector<OpResult> ExecutionEngine::run_batch(std::span<const VecOp> ops) {
  if (ops.empty()) {
    // An empty batch never touches the pool or the memory's counters.
    batch_ = BatchStats{};
    return {};
  }

  std::vector<OpResult> results;
  results.reserve(ops.size());

  batch_ = BatchStats{};
  batch_.ops = ops.size();
  const std::size_t total_row_pairs = mem_.macro(0).rows() / 2;
  std::uint64_t prev_compute = 0;
  OpAccount prev{};
  for (std::size_t k = 0; k < ops.size(); ++k) {
    OpAccount acct;
    results.push_back(run_one(ops[k], acct));
    const RunStats& s = results.back().stats;
    batch_.elements += s.elements;
    batch_.load_cycles += acct.load_cycles;
    batch_.load_cycles_saved += acct.saved_cycles;
    batch_.compute_cycles += s.elapsed_cycles;
    batch_.energy += s.energy;
    // Double-buffered schedule: op k's load hides behind op k-1's compute --
    // but only when both ops fit in the array at once (their transient
    // regions plus the materialized pinned set), since the ping-pong load
    // needs row pairs that op k-1 is not still computing on. Two ops on
    // the same resident handle can never overlap: op k's activation write
    // targets the very pair op k-1 is computing on.
    const bool shares_handle =
        (acct.handle_a != 0 &&
         (acct.handle_a == prev.handle_a || acct.handle_a == prev.handle_b)) ||
        (acct.handle_b != 0 &&
         (acct.handle_b == prev.handle_a || acct.handle_b == prev.handle_b));
    const bool fits = prev.transient_layers + acct.transient_layers +
                          residency_.resident_layers() <=
                      total_row_pairs;
    const bool can_overlap = k > 0 && fits && !shares_handle;
    // prev_compute is 0 at k == 0, so the no-overlap arm also covers "the
    // first load has nothing to hide behind".
    batch_.pipelined_cycles += can_overlap ? std::max(prev_compute, acct.load_cycles)
                                           : prev_compute + acct.load_cycles;
    prev_compute = s.elapsed_cycles;
    prev = acct;
  }
  batch_.pipelined_cycles += prev_compute;  // last compute has nothing to hide behind
  batch_.serial_cycles = batch_.load_cycles + batch_.compute_cycles;
  batch_.elapsed_time = Second(static_cast<double>(batch_.pipelined_cycles) *
                               mem_.macro(0).cycle_time().si());
  return results;
}

}  // namespace bpim::engine
