#include "engine/execution_engine.hpp"

#include <algorithm>
#include <thread>

#include "common/require.hpp"
#include "macro/isa.hpp"

namespace bpim::engine {

using array::RowRef;

namespace {

BitVector exec_chunk(macro::ImcMacro& mac, const VecOp& op, RowRef ra, RowRef rb) {
  switch (op.kind) {
    case OpKind::Add:
      return mac.add_rows(ra, rb, op.bits);
    case OpKind::Sub:
      return mac.sub_rows(ra, rb, op.bits);
    case OpKind::Mult:
      return mac.mult_rows(ra, rb, op.bits);
    case OpKind::Logic:
      break;
  }
  return mac.logic_rows(op.fn, ra, rb);
}

}  // namespace

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Add:
      return "ADD";
    case OpKind::Sub:
      return "SUB";
    case OpKind::Mult:
      return "MULT";
    case OpKind::Logic:
      return "LOGIC";
  }
  return "?";
}

namespace {

// More workers than macros can never help: the macro is the unit of
// parallelism, so cap the pool and spare the surplus threads the wake-up
// on every op.
std::size_t useful_threads(const EngineConfig& cfg, const macro::ImcMemory& mem) {
  std::size_t t = cfg.threads != 0 ? cfg.threads
                                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(t, mem.macro_count());
}

}  // namespace

ExecutionEngine::ExecutionEngine(macro::ImcMemory& mem, EngineConfig cfg)
    : mem_(mem), pool_(useful_threads(cfg, mem)) {}

std::size_t ExecutionEngine::words_per_row(unsigned bits) const {
  return mem_.macro(0).words_per_row(bits);
}

std::size_t ExecutionEngine::mult_units_per_row(unsigned bits) const {
  return mem_.macro(0).mult_units_per_row(bits);
}

std::size_t ExecutionEngine::elements_per_chunk(const VecOp& op) const {
  return op.kind == OpKind::Mult ? mult_units_per_row(op.bits) : words_per_row(op.bits);
}

std::size_t ExecutionEngine::layer_capacity(unsigned bits) const {
  return words_per_row(bits) * mem_.macro_count();
}

std::size_t ExecutionEngine::layers_for(const VecOp& op) const {
  const std::size_t per_op = elements_per_chunk(op);
  const std::size_t chunks = (op.a.size() + per_op - 1) / per_op;
  return (chunks + mem_.macro_count() - 1) / mem_.macro_count();
}

std::size_t ExecutionEngine::row_pair_capacity() const { return mem_.macro(0).rows() / 2; }

OpResult ExecutionEngine::run_one(const VecOp& op, std::uint64_t& load_cycles,
                                  std::size_t& layers_used) {
  BPIM_REQUIRE(op.a.size() == op.b.size(), "operand vectors must have equal length");
  BPIM_REQUIRE(macro::is_supported_precision(op.bits), "unsupported precision");
  mem_.reset_counters();

  const std::size_t n = op.a.size();
  const std::size_t per_op = elements_per_chunk(op);
  const std::size_t macros = mem_.macro_count();
  const std::size_t chunks = (n + per_op - 1) / per_op;
  // Single source of truth with the serve scheduler's residency budget.
  const std::size_t layers = layers_for(op);
  const bool mult_layout = op.kind == OpKind::Mult;
  if (layers > 0)
    BPIM_REQUIRE(2 * (layers - 1) + 1 < mem_.macro(0).rows(), "vector exceeds memory capacity");

  OpResult res;
  res.values.assign(n, 0);

  // Shard: macro m owns chunks m, m + M, m + 2M, ... -- the same per-macro
  // chunk sequence as the serial layer walk, so RNG streams and ledgers
  // advance identically and any thread count gives bit-identical results.
  const std::span<const std::uint64_t> a = op.a;
  const std::span<const std::uint64_t> b = op.b;
  pool_.parallel_for(std::min(chunks, macros), [&](std::size_t m) {
    auto& mac = mem_.macro(m);
    for (std::size_t c = m; c < chunks; c += macros) {
      const std::size_t row_pair = c / macros;
      const std::size_t r_a = 2 * row_pair;
      const std::size_t r_b = 2 * row_pair + 1;
      const std::size_t pos = c * per_op;
      const std::size_t len = std::min(per_op, n - pos);
      if (mult_layout) {
        mac.poke_mult_operands(r_a, 0, op.bits, a.subspan(pos, len));
        mac.poke_mult_operands(r_b, 0, op.bits, b.subspan(pos, len));
      } else {
        mac.poke_words(r_a, 0, op.bits, a.subspan(pos, len));
        mac.poke_words(r_b, 0, op.bits, b.subspan(pos, len));
      }
      const BitVector result = exec_chunk(mac, op, RowRef::main(r_a), RowRef::main(r_b));
      if (mult_layout) {
        for (std::size_t i = 0; i < len; ++i)
          res.values[pos + i] = mac.peek_mult_product(result, i, op.bits);
      } else {
        for (std::size_t i = 0; i < len; ++i)
          res.values[pos + i] = result.extract_bits(i * op.bits, op.bits);
      }
    }
  });

  // Deterministic merge: bank/macro traversal order is fixed, so the energy
  // sum and cycle max are the same doubles/ints the serial path produced.
  res.stats.elements = n;
  res.stats.elapsed_cycles = mem_.elapsed_cycles();
  res.stats.energy = mem_.total_energy();
  res.stats.elapsed_time =
      Second(static_cast<double>(res.stats.elapsed_cycles) * mem_.macro(0).cycle_time().si());

  // Operand load in the cycle model: one row pair = 2 lock-step row-write
  // cycles per layer (pokes carry no cycle cost in the seed semantics; this
  // feeds only the batch double-buffering account).
  load_cycles = 2 * layers;
  layers_used = layers;
  return res;
}

OpResult ExecutionEngine::run(const VecOp& op) {
  return run_batch(std::span<const VecOp>(&op, 1)).front();
}

std::vector<OpResult> ExecutionEngine::run_batch(std::span<const VecOp> ops) {
  if (ops.empty()) {
    // An empty batch never touches the pool or the memory's counters.
    batch_ = BatchStats{};
    return {};
  }

  std::vector<OpResult> results;
  results.reserve(ops.size());

  batch_ = BatchStats{};
  batch_.ops = ops.size();
  const std::size_t total_row_pairs = mem_.macro(0).rows() / 2;
  std::uint64_t prev_compute = 0;
  std::size_t prev_layers = 0;
  for (std::size_t k = 0; k < ops.size(); ++k) {
    std::uint64_t load = 0;
    std::size_t layers = 0;
    results.push_back(run_one(ops[k], load, layers));
    const RunStats& s = results.back().stats;
    batch_.elements += s.elements;
    batch_.load_cycles += load;
    batch_.compute_cycles += s.elapsed_cycles;
    batch_.energy += s.energy;
    // Double-buffered schedule: op k's load hides behind op k-1's compute --
    // but only when both ops fit in the array at once, since the ping-pong
    // load needs row pairs that op k-1 is not still computing on.
    const bool can_overlap = k > 0 && prev_layers + layers <= total_row_pairs;
    // prev_compute is 0 at k == 0, so the no-overlap arm also covers "the
    // first load has nothing to hide behind".
    batch_.pipelined_cycles += can_overlap ? std::max(prev_compute, load)
                                           : prev_compute + load;
    prev_compute = s.elapsed_cycles;
    prev_layers = layers;
  }
  batch_.pipelined_cycles += prev_compute;  // last compute has nothing to hide behind
  batch_.serial_cycles = batch_.load_cycles + batch_.compute_cycles;
  batch_.elapsed_time = Second(static_cast<double>(batch_.pipelined_cycles) *
                               mem_.macro(0).cycle_time().si());
  return results;
}

}  // namespace bpim::engine
