#include "engine/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace bpim::engine {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  target_threads_ = threads;
}

void ThreadPool::start_workers() {
  workers_.reserve(target_threads_ - 1);
  for (std::size_t i = 0; i + 1 < target_threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.wait(mutex_);
      if (stop_) return;
      seen_epoch = epoch_;
      ++busy_;
    }
    drain();
    {
      MutexLock lock(mutex_);
      --busy_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::drain() {
  for (;;) {
    std::size_t i;
    const std::function<void(std::size_t)>* fn;
    {
      MutexLock lock(mutex_);
      if (next_index_ >= job_size_) return;
      i = next_index_++;
      fn = fn_;  // stable for the job's lifetime; snapshot under the lock
    }
    try {
      (*fn)(i);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
      next_index_ = job_size_;  // abandon remaining indices
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (target_threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (workers_.empty()) start_workers();
  {
    MutexLock lock(mutex_);
    fn_ = &fn;
    job_size_ = n;
    next_index_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain();  // the caller works too
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (busy_ != 0) done_cv_.wait(mutex_);
    fn_ = nullptr;
    job_size_ = 0;
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);  // outside the lock
}

}  // namespace bpim::engine
