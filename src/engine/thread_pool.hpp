#pragma once
// Persistent worker pool for the ExecutionEngine.
//
// The pool exposes exactly one primitive, parallel_for(n, fn): run fn(i) for
// every i in [0, n) across the workers plus the calling thread, blocking
// until all indices are done. Workers park on a condition variable between
// jobs, so the pool amortises thread start-up across every vector op of a
// workload instead of paying it per call.
//
// Indices are handed out through a shared cursor under mutex_ (dynamic
// scheduling). Determinism of the engine does NOT depend on which thread
// runs which index: each index owns a disjoint slice of macros/output, so
// any schedule produces identical results.
//
// Lock discipline is annotated for clang Thread Safety Analysis (see
// common/thread_annotations.hpp): every job field is GUARDED_BY(mutex_),
// proven at compile time by the CI `thread-safety` job.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace bpim::engine {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// 0 means std::thread::hardware_concurrency(). A pool of 1 runs every
  /// job inline. Workers start lazily on the first parallel_for that can
  /// use them, so short-lived pools that never fan out cost nothing.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + calling thread), whether or not the
  /// workers have started yet.
  [[nodiscard]] std::size_t thread_count() const { return target_threads_; }

  /// Run fn(i) for all i in [0, n); returns when every index has finished.
  /// The calling thread participates. The first exception thrown by any
  /// fn(i) is rethrown on the caller after the job drains. Not reentrant.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      BPIM_EXCLUDES(mutex_);

 private:
  void worker_loop() BPIM_EXCLUDES(mutex_);
  /// Pull indices from the current job until exhausted.
  void drain() BPIM_EXCLUDES(mutex_);
  /// Spawn the workers (first fan-out only; caller-thread serialised).
  void start_workers();

  std::size_t target_threads_ = 1;
  std::vector<std::thread> workers_;  ///< caller-thread only (lazy start, dtor join)

  Mutex mutex_;
  CondVar work_cv_;  ///< wakes workers for a new job
  CondVar done_cv_;  ///< wakes the caller when a job drains
  const std::function<void(std::size_t)>* fn_ BPIM_GUARDED_BY(mutex_) = nullptr;
  std::size_t job_size_ BPIM_GUARDED_BY(mutex_) = 0;
  std::size_t next_index_ BPIM_GUARDED_BY(mutex_) = 0;
  std::size_t busy_ BPIM_GUARDED_BY(mutex_) = 0;  ///< workers still inside the current job
  std::uint64_t epoch_ BPIM_GUARDED_BY(mutex_) = 0;  ///< bumped per job so workers never re-run one
  bool stop_ BPIM_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ BPIM_GUARDED_BY(mutex_);
};

}  // namespace bpim::engine
