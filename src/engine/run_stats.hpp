#pragma once
// Run-level accounting shared by the ExecutionEngine and the app layer.
//
// RunStats describes one vector operation in modelled-silicon terms:
// elapsed_cycles is the lock-step maximum across macros (all macros of a
// layer fire together), energy is the sum over every macro's ledger. Both
// are merged deterministically after the parallel workers join, so the
// numbers are bit-identical to a serial execution at any thread count.

#include <cstdint>

#include "common/units.hpp"

namespace bpim::engine {

struct RunStats {
  std::uint64_t elements = 0;
  /// Macro ISA instructions executed across all macros -- every op runs as
  /// verified programs, and this counts the instruction stream the cycle and
  /// energy figures below are priced from.
  std::uint64_t instructions = 0;
  std::uint64_t elapsed_cycles = 0;  ///< lock-step across macros (max)
  Joule energy{0.0};
  Second elapsed_time{0.0};
  /// Operand-load account of this op (informational: elapsed_cycles stays
  /// compute-only, the seed semantics). A fully-transient op pays 2 row
  /// writes per layer; a resident side costs nothing after its one
  /// materializing write, and the difference is load_cycles_saved.
  std::uint64_t load_cycles = 0;
  std::uint64_t load_cycles_saved = 0;
  /// Compute cycles the fused (chained-MAC) execution path saved vs issuing
  /// each op through Table 1 alone; elapsed_cycles is already net of this.
  std::uint64_t fused_cycles_saved = 0;
  /// Lock-step cycles the adaptive policy (MULT narrowing / zero skipping)
  /// took off this op's makespan: the elapsed_cycles a policy-off run of
  /// the same instruction stream would have added back. Exact conservation
  /// on unfused runs: dense elapsed == elapsed_cycles + adaptive_cycles_saved.
  std::uint64_t adaptive_cycles_saved = 0;

  [[nodiscard]] double cycles_per_element() const {
    return elements == 0 ? 0.0
                         : static_cast<double>(elapsed_cycles) / static_cast<double>(elements);
  }
  [[nodiscard]] Joule energy_per_element() const {
    return elements == 0 ? Joule(0.0) : Joule(energy.si() / static_cast<double>(elements));
  }
};

/// Accounting for a run_batch() call. Per-op RunStats stay compute-only (the
/// seed semantics); the batch view adds the operand-load traffic and models
/// the double-buffered schedule where the load of batch k+1 overlaps the
/// compute of batch k on ping-pong row pairs.
struct BatchStats {
  std::size_t ops = 0;
  std::uint64_t elements = 0;
  std::uint64_t instructions = 0;  ///< macro ISA instructions, all macros
  std::uint64_t load_cycles = 0;       ///< total operand-load (row write) cycles
  /// Load cycles the batch avoided because ops referenced resident
  /// operands (engine/residency.hpp) instead of re-poking them.
  std::uint64_t load_cycles_saved = 0;
  std::uint64_t compute_cycles = 0;    ///< total in-array compute cycles
  std::uint64_t serial_cycles = 0;     ///< load + compute with no overlap
  std::uint64_t pipelined_cycles = 0;  ///< double-buffered: load(k+1) || compute(k)
  /// Compute cycles fused program execution saved vs op-at-a-time Table 1
  /// issue (0 for unfused batches; compute_cycles is net of this).
  std::uint64_t fused_cycles_saved = 0;
  /// Makespan cycles the adaptive policy saved across the batch
  /// (compute_cycles is net of this; 0 when the policy is off).
  std::uint64_t adaptive_cycles_saved = 0;
  Joule energy{0.0};
  Second elapsed_time{0.0};  ///< pipelined_cycles at the macro cycle time

  [[nodiscard]] double overlap_speedup() const {
    return pipelined_cycles == 0 ? 1.0
                                 : static_cast<double>(serial_cycles) /
                                       static_cast<double>(pipelined_cycles);
  }

  /// Serial concatenation: the account of running this batch after `o` on
  /// the same memory. Parallel composition across memories is NOT a sum --
  /// the serving ledger keeps per-memory totals and takes their max as the
  /// scale-out makespan instead.
  BatchStats& operator+=(const BatchStats& o) {
    ops += o.ops;
    elements += o.elements;
    instructions += o.instructions;
    load_cycles += o.load_cycles;
    load_cycles_saved += o.load_cycles_saved;
    compute_cycles += o.compute_cycles;
    serial_cycles += o.serial_cycles;
    pipelined_cycles += o.pipelined_cycles;
    fused_cycles_saved += o.fused_cycles_saved;
    adaptive_cycles_saved += o.adaptive_cycles_saved;
    energy += o.energy;
    elapsed_time += o.elapsed_time;
    return *this;
  }
};

}  // namespace bpim::engine
