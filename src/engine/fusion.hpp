#pragma once
// Engine-facing types of the fusion path (the compiler itself lives in
// macro/compiler.hpp and knows nothing of the engine layer).
//
// run_forward() executes a whole-forward MAC program: J resident weight
// handles against one shared activation, compiled per macro into a single
// verified Program whose back-to-back MULTs run on the chained datapath.
// run_chain() executes one MULT->ADD(->ADD-Shift) dependency chain without
// spilling the intermediate product. FusionStats counts how often each path
// compiled, recompiled (after eviction moved a weight), ran fused, or fell
// back to op-at-a-time dispatch.

#include <cstdint>
#include <span>
#include <vector>

#include "macro/compiler.hpp"

namespace bpim::engine {

using macro::ChainLinkKind;

/// One link of a fused chain: fold `values` -- 2N-bit fields aligned with
/// the head MULT's product units -- into the in-array accumulator.
struct ChainLink {
  ChainLinkKind kind = ChainLinkKind::Add;
  std::span<const std::uint64_t> values;
};

/// A MULT->links dependency chain over span operands. The head product
/// a[i]*b[i] stays in the array; each link folds its operand into it.
struct ChainRequest {
  unsigned bits = 8;  ///< head precision; links run at 2*bits
  std::span<const std::uint64_t> a;
  std::span<const std::uint64_t> b;
  std::vector<ChainLink> links;
};

/// Counters of the engine's fusion path (ExecutionEngine::fusion_stats()).
struct FusionStats {
  std::uint64_t compiles = 0;    ///< fused-forward programs built
  std::uint64_t recompiles = 0;  ///< rebuilt after eviction moved a weight
  std::uint64_t fused_runs = 0;  ///< forwards served by a fused program
  std::uint64_t fallback_runs = 0;  ///< forwards routed to op-at-a-time
  std::uint64_t chain_runs = 0;     ///< fused chains executed
};

/// One cached whole-forward compilation: the per-macro programs plus the
/// residency snapshot they were emitted against (a weight that has moved
/// since -- eviction and re-materialization -- invalidates the cache).
struct FusedForward {
  unsigned bits = 0;
  std::size_t elements = 0;             ///< elements per op
  std::size_t layers = 0;               ///< row-pair layers per handle
  std::vector<std::uint64_t> ids;       ///< weight handle ids, op order
  std::vector<std::size_t> base_pairs;  ///< per-handle base at compile time
  std::vector<macro::Program> programs;  ///< one per macro (possibly empty)
  std::uint64_t fused_static_cycles = 0;  ///< macro-0 cost on the chained path
};

}  // namespace bpim::engine
