#pragma once
// ExecutionEngine: sharded, multi-threaded dispatch of vector workloads
// across the macros of an ImcMemory.
//
// The unit of parallelism is the macro. A vector op is cut into chunks of
// one row pair each; chunk c goes to macro c % M at row pair c / M --
// exactly the layer-by-layer round-robin the serial VectorEngine used, so
// every macro sees the same chunk sequence in the same order regardless of
// thread count. Each macro is an independent object (its own SRAM state,
// RNG stream and energy ledger), so per-macro execution on a thread pool is
// bit-identical to the serial walk; RunStats are merged after the join as
// lock-step max (cycles) and fixed-order sum (energy).
//
// Unified execution model: every dispatched op -- run()/run_batch() exactly
// like the fused paths -- is compiled to a verified macro ISA program
// (macro::OpCompiler emits + caches the single-instruction program per
// (kind, bits, row placement)) and executed through MacroController in
// VerifyFirst mode. The engine never calls the macro row-op datapath
// directly (a CI grep gate enforces this); RunStats are derived from the
// instruction stream the controller prices through macro::CostModel, and
// agree with the legacy per-macro ledgers exactly -- cycles are asserted
// per run, the bitwise energy half lives in the conservation tests.
//
// run_batch() executes several independent ops as one batch and models a
// double-buffered schedule in the cycle model: operands of op k+1 are
// written to ping-pong row pairs while op k computes, so the batch costs
// load(0) + sum max(compute(k), load(k+1)) + compute(last) instead of the
// serial sum of both. Overlap is only credited when consecutive ops fit in
// the array together (their transient layer counts plus the materialized
// resident set sum to at most rows/2 pairs) -- a full-capacity op leaves
// no rows to ping-pong into -- and never between two ops sharing a
// resident handle (the activation row of a pinned pair cannot be rewritten
// while that pair computes). Per-op RunStats stay compute-only (seed
// semantics); the overlap shows up in BatchStats.
//
// Operand residency (engine/residency.hpp): pin() keeps an operand's rows
// in the array across run_batch() calls; ops referencing the handle skip
// that side's load cycles, and BatchStats::load_cycles_saved records the
// win.

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/fusion.hpp"
#include "engine/residency.hpp"
#include "engine/run_stats.hpp"
#include "engine/thread_pool.hpp"
#include "macro/memory.hpp"
#include "obs/trace.hpp"
#include "periph/falogics.hpp"

namespace bpim::engine {

/// Every macro ISA op kind the engine dispatches. AddShift retires its
/// shifted sum into the dummy accumulator (D2) and Not drives the inverted
/// row out via the dummy operand row (D1), so no single-op program ever
/// writes a main row -- resident operands cannot be clobbered by dispatch.
enum class OpKind { Add, Sub, Mult, AddShift, Not, Logic };

[[nodiscard]] const char* to_string(OpKind kind);

/// One element-wise vector operation. Each operand is either a borrowed
/// span (today's path: spans must stay valid until the run()/run_batch()
/// call returns) or a resident handle from ExecutionEngine::pin(); a side
/// with a handle must leave its span empty. Handle-backed ops compute in
/// the handle's own row pairs and skip that side's operand-load cycles.
/// Not is unary: side b (span and handle) must stay empty.
struct VecOp {
  OpKind kind = OpKind::Add;
  unsigned bits = 8;
  periph::LogicFn fn = periph::LogicFn::And;  ///< Logic ops only
  std::span<const std::uint64_t> a;
  std::span<const std::uint64_t> b;
  ResidentOperand ra{};  ///< resident operand a (span a must be empty)
  ResidentOperand rb{};  ///< resident operand b (span b must be empty)

  /// Element count, whichever way the operands are given.
  [[nodiscard]] std::size_t length() const {
    if (ra) return static_cast<std::size_t>(ra.elements);
    if (rb) return static_cast<std::size_t>(rb.elements);
    return a.size();
  }
};

struct OpResult {
  std::vector<std::uint64_t> values;
  RunStats stats;
};

struct EngineConfig {
  /// Worker parallelism including the submitting thread; 0 means
  /// std::thread::hardware_concurrency(). Capped at the memory's macro
  /// count (the unit of parallelism). Results and stats are identical at
  /// every value -- this only changes host wall-clock.
  std::size_t threads = 0;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(macro::ImcMemory& mem, EngineConfig cfg = {});

  [[nodiscard]] macro::ImcMemory& memory() { return mem_; }
  [[nodiscard]] std::size_t thread_count() const { return pool_.thread_count(); }

  /// Elements one macro op processes at a given precision.
  [[nodiscard]] std::size_t words_per_row(unsigned bits) const;
  [[nodiscard]] std::size_t mult_units_per_row(unsigned bits) const;
  /// Elements per op for `op`'s kind and precision.
  [[nodiscard]] std::size_t elements_per_chunk(const VecOp& op) const;
  /// Chunk geometry by (bits, layout) -- the single source for span ops,
  /// pins, and materialization, so a handle's layer count can never
  /// disagree with the ops that use it.
  [[nodiscard]] std::size_t elements_per_chunk(unsigned bits, OperandLayout layout) const;
  [[nodiscard]] std::size_t layers_for_elements(std::size_t elements, unsigned bits,
                                                OperandLayout layout) const;
  /// Max elements resident at once across all macros (one row-pair layer).
  [[nodiscard]] std::size_t layer_capacity(unsigned bits) const;
  /// Row-pair layers `op` occupies per macro (the residency unit the batch
  /// scheduler packs against row_pair_capacity()).
  [[nodiscard]] std::size_t layers_for(const VecOp& op) const;
  /// Row pairs available per macro -- the residency budget of one batch.
  [[nodiscard]] std::size_t row_pair_capacity() const;

  // ---- persistent operand residency (engine/residency.hpp) ----------------
  /// Pin an operand resident: registers the values with the memory's
  /// ResidencyManager and returns a handle usable as VecOp::ra / rb. The
  /// one materializing write happens on first use inside run()/run_batch()
  /// and is charged to that batch's load cycles; later uses load nothing.
  /// Thread-safe (may race run_batch on a serving engine).
  [[nodiscard]] ResidentOperand pin(std::span<const std::uint64_t> values, unsigned bits,
                                    OperandLayout layout);
  /// Drop a pinned operand (false when unknown). Must not race ops that
  /// still reference the handle.
  bool unpin(const ResidentOperand& handle);
  /// Row-pair layers currently materialized -- what batch schedulers
  /// subtract from row_pair_capacity() to budget transient operands.
  [[nodiscard]] std::size_t resident_layers() const { return residency_.resident_layers(); }
  [[nodiscard]] ResidencyStats residency_stats() const { return residency_.stats(); }

  /// Execute one vector op, sharded across macros on the thread pool.
  [[nodiscard]] OpResult run(const VecOp& op);

  /// Execute a batch of independent ops (double-buffered in the cycle
  /// model, see file header). Results are in submission order.
  [[nodiscard]] std::vector<OpResult> run_batch(std::span<const VecOp> ops);

  /// Accounting of the last run_batch() (a lone run() counts as a batch
  /// of one).
  [[nodiscard]] const BatchStats& last_batch() const { return batch_; }

  // ---- adaptive execution (macro::AdaptivePolicy) -------------------------
  /// Set the sparsity/precision-adaptive policy every subsequent dispatch
  /// (run / run_batch / run_forward / run_chain) executes under. Outputs
  /// are bit-identical at any setting; only the modeled cycle account moves
  /// (the win lands in RunStats/BatchStats::adaptive_cycles_saved).
  /// Thread-safe: may race in-flight dispatches, each of which snapshots
  /// the policy once at entry.
  void set_adaptive_policy(macro::AdaptivePolicy policy) {
    adaptive_policy_.store(
        static_cast<std::uint8_t>((policy.narrow_precision ? 1u : 0u) |
                                  (policy.skip_zero ? 2u : 0u)),
        std::memory_order_relaxed);
  }
  [[nodiscard]] macro::AdaptivePolicy adaptive_policy() const {
    const std::uint8_t v = adaptive_policy_.load(std::memory_order_relaxed);
    macro::AdaptivePolicy p;
    p.narrow_precision = (v & 1u) != 0;
    p.skip_zero = (v & 2u) != 0;
    return p;
  }

  // ---- fusion (engine/fusion.hpp; compiler in macro/compiler.hpp) ---------

  /// Execute a whole forward -- every weight handle against one shared
  /// activation -- as one fused macro program per macro. The activation is
  /// staged once in the bottom transient pairs and every MULT reads it in
  /// place, so consecutive ops run on the chained datapath (D1 staging
  /// skipped within a layer, FF load pipelined across all of them) and the
  /// activation loads once instead of once per op. Values are bit-identical
  /// to the op-at-a-time path (the product is exact, so swapping
  /// multiplicand and multiplier roles changes nothing). Falls back to
  /// run_batch() transparently when the shape cannot fuse (weights +
  /// activation exceed capacity, or fragmentation scattered the weights).
  /// Results are in `weights` order; last_batch() covers the whole forward.
  [[nodiscard]] std::vector<OpResult> run_forward(std::span<const ResidentOperand> weights,
                                                  std::span<const std::uint64_t> activation);

  /// Compile (and cache) the fused program for `weights` ahead of the first
  /// forward -- the compile-at-pin path. Materializes the weights now; the
  /// load cycles are charged to the next run_forward()'s account. False when
  /// the shape cannot fuse (run_forward would fall back anyway).
  bool compile_forward(std::span<const ResidentOperand> weights);

  /// Execute one MULT->ADD(->ADD-Shift) dependency chain as a single fused
  /// program: the head products stay in the in-array accumulator and every
  /// link folds its operand (2N-bit fields) into them, so intermediates are
  /// never driven out and re-staged. Result elements are 2*bits wide.
  [[nodiscard]] OpResult run_chain(const ChainRequest& req);

  [[nodiscard]] const FusionStats& fusion_stats() const { return fusion_stats_; }

  /// Single-op program cache traffic (macro::OpCompiler): compiled = verified
  /// emissions, hits = dispatches served from the cache.
  [[nodiscard]] macro::OpCompiler::CacheStats op_program_cache_stats() const {
    return op_compiler_.cache_stats();
  }

 private:
  /// Cycle-model footprint of one executed op, for the batch scheduler's
  /// overlap-feasibility check and the load/saved accounting.
  struct OpAccount {
    std::uint64_t load_cycles = 0;
    std::uint64_t saved_cycles = 0;
    std::size_t layers = 0;            ///< row-pair layers the op occupies
    std::size_t transient_layers = 0;  ///< staged in the bottom region (0 if resident)
    std::uint64_t handle_a = 0;        ///< resident handle ids (0 = span side)
    std::uint64_t handle_b = 0;
  };

  /// Execute one op and fill its footprint account.
  OpResult run_one(const VecOp& op, OpAccount& acct);
  /// The cached single-instruction program for `op` at one concrete row
  /// placement (compiled + verified on first use).
  const macro::Program& program_for(const VecOp& op, std::size_t r_a, std::size_t r_b);
  /// Write a pinned operand's values into its allocated rows (same chunk
  /// walk as run_one, one row per pair).
  void materialize(ResidencyManager::Entry& entry);

  /// Residency state of one run_forward()/compile_forward() call: the
  /// resolved weight entries, the shared chunk geometry, and whether the
  /// fused layout holds (all weights materialized above the activation's
  /// transient region).
  struct ForwardPlan {
    std::vector<ResidencyManager::Entry*> entries;
    unsigned bits = 0;
    std::size_t elements = 0;  ///< per op
    std::size_t per_op = 0;
    std::size_t chunks = 0;
    std::size_t layers = 0;            ///< L, per handle and for the activation
    std::uint64_t load_cycles = 0;     ///< materializing writes this call
    std::vector<std::uint8_t> loaded;  ///< per weight: materialized this call
    bool fusable = false;
  };
  /// Resolve + validate the weights, then (when the shape fits) reserve the
  /// activation region and materialize every weight for the fused layout.
  ForwardPlan prepare_forward(std::span<const ResidentOperand> weights);
  /// Cached per-macro programs for the plan, (re)compiled when the weights
  /// moved since the last compile.
  FusedForward& fused_program_for(const ForwardPlan& plan);
  /// The materialized pinned set as verifier row intervals.
  [[nodiscard]] std::vector<macro::PinnedRows> pinned_rows() const;

  macro::ImcMemory& mem_;
  ThreadPool pool_;
  ResidencyManager residency_;
  /// Single-op program compiler/cache; thread-safe, shared by all workers.
  /// Engine-dispatched programs only write dummy rows, so the cache never
  /// needs residency-driven invalidation.
  macro::OpCompiler op_compiler_;
  /// Synthetic trace track "engine N": batch/forward/chain spans render on
  /// one timeline row whichever host thread drives the engine.
  obs::TrackId trace_track_ = 0;
  BatchStats batch_{};
  FusionStats fusion_stats_{};
  /// Packed AdaptivePolicy (bit 0 narrow_precision, bit 1 skip_zero):
  /// relaxed atomic so a serving thread can flip the policy while workers
  /// dispatch -- each run snapshots it once.
  std::atomic<std::uint8_t> adaptive_policy_{0};
  std::unordered_map<std::uint64_t, FusedForward> fused_;  ///< by id-list hash
  /// Load cycles of weights materialized inside compile_forward(), charged
  /// to the next run_forward() so the account never loses the writes.
  std::uint64_t pending_load_ = 0;
};

}  // namespace bpim::engine
