#pragma once
// ExecutionEngine: sharded, multi-threaded dispatch of vector workloads
// across the macros of an ImcMemory.
//
// The unit of parallelism is the macro. A vector op is cut into chunks of
// one row pair each; chunk c goes to macro c % M at row pair c / M --
// exactly the layer-by-layer round-robin the serial VectorEngine used, so
// every macro sees the same chunk sequence in the same order regardless of
// thread count. Each macro is an independent object (its own SRAM state,
// RNG stream and energy ledger), so per-macro execution on a thread pool is
// bit-identical to the serial walk; RunStats are merged after the join as
// lock-step max (cycles) and fixed-order sum (energy).
//
// run_batch() executes several independent ops as one batch and models a
// double-buffered schedule in the cycle model: operands of op k+1 are
// written to ping-pong row pairs while op k computes, so the batch costs
// load(0) + sum max(compute(k), load(k+1)) + compute(last) instead of the
// serial sum of both. Overlap is only credited when consecutive ops fit in
// the array together (their layer counts sum to at most rows/2 pairs) --
// a full-capacity op leaves no rows to ping-pong into. Per-op RunStats
// stay compute-only (seed semantics); the overlap shows up in BatchStats.

#include <cstdint>
#include <span>
#include <vector>

#include "engine/run_stats.hpp"
#include "engine/thread_pool.hpp"
#include "macro/memory.hpp"
#include "periph/falogics.hpp"

namespace bpim::engine {

enum class OpKind { Add, Sub, Mult, Logic };

[[nodiscard]] const char* to_string(OpKind kind);

/// One element-wise vector operation. Operand storage is borrowed: spans
/// must stay valid until the run()/run_batch() call returns.
struct VecOp {
  OpKind kind = OpKind::Add;
  unsigned bits = 8;
  periph::LogicFn fn = periph::LogicFn::And;  ///< Logic ops only
  std::span<const std::uint64_t> a;
  std::span<const std::uint64_t> b;
};

struct OpResult {
  std::vector<std::uint64_t> values;
  RunStats stats;
};

struct EngineConfig {
  /// Worker parallelism including the submitting thread; 0 means
  /// std::thread::hardware_concurrency(). Capped at the memory's macro
  /// count (the unit of parallelism). Results and stats are identical at
  /// every value -- this only changes host wall-clock.
  std::size_t threads = 0;
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(macro::ImcMemory& mem, EngineConfig cfg = {});

  [[nodiscard]] macro::ImcMemory& memory() { return mem_; }
  [[nodiscard]] std::size_t thread_count() const { return pool_.thread_count(); }

  /// Elements one macro op processes at a given precision.
  [[nodiscard]] std::size_t words_per_row(unsigned bits) const;
  [[nodiscard]] std::size_t mult_units_per_row(unsigned bits) const;
  /// Elements per op for `op`'s kind and precision.
  [[nodiscard]] std::size_t elements_per_chunk(const VecOp& op) const;
  /// Max elements resident at once across all macros (one row-pair layer).
  [[nodiscard]] std::size_t layer_capacity(unsigned bits) const;
  /// Row-pair layers `op` occupies per macro (the residency unit the batch
  /// scheduler packs against row_pair_capacity()).
  [[nodiscard]] std::size_t layers_for(const VecOp& op) const;
  /// Row pairs available per macro -- the residency budget of one batch.
  [[nodiscard]] std::size_t row_pair_capacity() const;

  /// Execute one vector op, sharded across macros on the thread pool.
  [[nodiscard]] OpResult run(const VecOp& op);

  /// Execute a batch of independent ops (double-buffered in the cycle
  /// model, see file header). Results are in submission order.
  [[nodiscard]] std::vector<OpResult> run_batch(std::span<const VecOp> ops);

  /// Accounting of the last run_batch() (a lone run() counts as a batch
  /// of one).
  [[nodiscard]] const BatchStats& last_batch() const { return batch_; }

 private:
  /// Execute one op; also reports its operand-load cost in lock-step cycles
  /// and the row-pair layers it occupied (for the overlap-feasibility check).
  OpResult run_one(const VecOp& op, std::uint64_t& load_cycles, std::size_t& layers_used);

  macro::ImcMemory& mem_;
  ThreadPool pool_;
  BatchStats batch_{};
};

}  // namespace bpim::engine
