#include "engine/residency.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bpim::engine {

namespace {

/// Process-wide residency counters (all managers aggregate; per-manager
/// numbers stay in ResidencyStats). Function-local static so first use
/// orders construction after the registry.
struct ResidencyMetrics {
  obs::Counter& pins;
  obs::Counter& unpins;
  obs::Counter& evictions;
  obs::Counter& materializations;
};

ResidencyMetrics& residency_metrics() {
  static ResidencyMetrics m{
      obs::MetricsRegistry::global().counter(
          "residency.pins", "Operands pinned resident (all managers)"),
      obs::MetricsRegistry::global().counter(
          "residency.unpins", "Pinned operands dropped"),
      obs::MetricsRegistry::global().counter(
          "residency.evictions", "Materialized handles evicted LRU-first"),
      obs::MetricsRegistry::global().counter(
          "residency.materializations",
          "Handle loads into array rows, including re-loads after eviction"),
  };
  return m;
}

}  // namespace

std::atomic<std::uint64_t> ResidencyManager::id_counter_{1};

const char* to_string(OperandLayout layout) {
  switch (layout) {
    case OperandLayout::Word:
      return "word";
    case OperandLayout::MultUnit:
      return "mult-unit";
  }
  return "?";
}

ResidencyManager::ResidencyManager(std::size_t row_pair_capacity)
    : capacity_(row_pair_capacity) {
  BPIM_REQUIRE(capacity_ > 0, "residency needs at least one row pair");
}

ResidentOperand ResidencyManager::pin(std::span<const std::uint64_t> values, unsigned bits,
                                      OperandLayout layout, std::size_t layers) {
  BPIM_REQUIRE(!values.empty(), "cannot pin an empty operand");
  BPIM_REQUIRE(layers > 0 && layers <= capacity_,
               "pinned operand exceeds the array's row-pair capacity");
  ResidentOperand h;
  h.id = next_operand_id();
  h.elements = values.size();
  h.bits = bits;
  h.layout = layout;
  h.layers = layers;

  auto entry = std::make_unique<Entry>();
  entry->handle = h;
  entry->values.assign(values.begin(), values.end());

  residency_metrics().pins.add();
  BPIM_TRACE_INSTANT("residency.pin", 0,
                     {{"handle", static_cast<double>(h.id)},
                      {"layers", static_cast<double>(h.layers)},
                      {"bits", static_cast<double>(h.bits)}});

  MutexLock lk(mutex_);
  entry->last_use = ++tick_;
  entries_.emplace(h.id, std::move(entry));
  return h;
}

bool ResidencyManager::unpin(std::uint64_t id) {
  MutexLock lk(mutex_);
  const bool erased = entries_.erase(id) > 0;
  if (erased) {
    residency_metrics().unpins.add();
    BPIM_TRACE_INSTANT("residency.unpin", 0, {{"handle", static_cast<double>(id)}});
  }
  return erased;
}

ResidencyStats ResidencyManager::stats() const {
  MutexLock lk(mutex_);
  ResidencyStats s;
  s.pinned = entries_.size();
  for (const auto& [id, e] : entries_) {
    s.pinned_layers += e->handle.layers;
    if (e->materialized) s.resident_layers += e->handle.layers;
  }
  s.materializations = materializations_;
  s.evictions = evictions_;
  s.load_cycles_saved = load_cycles_saved_;
  return s;
}

std::size_t ResidencyManager::resident_layers() const {
  MutexLock lk(mutex_);
  std::size_t total = 0;
  for (const auto& [id, e] : entries_)
    if (e->materialized) total += e->handle.layers;
  return total;
}

ResidencyManager::Entry* ResidencyManager::touch(std::uint64_t id) {
  MutexLock lk(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  it->second->last_use = ++tick_;
  return it->second.get();
}

template <class Pred>
bool ResidencyManager::evict_lru(Pred&& victim_ok) {
  Entry* victim = nullptr;
  for (const auto& [id, e] : entries_) {
    if (!e->materialized || !victim_ok(*e)) continue;
    if (victim == nullptr || e->last_use < victim->last_use) victim = e.get();
  }
  if (victim == nullptr) return false;
  victim->materialized = false;
  ++evictions_;
  residency_metrics().evictions.add();
  BPIM_TRACE_INSTANT("residency.evict", 0,
                     {{"handle", static_cast<double>(victim->handle.id)},
                      {"layers", static_cast<double>(victim->handle.layers)}});
  return true;
}

void ResidencyManager::reserve_transient(std::size_t transient_layers) {
  MutexLock lk(mutex_);
  BPIM_REQUIRE(transient_layers <= capacity_, "vector exceeds memory capacity");
  // Handles allocate top-down, so a conflict with the bottom transient
  // region is exactly the "pinned + transient exceeds capacity" overflow;
  // evict the conflicting handles LRU-first until the region is clear.
  for (;;) {
    const bool evicted = evict_lru(
        [&](const Entry& e) { return e.base_pair < transient_layers; });
    if (!evicted) return;
  }
}

std::size_t ResidencyManager::find_gap(std::size_t layers) const {
  // Occupied intervals, sorted descending by base: walk from the array top
  // and take the first (highest) gap that fits.
  std::vector<std::pair<std::size_t, std::size_t>> used;  // (base, layers)
  for (const auto& [id, e] : entries_)
    if (e->materialized) used.emplace_back(e->base_pair, e->handle.layers);
  std::sort(used.begin(), used.end(), std::greater<>());
  std::size_t ceiling = capacity_;
  for (const auto& [base, len] : used) {
    if (ceiling >= base + len && ceiling - (base + len) >= layers)
      return ceiling - layers;
    ceiling = std::min(ceiling, base);
  }
  return ceiling >= layers ? ceiling - layers : capacity_;
}

bool ResidencyManager::ensure_rows(Entry& e, const Entry* keep) {
  MutexLock lk(mutex_);
  if (e.materialized) return false;
  for (;;) {
    const std::size_t base = find_gap(e.handle.layers);
    if (base < capacity_) {
      e.base_pair = base;
      e.materialized = true;
      e.last_use = ++tick_;
      ++materializations_;
      residency_metrics().materializations.add();
      return true;
    }
    const bool evicted = evict_lru(
        [&](const Entry& victim) { return &victim != &e && &victim != keep; });
    // pin() bounds every handle at <= capacity, so an empty array always
    // fits it; running out of victims here would be a bookkeeping defect.
    BPIM_REQUIRE(evicted, "residency allocator found no gap and no victim");
  }
}

void ResidencyManager::note_saved(std::uint64_t cycles) {
  MutexLock lk(mutex_);
  load_cycles_saved_ += cycles;
}

std::vector<std::pair<std::size_t, std::size_t>> ResidencyManager::materialized_intervals()
    const {
  MutexLock lk(mutex_);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const auto& [id, e] : entries_)
    if (e->materialized) out.emplace_back(e->base_pair, e->handle.layers);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bpim::engine
