#pragma once
// Persistent operand residency: pin an operand's rows into the array once
// and let every later op reference it by handle instead of re-poking the
// same values (the weight-stationary organization SRAM IMC is built for --
// the NN layers re-loaded identical weight rows on every forward pass).
//
// The ResidencyManager owns the pinned set of one ExecutionEngine (one
// ImcMemory). Each handle occupies `layers` row pairs *per macro*,
// allocated top-down from the array so they stay clear of the transient
// region ops stage through at the bottom (pairs [0, layers)). An op that
// references a handle computes directly on the handle's pairs -- its
// activation side is poked into the odd row of each pair -- so it consumes
// no transient pairs at all, and the cycle model charges only the
// activation load (1 row write per layer instead of 2).
//
// pin() only registers: the single materializing write happens on first
// use inside run()/run_batch() (on the engine's run thread, so clients of a
// serve::Server may pin concurrently with dispatch) and is charged to that
// batch's load cycles. When the pinned set plus a batch's transient
// operands exceed row_pair_capacity(), materialized handles are evicted --
// least-recently-used first among those whose rows conflict -- and
// transparently re-materialized (and re-charged) on their next use.
//
// Thread-safety: every method locks the manager's mutex. Entries live
// behind stable unique_ptrs, so an Entry* held by the run thread survives
// concurrent pin() calls. Do not unpin a handle while ops referencing it
// are still in flight.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"

namespace bpim::engine {

/// Row layout of a pinned operand: plain precision words (ADD/SUB/LOGIC
/// rows) or 2N-bit MULT units with the operand in each unit's low half.
enum class OperandLayout { Word, MultUnit };

[[nodiscard]] const char* to_string(OperandLayout layout);

/// Client-side handle to a pinned operand. A cheap value type: the id
/// resolves the entry, the rest is cached geometry so schedulers can do
/// budget math without touching the owning engine. Ids are process-unique,
/// so a handle also identifies which engine of a pool holds the operand.
struct ResidentOperand {
  std::uint64_t id = 0;  ///< 0 = "no handle"
  std::uint64_t elements = 0;
  unsigned bits = 0;
  OperandLayout layout = OperandLayout::Word;
  std::size_t layers = 0;  ///< row-pair layers per macro

  [[nodiscard]] explicit operator bool() const { return id != 0; }
};

/// Observability counters for one manager (Engine::residency_stats()).
struct ResidencyStats {
  std::size_t pinned = 0;           ///< live handles (materialized or not)
  std::size_t pinned_layers = 0;    ///< summed layers of live handles
  std::size_t resident_layers = 0;  ///< layers currently holding rows
  std::uint64_t materializations = 0;  ///< loads, including re-loads after eviction
  std::uint64_t evictions = 0;
  std::uint64_t load_cycles_saved = 0;  ///< cumulative, vs. re-poking every op
};

class ResidencyManager {
 public:
  explicit ResidencyManager(std::size_t row_pair_capacity);

  ResidencyManager(const ResidencyManager&) = delete;
  ResidencyManager& operator=(const ResidencyManager&) = delete;

  /// Register a pinned operand (values are copied; no SRAM traffic here --
  /// materialization is lazy, see file header). `layers` must fit the
  /// array on its own.
  [[nodiscard]] ResidentOperand pin(std::span<const std::uint64_t> values, unsigned bits,
                                    OperandLayout layout, std::size_t layers)
      BPIM_EXCLUDES(mutex_);
  /// Drop a handle (false when unknown). The rows are simply freed; the
  /// data is abandoned in place like any other stale SRAM content.
  bool unpin(std::uint64_t id) BPIM_EXCLUDES(mutex_);

  /// Draw the next handle id from the process-wide stream. Ids stay unique
  /// across every engine of a multi-memory pool, so a serve-layer registry
  /// can route by id alone. Class-scope (not a function-local static) so
  /// the thread-safety analysis and tests can name it.
  [[nodiscard]] static std::uint64_t next_operand_id() {
    return id_counter_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] ResidencyStats stats() const BPIM_EXCLUDES(mutex_);
  /// Row-pair layers currently materialized (the budget batch schedulers
  /// subtract from row_pair_capacity()).
  [[nodiscard]] std::size_t resident_layers() const BPIM_EXCLUDES(mutex_);

  // ---- run-thread side (the engine, inside run()/run_batch()) -------------

  /// One pinned operand's live state. Fields other than `values` are
  /// guarded by the manager's mutex; the run thread reads them between
  /// manager calls under the single-run_batch-at-a-time engine contract.
  struct Entry {
    ResidentOperand handle;
    std::vector<std::uint64_t> values;
    bool materialized = false;
    std::size_t base_pair = 0;  ///< first row pair (per macro) when materialized
    std::uint64_t last_use = 0;
  };

  /// Resolve a handle for execution and bump its LRU clock. Null if the id
  /// is unknown (unpinned, or pinned on a different engine).
  [[nodiscard]] Entry* touch(std::uint64_t id) BPIM_EXCLUDES(mutex_);

  /// Free the bottom `transient_layers` row pairs for a fully-transient op:
  /// materialized handles whose rows conflict are evicted, LRU first.
  void reserve_transient(std::size_t transient_layers) BPIM_EXCLUDES(mutex_);

  /// Give `e` rows if it has none, allocating top-down and evicting LRU
  /// handles as needed (never `keep`, the other side of the same op).
  /// Returns true when the caller must write the values into the rows.
  [[nodiscard]] bool ensure_rows(Entry& e, const Entry* keep = nullptr) BPIM_EXCLUDES(mutex_);

  /// Accumulate the load cycles an op avoided by referencing handles.
  void note_saved(std::uint64_t cycles) BPIM_EXCLUDES(mutex_);

  /// Snapshot of the materialized intervals as (base_pair, layers) pairs --
  /// the pinned-row map a fusion compiler verifies emitted programs
  /// against (macro::PinnedRows, after the pair->row conversion).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> materialized_intervals() const
      BPIM_EXCLUDES(mutex_);

 private:
  /// Highest-fitting base pair for `layers`, or capacity_ when nothing fits.
  [[nodiscard]] std::size_t find_gap(std::size_t layers) const BPIM_REQUIRES(mutex_);
  /// Evict the LRU materialized entry satisfying `victim_ok`; false if none.
  template <class Pred>
  bool evict_lru(Pred&& victim_ok) BPIM_REQUIRES(mutex_);

  static std::atomic<std::uint64_t> id_counter_;  ///< next_operand_id() stream

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> entries_ BPIM_GUARDED_BY(mutex_);
  std::uint64_t tick_ BPIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t materializations_ BPIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ BPIM_GUARDED_BY(mutex_) = 0;
  std::uint64_t load_cycles_saved_ BPIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace bpim::engine
