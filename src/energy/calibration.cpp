#include "energy/calibration.hpp"

#include <cmath>

#include "common/units.hpp"

namespace bpim::energy {

using bpim::literals::operator""_V;

const std::vector<Table2Entry>& table2_targets() {
  static const std::vector<Table2Entry> targets = {
      {"ADD", 2, SeparatorMode::Enabled, 68.2},
      {"ADD", 4, SeparatorMode::Enabled, 138.4},
      {"ADD", 8, SeparatorMode::Enabled, 274.8},
      {"SUB", 2, SeparatorMode::Disabled, 152.3},
      {"SUB", 4, SeparatorMode::Disabled, 307.5},
      {"SUB", 8, SeparatorMode::Disabled, 612.2},
      {"SUB", 2, SeparatorMode::Enabled, 136.5},
      {"SUB", 4, SeparatorMode::Enabled, 274.9},
      {"SUB", 8, SeparatorMode::Enabled, 545.4},
      {"MULT", 2, SeparatorMode::Disabled, 357.4},
      {"MULT", 4, SeparatorMode::Disabled, 1167.6},
      {"MULT", 8, SeparatorMode::Disabled, 4186.4},
      {"MULT", 2, SeparatorMode::Enabled, 296.0},
      {"MULT", 4, SeparatorMode::Enabled, 922.4},
      {"MULT", 8, SeparatorMode::Enabled, 3394.8},
  };
  return targets;
}

CalibrationReport check_table2(const EnergyModel& model) {
  const Volt v = model.params().v_ref;
  CalibrationReport report;
  double sum_abs = 0.0;
  for (const auto& t : table2_targets()) {
    Joule e;
    const std::string op(t.op);
    if (op == "ADD")
      e = model.add(t.bits, v);
    else if (op == "SUB")
      e = model.sub(t.bits, v, t.sep);
    else
      e = model.mult(t.bits, v, t.sep);
    const double model_fj = in_fJ(e);
    const double err = (model_fj - t.paper_fj) / t.paper_fj;
    const std::string label = op + " " + std::to_string(t.bits) + "b" +
                              (op == "ADD" ? ""
                               : t.sep == SeparatorMode::Enabled ? " (w/ sep)"
                                                                 : " (w/o sep)");
    report.rows.push_back({label, t.paper_fj, model_fj, err});
    report.max_abs_rel_error = std::max(report.max_abs_rel_error, std::abs(err));
    sum_abs += std::abs(err);
  }
  report.mean_abs_rel_error = sum_abs / static_cast<double>(report.rows.size());
  return report;
}

double model_tops_add_06v(const EnergyModel& model) {
  return model.tops_per_watt(model.add(8, 0.6_V));
}

double model_tops_mult_06v(const EnergyModel& model) {
  return model.tops_per_watt(model.mult(8, 0.6_V, SeparatorMode::Enabled));
}

}  // namespace bpim::energy
