#include "energy/leakage.hpp"

#include <cmath>

#include "common/require.hpp"

namespace bpim::energy {

Ampere LeakageModel::cell_current(Volt vdd, double temp_c) const {
  BPIM_REQUIRE(vdd.si() > 0.0, "supply must be positive");
  const double supply_decades = p_.dibl_dec_per_v * (vdd.si() - 0.9);
  const double temp_factor = std::exp2((temp_c - 25.0) / p_.temp_double_c);
  return Ampere(p_.cell_ioff_ref.si() * std::pow(10.0, supply_decades) * temp_factor);
}

Watt LeakageModel::array_power(std::size_t cells, Volt vdd, double temp_c) const {
  const double i_total =
      cell_current(vdd, temp_c).si() * static_cast<double>(cells) * (1.0 + p_.periphery_fraction);
  return Watt(i_total * vdd.si());
}

Joule LeakageModel::energy_per_cycle(std::size_t cells, Volt vdd, double temp_c,
                                     Hertz f) const {
  BPIM_REQUIRE(f.si() > 0.0, "frequency must be positive");
  return Joule(array_power(cells, vdd, temp_c).si() / f.si());
}

Joule LeakageModel::effective_energy_per_op(Joule dynamic, std::size_t cells, Volt vdd,
                                            double temp_c, Hertz f, double ops_in_flight,
                                            double duty) const {
  BPIM_REQUIRE(ops_in_flight > 0.0, "ops per cycle must be positive");
  BPIM_REQUIRE(duty > 0.0 && duty <= 1.0, "duty cycle must be in (0, 1]");
  // Leakage accrues every wall-clock cycle; useful ops happen in the duty
  // fraction, ops_in_flight at a time.
  const double leak_per_op =
      energy_per_cycle(cells, vdd, temp_c, f).si() / (ops_in_flight * duty);
  return Joule(dynamic.si() + leak_per_op);
}

}  // namespace bpim::energy
