#pragma once
// Calibration targets from the paper and error reporting against them.
//
// Table 2 (28 nm, 0.9 V reference): energy per operation in fJ for
// ADD / SUB / MULT at 2/4/8-bit precision, SUB and MULT quoted both with
// and without the BL separator. Table 3 adds the 0.6 V TOPS/W anchors.

#include <array>
#include <string>
#include <vector>

#include "energy/energy_model.hpp"

namespace bpim::energy {

struct Table2Entry {
  const char* op;
  unsigned bits;
  SeparatorMode sep;
  double paper_fj;
};

/// All 15 published Table 2 numbers (ADD has no separator dependence).
[[nodiscard]] const std::vector<Table2Entry>& table2_targets();

struct CalibrationReport {
  struct Row {
    std::string label;
    double paper_fj;
    double model_fj;
    double rel_error;  ///< (model - paper) / paper
  };
  std::vector<Row> rows;
  double max_abs_rel_error = 0.0;
  double mean_abs_rel_error = 0.0;
};

/// Evaluates the model against every Table 2 target.
[[nodiscard]] CalibrationReport check_table2(const EnergyModel& model);

/// Paper's Table 3 anchors at 0.6 V (1 op = one 8-bit word op).
inline constexpr double kPaperTopsPerWattAdd06V = 8.09;
inline constexpr double kPaperTopsPerWattMult06V = 0.68;

/// Model TOPS/W at 0.6 V for 8-bit ADD / MULT (separator enabled).
[[nodiscard]] double model_tops_add_06v(const EnergyModel& model);
[[nodiscard]] double model_tops_mult_06v(const EnergyModel& model);

}  // namespace bpim::energy
