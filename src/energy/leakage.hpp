#pragma once
// Static (leakage) power of the IMC memory and its effect on effective
// energy efficiency.
//
// The paper quotes dynamic TOPS/W; a deployed 128 KB part also pays array
// leakage whenever it is powered. This model gives a first-order 28 nm-class
// estimate -- subthreshold-dominated, exponential in temperature, supply-
// dependent through DIBL -- and folds it into duty-cycle-aware efficiency
// numbers (bench/ablation_leakage).

#include <cstddef>

#include "common/units.hpp"

namespace bpim::energy {

struct LeakageParams {
  /// Per-cell leakage at 0.9 V, 25 C (both inverter legs + access devices).
  /// A 2.25 GHz-class part is a GP flavour; hundreds of pA per HD cell.
  Ampere cell_ioff_ref{300e-12};
  /// Peripheral leakage as a fraction of array leakage (drivers, SAs, FA).
  double periphery_fraction = 0.35;
  /// DIBL-style supply sensitivity: decades of leakage per volt of VDD.
  double dibl_dec_per_v = 1.1;
  /// Temperature doubling interval (leakage doubles every ~10 C).
  double temp_double_c = 10.0;
};

class LeakageModel {
 public:
  explicit LeakageModel(LeakageParams p = {}) : p_(p) {}

  /// Leakage current of one cell at the given supply/temperature.
  [[nodiscard]] Ampere cell_current(Volt vdd, double temp_c) const;

  /// Static power of `cells` bit cells (plus periphery) at (vdd, temp).
  [[nodiscard]] Watt array_power(std::size_t cells, Volt vdd, double temp_c) const;

  /// Leakage energy charged to one clock cycle at frequency f.
  [[nodiscard]] Joule energy_per_cycle(std::size_t cells, Volt vdd, double temp_c,
                                       Hertz f) const;

  /// Effective energy of an op whose dynamic energy is `dynamic`, running
  /// `ops_in_flight` word-ops per cycle at duty cycle `duty` (fraction of
  /// cycles doing useful work; leakage accrues always).
  [[nodiscard]] Joule effective_energy_per_op(Joule dynamic, std::size_t cells, Volt vdd,
                                              double temp_c, Hertz f, double ops_in_flight,
                                              double duty) const;

  [[nodiscard]] const LeakageParams& params() const { return p_; }

 private:
  LeakageParams p_;
};

}  // namespace bpim::energy
