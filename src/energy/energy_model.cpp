#include "energy/energy_model.hpp"

#include "common/require.hpp"

namespace bpim::energy {

namespace {
constexpr double kFj = 1e-15;
}

double EnergyModel::voltage_scale(Volt vdd) const {
  BPIM_REQUIRE(vdd.si() > 0.0, "supply must be positive");
  const double r = vdd.si() / p_.v_ref.si();
  return r * r;
}

Joule EnergyModel::price(Component c, Volt vdd) const {
  double fj = 0.0;
  switch (c) {
    case Component::DualWlComputeMain: fj = p_.cmp_main_fj; break;
    case Component::DualWlComputeNear: fj = p_.cmp_near_fj; break;
    case Component::SingleWlRead: fj = p_.rd_single_fj; break;
    case Component::FaLogic: fj = p_.fa_fj; break;
    case Component::Inverter: fj = p_.inv_fj; break;
    case Component::WriteBackNear: fj = p_.wb_near_fj; break;
    case Component::WriteBackFull: fj = p_.wb_full_fj; break;
    case Component::FlipFlop: fj = p_.ff_fj; break;
  }
  return Joule(fj * kFj * voltage_scale(vdd));
}

Joule EnergyModel::logic_op(unsigned bits, Volt vdd) const {
  const double n = bits;
  return (price(Component::DualWlComputeMain, vdd) + price(Component::FaLogic, vdd)) * n;
}

Joule EnergyModel::add(unsigned bits, Volt vdd) const {
  // Same data path as a logic op: dual-WL compute plus the carry-select
  // chain; Table 2's ADD drives the result out without a write-back phase.
  return logic_op(bits, vdd);
}

Joule EnergyModel::add_shift(unsigned bits, Volt vdd, SeparatorMode sep) const {
  const double n = bits;
  const Component wb =
      sep == SeparatorMode::Enabled ? Component::WriteBackNear : Component::WriteBackFull;
  return (price(Component::DualWlComputeNear, vdd) + price(Component::FaLogic, vdd) +
          price(wb, vdd) * p_.mult_wb_activity) * n +
         price(Component::FlipFlop, vdd);
}

Joule EnergyModel::single_wl_writeback(unsigned bits, Volt vdd, SeparatorMode sep) const {
  const double n = bits;
  const Component wb =
      sep == SeparatorMode::Enabled ? Component::WriteBackNear : Component::WriteBackFull;
  return (price(Component::SingleWlRead, vdd) + price(Component::Inverter, vdd) +
          price(wb, vdd)) * n;
}

Joule EnergyModel::sub(unsigned bits, Volt vdd, SeparatorMode sep) const {
  // Cycle 1: NOT(Data1) written back to a dummy row; cycle 2: ADD with
  // carry-in forced to 1 (two's complement), result driven out.
  return single_wl_writeback(bits, vdd, sep) + add(bits, vdd);
}

Joule EnergyModel::mult(unsigned bits, Volt vdd, SeparatorMode sep) const {
  // N-bit multiply on a 2N-bit precision unit, N+2 cycles total:
  //   cycle 1: zero-init the accumulator dummy row (2N bits, low activity)
  //            + load the multiplier into the FFs (read B, N FF writes);
  //   cycle 2: copy the multiplicand A into the second dummy row (N bits);
  //   cycles 3..N+1: (N-1) add-and-shift iterations on the 2N-bit unit;
  //   cycle N+2: final ADD, result written back.
  // Dummy-row computes use the short-segment price; the separator mode
  // decides what every write-back drives (see header).
  const double n = bits;
  const double two_n = 2.0 * n;
  const Component wb =
      sep == SeparatorMode::Enabled ? Component::WriteBackNear : Component::WriteBackFull;
  const Joule wb_bit = price(wb, vdd);

  Joule e;
  // Cycle 1: zero init + multiplier load.
  e += wb_bit * (two_n * p_.zero_init_activity);
  e += price(Component::SingleWlRead, vdd) * n;
  e += price(Component::FlipFlop, vdd) * n;
  // Cycle 2: copy A.
  e += price(Component::SingleWlRead, vdd) * n;
  e += wb_bit * n;
  // Cycles 3..N+2: N iterations of add-and-shift / final add on 2N bits.
  const Joule iter = (price(Component::DualWlComputeNear, vdd) + price(Component::FaLogic, vdd) +
                      wb_bit * p_.mult_wb_activity) * two_n +
                     price(Component::FlipFlop, vdd);
  e += iter * n;
  return e;
}

double EnergyModel::tops_per_watt(Joule energy_per_op) const {
  BPIM_REQUIRE(energy_per_op.si() > 0.0, "energy per op must be positive");
  // ops/s/W = 1 / (J/op); convert to tera-ops.
  return 1e-12 / energy_per_op.si();
}

}  // namespace bpim::energy
