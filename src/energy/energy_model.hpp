#pragma once
// Component-level energy model, calibrated against the paper's Table 2.
//
// Every micro-action of the macro has a per-bit price at the 0.9 V reference
// point; an operation's energy is the sum of the components it exercises.
// The same price list is used twice:
//   * closed forms here (add/sub/mult/...) reproduce Table 2, and
//   * the macro's Sequencer charges the identical prices cycle by cycle, so
//     functional-simulation energy and the closed forms agree by
//     construction (asserted in tests).
//
// Voltage scaling is quadratic in VDD (dynamic CV^2); the paper's 0.6 V
// TOPS/W quotes (ADD 8.09, MULT 0.68) are hit within a few percent.
//
// The BL separator enters in two places (paper Sec. 3.1 / Table 2):
//   * write-back onto the dummy rows drives only the short separated BL
//     segment (wb_near) instead of the full-height BL (wb_full);
//   * iterative MULT add-and-shift cycles also *compute* on the short
//     segment (cmp_near vs cmp_main).

#include "common/units.hpp"

namespace bpim::energy {

/// Micro-actions the macro can spend energy on (per bit unless noted).
enum class Component {
  DualWlComputeMain,  ///< dual-WL BL compute on the main array segment
  DualWlComputeNear,  ///< dual-WL BL compute on the separated dummy segment
  SingleWlRead,       ///< single-WL read (NOT/COPY/SHIFT sources)
  FaLogic,            ///< FA-Logics + output mux switching
  Inverter,           ///< Y-path inverter (NOT)
  WriteBackNear,      ///< write-back onto the separated dummy segment
  WriteBackFull,      ///< write-back driving the full-height BL
  FlipFlop,           ///< multiplier / propagation flip-flop update
};

enum class SeparatorMode { Enabled, Disabled };

/// Price list at the 0.9 V calibration point (femtojoules per bit).
/// Defaults are the Table 2 calibration; see energy/calibration.cpp.
struct EnergyParams {
  double cmp_main_fj = 30.00;
  double cmp_near_fj = 15.60;
  double rd_single_fj = 31.25;
  double fa_fj = 4.35;
  double inv_fj = 1.00;
  double wb_near_fj = 1.60;
  double wb_full_fj = 9.90;
  double ff_fj = 1.50;

  /// Average write-back switching activity of MULT partial-product rows.
  double mult_wb_activity = 0.66;
  /// Activity of the all-zeros initialisation write.
  double zero_init_activity = 0.30;

  Volt v_ref{0.9};
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : p_(params) {}

  /// Dynamic-energy scale factor (V/Vref)^2.
  [[nodiscard]] double voltage_scale(Volt vdd) const;

  /// Price of one bit of a component at the given supply.
  [[nodiscard]] Joule price(Component c, Volt vdd) const;

  // ---- closed forms per word-level operation (operand width `bits`) ----

  /// Dual-WL logic op (AND/OR/XOR/... ) driven out on the Y-path, no WB.
  [[nodiscard]] Joule logic_op(unsigned bits, Volt vdd) const;
  /// 1-cycle bit-parallel addition (Table 2 convention: result driven out).
  [[nodiscard]] Joule add(unsigned bits, Volt vdd) const;
  /// 1-cycle add-and-shift, written back to a dummy row.
  [[nodiscard]] Joule add_shift(unsigned bits, Volt vdd, SeparatorMode sep) const;
  /// NOT / COPY / SHIFT: single-WL read, written back to a dummy row.
  [[nodiscard]] Joule single_wl_writeback(unsigned bits, Volt vdd, SeparatorMode sep) const;
  /// 2-cycle subtraction (NOT + ADD with carry-in).
  [[nodiscard]] Joule sub(unsigned bits, Volt vdd, SeparatorMode sep) const;
  /// (N+2)-cycle bit-parallel multiplication on a 2N-bit precision unit.
  [[nodiscard]] Joule mult(unsigned bits, Volt vdd, SeparatorMode sep) const;

  /// Tera-operations per second per watt: 1 op = one `bits`-wide word op.
  [[nodiscard]] double tops_per_watt(Joule energy_per_op) const;

  [[nodiscard]] const EnergyParams& params() const { return p_; }

 private:
  EnergyParams p_;
};

}  // namespace bpim::energy
