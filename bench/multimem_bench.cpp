// Multi-memory scale-out benchmark: the same closed-loop multi-client load
// served by pools of 1, 2, and 4 ImcMemory instances (NUMA-style nodes)
// behind one serve::Server.
//
// Clients submit large MULT ops whose coalesced dispatch groups exceed a
// single array's residency budget, so the scheduler splits them into
// per-memory sub-batches. The headline metric is modeled throughput:
// ops per million modeled cycles of makespan, where the makespan is the
// busiest memory's pipelined-cycle total (memories run in parallel in the
// cycle model). Every result is verified against the scalar reference, and
// per-memory occupancy shows how evenly the placement policy spread the
// load.
//
// Results land in BENCH_multimem.json (schema bpim.multimem.v1). The bench
// exits non-zero when the 4-memory pool fails to reach 2x the 1-memory
// modeled throughput -- the acceptance gate CI smoke runs check.
//
// Usage: multimem_bench [--clients C] [--ops K] [--layers L] [--bits B]
//                       [--window US] [--placement P] [--smoke] [--out <path>]
//   --clients    concurrent closed-loop clients         (default 16)
//   --ops        ops per client                         (default 24; smoke 6)
//   --layers     row-pair layers per op                 (default 16)
//   --bits       operand precision                      (default 8)
//   --window     scheduler coalesce window, us          (default 200)
//   --placement  round-robin | least-loaded | sticky    (default least-loaded)
//   --smoke      CI-sized run; same JSON shape

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "obs_flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"
#include "macro/isa.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

using namespace bpim;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

namespace {

constexpr std::size_t kMacrosPerMemory = 4;

struct Options {
  std::size_t clients = 16;
  std::size_t ops_per_client = 24;
  std::size_t layers_per_op = 16;
  unsigned bits = 8;
  std::chrono::microseconds window{200};
  serve::Placement placement = serve::Placement::LeastLoaded;
  bool smoke = false;
  std::string out_path = "BENCH_multimem.json";
};

/// One client's scripted workload: operand storage plus the ops over it.
struct ClientLoad {
  std::vector<std::vector<std::uint64_t>> a, b;
  std::vector<VecOp> ops;
};

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, Rng& rng) {
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

macro::MemoryConfig node_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = kMacrosPerMemory;
  return cfg;
}

std::vector<ClientLoad> make_loads(const Options& opt, std::size_t elements) {
  std::vector<ClientLoad> loads(opt.clients);
  for (std::size_t c = 0; c < opt.clients; ++c) {
    Rng rng(0x4E0DE + c);
    ClientLoad& load = loads[c];
    for (std::size_t i = 0; i < opt.ops_per_client; ++i) {
      load.a.push_back(random_vec(elements, opt.bits, rng));
      load.b.push_back(random_vec(elements, opt.bits, rng));
      load.ops.push_back(VecOp{OpKind::Mult, opt.bits, periph::LogicFn::And,
                               load.a.back(), load.b.back()});
    }
  }
  return loads;
}

void verify(const VecOp& op, const std::vector<std::uint64_t>& got) {
  for (std::size_t i = 0; i < op.a.size(); ++i)
    if (got[i] != op.a[i] * op.b[i]) {
      std::cerr << "FATAL: result mismatch at element " << i << "\n";
      std::exit(1);
    }
}

struct SweepPoint {
  std::size_t memories = 0;
  double wall_s = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t total_pipelined = 0;
  std::uint64_t makespan = 0;
  std::vector<double> occupancy;  ///< per memory, busy / makespan

  /// Modeled throughput: completed ops per million cycles of makespan.
  [[nodiscard]] double ops_per_mcycle() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(ops) * 1e6 / static_cast<double>(makespan);
  }
};

SweepPoint run_pool(const std::vector<ClientLoad>& loads, const Options& opt,
                    std::size_t memories) {
  serve::MemoryPoolConfig pcfg;
  pcfg.memories = memories;
  pcfg.memory = node_memory();
  pcfg.threads_per_memory = 2;
  pcfg.placement = opt.placement;
  serve::MemoryPool pool(pcfg);

  serve::ServerConfig cfg;
  cfg.queue_capacity = std::max<std::size_t>(16, 4 * loads.size());
  cfg.max_batch_ops = 64;
  cfg.coalesce_window = opt.window;
  serve::Server server(pool, cfg);

  SweepPoint r;
  r.memories = memories;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < loads.size(); ++c) {
    clients.emplace_back([&, c] {
      for (const VecOp& op : loads[c].ops) {
        OpResult res = server.submit(op).get();
        verify(op, res.values);
      }
    });
  }
  for (auto& t : clients) t.join();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();

  const serve::ServeStats s = server.stats();
  r.ops = s.completed;
  r.batches = s.batches;
  r.total_pipelined = s.modeled_pipelined_cycles;
  r.makespan = s.modeled_makespan_cycles;
  for (std::size_t m = 0; m < memories; ++m) r.occupancy.push_back(s.memory_occupancy(m));
  return r;
}

void write_json(const Options& opt, std::size_t elements,
                const std::vector<SweepPoint>& sweep, double speedup4) {
  JsonWriter w(opt.out_path);
  w.begin_object();
  w.field("schema", "bpim.multimem.v1");
  w.field("mode", opt.smoke ? "smoke" : "full");
  w.field("clients", opt.clients);
  w.field("ops_per_client", opt.ops_per_client);
  w.field("bits", opt.bits);
  w.field("elements", elements);
  w.field("layers_per_op", opt.layers_per_op);
  w.field("macros_per_memory", kMacrosPerMemory);
  w.field("window_us", opt.window.count());
  w.field("placement", serve::to_string(opt.placement));
  w.key("sweep");
  w.begin_array();
  for (const SweepPoint& p : sweep) {
    w.begin_object();
    w.field("memories", p.memories);
    w.field("ops", p.ops);
    w.field("batches", p.batches);
    w.field("total_pipelined_cycles", p.total_pipelined);
    w.field("makespan_cycles", p.makespan);
    w.field("ops_per_mcycle", p.ops_per_mcycle());
    w.field("wall_s", p.wall_s);
    w.field("occupancy", p.occupancy);
    w.end_object();
  }
  w.end_array();
  w.field("throughput_speedup_4_vs_1", speedup4);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::ObsFlags obs;
  bool ops_given = false;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--clients") {
        opt.clients = std::stoul(value());
      } else if (arg == "--ops") {
        opt.ops_per_client = std::stoul(value());
        ops_given = true;
      } else if (arg == "--layers") {
        opt.layers_per_op = std::stoul(value());
      } else if (arg == "--bits") {
        opt.bits = static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--window") {
        opt.window = std::chrono::microseconds(std::stoul(value()));
      } else if (arg == "--placement") {
        const std::string p = value();
        if (p == "round-robin") {
          opt.placement = serve::Placement::RoundRobin;
        } else if (p == "least-loaded") {
          opt.placement = serve::Placement::LeastLoaded;
        } else if (p == "sticky") {
          opt.placement = serve::Placement::StickyByOperand;
        } else {
          std::cerr << "--placement must be round-robin|least-loaded|sticky\n";
          return 2;
        }
      } else if (arg == "--smoke") {
        opt.smoke = true;
      } else if (arg == "--out") {
        opt.out_path = value();
      } else {
        std::cerr << "usage: multimem_bench [--clients C] [--ops K] [--layers L] "
                     "[--bits B] [--window US] [--placement P] [--smoke] [--out <path>]"
                  << bench::ObsFlags::kUsage << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  if (opt.smoke && !ops_given) opt.ops_per_client = 6;
  if (opt.clients == 0 || opt.ops_per_client == 0 || opt.layers_per_op == 0) {
    std::cerr << "--clients, --ops and --layers must be positive\n";
    return 2;
  }
  if (!macro::is_supported_precision(opt.bits)) {
    std::cerr << "--bits must be one of 2/4/8/16/32\n";
    return 2;
  }

  // Resolve op size: layers_per_op row-pair layers of MULT on one node.
  macro::ImcMemory probe_mem(node_memory());
  engine::ExecutionEngine probe(probe_mem, engine::EngineConfig{1});
  const std::size_t capacity = probe.row_pair_capacity();
  if (opt.layers_per_op > capacity) {
    std::cerr << "--layers exceeds the per-memory budget of " << capacity << " row pairs\n";
    return 2;
  }
  const std::size_t elements =
      opt.layers_per_op * probe.mult_units_per_row(opt.bits) * probe_mem.macro_count();

  const auto loads = make_loads(opt, elements);
  std::cout << opt.clients << " closed-loop clients x " << opt.ops_per_client << " ops, "
            << elements << " x " << opt.bits << "-bit MULT (" << opt.layers_per_op
            << " layers) each, " << kMacrosPerMemory << " macros/memory, placement "
            << serve::to_string(opt.placement) << ", coalesce window "
            << opt.window.count() << " us\n";

  obs.arm();
  std::vector<SweepPoint> sweep;
  for (const std::size_t memories : {1u, 2u, 4u})
    sweep.push_back(run_pool(loads, opt, memories));

  print_banner(std::cout, "Multi-memory scale-out (modeled throughput)");
  TextTable table({"memories", "ops", "batches", "makespan_cyc", "ops/Mcycle",
                   "speedup", "wall_s", "min/max occupancy"});
  for (const SweepPoint& p : sweep) {
    double occ_min = 1.0, occ_max = 0.0;
    for (const double o : p.occupancy) {
      occ_min = std::min(occ_min, o);
      occ_max = std::max(occ_max, o);
    }
    table.add_row({std::to_string(p.memories), std::to_string(p.ops),
                   std::to_string(p.batches), std::to_string(p.makespan),
                   TextTable::num(p.ops_per_mcycle(), 2),
                   TextTable::ratio(p.ops_per_mcycle() / sweep.front().ops_per_mcycle()),
                   TextTable::num(p.wall_s, 3),
                   TextTable::num(occ_min, 2) + "/" + TextTable::num(occ_max, 2)});
  }
  table.print(std::cout);

  const double speedup4 = sweep.back().ops_per_mcycle() / sweep.front().ops_per_mcycle();
  std::cout << "modeled throughput at 4 memories vs 1: " << TextTable::ratio(speedup4)
            << "\n";

  write_json(opt, elements, sweep, speedup4);
  std::cout << "wrote " << opt.out_path << "\n";
  obs.finish();

  // Acceptance gate: four memories must at least double the single-memory
  // modeled throughput.
  if (speedup4 < 2.0) {
    std::cerr << "WARNING: 4-memory pool reached only " << speedup4
              << "x of single-memory modeled throughput (gate: >= 2x)\n";
    return 1;
  }
  return 0;
}
