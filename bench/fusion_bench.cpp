// Fusion benchmark: whole-forward MAC programs vs op-at-a-time issue.
//
// For each (precision, layer shape) point two identical memories run the
// same forward: one issues J independent MULT ops through run_batch() (the
// pre-fusion behavior -- every op re-pokes its operands and pays full
// Table-1 cycles), one pins the weights and runs the compiled fused macro
// program through run_forward() (activation staged once, consecutive MACs
// on the chained datapath). Outputs must be bit-identical op for op; the
// headline metric is modeled cycles per inference -- operand loads plus
// in-array compute -- in the steady state after the materializing first
// forward.
//
// Results land in BENCH_fusion.json (schema bpim.fusion.v1). The bench
// exits non-zero when any 8-bit point falls below a 1.3x cycles-per-
// inference win, or when any output diverges -- the acceptance gate the CI
// smoke run checks.
//
// Usage: fusion_bench [--forwards N] [--smoke] [--out <path>]
//   --forwards   inference passes per point (default 4; smoke 3; the first
//                is the materializing warm-up and is excluded from totals)
//   --smoke      CI-sized run; same JSON shape

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/json_writer.hpp"
#include "obs_flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"
#include "macro/memory.hpp"

using namespace bpim;

namespace {

constexpr std::size_t kMacros = 8;
constexpr double kGate = 1.3;  ///< minimum 8-bit cycles-per-inference win

struct Options {
  std::size_t forwards = 4;
  bool smoke = false;
  std::string out_path = "BENCH_fusion.json";
};

/// One sweep point: J output neurons of `elements` inputs each.
struct Shape {
  std::size_t ops;
  std::size_t elements;
};

struct ModeTotals {
  std::uint64_t load_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t fused_cycles_saved = 0;

  [[nodiscard]] std::uint64_t cycles() const { return load_cycles + compute_cycles; }
};

macro::MemoryConfig node_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = kMacros;
  return cfg;
}

std::vector<std::uint64_t> random_codes(std::size_t n, unsigned bits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.uniform_u64(1ull << bits);
  return v;
}

struct PointResult {
  unsigned bits = 0;
  Shape shape{};
  std::size_t layers = 0;
  ModeTotals plain;
  ModeTotals fused;
  double win = 0.0;
};

PointResult run_point(unsigned bits, const Shape& shape, std::size_t forwards) {
  // Op-at-a-time baseline: fresh engine, every operand re-poked per op.
  macro::ImcMemory plain_mem(node_memory());
  engine::ExecutionEngine plain_eng(plain_mem);

  // Fused: weights pinned up front, program compiled at pin time.
  macro::ImcMemory fused_mem(node_memory());
  engine::ExecutionEngine fused_eng(fused_mem);

  std::vector<std::vector<std::uint64_t>> w;
  std::vector<engine::ResidentOperand> handles;
  for (std::size_t j = 0; j < shape.ops; ++j) {
    w.push_back(random_codes(shape.elements, bits, 1000 * bits + 10 * shape.ops + j));
    handles.push_back(fused_eng.pin(w.back(), bits, engine::OperandLayout::MultUnit));
  }
  if (!fused_eng.compile_forward(handles)) {
    std::cerr << "FATAL: " << bits << "-bit " << shape.ops << "x" << shape.elements
              << " did not compile to a fused program\n";
    std::exit(1);
  }

  PointResult point;
  point.bits = bits;
  point.shape = shape;
  point.layers =
      fused_eng.layers_for_elements(shape.elements, bits, engine::OperandLayout::MultUnit);

  for (std::size_t f = 0; f < forwards; ++f) {
    const auto x = random_codes(shape.elements, bits, 7000 * bits + 100 * shape.ops + f);

    std::vector<engine::VecOp> ops(shape.ops);
    for (std::size_t j = 0; j < shape.ops; ++j) {
      ops[j].kind = engine::OpKind::Mult;
      ops[j].bits = bits;
      ops[j].a = w[j];
      ops[j].b = x;
    }
    const auto want = plain_eng.run_batch(ops);
    const engine::BatchStats plain_batch = plain_eng.last_batch();

    const auto got = fused_eng.run_forward(handles, x);
    const engine::BatchStats fused_batch = fused_eng.last_batch();

    for (std::size_t j = 0; j < shape.ops; ++j)
      if (got[j].values != want[j].values) {
        std::cerr << "FATAL: fused forward diverged from op-at-a-time at " << bits
                  << "-bit " << shape.ops << "x" << shape.elements << ", forward " << f
                  << ", op " << j << "\n";
        std::exit(1);
      }

    // Forward 0 is the warm-up that pays the deferred materializing writes;
    // the steady state is what repeated inference sees.
    if (f == 0) continue;
    point.plain.load_cycles += plain_batch.load_cycles;
    point.plain.compute_cycles += plain_batch.compute_cycles;
    point.fused.load_cycles += fused_batch.load_cycles;
    point.fused.compute_cycles += fused_batch.compute_cycles;
    point.fused.fused_cycles_saved += fused_batch.fused_cycles_saved;
  }

  if (fused_eng.fusion_stats().fallback_runs != 0) {
    std::cerr << "FATAL: " << bits << "-bit " << shape.ops << "x" << shape.elements
              << " fell back to op-at-a-time execution\n";
    std::exit(1);
  }
  point.win = point.fused.cycles() == 0 ? 0.0
                                        : static_cast<double>(point.plain.cycles()) /
                                              static_cast<double>(point.fused.cycles());
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::ObsFlags obs;
  bool forwards_given = false;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse(argc, argv, i)) continue;
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--forwards" && i + 1 < argc) {
      try {
        opt.forwards = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "bad value for --forwards\n";
        return 2;
      }
      forwards_given = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out_path = argv[++i];
    } else {
      std::cerr << "usage: fusion_bench [--forwards N] [--smoke] [--out <path>]"
                << bench::ObsFlags::kUsage << "\n";
      return 2;
    }
  }
  if (opt.smoke && !forwards_given) opt.forwards = 3;
  if (opt.forwards < 2) {
    std::cerr << "--forwards must be at least 2 (warm-up plus one steady-state pass)\n";
    return 2;
  }

  // J >= 8 everywhere: single-MULT layers have no chain to discount, and
  // the paper's FC layers are wide. All shapes fit the array with room for
  // the staged activation (no eviction churn; tests cover that).
  const unsigned precisions[] = {2, 4, 8};
  const Shape shapes[] = {{8, 64}, {16, 128}, {32, 64}};

  obs.arm();
  std::vector<PointResult> points;
  for (const unsigned bits : precisions)
    for (const Shape& s : shapes) points.push_back(run_point(bits, s, opt.forwards));

  print_banner(std::cout, "Fused whole-forward MAC programs vs op-at-a-time issue");
  std::cout << "  " << kMacros << " macros, " << opt.forwards
            << " forwards per point (first pass excluded as warm-up)\n";
  TextTable table({"bits", "shape", "plain_cycles", "fused_cycles", "fused_saved", "win"});
  double min_win_8bit = 0.0;
  bool first_8bit = true;
  for (const PointResult& p : points) {
    table.add_row({std::to_string(p.bits),
                   std::to_string(p.shape.ops) + "x" + std::to_string(p.shape.elements),
                   std::to_string(p.plain.cycles()), std::to_string(p.fused.cycles()),
                   std::to_string(p.fused.fused_cycles_saved), TextTable::ratio(p.win)});
    if (p.bits == 8 && (first_8bit || p.win < min_win_8bit)) {
      min_win_8bit = p.win;
      first_8bit = false;
    }
  }
  table.print(std::cout);
  std::cout << "min 8-bit cycles-per-inference win: " << TextTable::ratio(min_win_8bit)
            << " (gate " << TextTable::ratio(kGate) << ")\n";

  obs.finish();
  JsonWriter w(opt.out_path);
  w.begin_object();
  w.field("schema", "bpim.fusion.v1");
  w.field("mode", opt.smoke ? "smoke" : "full");
  w.field("forwards", opt.forwards);
  w.field("macros", kMacros);
  w.key("sweep");
  w.begin_array();
  for (const PointResult& p : points) {
    w.begin_object();
    w.field("bits", p.bits);
    w.field("ops", p.shape.ops);
    w.field("elements", p.shape.elements);
    w.field("layers", p.layers);
    w.key("plain");
    w.begin_object();
    w.field("load_cycles", p.plain.load_cycles);
    w.field("compute_cycles", p.plain.compute_cycles);
    w.field("cycles", p.plain.cycles());
    w.end_object();
    w.key("fused");
    w.begin_object();
    w.field("load_cycles", p.fused.load_cycles);
    w.field("compute_cycles", p.fused.compute_cycles);
    w.field("cycles", p.fused.cycles());
    w.field("fused_cycles_saved", p.fused.fused_cycles_saved);
    w.end_object();
    w.field("cycle_win", p.win);
    w.end_object();
  }
  w.end_array();
  w.field("min_win_8bit", min_win_8bit);
  w.field("gate", kGate);
  w.end_object();
  std::cout << "wrote " << opt.out_path << "\n";

  // Acceptance gate: the fused program must reach the modeled win the
  // chained-MAC cycle model promises at the paper's 8-bit operating point.
  if (min_win_8bit < kGate) {
    std::cerr << "WARNING: 8-bit fused cycles-per-inference win " << min_win_8bit
              << "x is below the " << kGate << "x gate\n";
    return 1;
  }
  return 0;
}
