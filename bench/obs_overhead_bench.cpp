// Tracing-overhead guard: the observability layer's promise is that
// instrumentation left compiled in costs next to nothing while disabled,
// and a bounded lock-free ring write while enabled. This bench measures
// both and exits non-zero when either regresses past its gate, so CI
// catches an accidentally-heavy span path before it taxes every bench.
//
//   disabled  one relaxed atomic load + branch per BPIM_TRACE_SPAN site
//   enabled   clock sample x2 + one SPSC ring slot copy per span
//
// Results land in BENCH_obs.json (schema bpim.obs.v1). Gates are loose
// enough for a noisy shared CI core (the disabled path measures ~1-3 ns on
// bare metal) but tight enough to flag a mutex or allocation sneaking into
// the record path.
//
// Usage: obs_overhead_bench [--spans N] [--smoke] [--out <path>]

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"

using namespace bpim;

namespace {

// Gates, in nanoseconds per span (two events' worth of work for the
// enabled case: constructor sample + destructor record).
constexpr double kDisabledGateNs = 100.0;
constexpr double kEnabledGateNs = 2000.0;

double ns_per_span_disabled(std::size_t spans) {
  auto& session = obs::TraceSession::global();
  session.disable();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < spans; ++i) {
    BPIM_TRACE_SPAN(span, "obs.overhead.disabled");
    span.arg("i", static_cast<double>(i));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(spans);
}

double ns_per_span_enabled(std::size_t spans) {
  auto& session = obs::TraceSession::global();
  session.enable();
  // Record in ring-sized chunks and drain between them (untimed), so the
  // measurement covers the ring-write path rather than the cheaper
  // drop-on-full path.
  constexpr std::size_t kChunk = 4096;
  std::ostringstream discard;
  double total_ns = 0.0;
  std::size_t recorded = 0;
  while (recorded < spans) {
    const std::size_t n = std::min(kChunk, spans - recorded);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      BPIM_TRACE_SPAN(span, "obs.overhead.enabled");
      span.arg("i", static_cast<double>(i));
    }
    const auto t1 = std::chrono::steady_clock::now();
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    recorded += n;
    discard.str({});
    session.export_json(discard);  // drain the ring, off the clock
  }
  session.disable();
  return total_ns / static_cast<double>(spans);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t spans = 1u << 20;
  bool spans_given = false;
  bool smoke = false;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--spans" && i + 1 < argc) {
      try {
        spans = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "bad value for --spans\n";
        return 2;
      }
      spans_given = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: obs_overhead_bench [--spans N] [--smoke] [--out <path>]\n";
      return 2;
    }
  }
  if (smoke && !spans_given) spans = 1u << 17;
  if (spans == 0) {
    std::cerr << "--spans must be positive\n";
    return 2;
  }

  // Warm-up outside the clock: first-use paths (session construction, ring
  // registration, page faults) are one-time costs, not per-span overhead.
  obs::TraceSession::global().enable();
  { BPIM_TRACE_SPAN(warm, "obs.overhead.warmup"); }
  obs::TraceSession::global().disable();

  const double disabled_ns = ns_per_span_disabled(spans);
  const double enabled_ns = ns_per_span_enabled(spans);
  const std::uint64_t dropped = obs::TraceSession::global().dropped();

  print_banner(std::cout, "Tracing overhead per BPIM_TRACE_SPAN site");
  TextTable table({"state", "ns/span", "gate_ns"});
  table.add_row({"disabled", TextTable::num(disabled_ns, 2),
                 TextTable::num(kDisabledGateNs, 0)});
  table.add_row({"enabled", TextTable::num(enabled_ns, 2),
                 TextTable::num(kEnabledGateNs, 0)});
  table.print(std::cout);

  const bool pass = disabled_ns <= kDisabledGateNs && enabled_ns <= kEnabledGateNs;

  JsonWriter w(out_path);
  w.begin_object();
  w.field("schema", "bpim.obs.v1");
  w.field("mode", smoke ? "smoke" : "full");
  w.field("spans", spans);
  w.field("disabled_ns_per_span", disabled_ns);
  w.field("disabled_gate_ns", kDisabledGateNs);
  w.field("enabled_ns_per_span", enabled_ns);
  w.field("enabled_gate_ns", kEnabledGateNs);
  w.field("events_dropped", dropped);
  w.field("pass", pass);
  w.end_object();
  std::cout << "wrote " << out_path << "\n";

  if (!pass) {
    std::cerr << "WARNING: tracing overhead exceeded its gate (disabled "
              << disabled_ns << " ns/span, enabled " << enabled_ns << " ns/span)\n";
    return 1;
  }
  return 0;
}
