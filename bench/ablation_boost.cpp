// Ablation: the BL boosting circuit.
//
// With a short (read-disturb-safe) WL pulse, the cell alone only develops a
// ~100-150 mV droop; without the booster the swing never reaches the
// single-ended SA threshold. This study sweeps booster strength and pulse
// width to show both halves of the paper's design point: the booster makes
// the short pulse *sufficient*, and the short pulse makes the access *safe*.

#include <iostream>

#include "common/table.hpp"
#include "timing/adm.hpp"
#include "timing/bl_compute.hpp"

using namespace bpim;
using namespace bpim::literals;
using timing::BlComputeConfig;
using timing::BlComputeModel;
using timing::BlScheme;

int main() {
  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};

  print_banner(std::cout, "Ablation -- booster strength (nominal BL compute delay)");
  TextTable t({"booster scale", "delay [ns]", "note"});
  for (const double scale : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    BlComputeConfig cfg;
    if (scale == 0.0) {
      cfg.w_p0_um = 1e-6;
      cfg.w_n1_um = 1e-6;
    } else {
      cfg.w_p0_um *= scale;
      cfg.w_n1_um *= scale;
    }
    const double d = BlComputeModel(BlScheme::ShortWlBoost, cfg, op).nominal_delay().si() * 1e9;
    const bool timed_out = d >= cfg.t_end.si() * 1e9 - 1e-3;
    t.add_row({TextTable::num(scale, 2), TextTable::num(d, 3),
               timed_out ? "never develops full swing" : ""});
  }
  t.print(std::cout);

  print_banner(std::cout, "Ablation -- WL pulse width vs delay and disturb rate");
  TextTable p({"pulse [ps]", "BL delay [ns]", "disturb rate (MC)", "verdict"});
  for (const double ps : {60.0, 100.0, 140.0, 250.0, 600.0, 1500.0}) {
    BlComputeConfig cfg;
    cfg.wl_pulse = Second(ps * 1e-12);
    const double d = BlComputeModel(BlScheme::ShortWlBoost, cfg, op).nominal_delay().si() * 1e9;
    const auto adm = timing::shortwl_disturb_rate(cfg, op, 60000, 0xB005 + (unsigned)ps);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1e", adm.rate());
    const char* verdict = adm.rate() > 1e-3 ? "UNSAFE (disturb)"
                          : d > 1.0         ? "slow"
                                            : "safe + fast";
    p.add_row({TextTable::num(ps, 0), TextTable::num(d, 3), rate, verdict});
  }
  p.print(std::cout);

  std::cout << "\nThe 140 ps pulse of the paper sits at the knee: long enough to seed the\n"
               "booster, short enough to stay in the 2.5e-5 disturb decade.\n";
  return 0;
}
