// Ablation: reconfigurable bit-precision (Fig 6).
//
// The same macro runs 2/4/8/16/32-bit multiplies; unit count, cycle count
// and energy all track the configured precision. The "fixed 8-bit hardware"
// column shows what a non-reconfigurable design would pay to process
// low-precision data (the paper's hardware-utilisation argument).

#include <iostream>

#include "common/table.hpp"
#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;

int main() {
  print_banner(std::cout, "Ablation -- reconfigurable precision (MULT on one 128-col macro)");

  macro::ImcMacro m{macro::MacroConfig{}};

  // Reference cost of one multiply on fixed 8-bit hardware (sub-8-bit data
  // would be zero-padded into 8-bit units on a non-reconfigurable design).
  m.mult_rows(RowRef::main(0), RowRef::main(1), 8);
  const double fj8 =
      in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(8));

  TextTable t({"precision", "units/row", "cycles", "energy/op [fJ]",
               "throughput [ops/cycle]", "on fixed 8b HW [fJ/op]", "energy saved"});
  for (const unsigned bits : {2u, 4u, 8u, 16u, 32u}) {
    m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    const double units = static_cast<double>(m.mult_units_per_row(bits));
    const double fj = in_fJ(m.last_op().op_energy) / units;
    const double tput = units / static_cast<double>(m.last_op().cycles);
    const bool sub8 = bits < 8;
    t.add_row({std::to_string(bits) + "b", TextTable::num(units, 0),
               std::to_string(m.last_op().cycles), TextTable::num(fj, 1),
               TextTable::num(tput, 2), sub8 ? TextTable::num(fj8, 1) : std::string("-"),
               sub8 ? TextTable::num(100.0 * (1.0 - fj / fj8), 1) + "%" : std::string("-")});
  }
  t.print(std::cout);

  std::cout << "\n(The fixed-8b column assumes 2/4-bit operands padded into 8-bit units --\n"
               "the wasted-hardware case the paper's reconfigurability avoids.)\n";
  return 0;
}
