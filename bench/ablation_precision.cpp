// Ablation: reconfigurable bit-precision (Fig 6).
//
// The same macro runs 2/4/8/16/32-bit multiplies; unit count, cycle count
// and energy all track the configured precision. The "fixed 8-bit hardware"
// column shows what a non-reconfigurable design would pay to process
// low-precision data (the paper's hardware-utilisation argument). The
// adaptive column re-runs each precision with the operand-adaptive policy
// on the same data (dense weights, 50%-zero multipliers): the add-shift
// loop runs only to the operands' effectual depth, bit-identically.

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;

int main() {
  print_banner(std::cout, "Ablation -- reconfigurable precision (MULT on one 128-col macro)");

  macro::ImcMacro m{macro::MacroConfig{}};
  Rng rng(0xF16);

  // Representative operands per precision: dense nonzero multiplicands
  // against multipliers that are zero half the time (a ReLU'd stream).
  const auto poke_operands = [&](unsigned bits) {
    const std::uint64_t mask = (1ull << bits) - 1;
    for (std::size_t u = 0; u < m.mult_units_per_row(bits); ++u) {
      m.poke_mult_operand(0, u, bits, 1 | (rng.next_u64() & mask));
      m.poke_mult_operand(1, u, bits, rng.next_u64() % 2 == 0 ? 0 : rng.next_u64() & mask);
    }
  };

  // Reference cost of one multiply on fixed 8-bit hardware (sub-8-bit data
  // would be zero-padded into 8-bit units on a non-reconfigurable design).
  poke_operands(8);
  m.mult_rows(RowRef::main(0), RowRef::main(1), 8);
  const double fj8 =
      in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(8));

  const macro::AdaptivePolicy adaptive{true, true};
  TextTable t({"precision", "units/row", "cycles", "adaptive cycles", "energy/op [fJ]",
               "throughput [ops/cycle]", "on fixed 8b HW [fJ/op]", "energy saved"});
  for (const unsigned bits : {2u, 4u, 8u, 16u, 32u}) {
    poke_operands(bits);
    m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    const unsigned dense_cycles = m.last_op().cycles;
    const double units = static_cast<double>(m.mult_units_per_row(bits));
    const double fj = in_fJ(m.last_op().op_energy) / units;
    const double tput = units / static_cast<double>(dense_cycles);
    m.mult_rows(RowRef::main(0), RowRef::main(1), bits, adaptive);
    const unsigned adaptive_cycles = m.last_op().cycles;
    const bool sub8 = bits < 8;
    t.add_row({std::to_string(bits) + "b", TextTable::num(units, 0),
               std::to_string(dense_cycles), std::to_string(adaptive_cycles),
               TextTable::num(fj, 1), TextTable::num(tput, 2),
               sub8 ? TextTable::num(fj8, 1) : std::string("-"),
               sub8 ? TextTable::num(100.0 * (1.0 - fj / fj8), 1) + "%" : std::string("-")});
  }
  t.print(std::cout);

  std::cout << "\n(The fixed-8b column assumes 2/4-bit operands padded into 8-bit units --\n"
               "the wasted-hardware case the paper's reconfigurability avoids. The\n"
               "adaptive column is the same multiply under the narrowing/zero-skip\n"
               "policy on half-sparse multipliers: fewer cycles, identical products.)\n";
  return 0;
}
