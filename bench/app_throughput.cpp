// System-level comparison: a quantised MLP classifier executed on the
// proposed bit-parallel memory vs the bit-serial baseline [2], end to end
// (cycles, wall-clock at each architecture's own fmax, energy).
//
// The headline proposed number is the *fused* forward: weights pinned
// resident and every layer compiled into one whole-forward macro program
// (activation staged once, consecutive MACs on the chained datapath). The
// op-at-a-time path the engine used before fusion is reported alongside
// and must stay bit-identical.
//
// A second section runs the same fused net on a ReLU-sparse input (85%
// zero activations, the shape a ReLU'd embedding feeds the first layer)
// with the adaptive policy on: zero activations skip their MULTs and
// narrow ones shorten the add-shift loop, bit-identically.

#include <cstdlib>
#include <iostream>

#include "app/mlp.hpp"
#include "baseline/bitserial.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  print_banner(std::cout,
               "Application throughput -- 8-bit MLP 256-32-16-8, prop (fused) vs bit-serial");

  // Workload: a 256-32-16-8 classifier = 8832 MACs. Every layer fits the
  // array with room for its staged activation, so each forwards as one
  // fused macro program; the whole pinned set co-resides (56 of 64 row
  // pairs), so repeated inference never churns the LRU.
  const std::vector<std::size_t> sizes{256, 32, 16, 8};
  Rng rng(5);
  std::vector<app::MlpLayerSpec> specs;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    app::MlpLayerSpec spec;
    spec.bits = 8;
    spec.weights.assign(sizes[l + 1], std::vector<double>(sizes[l]));
    for (auto& row : spec.weights)
      for (auto& w : row) w = rng.uniform(0.0, 1.0);
    specs.push_back(std::move(spec));
  }
  std::vector<double> x(sizes.front());
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  // --- proposed bit-parallel memory ---------------------------------------
  // Op-at-a-time twin: the pre-fusion behavior, one MULT dispatch per
  // neuron with re-poked operands.
  macro::ImcMemory plain_mem;
  engine::ExecutionEngine plain_eng(plain_mem);
  app::Mlp plain_net(specs);
  const auto plain_y = plain_net.forward(plain_eng, x);
  const auto& plain_st = plain_net.last_stats();

  // Fused headline: weights pinned at construction, each layer compiled to
  // one macro program. First forward pays the materializing weight writes;
  // the steady state is what repeated inference sees.
  macro::ImcMemory fused_mem;
  engine::ExecutionEngine fused_eng(fused_mem);
  app::Mlp fused_net(specs, fused_eng);
  (void)fused_net.forward(fused_eng, x);  // warm-up: materializes the weights
  const auto fused_y = fused_net.forward(fused_eng, x);
  const auto& st = fused_net.last_stats();
  if (fused_y != plain_y) {  // bit-identical doubles, not epsilon-close
    std::cerr << "FATAL: fused forward diverged from the op-at-a-time outputs\n";
    return 1;
  }

  const timing::FreqModel fm;
  const double prop_time_ns = static_cast<double>(st.cycles) / in_GHz(fm.fmax(0.9_V));

  // --- bit-serial baseline --------------------------------------------------
  // The multiplier side: 8832 8-bit MACs; 64 element-multiplies per batch
  // of its 64 ALUs, 80 cycles each; energy from the calibrated per-cycle
  // price. Runs at the published 475 MHz class frequency.
  baseline::BitSerialMacro serial;
  std::uint64_t total_macs = 0;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) total_macs += sizes[l] * sizes[l + 1];
  const std::uint64_t batches = total_macs / serial.alus();
  const std::uint64_t bs_cycles = batches * baseline::BitSerialMacro::mult_cycles(8);
  const double bs_energy_pj =
      in_pJ(serial.op_energy(baseline::BitSerialMacro::mult_cycles(8), 0.9_V)) *
      static_cast<double>(total_macs);
  const double bs_freq_ghz = 0.475;
  const double bs_time_ns = static_cast<double>(bs_cycles) / bs_freq_ghz;

  TextTable t({"metric", "bit-serial [2]", "proposed (fused)", "gain"});
  t.add_row({"multiply cycles", std::to_string(bs_cycles), std::to_string(st.cycles),
             TextTable::ratio(static_cast<double>(bs_cycles) /
                                  static_cast<double>(st.cycles), 1)});
  t.add_row({"clock", "475 MHz", TextTable::num(in_GHz(fm.fmax(0.9_V)), 2) + " GHz", "-"});
  t.add_row({"wall-clock [us]", TextTable::num(bs_time_ns * 1e-3, 2),
             TextTable::num(prop_time_ns * 1e-3, 2),
             TextTable::ratio(bs_time_ns / prop_time_ns, 1)});
  t.add_row({"multiply energy [nJ]", TextTable::num(bs_energy_pj * 1e-3, 2),
             TextTable::num(in_pJ(st.energy) * 1e-3, 2),
             TextTable::ratio(bs_energy_pj / in_pJ(st.energy), 2)});
  t.print(std::cout);

  std::cout << "\nvs this work's own op-at-a-time path: " << plain_st.cycles
            << " compute cycles unfused, " << st.cycles << " fused ("
            << st.fused_cycles_saved << " saved on the chained datapath, "
            << TextTable::ratio(static_cast<double>(plain_st.cycles) /
                                static_cast<double>(st.cycles))
            << "), bit-identical outputs.\n";

  // --- sparse-activation adaptive mode -------------------------------------
  // Same net, ReLU-sparse input: 85% of the activations are zero, the rest
  // uniform. One fused engine runs with the adaptive policy, a twin without;
  // outputs must stay bit-identical while the policy's savings land in
  // LayerStats::adaptive_cycles_saved.
  std::vector<double> xs(sizes.front(), 0.0);
  for (auto& v : xs)
    if (rng.uniform(0.0, 1.0) >= 0.85) v = rng.uniform(0.0, 1.0);

  macro::ImcMemory dense_mem;
  engine::ExecutionEngine dense_eng(dense_mem);
  app::Mlp dense_net(specs, dense_eng);
  (void)dense_net.forward(dense_eng, xs);  // warm-up
  const auto dense_y = dense_net.forward(dense_eng, xs);
  const auto& dense_st = dense_net.last_stats();

  macro::ImcMemory sparse_mem;
  engine::ExecutionEngine sparse_eng(sparse_mem);
  sparse_eng.set_adaptive_policy(macro::AdaptivePolicy{true, true});
  app::Mlp sparse_net(specs, sparse_eng);
  (void)sparse_net.forward(sparse_eng, xs);  // warm-up
  const auto sparse_y = sparse_net.forward(sparse_eng, xs);
  const auto& sparse_st = sparse_net.last_stats();
  if (sparse_y != dense_y) {
    std::cerr << "FATAL: adaptive forward diverged from the dense-schedule outputs\n";
    return 1;
  }

  std::cout << "\nReLU-sparse input (85% zero activations), fused forward with the\n"
               "adaptive policy: "
            << dense_st.cycles << " compute cycles dense schedule, " << sparse_st.cycles
            << " adaptive (" << sparse_st.adaptive_cycles_saved
            << " cycles narrowed/skipped, "
            << TextTable::ratio(static_cast<double>(dense_st.cycles) /
                                static_cast<double>(sparse_st.cycles))
            << "), bit-identical outputs.\n";

  std::cout << "\nBoth architectures computed the same quantised net; the gains follow\n"
               "from Table 1's N+2-cycle bit-parallel multiply vs the N(N+2)-cycle\n"
               "bit-serial flow, the wider per-cycle word parallelism, the ~4.7x\n"
               "clock advantage of the short-WL + boost array (Table 3), and the\n"
               "fused whole-forward programs that keep dependent MACs in-array.\n";
  return 0;
}
