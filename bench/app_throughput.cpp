// System-level comparison: a quantised fully-connected layer executed on
// the proposed bit-parallel memory vs the bit-serial baseline [2], end to
// end (cycles, wall-clock at each architecture's own fmax, energy).

#include <iostream>

#include "app/nn.hpp"
#include "baseline/bitserial.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  print_banner(std::cout,
               "Application throughput -- FC layer 64x256, 8-bit, prop vs bit-serial");

  // Workload: one 64-neuron layer over 256 inputs = 16384 MACs.
  const std::size_t in = 256, out = 64;
  Rng rng(5);
  std::vector<std::vector<double>> w(out, std::vector<double>(in));
  for (auto& row : w)
    for (auto& x : row) x = rng.uniform(0.0, 1.0);
  std::vector<double> x(in);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  // --- proposed bit-parallel memory ---------------------------------------
  macro::ImcMemory mem;
  app::QuantizedLinear layer(w, 8);
  (void)layer.forward(mem, x);
  const auto& st = layer.last_stats();
  const timing::FreqModel fm;
  const double prop_time_ns = static_cast<double>(st.cycles) / in_GHz(fm.fmax(0.9_V));

  // --- bit-serial baseline --------------------------------------------------
  // The multiplier side: 16384 8-bit MACs; 64 element-multiplies per batch
  // of its 64 ALUs, 80 cycles each; energy from the calibrated per-cycle
  // price. Runs at the published 475 MHz class frequency.
  baseline::BitSerialMacro serial;
  const std::uint64_t total_macs = in * out;
  const std::uint64_t batches = total_macs / serial.alus();
  const std::uint64_t bs_cycles = batches * baseline::BitSerialMacro::mult_cycles(8);
  const double bs_energy_pj =
      in_pJ(serial.op_energy(baseline::BitSerialMacro::mult_cycles(8), 0.9_V)) *
      static_cast<double>(total_macs);
  const double bs_freq_ghz = 0.475;
  const double bs_time_ns = static_cast<double>(bs_cycles) / bs_freq_ghz;

  TextTable t({"metric", "bit-serial [2]", "proposed", "gain"});
  t.add_row({"multiply cycles", std::to_string(bs_cycles), std::to_string(st.cycles),
             TextTable::ratio(static_cast<double>(bs_cycles) /
                                  static_cast<double>(st.cycles), 1)});
  t.add_row({"clock", "475 MHz", TextTable::num(in_GHz(fm.fmax(0.9_V)), 2) + " GHz", "-"});
  t.add_row({"wall-clock [us]", TextTable::num(bs_time_ns * 1e-3, 2),
             TextTable::num(prop_time_ns * 1e-3, 2),
             TextTable::ratio(bs_time_ns / prop_time_ns, 1)});
  t.add_row({"multiply energy [nJ]", TextTable::num(bs_energy_pj * 1e-3, 2),
             TextTable::num(in_pJ(st.energy) * 1e-3, 2),
             TextTable::ratio(bs_energy_pj / in_pJ(st.energy), 2)});
  t.print(std::cout);

  std::cout << "\nBoth architectures computed the same quantised layer; the gains follow\n"
               "from Table 1's N+2-cycle bit-parallel multiply vs the N(N+2)-cycle\n"
               "bit-serial flow, the wider per-cycle word parallelism, and the ~4.7x\n"
               "clock advantage of the short-WL + boost array (Table 3).\n";
  return 0;
}
