// Fig 7(b) reproduction: full-adder critical-path delay vs supply voltage,
// proposed transmission-gate carry-select FA vs logic-gate FA, 8- and
// 16-bit ripple chains. 28 nm-class scaling, 25 C, NN.
//
// Paper claim: the proposed FA improves the critical path 1.8x-2.2x.

#include <iostream>

#include "common/table.hpp"
#include "timing/fa_timing.hpp"

using namespace bpim;
using namespace bpim::literals;
using timing::FaKind;

int main() {
  print_banner(std::cout, "Fig 7(b) -- FA critical path vs supply (25 C, NN)");

  TextTable t({"VDD [V]", "Prop FA 8b [ps]", "Logic FA 8b [ps]", "speedup 8b",
               "Prop FA 16b [ps]", "Logic FA 16b [ps]", "speedup 16b"});
  for (double v = 0.7; v <= 1.1 + 1e-9; v += 0.1) {
    const Volt vdd(v);
    const double p8 = in_ps(timing::fa_critical_path(FaKind::TransmissionGateSelect, 8, vdd));
    const double l8 = in_ps(timing::fa_critical_path(FaKind::LogicGate, 8, vdd));
    const double p16 = in_ps(timing::fa_critical_path(FaKind::TransmissionGateSelect, 16, vdd));
    const double l16 = in_ps(timing::fa_critical_path(FaKind::LogicGate, 16, vdd));
    t.add_row({TextTable::num(v, 1), TextTable::num(p8, 1), TextTable::num(l8, 1),
               TextTable::ratio(l8 / p8, 2), TextTable::num(p16, 1), TextTable::num(l16, 1),
               TextTable::ratio(l16 / p16, 2)});
  }
  t.print(std::cout);

  std::cout << "\nPaper claims: proposed FA 1.8x-2.2x faster; 16-bit logic FA crosses ~1 ns\n"
               "near 0.7 V; 16-bit proposed FA = 222 ps at 0.9 V (the Fig 8 logic stage).\n";
  return 0;
}
