// Table 1 reproduction: supported operations and their cycle counts,
// measured by executing every operation on the functional macro.

#include <iostream>

#include "common/table.hpp"
#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;
using macro::ImcMacro;
using macro::Op;
using periph::LogicFn;

int main() {
  print_banner(std::cout, "Table 1 -- supported operations and cycles (measured)");

  ImcMacro m{macro::MacroConfig{}};
  const auto ra = RowRef::main(0), rb = RowRef::main(1);
  const auto dummy = RowRef::dummy(ImcMacro::kDummyOperand);

  TextTable t({"type", "operation", "measured cycles", "paper cycles"});

  const std::pair<LogicFn, const char*> logic_ops[] = {
      {LogicFn::Nand, "NAND/AND"}, {LogicFn::Nor, "NOR/OR"}, {LogicFn::Xnor, "XNOR/XOR"}};
  for (const auto& [fn, name] : logic_ops) {
    m.logic_rows(fn, ra, rb);
    t.add_row({"Logic", name, std::to_string(m.last_op().cycles), "1"});
  }
  m.unary_row(Op::Not, ra, dummy, 8);
  t.add_row({"Logic", "NOT", std::to_string(m.last_op().cycles), "1"});
  m.unary_row(Op::Shift, ra, dummy, 8);
  t.add_row({"Logic", "Shift (<<1)", std::to_string(m.last_op().cycles), "1"});

  m.add_rows(ra, rb, 8);
  t.add_row({"Integer", "ADD", std::to_string(m.last_op().cycles), "1"});
  m.sub_rows(ra, rb, 8);
  t.add_row({"Integer", "SUB", std::to_string(m.last_op().cycles), "2"});
  m.add_shift_rows(ra, rb, 8, dummy);
  t.add_row({"Integer", "ADD-Shift", std::to_string(m.last_op().cycles), "1"});
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    m.mult_rows(ra, rb, bits);
    t.add_row({"Integer", "MULT (" + std::to_string(bits) + "b)",
               std::to_string(m.last_op().cycles), "N+2 = " + std::to_string(bits + 2)});
  }
  t.print(std::cout);

  std::cout << "\nAll measured counts match Table 1 (N = operand bit width).\n";
  return 0;
}
