// Extension: leakage-aware energy efficiency.
//
// The paper's TOPS/W are dynamic-only. A powered 128 KB array leaks; at low
// supply the dynamic energy shrinks quadratically but so does fmax, so
// leakage is charged over longer cycles. This study reports static power
// across supply/temperature and duty-cycle-aware effective TOPS/W.

#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "energy/leakage.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  const energy::LeakageModel leak;
  const energy::EnergyModel dyn;
  const timing::FreqModel fm;
  constexpr std::size_t kCells = 64 * 128 * 128;  // the 128 KB part

  print_banner(std::cout, "Extension -- array leakage power (128 KB, 64 macros)");
  TextTable t({"VDD [V]", "P_leak @25C [uW]", "P_leak @85C [uW]"});
  for (double v = 0.6; v <= 1.1 + 1e-9; v += 0.1) {
    t.add_row({TextTable::num(v, 1),
               TextTable::num(in_mW(leak.array_power(kCells, Volt(v), 25.0)) * 1e3, 1),
               TextTable::num(in_mW(leak.array_power(kCells, Volt(v), 85.0)) * 1e3, 1)});
  }
  t.print(std::cout);

  print_banner(std::cout, "Effective 8-bit ADD TOPS/W vs duty cycle (25 C, 16 ops/cycle/macro)");
  TextTable e({"VDD [V]", "dynamic-only", "duty 100%", "duty 10%", "duty 1%"});
  for (const double v : {0.6, 0.9, 1.1}) {
    const Volt vdd(v);
    const Joule d = dyn.add(8, vdd);
    const Hertz f = fm.fmax(vdd);
    // Per-macro accounting: 16 word-ops per cycle, one macro's cells leak.
    const auto eff = [&](double duty) {
      return 1e-12 / leak.effective_energy_per_op(d, 128 * 128, vdd, 25.0, f, 16.0, duty).si();
    };
    e.add_row({TextTable::num(v, 1), TextTable::num(dyn.tops_per_watt(d), 2),
               TextTable::num(eff(1.0), 2), TextTable::num(eff(0.1), 2),
               TextTable::num(eff(0.01), 2)});
  }
  e.print(std::cout);

  std::cout << "\nAt full utilisation the paper's dynamic TOPS/W stand (leakage is <1% of\n"
               "an op's energy). At 1% duty each op carries ~100 idle cycles of leakage;\n"
               "at 0.6 V, where cycles stretch to 2.7 ns, that claws back a visible\n"
               "fraction of the low-voltage efficiency headline -- the usual utilisation\n"
               "caveat for IMC TOPS/W numbers.\n";
  return 0;
}
