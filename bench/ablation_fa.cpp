// Ablation: carry-select (transmission-gate) FA vs logic-gate FA inside the
// full cycle-time budget -- what the FA choice buys at the macro level.

#include <iostream>

#include "common/table.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;
using timing::FaKind;

int main() {
  print_banner(std::cout, "Ablation -- FA style: macro cycle time and fmax");

  const timing::FreqModel fm;
  TextTable t({"VDD [V]", "cycle w/ TG-select FA [ps]", "cycle w/ logic FA [ps]",
               "fmax TG [GHz]", "fmax logic [GHz]", "fmax gain"});
  for (double v = 0.6; v <= 1.1 + 1e-9; v += 0.1) {
    const Volt vdd(v);
    const double c_tg = in_ps(fm.breakdown(vdd, true, circuit::Corner::NN,
                                           FaKind::TransmissionGateSelect).total());
    const double c_lg =
        in_ps(fm.breakdown(vdd, true, circuit::Corner::NN, FaKind::LogicGate).total());
    const double f_tg = in_GHz(fm.fmax(vdd, true, circuit::Corner::NN,
                                       FaKind::TransmissionGateSelect));
    const double f_lg = in_GHz(fm.fmax(vdd, true, circuit::Corner::NN, FaKind::LogicGate));
    t.add_row({TextTable::num(v, 1), TextTable::num(c_tg, 0), TextTable::num(c_lg, 0),
               TextTable::num(f_tg, 3), TextTable::num(f_lg, 3),
               TextTable::ratio(f_tg / f_lg, 2)});
  }
  t.print(std::cout);

  print_banner(std::cout, "Ablation -- FA style across corners @ 0.9 V");
  TextTable ct({"corner", "fmax TG [GHz]", "fmax logic [GHz]"});
  for (const auto corner : circuit::kAllCorners) {
    ct.add_row({circuit::to_string(corner),
                TextTable::num(in_GHz(fm.fmax(0.9_V, true, corner,
                                              FaKind::TransmissionGateSelect)), 3),
                TextTable::num(in_GHz(fm.fmax(0.9_V, true, corner, FaKind::LogicGate)), 3)});
  }
  ct.print(std::cout);

  std::cout << "\nThe 1.8-2.2x FA-level speedup (Fig 7b) translates into ~1.3-1.5x macro\n"
               "fmax because the logic stage is 37% of the cycle (Fig 8 breakdown).\n";
  return 0;
}
