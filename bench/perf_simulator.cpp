// google-benchmark suite for the simulator itself: how fast the functional
// macro, the bit-serial baseline and the circuit solvers run on the host.
// (This measures the *simulator*, not the modelled silicon.)

#include <benchmark/benchmark.h>

#include "baseline/bitserial.hpp"
#include "common/rng.hpp"
#include "macro/imc_macro.hpp"
#include "timing/bl_compute.hpp"

using namespace bpim;
using array::RowRef;

namespace {

void BM_MacroAddRow(benchmark::State& state) {
  macro::ImcMacro m{macro::MacroConfig{}};
  Rng rng(1);
  BitVector a(128), b(128);
  a.randomize(rng);
  b.randomize(rng);
  m.poke_row(0, a);
  m.poke_row(1, b);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.add_rows(RowRef::main(0), RowRef::main(1), 8));
  state.SetItemsProcessed(state.iterations() * 16);  // 16 word-adds per row op
}
BENCHMARK(BM_MacroAddRow);

void BM_MacroMultRow(benchmark::State& state) {
  const auto bits = static_cast<unsigned>(state.range(0));
  macro::ImcMacro m{macro::MacroConfig{}};
  Rng rng(2);
  BitVector a(128), b(128);
  a.randomize(rng);
  b.randomize(rng);
  m.poke_row(0, a);
  m.poke_row(1, b);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.mult_rows(RowRef::main(0), RowRef::main(1), bits));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(m.mult_units_per_row(bits)));
}
BENCHMARK(BM_MacroMultRow)->Arg(2)->Arg(4)->Arg(8);

void BM_BitSerialMultVector(benchmark::State& state) {
  baseline::BitSerialMacro m;
  Rng rng(3);
  for (std::size_t e = 0; e < m.alus(); ++e) {
    m.poke_element(e, 0, 8, rng.next_u64() & 0xFF);
    m.poke_element(e, 8, 8, rng.next_u64() & 0xFF);
  }
  for (auto _ : state) m.mult(0, 8, 16, 8, m.alus());
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m.alus()));
}
BENCHMARK(BM_BitSerialMultVector);

void BM_BlTransientNominal(benchmark::State& state) {
  using namespace bpim::literals;
  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  const timing::BlComputeModel model(timing::BlScheme::ShortWlBoost,
                                     timing::BlComputeConfig{}, op);
  for (auto _ : state) benchmark::DoNotOptimize(model.nominal_delay());
}
BENCHMARK(BM_BlTransientNominal);

void BM_BlMonteCarloSample(benchmark::State& state) {
  using namespace bpim::literals;
  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  const timing::BlComputeConfig cfg;
  const timing::BlComputeModel model(timing::BlScheme::Wlud, cfg, op);
  Rng rng(4);
  for (auto _ : state) {
    const auto mm = cell::CellMismatch::sample(rng, cfg.cell_geometry);
    benchmark::DoNotOptimize(
        model.compute_delay(mm, Volt(0.0), Volt(0.0), Volt(0.0), Second(0.0)));
  }
}
BENCHMARK(BM_BlMonteCarloSample);

}  // namespace
