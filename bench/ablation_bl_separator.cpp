// Ablation: the BL separator.
//
// The separator cuts the tall main-array BL away from the dummy segment
// during write-back and iterative MULT cycles. This study quantifies both
// effects the paper attributes to it: write-back energy (Table 2's w/ vs
// w/o columns) and write-back delay / fmax (Fig 8's 51 ps component).

#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "macro/imc_macro.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;
using array::RowRef;
using energy::SeparatorMode;

int main() {
  print_banner(std::cout, "Ablation -- BL separator: energy effect (measured on macro)");

  TextTable t({"operation", "bits", "w/ separator [fJ]", "w/o separator [fJ]", "saving"});
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    for (const char* op : {"SUB", "MULT"}) {
      double fj[2];
      int i = 0;
      for (const auto sep : {SeparatorMode::Enabled, SeparatorMode::Disabled}) {
        macro::MacroConfig cfg;
        cfg.separator = sep;
        macro::ImcMacro m(cfg);
        if (std::string(op) == "SUB") {
          m.sub_rows(RowRef::main(0), RowRef::main(1), bits);
          fj[i++] = in_fJ(m.last_op().op_energy) / static_cast<double>(m.words_per_row(bits));
        } else {
          m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
          fj[i++] =
              in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(bits));
        }
      }
      t.add_row({op, std::to_string(bits), TextTable::num(fj[0], 1), TextTable::num(fj[1], 1),
                 TextTable::num(100.0 * (fj[1] - fj[0]) / fj[1], 1) + "%"});
    }
  }
  t.print(std::cout);

  print_banner(std::cout, "Ablation -- BL separator: timing effect");
  const timing::FreqModel fm;
  TextTable ft({"VDD [V]", "WB w/ sep [ps]", "WB w/o sep [ps]", "fmax w/ sep [GHz]",
                "fmax w/o sep [GHz]", "fmax loss"});
  for (double v = 0.6; v <= 1.1 + 1e-9; v += 0.1) {
    const Volt vdd(v);
    const auto with = fm.breakdown(vdd, true);
    const auto without = fm.breakdown(vdd, false);
    const double f1 = in_GHz(fm.fmax(vdd, true));
    const double f0 = in_GHz(fm.fmax(vdd, false));
    ft.add_row({TextTable::num(v, 1), TextTable::num(in_ps(with.write_back), 0),
                TextTable::num(in_ps(without.write_back), 0), TextTable::num(f1, 3),
                TextTable::num(f0, 3), TextTable::num(100.0 * (f1 - f0) / f1, 1) + "%"});
  }
  ft.print(std::cout);

  std::cout << "\nPaper: Table 2 shows ~10% (SUB) and ~19% (MULT 8b) energy saved by the\n"
               "separator; Fig 8 credits it with the 51 ps write-back component.\n";
  return 0;
}
