// Serving benchmark: closed-loop multi-client load against the macro pool,
// batched (serve::Server coalescing) vs one-op-at-a-time (clients sharing
// the raw engine behind a mutex). Each client submits its next op as soon
// as the previous one completes.
//
// The headline metric is modeled cycles per op: one-op-at-a-time pays
// load + compute for every op, the coalescing scheduler hides the loads of
// batch riders behind the compute of the op ahead of them (the engine's
// double-buffered cycle model). Host wall-clock and p50/p99 client latency
// are reported for both modes; every result is verified against the scalar
// reference.
//
// Results land in BENCH_serving.json (schema bpim.serving.v1). The bench
// exits non-zero when >= 4 clients fail to beat one-op-at-a-time on modeled
// cycles per op -- the acceptance gate CI smoke runs check.
//
// Usage: serving_bench [--threads C] [--ops K] [--bits B] [--elements N]
//                      [--window US] [--smoke] [--out <path>]
//                      [--trace <path>] [--metrics <path>] [--trace-macros]
//   --threads   concurrent closed-loop clients      (default 8)
//   --ops       ops per client                      (default 64; smoke 12)
//   --bits      operand precision                   (default 8)
//   --elements  vector length per op                (default one MULT layer)
//   --window    scheduler coalesce window, us       (default 200)
//   --smoke     CI-sized run; same JSON shape
//   --trace     Perfetto trace of both mode runs    (bench/obs_flags.hpp)
//   --metrics   metrics registry snapshot JSON

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"
#include "macro/isa.hpp"
#include "obs_flags.hpp"
#include "serve/server.hpp"

using namespace bpim;
using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

namespace {

constexpr std::size_t kMacros = 16;
constexpr std::size_t kEngineThreads = 4;

struct Options {
  std::size_t clients = 8;
  std::size_t ops_per_client = 64;
  unsigned bits = 8;
  std::size_t elements = 0;  ///< 0 = one MULT layer, resolved after parsing
  std::chrono::microseconds window{200};
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
};

/// One client's scripted workload: operand storage plus the ops over it.
struct ClientLoad {
  std::vector<std::vector<std::uint64_t>> a, b;
  std::vector<VecOp> ops;
};

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, Rng& rng) {
  const std::uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

std::vector<ClientLoad> make_loads(const Options& opt) {
  std::vector<ClientLoad> loads(opt.clients);
  for (std::size_t c = 0; c < opt.clients; ++c) {
    Rng rng(0x5E7FE + c);
    ClientLoad& load = loads[c];
    for (std::size_t i = 0; i < opt.ops_per_client; ++i) {
      load.a.push_back(random_vec(opt.elements, opt.bits, rng));
      load.b.push_back(random_vec(opt.elements, opt.bits, rng));
      load.ops.push_back(VecOp{OpKind::Mult, opt.bits, periph::LogicFn::And,
                               load.a.back(), load.b.back()});
    }
  }
  return loads;
}

void verify(const VecOp& op, const std::vector<std::uint64_t>& got) {
  for (std::size_t i = 0; i < op.a.size(); ++i)
    if (got[i] != op.a[i] * op.b[i]) {
      std::cerr << "FATAL: result mismatch at element " << i << "\n";
      std::exit(1);
    }
}

struct ModeResult {
  double wall_s = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t modeled_pipelined = 0;
  std::uint64_t modeled_serial = 0;
  std::uint64_t batches = 0;
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  [[nodiscard]] double ops_per_s() const { return ops == 0 ? 0.0 : ops / wall_s; }
  [[nodiscard]] double cycles_per_op() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(modeled_pipelined) / static_cast<double>(ops);
  }
  [[nodiscard]] double occupancy() const {
    return batches == 0 ? 0.0 : static_cast<double>(ops) / static_cast<double>(batches);
  }
};

/// One-op-at-a-time baseline: clients contend for the raw engine behind a
/// mutex; every op is its own batch (no load ever hides behind compute).
ModeResult run_one_at_a_time(const std::vector<ClientLoad>& loads, ExecutionEngine& eng) {
  ModeResult r;
  std::mutex engine_mutex;
  std::vector<std::vector<double>> latencies(loads.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < loads.size(); ++c) {
    clients.emplace_back([&, c] {
      for (const VecOp& op : loads[c].ops) {
        const auto q0 = std::chrono::steady_clock::now();
        OpResult res;
        std::uint64_t cycles = 0;
        {
          std::lock_guard lk(engine_mutex);
          res = eng.run(op);
          cycles = eng.last_batch().pipelined_cycles;  // == serial: batch of one
        }
        const auto q1 = std::chrono::steady_clock::now();
        verify(op, res.values);
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
        {
          std::lock_guard lk(engine_mutex);
          r.modeled_pipelined += cycles;
          r.modeled_serial += cycles;
          ++r.batches;
          ++r.ops;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  SampleSet all;  // same quantile semantics as ServeStats (common/stats.hpp)
  for (const auto& v : latencies)
    for (const double us : v) all.add(us);
  r.p50_us = all.percentile(0.50);
  r.p90_us = all.percentile(0.90);
  r.p99_us = all.percentile(0.99);
  r.p999_us = all.percentile(0.999);
  return r;
}

/// Batched serving: the same clients submit through the Server's admission
/// queue and the scheduler coalesces compatible requests into run_batch.
ModeResult run_served(const std::vector<ClientLoad>& loads, ExecutionEngine& eng,
                      const Options& opt) {
  serve::ServerConfig cfg;
  cfg.queue_capacity = std::max<std::size_t>(16, 4 * loads.size());
  cfg.max_batch_ops = 64;
  cfg.coalesce_window = opt.window;
  serve::Server server(eng, cfg);

  ModeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < loads.size(); ++c) {
    clients.emplace_back([&, c] {
      for (const VecOp& op : loads[c].ops) {
        OpResult res = server.submit(op).get();
        verify(op, res.values);
      }
    });
  }
  for (auto& t : clients) t.join();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();

  const serve::ServeStats s = server.stats();
  r.ops = s.completed;
  r.modeled_pipelined = s.modeled_pipelined_cycles;
  r.modeled_serial = s.modeled_serial_cycles;
  r.batches = s.batches;
  r.p50_us = s.host_us.p50;
  r.p90_us = s.host_us.p90;
  r.p99_us = s.host_us.p99;
  r.p999_us = s.host_us.p999;
  return r;
}

void write_json(const Options& opt, const ModeResult& direct, const ModeResult& served) {
  JsonWriter w(opt.out_path);
  const auto mode_json = [&](const char* name, const ModeResult& m) {
    w.key(name);
    w.begin_object();
    w.field("ops", m.ops);
    w.field("wall_s", m.wall_s);
    w.field("ops_per_s", m.ops_per_s());
    w.field("modeled_cycles", m.modeled_pipelined);
    w.field("modeled_cycles_per_op", m.cycles_per_op());
    w.field("batches", m.batches);
    w.field("mean_batch_occupancy", m.occupancy());
    w.field("p50_host_us", m.p50_us);
    w.field("p90_host_us", m.p90_us);
    w.field("p99_host_us", m.p99_us);
    w.field("p999_host_us", m.p999_us);
    w.end_object();
  };
  w.begin_object();
  w.field("schema", "bpim.serving.v1");
  w.field("mode", opt.smoke ? "smoke" : "full");
  w.field("clients", opt.clients);
  w.field("ops_per_client", opt.ops_per_client);
  w.field("bits", opt.bits);
  w.field("elements", opt.elements);
  w.field("window_us", opt.window.count());
  w.field("macros", kMacros);
  mode_json("one_at_a_time", direct);
  mode_json("served", served);
  w.field("modeled_speedup", direct.cycles_per_op() / served.cycles_per_op());
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::ObsFlags obs;
  bool ops_given = false;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--threads") {
        opt.clients = std::stoul(value());
      } else if (arg == "--ops") {
        opt.ops_per_client = std::stoul(value());
        ops_given = true;
      } else if (arg == "--bits") {
        opt.bits = static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--elements") {
        opt.elements = std::stoul(value());
      } else if (arg == "--window") {
        opt.window = std::chrono::microseconds(std::stoul(value()));
      } else if (arg == "--smoke") {
        opt.smoke = true;
      } else if (arg == "--out") {
        opt.out_path = value();
      } else {
        std::cerr << "usage: serving_bench [--threads C] [--ops K] [--bits B] "
                     "[--elements N] [--window US] [--smoke] [--out <path>]"
                  << bench::ObsFlags::kUsage << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  if (opt.smoke && !ops_given) opt.ops_per_client = 12;
  if (opt.clients == 0 || opt.ops_per_client == 0) {
    std::cerr << "--threads and --ops must be positive\n";
    return 2;
  }
  if (!macro::is_supported_precision(opt.bits)) {
    std::cerr << "--bits must be one of 2/4/8/16/32\n";
    return 2;
  }

  macro::MemoryConfig mcfg;
  mcfg.banks = 1;
  mcfg.macros_per_bank = kMacros;
  macro::ImcMemory mem(mcfg);
  ExecutionEngine eng(mem, EngineConfig{kEngineThreads});
  if (opt.elements == 0)  // one MULT layer across the pool
    opt.elements = eng.mult_units_per_row(opt.bits) * kMacros;
  const std::size_t max_elems = eng.mult_units_per_row(opt.bits) * kMacros * 64;
  if (opt.elements > max_elems) {
    std::cerr << "--elements exceeds the " << kMacros << "-macro capacity of " << max_elems
              << " at " << opt.bits << "-bit MULT\n";
    return 2;
  }

  const auto loads = make_loads(opt);
  std::cout << opt.clients << " closed-loop clients x " << opt.ops_per_client << " ops, "
            << opt.elements << " x " << opt.bits << "-bit MULT each, " << kMacros
            << " macros, coalesce window " << opt.window.count() << " us\n";

  obs.arm();
  const ModeResult direct = run_one_at_a_time(loads, eng);
  const ModeResult served = run_served(loads, eng, opt);

  print_banner(std::cout, "Batched serving vs one-op-at-a-time");
  TextTable table({"mode", "ops", "batches", "occupancy", "cycles/op", "ops/s",
                   "p50_us", "p99_us"});
  const auto row = [&](const char* name, const ModeResult& m) {
    table.add_row({name, std::to_string(m.ops), std::to_string(m.batches),
                   TextTable::num(m.occupancy(), 2), TextTable::num(m.cycles_per_op(), 2),
                   TextTable::num(m.ops_per_s(), 0), TextTable::num(m.p50_us, 1),
                   TextTable::num(m.p99_us, 1)});
  };
  row("one-at-a-time", direct);
  row("served", served);
  table.print(std::cout);

  const double speedup = direct.cycles_per_op() / served.cycles_per_op();
  std::cout << "modeled cycles/op speedup from coalescing: " << TextTable::ratio(speedup)
            << "\n";

  write_json(opt, direct, served);
  std::cout << "wrote " << opt.out_path << "\n";
  obs.finish();

  // Acceptance gate: with enough concurrency to coalesce, batching must win
  // the cycle model.
  if (opt.clients >= 4 && speedup < 1.02) {
    std::cerr << "WARNING: coalesced serving did not beat one-op-at-a-time ("
              << speedup << "x) at " << opt.clients << " clients\n";
    return 1;
  }
  return 0;
}
