// Table 3 reproduction: comparison with the state of the art.
//
// Rows for [1], [2], [5] carry the published figures the paper tabulates;
// the [2] row is additionally backed by our reimplemented bit-serial
// baseline (cycle counts + calibrated energy). The "Proposed" row is fully
// measured on this repository's models.

#include <iostream>

#include "baseline/bitserial.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  print_banner(std::cout, "Table 3 -- comparison with state-of-the-arts");

  const timing::FreqModel fm;
  const energy::EnergyModel em;
  const baseline::BitSerialMacro serial;

  const double prop_fmax_ghz = in_GHz(fm.fmax(1.0_V));
  const double prop_add = em.tops_per_watt(em.add(8, 0.6_V));
  const double prop_mult = em.tops_per_watt(em.mult(8, 0.6_V, energy::SeparatorMode::Enabled));
  const double bs_add = 1e-12 / serial.op_energy(baseline::BitSerialMacro::add_cycles(8), 0.6_V).si();
  const double bs_mult =
      1e-12 / serial.op_energy(baseline::BitSerialMacro::mult_cycles(8), 0.6_V).si();

  TextTable t({"", "16' JSSC [1]", "19' JSSC [2]", "19' DAC [5]", "Proposed (this repo)"});
  t.add_row({"cell type", "6T", "8T transposable", "6T w/ local group", "6T"});
  t.add_row({"area overhead", "-", "4.5%*", "4.0%*", "5.2% (published)"});
  t.add_row({"read disturb fix", "WL underdrive", "WL underdrive", "local read BL",
             "short WL + BL boost"});
  t.add_row({"supply", "0.7-1.0 V", "0.6-1.1 V", "0.6-1.1 V", "0.6-1.1 V"});
  t.add_row({"technology", "28nm FDSOI", "28nm CMOS", "28nm CMOS", "28nm CMOS (modelled)"});
  t.add_row({"array size", "64x64 (4kB)", "4x128x256", "256x128", "4x16x128x128 (128KB)"});
  t.add_row({"max freq", "787 MHz", "475 MHz (1.1V)", "2.2 GHz (1.0V)",
             TextTable::num(prop_fmax_ghz, 2) + " GHz (1.0V)"});
  t.add_row({"reconfigurable", "X", "programmable", "X", "2b/4b/8b (16b/32b modelled)"});
  t.add_row({"TOPS/W (MULT)", "-", "0.56 (0.6V) / ours " + TextTable::num(bs_mult, 2), "-",
             TextTable::num(prop_mult, 2) + " (0.6V, paper 0.68)"});
  t.add_row({"TOPS/W (ADD)", "-", "5.27 (0.6V) / ours " + TextTable::num(bs_add, 2), "-",
             TextTable::num(prop_add, 2) + " (0.6V, paper 8.09)"});
  t.print(std::cout);

  std::cout << "\n(* published numbers; the [2] column also shows our reimplemented\n"
               "bit-serial baseline's calibrated TOPS/W for cross-checking.)\n\n";

  print_banner(std::cout, "Headline ratios vs the bit-serial baseline (measured)");
  TextTable r({"metric", "bit-serial [2]", "proposed", "gain"});
  r.add_row({"8b MULT latency [cycles]",
             std::to_string(baseline::BitSerialMacro::mult_cycles(8)), "10",
             TextTable::ratio(static_cast<double>(baseline::BitSerialMacro::mult_cycles(8)) / 10.0, 1)});
  r.add_row({"8b ADD latency [cycles]",
             std::to_string(baseline::BitSerialMacro::add_cycles(8)), "1", "9.0x"});
  r.add_row({"TOPS/W MULT @0.6V", TextTable::num(bs_mult, 2), TextTable::num(prop_mult, 2),
             TextTable::ratio(prop_mult / bs_mult, 2)});
  r.add_row({"TOPS/W ADD @0.6V", TextTable::num(bs_add, 2), TextTable::num(prop_add, 2),
             TextTable::ratio(prop_add / bs_add, 2)});
  r.print(std::cout);
  return 0;
}
